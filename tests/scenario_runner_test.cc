#include <gtest/gtest.h>

#include "scenario/grammar.h"
#include "scenario/hunt.h"
#include "scenario/runner.h"

namespace semdrift {
namespace scenario {
namespace {

/// A small, cheap scenario that still exercises extraction + cleaning.
Scenario SmallScenario() {
  Scenario s = SampleScenario(3, "dp-dense");
  s.corpus.num_sentences = 500;
  s.world.num_concepts = 12;
  return s;
}

TEST(ScenarioRunnerTest, RunIsDeterministic) {
  Scenario s = SmallScenario();
  auto a = RunScenario(s);
  auto b = RunScenario(s);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(FormatMetricsLine(a->metrics), FormatMetricsLine(b->metrics));
  EXPECT_EQ(a->metrics.live_pairs_before, b->metrics.live_pairs_before);
  EXPECT_EQ(a->metrics.records_rolled_back, b->metrics.records_rolled_back);
}

TEST(ScenarioRunnerTest, InvalidScenarioIsStatusError) {
  Scenario s = SmallScenario();
  s.world.num_concepts = 0;
  EXPECT_FALSE(RunScenario(s).ok());
}

TEST(ScenarioRunnerTest, PinnedEnvelopePassesAndTightenedEnvelopeFails) {
  Scenario s = SmallScenario();
  auto baseline = RunScenario(s);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_TRUE(baseline->metrics.precision_after_defined);

  PinEnvelope(&s, baseline->metrics);
  auto pinned = RunScenario(s);
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  EXPECT_TRUE(pinned->ok())
      << (pinned->violations.empty() ? "" : pinned->violations.front());

  s.envelope.min_precision_after = baseline->metrics.precision_after + 0.01;
  auto gated = RunScenario(s);
  ASSERT_TRUE(gated.ok()) << gated.status().ToString();
  EXPECT_FALSE(gated->ok());
}

TEST(ScenarioRunnerTest, MinBoundOnUndefinedMetricViolates) {
  ScenarioMetrics m;
  m.precision_after_defined = false;
  ScenarioEnvelope envelope;
  envelope.min_precision_after = 0.5;
  std::vector<std::string> violations = CheckEnvelope(envelope, m);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("undefined"), std::string::npos);
}

TEST(ScenarioRunnerTest, CountCeilingsGate) {
  ScenarioMetrics m;
  m.rounds = 5;
  m.records_rolled_back = 100;
  ScenarioEnvelope envelope;
  envelope.max_rounds = 4;
  envelope.max_records_rolled_back = 99;
  EXPECT_EQ(CheckEnvelope(envelope, m).size(), 2u);
}

TEST(ScenarioRunnerTest, SerializeRoundtripGateRuns) {
  Scenario s = SampleScenario(11, "morphology");
  s.corpus.num_sentences = 400;
  ASSERT_TRUE(s.pipeline.serialize_roundtrip);
  auto outcome = RunScenario(s);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->invariant_failure)
      << (outcome->violations.empty() ? "" : outcome->violations.front());
}

TEST(ScenarioRunnerTest, FaultOverlayQuarantinesDeterministically) {
  Scenario s = SampleScenario(5, "fault-overlay");
  s.corpus.num_sentences = 500;
  auto a = RunScenario(s);
  auto b = RunScenario(s);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->metrics.quarantined, b->metrics.quarantined);
  EXPECT_EQ(a->metrics.drops, b->metrics.drops);
}

TEST(ScenarioRunnerTest, ClassifyFailureClasses) {
  HuntOptions options;
  options.precision_floor = 0.55;
  options.min_pairs_for_collapse = 20;
  options.regression_margin = 0.2;

  ScenarioOutcome outcome;
  outcome.metrics.rounds = 2;
  outcome.metrics.records_rolled_back = 10;
  outcome.metrics.live_pairs_after = 50;
  outcome.metrics.precision_after = 0.4;
  outcome.metrics.precision_after_defined = true;
  outcome.metrics.precision_before = 0.5;
  outcome.metrics.precision_before_defined = true;
  EXPECT_EQ(ClassifyFailure(outcome, options), "precision-collapse");

  // Cleaning never engaged: not a collapse, whatever the precision.
  outcome.metrics.records_rolled_back = 0;
  EXPECT_EQ(ClassifyFailure(outcome, options), "");
  outcome.metrics.records_rolled_back = 10;

  outcome.metrics.precision_after = 0.6;
  outcome.metrics.precision_before = 0.9;
  EXPECT_EQ(ClassifyFailure(outcome, options), "cleaning-regression");

  outcome.metrics.precision_before = 0.7;
  EXPECT_EQ(ClassifyFailure(outcome, options), "");

  outcome.invariant_failure = true;
  EXPECT_EQ(ClassifyFailure(outcome, options), "invariant");

  // Stream divergence outranks the precision classes but not invariants.
  outcome.metrics.stream_divergence = 0.8;
  outcome.metrics.stream_divergence_defined = true;
  EXPECT_EQ(ClassifyFailure(outcome, options), "invariant");
  outcome.invariant_failure = false;
  EXPECT_EQ(ClassifyFailure(outcome, options), "stream-divergence");
  outcome.metrics.stream_divergence = options.stream_divergence_threshold;
  EXPECT_EQ(ClassifyFailure(outcome, options), "");
}

TEST(ScenarioRunnerTest, StreamingLegMeasuresDivergenceDeterministically) {
  Scenario s = SampleScenario(7, "streaming-burst");
  ASSERT_GT(s.stream.epochs, 1);
  s.corpus.num_sentences = 600;
  auto a = RunScenario(s);
  auto b = RunScenario(s);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->metrics.stream_epochs, s.stream.epochs);
  EXPECT_TRUE(a->metrics.stream_divergence_defined);
  EXPECT_EQ(a->metrics.stream_divergence, b->metrics.stream_divergence);
  EXPECT_GE(a->metrics.stream_divergence, 0.0);
  EXPECT_LE(a->metrics.stream_divergence, 1.0);
  // Forcing every epoch to rebuild collapses the stream onto the batch
  // pipeline, so the distance must be exactly zero.
  s.stream.full_rebuild_every = 1;
  auto rebuilt = RunScenario(s);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(rebuilt->metrics.stream_full_rebuilds, s.stream.epochs);
  EXPECT_EQ(rebuilt->metrics.stream_divergence, 0.0);
}

TEST(ScenarioRunnerTest, StreamDivergenceCeilingGates) {
  ScenarioMetrics m;
  m.stream_divergence = 0.3;
  m.stream_divergence_defined = true;
  ScenarioEnvelope envelope;
  envelope.max_stream_divergence = 0.25;
  ASSERT_EQ(CheckEnvelope(envelope, m).size(), 1u);
  envelope.max_stream_divergence = 0.3;
  EXPECT_TRUE(CheckEnvelope(envelope, m).empty());
  // A ceiling set while the metric never got measured must not pass
  // vacuously.
  m.stream_divergence_defined = false;
  std::vector<std::string> violations = CheckEnvelope(envelope, m);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("undefined"), std::string::npos);
}

}  // namespace
}  // namespace scenario
}  // namespace semdrift
