#include <gtest/gtest.h>

#include <limits>

#include "baselines/cleaners.h"
#include "baselines/threshold.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

namespace semdrift {
namespace {

ConceptId C(uint32_t v) { return ConceptId(v); }
InstanceId E(uint32_t v) { return InstanceId(v); }
SentenceId S(uint32_t v) { return SentenceId(v); }

TEST(ThresholdTest, FindsSeparatingValue) {
  // Errors score low (0.1-0.2), correct score high (0.8-0.9).
  std::vector<std::pair<double, bool>> scored{
      {0.1, true}, {0.15, true}, {0.2, true}, {0.8, false}, {0.85, false},
      {0.9, false}};
  double t = LearnRemovalThreshold(scored);
  EXPECT_GT(t, 0.2);
  EXPECT_LT(t, 0.8);
}

TEST(ThresholdTest, NoErrorsMeansNoRemoval) {
  std::vector<std::pair<double, bool>> scored{{0.5, false}, {0.7, false}};
  EXPECT_EQ(LearnRemovalThreshold(scored), -std::numeric_limits<double>::infinity());
}

TEST(ThresholdTest, OverlappingScoresStillPickBestF1) {
  std::vector<std::pair<double, bool>> scored{
      {0.1, true}, {0.3, false}, {0.2, true}, {0.5, true}, {0.8, false},
      {0.9, false}};
  double t = LearnRemovalThreshold(scored);
  // Best F1 threshold removes the three errors and at most one correct.
  int removed_errors = 0;
  int removed_correct = 0;
  for (const auto& [score, is_error] : scored) {
    if (score < t) {
      removed_errors += is_error;
      removed_correct += !is_error;
    }
  }
  EXPECT_GE(removed_errors, 2);
  EXPECT_LE(removed_correct, 1);
}

/// Mutex scenario: concepts 0 and 1 have disjoint cores; e5 lives under
/// both (strong in 0, weak in 1).
TEST(MutualExclusionCleanTest, RemovesWeakerSideOfConflict) {
  KnowledgeBase kb;
  uint32_t sid = 0;
  for (int i = 0; i < 4; ++i) kb.ApplyExtraction(S(sid++), C(0), {E(1)}, {}, 1);
  for (int i = 0; i < 4; ++i) kb.ApplyExtraction(S(sid++), C(0), {E(2)}, {}, 1);
  for (int i = 0; i < 3; ++i) kb.ApplyExtraction(S(sid++), C(0), {E(5)}, {}, 1);
  for (int i = 0; i < 4; ++i) kb.ApplyExtraction(S(sid++), C(1), {E(3)}, {}, 1);
  for (int i = 0; i < 4; ++i) kb.ApplyExtraction(S(sid++), C(1), {E(4)}, {}, 1);
  kb.ApplyExtraction(S(sid++), C(1), {E(6)}, {}, 1);
  kb.ApplyExtraction(S(sid++), C(1), {E(5)}, {E(3)}, 2);  // Weak conflict side.
  MutexIndex mutex(kb, 2);
  ASSERT_TRUE(mutex.IsMutex(C(0), C(1)));
  auto removed = MutualExclusionClean(kb, mutex, {C(0), C(1)});
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].concept_id, C(1));
  EXPECT_EQ(removed[0].instance, E(5));
}

TEST(MutualExclusionCleanTest, ScopeRestrictsReports) {
  KnowledgeBase kb;
  uint32_t sid = 0;
  for (int i = 0; i < 4; ++i) kb.ApplyExtraction(S(sid++), C(0), {E(i)}, {}, 1);
  for (int i = 0; i < 3; ++i) kb.ApplyExtraction(S(sid++), C(0), {E(0)}, {}, 1);
  for (int i = 0; i < 4; ++i) kb.ApplyExtraction(S(sid++), C(1), {E(10 + i)}, {}, 1);
  kb.ApplyExtraction(S(sid++), C(1), {E(0)}, {E(10)}, 2);
  MutexIndex mutex(kb, 2);
  // Conflict pair is under C1; scoping to C0 only yields nothing.
  auto removed = MutualExclusionClean(kb, mutex, {C(0)});
  EXPECT_TRUE(removed.empty());
}

TEST(TypeOracleTest, CoverageAndAccuracyBounds) {
  WorldSpec spec;
  spec.num_concepts = 30;
  Rng rng(5);
  World world = GenerateWorld(spec, &rng);
  TypeOracle::Options options;
  options.coverage = 0.5;
  options.accuracy = 1.0;
  TypeOracle oracle(&world, options);
  size_t covered = 0;
  size_t correct = 0;
  for (size_t ei = 0; ei < world.num_instances(); ++ei) {
    InstanceId e(static_cast<uint32_t>(ei));
    int type = oracle.TypeOf(e);
    if (type < 0) continue;
    ++covered;
    if (type == oracle.GroupOf(world.ConceptsOf(e).front())) ++correct;
  }
  double coverage = static_cast<double>(covered) / world.num_instances();
  EXPECT_NEAR(coverage, 0.5, 0.05);
  EXPECT_EQ(correct, covered);  // accuracy = 1.0.
}

TEST(TypeOracleTest, TwinsShareGroups) {
  WorldSpec spec;
  spec.num_concepts = 40;
  spec.similar_twin_rate = 0.3;
  Rng rng(7);
  World world = GenerateWorld(spec, &rng);
  TypeOracle oracle(&world, TypeOracle::Options{});
  bool saw_twin = false;
  for (size_t ci = 0; ci < world.num_concepts(); ++ci) {
    ConceptId c(static_cast<uint32_t>(ci));
    ConceptId twin = world.SimilarTwin(c);
    if (!twin.valid()) continue;
    saw_twin = true;
    EXPECT_EQ(oracle.GroupOf(c), oracle.GroupOf(twin));
  }
  EXPECT_TRUE(saw_twin);
}

TEST(TypeCheckCleanTest, FlagsTypeConflicts) {
  WorldSpec spec;
  spec.num_concepts = 25;
  Rng rng(9);
  World world = GenerateWorld(spec, &rng);
  // Extract, then check: every removed pair has a conflicting reported type.
  ExperimentConfig config;
  config.world = spec;
  config.corpus.num_sentences = 3000;
  config.corpus.render_text = false;
  auto experiment = Experiment::Build(config);
  KnowledgeBase kb = experiment->Extract();
  TypeOracle::Options ooptions;
  ooptions.coverage = 0.4;
  TypeOracle oracle(&experiment->world(), ooptions);
  auto scope = experiment->AllConcepts();
  auto removed = TypeCheckClean(kb, oracle, scope);
  for (const IsAPair& pair : removed) {
    int type = oracle.TypeOf(pair.instance);
    ASSERT_GE(type, 0);
    EXPECT_NE(type, oracle.GroupOf(pair.concept_id));
  }
}

TEST(PrDualRankTest, SeedsStayPinnedAndScoresBounded) {
  KnowledgeBase kb;
  uint32_t sid = 0;
  for (int i = 0; i < 6; ++i) kb.ApplyExtraction(S(sid++), C(0), {E(1)}, {}, 1);
  kb.ApplyExtraction(S(sid++), C(0), {E(2)}, {}, 1);
  kb.ApplyExtraction(S(sid++), C(0), {E(3), E(1)}, {E(1)}, 2);
  PrDualRankOptions options;
  options.seed_support = 5;
  auto scores = PrDualRankScores(kb, {C(0)}, options);
  EXPECT_EQ((scores[IsAPair{C(0), E(1)}]), 1.0);  // Seed pinned.
  for (const auto& [pair, score] : scores) {
    (void)pair;
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
  // e3 co-occurs with the seed, so it inherits a positive score; e2 only
  // appears alone in a non-seed record and stays at zero.
  EXPECT_GT((scores[IsAPair{C(0), E(3)}]), 0.0);
  EXPECT_EQ((scores[IsAPair{C(0), E(2)}]), 0.0);
}

TEST(RwRankTest, ScoresRelativeToUniform) {
  KnowledgeBase kb;
  uint32_t sid = 0;
  for (int i = 0; i < 5; ++i) kb.ApplyExtraction(S(sid++), C(0), {E(1)}, {}, 1);
  kb.ApplyExtraction(S(sid++), C(0), {E(2)}, {}, 1);
  kb.ApplyExtraction(S(sid++), C(0), {E(3)}, {E(1)}, 2);
  auto scores = RwRankScores(kb, {C(0)});
  // Popular core instance sits above the uniform level and above the late
  // tail instance (absolute tail values depend on graph size).
  EXPECT_GT((scores[IsAPair{C(0), E(1)}]), 1.0);
  EXPECT_GT((scores[IsAPair{C(0), E(1)}]), (scores[IsAPair{C(0), E(3)}]));
}

TEST(ThresholdCleanTest, RemovesBelowThreshold) {
  std::unordered_map<IsAPair, double, IsAPairHash> scores;
  scores[IsAPair{C(0), E(1)}] = 0.2;
  scores[IsAPair{C(0), E(2)}] = 0.9;
  auto removed = ThresholdClean(scores, 0.5);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].instance, E(1));
}

}  // namespace
}  // namespace semdrift
