file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5a_iterations.dir/bench_fig5a_iterations.cc.o"
  "CMakeFiles/bench_fig5a_iterations.dir/bench_fig5a_iterations.cc.o.d"
  "bench_fig5a_iterations"
  "bench_fig5a_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
