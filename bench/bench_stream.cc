// Staleness-vs-throughput curve for streaming extraction (BENCH_stream.json).
//
// Fixes one bench-scale corpus and replays it through StreamPipeline at epoch
// counts {1, 2, 4, 8, 16}, publishing every epoch into a watch directory that
// an in-process SnapshotManager polls — so each point pays the full serving
// hand-off (compile, frame, publish, validate, atomic swap), not just the
// extraction cost. All runs are pure incremental (no final rebuild): that is
// the low-staleness operating mode the curve is about, and it also surfaces
// the price of incrementality as a divergence column.
//
// Per epoch count the report records:
//
//   sentences_per_sec — ingest throughput over the whole run;
//   avg_staleness_ms  — sentence-weighted time from delta hand-off to the
//                       epoch's snapshot being built (what a freshly arrived
//                       sentence waits before it is answerable);
//   publish->swap     — avg/max latency of the manager installing an epoch's
//                       generation after the pipeline published it;
//   divergence        — live-pair Jaccard distance from the batch taxonomy
//                       over the full corpus (0 = identical).
//
// More epochs buy lower staleness at the cost of repeated scoped cleaning
// and publish overhead; the curve quantifies that trade. Gates are
// correctness-only (every generation installs, no failed publishes, bounded
// divergence) — timing shape is reported, not asserted, because CI machines
// are noisy.
//
//   bench_stream [--scale 0.25] [--threads 4] [--out BENCH_stream.json]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_common.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "obs/metrics.h"
#include "serve/snapshot_manager.h"
#include "stream/stream.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace semdrift;

namespace {

struct CurvePoint {
  int epochs = 0;
  double wall_ms = 0.0;
  double sentences_per_sec = 0.0;
  double avg_staleness_ms = 0.0;
  double avg_swap_ms = 0.0;
  double max_swap_ms = 0.0;
  int swaps = 0;
  int published_deltas = 0;
  size_t live_pairs = 0;
  uint64_t stale_sentences = 0;
  double divergence = 0.0;
  std::string error;  // Non-empty: this point (and the bench) failed.
};

std::vector<ConceptId> FullScope(const World& world) {
  std::vector<ConceptId> scope;
  scope.reserve(world.num_concepts());
  for (size_t c = 0; c < world.num_concepts(); ++c) {
    scope.push_back(ConceptId{static_cast<uint32_t>(c)});
  }
  return scope;
}

using PairSet = std::unordered_set<IsAPair, IsAPairHash>;

/// Live-pair Jaccard distance between the batch pair set and a KB over the
/// full concept scope.
double Divergence(const PairSet& batch_pairs, const KnowledgeBase& kb,
                  const std::vector<ConceptId>& scope) {
  size_t intersection = 0, count = 0;
  for (const IsAPair& pair : LivePairsOf(kb, scope)) {
    ++count;
    if (batch_pairs.count(pair) > 0) ++intersection;
  }
  const size_t union_size = batch_pairs.size() + count - intersection;
  if (union_size == 0) return 0.0;
  return 1.0 - static_cast<double>(intersection) /
                   static_cast<double>(union_size);
}

/// One curve point: stream the corpus in `epochs` even slices, publishing
/// each epoch for `manager`-style consumption, and diff the end state
/// against `batch_kb`.
CurvePoint RunPoint(const World& world, const std::vector<Sentence>& all,
                    int epochs, const ExtractorOptions& extractor,
                    const PairSet& batch_pairs,
                    const std::vector<ConceptId>& scope) {
  CurvePoint point;
  point.epochs = epochs;
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("bench_stream_pub_" + std::to_string(epochs)))
          .string();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    point.error = "cannot create " + dir + ": " + ec.message();
    return point;
  }

  StreamOptions options;
  options.extractor = extractor;
  options.final_full_rebuild = false;
  options.publish_dir = dir;
  StreamPipeline stream(&world, options);

  SnapshotManagerOptions manager_options;
  manager_options.dir = dir;
  SnapshotManager manager(manager_options);

  const size_t total = all.size();
  double staleness_weighted_ms = 0.0;
  Timer wall;
  for (int k = 0; k < epochs; ++k) {
    const size_t begin = total * static_cast<size_t>(k) / epochs;
    const size_t end = total * static_cast<size_t>(k + 1) / epochs;
    std::vector<Sentence> delta(all.begin() + static_cast<long>(begin),
                                all.begin() + static_cast<long>(end));
    const size_t delta_size = delta.size();
    Timer epoch_timer;
    auto stats = stream.RunEpoch(std::move(delta), k + 1 == epochs);
    const double epoch_ms = epoch_timer.ElapsedMillis();
    if (!stats.ok()) {
      point.error = "epoch " + std::to_string(k + 1) + ": " +
                    stats.status().ToString();
      return point;
    }
    staleness_weighted_ms += epoch_ms * static_cast<double>(delta_size);
    if (stats->published_delta) ++point.published_deltas;

    // The serving side of the hand-off: the manager must install this
    // epoch's generation before the next epoch runs.
    Timer swap_timer;
    if (k == 0) {
      if (Status st = manager.LoadInitial(); !st.ok()) {
        point.error = "initial load: " + st.ToString();
        return point;
      }
      ++point.swaps;
    } else {
      SnapshotPollResult poll = manager.Poll();
      if (poll.failed > 0 || poll.orphaned > 0) {
        point.error = "epoch " + std::to_string(k + 1) + ": " +
                      std::to_string(poll.failed) + " failed publishes";
        return point;
      }
      point.swaps += poll.swaps;
    }
    const double swap_ms = swap_timer.ElapsedMillis();
    point.avg_swap_ms += swap_ms;
    point.max_swap_ms = std::max(point.max_swap_ms, swap_ms);
    if (manager.generation() != stats->generation) {
      point.error = "generation " + std::to_string(stats->generation) +
                    " did not install (serving " +
                    std::to_string(manager.generation()) + ")";
      return point;
    }
  }
  point.wall_ms = wall.ElapsedMillis();
  point.avg_swap_ms /= static_cast<double>(epochs);
  point.sentences_per_sec =
      point.wall_ms > 0.0
          ? static_cast<double>(total) / (point.wall_ms / 1e3)
          : 0.0;
  point.avg_staleness_ms =
      total > 0 ? staleness_weighted_ms / static_cast<double>(total) : 0.0;
  point.live_pairs = stream.kb().num_live_pairs();
  point.stale_sentences = stream.stale_sentences();
  point.divergence = Divergence(batch_pairs, stream.kb(), scope);
  std::filesystem::remove_all(dir, ec);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = bench::EnvScale();
  int threads = 4;
  std::string out = "BENCH_stream.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scale") {
      if (!ParseDouble(value(), &scale)) std::exit(2);
    } else if (arg == "--threads") {
      threads = std::atoi(value().c_str());
    } else if (arg == "--out") {
      out = value();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      std::exit(2);
    }
  }
  SetGlobalThreadCount(threads);

  std::printf("bench_stream: scale %g, threads %d\n", scale, threads);
  ExperimentConfig config = PaperScaleConfig(scale);
  auto experiment = Experiment::Build(config);
  const World& world = experiment->world();
  std::vector<Sentence> all;
  all.reserve(experiment->corpus().sentences.size());
  for (const Sentence& s : experiment->corpus().sentences.sentences()) {
    all.push_back(s);
  }
  const std::vector<ConceptId> scope = FullScope(world);

  // Batch reference: a single full-rebuild epoch is exactly the batch
  // pipeline over the whole corpus.
  StreamOptions batch_options;
  batch_options.extractor = config.extractor;
  PairSet batch_pairs;
  double batch_wall_ms = 0.0;
  {
    StreamPipeline batch(&world, batch_options);
    Timer t;
    auto stats = batch.RunEpoch(all, /*final_epoch=*/true);
    batch_wall_ms = t.ElapsedMillis();
    if (!stats.ok()) {
      std::fprintf(stderr, "batch reference failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    if (!stats->full_rebuild) {
      std::fprintf(stderr, "FAIL: final epoch was not a rebuild\n");
      return 1;
    }
    for (const IsAPair& pair : LivePairsOf(batch.kb(), scope)) {
      batch_pairs.insert(pair);
    }
  }
  std::printf("corpus: %zu sentences; batch: %.1f ms, %zu live pairs\n",
              all.size(), batch_wall_ms, batch_pairs.size());

  const int kEpochCounts[] = {1, 2, 4, 8, 16};
  std::vector<CurvePoint> curve;
  for (int epochs : kEpochCounts) {
    curve.push_back(
        RunPoint(world, all, epochs, config.extractor, batch_pairs, scope));
    const CurvePoint& p = curve.back();
    if (!p.error.empty()) {
      std::fprintf(stderr, "FAIL: %d epochs: %s\n", epochs, p.error.c_str());
      return 1;
    }
    std::printf(
        "%2d epochs: %8.1f ms, %7.0f sent/s, staleness %7.1f ms, "
        "swap avg %6.2f ms max %6.2f ms, %d swaps (%d deltas), "
        "divergence %.3f\n",
        p.epochs, p.wall_ms, p.sentences_per_sec, p.avg_staleness_ms,
        p.avg_swap_ms, p.max_swap_ms, p.swaps, p.published_deltas,
        p.divergence);
  }

  FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"scale\": %g,\n  \"threads\": %d,\n"
               "  \"sentences\": %zu,\n"
               "  \"batch\": {\"wall_ms\": %.3f, \"live_pairs\": %zu},\n",
               scale, threads, all.size(), batch_wall_ms, batch_pairs.size());
  std::fprintf(f, "  \"curve\": [\n");
  for (size_t i = 0; i < curve.size(); ++i) {
    const CurvePoint& p = curve[i];
    std::fprintf(f,
                 "    {\"epochs\": %d, \"wall_ms\": %.3f, "
                 "\"sentences_per_sec\": %.1f, \"avg_staleness_ms\": %.3f, "
                 "\"avg_swap_ms\": %.3f, \"max_swap_ms\": %.3f, "
                 "\"swaps\": %d, \"published_deltas\": %d, "
                 "\"live_pairs\": %zu, \"stale_sentences\": %llu, "
                 "\"divergence\": %.4f}%s\n",
                 p.epochs, p.wall_ms, p.sentences_per_sec, p.avg_staleness_ms,
                 p.avg_swap_ms, p.max_swap_ms, p.swaps, p.published_deltas,
                 p.live_pairs,
                 static_cast<unsigned long long>(p.stale_sentences),
                 p.divergence, i + 1 == curve.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"metrics\": %s\n", GlobalMetrics().ToJson().c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("-> %s\n", out.c_str());

  for (const CurvePoint& p : curve) {
    if (p.swaps != p.epochs) {
      std::fprintf(stderr, "FAIL: %d epochs installed only %d generations\n",
                   p.epochs, p.swaps);
      return 1;
    }
    if (p.sentences_per_sec <= 0.0) {
      std::fprintf(stderr, "FAIL: zero throughput at %d epochs\n", p.epochs);
      return 1;
    }
    if (p.divergence < 0.0 || p.divergence > 1.0) {
      std::fprintf(stderr, "FAIL: divergence %.4f out of range at %d epochs\n",
                   p.divergence, p.epochs);
      return 1;
    }
  }
  return 0;
}
