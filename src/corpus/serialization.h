#ifndef SEMDRIFT_CORPUS_SERIALIZATION_H_
#define SEMDRIFT_CORPUS_SERIALIZATION_H_

#include <string>

#include "corpus/generator.h"
#include "corpus/world.h"
#include "kb/knowledge_base.h"
#include "util/status.h"

namespace semdrift {

/// Persistence for worlds, corpora and extracted taxonomies, in simple
/// line-oriented text formats (one record per line, tab-separated, with a
/// leading record-type tag). Formats are versioned by a header line and are
/// deliberately human-greppable — the database-engineering idiom of
/// debuggable on-disk state.

/// Writes a world: concepts, instances, memberships (with weights and
/// verified flags), confusables, twins and polysemes.
Status SaveWorld(const World& world, const std::string& path);

/// Reads a world written by SaveWorld. Ids are re-assigned densely but the
/// name<->structure mapping round-trips exactly.
Result<World> LoadWorld(const std::string& path);

/// Writes a corpus: per sentence the candidate concepts, candidate
/// instances (by name, resolved against `world`), the generator truth, and
/// the surface text when present.
Status SaveCorpus(const World& world, const Corpus& corpus, const std::string& path);

/// Reads a corpus written by SaveCorpus, resolving names against `world`.
Result<Corpus> LoadCorpus(const World& world, const std::string& path);

/// Exports the live pairs of a knowledge base as a taxonomy TSV:
///   concept <tab> instance <tab> support_count <tab> iter1_count
/// Names resolve through `world`; instances unknown to the world (open-class
/// discoveries) are skipped unless `instance_names` is provided.
Status ExportTaxonomyTsv(const KnowledgeBase& kb, const World& world,
                         const std::string& path);

}  // namespace semdrift

#endif  // SEMDRIFT_CORPUS_SERIALIZATION_H_
