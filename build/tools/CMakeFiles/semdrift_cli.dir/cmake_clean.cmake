file(REMOVE_RECURSE
  "CMakeFiles/semdrift_cli.dir/semdrift_cli.cc.o"
  "CMakeFiles/semdrift_cli.dir/semdrift_cli.cc.o.d"
  "semdrift"
  "semdrift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semdrift_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
