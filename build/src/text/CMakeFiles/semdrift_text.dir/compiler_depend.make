# Empty compiler generated dependencies file for semdrift_text.
# This may be replaced when dependencies are built.
