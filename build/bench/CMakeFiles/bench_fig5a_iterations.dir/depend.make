# Empty dependencies file for bench_fig5a_iterations.
# This may be replaced when dependencies are built.
