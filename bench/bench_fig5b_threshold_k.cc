// Reproduces Fig. 5(b): precision and recall of the automatically labeled
// seed data as the support threshold k sweeps 0..8. Shape to match:
// precision climbs toward 1 with k while the labeled fraction (recall)
// falls sharply — the paper picks k = 4.

#include <iostream>

#include "bench_common.h"
#include "dp/seed_labeling.h"
#include "util/table_writer.h"

using namespace semdrift;

int main() {
  auto experiment = bench::BuildBenchExperiment();
  KnowledgeBase kb = experiment->Extract();
  std::vector<ConceptId> scope = experiment->EvalConcepts();
  MutexIndex mutex(kb, experiment->world().num_concepts());

  SeriesWriter series("Fig. 5(b): precision and recall of the labeled data vs k");
  series.SetColumns({"k", "labeled_fraction", "label_precision"});
  for (int k = 0; k <= 8; ++k) {
    SeedLabelerConfig config;
    config.frequency_threshold_k = k;
    SeedLabeler seeds(&kb, &mutex, experiment->MakeVerifiedSource(), config);
    size_t labeled = 0;
    size_t correct = 0;
    size_t total = 0;
    for (ConceptId c : scope) {
      for (const auto& [e, label] : seeds.LabelConcept(c)) {
        ++total;
        if (label == DpClass::kUnlabeled) continue;
        ++labeled;
        DpClass truth = experiment->truth().DpLabelOf(kb, IsAPair{c, e});
        // A seed is counted correct when it matches ground truth; an
        // Accidental-DP seed whose instance is a (plain) drifting error is
        // also a correct error call (the paper's RULE 2 intent).
        if (truth == label ||
            (label == DpClass::kAccidentalDP &&
             !experiment->truth().PairCorrect(IsAPair{c, e}))) {
          ++correct;
        }
      }
    }
    series.AddPoint({static_cast<double>(k),
                     total > 0 ? static_cast<double>(labeled) / total : 0.0,
                     labeled > 0 ? static_cast<double>(correct) / labeled : 0.0});
  }
  series.Print(std::cout, 4);
  (void)series.WriteCsv("bench_fig5b.csv");
  return 0;
}
