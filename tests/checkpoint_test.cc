#include <gtest/gtest.h>

#include <filesystem>

#include "corpus/serialization.h"
#include "eval/experiment.h"
#include "extract/checkpoint.h"
#include "util/fault_injection.h"

namespace semdrift {
namespace {

namespace fs = std::filesystem;

ExperimentConfig SmallConfig() {
  ExperimentConfig config = PaperScaleConfig(0.05);
  config.seed = 31;
  return config;
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

std::string TaxonomyBytes(const Experiment& experiment, const KnowledgeBase& kb,
                          const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(ExportTaxonomyTsv(kb, experiment.world(), path).ok());
  auto content = ReadFileToString(path);
  EXPECT_TRUE(content.ok());
  return *content;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override { experiment_ = Experiment::Build(SmallConfig()); }
  std::unique_ptr<Experiment> experiment_;
};

TEST_F(CheckpointTest, SaveLoadRoundTrip) {
  std::vector<IterationStats> stats;
  KnowledgeBase kb = experiment_->Extract(&stats);
  CheckpointState state;
  state.completed_iteration = stats.back().iteration;
  state.stats = stats;
  state.records = kb.records();

  std::string path = ::testing::TempDir() + "/roundtrip.ckpt";
  ASSERT_TRUE(SaveCheckpoint(state, path).ok());
  auto loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->completed_iteration, state.completed_iteration);
  ASSERT_EQ(loaded->stats.size(), state.stats.size());
  for (size_t i = 0; i < state.stats.size(); ++i) {
    EXPECT_EQ(loaded->stats[i].iteration, state.stats[i].iteration);
    EXPECT_EQ(loaded->stats[i].extractions, state.stats[i].extractions);
    EXPECT_EQ(loaded->stats[i].distinct_pairs, state.stats[i].distinct_pairs);
  }
  ASSERT_EQ(loaded->records.size(), state.records.size());
  for (size_t i = 0; i < state.records.size(); ++i) {
    const ExtractionRecord& a = state.records[i];
    const ExtractionRecord& b = loaded->records[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.sentence, b.sentence);
    EXPECT_EQ(a.concept_id, b.concept_id);
    EXPECT_EQ(a.iteration, b.iteration);
    EXPECT_EQ(a.instances, b.instances);
    EXPECT_EQ(a.triggers, b.triggers);
    EXPECT_EQ(a.rolled_back, b.rolled_back);
  }

  // The restore pipeline rebuilds an identical, valid KB.
  auto restored = KnowledgeBase::FromRecords(loaded->records);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_live_pairs(), kb.num_live_pairs());
  EXPECT_TRUE(restored
                  ->Validate(experiment_->world().num_concepts(),
                             experiment_->corpus().sentences.size())
                  .ok());
}

TEST_F(CheckpointTest, UncheckpointedAndCheckpointedRunsMatch) {
  KnowledgeBase plain = experiment_->Extract();
  CheckpointConfig config;
  config.dir = FreshDir("ckpt_match");
  config.validate_each_iteration = true;
  auto checkpointed = experiment_->ExtractWithCheckpoints(config);
  ASSERT_TRUE(checkpointed.ok()) << checkpointed.status().ToString();
  EXPECT_EQ(TaxonomyBytes(*experiment_, plain, "plain.tsv"),
            TaxonomyBytes(*experiment_, *checkpointed, "checkpointed.tsv"));
}

TEST_F(CheckpointTest, KillAndResumeIsByteIdentical) {
  CheckpointConfig config;
  config.dir = FreshDir("ckpt_kill");
  std::vector<IterationStats> stats;
  auto full = experiment_->ExtractWithCheckpoints(config, &stats);
  ASSERT_TRUE(full.ok());
  std::string expected = TaxonomyBytes(*experiment_, *full, "full.tsv");
  ASSERT_GT(stats.size(), 3u) << "need a multi-iteration run to simulate a kill";

  // Simulate a kill after iteration 2: delete every later snapshot.
  for (size_t i = 3; i <= stats.size(); ++i) {
    fs::remove(CheckpointPath(config.dir, static_cast<int>(i)));
  }
  config.resume = true;
  std::vector<IterationStats> resumed_stats;
  auto resumed = experiment_->ExtractWithCheckpoints(config, &resumed_stats);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed_stats.size(), stats.size());
  EXPECT_EQ(TaxonomyBytes(*experiment_, *resumed, "resumed.tsv"), expected);
}

TEST_F(CheckpointTest, TornNewestCheckpointFallsBackToPrevious) {
  CheckpointConfig config;
  config.dir = FreshDir("ckpt_torn");
  std::vector<IterationStats> stats;
  auto full = experiment_->ExtractWithCheckpoints(config, &stats);
  ASSERT_TRUE(full.ok());
  std::string expected = TaxonomyBytes(*experiment_, *full, "torn_full.tsv");

  // Tear the newest snapshot mid-write: resume must skip it and restart from
  // the one before, still converging to the same output.
  std::string newest = CheckpointPath(config.dir, stats.back().iteration);
  auto content = ReadFileToString(newest);
  ASSERT_TRUE(content.ok());
  ASSERT_TRUE(WriteStringToFile(content->substr(0, content->size() / 3), newest).ok());

  config.resume = true;
  auto resumed = experiment_->ExtractWithCheckpoints(config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(TaxonomyBytes(*experiment_, *resumed, "torn_resumed.tsv"), expected);
}

TEST_F(CheckpointTest, ValidateRejectsCorruptedRestore) {
  std::vector<IterationStats> stats;
  KnowledgeBase kb = experiment_->Extract(&stats);
  CheckpointState state;
  state.completed_iteration = stats.back().iteration;
  state.stats = stats;
  state.records = kb.records();

  // Dangling concept id: FromRecords accepts it (no bounds known), Validate
  // with the world's bounds must reject it.
  CheckpointState dangling = state;
  dangling.records[0].concept_id = ConceptId(999999);
  auto restored = KnowledgeBase::FromRecords(dangling.records);
  if (restored.ok()) {
    Status validated = restored->Validate(experiment_->world().num_concepts(),
                                          experiment_->corpus().sentences.size());
    ASSERT_FALSE(validated.ok());
    EXPECT_EQ(validated.code(), Status::Code::kDataLoss);
  }

  // End to end: a directory whose only checkpoint is corrupted (re-framed
  // with a *valid* CRC, so only replay+validation can catch it) yields
  // kNotFound, not a poisoned KB.
  std::string dir = FreshDir("ckpt_poisoned");
  ASSERT_TRUE(WriteCheckpoint(dir, dangling).ok());
  auto latest = LoadLatestValidCheckpoint(dir, experiment_->world().num_concepts(),
                                          experiment_->corpus().sentences.size());
  ASSERT_FALSE(latest.ok());
  EXPECT_EQ(latest.status().code(), Status::Code::kNotFound);

  // A negative-support replay: rolling back a record that never produced
  // anything valid. Mangle iteration ordering instead — records claiming
  // iteration 0 are rejected at replay time.
  CheckpointState bad_iteration = state;
  bad_iteration.records[0].iteration = 0;
  EXPECT_FALSE(KnowledgeBase::FromRecords(bad_iteration.records).ok());
}

TEST_F(CheckpointTest, ValidatePassesOnOrganicKb) {
  KnowledgeBase kb = experiment_->Extract();
  EXPECT_TRUE(kb.Validate(experiment_->world().num_concepts(),
                          experiment_->corpus().sentences.size())
                  .ok());
  EXPECT_TRUE(kb.Validate().ok());  // Bound-free variant.
}

TEST_F(CheckpointTest, PruneKeepsNewest) {
  CheckpointConfig config;
  config.dir = FreshDir("ckpt_prune");
  config.keep_last = 2;
  std::vector<IterationStats> stats;
  auto kb = experiment_->ExtractWithCheckpoints(config, &stats);
  ASSERT_TRUE(kb.ok());
  ASSERT_GT(stats.size(), 2u);
  size_t files = 0;
  for (const auto& entry : fs::directory_iterator(config.dir)) {
    EXPECT_TRUE(entry.path().extension() == ".ckpt");
    ++files;
  }
  EXPECT_EQ(files, 2u);
  // The survivors are the newest two, so resume still works.
  config.resume = true;
  auto resumed = experiment_->ExtractWithCheckpoints(config);
  EXPECT_TRUE(resumed.ok()) << resumed.status().ToString();
}

TEST_F(CheckpointTest, EmptyDirResumeStartsFresh) {
  CheckpointConfig config;
  config.dir = FreshDir("ckpt_empty");
  config.resume = true;  // Nothing to resume from: must behave like a cold run.
  auto kb = experiment_->ExtractWithCheckpoints(config);
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  KnowledgeBase plain = experiment_->Extract();
  EXPECT_EQ(kb->num_live_pairs(), plain.num_live_pairs());
}

}  // namespace
}  // namespace semdrift
