# Empty compiler generated dependencies file for bench_table5_per_concept.
# This may be replaced when dependencies are built.
