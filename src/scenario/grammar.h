#ifndef SEMDRIFT_SCENARIO_GRAMMAR_H_
#define SEMDRIFT_SCENARIO_GRAMMAR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/scenario.h"

namespace semdrift {
namespace scenario {

/// The scenario grammar: a typed parameter tree sampled archetype-first.
/// Each archetype aims one of the paper's drift mechanisms at the pipeline:
///
///   dp-dense      — every popular instance polysemous, ambiguous sentences
///                   dominant: the Intentional-DP channel at saturation.
///   mutex-chain   — many confusable partners per concept and a raised
///                   mutex band: long chains of mutually-exclusive concepts
///                   sharing drifted instances (feature f2 under stress).
///   twin-straddle — heavy twin rates with overlap straddling the
///                   highly-similar threshold: near-duplicate concepts the
///                   similarity closure may or may not merge.
///   burst-noise   — misparse/wrong-fact noise arriving as a *late* epoch
///                   (two-candidate misparses defer to KB disambiguation)
///                   instead of iteration-1 singletons.
///   morphology    — instance names that are pluralized variants of each
///                   other, with a serialize-reload-reserialize gate.
///   fault-overlay — a friendly-ish world under a ComputeFaultPlan overlay:
///                   quarantine/degradation interacting with cleaning.
///   kitchen-sink  — several of the above at once.
///
/// Every sampled value lives on the shrinker's benign+k*step grid, so a
/// minimized scenario is expressible in the same grammar.
std::vector<std::string> ScenarioArchetypes();

/// Samples a scenario; the archetype is drawn from the seed too. Pure
/// function of the seed — same seed, same scenario, any platform, any
/// thread count.
Scenario SampleScenario(uint64_t seed);

/// Samples within a fixed archetype (must be one of ScenarioArchetypes()).
Scenario SampleScenario(uint64_t seed, const std::string& archetype);

}  // namespace scenario
}  // namespace semdrift

#endif  // SEMDRIFT_SCENARIO_GRAMMAR_H_
