#ifndef SEMDRIFT_SERVE_SNAPSHOT_DELTA_H_
#define SEMDRIFT_SERVE_SNAPSHOT_DELTA_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serve/snapshot.h"
#include "util/status.h"

namespace semdrift {

/// A delta between two serving snapshots over the same world: the edits that
/// turn generation N's primary arrays into generation N+1's. Published as a
/// framed text file (util/framed_file, tag "sddelta", v2 — the CRC32 footer
/// is mandatory), so a torn publish loses the footer and a bit flip breaks
/// the checksum before a single record is trusted.
///
/// File layout (TAB-separated; records strictly sorted within each kind):
///
///   sddelta<TAB>v2
///   base<TAB><generation><TAB><image crc32>     binding to the exact base
///   gen<TAB><generation>                        must be base + 1
///   counts<TAB><nc><TAB><ni>                    world shape (never changes)
///   thresholds<TAB><mutex_t><TAB><similar_t>    %.17g, exact round-trip
///   records<TAB><n>                             total record count
///   P+<TAB><c><TAB><e><TAB><score><TAB><support><TAB><iter1>   pair upsert
///   P-<TAB><c><TAB><e>                          pair remove (must exist)
///   F<TAB><c><TAB><flags>                       concept flags overwrite
///   M+<TAB><key><TAB><sim>                      mutex-entry upsert
///   M-<TAB><key>                                mutex-entry remove
///   #crc32<TAB><hex>
///
/// The base binding is (generation, whole-image CRC32): applying a delta to
/// any snapshot other than the exact image it was diffed against is refused
/// up front, which is what turns "delta references the wrong base" from
/// silent drift into a quarantined publish.
struct SnapshotDelta {
  struct PairUpsert {
    uint32_t concept_id = 0;
    uint32_t instance = 0;
    double score = 0.0;
    uint32_t support = 0;
    uint32_t iter1 = 0;
  };
  struct FlagSet {
    uint32_t concept_id = 0;
    uint8_t flags = 0;
  };
  struct MutexUpsert {
    uint64_t key = 0;
    double sim = 0.0;
  };

  uint64_t base_generation = 0;
  /// CRC32 of the full base image bytes (the strongest practical binding).
  uint32_t base_crc32 = 0;
  /// The generation this delta materializes; always base_generation + 1.
  uint64_t generation = 0;
  uint32_t num_concepts = 0;
  uint32_t num_instances = 0;
  double mutex_threshold = 0.0;
  double similar_threshold = 0.0;

  /// Sorted by (concept, instance); inserts a pair or replaces its columns.
  std::vector<PairUpsert> pair_upserts;
  /// Sorted by (concept, instance); every entry must exist in the base.
  std::vector<std::pair<uint32_t, uint32_t>> pair_removes;
  /// Sorted by concept; overwrites the concept's flag byte.
  std::vector<FlagSet> flag_sets;
  /// Sorted by key; inserts an entry or replaces its similarity.
  std::vector<MutexUpsert> mutex_upserts;
  /// Sorted by key; every entry must exist in the base.
  std::vector<uint64_t> mutex_removes;

  size_t num_records() const {
    return pair_upserts.size() + pair_removes.size() + flag_sets.size() +
           mutex_upserts.size() + mutex_removes.size();
  }
};

/// Diffs two parts over the same world (names and counts must be identical;
/// kInvalidArgument otherwise). The returned delta has counts and thresholds
/// filled in; the caller sets the generation/CRC binding before writing.
Result<SnapshotDelta> DiffSnapshotParts(const SnapshotParts& base,
                                        const SnapshotParts& next);

/// Writes the delta via FramedWriter, temp-and-rename.
Status WriteSnapshotDeltaFile(const SnapshotDelta& delta, const std::string& path);

/// Strict load: framing damage (truncation, checksum mismatch), malformed
/// records, out-of-range ids, unsorted records, a generation that is not
/// base + 1, or conflicting upsert/remove of the same key all fail with
/// kDataLoss. A delta that loads is internally consistent; whether it
/// matches a particular base is MaterializeSnapshotDelta's check.
Result<SnapshotDelta> LoadSnapshotDelta(const std::string& path);

/// Applies the delta's edits to `parts` in place. Fails (kDataLoss) when the
/// delta disagrees with the base's shape or removes something absent — the
/// signature of a wrong-base application that slipped past the CRC binding.
Status ApplySnapshotDelta(const SnapshotDelta& delta, SnapshotParts* parts);

/// The full applier: checks the (generation, CRC) base binding, applies to a
/// copy of `base_parts`, and rebuilds the framed image — which the caller
/// then opens with SnapshotReader::OpenFromBuffer, re-running the deep
/// structural Validate() before anything is served.
Result<std::string> MaterializeSnapshotDelta(const SnapshotDelta& delta,
                                             const SnapshotParts& base_parts,
                                             uint64_t base_generation,
                                             uint32_t base_crc32);

}  // namespace semdrift

#endif  // SEMDRIFT_SERVE_SNAPSHOT_DELTA_H_
