// Reproduces Table 5: per-concept DP-cleaning results over the 20
// evaluation concepts — pstc/rstc (precision/recall of the Eq. 21 bad-
// extraction identification against sentence-level ground truth) and the
// four pair-level cleaning metrics.

#include <iostream>
#include <unordered_map>
#include <unordered_set>

#include "bench_common.h"
#include "dp/cleaner.h"
#include "eval/metrics.h"
#include "util/table_writer.h"

using namespace semdrift;

int main() {
  auto experiment = bench::BuildBenchExperiment();
  std::vector<ConceptId> scope = experiment->EvalConcepts();
  KnowledgeBase kb = experiment->Extract();
  std::vector<IsAPair> population = LivePairsOf(kb, scope);

  CleanerOptions options;
  DpCleaner cleaner(&experiment->corpus().sentences,
                    experiment->MakeVerifiedSource(),
                    experiment->world().num_concepts(), options);
  CleaningReport report = cleaner.Clean(&kb, scope);

  // Sentence-check quality per concept: positives are extractions whose
  // concept differs from the generator's true concept. Deduplicate by
  // record (a record can be adjudicated in several rounds; the last
  // decision is the operative one).
  struct StcCounts {
    size_t flagged = 0;
    size_t flagged_bad = 0;
    size_t bad = 0;
  };
  std::unordered_map<uint32_t, StcCounts> stc;  // By concept id.
  std::unordered_map<uint32_t, SentenceCheckDecision> last_decision;
  for (const auto& decision : report.sentence_checks) {
    last_decision[decision.record_id] = decision;
  }
  for (const auto& [record_id, decision] : last_decision) {
    const ExtractionRecord& record = kb.record(record_id);
    ConceptId truth =
        experiment->corpus().TruthOf(record.sentence).true_concept;
    bool is_bad = !(decision.extracted_concept == truth);
    StcCounts& counts = stc[decision.extracted_concept.value];
    counts.bad += is_bad;
    if (decision.rolled_back) {
      ++counts.flagged;
      counts.flagged_bad += is_bad;
    }
  }

  // Pair-level metrics per concept.
  std::unordered_set<IsAPair, IsAPairHash> removed;
  for (const IsAPair& pair : population) {
    if (!kb.Contains(pair)) removed.insert(pair);
  }

  TableWriter table("Table 5: per-concept evaluation of DP cleaning");
  table.SetHeader({"concept", "pstc", "rstc", "perror", "rerror", "pcorr", "rcorr"});
  auto add_row = [&](const std::string& name, const StcCounts& counts,
                     const CleaningMetrics& m) {
    double pstc = counts.flagged > 0
                      ? static_cast<double>(counts.flagged_bad) / counts.flagged
                      : 0.0;
    double rstc =
        counts.bad > 0 ? static_cast<double>(counts.flagged_bad) / counts.bad : 0.0;
    table.AddRow(name, {pstc, rstc, m.perror, m.rerror, m.pcorr, m.rcorr}, 3);
  };

  StcCounts total_stc;
  for (ConceptId c : scope) {
    std::vector<IsAPair> concept_population;
    for (const IsAPair& pair : population) {
      if (pair.concept_id == c) concept_population.push_back(pair);
    }
    CleaningMetrics m =
        EvaluateCleaning(experiment->truth(), concept_population, removed);
    const StcCounts& counts = stc[c.value];
    total_stc.flagged += counts.flagged;
    total_stc.flagged_bad += counts.flagged_bad;
    total_stc.bad += counts.bad;
    add_row(experiment->world().ConceptName(c), counts, m);
  }
  CleaningMetrics overall = EvaluateCleaning(experiment->truth(), population, removed);
  add_row("Overall", total_stc, overall);

  table.Print(std::cout);
  (void)table.WriteCsv("bench_table5.csv");
  return 0;
}
