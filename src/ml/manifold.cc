#include "ml/manifold.h"

#include <cassert>

#include "ml/knn.h"

namespace semdrift {

Matrix BuildManifoldRegularizer(const Matrix& x, const ManifoldOptions& options) {
  size_t n = x.rows();
  size_t r = x.cols();
  assert(n > 0 && r > 0);
  auto neighborhoods = KNearestNeighbors(x, options.k);

  // M = sum_i S_i L_i S_i^T, assembled densely (n x n).
  Matrix m_acc(n, n);
  for (size_t i = 0; i < n; ++i) {
    const std::vector<size_t>& nb = neighborhoods[i];
    size_t m = nb.size();  // k + 1 (self first).
    // G = X~_i^T X~_i over the neighborhood columns.
    Matrix g(m, m);
    for (size_t a = 0; a < m; ++a) {
      for (size_t b = a; b < m; ++b) {
        double dot = 0.0;
        const double* ra = x.Row(nb[a]);
        const double* rb = x.Row(nb[b]);
        for (size_t f = 0; f < r; ++f) dot += ra[f] * rb[f];
        g(a, b) = dot;
        g(b, a) = dot;
      }
    }
    // HGH with H = I - (1/m) 1 1^T : double-center G.
    std::vector<double> row_mean(m, 0.0);
    double total_mean = 0.0;
    for (size_t a = 0; a < m; ++a) {
      double s = 0.0;
      for (size_t b = 0; b < m; ++b) s += g(a, b);
      row_mean[a] = s / static_cast<double>(m);
      total_mean += s;
    }
    total_mean /= static_cast<double>(m) * static_cast<double>(m);
    Matrix c(m, m);
    for (size_t a = 0; a < m; ++a) {
      for (size_t b = 0; b < m; ++b) {
        c(a, b) = g(a, b) - row_mean[a] - row_mean[b] + total_mean;
      }
    }
    c.AddDiagonal(options.local_lambda);
    // L_i = lambda (HGH + lambda I)^(-1) - (1/m) 1 1^T  (Woodbury form of
    // Eq. 14). Invert via Cholesky solve against the identity.
    Matrix li;
    bool ok = CholeskySolveMatrix(c, Matrix::Identity(m), &li);
    assert(ok && "HGH + lambda I must be positive definite");
    (void)ok;
    li.Scale(options.local_lambda);
    double shift = 1.0 / static_cast<double>(m);
    for (size_t a = 0; a < m; ++a) {
      for (size_t b = 0; b < m; ++b) {
        m_acc(nb[a], nb[b]) += li(a, b) - shift;
      }
    }
  }

  // A = X^T M X (samples are rows here; the paper's X~ has them as columns).
  Matrix mx = m_acc.Multiply(x);           // n x r
  Matrix a = x.Transpose().Multiply(mx);   // r x r
  // Symmetrize against floating-point drift; A is PSD by construction.
  Matrix at = a.Transpose();
  a.AddInPlace(at);
  a.Scale(0.5);
  return a;
}

}  // namespace semdrift
