#ifndef SEMDRIFT_DP_SENTENCE_CHECK_H_
#define SEMDRIFT_DP_SENTENCE_CHECK_H_

#include "rank/scorers.h"
#include "text/sentence.h"

namespace semdrift {

/// Eq. 21: the probabilistic score that `c` is the correct attachment for
/// sentence `s`:
///   Score(s, C) = sum_{e' in Es} score(C, e') / sum_{C' in Cs} score(C', e').
/// Instances for which no candidate concept has a positive score are skipped
/// (their ratio is undefined and carries no signal).
double SentenceConceptScore(const Sentence& s, ConceptId c, ScoreCache* scores);

/// The candidate concept with the highest Eq. 21 score. Ties and the
/// all-zero case resolve to the *first* candidate in surface order (the
/// head noun — the linguistically-default attachment).
ConceptId BestAttachment(const Sentence& s, ScoreCache* scores);

/// Smoothed per-instance voting used by the cleaner's adjudication. Each
/// instance's vote for concept C is
///     v(C, e') / (sum_{C' in Cs} v(C', e') + alpha),
/// where v is the walk score rescaled to the concept's uniform level
/// (1.0 = uniform visit mass) and alpha is Laplace smoothing. Unlike raw
/// Eq. 21, an instance known *only* under C with negligible mass cannot
/// cast a full-strength self-confirming vote; and the averaged vote is a
/// calibrated confidence: a drifting extraction whose instances have no
/// solid support anywhere averages near zero (Property 4).
struct SmoothedVote {
  /// The argmax candidate (first candidate on an all-zero tie).
  ConceptId best;
  /// Average vote for `concept` over the sentence's instances, in [0, 1].
  double average_vote_for_extracted = 0.0;
};

SmoothedVote SmoothedAttachmentVote(const Sentence& s, ConceptId extracted,
                                    ScoreCache* scores, double alpha = 0.5);

}  // namespace semdrift

#endif  // SEMDRIFT_DP_SENTENCE_CHECK_H_
