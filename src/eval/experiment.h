#ifndef SEMDRIFT_EVAL_EXPERIMENT_H_
#define SEMDRIFT_EVAL_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <vector>

#include "corpus/generator.h"
#include "corpus/world.h"
#include "dp/cleaner.h"
#include "eval/ground_truth.h"
#include "extract/checkpoint.h"
#include "extract/extractor.h"
#include "kb/knowledge_base.h"
#include "serve/snapshot.h"
#include "util/supervisor.h"

namespace semdrift {

/// End-to-end experiment wiring: one world, one corpus, and as many fresh
/// extractions as needed (cleaning methods mutate or consume the KB, so
/// cross-method comparisons re-extract — extraction is deterministic).
struct ExperimentConfig {
  WorldSpec world;
  CorpusSpec corpus;
  ExtractorOptions extractor;
  /// Master seed; world and corpus derive their streams from it.
  uint64_t seed = 2014;
  /// The first N concepts are the named evaluation set (Table 1's 20).
  int num_eval_concepts = 20;
};

/// The configuration used by the paper-reproduction benches: the 20 named
/// evaluation concepts embedded in a few-hundred-concept universe, scaled by
/// `scale` (1.0 is the default bench size; tests pass ~0.1).
ExperimentConfig PaperScaleConfig(double scale = 1.0);

/// Everything a supervised end-to-end run needs beyond the experiment
/// itself: cleaning configuration, supervision policy, the (normally empty)
/// fault plan, and optional checkpointing across both phases.
struct SupervisedRunConfig {
  CleanerOptions cleaner;
  SupervisorOptions supervisor;
  ComputeFaultPlan faults;
  /// Checkpointing is active when `checkpoint.dir` is non-empty. Extraction
  /// snapshots every iteration; cleaning snapshots every round (phase =
  /// kClean), carrying the health report so --resume restores quarantine.
  CheckpointConfig checkpoint;
  /// Run DP cleaning after extraction.
  bool clean = true;
};

/// What a supervised pipeline run produced.
struct SupervisedRunResult {
  KnowledgeBase kb;
  std::vector<IterationStats> stats;
  CleaningReport cleaning;
  RunHealthReport health;
};

/// Extraction followed by supervised DP cleaning, with optional
/// checkpoint/resume spanning both phases. On resume, a kClean-phase
/// snapshot restores the KB, the stats and the health report (quarantine
/// state included) and continues cleaning at the next round; cleaning
/// rounds are deterministic functions of KB state, so the resumed run's
/// final KB is byte-identical to an uninterrupted one. With supervision
/// enabled and no fault injected the result matches the unsupervised
/// pipeline bit for bit.
/// The end-of-run handoff to the serving subsystem: validates `kb` against
/// the world/corpus id spaces (KnowledgeBase::Validate with bounds — a KB
/// that fails its own invariants must never become a snapshot), then
/// compiles it into an immutable serving snapshot at `path` via
/// serve/snapshot.h. `health` (optional) supplies quarantine flags;
/// `num_sentences` is the corpus bound for validation.
Status WriteServingSnapshot(const KnowledgeBase& kb, const World& world,
                            size_t num_sentences, const RunHealthReport* health,
                            const std::string& path,
                            const SnapshotOptions& options = {});

/// Delta publishing: compiles `kb` exactly like WriteServingSnapshot, but
/// instead of a full image writes the SnapshotDelta from the snapshot at
/// `base_path` (generation `base_generation`) to the new state, bound to the
/// base image's CRC32. The delta materializes generation base_generation + 1.
/// Fails (kInvalidArgument) when the base snapshot describes a different
/// world — deltas only make sense between runs over the same name spaces.
Status WriteServingSnapshotDelta(const KnowledgeBase& kb, const World& world,
                                 size_t num_sentences,
                                 const RunHealthReport* health,
                                 const std::string& base_path,
                                 uint64_t base_generation,
                                 const std::string& path,
                                 const SnapshotOptions& options = {});

Result<SupervisedRunResult> RunSupervisedPipeline(
    IterativeExtractor* extractor, const SentenceStore* sentences,
    VerifiedSource verified, size_t num_concepts, size_t num_sentences,
    const std::vector<ConceptId>& scope, const SupervisedRunConfig& config);

class Experiment {
 public:
  /// Generates the world and corpus. Heap-allocated because GroundTruth and
  /// the corpus borrow the world.
  static std::unique_ptr<Experiment> Build(const ExperimentConfig& config);

  /// Validating variant for untrusted configs (the scenario grammar and TOML
  /// files): rejects degenerate world/corpus specs with kInvalidArgument
  /// instead of tripping generator asserts.
  static Result<std::unique_ptr<Experiment>> BuildChecked(
      const ExperimentConfig& config);

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Runs the iterative extractor on a fresh KB. `on_iteration` observes
  /// progress (used by the Fig. 5(a) bench).
  KnowledgeBase Extract(
      std::vector<IterationStats>* stats = nullptr,
      const std::function<void(const IterationStats&, const KnowledgeBase&)>&
          on_iteration = nullptr) const;

  /// Fault-tolerant variant: checkpoints after every iteration and (when
  /// `checkpoint.resume` is set) continues from the latest valid snapshot
  /// in `checkpoint.dir`. Produces a KB identical to Extract() on the same
  /// seed, interrupted or not. Id-space bounds for restore validation are
  /// filled in from this experiment's world and corpus.
  Result<KnowledgeBase> ExtractWithCheckpoints(
      CheckpointConfig checkpoint, std::vector<IterationStats>* stats = nullptr,
      const std::function<void(const IterationStats&, const KnowledgeBase&)>&
          on_iteration = nullptr) const;

  /// RunSupervisedPipeline over this experiment's corpus and world.
  Result<SupervisedRunResult> RunSupervised(const std::vector<ConceptId>& scope,
                                            const SupervisedRunConfig& config) const;

  const World& world() const { return world_; }
  const Corpus& corpus() const { return corpus_; }
  const GroundTruth& truth() const { return *truth_; }
  const ExperimentConfig& config() const { return config_; }

  /// The simulated verified source (Sec. 3.2.2) backed by the world.
  VerifiedSource MakeVerifiedSource() const;

  /// The named evaluation concepts (first num_eval_concepts).
  std::vector<ConceptId> EvalConcepts() const;

  /// Every concept in the world.
  std::vector<ConceptId> AllConcepts() const;

 private:
  Experiment(ExperimentConfig config, World world, Corpus corpus);

  ExperimentConfig config_;
  World world_;
  Corpus corpus_;
  std::unique_ptr<GroundTruth> truth_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_EVAL_EXPERIMENT_H_
