#include "obs/trace.h"

#include <cstdio>
#include <functional>
#include <thread>

#include "obs/metrics.h"

namespace semdrift {

namespace {

/// JSON string escaping for span names, tags and error details (which may
/// carry exception text).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Writes `content` to `path`, reporting failures into `error`.
bool WriteFileOrError(const std::string& path, const std::string& content,
                      std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  bool ok = std::fclose(f) == 0 && written == content.size();
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

}  // namespace

std::string TraceSpan::CanonicalLine() const {
  std::string out = std::to_string(id) + " " + name;
  if (concept_id != kNoConcept) out += " concept=" + std::to_string(concept_id);
  out += " epoch=" + std::to_string(epoch);
  if (attempt > 0) out += " attempt=" + std::to_string(attempt);
  if (!outcome.empty()) out += " outcome=" + outcome;
  for (const auto& [key, value] : tags) out += " " + key + "=" + value;
  return out;
}

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity) {
  ring_.resize(capacity_);
  epoch_steady_ns_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t TraceRecorder::NowNs() const {
  uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now - epoch_steady_ns_;
}

void TraceRecorder::Record(TraceSpan span) {
  if (!enabled()) return;
  static MetricsRegistry::Counter spans_total =
      GlobalMetrics().RegisterCounter("trace.spans");
  static MetricsRegistry::Counter spans_dropped_counter =
      GlobalMetrics().RegisterCounter("trace.spans_dropped");
  span.wall_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  if (span.epoch == -1) span.epoch = epoch();
  // Spans are recorded at their end; anchor the start on the recorder's own
  // steady clock so Chrome traces begin near t=0.
  uint64_t now_ns = NowNs();
  span.start_ns = span.dur_ns <= now_ns ? now_ns - span.dur_ns : 0;
  std::lock_guard<std::mutex> lock(mu_);
  span.id = next_id_++;
  // Map the OS thread id to a small stable index (0 for the first recording
  // thread — in practice the driver).
  uint64_t os_id = std::hash<std::thread::id>{}(std::this_thread::get_id());
  uint32_t thread_index = 0;
  bool found = false;
  for (const auto& [id, index] : thread_ids_) {
    if (id == os_id) {
      thread_index = index;
      found = true;
      break;
    }
  }
  if (!found) {
    thread_index = static_cast<uint32_t>(thread_ids_.size());
    thread_ids_.emplace_back(os_id, thread_index);
  }
  span.thread = thread_index;
  if (size_ == capacity_) {
    // Drop the oldest span to make room.
    start_ = (start_ + 1) % capacity_;
    --size_;
    ++dropped_;
    spans_dropped_counter.Add();
  }
  ring_[(start_ + size_) % capacity_] = std::move(span);
  ++size_;
  spans_total.Add();
}

uint64_t TraceRecorder::spans_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_;
}

uint64_t TraceRecorder::spans_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<TraceSpan> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceSpan> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start_ + i) % capacity_]);
  }
  return out;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (TraceSpan& span : ring_) span = TraceSpan{};
  start_ = 0;
  size_ = 0;
  next_id_ = 0;
  dropped_ = 0;
  thread_ids_.clear();
}

namespace {

std::string SpanToJson(const TraceSpan& span) {
  std::string out = "{\"id\":" + std::to_string(span.id) + ",\"name\":\"" +
                    JsonEscape(span.name) + "\"";
  if (span.concept_id != TraceSpan::kNoConcept) {
    out += ",\"concept\":" + std::to_string(span.concept_id);
  }
  out += ",\"epoch\":" + std::to_string(span.epoch);
  if (span.attempt > 0) out += ",\"attempt\":" + std::to_string(span.attempt);
  if (!span.outcome.empty()) {
    out += ",\"outcome\":\"" + JsonEscape(span.outcome) + "\"";
  }
  if (!span.tags.empty()) {
    out += ",\"tags\":{";
    for (size_t i = 0; i < span.tags.size(); ++i) {
      if (i > 0) out += ',';
      out += '"' + JsonEscape(span.tags[i].first) + "\":\"" +
             JsonEscape(span.tags[i].second) + "\"";
    }
    out += '}';
  }
  out += ",\"wall_us\":" + std::to_string(span.wall_us) +
         ",\"start_ns\":" + std::to_string(span.start_ns) +
         ",\"dur_ns\":" + std::to_string(span.dur_ns) +
         ",\"thread\":" + std::to_string(span.thread) + "}";
  return out;
}

}  // namespace

bool TraceRecorder::WriteJsonl(const std::string& path, std::string* error) const {
  std::string content;
  for (const TraceSpan& span : Snapshot()) {
    content += SpanToJson(span);
    content += '\n';
  }
  return WriteFileOrError(path, content, error);
}

bool TraceRecorder::WriteChromeTrace(const std::string& path,
                                     std::string* error) const {
  // "X" complete events: ts = start, dur = duration, both microseconds.
  // Instant spans (dur 0) still render as zero-width slices; args carry the
  // structured tags so the trace viewer's selection panel shows them.
  std::string content = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& span : Snapshot()) {
    if (!first) content += ',';
    first = false;
    content += "{\"name\":\"" + JsonEscape(span.name) +
               "\",\"cat\":\"semdrift\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
               std::to_string(span.thread) +
               ",\"ts\":" + std::to_string(span.start_ns / 1000) +
               ",\"dur\":" + std::to_string(span.dur_ns / 1000) + ",\"args\":{";
    content += "\"id\":\"" + std::to_string(span.id) + "\"";
    if (span.concept_id != TraceSpan::kNoConcept) {
      content += ",\"concept\":\"" + std::to_string(span.concept_id) + "\"";
    }
    content += ",\"epoch\":\"" + std::to_string(span.epoch) + "\"";
    if (span.attempt > 0) {
      content += ",\"attempt\":\"" + std::to_string(span.attempt) + "\"";
    }
    if (!span.outcome.empty()) {
      content += ",\"outcome\":\"" + JsonEscape(span.outcome) + "\"";
    }
    for (const auto& [key, value] : span.tags) {
      content += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
    }
    content += "}}";
  }
  content += "]}\n";
  return WriteFileOrError(path, content, error);
}

TraceRecorder& GlobalTrace() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

ScopedSpan::ScopedSpan(TraceRecorder* recorder, std::string name,
                       uint32_t concept_id) {
  if (recorder == nullptr || !recorder->enabled()) return;
  recorder_ = recorder;
  span_.name = std::move(name);
  span_.concept_id = concept_id;
  started_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (recorder_ == nullptr) return;
  auto ended = std::chrono::steady_clock::now();
  span_.dur_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(ended - started_)
          .count());
  recorder_->Record(std::move(span_));
}

void ScopedSpan::AddTag(const std::string& key, const std::string& value) {
  if (recorder_ != nullptr) span_.tags.emplace_back(key, value);
}

void ScopedSpan::AddTag(const std::string& key, uint64_t value) {
  if (recorder_ != nullptr) span_.tags.emplace_back(key, std::to_string(value));
}

void ScopedSpan::SetOutcome(std::string outcome) {
  if (recorder_ != nullptr) span_.outcome = std::move(outcome);
}

}  // namespace semdrift
