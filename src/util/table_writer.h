#ifndef SEMDRIFT_UTIL_TABLE_WRITER_H_
#define SEMDRIFT_UTIL_TABLE_WRITER_H_

#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace semdrift {

/// Column-aligned plain-text table renderer. The bench binaries use it to
/// print rows in the same layout as the paper's tables, plus an optional CSV
/// dump for downstream plotting.
class TableWriter {
 public:
  /// `title` is printed above the table (e.g. "Table 3: Comparing cleaning
  /// performance with other methods").
  explicit TableWriter(std::string title);

  /// Sets the header row. Must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends one data row; the row is padded/truncated to the header width.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats each double cell with `digits` decimals.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int digits = 4);

  /// Renders the aligned table.
  void Print(std::ostream& os) const;

  /// Writes the table as CSV to `path` (header + rows).
  Status WriteCsv(const std::string& path) const;

  size_t row_count() const { return rows_.size(); }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }
  const std::vector<std::string>& header() const { return header_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a simple two-column "series" (x, y...) listing used for the
/// paper's figures: each figure bench prints its data series so the shape is
/// inspectable without a plotting stack.
class SeriesWriter {
 public:
  explicit SeriesWriter(std::string title);

  /// Names the columns, e.g. {"iteration", "distinct_pairs", "precision"}.
  void SetColumns(std::vector<std::string> columns);

  /// Appends one sample point.
  void AddPoint(const std::vector<double>& values);

  void Print(std::ostream& os, int digits = 4) const;
  Status WriteCsv(const std::string& path, int digits = 6) const;

  const std::vector<std::vector<double>>& points() const { return points_; }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> points_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_UTIL_TABLE_WRITER_H_
