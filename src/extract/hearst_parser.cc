#include "extract/hearst_parser.h"

#include <algorithm>

#include "text/morphology.h"
#include "text/tokenizer.h"

namespace semdrift {

namespace {

constexpr size_t kMaxTermWords = 4;

/// Joins tokens [begin, end) with single spaces.
std::string JoinTokens(const std::vector<Token>& tokens, size_t begin, size_t end) {
  std::string out;
  for (size_t i = begin; i < end; ++i) {
    if (i > begin) out += ' ';
    out += tokens[i].text;
  }
  return out;
}

}  // namespace

HearstParser::HearstParser(const Vocab* concept_lexicon, Vocab instance_lexicon)
    : concept_lexicon_(concept_lexicon), instance_lexicon_(std::move(instance_lexicon)) {}

std::optional<Sentence> HearstParser::Parse(std::string_view text) {
  std::vector<Token> tokens = Tokenize(text);

  // 1. Locate the "such as" anchor.
  size_t anchor = tokens.size();
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].text == "such" && tokens[i + 1].text == "as") {
      anchor = i;
      break;
    }
  }
  if (anchor == tokens.size()) return std::nullopt;

  Sentence sentence;

  // 2. Candidate concepts: greedy longest pluralized match left of anchor.
  //    Concept terms are rendered with a pluralized final word, so each match
  //    window is singularized on its last word before lexicon lookup.
  size_t i = 0;
  while (i < anchor) {
    bool matched = false;
    size_t max_end = std::min(anchor, i + kMaxTermWords);
    for (size_t end = max_end; end > i; --end) {
      std::string term = JoinTokens(tokens, i, end);
      std::string singular = Singularize(term);
      uint32_t id = concept_lexicon_->Find(singular);
      if (id != Vocab::kNotFound) {
        sentence.candidate_concepts.push_back(ConceptId(id));
        i = end;
        matched = true;
        break;
      }
    }
    if (!matched) ++i;
  }
  if (sentence.candidate_concepts.empty()) return std::nullopt;

  // 3. Candidate instances: the list after the anchor, items separated by
  //    commas and/or "and"/"or". Items are interned (open class).
  size_t pos = anchor + 2;  // Skip "such as".
  std::vector<std::string> items;
  std::string current;
  auto flush_item = [&]() {
    if (!current.empty()) {
      items.push_back(current);
      current.clear();
    }
  };
  for (; pos < tokens.size(); ++pos) {
    const Token& token = tokens[pos];
    if (token.text == "and" || token.text == "or") {
      flush_item();
      continue;
    }
    if (!current.empty()) current += ' ';
    current += token.text;
    if (token.followed_by_comma) flush_item();
  }
  flush_item();

  for (const std::string& item : items) {
    uint32_t id = instance_lexicon_.Intern(item);
    InstanceId e(id);
    // De-duplicate repeated mentions within one list.
    if (std::find(sentence.candidate_instances.begin(),
                  sentence.candidate_instances.end(),
                  e) == sentence.candidate_instances.end()) {
      sentence.candidate_instances.push_back(e);
    }
  }
  if (sentence.candidate_instances.empty()) return std::nullopt;

  sentence.text = std::string(text);
  return sentence;
}

}  // namespace semdrift
