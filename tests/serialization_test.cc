#include <gtest/gtest.h>

#include <fstream>

#include "corpus/generator.h"
#include "corpus/serialization.h"
#include "corpus/world.h"
#include "extract/extractor.h"
#include "util/fault_injection.h"

namespace semdrift {
namespace {

World MakeWorld() {
  WorldSpec spec;
  spec.num_concepts = 25;
  spec.named_concepts = {"animal", "food"};
  Rng rng(7);
  return GenerateWorld(spec, &rng);
}

TEST(WorldSerializationTest, RoundTripPreservesStructure) {
  World original = MakeWorld();
  std::string path = ::testing::TempDir() + "/world_roundtrip.tsv";
  ASSERT_TRUE(SaveWorld(original, path).ok());
  auto loaded = LoadWorld(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->num_concepts(), original.num_concepts());
  ASSERT_EQ(loaded->num_instances(), original.num_instances());
  for (size_t ci = 0; ci < original.num_concepts(); ++ci) {
    ConceptId c(static_cast<uint32_t>(ci));
    EXPECT_EQ(loaded->ConceptName(c), original.ConceptName(c));
    EXPECT_EQ(loaded->Members(c).size(), original.Members(c).size());
    EXPECT_EQ(loaded->Confusables(c).size(), original.Confusables(c).size());
    EXPECT_EQ(loaded->SimilarTwin(c).valid(), original.SimilarTwin(c).valid());
    for (size_t i = 0; i < original.Members(c).size(); ++i) {
      InstanceId e = original.Members(c)[i];
      EXPECT_EQ(loaded->InstanceName(loaded->Members(c)[i]), original.InstanceName(e));
      EXPECT_EQ(loaded->IsVerified(c, loaded->Members(c)[i]),
                original.IsVerified(c, e));
      EXPECT_NEAR(loaded->MemberWeights(c)[i], original.MemberWeights(c)[i], 1e-8);
    }
  }
  EXPECT_EQ(loaded->polysemes().size(), original.polysemes().size());
}

TEST(WorldSerializationTest, RejectsWrongHeader) {
  std::string path = ::testing::TempDir() + "/not_a_world.tsv";
  {
    std::ofstream out(path);
    out << "something else\n";
  }
  auto loaded = LoadWorld(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kInvalidArgument);
}

TEST(WorldSerializationTest, MissingFileIsIoError) {
  auto loaded = LoadWorld("/nonexistent/definitely/missing.tsv");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kIOError);
}

TEST(CorpusSerializationTest, RoundTripPreservesSentences) {
  World world = MakeWorld();
  CorpusSpec spec;
  spec.num_sentences = 500;
  spec.render_text = true;
  Rng rng(11);
  Corpus original = GenerateCorpus(world, spec, &rng);
  std::string path = ::testing::TempDir() + "/corpus_roundtrip.tsv";
  ASSERT_TRUE(SaveCorpus(world, original, path).ok());
  auto loaded = LoadCorpus(world, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->sentences.size(), original.sentences.size());
  for (size_t i = 0; i < original.sentences.size(); ++i) {
    SentenceId id(static_cast<uint32_t>(i));
    const Sentence& a = original.sentences.Get(id);
    const Sentence& b = loaded->sentences.Get(id);
    EXPECT_EQ(a.candidate_concepts, b.candidate_concepts);
    EXPECT_EQ(a.candidate_instances, b.candidate_instances);
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(original.TruthOf(id).kind, loaded->TruthOf(id).kind);
    EXPECT_EQ(original.TruthOf(id).true_concept, loaded->TruthOf(id).true_concept);
    EXPECT_EQ(original.TruthOf(id).polyseme, loaded->TruthOf(id).polyseme);
  }
}

TEST(CorpusSerializationTest, LoadedCorpusExtractsIdentically) {
  World world = MakeWorld();
  CorpusSpec spec;
  spec.num_sentences = 1000;
  spec.render_text = false;
  Rng rng(13);
  Corpus original = GenerateCorpus(world, spec, &rng);
  std::string path = ::testing::TempDir() + "/corpus_extract.tsv";
  ASSERT_TRUE(SaveCorpus(world, original, path).ok());
  auto loaded = LoadCorpus(world, path);
  ASSERT_TRUE(loaded.ok());

  KnowledgeBase kb_a;
  IterativeExtractor ea(&original.sentences, ExtractorOptions{});
  ea.Run(&kb_a);
  KnowledgeBase kb_b;
  IterativeExtractor eb(&loaded->sentences, ExtractorOptions{});
  eb.Run(&kb_b);
  EXPECT_EQ(kb_a.num_live_pairs(), kb_b.num_live_pairs());
  EXPECT_EQ(kb_a.num_records(), kb_b.num_records());
}

// --- Error paths: truncation, checksum damage, malformed records, and the
// --- strict/lenient policy split. The loaders must reject or account for
// --- every kind of damage, never crash, and never silently half-load.

std::string SaveWorldToString(const World& world, const std::string& path) {
  EXPECT_TRUE(SaveWorld(world, path).ok());
  auto content = ReadFileToString(path);
  EXPECT_TRUE(content.ok());
  return *content;
}

TEST(WorldSerializationTest, TruncatedFileIsDataLossStrict) {
  World world = MakeWorld();
  std::string path = ::testing::TempDir() + "/world_truncated.tsv";
  std::string content = SaveWorldToString(world, path);
  ASSERT_TRUE(WriteStringToFile(content.substr(0, content.size() / 2), path).ok());

  auto strict = LoadWorld(path);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), Status::Code::kDataLoss);

  // Lenient mode loads the intact prefix but reports the torn tail.
  LoadReport report;
  auto lenient = LoadWorld(path, {LoadOptions::Mode::kLenient}, &report);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_TRUE(report.truncated);
  EXPECT_FALSE(report.checksum_present);
  EXPECT_EQ(report.lines_seen, report.lines_loaded + report.skipped.size());
}

TEST(WorldSerializationTest, ChecksumMismatchIsDataLossStrict) {
  World world = MakeWorld();
  std::string path = ::testing::TempDir() + "/world_bitrot.tsv";
  std::string content = SaveWorldToString(world, path);
  // Flip one payload byte (first byte of line 2); the footer no longer
  // matches.
  size_t pos = content.find('\n') + 1;
  content[pos] ^= 0x20;
  ASSERT_TRUE(WriteStringToFile(content, path).ok());

  auto strict = LoadWorld(path);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), Status::Code::kDataLoss);

  LoadReport report;
  auto lenient = LoadWorld(path, {LoadOptions::Mode::kLenient}, &report);
  ASSERT_TRUE(lenient.ok());
  EXPECT_TRUE(report.checksum_present);
  EXPECT_FALSE(report.checksum_ok);
  EXPECT_EQ(report.lines_seen, report.lines_loaded + report.skipped.size());
}

TEST(WorldSerializationTest, V1WithoutFooterStillLoads) {
  World world = MakeWorld();
  std::string path = ::testing::TempDir() + "/world_v1.tsv";
  std::string content = SaveWorldToString(world, path);
  // Rewrite as the legacy format: v1 header, no checksum footer.
  size_t header_end = content.find('\n');
  size_t footer = content.rfind("#crc32");
  ASSERT_NE(footer, std::string::npos);
  std::string v1 = "semdrift-world\tv1\n" + content.substr(header_end + 1,
                                                           footer - header_end - 1);
  ASSERT_TRUE(WriteStringToFile(v1, path).ok());

  LoadReport report;
  auto loaded = LoadWorld(path, LoadOptions{}, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_concepts(), world.num_concepts());
  EXPECT_EQ(report.format_version, 1);
  EXPECT_FALSE(report.checksum_present);
  EXPECT_FALSE(report.truncated);
}

TEST(WorldSerializationTest, BadWeightStrictVsLenient) {
  std::string path = ::testing::TempDir() + "/world_badweight.tsv";
  ASSERT_TRUE(WriteStringToFile(
                  "semdrift-world\tv1\n"
                  "C\tanimal\n"
                  "I\tcat\n"
                  "M\tanimal\tcat\tnot-a-number\t1\n",
                  path)
                  .ok());

  auto strict = LoadWorld(path);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(strict.status().message().find("weight"), std::string::npos);

  LoadReport report;
  auto lenient = LoadWorld(path, {LoadOptions::Mode::kLenient}, &report);
  ASSERT_TRUE(lenient.ok());
  EXPECT_EQ(report.lines_seen, 3u);
  EXPECT_EQ(report.lines_loaded, 2u);
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_EQ(report.skipped[0].line_number, 4u);
}

TEST(CorpusSerializationTest, TruncatedCorpusIsDataLossStrict) {
  World world = MakeWorld();
  CorpusSpec spec;
  spec.num_sentences = 200;
  Rng rng(3);
  Corpus corpus = GenerateCorpus(world, spec, &rng);
  std::string path = ::testing::TempDir() + "/corpus_truncated.tsv";
  ASSERT_TRUE(SaveCorpus(world, corpus, path).ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  ASSERT_TRUE(WriteStringToFile(content->substr(0, content->size() * 2 / 3), path).ok());

  auto strict = LoadCorpus(world, path);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), Status::Code::kDataLoss);

  LoadReport report;
  auto lenient = LoadCorpus(world, path, {LoadOptions::Mode::kLenient}, &report);
  ASSERT_TRUE(lenient.ok());
  EXPECT_TRUE(report.truncated);
  EXPECT_LT(lenient->sentences.size(), corpus.sentences.size());
  EXPECT_EQ(report.lines_seen, report.lines_loaded + report.skipped.size());
}

TEST(CorpusSerializationTest, UnknownNamesAndBadKindStrictVsLenient) {
  World::Builder builder;
  builder.AddMembership(builder.AddConcept("animal"), builder.AddInstance("cat"), 1.0);
  World world = builder.Build();
  std::string path = ::testing::TempDir() + "/corpus_badlines.tsv";
  ASSERT_TRUE(WriteStringToFile(
                  "semdrift-corpus\tv1\n"
                  "S\t0\tanimal\t-\tanimal\tcat\tcats are animals\n"
                  "S\t0\tdinosaur\t-\tdinosaur\tcat\tunknown concept\n"
                  "S\t9\tanimal\t-\tanimal\tcat\tkind out of range\n"
                  "S\t0\tanimal\t-\tanimal\t\tno candidates\n",
                  path)
                  .ok());

  auto strict = LoadCorpus(world, path);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(strict.status().message().find("dinosaur"), std::string::npos);

  LoadReport report;
  auto lenient = LoadCorpus(world, path, {LoadOptions::Mode::kLenient}, &report);
  ASSERT_TRUE(lenient.ok());
  EXPECT_EQ(lenient->sentences.size(), 1u);
  EXPECT_EQ(report.lines_seen, 4u);
  EXPECT_EQ(report.lines_loaded, 1u);
  EXPECT_EQ(report.skipped.size(), 3u);
}

TEST(TaxonomyExportTest, WritesLivePairsOnly) {
  World world = MakeWorld();
  KnowledgeBase kb;
  ConceptId c(0);
  InstanceId kept = world.Members(c)[0];
  InstanceId dropped = world.Members(c)[1];
  kb.ApplyExtraction(SentenceId(0), c, {kept, dropped}, {}, 1);
  kb.ApplyExtraction(SentenceId(1), c, {kept}, {}, 1);
  kb.RollbackRecord(0, CascadePolicy::kAllTriggersDead);  // Kills `dropped`.
  std::string path = ::testing::TempDir() + "/taxonomy.tsv";
  ASSERT_TRUE(ExportTaxonomyTsv(kb, world, path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find(world.InstanceName(kept)), std::string::npos);
  EXPECT_EQ(content.find(world.InstanceName(dropped)), std::string::npos);
  EXPECT_NE(content.find("concept\tinstance"), std::string::npos);
}

}  // namespace
}  // namespace semdrift
