#ifndef SEMDRIFT_DP_FEATURES_H_
#define SEMDRIFT_DP_FEATURES_H_

#include <array>
#include <memory>
#include <mutex>
#include <vector>

#include "kb/knowledge_base.h"
#include "mutex/mutex_index.h"
#include "rank/scorers.h"
#include "text/ids.h"

namespace semdrift {

/// The four DP-detection features of Sec. 3.1, one value per property:
///   f1 — Cosine(F(sub(e)), F(E(C,1)))                  (Eq. 1)
///   f2 — |{C' : e in E(C'), C' mutex C}|               (Eq. 2)
///   f3 — score(e), the random-walk score               (Eq. 3)
///   f4 — AVG(score(sub(e)))                            (Eq. 4)
using FeatureVector = std::array<double, 4>;

/// Computes feature vectors for instances of a concept. Holds borrowed
/// views of the KB, the mutex index and a score cache; all must outlive the
/// extractor and reflect the same KB state.
///
/// Per-concept state (the iteration-1 core vector of Eq. 1, its norm, the
/// concept's score map and scale) is computed once per concept and cached —
/// the seed rebuilt the core vector for every single instance, which made
/// feature extraction quadratic in concept size. Extract() is thread-safe
/// and lock-free after a concept's first touch, so training-data collection
/// can fan out across concepts on the thread pool.
class FeatureExtractor {
 public:
  FeatureExtractor(const KnowledgeBase* kb, const MutexIndex* mutex,
                   ScoreCache* scores)
      : kb_(kb), mutex_(mutex), scores_(scores) {}

  FeatureExtractor(const FeatureExtractor&) = delete;
  FeatureExtractor& operator=(const FeatureExtractor&) = delete;

  /// Features of instance `e` under concept `c`. sub(e) is computed once
  /// and shared between f1 and f4.
  FeatureVector Extract(ConceptId c, InstanceId e) const;

  /// Feature f1 alone (exposed for Fig. 3(a) and tests).
  double F1(ConceptId c, InstanceId e) const;

 private:
  /// Immutable once built; shared by every instance of the concept.
  struct ConceptContext {
    /// Iteration-1 core frequency vector F(E(C,1)) and its squared norm.
    std::unordered_map<InstanceId, int> core;
    double core_norm_sq = 0.0;
    /// The concept's random-walk score map (borrowed from the ScoreCache;
    /// stable for the cache's lifetime) and the within-concept scale.
    const std::unordered_map<InstanceId, double>* scores = nullptr;
    double scale = 1.0;
  };

  const ConceptContext& ContextFor(ConceptId c) const;

  double F1FromSub(const ConceptContext& ctx,
                   const std::unordered_map<InstanceId, int>& sub) const;

  const KnowledgeBase* kb_;
  const MutexIndex* mutex_;
  ScoreCache* scores_;
  mutable std::mutex mu_;
  /// unique_ptr indirection keeps contexts address-stable across rehashes.
  mutable std::unordered_map<uint32_t, std::unique_ptr<ConceptContext>> contexts_;
};

/// Cosine similarity between two sparse frequency distributions (instance ->
/// count). Zero when either is empty.
double SparseCosine(const std::unordered_map<InstanceId, int>& a,
                    const std::unordered_map<InstanceId, int>& b);

}  // namespace semdrift

#endif  // SEMDRIFT_DP_FEATURES_H_
