# Empty dependencies file for semdrift_util.
# This may be replaced when dependencies are built.
