#ifndef SEMDRIFT_UTIL_THREAD_POOL_H_
#define SEMDRIFT_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace semdrift {

/// Number of hardware threads, always >= 1.
int HardwareThreads();

/// The process-wide worker count used by the free ParallelFor/ParallelMap.
/// Resolution order: SetGlobalThreadCount() override, then the
/// SEMDRIFT_THREADS environment variable, then HardwareThreads().
int GlobalThreadCount();

/// Overrides the global worker count (the CLI's --threads flag). Passing 0
/// restores automatic resolution (SEMDRIFT_THREADS / hardware).
void SetGlobalThreadCount(int num_threads);

/// Fixed-size pool of worker threads executing index-parallel loops.
///
/// Determinism contract: ParallelMap writes result i to slot i, so the
/// returned vector is identical for every thread count — an *ordered
/// reduction*. ParallelFor imposes no ordering between iterations; bodies
/// must only touch disjoint state per index (or synchronize themselves).
/// Every per-concept pipeline stage in this codebase combines the two with
/// per-task seeded RNG streams so that parallel output is bit-identical to
/// a single-threaded run.
///
/// Exceptions thrown by a body are captured; the one from the lowest
/// throwing index is rethrown on the calling thread after the loop drains
/// (remaining unclaimed indices are abandoned). Nested parallel regions run
/// inline on the calling thread rather than deadlocking the pool.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the calling thread participates in
  /// every loop). Values < 1 are clamped to 1 (a no-worker, inline pool).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs body(0) ... body(n - 1), partitioned dynamically across the pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Ordered map: out[i] = body(i). T must be default-constructible and
  /// movable.
  template <typename T>
  std::vector<T> ParallelMap(size_t n, const std::function<T(size_t)>& body) {
    std::vector<T> out(n);
    ParallelFor(n, [&](size_t i) { out[i] = body(i); });
    return out;
  }

 private:
  struct Job;

  void WorkerLoop();
  /// Claims and runs indices of `job` until exhausted.
  static void RunJob(Job* job);

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> current_job_;
  uint64_t job_generation_ = 0;
  bool shutting_down_ = false;
};

/// Index-parallel loop over the lazily-created global pool (sized by
/// GlobalThreadCount(); rebuilt when the count changes between calls).
void ParallelFor(size_t n, const std::function<void(size_t)>& body);

/// Ordered parallel map over the global pool: out[i] = body(i) with results
/// placed by index, so output is independent of the thread count.
template <typename T>
std::vector<T> ParallelMap(size_t n, const std::function<T(size_t)>& body) {
  std::vector<T> out(n);
  ParallelFor(n, [&](size_t i) { out[i] = body(i); });
  return out;
}

/// Deterministic per-task seed stream: mixes a base seed with a task index
/// so that task t's Rng is independent of how tasks are scheduled. Used by
/// every parallelized stochastic stage (random-forest trees, fuzz sweeps)
/// to keep parallel output bit-identical to serial.
uint64_t TaskSeed(uint64_t base_seed, uint64_t task_index);

}  // namespace semdrift

#endif  // SEMDRIFT_UTIL_THREAD_POOL_H_
