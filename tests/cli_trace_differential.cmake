# CTest script: tracing must be a pure observer. The same faulted supervised
# run executed twice — once with every observability flag on, once with all
# of them off — must produce byte-identical taxonomy, serving snapshot and
# checkpoints. Any trace-conditional branch that leaks into pipeline state
# (an iteration order change, an extra rounding, a skipped retry) fails the
# compare_files below.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR}/traced ${WORK_DIR}/plain)

execute_process(
  COMMAND ${CLI} generate --scale 0.05 --seed 23
          --world ${WORK_DIR}/w.tsv --corpus ${WORK_DIR}/c.tsv
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed (${rc}): ${out} ${err}")
endif()

# Faulted supervised run so the trace contains health.*/stage.outcome spans
# (the interesting, mutation-adjacent code paths). throw+nan faults only:
# stall faults wait out the stage deadline and would slow the suite down.
set(run_args
  run --world ${WORK_DIR}/w.tsv --corpus ${WORK_DIR}/c.tsv
  --fault-rate 0.3 --fault-seed 7 --fault-kinds throw,nan
  --stage-deadline-ms 5000 --health-report)

execute_process(
  COMMAND ${CLI} ${run_args}
          --out ${WORK_DIR}/traced/t.tsv --snapshot-out ${WORK_DIR}/traced/s.bin
          --checkpoint-dir ${WORK_DIR}/traced/ckpt
          --trace-out ${WORK_DIR}/traced/trace.jsonl
          --trace-chrome ${WORK_DIR}/traced/trace.json
          --metrics-out ${WORK_DIR}/traced/metrics.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "traced run failed (${rc}): ${out} ${err}")
endif()
foreach(artifact trace.jsonl trace.json metrics.json)
  if(NOT EXISTS ${WORK_DIR}/traced/${artifact})
    message(FATAL_ERROR "traced run did not write ${artifact}")
  endif()
  file(SIZE ${WORK_DIR}/traced/${artifact} artifact_size)
  if(artifact_size EQUAL 0)
    message(FATAL_ERROR "traced run wrote an empty ${artifact}")
  endif()
endforeach()
# Spot-check shape: JSONL spans and a loadable Chrome trace envelope.
file(STRINGS ${WORK_DIR}/traced/trace.jsonl first_span LIMIT_COUNT 1)
if(NOT first_span MATCHES "\"name\":")
  message(FATAL_ERROR "trace.jsonl first line is not a span: ${first_span}")
endif()
file(READ ${WORK_DIR}/traced/trace.json chrome LIMIT 32)
if(NOT chrome MATCHES "^\\{\"traceEvents\":\\[")
  message(FATAL_ERROR "trace.json is not a Chrome trace_event file: ${chrome}")
endif()

execute_process(
  COMMAND ${CLI} ${run_args}
          --out ${WORK_DIR}/plain/t.tsv --snapshot-out ${WORK_DIR}/plain/s.bin
          --checkpoint-dir ${WORK_DIR}/plain/ckpt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "plain run failed (${rc}): ${out} ${err}")
endif()

foreach(artifact t.tsv s.bin)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/traced/${artifact} ${WORK_DIR}/plain/${artifact}
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR "tracing changed ${artifact}: runs are not byte-identical")
  endif()
endforeach()

# Checkpoints too: same file set, same bytes.
file(GLOB traced_ckpts RELATIVE ${WORK_DIR}/traced/ckpt ${WORK_DIR}/traced/ckpt/*)
file(GLOB plain_ckpts RELATIVE ${WORK_DIR}/plain/ckpt ${WORK_DIR}/plain/ckpt/*)
list(SORT traced_ckpts)
list(SORT plain_ckpts)
if(NOT traced_ckpts STREQUAL plain_ckpts)
  message(FATAL_ERROR "tracing changed the checkpoint file set:\n"
          "traced: ${traced_ckpts}\nplain: ${plain_ckpts}")
endif()
if(traced_ckpts STREQUAL "")
  message(FATAL_ERROR "no checkpoints were written; the differential is vacuous")
endif()
foreach(ckpt IN LISTS traced_ckpts)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/traced/ckpt/${ckpt} ${WORK_DIR}/plain/ckpt/${ckpt}
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR "tracing changed checkpoint ${ckpt}")
  endif()
endforeach()
