# Empty dependencies file for semdrift_eval.
# This may be replaced when dependencies are built.
