#include "util/supervisor.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "obs/trace.h"
#include "util/string_util.h"

namespace semdrift {

namespace {

/// Tabs and newlines would break the line-oriented checkpoint format; a
/// detail string is human-facing only, so flattening them is lossless for
/// the machine contract.
std::string Sanitize(const std::string& detail) {
  std::string out = detail;
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

int OutcomeRank(ConceptOutcome outcome) { return static_cast<int>(outcome); }

}  // namespace

const char* ConceptOutcomeName(ConceptOutcome outcome) {
  switch (outcome) {
    case ConceptOutcome::kOk:
      return "ok";
    case ConceptOutcome::kRetried:
      return "retried";
    case ConceptOutcome::kDegraded:
      return "degraded";
    case ConceptOutcome::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

bool ParseConceptOutcome(std::string_view name, ConceptOutcome* out) {
  for (ConceptOutcome outcome :
       {ConceptOutcome::kOk, ConceptOutcome::kRetried, ConceptOutcome::kDegraded,
        ConceptOutcome::kQuarantined}) {
    if (name == ConceptOutcomeName(outcome)) {
      *out = outcome;
      return true;
    }
  }
  return false;
}

void RunHealthReport::Record(uint32_t concept_id, ConceptOutcome outcome, int retries,
                             PipelineStage stage, const std::string& detail) {
  if (outcome == ConceptOutcome::kOk) return;  // Absence means healthy.
  if (GlobalTrace().enabled()) {
    // Carry the full mutation so a trace consumer can replay health.* spans
    // into a fresh report and recover ToLines() exactly.
    TraceSpan span;
    span.name = "health.concept";
    span.concept_id = concept_id;
    span.attempt = retries;
    span.outcome = ConceptOutcomeName(outcome);
    span.tags.emplace_back("stage", PipelineStageName(stage));
    span.tags.emplace_back("detail", Sanitize(detail));
    GlobalTrace().Record(std::move(span));
  }
  auto it = concepts_.find(concept_id);
  if (it == concepts_.end()) {
    concepts_.emplace(concept_id, ConceptHealth{concept_id, outcome, retries, stage,
                                             Sanitize(detail)});
    return;
  }
  ConceptHealth& entry = it->second;
  entry.retries = std::max(entry.retries, retries);
  if (OutcomeRank(outcome) > OutcomeRank(entry.outcome)) {
    entry.outcome = outcome;
    entry.stage = stage;
    entry.detail = Sanitize(detail);
  }
}

void RunHealthReport::RecordDrop(const DroppedInstance& drop) {
  if (GlobalTrace().enabled()) {
    TraceSpan span;
    span.name = "health.drop";
    span.concept_id = drop.concept_id;
    span.tags.emplace_back("instance", std::to_string(drop.instance));
    span.tags.emplace_back("stage", PipelineStageName(drop.stage));
    span.tags.emplace_back("reason", Sanitize(drop.reason));
    GlobalTrace().Record(std::move(span));
  }
  drops_.emplace(std::make_tuple(drop.concept_id, drop.instance,
                                 static_cast<int>(drop.stage)),
                 Sanitize(drop.reason));
  Record(drop.concept_id, ConceptOutcome::kDegraded, 0, drop.stage,
         "dropped instance " + std::to_string(drop.instance) + ": " + drop.reason);
}

void RunHealthReport::RecordDetectorFallback(int retries, const std::string& detail) {
  if (GlobalTrace().enabled()) {
    TraceSpan span;
    span.name = "health.fallback";
    span.attempt = retries;
    span.tags.emplace_back("detail", Sanitize(detail));
    GlobalTrace().Record(std::move(span));
  }
  detector_fallback_ = true;
  detector_retries_ = std::max(detector_retries_, retries);
  if (detector_detail_.empty()) detector_detail_ = Sanitize(detail);
}

bool RunHealthReport::IsQuarantined(uint32_t concept_id) const {
  auto it = concepts_.find(concept_id);
  return it != concepts_.end() && it->second.outcome == ConceptOutcome::kQuarantined;
}

std::vector<uint32_t> RunHealthReport::Quarantined() const {
  std::vector<uint32_t> out;
  for (const auto& [concept_id, entry] : concepts_) {
    if (entry.outcome == ConceptOutcome::kQuarantined) out.push_back(concept_id);
  }
  return out;
}

size_t RunHealthReport::CountWithOutcome(ConceptOutcome outcome) const {
  size_t n = 0;
  for (const auto& [concept_id, entry] : concepts_) {
    (void)concept_id;
    if (entry.outcome == outcome) ++n;
  }
  return n;
}

std::vector<std::string> RunHealthReport::ToLines() const {
  std::vector<std::string> lines;
  for (const auto& [concept_id, entry] : concepts_) {
    lines.push_back("H\t" + std::to_string(concept_id) + "\t" +
                    ConceptOutcomeName(entry.outcome) + "\t" +
                    std::to_string(entry.retries) + "\t" +
                    PipelineStageName(entry.stage) + "\t" + entry.detail);
  }
  for (const auto& [key, reason] : drops_) {
    lines.push_back("D\t" + std::to_string(std::get<0>(key)) + "\t" +
                    std::to_string(std::get<1>(key)) + "\t" +
                    PipelineStageName(static_cast<PipelineStage>(std::get<2>(key))) +
                    "\t" + reason);
  }
  if (detector_fallback_) {
    lines.push_back("F\t" + std::to_string(detector_retries_) + "\t" +
                    detector_detail_);
  }
  return lines;
}

Status RunHealthReport::MergeLine(const std::string& line,
                                  const std::string& context) {
  auto fail = [&](const std::string& why) {
    return Status::DataLoss(context + ": " + why);
  };
  std::vector<std::string> fields = Split(line, '\t');
  if (fields.empty()) return fail("empty health line");
  if (fields[0] == "H") {
    uint64_t concept_id = 0;
    int64_t retries = 0;
    ConceptOutcome outcome;
    PipelineStage stage;
    if (fields.size() != 6 || !ParseUint64(fields[1], &concept_id) ||
        concept_id > 0xffffffffULL || !ParseConceptOutcome(fields[2], &outcome) ||
        outcome == ConceptOutcome::kOk ||
        !ParseIntInRange(fields[3], 0, 1000000, &retries) ||
        !ParsePipelineStage(fields[4], &stage)) {
      return fail("malformed concept-health line");
    }
    Record(static_cast<uint32_t>(concept_id), outcome, static_cast<int>(retries),
           stage, fields[5]);
    return Status::OK();
  }
  if (fields[0] == "D") {
    uint64_t concept_id = 0;
    uint64_t instance = 0;
    PipelineStage stage;
    if (fields.size() != 5 || !ParseUint64(fields[1], &concept_id) ||
        concept_id > 0xffffffffULL || !ParseUint64(fields[2], &instance) ||
        instance > 0xffffffffULL || !ParsePipelineStage(fields[3], &stage)) {
      return fail("malformed dropped-instance line");
    }
    RecordDrop(DroppedInstance{static_cast<uint32_t>(concept_id),
                               static_cast<uint32_t>(instance), stage, fields[4]});
    return Status::OK();
  }
  if (fields[0] == "F") {
    int64_t retries = 0;
    if (fields.size() != 3 || !ParseIntInRange(fields[1], 0, 1000000, &retries)) {
      return fail("malformed detector-fallback line");
    }
    RecordDetectorFallback(static_cast<int>(retries), fields[2]);
    return Status::OK();
  }
  return fail("unknown health line type '" + fields[0] + "'");
}

std::string RunHealthReport::ToTable() const {
  std::ostringstream out;
  out << "run health: " << CountWithOutcome(ConceptOutcome::kQuarantined)
      << " quarantined, " << CountWithOutcome(ConceptOutcome::kDegraded)
      << " degraded, " << CountWithOutcome(ConceptOutcome::kRetried)
      << " retried, " << num_drops() << " instances dropped\n";
  for (const auto& [concept_id, entry] : concepts_) {
    out << "  concept " << concept_id << ": " << ConceptOutcomeName(entry.outcome)
        << " at " << PipelineStageName(entry.stage);
    if (entry.retries > 0) out << " after " << entry.retries << " retries";
    if (!entry.detail.empty()) out << " (" << entry.detail << ")";
    out << "\n";
  }
  if (detector_fallback_) {
    out << "  detector: fell back (" << detector_detail_ << ")\n";
  }
  return out.str();
}

bool Supervisor::NanFaultActive(PipelineStage stage, uint32_t concept_id,
                                int attempt) const {
  auto fault = faults_.FaultFor(stage, concept_id, attempt);
  return fault.has_value() && *fault == ComputeFaultKind::kNanEmit;
}

Status Supervisor::MergeOutcome(PipelineStage stage, uint32_t concept_id,
                                const StageOutcome& outcome) {
  std::string where = std::string(PipelineStageName(stage)) + " stage, concept " +
                      std::to_string(concept_id);
  if (GlobalTrace().enabled()) {
    // One outcome span per concept per supervised stage, emitted from the
    // serial merge loop so ordering is deterministic. Healthy concepts get a
    // span too: a trace reader can count coverage, not just failures.
    TraceSpan span;
    span.name = "stage.outcome";
    span.concept_id = concept_id;
    span.attempt = outcome.retries;
    if (outcome.ok) {
      span.outcome = outcome.retries > 0 ? "retried" : "ok";
    } else {
      span.outcome = options_.quarantine ? "quarantined" : "failed";
    }
    span.tags.emplace_back("stage", PipelineStageName(stage));
    if (!outcome.error.empty()) {
      span.tags.emplace_back("error", Sanitize(outcome.error));
    }
    GlobalTrace().Record(std::move(span));
  }
  if (outcome.ok) {
    if (outcome.retries > 0) {
      health_.Record(concept_id, ConceptOutcome::kRetried, outcome.retries, stage,
                     "recovered after transient failure: " + outcome.error);
    }
    return Status::OK();
  }
  if (!options_.quarantine) {
    return Status::Internal(where + " failed after " +
                            std::to_string(outcome.retries) +
                            " retries: " + outcome.error);
  }
  health_.Record(concept_id, ConceptOutcome::kQuarantined, outcome.retries, stage,
                 outcome.error);
  return Status::OK();
}

void Supervisor::InjectPlannedFault(PipelineStage stage, uint32_t concept_id,
                                    int attempt) const {
  auto fault = faults_.FaultFor(stage, concept_id, attempt);
  if (!fault.has_value()) return;
  switch (*fault) {
    case ComputeFaultKind::kThrow:
      throw std::runtime_error("injected fault: throw at " +
                               std::string(PipelineStageName(stage)) +
                               ", concept " + std::to_string(concept_id));
    case ComputeFaultKind::kStall:
      // Spin politely until the stage deadline cancels us; models a hung
      // dependency. With no deadline armed this would hang forever — which
      // is exactly what an unsupervised hung stage does.
      for (;;) {
        PollCancellation("injected stall");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    case ComputeFaultKind::kNanEmit:
      // Handled by the driver via NanFaultActive (the guard cannot poison an
      // arbitrary T).
      break;
  }
}

void Supervisor::BackoffSleep(int attempt) const {
  int base = std::max(0, options_.backoff_base_ms);
  if (base == 0) return;
  int shift = std::min(attempt - 1, 20);
  int64_t delay = static_cast<int64_t>(base) << shift;
  delay = std::min<int64_t>(delay, std::max(0, options_.backoff_cap_ms));
  if (delay > 0) std::this_thread::sleep_for(std::chrono::milliseconds(delay));
}

}  // namespace semdrift
