#ifndef SEMDRIFT_EVAL_GROUND_TRUTH_H_
#define SEMDRIFT_EVAL_GROUND_TRUTH_H_

#include <vector>

#include "corpus/world.h"
#include "dp/seed_labeling.h"
#include "kb/knowledge_base.h"
#include "text/ids.h"

namespace semdrift {

/// Evaluation oracle: applies the paper's Definitions 1-4 with the world's
/// perfect knowledge. This is what the authors' 1,097+ manual labels encode;
/// ours come from the generator's ontology instead of annotators.
class GroundTruth {
 public:
  explicit GroundTruth(const World* world) : world_(world) {}

  /// Definition 1 complement: the pair states a true fact.
  bool PairCorrect(const IsAPair& pair) const {
    return world_->IsTrueMember(pair.concept_id, pair.instance);
  }

  /// Definitions 2-4 over the KB's (non-rolled-back) provenance: the
  /// instance is a DP iff some extraction it triggered produced a drifting
  /// error; Intentional when the pair itself is correct, Accidental when
  /// not; otherwise non-DP. Call on the *uncleaned* KB.
  DpClass DpLabelOf(const KnowledgeBase& kb, const IsAPair& pair) const;

  /// Per-concept label statistics (the rows of Table 1).
  struct ConceptStats {
    ConceptId concept_id;
    size_t instances = 0;
    size_t correct = 0;
    size_t errors = 0;
    size_t intentional_dps = 0;
    size_t accidental_dps = 0;
    size_t non_dps = 0;
  };
  ConceptStats StatsOf(const KnowledgeBase& kb, ConceptId c) const;

  const World* world() const { return world_; }

 private:
  const World* world_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_EVAL_GROUND_TRUTH_H_
