# Empty dependencies file for dp_cleaner_test.
# This may be replaced when dependencies are built.
