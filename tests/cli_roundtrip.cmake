# CTest script: exercises the semdrift CLI end to end.
file(MAKE_DIRECTORY ${WORK_DIR})
execute_process(
  COMMAND ${CLI} generate --scale 0.05 --seed 7
          --world ${WORK_DIR}/w.tsv --corpus ${WORK_DIR}/c.tsv
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed (${rc}): ${out} ${err}")
endif()
execute_process(
  COMMAND ${CLI} run --world ${WORK_DIR}/w.tsv --corpus ${WORK_DIR}/c.tsv
          --out ${WORK_DIR}/t.tsv
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run failed (${rc}): ${out} ${err}")
endif()
if(NOT out MATCHES "cleaned:")
  message(FATAL_ERROR "run output missing cleaning summary: ${out}")
endif()
file(READ ${WORK_DIR}/t.tsv taxonomy LIMIT 200)
if(NOT taxonomy MATCHES "concept\tinstance")
  message(FATAL_ERROR "taxonomy header missing")
endif()
execute_process(
  COMMAND ${CLI} parse --world ${WORK_DIR}/w.tsv
  INPUT_FILE /dev/null
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "parse failed (${rc})")
endif()
# Supervised run with seeded compute faults: must complete, print a health
# table, and still export a taxonomy.
execute_process(
  COMMAND ${CLI} run --world ${WORK_DIR}/w.tsv --corpus ${WORK_DIR}/c.tsv
          --out ${WORK_DIR}/ts.tsv --supervise --health-report
          --fault-rate 0.1 --fault-seed 7 --fault-kinds throw
          --max-retries 1 --stage-deadline-ms 5000
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "supervised run failed (${rc}): ${out} ${err}")
endif()
if(NOT out MATCHES "health:")
  message(FATAL_ERROR "supervised run output missing health summary: ${out}")
endif()
# Bad --quarantine value is a usage error, not a crash or a silent default.
execute_process(
  COMMAND ${CLI} run --world ${WORK_DIR}/w.tsv --corpus ${WORK_DIR}/c.tsv
          --supervise --quarantine maybe
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "bad --quarantine value should exit 2, got ${rc}")
endif()
