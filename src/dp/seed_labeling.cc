#include "dp/seed_labeling.h"

namespace semdrift {

SeedLabeler::SeedLabeler(const KnowledgeBase* kb, const MutexIndex* mutex,
                         VerifiedSource verified, SeedLabelerConfig config)
    : kb_(kb), mutex_(mutex), verified_(std::move(verified)), config_(config) {}

bool SeedLabeler::EvidencedCorrect(const IsAPair& pair) const {
  if (verified_ && verified_(pair)) return true;
  return kb_->Iter1Count(pair) > config_.frequency_threshold_k;
}

bool SeedLabeler::EvidencedIncorrect(const IsAPair& pair) const {
  const PairStats* stats = kb_->Find(pair);
  if (stats == nullptr) return false;
  // Accidentally extracted exactly once, in a later iteration...
  if (stats->count != 1 || stats->first_iteration <= 1) return false;
  // ...while evidenced correct under a mutually exclusive concept.
  for (ConceptId other : mutex_->ConceptsContaining(pair.instance)) {
    if (other == pair.concept_id) continue;
    if (!mutex_->IsMutex(pair.concept_id, other)) continue;
    if (EvidencedCorrect(IsAPair{other, pair.instance})) return true;
  }
  return false;
}

DpClass SeedLabeler::Label(ConceptId c, InstanceId e) const {
  IsAPair pair{c, e};

  // RULE 2: evidenced incorrect => Accidental DP.
  if (EvidencedIncorrect(pair)) return DpClass::kAccidentalDP;

  if (!EvidencedCorrect(pair)) return DpClass::kUnlabeled;

  // A sub-instance is *drift evidence* when it is evidenced correct under a
  // concept mutually exclusive with C while NOT evidenced correct under C
  // itself (a sub evidenced in both is merely polysemous and carries no
  // drift signal).
  auto is_drift_evidence = [&](InstanceId sub_instance) {
    if (EvidencedCorrect(IsAPair{c, sub_instance})) return false;
    for (ConceptId other : mutex_->ConceptsContaining(sub_instance)) {
      if (other == c || !mutex_->IsMutex(c, other)) continue;
      if (EvidencedCorrect(IsAPair{other, sub_instance})) return true;
    }
    return false;
  };

  // RULE 1 (record-level): some extraction triggered by e produced a
  // drift-evidence sub-instance while none of that extraction's instances
  // is evidenced correct under C — the extraction as a whole looks foreign
  // to C => Intentional DP. (The paper states RULE 1 over sub-instances;
  // conditioning on the whole triggered extraction is the same test applied
  // at the provenance granularity we have, and is what keeps the rule
  // "strict" under our sparser evidence.)
  bool any_drift_evidence = false;
  for (uint32_t record_id : kb_->LiveRecordsTriggeredBy(pair)) {
    const ExtractionRecord& record = kb_->record(record_id);
    int record_drift_count = 0;
    bool record_has_home = false;
    for (InstanceId produced : record.instances) {
      if (produced == pair.instance) continue;
      if (is_drift_evidence(produced)) {
        ++record_drift_count;
        any_drift_evidence = true;
      } else if (EvidencedCorrect(IsAPair{c, produced})) {
        record_has_home = true;
      }
    }
    // Two or more foreign-evidenced subs with no home-evidenced sub: one
    // foreign sub alone could itself be a polyseme mentioned in a correct
    // list, which is the symmetric (non-drift) situation.
    if (record_drift_count >= 2 && !record_has_home) return DpClass::kIntentionalDP;
  }

  // RULE 3 (evidence-sparsity adaptation): e is evidenced correct and no
  // sub-instance carries drift evidence => non-DP. (The paper's "all
  // sub-instances evidenced correct under C" presumes web-scale evidence
  // density; at our corpus scale most correct tail subs have no evidence
  // either way, so the operative test is the absence of positive drift
  // evidence. See DESIGN.md.)
  if (!any_drift_evidence) return DpClass::kNonDP;
  return DpClass::kUnlabeled;
}

std::vector<std::pair<InstanceId, DpClass>> SeedLabeler::LabelConcept(
    ConceptId c) const {
  std::vector<std::pair<InstanceId, DpClass>> out;
  for (InstanceId e : kb_->LiveInstancesOf(c)) {
    out.emplace_back(e, Label(c, e));
  }
  return out;
}

}  // namespace semdrift
