#include "corpus/world.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "text/morphology.h"

namespace semdrift {

ConceptId World::FindConcept(std::string_view name) const {
  uint32_t id = concept_vocab_.Find(name);
  return id == Vocab::kNotFound ? ConceptId() : ConceptId(id);
}

InstanceId World::FindInstance(std::string_view name) const {
  uint32_t id = instance_vocab_.Find(name);
  return id == Vocab::kNotFound ? InstanceId() : InstanceId(id);
}

bool World::TrulyMutex(ConceptId a, ConceptId b) const {
  if (a == b) return false;
  if (concepts_[a.value].twin == b) return false;
  // Share-check over the smaller member list.
  const ConceptId small = Members(a).size() <= Members(b).size() ? a : b;
  const ConceptId large = small == a ? b : a;
  for (InstanceId e : Members(small)) {
    if (IsTrueMember(large, e)) return false;
  }
  return true;
}

ConceptId World::Builder::AddConcept(std::string_view name) {
  uint32_t existing = world_->concept_vocab_.Find(name);
  if (existing != Vocab::kNotFound) return ConceptId(existing);
  uint32_t id = world_->concept_vocab_.Intern(name);
  world_->concepts_.emplace_back();
  return ConceptId(id);
}

InstanceId World::Builder::AddInstance(std::string_view name) {
  uint32_t existing = world_->instance_vocab_.Find(name);
  if (existing != Vocab::kNotFound) return InstanceId(existing);
  uint32_t id = world_->instance_vocab_.Intern(name);
  world_->instance_concepts_.emplace_back();
  return InstanceId(id);
}

void World::Builder::AddMembership(ConceptId c, InstanceId e, double weight) {
  assert(c.value < world_->concepts_.size());
  assert(e.value < world_->instance_concepts_.size());
  if (!world_->membership_.insert(IsAPair{c, e}).second) return;
  auto& info = world_->concepts_[c.value];
  info.members.push_back(e);
  info.member_weights.push_back(weight);
  world_->instance_concepts_[e.value].push_back(c);
}

void World::Builder::MarkVerified(ConceptId c, InstanceId e) {
  assert(world_->membership_.count(IsAPair{c, e}) > 0);
  world_->verified_.insert(IsAPair{c, e});
}

void World::Builder::AddConfusable(ConceptId c, ConceptId other) {
  if (c == other) return;
  auto& list = world_->concepts_[c.value].confusables;
  if (std::find(list.begin(), list.end(), other) == list.end()) list.push_back(other);
}

void World::Builder::SetSimilarTwins(ConceptId a, ConceptId b) {
  world_->concepts_[a.value].twin = b;
  world_->concepts_[b.value].twin = a;
}

void World::Builder::AddPolyseme(InstanceId instance, ConceptId home,
                                 ConceptId guest) {
  World::Polyseme polyseme{instance, home, guest};
  world_->polysemes_.push_back(polyseme);
  if (guest.value >= world_->polysemes_by_guest_.size()) {
    world_->polysemes_by_guest_.resize(guest.value + 1);
  }
  world_->polysemes_by_guest_[guest.value].push_back(polyseme);
}

const std::vector<World::Polyseme>& World::PolysemesIntoGuest(ConceptId c) const {
  static const auto& kEmpty = *new std::vector<Polyseme>();
  if (c.value >= polysemes_by_guest_.size()) return kEmpty;
  return polysemes_by_guest_[c.value];
}

World World::Builder::Build() {
  World out = std::move(*world_);
  world_.reset(new World());
  return out;
}

std::vector<std::string> PaperEvaluationConcepts() {
  return {
      "animal",        "asian country",     "child",
      "chinese city",  "chinese food",      "chinese university",
      "computer",      "computer software", "developing country",
      "disney classic", "key u.s. export",  "money",
      "people",        "phone",             "president",
      "religion",      "student",           "u.s. state",
      "weather",       "woman",
  };
}

namespace {

/// Generates pronounceable pseudo-word names so the Hearst parser has a
/// realistic controlled vocabulary to match against.
class NameGenerator {
 public:
  explicit NameGenerator(Rng* rng) : rng_(rng) {}

  std::string NewWord(int min_syllables, int max_syllables) {
    static const char* kOnsets[] = {"b", "k",  "d",  "f",  "g", "l", "m",
                                    "n", "p",  "r",  "s",  "t", "v", "z",
                                    "br", "kr", "dr", "st", "tr", "pl"};
    static const char* kNuclei[] = {"a", "e", "i", "o", "u", "ai", "ou", "ea"};
    static const char* kCodas[] = {"", "", "n", "r", "l", "s", "t", "k", "m"};
    std::string word;
    int syllables =
        static_cast<int>(rng_->NextInt(min_syllables, max_syllables));
    for (int i = 0; i < syllables; ++i) {
      word += kOnsets[rng_->NextBounded(std::size(kOnsets))];
      word += kNuclei[rng_->NextBounded(std::size(kNuclei))];
      word += kCodas[rng_->NextBounded(std::size(kCodas))];
    }
    return word;
  }

 private:
  Rng* rng_;
};

double ZipfWeight(size_t rank, double exponent) {
  return 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
}

}  // namespace

Status ValidateWorldSpec(const WorldSpec& spec) {
  auto probability = [](double v, const char* field) {
    if (!(v >= 0.0 && v <= 1.0)) {  // NaN fails both comparisons.
      return Status::InvalidArgument(std::string("WorldSpec.") + field +
                                     " must be in [0, 1]");
    }
    return Status::OK();
  };
  if (spec.num_concepts < 1) {
    return Status::InvalidArgument("WorldSpec.num_concepts must be >= 1");
  }
  if (spec.min_instances < 1) {
    return Status::InvalidArgument("WorldSpec.min_instances must be >= 1");
  }
  if (spec.max_instances < spec.min_instances) {
    return Status::InvalidArgument(
        "WorldSpec.max_instances must be >= min_instances");
  }
  if (!std::isfinite(spec.popularity_zipf) || spec.popularity_zipf < 0.0) {
    return Status::InvalidArgument(
        "WorldSpec.popularity_zipf must be finite and >= 0");
  }
  if (Status s = probability(spec.polysemy_rate, "polysemy_rate"); !s.ok()) return s;
  if (Status s = probability(spec.similar_twin_rate, "similar_twin_rate"); !s.ok()) return s;
  if (Status s = probability(spec.twin_overlap, "twin_overlap"); !s.ok()) return s;
  if (Status s = probability(spec.verified_fraction, "verified_fraction"); !s.ok()) return s;
  if (Status s = probability(spec.morph_variant_rate, "morph_variant_rate"); !s.ok()) return s;
  if (spec.min_confusables < 0) {
    return Status::InvalidArgument("WorldSpec.min_confusables must be >= 0");
  }
  if (spec.max_confusables < spec.min_confusables) {
    return Status::InvalidArgument(
        "WorldSpec.max_confusables must be >= min_confusables");
  }
  std::unordered_set<std::string> seen;
  for (const std::string& name : spec.named_concepts) {
    if (name.empty()) {
      return Status::InvalidArgument("WorldSpec.named_concepts has an empty name");
    }
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("WorldSpec.named_concepts duplicates \"" +
                                     name + "\"");
    }
  }
  return Status::OK();
}

Result<World> GenerateWorldChecked(const WorldSpec& spec, Rng* rng) {
  Status valid = ValidateWorldSpec(spec);
  if (!valid.ok()) return valid;
  return GenerateWorld(spec, rng);
}

World GenerateWorld(const WorldSpec& spec, Rng* rng) {
  assert(ValidateWorldSpec(spec).ok());
  World::Builder builder;
  NameGenerator names(rng);

  // Local mirrors of what the builder accumulates, so the whole world is
  // assembled in a single pass.
  std::vector<ConceptId> concepts;
  std::vector<std::vector<InstanceId>> members_of;
  std::vector<std::vector<size_t>> confusables_of;  // indices into `concepts`
  std::vector<int> twin_of;                         // -1 when none
  std::unordered_set<std::string> used_names(spec.named_concepts.begin(),
                                             spec.named_concepts.end());
  std::unordered_set<std::string> used_instance_names;
  std::vector<std::string> instance_names;  // insertion-ordered for rng picks
  std::unordered_set<IsAPair, IsAPairHash> memberships;

  auto new_instance_name = [&]() {
    // Morphology-heavy worlds mint some names as pluralized variants of
    // earlier ones ("bakon"/"bakons" as distinct instances). The branch
    // consumes no rng draws at rate 0 so legacy seeds are unchanged.
    if (spec.morph_variant_rate > 0.0 && !instance_names.empty() &&
        rng->NextBool(spec.morph_variant_rate)) {
      const std::string& base =
          instance_names[rng->NextBounded(instance_names.size())];
      std::string variant = Pluralize(base);
      if (used_instance_names.insert(variant).second) {
        instance_names.push_back(variant);
        return variant;
      }
      // Variant already taken (re-pluralized or clashing) — fresh word below.
    }
    std::string name;
    do {
      name = names.NewWord(2, 4);
    } while (!used_instance_names.insert(name).second);
    instance_names.push_back(name);
    return name;
  };

  // 1. Concepts: named evaluation concepts first, then pseudo-word names.
  for (const std::string& name : spec.named_concepts) {
    if (static_cast<int>(concepts.size()) == spec.num_concepts) break;
    concepts.push_back(builder.AddConcept(name));
  }
  while (static_cast<int>(concepts.size()) < spec.num_concepts) {
    std::string name = names.NewWord(2, 3);
    if (!used_names.insert(name).second) continue;
    concepts.push_back(builder.AddConcept(name));
  }
  size_t base_count = concepts.size();
  members_of.resize(base_count);
  confusables_of.resize(base_count);
  twin_of.assign(base_count, -1);

  auto add_membership = [&](size_t ci, InstanceId e, double weight) {
    if (!memberships.insert(IsAPair{concepts[ci], e}).second) return false;
    builder.AddMembership(concepts[ci], e, weight);
    members_of[ci].push_back(e);
    return true;
  };

  // 2. Members with Zipf popularity. Per-concept sizes are log-uniform so a
  //    few concepts are much larger than most ("animal" vs "key u.s. export").
  size_t named_count = spec.named_concepts.size();
  for (size_t ci = 0; ci < base_count; ++ci) {
    int count;
    if (ci < named_count) {
      // Named evaluation concepts are large ("animal" has 16k instances in
      // the paper's Table 1) — draw from the upper half of the size range.
      count = static_cast<int>(
          rng->NextInt(spec.max_instances / 2, spec.max_instances));
    } else {
      double log_lo = std::log(static_cast<double>(spec.min_instances));
      double log_hi = std::log(static_cast<double>(spec.max_instances));
      count = static_cast<int>(std::exp(rng->NextDouble(log_lo, log_hi)));
      count = std::max(count, spec.min_instances);
    }
    for (int i = 0; i < count; ++i) {
      InstanceId e = builder.AddInstance(new_instance_name());
      add_membership(ci, e, ZipfWeight(i, spec.popularity_zipf));
    }
  }

  // 3. Highly-similar twins: a twin shares `twin_overlap` of the base
  //    concept's members and contributes a few of its own.
  int twin_target = static_cast<int>(spec.similar_twin_rate * spec.num_concepts);
  for (int t = 0; t < twin_target; ++t) {
    size_t base = rng->NextBounded(base_count);
    if (twin_of[base] >= 0) continue;
    std::string twin_name;
    do {
      twin_name = names.NewWord(2, 3);
    } while (!used_names.insert(twin_name).second);
    size_t twin_idx = concepts.size();
    concepts.push_back(builder.AddConcept(twin_name));
    members_of.emplace_back();
    confusables_of.emplace_back();
    twin_of.push_back(static_cast<int>(base));
    twin_of[base] = static_cast<int>(twin_idx);
    size_t rank = 0;
    for (InstanceId e : members_of[base]) {
      if (rng->NextBool(spec.twin_overlap)) {
        add_membership(twin_idx, e, ZipfWeight(rank++, spec.popularity_zipf));
      }
    }
    for (int extra = 0; extra < 3; ++extra) {
      InstanceId e = builder.AddInstance(new_instance_name());
      add_membership(twin_idx, e, ZipfWeight(rank++, spec.popularity_zipf));
    }
    builder.SetSimilarTwins(concepts[base], concepts[twin_idx]);
  }

  // 4. Confusable sets: topical co-occurrence partners, excluding twins.
  for (size_t ci = 0; ci < concepts.size(); ++ci) {
    int want = static_cast<int>(
        rng->NextInt(spec.min_confusables, spec.max_confusables));
    int guard = 0;
    while (static_cast<int>(confusables_of[ci].size()) < want && guard++ < 200) {
      size_t other = rng->NextBounded(concepts.size());
      if (other == ci || twin_of[ci] == static_cast<int>(other)) continue;
      if (std::find(confusables_of[ci].begin(), confusables_of[ci].end(), other) !=
          confusables_of[ci].end()) {
        continue;
      }
      confusables_of[ci].push_back(other);
      confusables_of[other].push_back(ci);
      builder.AddConfusable(concepts[ci], concepts[other]);
      builder.AddConfusable(concepts[other], concepts[ci]);
    }
  }

  // 5. Polysemes: popular members of a *home* concept additionally join one
  //    confusable *guest* concept with a low popularity there (chicken:
  //    famous animal, obscure iteration-1 food). The asymmetry is what makes
  //    a later guest-topic sentence drift toward the home concept — the
  //    polyseme's home pair is well-established while its guest pair (and
  //    the guest's tail instances) are not.
  for (size_t ci = 0; ci < base_count; ++ci) {
    if (confusables_of[ci].empty()) continue;
    // Popular home concepts produce most polysemes: a drift-causing word is
    // one whose home sense is famous (chicken the animal), and concept
    // popularity follows index order (the corpus generator's Zipf).
    double popularity_weight =
        1.0 / (1.0 + 4.0 * static_cast<double>(ci) / static_cast<double>(base_count));
    // Iterate over a snapshot: add_membership mutates members_of[target].
    std::vector<InstanceId> snapshot = members_of[ci];
    size_t head_zone = std::max<size_t>(1, snapshot.size() / 3);
    for (size_t rank = 0; rank < snapshot.size(); ++rank) {
      // Popular (head-zone) members polysemize at the full rate; tail
      // members only rarely (common words are the ambiguous ones).
      double rate = rank < head_zone ? spec.polysemy_rate : spec.polysemy_rate / 4;
      rate *= popularity_weight;
      if (!rng->NextBool(rate)) continue;
      size_t target = confusables_of[ci][rng->NextBounded(confusables_of[ci].size())];
      // Twin-linked targets would not be mutually exclusive; skip them.
      if (twin_of[ci] == static_cast<int>(target)) continue;
      InstanceId e = snapshot[rank];
      if (add_membership(target, e, rng->NextDouble(0.001, 0.02))) {
        builder.AddPolyseme(e, concepts[ci], concepts[target]);
      }
    }
  }

  // 6. Verified source: a random subset of true memberships, biased toward
  //    popular pairs (popular facts are the ones encyclopedias carry).
  for (size_t ci = 0; ci < concepts.size(); ++ci) {
    const auto& members = members_of[ci];
    for (size_t i = 0; i < members.size(); ++i) {
      double rank_fraction =
          static_cast<double>(i) / std::max<size_t>(members.size(), 1);
      double p = std::clamp(spec.verified_fraction * (1.5 - rank_fraction), 0.0, 1.0);
      if (rng->NextBool(p)) builder.MarkVerified(concepts[ci], members[i]);
    }
  }

  return builder.Build();
}

}  // namespace semdrift
