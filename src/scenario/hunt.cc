#include "scenario/hunt.h"

#include <algorithm>

#include "scenario/grammar.h"
#include "util/string_util.h"

namespace semdrift {
namespace scenario {

namespace {

void Log(const HuntOptions& options, const std::string& line) {
  if (options.log) options.log(line);
}

std::string DescribeFailure(const std::string& failure_class,
                            const ScenarioMetrics& m,
                            const HuntOptions& options) {
  if (failure_class == "invariant") return "invariant break";
  if (failure_class == "stream-divergence") {
    return "stream_divergence=" + FormatDouble(m.stream_divergence, 3) +
           " above threshold " +
           FormatDouble(options.stream_divergence_threshold, 3) + " (" +
           std::to_string(m.stream_epochs) + " epochs, " +
           std::to_string(m.stream_full_rebuilds) + " rebuilds)";
  }
  if (failure_class == "precision-collapse") {
    return "precision_after=" + FormatDouble(m.precision_after, 3) +
           " below floor " + FormatDouble(options.precision_floor, 3) + " (" +
           std::to_string(m.live_pairs_after) + " live pairs)";
  }
  return "cleaning dropped precision " + FormatDouble(m.precision_before, 3) +
         " -> " + FormatDouble(m.precision_after, 3) + " (margin " +
         FormatDouble(options.regression_margin, 3) + ")";
}

}  // namespace

std::string ClassifyFailure(const ScenarioOutcome& outcome,
                            const HuntOptions& options) {
  const ScenarioMetrics& m = outcome.metrics;
  if (outcome.invariant_failure) return "invariant";
  if (m.stream_divergence_defined &&
      m.stream_divergence > options.stream_divergence_threshold) {
    return "stream-divergence";
  }
  if (m.rounds >= 1 &&
      m.records_rolled_back >= options.min_rolled_back_for_collapse &&
      m.precision_after_defined &&
      m.live_pairs_after >= options.min_pairs_for_collapse &&
      m.precision_after < options.precision_floor) {
    return "precision-collapse";
  }
  if (m.precision_before_defined && m.precision_after_defined &&
      m.precision_after < m.precision_before - options.regression_margin) {
    return "cleaning-regression";
  }
  return "";
}

void PinEnvelope(Scenario* s, const ScenarioMetrics& m) {
  ScenarioEnvelope e;
  if (m.precision_before_defined) {
    e.min_precision_before = std::max(0.0, m.precision_before - 0.05);
  }
  if (m.precision_after_defined) {
    e.min_precision_after = std::max(0.0, m.precision_after - 0.05);
    e.max_precision_after = std::min(1.0, m.precision_after + 0.05);
  }
  if (m.cleaning.pcorr_defined) {
    e.min_pcorr = std::max(0.0, m.cleaning.pcorr - 0.05);
  }
  // Counts are deterministic; the slack only guards against platform noise.
  e.min_live_pairs_after =
      static_cast<int64_t>(m.live_pairs_after - m.live_pairs_after / 5);
  e.max_rounds = m.rounds;
  e.max_records_rolled_back =
      static_cast<int64_t>(m.records_rolled_back + m.records_rolled_back / 5);
  e.max_quarantined = static_cast<int64_t>(m.quarantined);
  if (m.stream_divergence_defined) {
    e.max_stream_divergence = std::min(1.0, m.stream_divergence + 0.05);
  }
  s->envelope = e;
}

Result<HuntReport> RunHunt(const HuntOptions& options) {
  HuntReport report;
  for (int i = 0; i < options.num_samples; ++i) {
    const uint64_t sample_seed = options.seed + static_cast<uint64_t>(i);
    Scenario sample = options.archetype.empty()
                          ? SampleScenario(sample_seed)
                          : SampleScenario(sample_seed, options.archetype);
    auto outcome = RunScenario(sample);
    ++report.samples_run;
    if (!outcome.ok()) {
      // A sampled scenario failing validation is a grammar bug — surface it.
      return Status::Internal("hunt: sample seed " +
                              std::to_string(sample_seed) + " unusable: " +
                              std::string(outcome.status().message()));
    }
    const std::string failure_class = ClassifyFailure(*outcome, options);
    Log(options, sample.name + ": " + FormatMetricsLine(outcome->metrics) +
                     (failure_class.empty() ? "" : "  [" + failure_class + "]"));
    if (failure_class.empty()) continue;

    HuntFinding finding;
    finding.sample_seed = sample_seed;
    finding.failure_class = failure_class;
    finding.scenario = sample;
    finding.metrics = outcome->metrics;
    const std::string pre_shrink =
        DescribeFailure(failure_class, outcome->metrics, options);

    if (options.shrink) {
      auto shrunk = ShrinkScenario(
          sample,
          [&](const Scenario& candidate) {
            auto run = RunScenario(candidate);
            if (!run.ok()) return false;
            return ClassifyFailure(*run, options) == failure_class;
          },
          options.shrink_options);
      if (!shrunk.ok()) return shrunk.status();
      finding.scenario = shrunk->scenario;
      finding.shrink_evaluations = shrunk->evaluations;
      auto final_run = RunScenario(shrunk->scenario);
      if (!final_run.ok()) return final_run.status();
      finding.metrics = final_run->metrics;
      Log(options, "  shrunk in " + std::to_string(shrunk->evaluations) +
                       " evals: " + FormatMetricsLine(finding.metrics));
    }

    finding.summary = failure_class + ": " +
                      DescribeFailure(failure_class, finding.metrics, options);
    finding.scenario.notes =
        "hunter discovery (seed " + std::to_string(sample_seed) +
        ", archetype " + finding.scenario.archetype + "): pre-shrink " +
        pre_shrink + "; minimized " +
        DescribeFailure(failure_class, finding.metrics, options);
    PinEnvelope(&finding.scenario, finding.metrics);
    report.findings.push_back(std::move(finding));
  }
  return report;
}

}  // namespace scenario
}  // namespace semdrift
