#include "text/vocab.h"

namespace semdrift {

uint32_t Vocab::Intern(std::string_view term) {
  auto it = index_.find(std::string(term));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

uint32_t Vocab::Find(std::string_view term) const {
  auto it = index_.find(std::string(term));
  if (it == index_.end()) return kNotFound;
  return it->second;
}

}  // namespace semdrift
