#include "net/line_channel.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <utility>

namespace semdrift {

LineDecoder::LineDecoder(size_t max_line_bytes)
    : max_line_bytes_(max_line_bytes == 0 ? 1 : max_line_bytes) {}

void LineDecoder::Feed(std::string_view bytes) {
  size_t start = 0;
  while (start < bytes.size()) {
    const size_t nl = bytes.find('\n', start);
    if (nl == std::string_view::npos) {
      // No terminator in this fragment: accumulate (or keep discarding).
      if (!discarding_) {
        partial_.append(bytes.substr(start));
        if (partial_.size() > max_line_bytes_) {
          partial_.clear();
          discarding_ = true;
        }
      }
      return;
    }
    if (discarding_) {
      // The oversized line finally terminated; report it in sequence.
      ready_.push_back(Pending{true, std::string()});
      discarding_ = false;
    } else {
      partial_.append(bytes.substr(start, nl - start));
      if (partial_.size() > max_line_bytes_) {
        partial_.clear();
        ready_.push_back(Pending{true, std::string()});
      } else {
        if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
        ready_.push_back(Pending{false, std::move(partial_)});
      }
      partial_.clear();
    }
    start = nl + 1;
  }
}

LineDecoder::Event LineDecoder::Next(std::string* line) {
  if (ready_.empty()) return Event::kNone;
  Pending p = std::move(ready_.front());
  ready_.pop_front();
  if (p.oversized) return Event::kOversized;
  *line = std::move(p.line);
  return Event::kLine;
}

bool LineDecoder::TakeResidue(std::string* line) {
  if (discarding_) {
    // The peer hung up mid-oversized-line; nothing worth answering.
    discarding_ = false;
    return false;
  }
  if (partial_.empty()) return false;
  if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
  *line = std::move(partial_);
  partial_.clear();
  return !line->empty();
}

void WriteQueue::Push(std::string bytes) {
  if (bytes.empty()) return;
  pending_bytes_ += bytes.size();
  chunks_.push_back(std::move(bytes));
}

WriteQueue::FlushResult WriteQueue::Flush(int fd) {
  while (!chunks_.empty()) {
    const std::string& front = chunks_.front();
    const char* data = front.data() + front_offset_;
    const size_t len = front.size() - front_offset_;
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the process.
    ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, data, len);  // pipes in tests
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return FlushResult::kBlocked;
      return FlushResult::kError;
    }
    pending_bytes_ -= static_cast<size_t>(n);
    front_offset_ += static_cast<size_t>(n);
    if (front_offset_ == front.size()) {
      chunks_.pop_front();
      front_offset_ = 0;
    } else {
      // Partial write: the kernel buffer is full enough that the next send
      // would likely block anyway.
      return FlushResult::kBlocked;
    }
  }
  return FlushResult::kDrained;
}

bool ParseListenAddress(const std::string& spec, ListenAddress* out,
                        std::string* error) {
  *out = ListenAddress{};
  std::string rest = spec;
  if (rest.rfind("unix:", 0) == 0) {
    out->is_unix = true;
    out->path = rest.substr(5);
    if (out->path.empty()) {
      if (error != nullptr) *error = "unix address needs a path: " + spec;
      return false;
    }
    return true;
  }
  if (rest.rfind("tcp:", 0) == 0) rest = rest.substr(4);
  const size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
    if (error != nullptr) {
      *error = "expected tcp:host:port, unix:/path, or host:port: " + spec;
    }
    return false;
  }
  out->host = rest.substr(0, colon);
  const std::string port_str = rest.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
    if (error != nullptr) *error = "bad port '" + port_str + "' in: " + spec;
    return false;
  }
  out->port = static_cast<uint16_t>(port);
  return true;
}

}  // namespace semdrift
