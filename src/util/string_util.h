#ifndef SEMDRIFT_UTIL_STRING_UTIL_H_
#define SEMDRIFT_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace semdrift {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on any run of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// Trims ASCII whitespace from both ends.
std::string Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Formats a double with fixed `digits` decimals (the paper's table style,
/// e.g. 0.9696 -> "0.970" at 3 digits).
std::string FormatDouble(double v, int digits);

/// Formats an integer count with thousands separators, e.g. 90521133 ->
/// "90,521,133"; used by bench output that mirrors the paper's large counts.
std::string FormatCount(int64_t v);

/// Checked numeric parsing. Unlike std::atof / std::strtoull these reject
/// trailing garbage, empty input and out-of-range values instead of
/// silently returning 0 — the loaders and the CLI use them so a corrupt
/// field surfaces as an error, never as a wrong number.
bool ParseDouble(std::string_view s, double* out);
bool ParseInt64(std::string_view s, int64_t* out);
bool ParseUint64(std::string_view s, uint64_t* out);
/// Like ParseInt64 but additionally range-checks into [lo, hi].
bool ParseIntInRange(std::string_view s, int64_t lo, int64_t hi, int64_t* out);

}  // namespace semdrift

#endif  // SEMDRIFT_UTIL_STRING_UTIL_H_
