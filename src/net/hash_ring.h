#ifndef SEMDRIFT_NET_HASH_RING_H_
#define SEMDRIFT_NET_HASH_RING_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace semdrift {

/// Consistent-hash ring mapping routing keys (concept/instance names) to
/// shards. Each shard contributes `vnodes` virtual points so the key space
/// splits near-evenly, and adding or removing one shard moves only ~1/N of
/// the keys. Hashing is FNV-1a for keys and splitmix64 for vnode points —
/// deliberately NOT std::hash, whose layout varies across standard
/// libraries; the shard map must be identical in every process that loads
/// the same snapshot (router, bench clients, tests).
class HashRing {
 public:
  HashRing(uint32_t num_shards, uint32_t vnodes_per_shard = 64);

  /// Shard owning `key` (clockwise successor on the ring).
  uint32_t OwnerOf(std::string_view key) const;

  uint32_t num_shards() const { return num_shards_; }

  /// Stable 64-bit FNV-1a of a routing key (exposed for tests).
  static uint64_t HashKey(std::string_view key);

 private:
  struct Point {
    uint64_t position;
    uint32_t shard;
  };
  uint32_t num_shards_;
  /// Sorted by position; OwnerOf is one upper_bound.
  std::vector<Point> points_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_NET_HASH_RING_H_
