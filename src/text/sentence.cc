#include "text/sentence.h"

namespace semdrift {

SentenceId SentenceStore::Add(Sentence sentence) {
  SentenceId id(static_cast<uint32_t>(sentences_.size()));
  sentence.id = id;
  sentences_.push_back(std::move(sentence));
  return id;
}

}  // namespace semdrift
