# Empty compiler generated dependencies file for bench_fig5b_threshold_k.
# This may be replaced when dependencies are built.
