file(REMOVE_RECURSE
  "libsemdrift_extract.a"
)
