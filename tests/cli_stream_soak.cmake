# CTest script: streaming extraction soak. A `semdrift stream` run publishes
# one generation per epoch into a live `serve --listen --publish-dir` while 4
# concurrent client processes query across the generation swaps. Determinism
# makes the check exact: the stream is run twice with identical flags — the
# first (offline) pass records every epoch's snapshot and its one-shot
# answers; the second pass publishes live. Each client answer is then diffed
# against the one-shot answer of the generation that served it (swap-raced
# answers must match *some* epoch). The script also asserts at least 5 live
# swaps happened, that the server survives SIGTERM cleanly, and — batch
# differential at the CLI level — that the final published image is
# byte-identical to a one-shot `semdrift run` over the full corpus.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})
find_program(SH sh REQUIRED)

set(EPOCHS 6)

execute_process(
  COMMAND ${CLI} generate --scale 0.02 --seed 31
          --world ${WORK_DIR}/w.tsv --corpus ${WORK_DIR}/c.tsv
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed (${rc}): ${out} ${err}")
endif()

# Batch reference over the full corpus.
execute_process(
  COMMAND ${CLI} run --world ${WORK_DIR}/w.tsv --corpus ${WORK_DIR}/c.tsv
          --out ${WORK_DIR}/t.tsv --snapshot-out ${WORK_DIR}/batch.bin
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run failed (${rc}): ${out} ${err}")
endif()

# Pass 1 (offline): record each epoch's snapshot. No publish dir, no sleeps.
execute_process(
  COMMAND ${CLI} stream --world ${WORK_DIR}/w.tsv --corpus ${WORK_DIR}/c.tsv
          --epochs ${EPOCHS} --epoch-snapshots ${WORK_DIR}/es
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "stream pass 1 failed (${rc}): ${out} ${err}")
endif()

# The final epoch is a full rebuild: its snapshot must equal the batch image.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/es/epoch-${EPOCHS}.bin ${WORK_DIR}/batch.bin
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "final stream epoch snapshot differs from batch run image")
endif()

# Query workload: a live pair from the batch taxonomy plus a NOT_FOUND probe.
file(STRINGS ${WORK_DIR}/t.tsv taxonomy_lines LIMIT_COUNT 2)
list(GET taxonomy_lines 1 first_pair)
string(REPLACE "\t" ";" first_pair_fields "${first_pair}")
list(GET first_pair_fields 0 concept_name)
list(GET first_pair_fields 1 instance_name)

set(queries
  "instances-of\t${concept_name}\t5"
  "concepts-of\t${instance_name}"
  "is-a\t${instance_name}\t${concept_name}"
  "drift-score\t${instance_name}\t${concept_name}"
  "instances-of\tno such concept"
)
list(LENGTH queries num_queries)
math(EXPR last_query "${num_queries} - 1")

# Per-epoch one-shot expected answers: exp-<generation>-<query index>.txt.
# Generation numbers equal epoch numbers (one publish per epoch).
foreach(gen RANGE 1 ${EPOCHS})
  set(qi 0)
  foreach(q IN LISTS queries)
    string(REPLACE "\t" ";" argv "${q}")
    execute_process(
      COMMAND ${CLI} query --snapshot ${WORK_DIR}/es/epoch-${gen}.bin ${argv}
      RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
    file(WRITE ${WORK_DIR}/exp-${gen}-${qi}.txt "${out}")
    math(EXPR qi "${qi} + 1")
  endforeach()
endforeach()

# Pass 2 (live): same stream flags plus a publish dir and an inter-epoch
# sleep that gives the 50ms watcher time to swap each generation in.
set(PUB ${WORK_DIR}/pub)
file(MAKE_DIRECTORY ${PUB})
execute_process(
  COMMAND ${SH} -c "'${CLI}' stream --world '${WORK_DIR}/w.tsv' --corpus '${WORK_DIR}/c.tsv' --epochs ${EPOCHS} --publish-dir '${PUB}' --epoch-sleep-ms 400 > '${WORK_DIR}/stream.log' 2>&1 & echo $!"
  RESULT_VARIABLE rc OUTPUT_VARIABLE stream_pid)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "failed to launch stream pass 2 (${rc})")
endif()
string(STRIP "${stream_pid}" stream_pid)

# The server needs generation 1 on disk before it can start serving.
set(ready FALSE)
foreach(attempt RANGE 300)
  if(EXISTS ${PUB}/snap-1.bin)
    set(ready TRUE)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT ready)
  file(READ ${WORK_DIR}/stream.log stream_log)
  message(FATAL_ERROR "stream never published snap-1.bin: ${stream_log}")
endif()

set(SOCK ${WORK_DIR}/serve.sock)
file(REMOVE ${SOCK})
execute_process(
  COMMAND ${SH} -c "'${CLI}' serve --listen 'unix:${SOCK}' --publish-dir '${PUB}' --poll-ms 50 --shards 2 > '${WORK_DIR}/server.log' 2>&1 & echo $!"
  RESULT_VARIABLE rc OUTPUT_VARIABLE server_pid)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "failed to launch server (${rc})")
endif()
string(STRIP "${server_pid}" server_pid)

set(ready FALSE)
foreach(attempt RANGE 100)
  if(EXISTS ${SOCK})
    set(ready TRUE)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT ready)
  file(READ ${WORK_DIR}/server.log server_log)
  message(FATAL_ERROR "server never created ${SOCK}: ${server_log}")
endif()

# 4 closed-loop clients querying until the publisher exits (so they overlap
# every remaining swap), then one final sweep at the settled generation.
# Answer checking: bracket each query with `stats` generation reads — if the
# generation held steady the answer must equal that generation's one-shot
# answer exactly; if a swap raced the query it must still equal *some*
# epoch's answer (never a torn or mixed result).
foreach(client RANGE 1 4)
  set(script "check_one() {\n")
  string(APPEND script "  idx=$1; shift\n")
  string(APPEND script "  g1=$('${CLI}' query --connect 'unix:${SOCK}' stats 2>/dev/null | sed -n 's/.*\\tgeneration=\\([0-9]*\\)\\t.*/\\1/p')\n")
  string(APPEND script "  '${CLI}' query --connect 'unix:${SOCK}' \"$@\" > '${WORK_DIR}/client${client}-ans.txt' 2>/dev/null\n")
  string(APPEND script "  g2=$('${CLI}' query --connect 'unix:${SOCK}' stats 2>/dev/null | sed -n 's/.*\\tgeneration=\\([0-9]*\\)\\t.*/\\1/p')\n")
  string(APPEND script "  if [ -n \"$g1\" ] && [ \"$g1\" = \"$g2\" ]; then\n")
  string(APPEND script "    if ! cmp -s '${WORK_DIR}/client${client}-ans.txt' \"${WORK_DIR}/exp-$g1-$idx.txt\"; then\n")
  string(APPEND script "      echo \"generation $g1 query $idx diverged from one-shot answer\" >> '${WORK_DIR}/client${client}-errors.txt'\n")
  string(APPEND script "    fi\n")
  string(APPEND script "  else\n")
  string(APPEND script "    ok=0\n")
  string(APPEND script "    for k in $(seq 1 ${EPOCHS}); do\n")
  string(APPEND script "      cmp -s '${WORK_DIR}/client${client}-ans.txt' \"${WORK_DIR}/exp-$k-$idx.txt\" && ok=1\n")
  string(APPEND script "    done\n")
  string(APPEND script "    if [ $ok -ne 1 ]; then\n")
  string(APPEND script "      echo \"query $idx answer matches no epoch (swap race)\" >> '${WORK_DIR}/client${client}-errors.txt'\n")
  string(APPEND script "    fi\n")
  string(APPEND script "  fi\n")
  string(APPEND script "}\n")
  string(APPEND script "sweep() {\n")
  set(qi 0)
  foreach(q IN LISTS queries)
    string(REPLACE "\t" "' '" shell_args "${q}")
    string(APPEND script "  check_one ${qi} '${shell_args}'\n")
    math(EXPR qi "${qi} + 1")
  endforeach()
  string(APPEND script "}\n")
  string(APPEND script "rm -f '${WORK_DIR}/client${client}-errors.txt'\n")
  string(APPEND script "while kill -0 ${stream_pid} 2>/dev/null; do sweep; sleep 0.2; done\n")
  string(APPEND script "sweep\n")
  file(WRITE ${WORK_DIR}/client${client}.sh "${script}")
endforeach()
set(spawn "")
foreach(client RANGE 1 4)
  string(APPEND spawn "${SH} '${WORK_DIR}/client${client}.sh' & ")
endforeach()
string(APPEND spawn "wait")
execute_process(
  COMMAND ${SH} -c "${spawn}"
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "soak clients failed (${rc}): ${err}")
endif()

# The publisher must have exited cleanly.
execute_process(
  COMMAND ${SH} -c "while kill -0 ${stream_pid} 2>/dev/null; do sleep 0.1; done")
file(READ ${WORK_DIR}/stream.log stream_log)
if(NOT stream_log MATCHES "stream done")
  message(FATAL_ERROR "stream pass 2 did not finish cleanly: ${stream_log}")
endif()

# Zero divergence across every client.
foreach(client RANGE 1 4)
  if(EXISTS ${WORK_DIR}/client${client}-errors.txt)
    file(READ ${WORK_DIR}/client${client}-errors.txt errors)
    message(FATAL_ERROR "client ${client} saw diverging answers:\n${errors}")
  endif()
endforeach()

# Let the watcher catch the final publish, then require >= 5 live swaps
# (6 generations were published; the initial install also counts).
execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.5)
execute_process(
  COMMAND ${CLI} query --connect unix:${SOCK} metrics
  RESULT_VARIABLE rc OUTPUT_VARIABLE metrics_out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "metrics over the socket failed (${rc}): ${metrics_out}")
endif()
string(REGEX MATCH "\"serve\\.swap\\.count\":([0-9]+)" swap_match "${metrics_out}")
if(NOT swap_match)
  message(FATAL_ERROR "metrics missing serve.swap.count: ${metrics_out}")
endif()
if(CMAKE_MATCH_1 LESS 5)
  message(FATAL_ERROR "expected >= 5 live swaps, got ${CMAKE_MATCH_1}")
endif()

# The served end state is the published final generation, which is the batch
# image byte for byte.
execute_process(
  COMMAND ${CLI} query --connect unix:${SOCK} stats
  RESULT_VARIABLE rc OUTPUT_VARIABLE stats_out)
if(NOT stats_out MATCHES "generation=${EPOCHS}\t")
  message(FATAL_ERROR "server did not reach generation ${EPOCHS}: ${stats_out}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${PUB}/snap-${EPOCHS}.bin ${WORK_DIR}/batch.bin
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "published final generation differs from batch image")
endif()

# Graceful shutdown: SIGTERM stops the server and unlinks the socket.
execute_process(COMMAND ${SH} -c "kill -TERM ${server_pid}")
set(stopped FALSE)
foreach(attempt RANGE 100)
  execute_process(COMMAND ${SH} -c "kill -0 ${server_pid} 2>/dev/null"
                  RESULT_VARIABLE alive)
  if(NOT alive EQUAL 0)
    set(stopped TRUE)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT stopped)
  execute_process(COMMAND ${SH} -c "kill -KILL ${server_pid}")
  message(FATAL_ERROR "server did not exit on SIGTERM")
endif()
if(EXISTS ${SOCK})
  message(FATAL_ERROR "server left its unix socket behind after SIGTERM")
endif()
