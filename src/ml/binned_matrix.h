#ifndef SEMDRIFT_ML_BINNED_MATRIX_H_
#define SEMDRIFT_ML_BINNED_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace semdrift {

/// A training matrix quantized once into per-feature bins, stored
/// feature-major (column-major) as uint8_t. This is the LightGBM-style
/// preprocessing step for histogram split finding: after binning, a tree
/// node's split search is one linear pass over the node's rows per feature
/// (accumulating per-bin class counts) instead of a gather + sort + scan of
/// raw doubles per candidate feature per node.
///
/// Binning is quantile-style: each feature's cut points are computed from
/// the full dataset so that bins hold roughly equal row mass. A feature with
/// at most `max_bins` distinct values gets one bin per distinct value, so on
/// low-cardinality data the histogram trainer considers exactly the same
/// thresholds as the exact trainer. Cut points double as the real-valued
/// thresholds written into tree nodes: the split "bin <= b goes left" is
/// exactly the predicate "value <= Threshold(f, b)", so trained trees
/// predict on raw feature vectors with no knowledge of the binning.
///
/// The matrix is immutable after Build and shared read-only by every tree
/// in a forest fit (and by concurrent frontier tasks inside one tree).
class BinnedMatrix {
 public:
  /// At most 256 bins so a bin index always fits a uint8_t.
  static constexpr int kMaxBins = 256;

  BinnedMatrix() = default;

  /// Quantizes row-major `x` (n rows, d features). Fails with
  /// InvalidArgument on an empty matrix, zero-width rows, ragged rows,
  /// non-finite values, or `max_bins` outside [2, 256]. Binning is
  /// parallelized over features (disjoint writes; deterministic at any
  /// thread count).
  static Result<BinnedMatrix> Build(const std::vector<std::vector<double>>& x,
                                    int max_bins);

  size_t num_rows() const { return rows_; }
  size_t num_features() const { return cuts_.size(); }

  /// Bins actually used by feature `f` (1 for a constant feature).
  int num_bins(size_t f) const { return static_cast<int>(cuts_[f].size()) + 1; }

  /// Sum of num_bins over all features — the stride basis for histograms.
  size_t total_bins() const { return total_bins_; }

  /// Offset of feature `f`'s bins inside a flattened histogram laid out as
  /// [feature][bin][class]: feature f's bin b lives at
  /// (hist_offset(f) + b) * num_classes + class.
  size_t hist_offset(size_t f) const { return hist_offsets_[f]; }

  /// Feature-major column: Column(f)[row] is the row's bin for feature f.
  const uint8_t* Column(size_t f) const { return bins_.data() + f * rows_; }

  uint8_t Bin(size_t f, size_t row) const { return bins_[f * rows_ + row]; }

  /// Real-valued threshold for the split "bin <= b goes left" on feature f.
  /// Precondition: 0 <= b < num_bins(f) - 1.
  double Threshold(size_t f, int b) const { return cuts_[f][b]; }

 private:
  size_t rows_ = 0;
  size_t total_bins_ = 0;
  std::vector<uint8_t> bins_;              // Feature-major: f * rows_ + row.
  std::vector<std::vector<double>> cuts_;  // Per feature, num_bins - 1 edges.
  std::vector<size_t> hist_offsets_;       // Prefix sums of num_bins.
};

}  // namespace semdrift

#endif  // SEMDRIFT_ML_BINNED_MATRIX_H_
