#include "dp/cleaner.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "dp/sentence_check.h"
#include "obs/trace.h"
#include "rank/scorers.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace semdrift {

namespace {

/// One flagged (pair, DP type) detection from a classification pass.
struct Detection {
  IsAPair pair;
  DpClass type;
};

/// Supervised score warm-up: one guarded checked walk per concept, results
/// inserted into the cache in scope order. A non-converged walk degrades the
/// concept (capped scores + flag); a walk that throws, stalls past its
/// deadline or emits NaN exhausts its retries and quarantines the concept.
Status WarmSupervised(const KnowledgeBase& kb, ScoreCache* scores,
                      RankModel model, const std::vector<ConceptId>& scope,
                      Supervisor* supervisor) {
  struct Slot {
    ConceptScores value;
    StageOutcome outcome;
  };
  ScopedSpan span(&GlobalTrace(), "warm.batch");
  span.AddTag("concepts", static_cast<uint64_t>(scope.size()));
  std::vector<Slot> slots = ParallelMap<Slot>(scope.size(), [&](size_t i) {
    ConceptId c = scope[i];
    Slot slot;
    std::function<ConceptScores(int)> body = [&, c](int attempt) {
      ConceptScores computed = ScoreConceptChecked(kb, c, model);
      if (supervisor->NanFaultActive(PipelineStage::kScoreWarm, c.value, attempt) &&
          !computed.scores.empty()) {
        computed.scores.begin()->second = std::numeric_limits<double>::quiet_NaN();
      }
      return computed;
    };
    std::function<std::string(const ConceptScores&)> validate =
        [](const ConceptScores& computed) {
          for (const auto& [instance, score] : computed.scores) {
            (void)instance;
            if (!(score == score) || score - score != 0.0) {
              return std::string("non-finite score in converged walk");
            }
          }
          return std::string();
        };
    ConceptScores value;
    if (supervisor->RunGuarded<ConceptScores>(PipelineStage::kScoreWarm, c.value,
                                              body, validate, &value,
                                              &slot.outcome)) {
      slot.value = std::move(value);
    }
    return slot;
  });
  for (size_t i = 0; i < scope.size(); ++i) {
    Status merged = supervisor->MergeOutcome(PipelineStage::kScoreWarm,
                                             scope[i].value, slots[i].outcome);
    if (!merged.ok()) return merged;
    if (!slots[i].outcome.ok) continue;  // Quarantined: never enters the cache.
    if (!slots[i].value.converged) {
      supervisor->health()->Record(
          scope[i].value, ConceptOutcome::kDegraded, 0, PipelineStage::kScoreWarm,
          "walk did not converge after " + std::to_string(slots[i].value.iterations) +
              " iterations; scores capped to [0, 1]");
    }
    scores->Insert(scope[i], std::move(slots[i].value.scores));
  }
  return Status::OK();
}

/// Supervised classification: per-concept guarded passes, detections
/// flattened in scope order (matching the unsupervised serial loop), bad
/// feature vectors dropped with provenance.
Status ClassifySupervised(const KnowledgeBase& kb, const FeatureExtractor& features,
                          const DpDetector& detector,
                          const std::vector<ConceptId>& scope,
                          Supervisor* supervisor, std::vector<Detection>* out) {
  struct Payload {
    std::vector<Detection> detections;
    std::vector<DroppedInstance> drops;
  };
  struct Slot {
    Payload payload;
    StageOutcome outcome;
  };
  ScopedSpan span(&GlobalTrace(), "score.batch");
  span.AddTag("concepts", static_cast<uint64_t>(scope.size()));
  std::vector<Slot> slots = ParallelMap<Slot>(scope.size(), [&](size_t i) {
    ConceptId c = scope[i];
    Slot slot;
    std::function<Payload(int)> body = [&, c](int attempt) {
      Payload payload;
      bool poison = supervisor->NanFaultActive(PipelineStage::kDetectorScore,
                                               c.value, attempt);
      for (InstanceId e : kb.LiveInstancesOf(c)) {
        PollCancellation("detector score");
        FeatureVector f = features.Extract(c, e);
        if (poison) {
          f[0] = std::numeric_limits<double>::quiet_NaN();
          poison = false;
        }
        int bad = FirstNonFiniteIndex(f);
        if (bad >= 0) {
          payload.drops.push_back(DroppedInstance{
              c.value, e.value, PipelineStage::kDetectorScore,
              "non-finite feature f" + std::to_string(bad + 1)});
          continue;
        }
        DpClass type = detector.Classify(c, f);
        if (type == DpClass::kAccidentalDP || type == DpClass::kIntentionalDP) {
          payload.detections.push_back(Detection{IsAPair{c, e}, type});
        }
      }
      return payload;
    };
    Payload value;
    if (supervisor->RunGuarded<Payload>(PipelineStage::kDetectorScore, c.value,
                                        body, {}, &value, &slot.outcome)) {
      slot.payload = std::move(value);
    }
    return slot;
  });
  for (size_t i = 0; i < scope.size(); ++i) {
    Status merged = supervisor->MergeOutcome(PipelineStage::kDetectorScore,
                                             scope[i].value, slots[i].outcome);
    if (!merged.ok()) return merged;
    if (!slots[i].outcome.ok) continue;  // Quarantined: no detections used.
    for (const DroppedInstance& drop : slots[i].payload.drops) {
      supervisor->health()->RecordDrop(drop);
    }
    for (const Detection& detection : slots[i].payload.detections) {
      out->push_back(detection);
    }
  }
  return Status::OK();
}

}  // namespace

DpCleaner::DpCleaner(const SentenceStore* sentences, VerifiedSource verified,
                     size_t num_concepts, CleanerOptions options)
    : sentences_(sentences),
      verified_(std::move(verified)),
      num_concepts_(num_concepts),
      options_(std::move(options)) {}

CleaningReport DpCleaner::Clean(KnowledgeBase* kb,
                                const std::vector<ConceptId>& scope) const {
  // The unsupervised path cannot fail (no guard ever reports an error).
  Result<CleaningReport> result = CleanImpl(kb, scope, nullptr);
  return *result;
}

CleaningReport DpCleaner::CleanDirty(KnowledgeBase* kb,
                                     const std::vector<ConceptId>& dirty,
                                     const std::vector<ConceptId>& within) const {
  std::vector<ConceptId> scope;
  if (within.empty()) {
    scope = dirty;
  } else {
    std::unordered_set<uint32_t> allowed;
    allowed.reserve(within.size());
    for (ConceptId c : within) allowed.insert(c.value);
    for (ConceptId c : dirty) {
      if (allowed.count(c.value) != 0) scope.push_back(c);
    }
  }
  std::sort(scope.begin(), scope.end(),
            [](ConceptId a, ConceptId b) { return a.value < b.value; });
  scope.erase(std::unique(scope.begin(), scope.end(),
                          [](ConceptId a, ConceptId b) { return a.value == b.value; }),
              scope.end());
  if (scope.empty()) {
    CleaningReport report;
    report.live_pairs_before = kb->num_live_pairs();
    report.live_pairs_after = report.live_pairs_before;
    return report;
  }
  return Clean(kb, scope);
}

Result<CleaningReport> DpCleaner::CleanSupervised(
    KnowledgeBase* kb, const std::vector<ConceptId>& scope,
    const SupervisedCleanHooks& hooks) const {
  if (hooks.supervisor == nullptr) {
    return Status::InvalidArgument("CleanSupervised requires a supervisor");
  }
  return CleanImpl(kb, scope, &hooks);
}

Result<CleaningReport> DpCleaner::CleanImpl(KnowledgeBase* kb,
                                            const std::vector<ConceptId>& scope,
                                            const SupervisedCleanHooks* hooks) const {
  Supervisor* supervisor = hooks != nullptr ? hooks->supervisor : nullptr;
  CleaningReport report;
  report.live_pairs_before = kb->num_live_pairs();
  std::unordered_set<IsAPair, IsAPairHash> seen_accidental;
  std::unordered_set<IsAPair, IsAPairHash> seen_intentional;
  std::unique_ptr<DpDetector> detector;

  int first_round = hooks != nullptr ? hooks->first_round : 1;
  // Spans recorded during cleaning carry the round as their epoch; reset on
  // every exit path so later spans (snapshot write, serve) are not
  // attributed to the last round.
  struct EpochReset {
    ~EpochReset() { GlobalTrace().SetEpoch(-1); }
  } epoch_reset;
  for (int round = first_round; round <= options_.max_rounds; ++round) {
    GlobalTrace().SetEpoch(round);
    ScopedSpan round_span(&GlobalTrace(), "clean.round");
    // Quarantined concepts drop out of the scope between rounds/stages only
    // — within a stage the scope is fixed, which keeps surviving concepts'
    // work independent of when a doomed concept's guard fired.
    std::vector<ConceptId> live_scope =
        supervisor != nullptr ? supervisor->Surviving(scope) : scope;
    if (live_scope.empty()) break;

    // Fresh views of the (possibly already partially cleaned) KB.
    MutexIndex mutex(*kb, num_concepts_, options_.mutex);
    ScoreCache scores(kb, options_.score_model);
    // Bulk warm-up: build + walk every in-scope concept graph across the
    // thread pool now, so feature extraction below hits a frozen cache.
    if (supervisor != nullptr) {
      Status warmed = WarmSupervised(*kb, &scores, options_.score_model,
                                     live_scope, supervisor);
      if (!warmed.ok()) return warmed;
      live_scope = supervisor->Surviving(live_scope);
      if (live_scope.empty()) break;
    } else {
      scores.Warm(live_scope);
    }
    FeatureExtractor features(kb, &mutex, &scores);
    SeedLabeler seeds(kb, &mutex, verified_, options_.seeds);

    if (options_.retrain_each_round || detector == nullptr) {
      std::unique_ptr<DpDetector> trained;
      if (supervisor != nullptr) {
        Result<TrainingData> data = CollectTrainingDataSupervised(
            *kb, &features, seeds, live_scope, supervisor);
        if (!data.ok()) return data.status();
        live_scope = supervisor->Surviving(live_scope);
        if (live_scope.empty()) break;
        Result<SupervisedTrainResult> train_result =
            TrainDetectorSupervised(options_.detector, *data, options_.train,
                                    supervisor);
        if (!train_result.ok()) return train_result.status();
        trained = std::move(train_result->detector);
      } else {
        TrainingData data = CollectTrainingData(*kb, &features, seeds, live_scope);
        trained = TrainDetector(options_.detector, data, options_.train);
      }
      if (trained != nullptr) {
        detector = std::move(trained);
      } else if (detector == nullptr) {
        SD_LOG(kWarning) << "DP cleaning: no labeled seeds; nothing to do";
        break;
      }
    }

    // Classify every live instance in scope against this round's features.
    std::vector<Detection> detections;
    if (supervisor != nullptr) {
      Status classified = ClassifySupervised(*kb, features, *detector, live_scope,
                                             supervisor, &detections);
      if (!classified.ok()) return classified;
    } else {
      for (ConceptId c : live_scope) {
        for (InstanceId e : kb->LiveInstancesOf(c)) {
          FeatureVector f = features.Extract(c, e);
          DpClass type = detector->Classify(c, f);
          if (type == DpClass::kAccidentalDP || type == DpClass::kIntentionalDP) {
            detections.push_back(Detection{IsAPair{c, e}, type});
          }
        }
      }
    }

    size_t rolled_this_round = 0;
    // Eq. 21 adjudication of one record; returns rolled-back count.
    auto adjudicate = [&](uint32_t record_id) -> size_t {
      const ExtractionRecord& record = kb->record(record_id);
      if (record.rolled_back) return 0;
      const Sentence& sentence = sentences_->Get(record.sentence);
      if (sentence.candidate_concepts.size() < 2) return 0;
      SmoothedVote vote = SmoothedAttachmentVote(sentence, record.concept_id,
                                                 &scores, options_.eq21_smoothing);
      // Two arbitration views: the raw Eq. 21 argmax (paper-exact; nearly
      // zero false positives) and the smoothed, concept-size-calibrated vote
      // with its weak-evidence floor (Property 4). A disagreement from
      // either rolls the record back.
      ConceptId raw_best = BestAttachment(sentence, &scores);
      SentenceCheckDecision decision;
      decision.record_id = record_id;
      decision.extracted_concept = record.concept_id;
      decision.best_concept = vote.best;
      decision.rolled_back =
          vote.best != record.concept_id || raw_best != record.concept_id ||
          vote.average_vote_for_extracted < options_.eq21_min_average_vote;
      report.sentence_checks.push_back(decision);
      if (!decision.rolled_back) return 0;
      return kb->RollbackRecord(record_id, options_.cascade);
    };

    for (const Detection& detection : detections) {
      if (!kb->Contains(detection.pair)) continue;  // Died in an earlier cascade.
      if (detection.type == DpClass::kAccidentalDP) {
        if (seen_accidental.insert(detection.pair).second) {
          report.accidental_dps.push_back(detection.pair);
        }
        if (options_.eq21_gate_accidental) {
          // Arbitrate every extraction the DP activated...
          for (uint32_t record_id : kb->LiveRecordsTriggeredBy(detection.pair)) {
            rolled_this_round += adjudicate(record_id);
          }
          // ...and every extraction that produced the pair. Ambiguous
          // producers get the Eq. 21 check; an unambiguous producer is
          // rolled back only when it is the pair's sole support (the
          // accidental single-sentence signature, Property 3).
          const PairStats* stats = kb->Find(detection.pair);
          if (stats != nullptr) {
            std::vector<uint32_t> producers = stats->producing_records;
            for (uint32_t record_id : producers) {
              const ExtractionRecord& record = kb->record(record_id);
              if (record.rolled_back) continue;
              const Sentence& sentence = sentences_->Get(record.sentence);
              if (sentence.candidate_concepts.size() >= 2) {
                rolled_this_round += adjudicate(record_id);
              } else if (kb->Count(detection.pair) == 1) {
                rolled_this_round +=
                    kb->RollbackRecord(record_id, options_.cascade);
              }
            }
          }
        } else {
          // The paper's unconditional treatment: drop the DP and everything
          // it activated.
          rolled_this_round +=
              kb->RollbackTriggeredBy(detection.pair, options_.cascade);
          rolled_this_round += kb->RemovePair(detection.pair, options_.cascade);
        }
      } else {
        if (seen_intentional.insert(detection.pair).second) {
          report.intentional_dps.push_back(detection.pair);
        }
        // Eq. 21 adjudication of every live extraction this DP triggered.
        for (uint32_t record_id : kb->LiveRecordsTriggeredBy(detection.pair)) {
          rolled_this_round += adjudicate(record_id);
        }
      }
    }

    report.rounds = round;
    report.records_rolled_back += rolled_this_round;
    round_span.AddTag("scope", static_cast<uint64_t>(live_scope.size()));
    round_span.AddTag("detections", static_cast<uint64_t>(detections.size()));
    round_span.AddTag("rolled_back", static_cast<uint64_t>(rolled_this_round));
    if (hooks != nullptr && hooks->on_round) {
      Status checkpointed = hooks->on_round(round, *kb);
      if (!checkpointed.ok()) return checkpointed;
    }
    if (rolled_this_round == 0) break;
  }

  report.live_pairs_after = kb->num_live_pairs();
  return report;
}

}  // namespace semdrift
