#ifndef SEMDRIFT_ML_MULTITASK_H_
#define SEMDRIFT_ML_MULTITASK_H_

#include <vector>

#include "ml/matrix.h"
#include "util/rng.h"

namespace semdrift {

/// One learning task (one concept's DP detector): labeled inputs in the
/// shared r-dimensional KPCA representation (rows = labeled samples) and
/// one-hot targets (rows parallel to xl; columns = the 3 DP categories).
struct LearningTask {
  Matrix xl;  // m_c x r
  Matrix y;   // m_c x num_outputs (3: Intentional / Accidental / non-DP)
};

/// Hyper-parameters of Eq. 15 / Eq. 18.
struct MultiTaskOptions {
  /// Weight of the whole regularizer block (lambda in Eq. 15/18).
  double lambda = 0.1;
  /// Weight of the l2,1 (multi-task) or ||W||_F (single-task) term (beta).
  double beta = 0.5;
  /// Weight of the global Frobenius term in Eq. 18 (gamma).
  double gamma = 0.1;
  /// Alternating-minimization budget for Algorithm 1.
  int max_iterations = 50;
  /// Relative objective-decrease threshold for convergence.
  double tolerance = 1e-6;
  /// Numerical floor for ||w_i|| in D_ii = 1 / (2 ||w_i||).
  double norm_floor = 1e-8;
  /// Seed of the random W initialization (Algorithm 1 step 1).
  uint64_t seed = 1234;
};

/// Result of training: one classifier per task, Wc in r x num_outputs; a
/// sample x~ is classified as argmax of Wc^T x~. `objective_trace` records
/// the Eq. 18 value per iteration (Theorem 1 says it must be monotonically
/// non-increasing — asserted in tests and plotted by Fig. 5(c)).
struct MultiTaskResult {
  std::vector<Matrix> w;
  std::vector<double> objective_trace;
};

/// Single-task semi-supervised training (Eq. 15): closed form
///   Wc = (Xl^T Xl + lambda A + lambda beta I)^(-1) Xl^T Y.
/// `a` is the manifold regularizer over labeled + unlabeled data (r x r).
Matrix TrainSemiSupervised(const LearningTask& task, const Matrix& a,
                           const MultiTaskOptions& options);

/// Plain ridge least squares (no manifold term) — the fully supervised
/// linear baseline: Wc = (Xl^T Xl + lambda beta I)^(-1) Xl^T Y.
Matrix TrainRidge(const LearningTask& task, const MultiTaskOptions& options);

/// Algorithm 1: joint semi-supervised multi-task training of all tasks with
/// the shared manifold regularizer `a` and the l2,1 shared-structure term.
/// All tasks must share the representation dimension r = a.rows().
MultiTaskResult TrainMultiTask(const std::vector<LearningTask>& tasks,
                               const Matrix& a, const MultiTaskOptions& options);

/// The Eq. 18 objective for a given solution (exposed for tests of
/// Theorem 1 and for the Fig. 5(c) bench).
double MultiTaskObjective(const std::vector<LearningTask>& tasks, const Matrix& a,
                          const std::vector<Matrix>& w,
                          const MultiTaskOptions& options);

/// Argmax class of Wc^T x~ for an r-dimensional input.
int PredictClass(const Matrix& wc, const std::vector<double>& x);

}  // namespace semdrift

#endif  // SEMDRIFT_ML_MULTITASK_H_
