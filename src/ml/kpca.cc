#include "ml/kpca.h"

#include <cassert>
#include <cmath>

namespace semdrift {

bool KernelPca::Fit(const Matrix& x, const KpcaOptions& options) {
  options_ = options;
  size_t n = x.rows();
  size_t d = x.cols();
  if (n < 2 || d == 0) return false;
  // A single NaN would propagate through standardization into every kernel
  // entry; reject up front so the caller's fallback path can take over.
  if (!x.AllFinite()) return false;

  // Standardization statistics.
  feature_mean_.assign(d, 0.0);
  feature_std_.assign(d, 1.0);
  if (options_.standardize) {
    for (size_t j = 0; j < d; ++j) {
      double mean = 0.0;
      for (size_t i = 0; i < n; ++i) mean += x(i, j);
      mean /= static_cast<double>(n);
      double var = 0.0;
      for (size_t i = 0; i < n; ++i) {
        double diff = x(i, j) - mean;
        var += diff * diff;
      }
      var /= static_cast<double>(n);
      feature_mean_[j] = mean;
      feature_std_[j] = var > 1e-12 ? std::sqrt(var) : 1.0;
    }
  }
  train_ = Matrix(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      train_(i, j) = (x(i, j) - feature_mean_[j]) / feature_std_[j];
    }
  }

  gamma_ = options_.rbf_gamma > 0.0 ? options_.rbf_gamma
                                    : 1.0 / static_cast<double>(d);

  // Kernel matrix and double-centering: K~ = K - 1K - K1 + 1K1.
  Matrix k = KernelMatrix(options_.kernel, gamma_, train_);
  k_row_mean_.assign(n, 0.0);
  k_total_mean_ = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t j = 0; j < n; ++j) s += k(i, j);
    k_row_mean_[i] = s / static_cast<double>(n);
    k_total_mean_ += s;
  }
  k_total_mean_ /= static_cast<double>(n) * static_cast<double>(n);
  Matrix centered(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      centered(i, j) = k(i, j) - k_row_mean_[i] - k_row_mean_[j] + k_total_mean_;
    }
  }

  EigenResult eigen = SymmetricEigen(centered);  // Ascending.
  double max_eigen = eigen.values.empty() ? 0.0 : eigen.values.back();
  if (max_eigen <= 0.0) return false;
  double floor = options_.eigen_floor * max_eigen;

  // Collect components descending, normalizing alpha to 1/sqrt(lambda) so
  // projections are the coordinates w.r.t. unit-norm eigenvectors in H.
  std::vector<size_t> keep;
  for (size_t idx = n; idx-- > 0;) {
    if (eigen.values[idx] <= floor) break;
    keep.push_back(idx);
    if (options_.max_components > 0 &&
        keep.size() == static_cast<size_t>(options_.max_components)) {
      break;
    }
  }
  num_components_ = keep.size();
  if (num_components_ == 0) return false;
  alphas_ = Matrix(n, num_components_);
  eigenvalues_.clear();
  for (size_t p = 0; p < num_components_; ++p) {
    size_t idx = keep[p];
    double lambda = eigen.values[idx];
    eigenvalues_.push_back(lambda);
    double scale = 1.0 / std::sqrt(lambda);
    for (size_t i = 0; i < n; ++i) alphas_(i, p) = eigen.vectors(i, idx) * scale;
  }
  return true;
}

std::vector<double> KernelPca::Standardize(const std::vector<double>& x) const {
  std::vector<double> out(x.size());
  for (size_t j = 0; j < x.size(); ++j) {
    out[j] = (x[j] - feature_mean_[j]) / feature_std_[j];
  }
  return out;
}

std::vector<double> KernelPca::Transform(const std::vector<double>& x) const {
  assert(fitted());
  assert(x.size() == train_.cols());
  std::vector<double> q = Standardize(x);
  std::vector<double> k;
  KernelVector(options_.kernel, gamma_, train_, q.data(), &k);
  size_t n = train_.rows();
  // Center against the training distribution.
  double k_mean = 0.0;
  for (double v : k) k_mean += v;
  k_mean /= static_cast<double>(n);
  std::vector<double> centered(n);
  for (size_t i = 0; i < n; ++i) {
    centered[i] = k[i] - k_row_mean_[i] - k_mean + k_total_mean_;
  }
  std::vector<double> out(num_components_, 0.0);
  for (size_t p = 0; p < num_components_; ++p) {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) s += alphas_(i, p) * centered[i];
    out[p] = s;
  }
  return out;
}

Matrix KernelPca::TransformMatrix(const Matrix& x) const {
  Matrix out(x.rows(), num_components_);
  std::vector<double> point(x.cols());
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) point[j] = x(i, j);
    std::vector<double> projected = Transform(point);
    for (size_t p = 0; p < num_components_; ++p) out(i, p) = projected[p];
  }
  return out;
}

}  // namespace semdrift
