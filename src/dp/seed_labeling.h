#ifndef SEMDRIFT_DP_SEED_LABELING_H_
#define SEMDRIFT_DP_SEED_LABELING_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "kb/knowledge_base.h"
#include "mutex/mutex_index.h"
#include "text/ids.h"

namespace semdrift {

/// The three DP-detector categories (Sec. 3.3.2's one-hot labels) plus
/// "unlabeled" for instances the heuristic rules cannot decide.
enum class DpClass : int {
  kIntentionalDP = 0,
  kAccidentalDP = 1,
  kNonDP = 2,
  kUnlabeled = 3,
};

/// Settings for the automatic seed labeler of Sec. 3.2.
struct SeedLabelerConfig {
  /// Support threshold k: pairs extracted from more than k sentences in
  /// iteration 1 count as evidenced correct (the Fig. 5(b) sweep; the paper
  /// settles on k = 4).
  int frequency_threshold_k = 4;
};

/// Externally verified knowledge (the paper's Wikipedia-style source,
/// Sec. 3.2.2). Returns true when the pair is known-correct a priori.
using VerifiedSource = std::function<bool(const IsAPair&)>;

/// Automatic training-set preparation (Sec. 3.2): evidenced correct and
/// incorrect instances from the verified source, iteration-1 support, and
/// the mutual-exclusion index; then RULES 1-3 label obvious Intentional
/// DPs, Accidental DPs and non-DPs. Everything else stays kUnlabeled.
class SeedLabeler {
 public:
  SeedLabeler(const KnowledgeBase* kb, const MutexIndex* mutex,
              VerifiedSource verified, SeedLabelerConfig config = {});

  /// Evidenced correct: in the verified source, or iteration-1 support > k
  /// (Sec. 3.2.2). Checked on the pair regardless of liveness.
  bool EvidencedCorrect(const IsAPair& pair) const;

  /// Evidenced incorrect: extracted exactly once, in a later iteration, and
  /// evidenced correct under some concept mutually exclusive with this one.
  bool EvidencedIncorrect(const IsAPair& pair) const;

  /// Applies RULES 1-3 to one (concept, instance).
  DpClass Label(ConceptId c, InstanceId e) const;

  /// Labels every live instance of `c`; returns (instance, label) including
  /// kUnlabeled entries so callers see the full population.
  std::vector<std::pair<InstanceId, DpClass>> LabelConcept(ConceptId c) const;

  const SeedLabelerConfig& config() const { return config_; }

 private:
  const KnowledgeBase* kb_;
  const MutexIndex* mutex_;
  VerifiedSource verified_;
  SeedLabelerConfig config_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_DP_SEED_LABELING_H_
