#include "extract/extractor.h"

#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace semdrift {

namespace {

struct ExtractMetrics {
  MetricsRegistry::Counter iterations;
  MetricsRegistry::Counter extractions;
};

ExtractMetrics& GetExtractMetrics() {
  static ExtractMetrics metrics{
      GlobalMetrics().RegisterCounter("extract.iterations"),
      GlobalMetrics().RegisterCounter("extract.extractions")};
  return metrics;
}

}  // namespace

IterativeExtractor::IterativeExtractor(const SentenceStore* corpus,
                                       ExtractorOptions options)
    : corpus_(corpus), options_(options), consumed_(corpus->size(), false) {}

size_t IterativeExtractor::RunIteration(KnowledgeBase* kb, int iteration) {
  assert(iteration >= 1);
  GlobalTrace().SetEpoch(iteration);
  ScopedSpan span(&GlobalTrace(), "extract.iteration");
  ExtractMetrics& metrics = GetExtractMetrics();
  metrics.iterations.Add();

  if (iteration == 1) {
    size_t extracted = 0;
    for (const Sentence& sentence : corpus_->sentences()) {
      if (consumed_[sentence.id.value] || !sentence.unambiguous()) continue;
      kb->ApplyExtraction(sentence.id, sentence.candidate_concepts[0],
                          sentence.candidate_instances, /*triggers=*/{}, iteration);
      consumed_[sentence.id.value] = true;
      ++extracted;
    }
    metrics.extractions.Add(extracted);
    span.AddTag("extractions", static_cast<uint64_t>(extracted));
    return extracted;
  }

  // Phase 1: decide attachments against the KB as of iteration start.
  struct Decision {
    SentenceId sentence;
    ConceptId concept_id;
    std::vector<InstanceId> triggers;
  };
  std::vector<Decision> decisions;
  for (const Sentence& sentence : corpus_->sentences()) {
    if (consumed_[sentence.id.value]) continue;
    // A sentence is attachable when some candidate concept has evidence.
    // Candidates are compared by a (primary, secondary) key set by the
    // evidence policy; exact ties go to the syntactically adjacent (last)
    // candidate when the policy allows, else the sentence waits.
    long best_primary = 0;
    long best_secondary = -1;
    size_t best_index = 0;
    std::vector<InstanceId> best_triggers;
    bool unresolved_tie = false;
    for (size_t ci = 0; ci < sentence.candidate_concepts.size(); ++ci) {
      ConceptId c = sentence.candidate_concepts[ci];
      std::vector<InstanceId> triggers;
      long support = 0;
      for (InstanceId e : sentence.candidate_instances) {
        int count = kb->Count(IsAPair{c, e});
        if (count > 0) {
          triggers.push_back(e);
          support += count;
        }
      }
      if (triggers.empty()) continue;
      long distinct = static_cast<long>(triggers.size());
      long primary = options_.evidence == EvidencePolicy::kSupportSum ? support : distinct;
      long secondary =
          options_.evidence == EvidencePolicy::kSupportSum ? distinct : support;
      bool better = false;
      if (primary > best_primary) {
        better = true;
      } else if (primary == best_primary && best_primary > 0) {
        if (secondary > best_secondary) {
          better = true;
        } else if (secondary == best_secondary) {
          unresolved_tie = !options_.prefer_adjacent_on_tie;
          better = options_.prefer_adjacent_on_tie;
        }
      }
      if (better) {
        best_primary = primary;
        best_secondary = secondary;
        best_index = ci;
        best_triggers = std::move(triggers);
        unresolved_tie = false;
      }
    }
    if (best_primary == 0 || unresolved_tie) continue;
    decisions.push_back(Decision{sentence.id,
                                 sentence.candidate_concepts[best_index],
                                 std::move(best_triggers)});
  }

  // Phase 2: apply.
  for (Decision& decision : decisions) {
    const Sentence& sentence = corpus_->Get(decision.sentence);
    kb->ApplyExtraction(decision.sentence, decision.concept_id,
                        sentence.candidate_instances, decision.triggers, iteration);
    consumed_[decision.sentence.value] = true;
  }
  metrics.extractions.Add(decisions.size());
  span.AddTag("extractions", static_cast<uint64_t>(decisions.size()));
  return decisions.size();
}

void IterativeExtractor::SyncCorpusGrowth() {
  if (consumed_.size() < corpus_->size()) consumed_.resize(corpus_->size(), false);
}

Status IterativeExtractor::ResumeFrom(const KnowledgeBase& kb) {
  std::vector<bool> consumed(corpus_->size(), false);
  for (const ExtractionRecord& record : kb.records()) {
    if (!record.sentence.valid() || record.sentence.value >= corpus_->size()) {
      return Status::DataLoss("restored KB references sentence " +
                              std::to_string(record.sentence.value) +
                              " outside the corpus of " +
                              std::to_string(corpus_->size()) + " sentences");
    }
    consumed[record.sentence.value] = true;
  }
  consumed_ = std::move(consumed);
  return Status::OK();
}

std::vector<IterationStats> IterativeExtractor::Run(
    KnowledgeBase* kb,
    const std::function<void(const IterationStats&, const KnowledgeBase&)>&
        on_iteration,
    int first_iteration) {
  std::vector<IterationStats> stats;
  for (int iteration = first_iteration; iteration <= options_.max_iterations;
       ++iteration) {
    size_t extracted = RunIteration(kb, iteration);
    IterationStats s;
    s.iteration = iteration;
    s.extractions = extracted;
    s.distinct_pairs = kb->num_live_pairs();
    stats.push_back(s);
    if (on_iteration) on_iteration(s, *kb);
    if (extracted == 0 && iteration > 1) break;
  }
  return stats;
}

}  // namespace semdrift
