#!/usr/bin/env bash
# One-command quality gates. Run from the repo root:
#
#   tools/check.sh [jobs]             sanitizer gate (ASan+UBSan suite, then
#                                     the concurrency tests under TSan)
#   tools/check.sh --coverage [jobs]  gcov line-coverage gate: full suite in
#                                     an instrumented tree, per-directory
#                                     coverage table, hard floor of 80% on
#                                     src/obs and src/serve
#   tools/check.sh --soak [jobs]      serving soak under ASan: bench_serve's
#                                     swap-under-load phase with injected
#                                     publish faults, gating zero dropped
#                                     queries and a bounded p99
#   tools/check.sh --scenarios [jobs] adversarial replay gate: every checked-in
#                                     scenarios/*.toml replayed under
#                                     ASan+UBSan against its recorded envelope
#   tools/check.sh --net [jobs]       network soak under ASan: bench_serve's
#                                     multi-process socket phase (8 client
#                                     processes against shard counts 1/2/4)
#                                     plus the 8-client server test, gating
#                                     zero non-OK responses over the wire
#   tools/check.sh --stream [jobs]    streaming gate: the incremental-vs-batch
#                                     differential under ASan (final KB and
#                                     snapshot byte-identical across epoch
#                                     schedules and thread counts), then the
#                                     live publish/swap soak (cli_stream_soak)
#                                     with TSan-instrumented binaries
#
# Build trees live in build-asan/, build-tsan/ and build-cov/ and are reused
# across runs (incremental). Exits non-zero on the first failing configure,
# build or test — or a broken coverage floor.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=sanitize
if [[ "${1:-}" == "--coverage" ]]; then
  MODE=coverage
  shift
elif [[ "${1:-}" == "--soak" ]]; then
  MODE=soak
  shift
elif [[ "${1:-}" == "--scenarios" ]]; then
  MODE=scenarios
  shift
elif [[ "${1:-}" == "--net" ]]; then
  MODE=net
  shift
elif [[ "${1:-}" == "--stream" ]]; then
  MODE=stream
  shift
fi
JOBS="${1:-$(nproc 2>/dev/null || echo 2)}"

if [[ "$MODE" == "coverage" ]]; then
  echo "== Coverage: instrumented build + full ctest =="
  cmake -B build-cov -S . -DSEMDRIFT_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug
  cmake --build build-cov -j "$JOBS"
  # Stale counts from a previous run would inflate coverage.
  find build-cov -name '*.gcda' -delete
  ctest --test-dir build-cov --output-on-failure -j "$JOBS"

  echo "== Coverage: per-directory line coverage (gcov) =="
  # gcov -n prints, per contributing source file, "Lines executed:P% of N".
  # A header shows up once per including TU; keep the best-covered sighting
  # of each file (gcov merges runs per TU, not across TUs) before
  # aggregating per top-level source directory.
  find build-cov -name '*.gcda' -print0 |
    xargs -0 -n 64 gcov -n 2>/dev/null |
    awk -v root="$PWD/" '
      /^File / {
        # "File <quote>/abs/path.cc<quote>" -> /abs/path.cc
        f = substr($0, 7, length($0) - 7)
        next
      }
      /^Lines executed:/ {
        line = $0
        sub(/^Lines executed:/, "", line)
        split(line, parts, "% of ")
        total = parts[2] + 0
        covered = int(parts[1] * total / 100 + 0.5)
        # Normalize to a repo-relative path; skip system/external files.
        path = f
        sub(root, "", path)
        if (path !~ /^(src|tools|tests|bench)\//) next
        if (!(path in file_total) || covered > file_covered[path]) {
          file_covered[path] = covered
          file_total[path] = total
        }
        next
      }
      END {
        status = 0
        for (path in file_total) {
          n = split(path, seg, "/")
          dir = (seg[1] == "src" && n > 2) ? seg[1] "/" seg[2] : seg[1]
          dir_covered[dir] += file_covered[path]
          dir_total[dir] += file_total[path]
        }
        printf "%-18s %10s %10s %8s\n", "directory", "covered", "lines", "pct"
        # Insertion sort (mawk has no asorti).
        m = 0
        for (dir in dir_total) dirs[++m] = dir
        for (i = 2; i <= m; i++) {
          for (j = i; j > 1 && dirs[j] < dirs[j - 1]; j--) {
            tmp = dirs[j]; dirs[j] = dirs[j - 1]; dirs[j - 1] = tmp
          }
        }
        for (i = 1; i <= m; i++) {
          dir = dirs[i]
          pct = dir_total[dir] > 0 ? 100.0 * dir_covered[dir] / dir_total[dir] : 0
          printf "%-18s %10d %10d %7.1f%%\n", dir, dir_covered[dir], dir_total[dir], pct
          if ((dir == "src/obs" || dir == "src/serve") && pct < 80.0) {
            printf "FAIL: %s line coverage %.1f%% is below the 80%% floor\n", dir, pct
            status = 1
          }
        }
        exit status
      }'
  echo "OK: coverage floors hold (src/obs and src/serve >= 80%)"
  exit 0
fi

if [[ "$MODE" == "soak" ]]; then
  echo "== Soak: bench_serve swap-under-load with publish faults (ASan) =="
  cmake -B build-asan -S . -DSEMDRIFT_SANITIZE="address;undefined" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$JOBS" --target bench_serve
  # 120 swaps under continuous query load, every fifth publish torn. The
  # bench exits non-zero on any failed (non-shed) response, any uncontained
  # corrupt publish, or a swap-phase p99 above the bound (generous: ASan
  # plus fault injection is not a latency environment, but an unbounded p99
  # would hide a swap stall).
  build-asan/bench/bench_serve --scale 0.1 --swaps 120 --publish-faults \
    --max-p99-ms 250 --out build-asan/BENCH_serve_soak.json
  echo "OK: soak held — zero dropped queries across 120 faulted hot swaps"
  exit 0
fi

if [[ "$MODE" == "net" ]]; then
  echo "== Net: multi-process socket serving under ASan =="
  cmake -B build-asan -S . -DSEMDRIFT_SANITIZE="address;undefined" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$JOBS" --target bench_serve net_server_test
  # The epoll front-end, router and reorder buffer under concurrent client
  # processes: any memory error, any non-OK response over the wire, or an
  # mmap cold open slower than the eager read path fails the gate. Swaps are
  # trimmed — the soak mode owns hot-swap torture; this mode owns sockets.
  build-asan/bench/bench_serve --scale 0.1 --swaps 10 --net-seconds 3 \
    --out build-asan/BENCH_serve_net.json
  # The in-process suite covers the corners a clean bench run cannot reach:
  # abrupt disconnects, oversized lines, backpressure, shed, hot swap mid-load.
  build-asan/tests/net_server_test
  echo "OK: socket serving held under ASan across shard counts 1/2/4"
  exit 0
fi

if [[ "$MODE" == "stream" ]]; then
  echo "== Stream: incremental-vs-batch differential (ASan+UBSan) =="
  cmake -B build-asan -S . -DSEMDRIFT_SANITIZE="address;undefined" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$JOBS" --target stream_differential_test
  # 20 seeded worlds x 3 epoch schedules at 1 thread plus 6 x 3 at 8
  # threads: the streamed KB and snapshot must end byte-identical to a
  # one-shot batch run.
  build-asan/tests/stream_differential_test

  echo "== Stream: live publish/swap soak (TSan) =="
  cmake -B build-tsan -S . -DSEMDRIFT_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$JOBS" --target semdrift_cli
  # Real binaries: `semdrift stream` publishing generations into a live
  # `serve --listen --publish-dir` while 4 client processes query across the
  # swaps. TSan watches the swap path; the test diffs every answer against
  # per-epoch one-shot answers and the final image against a batch run.
  ctest --test-dir build-tsan -R cli_stream_soak --output-on-failure
  echo "OK: streaming differential and live hot-swap soak both held"
  exit 0
fi

if [[ "$MODE" == "scenarios" ]]; then
  echo "== Scenarios: adversarial replay corpus under ASan+UBSan =="
  cmake -B build-asan -S . -DSEMDRIFT_SANITIZE="address;undefined" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$JOBS" --target semdrift_cli
  # Every checked-in scenario must load, replay deterministically, and land
  # inside its recorded precision/cost envelope — any memory error in the
  # adversarial corner it exercises fails the gate too.
  build-asan/tools/semdrift scenario-run scenarios/*.toml --verbose
  echo "OK: all checked-in scenarios replayed inside their envelopes"
  exit 0
fi

echo "== ASan+UBSan: configure + build + full ctest =="
cmake -B build-asan -S . -DSEMDRIFT_SANITIZE="address;undefined" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== TSan: concurrency tests =="
TSAN_TARGETS=(thread_pool_test parallel_determinism_test supervisor_test
  serve_batcher_test serve_hotswap_test obs_test ml_forest_test
  forest_differential_test net_protocol_test net_router_test net_server_test
  stream_differential_test)
cmake -B build-tsan -S . -DSEMDRIFT_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$JOBS" --target "${TSAN_TARGETS[@]}"
for t in "${TSAN_TARGETS[@]}"; do
  echo "-- TSan: $t"
  "build-tsan/tests/$t"
done

echo "OK: ASan+UBSan suite and TSan concurrency tests all green"
