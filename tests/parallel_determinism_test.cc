// The determinism contract of the parallel pipeline: every parallelized
// stage produces *bit-identical* output at any thread count (ordered
// reductions + per-task RNG streams). These tests run each stage at 1, 2,
// and 8 threads over the same small experiment and require exact equality —
// EXPECT_EQ on doubles, not EXPECT_NEAR. This is what lets `--threads`
// change only wall-clock time while preserving checkpoint byte-identity.

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "dp/detector.h"
#include "dp/features.h"
#include "dp/seed_labeling.h"
#include "eval/experiment.h"
#include "ml/random_forest.h"
#include "mutex/mutex_index.h"
#include "rank/scorers.h"
#include "util/thread_pool.h"

namespace semdrift {
namespace {

const int kThreadCounts[] = {1, 2, 8};

/// One small extracted KB shared by every stage check.
class ParallelDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentConfig config = PaperScaleConfig(0.05);
    config.seed = 2014;
    experiment_ = Experiment::Build(config).release();
    kb_ = new KnowledgeBase(experiment_->Extract());
    for (size_t c = 0; c < experiment_->world().num_concepts(); ++c) {
      scope_.push_back(ConceptId(static_cast<uint32_t>(c)));
    }
  }

  static void TearDownTestSuite() {
    delete kb_;
    delete experiment_;
    kb_ = nullptr;
    experiment_ = nullptr;
    scope_.clear();
  }

  void TearDown() override { SetGlobalThreadCount(0); }

  static Experiment* experiment_;
  static KnowledgeBase* kb_;
  static std::vector<ConceptId> scope_;
};

Experiment* ParallelDeterminismTest::experiment_ = nullptr;
KnowledgeBase* ParallelDeterminismTest::kb_ = nullptr;
std::vector<ConceptId> ParallelDeterminismTest::scope_;

TEST_F(ParallelDeterminismTest, ScoreCacheWarmUpIsThreadCountInvariant) {
  std::vector<std::unordered_map<InstanceId, double>> baseline;
  for (int threads : kThreadCounts) {
    SetGlobalThreadCount(threads);
    ScoreCache scores(kb_, RankModel::kRandomWalk);
    scores.Warm(scope_);
    std::vector<std::unordered_map<InstanceId, double>> maps;
    for (ConceptId c : scope_) maps.push_back(scores.Concept(c));
    if (baseline.empty()) {
      baseline = std::move(maps);
      continue;
    }
    ASSERT_EQ(maps.size(), baseline.size());
    for (size_t i = 0; i < maps.size(); ++i) {
      // Exact equality, map-wide: same keys, bit-identical doubles.
      EXPECT_EQ(maps[i], baseline[i]) << "concept " << i << " threads " << threads;
    }
  }
}

TEST_F(ParallelDeterminismTest, CollectTrainingDataIsThreadCountInvariant) {
  TrainingData baseline;
  for (int threads : kThreadCounts) {
    SetGlobalThreadCount(threads);
    MutexIndex mutex(*kb_, scope_.size());
    ScoreCache scores(kb_, RankModel::kRandomWalk);
    scores.Warm(scope_);
    FeatureExtractor features(kb_, &mutex, &scores);
    SeedLabeler seeds(kb_, &mutex, [](const IsAPair&) { return false; });
    TrainingData data = CollectTrainingData(*kb_, &features, seeds, scope_);
    if (baseline.empty()) {
      baseline = std::move(data);
      ASSERT_FALSE(baseline.empty());
      continue;
    }
    ASSERT_EQ(data.size(), baseline.size()) << "threads " << threads;
    for (size_t c = 0; c < data.size(); ++c) {
      EXPECT_EQ(data[c].concept_id.value, baseline[c].concept_id.value);
      EXPECT_EQ(data[c].instances, baseline[c].instances);
      EXPECT_EQ(data[c].features, baseline[c].features);  // Bit-exact doubles.
      EXPECT_EQ(data[c].seed_labels, baseline[c].seed_labels);
    }
  }
}

TEST_F(ParallelDeterminismTest, MutexIndexIsThreadCountInvariant) {
  std::vector<double> baseline_sims;
  std::vector<int> baseline_f2;
  for (int threads : kThreadCounts) {
    SetGlobalThreadCount(threads);
    MutexIndex mutex(*kb_, scope_.size());
    std::vector<double> sims = mutex.NonZeroSimilarities();
    std::vector<int> f2;
    for (ConceptId c : scope_) {
      for (InstanceId e : kb_->LiveInstancesOf(c)) f2.push_back(mutex.F2Count(c, e));
    }
    if (baseline_sims.empty() && baseline_f2.empty()) {
      baseline_sims = std::move(sims);
      baseline_f2 = std::move(f2);
      continue;
    }
    EXPECT_EQ(sims, baseline_sims) << "threads " << threads;
    EXPECT_EQ(f2, baseline_f2) << "threads " << threads;
  }
}

TEST_F(ParallelDeterminismTest, RandomForestFitIsThreadCountInvariant) {
  // Training data comes from the shared KB. Both trainers must be
  // thread-count invariant: the exact trainer parallelizes only across
  // trees (per-tree RNG streams seeded by tree index); the binned trainer
  // additionally parallelizes *inside* each tree (per-feature histogram
  // scans, per-pair frontier work, per-node RNG streams seeded by
  // deterministically assigned node ids). Either way, fitting at any
  // thread count must give bit-identical probabilities.
  MutexIndex mutex(*kb_, scope_.size());
  ScoreCache scores(kb_, RankModel::kRandomWalk);
  scores.Warm(scope_);
  FeatureExtractor features(kb_, &mutex, &scores);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (ConceptId c : scope_) {
    for (InstanceId e : kb_->LiveInstancesOf(c)) {
      FeatureVector f = features.Extract(c, e);
      x.push_back({f[0], f[1], f[2], f[3]});
      y.push_back(static_cast<int>(x.size()) % 3);
    }
  }
  ASSERT_GT(x.size(), 10u);

  for (bool exact : {false, true}) {
    std::vector<std::vector<double>> baseline;
    RandomForest::FitStats baseline_stats{};
    for (int threads : kThreadCounts) {
      SetGlobalThreadCount(threads);
      RandomForest forest;
      RandomForestOptions options;
      options.num_trees = 40;
      options.exact_splits = exact;
      ASSERT_TRUE(forest.Fit(x, y, 3, options).ok());
      std::vector<std::vector<double>> proba;
      for (const auto& point : x) proba.push_back(forest.PredictProba(point));
      if (baseline.empty()) {
        baseline = std::move(proba);
        baseline_stats = forest.fit_stats();
        continue;
      }
      EXPECT_EQ(proba, baseline) << "exact=" << exact << " threads " << threads;
      // Structural stats (node/histogram counts) are part of the contract
      // too: a forest that predicts identically but was built differently
      // would still break checkpoint byte-identity.
      EXPECT_EQ(forest.fit_stats().nodes, baseline_stats.nodes)
          << "exact=" << exact << " threads " << threads;
      EXPECT_EQ(forest.fit_stats().histogram_builds,
                baseline_stats.histogram_builds)
          << "exact=" << exact << " threads " << threads;
      EXPECT_EQ(forest.fit_stats().histogram_subtractions,
                baseline_stats.histogram_subtractions)
          << "exact=" << exact << " threads " << threads;
    }
  }
}

}  // namespace
}  // namespace semdrift
