#include <gtest/gtest.h>

#include <unordered_set>

#include "dp/cleaner.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

namespace semdrift {
namespace {

/// Checks the KB's core bookkeeping invariants: every pair's count equals
/// its number of live producing records, live_pairs matches the positive
/// counts, iteration-1 counts never exceed totals, and triggers of live
/// records reference pairs that existed before the record's iteration.
void CheckKbInvariants(const KnowledgeBase& kb, size_t num_concepts) {
  size_t live_pairs = 0;
  for (uint32_t ci = 0; ci < num_concepts; ++ci) {
    ConceptId c(ci);
    for (InstanceId e : kb.InstancesEverOf(c)) {
      const PairStats* stats = kb.Find(IsAPair{c, e});
      ASSERT_NE(stats, nullptr);
      int expected = 0;
      for (uint32_t id : stats->producing_records) {
        if (!kb.record(id).rolled_back) ++expected;
      }
      EXPECT_EQ(stats->count, expected);
      EXPECT_GE(stats->count, 0);
      EXPECT_LE(stats->iter1_count, stats->count);
      EXPECT_GE(stats->iter1_count, 0);
      if (stats->count > 0) ++live_pairs;
    }
  }
  EXPECT_EQ(kb.num_live_pairs(), live_pairs);
}

class PipelineInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineInvariantTest, KbConsistentAfterExtraction) {
  ExperimentConfig config = PaperScaleConfig(0.05);
  config.seed = GetParam();
  auto experiment = Experiment::Build(config);
  KnowledgeBase kb = experiment->Extract();
  CheckKbInvariants(kb, experiment->world().num_concepts());
}

TEST_P(PipelineInvariantTest, KbConsistentAfterCleaning) {
  ExperimentConfig config = PaperScaleConfig(0.05);
  config.seed = GetParam();
  auto experiment = Experiment::Build(config);
  KnowledgeBase kb = experiment->Extract();
  CleanerOptions options;
  options.max_rounds = 2;
  DpCleaner cleaner(&experiment->corpus().sentences,
                    experiment->MakeVerifiedSource(),
                    experiment->world().num_concepts(), options);
  CleaningReport report = cleaner.Clean(&kb, experiment->EvalConcepts());
  CheckKbInvariants(kb, experiment->world().num_concepts());
  EXPECT_EQ(report.live_pairs_after, kb.num_live_pairs());
  EXPECT_LE(report.live_pairs_after, report.live_pairs_before);
}

TEST_P(PipelineInvariantTest, CleaningNeverRollsBackIterationOneRecords) {
  // Iteration-1 (unambiguous) extractions can only fall through the
  // Accidental-DP single-support path or a cascade; an iteration-1 record
  // whose pairs all carry core support > 1 must survive cleaning.
  ExperimentConfig config = PaperScaleConfig(0.05);
  config.seed = GetParam();
  auto experiment = Experiment::Build(config);
  KnowledgeBase kb = experiment->Extract();

  // Snapshot: iteration-1 records whose every pair has iter-1 support >= 3.
  std::vector<uint32_t> protected_records;
  for (const auto& record : kb.records()) {
    if (record.iteration != 1) continue;
    bool strong = true;
    for (InstanceId e : record.instances) {
      if (kb.Iter1Count(IsAPair{record.concept_id, e}) < 3) {
        strong = false;
        break;
      }
    }
    if (strong) protected_records.push_back(record.id);
  }
  ASSERT_FALSE(protected_records.empty());

  CleanerOptions options;
  options.max_rounds = 2;
  DpCleaner cleaner(&experiment->corpus().sentences,
                    experiment->MakeVerifiedSource(),
                    experiment->world().num_concepts(), options);
  cleaner.Clean(&kb, experiment->EvalConcepts());
  for (uint32_t id : protected_records) {
    EXPECT_FALSE(kb.record(id).rolled_back) << "record " << id;
  }
}

TEST_P(PipelineInvariantTest, CleaningIsIdempotentAtFixpoint) {
  // Running the cleaner a second time on an already-cleaned KB must not
  // remove substantially more (the round loop already ran to its fixpoint
  // or cap; the detector retrains on the cleaned state, so tiny residual
  // changes are allowed but mass removal is a bug).
  ExperimentConfig config = PaperScaleConfig(0.05);
  config.seed = GetParam();
  auto experiment = Experiment::Build(config);
  KnowledgeBase kb = experiment->Extract();
  CleanerOptions options;
  DpCleaner cleaner(&experiment->corpus().sentences,
                    experiment->MakeVerifiedSource(),
                    experiment->world().num_concepts(), options);
  cleaner.Clean(&kb, experiment->EvalConcepts());
  size_t after_first = kb.num_live_pairs();
  cleaner.Clean(&kb, experiment->EvalConcepts());
  size_t after_second = kb.num_live_pairs();
  EXPECT_GE(after_second, after_first * 97 / 100);
}

TEST_P(PipelineInvariantTest, CleaningImprovesOrMaintainsPrecision) {
  ExperimentConfig config = PaperScaleConfig(0.05);
  config.seed = GetParam();
  auto experiment = Experiment::Build(config);
  KnowledgeBase kb = experiment->Extract();
  std::vector<ConceptId> scope = experiment->EvalConcepts();
  double before = LivePairPrecision(experiment->truth(), kb, scope);
  CleanerOptions options;
  options.max_rounds = 3;
  DpCleaner cleaner(&experiment->corpus().sentences,
                    experiment->MakeVerifiedSource(),
                    experiment->world().num_concepts(), options);
  cleaner.Clean(&kb, scope);
  double after = LivePairPrecision(experiment->truth(), kb, scope);
  EXPECT_GE(after, before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineInvariantTest,
                         ::testing::Values(101, 202, 303));

TEST(ScopeIsolationTest, CleaningOutOfScopeConceptsUntouchedDirectly) {
  // Concepts outside the cleaning scope may only lose pairs through
  // cascades from shared sentences, never through direct DP flags; verify
  // the overwhelming majority of an untouched tail concept's pairs survive.
  ExperimentConfig config = PaperScaleConfig(0.05);
  auto experiment = Experiment::Build(config);
  KnowledgeBase kb = experiment->Extract();
  ConceptId tail(static_cast<uint32_t>(experiment->world().num_concepts() - 1));
  size_t before = kb.LiveInstancesOf(tail).size();
  CleanerOptions options;
  options.max_rounds = 2;
  DpCleaner cleaner(&experiment->corpus().sentences,
                    experiment->MakeVerifiedSource(),
                    experiment->world().num_concepts(), options);
  cleaner.Clean(&kb, experiment->EvalConcepts());
  size_t after = kb.LiveInstancesOf(tail).size();
  if (before > 0) {
    EXPECT_GE(after * 10, before * 7);  // >= 70% survive.
  }
}

}  // namespace
}  // namespace semdrift
