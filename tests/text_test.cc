#include <gtest/gtest.h>

#include "text/ids.h"
#include "text/morphology.h"
#include "text/sentence.h"
#include "text/tokenizer.h"
#include "text/vocab.h"

namespace semdrift {
namespace {

TEST(IdsTest, DefaultIsInvalid) {
  ConceptId c;
  EXPECT_FALSE(c.valid());
  EXPECT_TRUE(ConceptId(0).valid());
}

TEST(IdsTest, DistinctTagTypesDoNotCompare) {
  // Compile-time property: ConceptId and InstanceId are distinct types.
  static_assert(!std::is_same_v<ConceptId, InstanceId>);
  EXPECT_EQ(ConceptId(3), ConceptId(3));
  EXPECT_NE(ConceptId(3), ConceptId(4));
  EXPECT_LT(ConceptId(3), ConceptId(4));
}

TEST(IdsTest, PairEqualityAndOrdering) {
  IsAPair a{ConceptId(1), InstanceId(2)};
  IsAPair b{ConceptId(1), InstanceId(2)};
  IsAPair c{ConceptId(1), InstanceId(3)};
  IsAPair d{ConceptId(2), InstanceId(0)};
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a < c);
  EXPECT_TRUE(c < d);
}

TEST(IdsTest, PairHashSpreads) {
  IsAPairHash hash;
  EXPECT_NE(hash(IsAPair{ConceptId(0), InstanceId(1)}),
            hash(IsAPair{ConceptId(1), InstanceId(0)}));
}

TEST(VocabTest, InternAssignsSequentialIds) {
  Vocab vocab;
  EXPECT_EQ(vocab.Intern("dog"), 0u);
  EXPECT_EQ(vocab.Intern("cat"), 1u);
  EXPECT_EQ(vocab.Intern("dog"), 0u);  // Idempotent.
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(VocabTest, FindDoesNotIntern) {
  Vocab vocab;
  EXPECT_EQ(vocab.Find("ghost"), Vocab::kNotFound);
  EXPECT_EQ(vocab.size(), 0u);
  vocab.Intern("real");
  EXPECT_EQ(vocab.Find("real"), 0u);
  EXPECT_TRUE(vocab.Contains("real"));
}

TEST(VocabTest, TermOfRoundTrips) {
  Vocab vocab;
  uint32_t id = vocab.Intern("asian country");
  EXPECT_EQ(vocab.TermOf(id), "asian country");
}

TEST(VocabTest, CopyIsIndependent) {
  Vocab vocab;
  vocab.Intern("a");
  Vocab copy = vocab;
  copy.Intern("b");
  EXPECT_EQ(vocab.size(), 1u);
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.Find("a"), 0u);
}

TEST(MorphologyTest, RegularPlurals) {
  EXPECT_EQ(Pluralize("dog"), "dogs");
  EXPECT_EQ(Pluralize("fox"), "foxes");
  EXPECT_EQ(Pluralize("dish"), "dishes");
  EXPECT_EQ(Pluralize("church"), "churches");
  EXPECT_EQ(Pluralize("city"), "cities");
  EXPECT_EQ(Pluralize("day"), "days");  // Vowel + y.
}

TEST(MorphologyTest, IrregularPlurals) {
  EXPECT_EQ(Pluralize("child"), "children");
  EXPECT_EQ(Pluralize("woman"), "women");
  EXPECT_EQ(Pluralize("person"), "people");
}

TEST(MorphologyTest, MultiWordPluralizesLastWord) {
  EXPECT_EQ(Pluralize("asian country"), "asian countries");
  EXPECT_EQ(Pluralize("u.s. state"), "u.s. states");
  EXPECT_EQ(Pluralize("disney classic"), "disney classics");
}

TEST(MorphologyTest, SingularizeInvertsPluralize) {
  const char* words[] = {"dog",   "fox",  "dish",  "city",  "day",
                         "child", "woman", "person", "computer", "weather",
                         "money", "religion", "student", "phone"};
  for (const char* word : words) {
    EXPECT_EQ(Singularize(Pluralize(word)), word) << word;
  }
}

TEST(MorphologyTest, SingularizeMultiWordRoundTrip) {
  const char* terms[] = {"asian country", "chinese city", "computer software",
                         "developing country", "key u.s. export", "u.s. state"};
  for (const char* term : terms) {
    EXPECT_EQ(Singularize(Pluralize(term)), term) << term;
  }
}

TEST(MorphologyTest, AlreadySingularPassesThroughMostly) {
  // Words not ending in plural-looking suffixes are unchanged.
  EXPECT_EQ(Singularize("dog"), "dog");
  EXPECT_EQ(Singularize("weather"), "weather");
}

TEST(TokenizerTest, LowercasesAndSplits) {
  auto tokens = Tokenize("Animals such as Dogs and Cats .");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].text, "animals");
  EXPECT_EQ(tokens[3].text, "dogs");
  EXPECT_EQ(tokens[5].text, "cats");
}

TEST(TokenizerTest, RecordsCommas) {
  auto tokens = Tokenize("such as a, b, and c");
  // Tokens: such as a(,) b(,) and c
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_TRUE(tokens[2].followed_by_comma);
  EXPECT_TRUE(tokens[3].followed_by_comma);
  EXPECT_FALSE(tokens[5].followed_by_comma);
}

TEST(TokenizerTest, KeepsAbbreviationDots) {
  auto tokens = Tokenize("u.s. states such as texas .");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "u.s.");
  EXPECT_EQ(tokens[1].text, "states");
  // Sentence-final period token is dropped entirely.
  EXPECT_EQ(tokens.back().text, "texas");
}

TEST(TokenizerTest, StripsSentencePunctuation) {
  auto tokens = Tokenize("dogs!");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].text, "dogs");
}

TEST(TokenizerTest, EmptyInput) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("  ,, .. !").empty());
}

TEST(TokenizerTest, DetokenizeJoins) {
  auto tokens = Tokenize("a, b and c");
  EXPECT_EQ(Detokenize(tokens), "a, b and c");
}

TEST(SentenceTest, UnambiguousPredicate) {
  Sentence s;
  s.candidate_concepts = {ConceptId(1)};
  EXPECT_TRUE(s.unambiguous());
  s.candidate_concepts.push_back(ConceptId(2));
  EXPECT_FALSE(s.unambiguous());
}

TEST(SentenceStoreTest, AssignsSequentialIds) {
  SentenceStore store;
  Sentence a;
  a.candidate_concepts = {ConceptId(0)};
  SentenceId first = store.Add(std::move(a));
  Sentence b;
  b.candidate_concepts = {ConceptId(1)};
  SentenceId second = store.Add(std::move(b));
  EXPECT_EQ(first.value, 0u);
  EXPECT_EQ(second.value, 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.Get(first).id, first);
  EXPECT_EQ(store.Get(second).candidate_concepts[0], ConceptId(1));
}

}  // namespace
}  // namespace semdrift
