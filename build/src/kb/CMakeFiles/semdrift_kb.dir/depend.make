# Empty dependencies file for semdrift_kb.
# This may be replaced when dependencies are built.
