file(REMOVE_RECURSE
  "CMakeFiles/dp_features_test.dir/dp_features_test.cc.o"
  "CMakeFiles/dp_features_test.dir/dp_features_test.cc.o.d"
  "dp_features_test"
  "dp_features_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
