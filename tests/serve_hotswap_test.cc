#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "serve/snapshot_delta.h"
#include "serve/snapshot_manager.h"
#include "testing/random_structures.h"
#include "util/crc32.h"
#include "util/fault_injection.h"

namespace semdrift {
namespace {

/// Shared fixtures: two snapshot images (A and B) over the same small world,
/// the A→B delta records, and a tiny query workload valid on both.
class HotSwapTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    World world = property::RandomWorld(5);
    size_t ns = 0;
    KnowledgeBase kb_a = property::RandomKb(world, 5, &ns);
    KnowledgeBase kb_b = property::RandomKb(world, 1005, &ns);
    parts_a_ = new SnapshotParts(
        CompileSnapshotParts(kb_a, world, nullptr, SnapshotOptions{}));
    SnapshotParts parts_b =
        CompileSnapshotParts(kb_b, world, nullptr, SnapshotOptions{});
    auto image_a = BuildSnapshotImage(*parts_a_);
    auto image_b = BuildSnapshotImage(parts_b);
    ASSERT_TRUE(image_a.ok() && image_b.ok());
    image_a_ = new std::string(std::move(*image_a));
    image_b_ = new std::string(std::move(*image_b));
    crc_a_ = Crc32Of(*image_a_);
    crc_b_ = Crc32Of(*image_b_);
    auto delta_ab = DiffSnapshotParts(*parts_a_, parts_b);
    auto delta_ba = DiffSnapshotParts(parts_b, *parts_a_);
    ASSERT_TRUE(delta_ab.ok() && delta_ba.ok());
    delta_ab_ = new SnapshotDelta(std::move(*delta_ab));
    delta_ba_ = new SnapshotDelta(std::move(*delta_ba));

    auto reader = SnapshotReader::OpenFromBuffer(*image_a_, "fixture");
    ASSERT_TRUE(reader.ok());
    workload_ = new std::vector<std::string>();
    for (uint32_t c = 0; c < reader->num_concepts(); ++c) {
      const std::string concept_name(reader->ConceptName(c));
      workload_->push_back("instances-of\t" + concept_name + "\t4");
      if (reader->ConceptEnd(c) > reader->ConceptBegin(c)) {
        const std::string member(
            reader->InstanceName(reader->PairInstance(reader->ConceptBegin(c))));
        workload_->push_back("is-a\t" + member + "\t" + concept_name);
        workload_->push_back("concepts-of\t" + member);
      }
    }
    ASSERT_FALSE(workload_->empty());
  }
  static void TearDownTestSuite() {
    delete parts_a_;
    delete image_a_;
    delete image_b_;
    delete delta_ab_;
    delete delta_ba_;
    delete workload_;
  }

  /// A fresh publish directory for one test (or one sweep iteration).
  static std::string FreshDir(const std::string& name) {
    std::string dir = ::testing::TempDir() + "/hotswap_" + name;
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    std::filesystem::create_directories(dir, ec);
    return dir;
  }

  static Status PublishFull(const std::string& dir, uint64_t gen,
                            const std::string& image) {
    return PublishSnapshotImage(image,
                                dir + "/snap-" + std::to_string(gen) + ".bin");
  }

  /// Publishes `delta` rebased to materialize `gen` from `gen - 1`.
  static Status PublishDelta(const std::string& dir, uint64_t gen,
                             const SnapshotDelta& delta, uint32_t base_crc) {
    SnapshotDelta d = delta;
    d.base_generation = gen - 1;
    d.base_crc32 = base_crc;
    d.generation = gen;
    return WriteSnapshotDeltaFile(d,
                                  dir + "/delta-" + std::to_string(gen) + ".bin");
  }

  static SnapshotParts* parts_a_;
  static std::string* image_a_;
  static std::string* image_b_;
  static uint32_t crc_a_;
  static uint32_t crc_b_;
  static SnapshotDelta* delta_ab_;
  static SnapshotDelta* delta_ba_;
  static std::vector<std::string>* workload_;
};

SnapshotParts* HotSwapTest::parts_a_ = nullptr;
std::string* HotSwapTest::image_a_ = nullptr;
std::string* HotSwapTest::image_b_ = nullptr;
uint32_t HotSwapTest::crc_a_ = 0;
uint32_t HotSwapTest::crc_b_ = 0;
SnapshotDelta* HotSwapTest::delta_ab_ = nullptr;
SnapshotDelta* HotSwapTest::delta_ba_ = nullptr;
std::vector<std::string>* HotSwapTest::workload_ = nullptr;

TEST_F(HotSwapTest, InitialLoadPicksNewestGoodFull) {
  const std::string dir = FreshDir("initial");
  ASSERT_TRUE(PublishFull(dir, 1, *image_a_).ok());
  ASSERT_TRUE(PublishFull(dir, 3, *image_b_).ok());
  // A corrupt newer full must be quarantined, falling back to generation 3.
  ASSERT_TRUE(
      WriteStringToFile(image_b_->substr(0, image_b_->size() / 2),
                        dir + "/snap-5.bin")
          .ok());
  SnapshotManagerOptions options;
  options.dir = dir;
  options.backoff_base_ms = 0;
  SnapshotManager manager(options);
  Status initial = manager.LoadInitial();
  ASSERT_TRUE(initial.ok()) << initial.ToString();
  EXPECT_EQ(manager.generation(), 3u);
  EXPECT_EQ(manager.Current()->image_crc32, crc_b_);
  EXPECT_TRUE(std::filesystem::exists(dir + "/snap-5.bin.quarantined"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/snap-5.bin"));
}

TEST_F(HotSwapTest, PollAppliesContiguousDeltaChain) {
  const std::string dir = FreshDir("chain");
  ASSERT_TRUE(PublishFull(dir, 1, *image_a_).ok());
  SnapshotManagerOptions options;
  options.dir = dir;
  options.backoff_base_ms = 0;
  SnapshotManager manager(options);
  ASSERT_TRUE(manager.LoadInitial().ok());
  ASSERT_EQ(manager.generation(), 1u);

  ASSERT_TRUE(PublishDelta(dir, 2, *delta_ab_, crc_a_).ok());
  ASSERT_TRUE(PublishDelta(dir, 3, *delta_ba_, crc_b_).ok());
  SnapshotPollResult poll = manager.Poll();
  EXPECT_EQ(poll.swaps, 2);
  EXPECT_EQ(poll.failed, 0);
  EXPECT_EQ(manager.generation(), 3u);
  // Generation 3 re-materializes image A exactly (A → B → A).
  EXPECT_EQ(manager.Current()->image_crc32, crc_a_);
  const std::string response =
      manager.Current()->engine->Answer((*workload_)[0]);
  EXPECT_EQ(response.rfind("OK", 0), 0u) << response;
}

TEST_F(HotSwapTest, InFlightQueriesFinishOnTheOldGeneration) {
  const std::string dir = FreshDir("pin");
  ASSERT_TRUE(PublishFull(dir, 1, *image_a_).ok());
  SnapshotManagerOptions options;
  options.dir = dir;
  options.backoff_base_ms = 0;
  SnapshotManager manager(options);
  ASSERT_TRUE(manager.LoadInitial().ok());

  EnginePin pin = manager.Pin();
  ASSERT_NE(pin.engine, nullptr);
  ASSERT_TRUE(PublishFull(dir, 2, *image_b_).ok());
  SnapshotPollResult poll = manager.Poll();
  EXPECT_EQ(poll.swaps, 1);
  EXPECT_EQ(manager.generation(), 2u);
  // The pinned engine is the old generation, still alive and answering.
  EXPECT_NE(pin.engine, manager.Current()->engine.get());
  EXPECT_EQ(pin.engine->generation(), 1u);
  for (const std::string& line : *workload_) {
    const std::string response = pin.engine->Answer(line);
    EXPECT_EQ(response.rfind("OK", 0), 0u) << response;
  }
}

TEST_F(HotSwapTest, CrashDuringPublishIsContainedAndRecoverable) {
  const std::string dir = FreshDir("crash");
  ASSERT_TRUE(PublishFull(dir, 1, *image_a_).ok());
  // A crashed publisher leaves two kinds of carcass: a temp file that never
  // reached its final name (ignored — it does not match the publish naming),
  // and a torn write under the real name (quarantined).
  ASSERT_TRUE(WriteStringToFile(image_b_->substr(0, 100),
                                dir + "/snap-2.bin.snap-tmp")
                  .ok());
  ASSERT_TRUE(
      WriteStringToFile(image_b_->substr(0, image_b_->size() / 3),
                        dir + "/snap-3.bin")
          .ok());
  SnapshotManagerOptions options;
  options.dir = dir;
  options.backoff_base_ms = 0;
  SnapshotManager manager(options);
  ASSERT_TRUE(manager.LoadInitial().ok());
  EXPECT_EQ(manager.generation(), 1u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/snap-3.bin.quarantined"));

  // Rollback proper: a bad publish while a generation is already serving.
  ASSERT_TRUE(
      WriteStringToFile(image_b_->substr(0, image_b_->size() / 2),
                        dir + "/snap-5.bin")
          .ok());
  SnapshotPollResult poll = manager.Poll();
  EXPECT_EQ(poll.failed, 1);
  EXPECT_EQ(poll.rolled_back, 1);
  EXPECT_EQ(poll.swaps, 0);
  EXPECT_EQ(manager.generation(), 1u);

  // The publisher retries cleanly under the same name; serving moves on.
  ASSERT_TRUE(PublishFull(dir, 5, *image_b_).ok());
  poll = manager.Poll();
  EXPECT_EQ(poll.swaps, 1);
  EXPECT_EQ(manager.generation(), 5u);

  // A restart over the same directory (quarantined files and all) recovers.
  SnapshotManager restarted(options);
  ASSERT_TRUE(restarted.LoadInitial().ok());
  EXPECT_EQ(restarted.generation(), 5u);
}

/// Regression: a delta chain whose first link fails must not leave the
/// successors on disk — they bind to an image that will never exist, and
/// before orphan quarantine every later poll re-discovered the same dead
/// chain head and the watcher stalled until a full image happened to arrive.
TEST_F(HotSwapTest, OrphanedChainDeltasAreQuarantinedInOnePoll) {
  const std::string dir = FreshDir("orphans");
  ASSERT_TRUE(PublishFull(dir, 1, *image_a_).ok());
  SnapshotManagerOptions options;
  options.dir = dir;
  options.load_retries = 0;
  options.backoff_base_ms = 0;
  SnapshotManager manager(options);
  ASSERT_TRUE(manager.LoadInitial().ok());
  ASSERT_EQ(manager.generation(), 1u);

  // Head of the chain is torn; its successors are perfectly good publishes
  // that can never apply once the head is quarantined.
  {
    SnapshotDelta d = *delta_ab_;
    d.base_generation = 1;
    d.base_crc32 = crc_a_;
    d.generation = 2;
    const std::string pristine_path = dir + "/pristine";
    ASSERT_TRUE(WriteSnapshotDeltaFile(d, pristine_path).ok());
    auto pristine = ReadFileToString(pristine_path);
    ASSERT_TRUE(pristine.ok());
    ASSERT_TRUE(WriteStringToFile(pristine->substr(0, pristine->size() / 2),
                                  dir + "/delta-2.bin")
                    .ok());
  }
  ASSERT_TRUE(PublishDelta(dir, 3, *delta_ba_, crc_b_).ok());
  ASSERT_TRUE(PublishDelta(dir, 4, *delta_ab_, crc_a_).ok());

  SnapshotPollResult poll = manager.Poll();
  EXPECT_EQ(poll.failed, 1);
  EXPECT_EQ(poll.rolled_back, 1);
  EXPECT_EQ(poll.orphaned, 2);
  EXPECT_EQ(poll.swaps, 0);
  EXPECT_EQ(manager.generation(), 1u);
  for (int gen = 2; gen <= 4; ++gen) {
    const std::string name = dir + "/delta-" + std::to_string(gen) + ".bin";
    EXPECT_TRUE(std::filesystem::exists(name + ".quarantined")) << name;
    EXPECT_FALSE(std::filesystem::exists(name)) << name;
  }
  // Serving never blinked, and a later good full image recovers normally.
  const std::string response =
      manager.Current()->engine->Answer((*workload_)[0]);
  EXPECT_EQ(response.rfind("OK", 0), 0u) << response;
  ASSERT_TRUE(PublishFull(dir, 5, *image_b_).ok());
  poll = manager.Poll();
  EXPECT_EQ(poll.swaps, 1);
  EXPECT_EQ(poll.failed, 0);
  EXPECT_EQ(manager.generation(), 5u);
}

/// Regression: a cleanly parsed delta that binds to a base generation which
/// was rolled back and republished with different bytes (same generation
/// number, different CRC) is a permanent mismatch. It must fail fast —
/// quarantined in one poll, successors orphaned — instead of being treated
/// like a transient read race.
TEST_F(HotSwapTest, DeltaAgainstRolledBackBaseIsQuarantinedWithoutStalling) {
  const std::string dir = FreshDir("rolled_back_base");
  ASSERT_TRUE(PublishFull(dir, 1, *image_a_).ok());
  SnapshotManagerOptions options;
  options.dir = dir;
  // Generous retry budget: the base-binding mismatch must not consume it.
  options.load_retries = 5;
  options.backoff_base_ms = 0;
  SnapshotManager manager(options);
  ASSERT_TRUE(manager.LoadInitial().ok());
  ASSERT_EQ(manager.Current()->image_crc32, crc_a_);

  // The publisher built delta-2 (and delta-3 on top) against a generation-1
  // image that was rolled back before this manager ever served it: the delta
  // parses fine but records base crc B while we serve crc A.
  ASSERT_TRUE(PublishDelta(dir, 2, *delta_ba_, crc_b_).ok());
  ASSERT_TRUE(PublishDelta(dir, 3, *delta_ab_, crc_a_).ok());

  SnapshotPollResult poll = manager.Poll();
  EXPECT_EQ(poll.failed, 1);
  EXPECT_EQ(poll.rolled_back, 1);
  EXPECT_EQ(poll.orphaned, 1);
  EXPECT_EQ(poll.swaps, 0);
  EXPECT_EQ(manager.generation(), 1u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/delta-2.bin.quarantined"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/delta-3.bin.quarantined"));

  // A consistent republish of the chain applies on the next poll.
  ASSERT_TRUE(PublishDelta(dir, 2, *delta_ab_, crc_a_).ok());
  poll = manager.Poll();
  EXPECT_EQ(poll.swaps, 1);
  EXPECT_EQ(manager.generation(), 2u);
  EXPECT_EQ(manager.Current()->image_crc32, crc_b_);
}

/// 60-seed corruption sweep at the manager level: a corrupted delta publish
/// must be detected, quarantined, and rolled back — the serving generation
/// never moves and never serves an image that failed validation.
TEST_F(HotSwapTest, CorruptDeltaPublishesAreQuarantinedAndRolledBack) {
  // One pristine delta file to corrupt per seed.
  const std::string pristine_path = ::testing::TempDir() + "/hotswap_pristine_delta";
  {
    SnapshotDelta d = *delta_ab_;
    d.base_generation = 1;
    d.base_crc32 = crc_a_;
    d.generation = 2;
    ASSERT_TRUE(WriteSnapshotDeltaFile(d, pristine_path).ok());
  }
  auto pristine = ReadFileToString(pristine_path);
  ASSERT_TRUE(pristine.ok());

  int rejected = 0;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FaultInjector injector(0x5eed ^ (0x9e3779b97f4a7c15ULL * (seed + 1)));
    FaultKind kind;
    std::string corrupted = injector.CorruptRandom(*pristine, &kind);
    if (corrupted == *pristine) continue;  // Identity corruption.
    const std::string dir = FreshDir("sweep_" + std::to_string(seed));
    ASSERT_TRUE(PublishFull(dir, 1, *image_a_).ok());
    SnapshotManagerOptions options;
    options.dir = dir;
    options.load_retries = 0;  // Persistent corruption: retrying only slows the sweep.
    options.backoff_base_ms = 0;
    SnapshotManager manager(options);
    ASSERT_TRUE(manager.LoadInitial().ok());
    ASSERT_TRUE(WriteStringToFile(corrupted, dir + "/delta-2.bin").ok());
    SnapshotPollResult poll = manager.Poll();
    if (poll.failed > 0) {
      rejected++;
      EXPECT_EQ(manager.generation(), 1u);
      EXPECT_GE(poll.rolled_back, 1);
      EXPECT_EQ(poll.swaps, 0);
      EXPECT_TRUE(std::filesystem::exists(dir + "/delta-2.bin.quarantined"));
    } else {
      // Survivable corruption: it installed, so it must have validated.
      EXPECT_EQ(manager.generation(), 2u);
    }
  }
  EXPECT_GT(rejected, 40);
}

/// TSan target: four closed-loop clients query through the batcher while the
/// publisher performs 100 swaps (alternating full images and deltas). Every
/// response must be OK — a swap never yields a failed or torn answer.
TEST_F(HotSwapTest, ConcurrentSwapsUnderQueryLoadNeverFailAQuery) {
  const std::string dir = FreshDir("concurrent");
  ASSERT_TRUE(PublishFull(dir, 1, *image_a_).ok());
  SnapshotManagerOptions options;
  options.dir = dir;
  options.backoff_base_ms = 0;
  SnapshotManager manager(options);
  ASSERT_TRUE(manager.LoadInitial().ok());
  BatcherOptions batch_options;
  batch_options.max_wait_ms = 0;
  Batcher batcher(EngineSource([&manager] { return manager.Pin(); }),
                  batch_options);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> answered{0};
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string response =
            batcher.Submit((*workload_)[i % workload_->size()]).get();
        if (response.rfind("OK", 0) != 0) failures.fetch_add(1);
        answered.fetch_add(1);
        ++i;
      }
    });
  }

  int swaps = 0;
  for (uint64_t gen = 2; gen <= 101; ++gen) {
    Status published = gen % 2 == 0
                           ? PublishDelta(dir, gen, *delta_ab_, crc_a_)
                           : PublishFull(dir, gen, *image_a_);
    ASSERT_TRUE(published.ok()) << published.ToString();
    SnapshotPollResult poll = manager.Poll();
    ASSERT_EQ(poll.generation, gen);
    swaps += poll.swaps;
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(swaps, 100);
  EXPECT_EQ(manager.generation(), 101u);
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(answered.load(), 0u);
}

}  // namespace
}  // namespace semdrift
