// Acceptance test for the tracing layer's health contract: a supervised run
// with injected faults must emit "health.*" spans whose tags carry the full
// mutation, so replaying them into a fresh RunHealthReport reproduces the
// run's report exactly (ToLines() equality). Also pins the determinism
// contract: the deterministic span fields (CanonicalLine) are identical at
// any thread count.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dp/cleaner.h"
#include "eval/experiment.h"
#include "obs/trace.h"
#include "util/fault_injection.h"
#include "util/supervisor.h"
#include "util/thread_pool.h"

namespace semdrift {
namespace {

std::string TagValue(const TraceSpan& span, const std::string& key) {
  for (const auto& [k, v] : span.tags) {
    if (k == key) return v;
  }
  return "";
}

/// Replays every health.* span of `spans` into a fresh report, exactly the
/// way an external trace consumer would.
RunHealthReport ReplayHealth(const std::vector<TraceSpan>& spans) {
  RunHealthReport replayed;
  for (const TraceSpan& s : spans) {
    if (s.name == "health.concept") {
      ConceptOutcome outcome;
      PipelineStage stage;
      EXPECT_TRUE(ParseConceptOutcome(s.outcome, &outcome)) << s.outcome;
      EXPECT_TRUE(ParsePipelineStage(TagValue(s, "stage"), &stage));
      replayed.Record(s.concept_id, outcome, s.attempt, stage,
                      TagValue(s, "detail"));
    } else if (s.name == "health.drop") {
      DroppedInstance drop;
      drop.concept_id = s.concept_id;
      drop.instance =
          static_cast<uint32_t>(std::stoul(TagValue(s, "instance")));
      EXPECT_TRUE(ParsePipelineStage(TagValue(s, "stage"), &drop.stage));
      drop.reason = TagValue(s, "reason");
      replayed.RecordDrop(drop);
    } else if (s.name == "health.fallback") {
      replayed.RecordDetectorFallback(s.attempt, TagValue(s, "detail"));
    }
  }
  return replayed;
}

struct FaultedRun {
  std::vector<std::string> health_lines;
  std::vector<TraceSpan> spans;
};

/// One supervised clean with persistent and transient faults across two
/// stages, traced; returns the run's health report and the trace.
FaultedRun RunFaulted(int threads) {
  ExperimentConfig config = PaperScaleConfig(0.08);
  auto experiment = Experiment::Build(config);
  std::vector<ConceptId> scope = experiment->EvalConcepts();
  CleanerOptions options;
  options.max_rounds = 2;
  DpCleaner cleaner(&experiment->corpus().sentences,
                    experiment->MakeVerifiedSource(),
                    experiment->world().num_concepts(), options);

  ComputeFaultPlan plan;
  plan.seed = 2014;
  plan.rate = 0.3;
  plan.kinds = {ComputeFaultKind::kThrow, ComputeFaultKind::kNanEmit};
  plan.stages = {PipelineStage::kScoreWarm, PipelineStage::kCollectTraining};

  SupervisorOptions sup_options;
  sup_options.stage_deadline_ms = 5000;
  sup_options.max_retries = 1;
  sup_options.backoff_base_ms = 0;

  SetGlobalThreadCount(threads);
  GlobalTrace().Clear();
  GlobalTrace().Enable(true);
  KnowledgeBase kb = experiment->Extract();
  Supervisor supervisor(sup_options, plan);
  SupervisedCleanHooks hooks;
  hooks.supervisor = &supervisor;
  auto report = cleaner.CleanSupervised(&kb, scope, hooks);
  GlobalTrace().Enable(false);
  SetGlobalThreadCount(0);
  EXPECT_TRUE(report.ok()) << report.status().ToString();

  FaultedRun out;
  out.health_lines = supervisor.health()->ToLines();
  out.spans = GlobalTrace().Snapshot();
  GlobalTrace().Clear();
  return out;
}

TEST(TraceHealthTest, HealthSpansReconstructTheReportExactly) {
  FaultedRun run = RunFaulted(/*threads=*/4);
  // The fault plan must actually have hurt something, or this test proves
  // nothing.
  ASSERT_FALSE(run.health_lines.empty());
  size_t health_spans = 0;
  for (const TraceSpan& s : run.spans) {
    if (s.name.rfind("health.", 0) == 0) health_spans++;
  }
  ASSERT_GT(health_spans, 0u);

  RunHealthReport replayed = ReplayHealth(run.spans);
  EXPECT_EQ(replayed.ToLines(), run.health_lines);
}

TEST(TraceHealthTest, OutcomeSpansCoverEveryScopedConcept) {
  FaultedRun run = RunFaulted(/*threads=*/4);
  // Every concept in scope gets a stage.outcome span per supervised stage
  // pass — healthy ones included — so span coverage counting works.
  size_t outcome_spans = 0;
  for (const TraceSpan& s : run.spans) {
    if (s.name == "stage.outcome") {
      outcome_spans++;
      EXPECT_NE(s.concept_id, TraceSpan::kNoConcept);
      EXPECT_FALSE(s.outcome.empty());
    }
  }
  EXPECT_GT(outcome_spans, 0u);
}

TEST(TraceHealthTest, DeterministicSpanFieldsAreThreadCountInvariant) {
  FaultedRun one = RunFaulted(/*threads=*/1);
  FaultedRun four = RunFaulted(/*threads=*/4);
  ASSERT_EQ(one.spans.size(), four.spans.size());
  for (size_t i = 0; i < one.spans.size(); ++i) {
    EXPECT_EQ(one.spans[i].CanonicalLine(), four.spans[i].CanonicalLine())
        << "span " << i << " diverges across thread counts";
  }
  EXPECT_EQ(one.health_lines, four.health_lines);
}

}  // namespace
}  // namespace semdrift
