#include "kb/knowledge_base.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace semdrift {

namespace {
const std::vector<InstanceId> kEmptyInstances;
const std::vector<uint32_t> kEmptyRecords;
}  // namespace

uint32_t KnowledgeBase::ApplyExtraction(SentenceId sentence, ConceptId c,
                                        const std::vector<InstanceId>& instances,
                                        const std::vector<InstanceId>& triggers,
                                        int iteration) {
  uint32_t record_id = static_cast<uint32_t>(records_.size());
  ExtractionRecord record;
  record.id = record_id;
  record.sentence = sentence;
  record.concept_id = c;
  record.iteration = iteration;
  record.instances = instances;
  record.triggers = triggers;
  records_.push_back(std::move(record));

  if (c.value >= concept_instances_.size()) {
    concept_instances_.resize(c.value + 1);
    concept_records_.resize(c.value + 1);
  }
  concept_records_[c.value].push_back(record_id);

  for (InstanceId e : instances) {
    IsAPair pair{c, e};
    auto [it, inserted] = pairs_.emplace(pair, PairStats{});
    PairStats& stats = it->second;
    if (inserted) concept_instances_[c.value].push_back(e);
    if (stats.count == 0) ++live_pairs_;
    ++stats.count;
    if (iteration == 1) ++stats.iter1_count;
    if (stats.first_iteration < 0) stats.first_iteration = iteration;
    stats.producing_records.push_back(record_id);
  }
  for (InstanceId t : triggers) {
    auto it = pairs_.find(IsAPair{c, t});
    assert(it != pairs_.end() && "trigger must already be a known pair");
    it->second.triggered_records.push_back(record_id);
  }
  return record_id;
}

Result<KnowledgeBase> KnowledgeBase::FromRecords(
    const std::vector<ExtractionRecord>& records) {
  KnowledgeBase kb;
  auto fail = [](size_t i, const std::string& why) {
    return Status::DataLoss("record " + std::to_string(i) + ": " + why);
  };
  for (size_t i = 0; i < records.size(); ++i) {
    const ExtractionRecord& r = records[i];
    if (r.id != i) return fail(i, "id breaks the sequence");
    if (!r.concept_id.valid()) return fail(i, "invalid concept id");
    if (!r.sentence.valid()) return fail(i, "invalid sentence id");
    if (r.iteration < 1) return fail(i, "iteration < 1");
    if (r.instances.empty()) return fail(i, "no instances");
    for (InstanceId e : r.instances) {
      if (!e.valid()) return fail(i, "invalid instance id");
    }
    for (InstanceId t : r.triggers) {
      // At replay time no rollbacks have been applied yet, so "was live at
      // extraction time" reduces to "was produced by an earlier record".
      if (!t.valid() || kb.Count(IsAPair{r.concept_id, t}) <= 0) {
        return fail(i, "trigger was never a live pair");
      }
    }
    kb.ApplyExtraction(r.sentence, r.concept_id, r.instances, r.triggers,
                       r.iteration);
  }
  std::vector<IsAPair> dead;  // Discarded: the flags already encode the cascade.
  for (const ExtractionRecord& r : records) {
    if (r.rolled_back) kb.RollbackOne(r.id, &dead);
  }
  return kb;
}

int KnowledgeBase::Count(const IsAPair& pair) const {
  auto it = pairs_.find(pair);
  return it == pairs_.end() ? 0 : it->second.count;
}

int KnowledgeBase::Iter1Count(const IsAPair& pair) const {
  auto it = pairs_.find(pair);
  return it == pairs_.end() ? 0 : it->second.iter1_count;
}

int KnowledgeBase::FirstIteration(const IsAPair& pair) const {
  auto it = pairs_.find(pair);
  return it == pairs_.end() ? -1 : it->second.first_iteration;
}

const PairStats* KnowledgeBase::Find(const IsAPair& pair) const {
  auto it = pairs_.find(pair);
  return it == pairs_.end() ? nullptr : &it->second;
}

const std::vector<InstanceId>& KnowledgeBase::InstancesEverOf(ConceptId c) const {
  if (c.value >= concept_instances_.size()) return kEmptyInstances;
  return concept_instances_[c.value];
}

std::vector<InstanceId> KnowledgeBase::LiveInstancesOf(ConceptId c) const {
  std::vector<InstanceId> out;
  for (InstanceId e : InstancesEverOf(c)) {
    if (Contains(IsAPair{c, e})) out.push_back(e);
  }
  return out;
}

std::vector<std::pair<InstanceId, int>> KnowledgeBase::Iter1InstancesOf(
    ConceptId c) const {
  std::vector<std::pair<InstanceId, int>> out;
  for (InstanceId e : InstancesEverOf(c)) {
    IsAPair pair{c, e};
    auto it = pairs_.find(pair);
    if (it == pairs_.end()) continue;
    if (it->second.count > 0 && it->second.iter1_count > 0) {
      out.emplace_back(e, it->second.iter1_count);
    }
  }
  return out;
}

const std::vector<uint32_t>& KnowledgeBase::RecordsOfConcept(ConceptId c) const {
  if (c.value >= concept_records_.size()) return kEmptyRecords;
  return concept_records_[c.value];
}

void KnowledgeBase::ForEachLiveRecordOfConcept(
    ConceptId c, const std::function<void(const ExtractionRecord&)>& fn) const {
  for (uint32_t id : RecordsOfConcept(c)) {
    const ExtractionRecord& record = records_[id];
    if (!record.rolled_back) fn(record);
  }
}

std::vector<uint32_t> KnowledgeBase::LiveRecordsTriggeredBy(const IsAPair& pair) const {
  std::vector<uint32_t> out;
  auto it = pairs_.find(pair);
  if (it == pairs_.end()) return out;
  for (uint32_t id : it->second.triggered_records) {
    if (!records_[id].rolled_back) out.push_back(id);
  }
  return out;
}

std::unordered_map<InstanceId, int> KnowledgeBase::SubInstancesOf(
    const IsAPair& pair) const {
  std::unordered_map<InstanceId, int> out;
  for (uint32_t id : LiveRecordsTriggeredBy(pair)) {
    for (InstanceId e : records_[id].instances) {
      if (e == pair.instance) continue;
      ++out[e];
    }
  }
  return out;
}

bool KnowledgeBase::RollbackOne(uint32_t record_id, std::vector<IsAPair>* newly_dead) {
  ExtractionRecord& record = records_[record_id];
  if (record.rolled_back) return false;
  record.rolled_back = true;
  for (InstanceId e : record.instances) {
    IsAPair pair{record.concept_id, e};
    auto it = pairs_.find(pair);
    assert(it != pairs_.end());
    PairStats& stats = it->second;
    assert(stats.count > 0);
    --stats.count;
    if (record.iteration == 1) --stats.iter1_count;
    if (stats.count == 0) {
      --live_pairs_;
      newly_dead->push_back(pair);
    }
  }
  return true;
}

int KnowledgeBase::CascadeDeadPairs(std::vector<IsAPair> dead, CascadePolicy policy) {
  int rolled = 0;
  while (!dead.empty()) {
    IsAPair pair = dead.back();
    dead.pop_back();
    auto it = pairs_.find(pair);
    if (it == pairs_.end()) continue;
    for (uint32_t dependent_id : it->second.triggered_records) {
      ExtractionRecord& dependent = records_[dependent_id];
      if (dependent.rolled_back) continue;
      bool roll = false;
      if (policy == CascadePolicy::kAnyTriggerDead) {
        roll = true;
      } else {
        // kAllTriggersDead: the record falls only when no live trigger
        // could still have licensed it.
        roll = true;
        for (InstanceId t : dependent.triggers) {
          if (Contains(IsAPair{dependent.concept_id, t})) {
            roll = false;
            break;
          }
        }
      }
      if (roll && RollbackOne(dependent_id, &dead)) ++rolled;
    }
  }
  return rolled;
}

int KnowledgeBase::RollbackRecord(uint32_t record_id, CascadePolicy policy) {
  std::vector<IsAPair> dead;
  if (!RollbackOne(record_id, &dead)) return 0;
  return 1 + CascadeDeadPairs(std::move(dead), policy);
}

int KnowledgeBase::RemovePair(const IsAPair& pair, CascadePolicy policy) {
  auto it = pairs_.find(pair);
  if (it == pairs_.end() || it->second.count == 0) return 0;
  int rolled = 0;
  std::vector<IsAPair> dead;
  // Copy: RollbackOne does not mutate producing_records, but be defensive
  // about iterator stability across future changes.
  std::vector<uint32_t> producers = it->second.producing_records;
  for (uint32_t id : producers) {
    if (RollbackOne(id, &dead)) ++rolled;
  }
  return rolled + CascadeDeadPairs(std::move(dead), policy);
}

Status KnowledgeBase::Validate(size_t num_concepts, size_t num_sentences) const {
  auto fail = [](const std::string& why) { return Status::DataLoss("KB invariant: " + why); };

  // Records: dense ids, valid references, in-bounds against the world.
  for (size_t i = 0; i < records_.size(); ++i) {
    const ExtractionRecord& r = records_[i];
    std::string at = "record " + std::to_string(i);
    if (r.id != i) return fail(at + " id mismatch");
    if (!r.concept_id.valid()) return fail(at + " has invalid concept id");
    if (!r.sentence.valid()) return fail(at + " has invalid sentence id");
    if (num_concepts > 0 && r.concept_id.value >= num_concepts) {
      return fail(at + " references dangling concept id " +
                  std::to_string(r.concept_id.value));
    }
    if (num_sentences > 0 && r.sentence.value >= num_sentences) {
      return fail(at + " references dangling sentence id " +
                  std::to_string(r.sentence.value));
    }
    if (r.iteration < 1) return fail(at + " has iteration < 1");
    if (r.instances.empty()) return fail(at + " has no instances");
    if (r.concept_id.value >= concept_records_.size()) {
      return fail(at + " missing from the concept-record index");
    }
    const auto& index = concept_records_[r.concept_id.value];
    if (std::find(index.begin(), index.end(), r.id) == index.end()) {
      return fail(at + " missing from the concept-record index");
    }
    for (InstanceId e : r.instances) {
      if (!e.valid()) return fail(at + " lists an invalid instance id");
      auto it = pairs_.find(IsAPair{r.concept_id, e});
      if (it == pairs_.end()) return fail(at + " produced a pair missing from the table");
      const auto& producers = it->second.producing_records;
      if (std::find(producers.begin(), producers.end(), r.id) == producers.end()) {
        return fail(at + " missing from its pair's producing records");
      }
    }
    for (InstanceId t : r.triggers) {
      if (!t.valid()) return fail(at + " lists an invalid trigger id");
      auto it = pairs_.find(IsAPair{r.concept_id, t});
      if (it == pairs_.end()) return fail(at + " triggered by a pair missing from the table");
      const auto& triggered = it->second.triggered_records;
      if (std::find(triggered.begin(), triggered.end(), r.id) == triggered.end()) {
        return fail(at + " missing from its trigger pair's triggered records");
      }
    }
  }

  // Pairs: counts derive exactly from live provenance; edges point at real
  // records that really involve the pair.
  size_t live = 0;
  for (const auto& [pair, stats] : pairs_) {
    std::string at = "pair (" + std::to_string(pair.concept_id.value) + "," +
                     std::to_string(pair.instance.value) + ")";
    if (stats.count < 0 || stats.iter1_count < 0) return fail(at + " has negative support");
    int expected_count = 0;
    int expected_iter1 = 0;
    int expected_first = -1;
    for (uint32_t id : stats.producing_records) {
      if (id >= records_.size()) return fail(at + " produced by out-of-range record id");
      const ExtractionRecord& r = records_[id];
      if (r.concept_id != pair.concept_id) return fail(at + " produced by a record of another concept");
      if (std::find(r.instances.begin(), r.instances.end(), pair.instance) ==
          r.instances.end()) {
        return fail(at + " produced by a record that does not list it");
      }
      if (expected_first < 0) expected_first = r.iteration;
      if (!r.rolled_back) {
        ++expected_count;
        if (r.iteration == 1) ++expected_iter1;
      }
    }
    if (stats.count != expected_count) {
      return fail(at + " support " + std::to_string(stats.count) +
                  " != live producing records " + std::to_string(expected_count));
    }
    if (stats.iter1_count != expected_iter1) {
      return fail(at + " iteration-1 support disagrees with provenance");
    }
    if (stats.first_iteration != expected_first) {
      return fail(at + " first-iteration disagrees with provenance");
    }
    for (uint32_t id : stats.triggered_records) {
      if (id >= records_.size()) return fail(at + " triggers an out-of-range record id");
      const ExtractionRecord& r = records_[id];
      if (r.concept_id != pair.concept_id ||
          std::find(r.triggers.begin(), r.triggers.end(), pair.instance) ==
              r.triggers.end()) {
        return fail(at + " triggers a record that does not list it as trigger");
      }
    }
    if (stats.count > 0) ++live;
    // The pair must be indexed under its concept.
    if (pair.concept_id.value >= concept_instances_.size()) {
      return fail(at + " missing from the concept-instance index");
    }
    const auto& ever = concept_instances_[pair.concept_id.value];
    if (std::find(ever.begin(), ever.end(), pair.instance) == ever.end()) {
      return fail(at + " missing from the concept-instance index");
    }
  }
  if (live != live_pairs_) {
    return fail("live-pair counter " + std::to_string(live_pairs_) +
                " != recount " + std::to_string(live));
  }

  // Indexes: no duplicates, nothing indexed that the pair table lacks.
  for (size_t ci = 0; ci < concept_instances_.size(); ++ci) {
    std::unordered_set<uint32_t> seen;
    for (InstanceId e : concept_instances_[ci]) {
      if (!seen.insert(e.value).second) {
        return fail("concept " + std::to_string(ci) + " indexes a duplicate instance");
      }
      if (pairs_.find(IsAPair{ConceptId(static_cast<uint32_t>(ci)), e}) == pairs_.end()) {
        return fail("concept " + std::to_string(ci) + " indexes an unknown pair");
      }
    }
  }
  for (size_t ci = 0; ci < concept_records_.size(); ++ci) {
    for (uint32_t id : concept_records_[ci]) {
      if (id >= records_.size() || records_[id].concept_id.value != ci) {
        return fail("concept " + std::to_string(ci) + " indexes a foreign record");
      }
    }
  }
  return Status::OK();
}

Status KnowledgeBase::ValidateConcepts(const std::vector<ConceptId>& scope,
                                       size_t num_sentences) const {
  auto fail = [](const std::string& why) { return Status::DataLoss("KB invariant: " + why); };

  for (ConceptId c : scope) {
    if (!c.valid()) return fail("scope lists an invalid concept id");
    std::string at = "concept " + std::to_string(c.value);
    if (c.value >= concept_records_.size()) {
      // A concept with no records has nothing to check.
      if (c.value < concept_instances_.size() && !concept_instances_[c.value].empty()) {
        return fail(at + " indexes instances but no records");
      }
      continue;
    }

    // Records of the concept: in-bounds references, pair-table membership.
    for (uint32_t id : concept_records_[c.value]) {
      if (id >= records_.size()) return fail(at + " indexes an out-of-range record");
      const ExtractionRecord& r = records_[id];
      std::string rat = "record " + std::to_string(id);
      if (r.concept_id != c) return fail(at + " indexes a foreign record");
      if (!r.sentence.valid() ||
          (num_sentences > 0 && r.sentence.value >= num_sentences)) {
        return fail(rat + " references dangling sentence id " +
                    std::to_string(r.sentence.value));
      }
      if (r.iteration < 1) return fail(rat + " has iteration < 1");
      if (r.instances.empty()) return fail(rat + " has no instances");
      for (InstanceId e : r.instances) {
        auto it = pairs_.find(IsAPair{c, e});
        if (it == pairs_.end()) return fail(rat + " produced a pair missing from the table");
        const auto& producers = it->second.producing_records;
        if (std::find(producers.begin(), producers.end(), id) == producers.end()) {
          return fail(rat + " missing from its pair's producing records");
        }
      }
      for (InstanceId t : r.triggers) {
        auto it = pairs_.find(IsAPair{c, t});
        if (it == pairs_.end()) return fail(rat + " triggered by a pair missing from the table");
        const auto& triggered = it->second.triggered_records;
        if (std::find(triggered.begin(), triggered.end(), id) == triggered.end()) {
          return fail(rat + " missing from its trigger pair's triggered records");
        }
      }
    }

    // Pairs of the concept: support derives exactly from live provenance.
    if (c.value >= concept_instances_.size()) continue;
    for (InstanceId e : concept_instances_[c.value]) {
      IsAPair pair{c, e};
      auto it = pairs_.find(pair);
      if (it == pairs_.end()) return fail(at + " indexes an unknown pair");
      const PairStats& stats = it->second;
      std::string pat = "pair (" + std::to_string(c.value) + "," +
                        std::to_string(e.value) + ")";
      int expected_count = 0;
      int expected_iter1 = 0;
      int expected_first = -1;
      for (uint32_t id : stats.producing_records) {
        if (id >= records_.size()) return fail(pat + " produced by out-of-range record id");
        const ExtractionRecord& r = records_[id];
        if (r.concept_id != c ||
            std::find(r.instances.begin(), r.instances.end(), e) == r.instances.end()) {
          return fail(pat + " produced by a record that does not list it");
        }
        if (expected_first < 0) expected_first = r.iteration;
        if (!r.rolled_back) {
          ++expected_count;
          if (r.iteration == 1) ++expected_iter1;
        }
      }
      if (stats.count != expected_count) {
        return fail(pat + " support " + std::to_string(stats.count) +
                    " != live producing records " + std::to_string(expected_count));
      }
      if (stats.iter1_count != expected_iter1) {
        return fail(pat + " iteration-1 support disagrees with provenance");
      }
      if (stats.first_iteration != expected_first) {
        return fail(pat + " first-iteration disagrees with provenance");
      }
      for (uint32_t id : stats.triggered_records) {
        if (id >= records_.size()) return fail(pat + " triggers an out-of-range record id");
        const ExtractionRecord& r = records_[id];
        if (r.concept_id != c ||
            std::find(r.triggers.begin(), r.triggers.end(), e) == r.triggers.end()) {
          return fail(pat + " triggers a record that does not list it as trigger");
        }
      }
    }
  }
  return Status::OK();
}

int KnowledgeBase::RollbackTriggeredBy(const IsAPair& pair, CascadePolicy policy) {
  int rolled = 0;
  std::vector<IsAPair> dead;
  for (uint32_t id : LiveRecordsTriggeredBy(pair)) {
    if (RollbackOne(id, &dead)) ++rolled;
  }
  return rolled + CascadeDeadPairs(std::move(dead), policy);
}

}  // namespace semdrift
