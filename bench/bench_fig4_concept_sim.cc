// Reproduces Fig. 4: the distribution of core-pair cosine similarity
// between concept pairs (Eq. 5), whose bands define Mutually Exclusive /
// Irrelevant / Highly Similar concept relations. Shape to match: a large
// mass of zero/near-zero pairs, a small bump of moderately-overlapping
// pairs, and a thin tail of highly similar (twin) pairs.

#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "mutex/mutex_index.h"
#include "util/table_writer.h"

using namespace semdrift;

int main() {
  auto experiment = bench::BuildBenchExperiment();
  KnowledgeBase kb = experiment->Extract();
  MutexIndex index(kb, experiment->world().num_concepts());

  // Count usable concept pairs; pairs absent from the sparse similarity map
  // have similarity exactly 0.
  size_t usable = 0;
  for (size_t ci = 0; ci < experiment->world().num_concepts(); ++ci) {
    if (index.Usable(ConceptId(static_cast<uint32_t>(ci)))) ++usable;
  }
  size_t total_pairs = usable * (usable - 1) / 2;
  auto sims = index.NonZeroSimilarities();

  // Log-spaced histogram like the paper's x-axis (1e-5 .. 1).
  const double edges[] = {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0001};
  size_t buckets[7] = {0, 0, 0, 0, 0, 0, 0};
  for (double s : sims) {
    int bucket = 0;
    while (bucket < 6 && s >= edges[bucket]) ++bucket;
    ++buckets[bucket];
  }
  SeriesWriter series("Fig. 4: distribution of cosine similarity between concepts");
  series.SetColumns({"bucket_upper_edge", "num_concept_pairs"});
  series.AddPoint({0.0, static_cast<double>(total_pairs - sims.size())});
  for (int b = 0; b < 7; ++b) {
    series.AddPoint({b < 7 ? edges[std::min(b, 6)] : 1.0,
                     static_cast<double>(buckets[b])});
  }
  series.Print(std::cout, 5);
  std::cout << "bands with the default thresholds: mutually exclusive < "
            << index.params().mutex_threshold << ", highly similar > "
            << index.params().similar_threshold << "\n";
  (void)series.WriteCsv("bench_fig4.csv");
  return 0;
}
