#ifndef SEMDRIFT_UTIL_TIMER_H_
#define SEMDRIFT_UTIL_TIMER_H_

#include <chrono>

namespace semdrift {

/// Monotonic wall-clock stopwatch for coarse pipeline timing.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_UTIL_TIMER_H_
