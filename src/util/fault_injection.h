#ifndef SEMDRIFT_UTIL_FAULT_INJECTION_H_
#define SEMDRIFT_UTIL_FAULT_INJECTION_H_

#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace semdrift {

/// Ways a persisted file can go wrong in the wild. Each kind models a real
/// failure the loaders must survive: a crash mid-write (truncation), disk or
/// transfer bit rot (byte flips), a buggy producer or concat (dropped /
/// duplicated lines), and encoding garbage leaking into text fields.
enum class FaultKind {
  /// Cut the content at a random byte offset (torn write).
  kTruncate,
  /// Flip 1–8 random bytes in place (bit rot).
  kFlipBytes,
  /// Remove one random line (lost record).
  kDropLine,
  /// Duplicate one random line (replayed record).
  kDuplicateLine,
  /// Replace one random line's bytes with non-UTF8 garbage.
  kGarbageLine,
  /// Splice random binary garbage into the middle of a random line
  /// (field-level corruption: numbers become junk, tabs disappear).
  kSpliceGarbage,
};

/// Human-readable name, e.g. "truncate"; used in fuzz-load reports.
const char* FaultKindName(FaultKind kind);

/// All kinds, for sweeps.
std::vector<FaultKind> AllFaultKinds();

/// Deterministic, seeded corruption engine. Equal seeds produce equal
/// corruptions of equal inputs, so every fuzz failure is replayable from
/// its seed alone. Used by `semdrift fuzz-load` and the robustness tests to
/// prove the loaders never crash and degrade exactly as specified.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  /// Returns a corrupted copy of `content`. The original is untouched.
  /// Degenerate inputs (empty content) are returned unchanged.
  std::string Corrupt(const std::string& content, FaultKind kind);

  /// Picks a kind from the seeded stream, then corrupts.
  std::string CorruptRandom(const std::string& content, FaultKind* kind_out = nullptr);

  /// File-level convenience: reads `in_path`, corrupts, writes `out_path`.
  Status CorruptFile(const std::string& in_path, const std::string& out_path,
                     FaultKind kind);

 private:
  Rng rng_;
};

/// Reads a whole file into a string. Shared by the injector and tests.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file, replacing it.
Status WriteStringToFile(const std::string& content, const std::string& path);

}  // namespace semdrift

#endif  // SEMDRIFT_UTIL_FAULT_INJECTION_H_
