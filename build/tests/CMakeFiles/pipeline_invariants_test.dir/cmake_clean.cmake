file(REMOVE_RECURSE
  "CMakeFiles/pipeline_invariants_test.dir/pipeline_invariants_test.cc.o"
  "CMakeFiles/pipeline_invariants_test.dir/pipeline_invariants_test.cc.o.d"
  "pipeline_invariants_test"
  "pipeline_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
