#ifndef SEMDRIFT_BASELINES_CLEANERS_H_
#define SEMDRIFT_BASELINES_CLEANERS_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "corpus/world.h"
#include "kb/knowledge_base.h"
#include "mutex/mutex_index.h"
#include "rank/scorers.h"
#include "text/ids.h"
#include "util/rng.h"

namespace semdrift {

/// Baseline cleaners identify pairs to remove without mutating the KB (none
/// of them has the trigger provenance DP cleaning exploits); evaluation
/// compares the returned removal sets against ground truth.

/// Mutual Exclusion cleaning [5] (Table 3, "MEx"): an instance living under
/// two mutually exclusive concepts is suspicious; the pair with the weaker
/// support is reported as an error. Only pairs under `scope` are reported.
std::vector<IsAPair> MutualExclusionClean(const KnowledgeBase& kb,
                                          const MutexIndex& mutex,
                                          const std::vector<ConceptId>& scope);

/// Simulated named-entity recognizer standing in for Stanford NER [10] in
/// the Type Checking baseline [14]. The oracle assigns each *covered*
/// instance one coarse type (the type group of its primary true concept,
/// with `accuracy` probability of being right); concepts map to type groups
/// by construction. Coverage below 1 is what caps the baseline's recall,
/// exactly as the paper observes for TCh.
class TypeOracle {
 public:
  struct Options {
    int num_groups = 12;
    /// Probability an instance is recognized at all.
    double coverage = 0.2;
    /// Probability a recognized instance gets its true group.
    double accuracy = 0.95;
    uint64_t seed = 99;
  };

  TypeOracle(const World* world, Options options);

  /// Group of a concept (always known; concepts are closed-class).
  int GroupOf(ConceptId c) const;

  /// Group the NER reports for an instance; -1 when not covered.
  int TypeOf(InstanceId e) const;

 private:
  const World* world_;
  Options options_;
  std::vector<int> concept_group_;
  std::unordered_map<InstanceId, int> instance_type_;
};

/// Type Checking cleaning [14, 4] (Table 3, "TCh"): remove live pairs whose
/// instance's recognized type conflicts with the concept's type group.
std::vector<IsAPair> TypeCheckClean(const KnowledgeBase& kb, const TypeOracle& oracle,
                                    const std::vector<ConceptId>& scope);

/// PRDual-Rank [9] adapted to pairs/sentences (Table 3, "PRDual-Rank"):
/// precision scores propagate between extraction records ("patterns") and
/// the pairs they produce ("tuples"), seeded by frequent iteration-1 pairs.
/// Returns the per-pair score for live pairs under `scope`.
struct PrDualRankOptions {
  int iterations = 20;
  /// Iteration-1 support needed to be a precision seed.
  int seed_support = 5;
};
std::unordered_map<IsAPair, double, IsAPairHash> PrDualRankScores(
    const KnowledgeBase& kb, const std::vector<ConceptId>& scope,
    const PrDualRankOptions& options = {});

/// Random-walk ranking scores per live pair under `scope`, rescaled within
/// each concept by its instance count so one threshold can serve all
/// concepts (score 1.0 = the uniform-visit level).
std::unordered_map<IsAPair, double, IsAPairHash> RwRankScores(
    const KnowledgeBase& kb, const std::vector<ConceptId>& scope,
    RankModel model = RankModel::kRandomWalk);

/// Applies a removal threshold to a score map: pairs scoring strictly below
/// `threshold` are removed.
std::vector<IsAPair> ThresholdClean(
    const std::unordered_map<IsAPair, double, IsAPairHash>& scores,
    double threshold);

}  // namespace semdrift

#endif  // SEMDRIFT_BASELINES_CLEANERS_H_
