# Empty compiler generated dependencies file for semdrift_eval.
# This may be replaced when dependencies are built.
