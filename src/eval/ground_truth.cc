#include "eval/ground_truth.h"

namespace semdrift {

DpClass GroundTruth::DpLabelOf(const KnowledgeBase& kb, const IsAPair& pair) const {
  // Definition 2: a Drifting Point is an instance that *introduced* drifting
  // errors — some extraction it triggered produced an incorrect pair.
  bool triggered_error = false;
  for (uint32_t record_id : kb.LiveRecordsTriggeredBy(pair)) {
    const ExtractionRecord& record = kb.record(record_id);
    for (InstanceId produced : record.instances) {
      if (produced == pair.instance) continue;
      if (!PairCorrect(IsAPair{record.concept_id, produced})) {
        triggered_error = true;
        break;
      }
    }
    if (triggered_error) break;
  }
  bool correct = PairCorrect(pair);
  if (triggered_error) {
    // Definitions 3/4: Intentional when the pair itself is correct
    // (polyseme), Accidental when it is itself an error.
    return correct ? DpClass::kIntentionalDP : DpClass::kAccidentalDP;
  }
  if (correct) return DpClass::kNonDP;
  // A drifting error that triggered nothing: a *symptom*, not a cause. The
  // paper's labeled sample keeps these in the correct/error pair counts but
  // outside the DP/non-DP categories (Table 1: "animal" has 508 errors yet
  // only 256 Accidental DPs), so detection metrics exclude them; we signal
  // that with kUnlabeled.
  return DpClass::kUnlabeled;
}

GroundTruth::ConceptStats GroundTruth::StatsOf(const KnowledgeBase& kb,
                                               ConceptId c) const {
  ConceptStats stats;
  stats.concept_id = c;
  for (InstanceId e : kb.LiveInstancesOf(c)) {
    IsAPair pair{c, e};
    ++stats.instances;
    if (PairCorrect(pair)) {
      ++stats.correct;
    } else {
      ++stats.errors;
    }
    switch (DpLabelOf(kb, pair)) {
      case DpClass::kIntentionalDP:
        ++stats.intentional_dps;
        break;
      case DpClass::kAccidentalDP:
        ++stats.accidental_dps;
        break;
      case DpClass::kNonDP:
        ++stats.non_dps;
        break;
      case DpClass::kUnlabeled:
        break;
    }
  }
  return stats;
}

}  // namespace semdrift
