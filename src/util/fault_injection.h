#ifndef SEMDRIFT_UTIL_FAULT_INJECTION_H_
#define SEMDRIFT_UTIL_FAULT_INJECTION_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace semdrift {

/// Ways a persisted file can go wrong in the wild. Each kind models a real
/// failure the loaders must survive: a crash mid-write (truncation), disk or
/// transfer bit rot (byte flips), a buggy producer or concat (dropped /
/// duplicated lines), and encoding garbage leaking into text fields.
enum class FaultKind {
  /// Cut the content at a random byte offset (torn write).
  kTruncate,
  /// Flip 1–8 random bytes in place (bit rot).
  kFlipBytes,
  /// Remove one random line (lost record).
  kDropLine,
  /// Duplicate one random line (replayed record).
  kDuplicateLine,
  /// Replace one random line's bytes with non-UTF8 garbage.
  kGarbageLine,
  /// Splice random binary garbage into the middle of a random line
  /// (field-level corruption: numbers become junk, tabs disappear).
  kSpliceGarbage,
  /// Overwrite a random byte range with zeros, length preserved — the
  /// classic ext4 journal-replay artifact after a crash (delayed-allocation
  /// blocks come back as zero pages).
  kZeroFill,
  /// The rename of a temp file onto the final name never happened: the
  /// destination is empty. Models a publish that crashed between temp write
  /// and rename (the temp carcass is a separate file; the reader sees zero
  /// bytes under the real name).
  kTornRename,
  /// Keep a random prefix of whole lines and drop the rest, including the
  /// checksum footer — a delta publish torn on a clean line boundary, which
  /// only the framed-file `truncated` signal can catch (every surviving line
  /// parses).
  kPartialDeltaWrite,
};

/// Human-readable name, e.g. "truncate"; used in fuzz-load reports.
const char* FaultKindName(FaultKind kind);

/// All kinds, for sweeps.
std::vector<FaultKind> AllFaultKinds();

/// Deterministic, seeded corruption engine. Equal seeds produce equal
/// corruptions of equal inputs, so every fuzz failure is replayable from
/// its seed alone. Used by `semdrift fuzz-load` and the robustness tests to
/// prove the loaders never crash and degrade exactly as specified.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  /// Returns a corrupted copy of `content`. The original is untouched.
  /// Degenerate inputs (empty content) are returned unchanged.
  std::string Corrupt(const std::string& content, FaultKind kind);

  /// Picks a kind from the seeded stream, then corrupts.
  std::string CorruptRandom(const std::string& content, FaultKind* kind_out = nullptr);

  /// File-level convenience: reads `in_path`, corrupts, writes `out_path`.
  Status CorruptFile(const std::string& in_path, const std::string& out_path,
                     FaultKind kind);

 private:
  Rng rng_;
};

/// Pipeline stages the supervision layer guards (util/supervisor.h). Shared
/// with the compute-fault plan below so injected faults are keyed by
/// stage x concept x seed. Values are stable: they are persisted in
/// checkpoint health lines.
enum class PipelineStage {
  /// ScoreCache::Warm — one RWR graph build + walk per concept.
  kScoreWarm = 0,
  /// CollectTrainingData — per-concept feature extraction + seed labels.
  kCollectTraining,
  /// Detector training (a global stage, not per-concept).
  kDetectorTrain,
  /// Per-concept classification of live instances.
  kDetectorScore,
  /// Serving-snapshot generation load (SnapshotManager): read + materialize
  /// + validate a published full or delta file. Guarded so a transient read
  /// race (publisher mid-write) retries with backoff instead of quarantining
  /// a good publish.
  kSnapshotLoad,
};

/// Short stable name ("warm", "collect", "train", "score") used in health
/// reports, checkpoint lines and the CLI's --fault-stages flag.
const char* PipelineStageName(PipelineStage stage);
bool ParsePipelineStage(std::string_view name, PipelineStage* out);

/// Compute-fault flavors the supervisor can inject inside a guarded stage.
enum class ComputeFaultKind {
  /// The stage body throws.
  kThrow = 0,
  /// The stage body spins (polling cancellation) until its deadline fires.
  kStall,
  /// The stage emits NaN into its output, exercising output validation or
  /// the drop-instance-with-provenance path.
  kNanEmit,
};

const char* ComputeFaultKindName(ComputeFaultKind kind);
bool ParseComputeFaultKind(std::string_view name, ComputeFaultKind* out);
std::vector<ComputeFaultKind> AllComputeFaultKinds();

/// Seeded plan deciding which concepts suffer which compute fault at which
/// stage. Purely functional in (seed, stage, concept_id, attempt): the same
/// plan makes the same decisions at any thread count and on any resumed run,
/// which is what lets the quarantine tests demand *exactly* the planned
/// concepts fail.
struct ComputeFaultPlan {
  /// Sentinel "concept" for global (non-per-concept) stages like detector
  /// training.
  static constexpr uint32_t kGlobalScope = 0xfffffffeu;

  uint64_t seed = 0;
  /// Fraction of concepts faulted (hash-thresholded per concept). 0 = off.
  double rate = 0.0;
  /// Fault flavor per faulted concept is drawn from this set (seeded).
  std::vector<ComputeFaultKind> kinds = AllComputeFaultKinds();
  /// Stages where faults fire. Defaults to the first per-concept stage so a
  /// faulted concept is quarantined before any later stage sees it.
  std::vector<PipelineStage> stages = {PipelineStage::kScoreWarm};
  /// When > 0, a fault clears after this many failed attempts (a transient
  /// fault: attempt `transient_attempts` succeeds, exercising the retry
  /// path). 0 = the fault is persistent and retries exhaust.
  int transient_attempts = 0;

  bool enabled() const { return rate > 0.0; }

  /// Whether this plan faults `concept` at all (independent of stage).
  bool ConceptFaulted(uint32_t concept_id) const;

  /// The fault to inject for this (stage, concept_id, attempt), if any.
  std::optional<ComputeFaultKind> FaultFor(PipelineStage stage, uint32_t concept_id,
                                           int attempt) const;

  /// All faulted concepts among `universe`, in input order (test helper).
  std::vector<uint32_t> FaultedAmong(const std::vector<uint32_t>& universe) const;
};

/// Reads a whole regular file into a string. Shared by the injector, the
/// loaders' tests and the CLI. Hardened against partial loads: non-regular
/// files (directories, FIFOs, device nodes) are rejected, and a file whose
/// size changes between stat and read-completion (a concurrent writer — the
/// bytes are some interleaving, not any consistent version) fails with
/// kDataLoss rather than returning a silently-partial or torn view.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file, replacing it.
Status WriteStringToFile(const std::string& content, const std::string& path);

}  // namespace semdrift

#endif  // SEMDRIFT_UTIL_FAULT_INJECTION_H_
