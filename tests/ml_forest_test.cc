#include <gtest/gtest.h>

#include "ml/random_forest.h"
#include "util/rng.h"

namespace semdrift {
namespace {

/// Two-feature XOR-ish dataset a single linear cut cannot solve.
void MakeXorData(size_t n, Rng* rng, std::vector<std::vector<double>>* x,
                 std::vector<int>* y) {
  for (size_t i = 0; i < n; ++i) {
    double a = rng->NextDouble() < 0.5 ? 0.0 : 1.0;
    double b = rng->NextDouble() < 0.5 ? 0.0 : 1.0;
    x->push_back({a + 0.05 * rng->NextGaussian(), b + 0.05 * rng->NextGaussian()});
    y->push_back(static_cast<int>(a) ^ static_cast<int>(b));
  }
}

TEST(DecisionTreeTest, FitsPureLeafOnConstantLabels) {
  std::vector<std::vector<double>> x{{0.0}, {1.0}, {2.0}};
  std::vector<int> y{1, 1, 1};
  DecisionTree tree;
  Rng rng(1);
  tree.Fit(x, y, {0, 1, 2}, 2, RandomForestOptions{}, &rng);
  EXPECT_EQ(tree.num_nodes(), 1u);
  const auto& counts = tree.Leaf({0.5});
  EXPECT_EQ(counts[1], 3);
}

TEST(DecisionTreeTest, SplitsSimpleThreshold) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(i < 10 ? 0 : 1);
  }
  std::vector<size_t> all(20);
  for (size_t i = 0; i < 20; ++i) all[i] = i;
  DecisionTree tree;
  Rng rng(2);
  RandomForestOptions options;
  options.features_per_split = 1;
  tree.Fit(x, y, all, 2, options, &rng);
  EXPECT_GT(tree.num_nodes(), 1u);
  EXPECT_GT(tree.Leaf({3.0})[0], 0);
  EXPECT_EQ(tree.Leaf({3.0})[1], 0);
  EXPECT_GT(tree.Leaf({15.0})[1], 0);
}

TEST(RandomForestTest, LearnsXor) {
  Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeXorData(400, &rng, &x, &y);
  RandomForest forest;
  RandomForestOptions options;
  options.num_trees = 30;
  forest.Fit(x, y, 2, options);
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) correct += forest.Predict(x[i]) == y[i];
  EXPECT_GT(correct, static_cast<int>(0.95 * x.size()));
}

TEST(RandomForestTest, ThreeClasses) {
  Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 300; ++i) {
    int cls = i % 3;
    x.push_back({cls * 2.0 + 0.2 * rng.NextGaussian(),
                 -cls * 1.5 + 0.2 * rng.NextGaussian()});
    y.push_back(cls);
  }
  RandomForest forest;
  RandomForestOptions options;
  options.num_trees = 25;
  forest.Fit(x, y, 3, options);
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) correct += forest.Predict(x[i]) == y[i];
  EXPECT_GT(correct, 290);
  auto proba = forest.PredictProba({0.0, 0.0});
  EXPECT_EQ(proba.size(), 3u);
  double total = proba[0] + proba[1] + proba[2];
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(proba[0], proba[2]);
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  Rng rng(7);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeXorData(200, &rng, &x, &y);
  RandomForestOptions options;
  options.num_trees = 10;
  options.seed = 99;
  RandomForest a;
  a.Fit(x, y, 2, options);
  RandomForest b;
  b.Fit(x, y, 2, options);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.Predict(x[i]), b.Predict(x[i]));
    EXPECT_EQ(a.PredictProba(x[i]), b.PredictProba(x[i]));
  }
}

TEST(RandomForestTest, MinSamplesLeafLimitsDepth) {
  Rng rng(9);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeXorData(100, &rng, &x, &y);
  RandomForestOptions coarse;
  coarse.num_trees = 1;
  coarse.min_samples_leaf = 50;
  RandomForest forest;
  forest.Fit(x, y, 2, coarse);
  // With leaves of >= 50 samples, a 100-sample tree has at most 3 nodes.
  EXPECT_EQ(forest.num_trees(), 1u);
}

TEST(RandomForestTest, MaxDepthZeroGivesStumps) {
  Rng rng(11);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeXorData(60, &rng, &x, &y);
  RandomForestOptions options;
  options.num_trees = 5;
  options.max_depth = 0;
  RandomForest forest;
  forest.Fit(x, y, 2, options);
  // Depth-0 trees are single leaves: prediction equals the majority class.
  auto proba = forest.PredictProba({0.0, 0.0});
  EXPECT_NEAR(proba[0] + proba[1], 1.0, 1e-9);
}

}  // namespace
}  // namespace semdrift
