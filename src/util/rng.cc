#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace semdrift {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.size() - 1;
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n > 0);
  pmf_.resize(n);
  cdf_.resize(n);
  double norm = 0.0;
  for (size_t r = 0; r < n; ++r) {
    pmf_[r] = 1.0 / std::pow(static_cast<double>(r + 1), s);
    norm += pmf_[r];
  }
  double acc = 0.0;
  for (size_t r = 0; r < n; ++r) {
    pmf_[r] /= norm;
    acc += pmf_[r];
    cdf_[r] = acc;
  }
  cdf_.back() = 1.0;  // Guard against floating-point undershoot.
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t rank) const {
  assert(rank < pmf_.size());
  return pmf_[rank];
}

}  // namespace semdrift
