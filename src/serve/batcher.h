#ifndef SEMDRIFT_SERVE_BATCHER_H_
#define SEMDRIFT_SERVE_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "serve/query_engine.h"

namespace semdrift {

struct BatcherOptions {
  /// Dispatch as soon as this many requests are queued.
  size_t max_batch = 64;
  /// ... or when the oldest queued request has waited this long.
  int max_wait_ms = 1;
  /// Deadline applied to requests submitted without an explicit one;
  /// <= 0 means no deadline. Covers queue wait plus execution.
  int default_deadline_ms = 1000;
  /// Start with dispatch paused (tests use this to force coalescing
  /// deterministically: queue N requests, then Resume()).
  bool start_paused = false;
  /// Admission control: when > 0 and the observed p99 queue wait crosses
  /// this budget, low-priority requests are shed with an OVERLOADED
  /// response instead of queueing to death. Engagement is a two-level
  /// ladder with hysteresis: level 1 (shed kLow) engages at budget/2,
  /// level 2 (shed kLow+kNormal) at the full budget; each level disengages
  /// only after p99 falls below half its engage threshold. <= 0 disables
  /// shedding entirely.
  int deadline_budget_ms = 0;
  /// Sliding window over which the queue-wait p99 is computed.
  int overload_window_ms = 1000;
  /// Cap on retained wait samples (bounds Submit-side work).
  size_t overload_window_samples = 512;
};

/// Caller-declared importance of a request; shedding consumes priorities
/// from the bottom. kHigh is never shed (health probes, admin commands).
enum class RequestPriority {
  kLow = 0,
  kNormal = 1,
  kHigh = 2,
};

/// Counters for the dispatch loop (all monotone except overload_level;
/// read with Snapshot()).
struct BatcherStats {
  uint64_t requests = 0;
  uint64_t batches = 0;
  uint64_t max_batch = 0;
  uint64_t deadline_expired = 0;
  /// Requests refused with OVERLOADED.
  uint64_t shed = 0;
  /// 0 -> overloaded transitions (how often shedding engaged).
  uint64_t overload_engaged = 0;
  /// Current shedding level (0 = accepting everything).
  int overload_level = 0;
};

/// Coalesces submitted query lines into batches and executes each batch on
/// the global thread pool via the ordered ParallelMap, completing every
/// request's future with the engine's response. Because QueryEngine answers
/// are deterministic, batched/concurrent execution is bit-identical to
/// feeding the same lines to the engine serially.
///
/// Deadlines reuse util/cancellation: each request carries an absolute
/// deadline; a request whose deadline passes while queued is answered
/// `ERR deadline exceeded` without executing, and during execution the
/// remaining budget is armed on a CancellationToken installed for the
/// worker (so future long-running query kinds can poll it).
class Batcher {
 public:
  /// `engine` must outlive the batcher. Equivalent to an EngineSource that
  /// always returns this engine (single-snapshot serving).
  explicit Batcher(QueryEngine* engine, BatcherOptions options = {});
  /// Hot-swap serving: `source` is resolved once per batch, so every request
  /// in a batch is answered by one consistent generation and the returned
  /// keepalive pins that generation until the batch completes.
  explicit Batcher(EngineSource source, BatcherOptions options = {});
  /// Drains the queue (dispatching anything still pending), then stops.
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Enqueues one request line; the future yields the response line.
  std::future<std::string> Submit(std::string line);
  /// Same with an explicit deadline (<= 0: none) overriding the default.
  std::future<std::string> Submit(std::string line, int deadline_ms);
  /// Full form: explicit deadline and priority. Under overload the request
  /// may resolve immediately to "OVERLOADED\t..." without executing.
  std::future<std::string> Submit(std::string line, int deadline_ms,
                                  RequestPriority priority);

  /// Completion-callback form (the network tier's path — no future/promise
  /// allocation, no blocking get()). `done` is invoked with the response
  /// exactly once: from a pool worker normally, or synchronously on the
  /// calling thread when the request is shed or the batcher is stopping —
  /// so it must not block and must not re-enter the batcher.
  /// `record_stats == false` answers without recording ServeStats or verb
  /// metrics (shadow scatter-gather legs, counted once at the primary).
  void SubmitCallback(std::string line, int deadline_ms, RequestPriority priority,
                      std::function<void(std::string)> done,
                      bool record_stats = true);

  /// Holds dispatch so queued requests coalesce; Resume() releases them.
  void Pause();
  void Resume();

  BatcherStats Snapshot() const;

 private:
  struct Request {
    std::string line;
    std::promise<std::string> promise;
    /// When set, completion goes through the callback and the promise is
    /// never touched (SubmitCallback path).
    std::function<void(std::string)> callback;
    bool record_stats = true;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    /// When Submit() queued the request; feeds the batch.queue_wait_ns
    /// histogram at dispatch time.
    std::chrono::steady_clock::time_point submitted{};
  };

  /// Resolves a request through its callback or promise.
  static void Finish(Request* req, std::string response);
  /// Shared enqueue/shed/stopping logic behind both Submit forms.
  void SubmitRequest(Request req, int deadline_ms, RequestPriority priority);

  void DispatchLoop();
  /// Runs one batch on the pool and completes its promises.
  void RunBatch(std::deque<Request>* batch);
  /// Prunes the wait-sample window and walks the shedding ladder (engage
  /// fast, disengage hysteretically). Requires mu_.
  void RefreshOverloadLocked(std::chrono::steady_clock::time_point now);
  /// p99 over the retained window in ns; 0 when empty. Requires mu_.
  uint64_t QueueWaitP99Locked() const;

  EngineSource source_;
  BatcherOptions options_;

  mutable std::mutex mu_;
  std::condition_variable wake_;
  std::deque<Request> queue_;
  bool paused_ = false;
  bool stopping_ = false;
  BatcherStats stats_;
  /// (dispatch time, queue wait ns) per dispatched request, pruned by age
  /// and count. Shed requests contribute nothing, which is what lets p99
  /// fall back down while shedding protects the queue.
  std::deque<std::pair<std::chrono::steady_clock::time_point, uint64_t>>
      wait_samples_;
  std::thread dispatcher_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_SERVE_BATCHER_H_
