#ifndef SEMDRIFT_EXTRACT_HEARST_PARSER_H_
#define SEMDRIFT_EXTRACT_HEARST_PARSER_H_

#include <optional>
#include <string_view>

#include "text/sentence.h"
#include "text/vocab.h"

namespace semdrift {

/// Parses raw text against the Hearst "such as" pattern, producing the
/// candidate analysis s := {Cs, Es} of Sec. 2.1.
///
/// Concepts are a closed class: the candidate-concept scan greedily matches
/// the longest pluralized concept term (up to four words) to the left of the
/// "such as" anchor, in surface order — so the *last* candidate is the one
/// syntactically adjacent to the pattern. Instances are an open class: list
/// items to the right of the anchor are interned into the parser's instance
/// lexicon, so previously unseen instances get fresh ids (that is the point
/// of extraction). Seeding the lexicon from a World's instance vocabulary
/// keeps ids aligned with ground truth.
class HearstParser {
 public:
  /// `concept_lexicon` is borrowed read-only and must outlive the parser;
  /// `instance_lexicon` is copied and extended by parsing.
  HearstParser(const Vocab* concept_lexicon, Vocab instance_lexicon);

  /// Parses one sentence. Returns nullopt when the text does not match the
  /// pattern (no "such as", no candidate concept, or an empty list).
  /// The returned sentence has an unassigned id (SentenceStore assigns it).
  std::optional<Sentence> Parse(std::string_view text);

  const Vocab& instance_lexicon() const { return instance_lexicon_; }

 private:
  const Vocab* concept_lexicon_;
  Vocab instance_lexicon_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_EXTRACT_HEARST_PARSER_H_
