# Empty compiler generated dependencies file for animal_drift.
# This may be replaced when dependencies are built.
