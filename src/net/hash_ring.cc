#include "net/hash_ring.h"

#include <algorithm>

namespace semdrift {

namespace {

/// splitmix64 finalizer: cheap, well-mixed, and stable across platforms.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t HashRing::HashKey(std::string_view key) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis.
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ull;  // FNV-1a prime.
  }
  // Finalize: FNV alone clusters short keys in the low bits.
  return Mix64(h);
}

HashRing::HashRing(uint32_t num_shards, uint32_t vnodes_per_shard)
    : num_shards_(num_shards == 0 ? 1 : num_shards) {
  if (vnodes_per_shard == 0) vnodes_per_shard = 1;
  points_.reserve(static_cast<size_t>(num_shards_) * vnodes_per_shard);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    for (uint32_t v = 0; v < vnodes_per_shard; ++v) {
      const uint64_t position =
          Mix64((static_cast<uint64_t>(s) << 32) | (v + 1));
      points_.push_back(Point{position, s});
    }
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    if (a.position != b.position) return a.position < b.position;
    return a.shard < b.shard;  // Deterministic on (vanishingly rare) collisions.
  });
}

uint32_t HashRing::OwnerOf(std::string_view key) const {
  const uint64_t h = HashKey(key);
  auto it = std::upper_bound(
      points_.begin(), points_.end(), h,
      [](uint64_t value, const Point& p) { return value < p.position; });
  if (it == points_.end()) it = points_.begin();  // Wrap around the ring.
  return it->shard;
}

}  // namespace semdrift
