#include "ml/multitask.h"

#include <cassert>
#include <cmath>

namespace semdrift {

namespace {

/// Xl^T Xl (r x r) for a task.
Matrix GramOfLabeled(const LearningTask& task) {
  return task.xl.Transpose().Multiply(task.xl);
}

/// Xl^T Y (r x outputs) for a task.
Matrix CrossOfLabeled(const LearningTask& task) {
  return task.xl.Transpose().Multiply(task.y);
}

/// ||Xl Wc - Y||_F^2.
double FitLoss(const LearningTask& task, const Matrix& wc) {
  Matrix pred = task.xl.Multiply(wc);
  return pred.Sub(task.y).FrobeniusNormSq();
}

/// Tr(Wc^T A Wc).
double ManifoldTerm(const Matrix& a, const Matrix& wc) {
  return wc.Transpose().Multiply(a.Multiply(wc)).Trace();
}

/// ||w_i|| for every shared-structure column i: w_i stacks row i of every
/// task's Wc (W = [W1; ...; Wt]^T in the paper, w_i its i-th column).
std::vector<double> SharedColumnNorms(const std::vector<Matrix>& w) {
  size_t r = w.empty() ? 0 : w[0].rows();
  std::vector<double> norms(r, 0.0);
  for (const Matrix& wc : w) {
    for (size_t i = 0; i < r; ++i) {
      for (size_t o = 0; o < wc.cols(); ++o) norms[i] += wc(i, o) * wc(i, o);
    }
  }
  for (double& v : norms) v = std::sqrt(v);
  return norms;
}

}  // namespace

Matrix TrainSemiSupervised(const LearningTask& task, const Matrix& a,
                           const MultiTaskOptions& options) {
  size_t r = a.rows();
  assert(task.xl.cols() == r);
  Matrix lhs = GramOfLabeled(task);
  lhs.AddInPlace(a, options.lambda);
  lhs.AddDiagonal(options.lambda * options.beta);
  Matrix rhs = CrossOfLabeled(task);
  Matrix wc;
  bool ok = CholeskySolveMatrix(lhs, rhs, &wc);
  assert(ok && "Eq. 15 system must be positive definite");
  (void)ok;
  return wc;
}

Matrix TrainRidge(const LearningTask& task, const MultiTaskOptions& options) {
  Matrix lhs = GramOfLabeled(task);
  lhs.AddDiagonal(std::max(options.lambda * options.beta, 1e-8));
  Matrix rhs = CrossOfLabeled(task);
  Matrix wc;
  bool ok = CholeskySolveMatrix(lhs, rhs, &wc);
  assert(ok);
  (void)ok;
  return wc;
}

double MultiTaskObjective(const std::vector<LearningTask>& tasks, const Matrix& a,
                          const std::vector<Matrix>& w,
                          const MultiTaskOptions& options) {
  double objective = 0.0;
  double frobenius = 0.0;
  for (size_t c = 0; c < tasks.size(); ++c) {
    objective += FitLoss(tasks[c], w[c]);
    objective += options.lambda * ManifoldTerm(a, w[c]);
    frobenius += w[c].FrobeniusNormSq();
  }
  double l21 = 0.0;
  for (double norm : SharedColumnNorms(w)) l21 += norm;
  objective += options.lambda * options.beta * l21;
  objective += options.lambda * options.gamma * frobenius;
  return objective;
}

MultiTaskResult TrainMultiTask(const std::vector<LearningTask>& tasks,
                               const Matrix& a, const MultiTaskOptions& options) {
  assert(!tasks.empty());
  size_t r = a.rows();
  size_t outputs = tasks[0].y.cols();

  MultiTaskResult result;
  Rng rng(options.seed);
  result.w.reserve(tasks.size());
  for (const LearningTask& task : tasks) {
    assert(task.xl.cols() == r && task.y.cols() == outputs);
    (void)task;
    Matrix wc(r, outputs);
    for (size_t i = 0; i < r; ++i) {
      for (size_t o = 0; o < outputs; ++o) wc(i, o) = 0.01 * rng.NextGaussian();
    }
    result.w.push_back(std::move(wc));
  }

  // Precompute per-task constants.
  std::vector<Matrix> grams, crosses;
  grams.reserve(tasks.size());
  crosses.reserve(tasks.size());
  for (const LearningTask& task : tasks) {
    grams.push_back(GramOfLabeled(task));
    crosses.push_back(CrossOfLabeled(task));
  }

  double previous = MultiTaskObjective(tasks, a, result.w, options);
  result.objective_trace.push_back(previous);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // D_ii = 1 / (2 ||w_i||), shared across tasks.
    std::vector<double> norms = SharedColumnNorms(result.w);
    // Wc = (Xl Xl^T + lambda A + lambda beta D + lambda gamma I)^(-1) Xl Yc
    // (Eq. 20; our orientation uses Xl^T Xl etc., rows = samples).
    for (size_t c = 0; c < tasks.size(); ++c) {
      Matrix lhs = grams[c];
      lhs.AddInPlace(a, options.lambda);
      for (size_t i = 0; i < r; ++i) {
        double d_ii = 1.0 / (2.0 * std::max(norms[i], options.norm_floor));
        lhs(i, i) += options.lambda * options.beta * d_ii;
      }
      lhs.AddDiagonal(options.lambda * options.gamma);
      Matrix wc;
      bool ok = CholeskySolveMatrix(lhs, crosses[c], &wc);
      assert(ok && "Eq. 20 system must be positive definite");
      (void)ok;
      result.w[c] = std::move(wc);
    }
    double objective = MultiTaskObjective(tasks, a, result.w, options);
    result.objective_trace.push_back(objective);
    if (previous - objective < options.tolerance * std::abs(previous)) break;
    previous = objective;
  }
  return result;
}

int PredictClass(const Matrix& wc, const std::vector<double>& x) {
  assert(x.size() == wc.rows());
  int best = 0;
  double best_score = -1e300;
  for (size_t o = 0; o < wc.cols(); ++o) {
    double score = 0.0;
    for (size_t i = 0; i < wc.rows(); ++i) score += wc(i, o) * x[i];
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(o);
    }
  }
  return best;
}

}  // namespace semdrift
