#include "ml/random_forest.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/thread_pool.h"

namespace semdrift {

namespace {

double GiniFromCounts(const std::vector<int>& counts, int total) {
  if (total == 0) return 0.0;
  double impurity = 1.0;
  for (int c : counts) {
    double p = static_cast<double>(c) / total;
    impurity -= p * p;
  }
  return impurity;
}

}  // namespace

int32_t DecisionTree::Grow(const std::vector<std::vector<double>>& x,
                           const std::vector<int>& y, std::vector<size_t>& indices,
                           size_t begin, size_t end, int depth, int num_classes,
                           const RandomForestOptions& options, Rng* rng) {
  int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();

  std::vector<int> counts(num_classes, 0);
  for (size_t i = begin; i < end; ++i) ++counts[y[indices[i]]];
  int total = static_cast<int>(end - begin);
  bool pure = std::count(counts.begin(), counts.end(), 0) >=
              static_cast<long>(counts.size()) - 1;

  if (pure || depth >= options.max_depth ||
      total < 2 * options.min_samples_leaf) {
    nodes_[node_id].counts = std::move(counts);
    return node_id;
  }

  size_t d = x[0].size();
  int features_per_split = options.features_per_split > 0
                               ? options.features_per_split
                               : static_cast<int>(std::ceil(std::sqrt(d)));

  // Pick the best (feature, threshold) among a random feature subset.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_score = GiniFromCounts(counts, total) - 1e-12;
  std::vector<size_t> features(d);
  for (size_t f = 0; f < d; ++f) features[f] = f;
  rng->Shuffle(&features);
  features.resize(std::min<size_t>(features_per_split, d));

  std::vector<std::pair<double, int>> column;  // (value, label)
  for (size_t f : features) {
    column.clear();
    column.reserve(total);
    for (size_t i = begin; i < end; ++i) {
      column.emplace_back(x[indices[i]][f], y[indices[i]]);
    }
    std::sort(column.begin(), column.end());
    std::vector<int> left_counts(num_classes, 0);
    std::vector<int> right_counts = counts;
    for (int i = 0; i + 1 < total; ++i) {
      int label = column[i].second;
      ++left_counts[label];
      --right_counts[label];
      if (column[i].first == column[i + 1].first) continue;
      int left_total = i + 1;
      int right_total = total - left_total;
      if (left_total < options.min_samples_leaf ||
          right_total < options.min_samples_leaf) {
        continue;
      }
      double score =
          (left_total * GiniFromCounts(left_counts, left_total) +
           right_total * GiniFromCounts(right_counts, right_total)) /
          total;
      if (score < best_score) {
        best_score = score;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (column[i].first + column[i + 1].first);
      }
    }
  }

  if (best_feature < 0) {
    nodes_[node_id].counts = std::move(counts);
    return node_id;
  }

  // Partition [begin, end) in place.
  size_t mid = begin;
  for (size_t i = begin; i < end; ++i) {
    if (x[indices[i]][best_feature] <= best_threshold) {
      std::swap(indices[i], indices[mid]);
      ++mid;
    }
  }
  if (mid == begin || mid == end) {  // Numerical edge: no real split.
    nodes_[node_id].counts = std::move(counts);
    return node_id;
  }

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  int32_t left =
      Grow(x, y, indices, begin, mid, depth + 1, num_classes, options, rng);
  int32_t right = Grow(x, y, indices, mid, end, depth + 1, num_classes, options, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

void DecisionTree::Fit(const std::vector<std::vector<double>>& x,
                       const std::vector<int>& y, const std::vector<size_t>& indices,
                       int num_classes, const RandomForestOptions& options, Rng* rng) {
  nodes_.clear();
  std::vector<size_t> working = indices;
  Grow(x, y, working, 0, working.size(), 0, num_classes, options, rng);
}

const std::vector<int>& DecisionTree::Leaf(const std::vector<double>& point) const {
  int32_t node = 0;
  for (;;) {
    const Node& n = nodes_[node];
    if (n.feature < 0) return n.counts;
    node = point[n.feature] <= n.threshold ? n.left : n.right;
  }
}

void RandomForest::Fit(const std::vector<std::vector<double>>& x,
                       const std::vector<int>& y, int num_classes,
                       const RandomForestOptions& options) {
  assert(!x.empty() && x.size() == y.size());
  num_classes_ = num_classes;
  trees_.assign(options.num_trees, DecisionTree());
  std::vector<std::vector<size_t>> by_class(num_classes);
  std::vector<int> present;
  if (options.balance_classes) {
    for (size_t i = 0; i < y.size(); ++i) by_class[y[i]].push_back(i);
    for (int k = 0; k < num_classes; ++k) {
      if (!by_class[k].empty()) present.push_back(k);
    }
  }
  // Each tree draws its bootstrap and grows from its own seeded RNG stream
  // (TaskSeed(seed, t)), so trees are independent and the trained forest is
  // bit-identical whether trees are grown serially or across the pool.
  ParallelFor(trees_.size(), [&](size_t t) {
    Rng rng(TaskSeed(options.seed, t));
    std::vector<size_t> bootstrap(x.size());
    if (options.balance_classes) {
      // Equal-probability class draw, then a uniform member of that class.
      for (size_t i = 0; i < x.size(); ++i) {
        const auto& rows = by_class[present[rng.NextBounded(present.size())]];
        bootstrap[i] = rows[rng.NextBounded(rows.size())];
      }
    } else {
      for (size_t i = 0; i < x.size(); ++i) {
        bootstrap[i] = static_cast<size_t>(rng.NextBounded(x.size()));
      }
    }
    trees_[t].Fit(x, y, bootstrap, num_classes, options, &rng);
  });
}

std::vector<double> RandomForest::PredictProba(const std::vector<double>& point) const {
  std::vector<double> proba(num_classes_, 0.0);
  for (const auto& tree : trees_) {
    const std::vector<int>& counts = tree.Leaf(point);
    int total = 0;
    for (int c : counts) total += c;
    if (total == 0) continue;
    for (int k = 0; k < num_classes_; ++k) {
      proba[k] += static_cast<double>(counts[k]) / total;
    }
  }
  double norm = 0.0;
  for (double p : proba) norm += p;
  if (norm > 0.0) {
    for (double& p : proba) p /= norm;
  }
  return proba;
}

int RandomForest::Predict(const std::vector<double>& point) const {
  std::vector<double> proba = PredictProba(point);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) -
                          proba.begin());
}

}  // namespace semdrift
