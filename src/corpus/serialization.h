#ifndef SEMDRIFT_CORPUS_SERIALIZATION_H_
#define SEMDRIFT_CORPUS_SERIALIZATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "corpus/world.h"
#include "kb/knowledge_base.h"
#include "util/status.h"

namespace semdrift {

/// Persistence for worlds, corpora and extracted taxonomies, in simple
/// line-oriented text formats (one record per line, tab-separated, with a
/// leading record-type tag). Formats are versioned by a header line and are
/// deliberately human-greppable — the database-engineering idiom of
/// debuggable on-disk state.
///
/// Fault tolerance (format v2): every file ends with a `#crc32  <hex>`
/// footer checksumming all preceding bytes, so truncation, bit rot and torn
/// writes are detected at load time instead of silently producing a wrong
/// world. v1 files (no footer) still load for backward compatibility.
/// Loaders never crash on corrupt input: in *strict* mode the first problem
/// fails the load with a precise Status (kDataLoss for truncation/checksum
/// damage, kInvalidArgument for malformed records); in *lenient* mode
/// malformed lines are counted, skipped and reported via LoadReport.

/// Load-time error handling policy.
struct LoadOptions {
  enum class Mode {
    /// First malformed line / failed checksum fails the whole load.
    kStrict,
    /// Malformed lines are skipped and recorded in the LoadReport; a bad or
    /// missing checksum is recorded but does not fail the load.
    kLenient,
  };
  Mode mode = Mode::kStrict;
};

/// What happened during a load: how many payload lines were seen, which
/// were skipped and why, and whether the integrity footer checked out.
/// In lenient mode every corrupted line is accounted for here; `lines_seen
/// == lines_loaded + skipped.size()` always holds.
struct LoadReport {
  /// Format version parsed from the header (1 or 2).
  int format_version = 0;
  /// Payload lines seen (header, footer and blank lines excluded).
  size_t lines_seen = 0;
  /// Payload lines successfully applied.
  size_t lines_loaded = 0;
  struct SkippedLine {
    size_t line_number;  // 1-based, header included in the numbering.
    std::string reason;
  };
  std::vector<SkippedLine> skipped;
  /// A `#crc32` footer was present.
  bool checksum_present = false;
  /// The footer was present and matched the bytes read.
  bool checksum_ok = false;
  /// The file ended without a footer although the version requires one
  /// (the signature of a torn write).
  bool truncated = false;
};

/// Writes a world: concepts, instances, memberships (with weights and
/// verified flags), confusables, twins and polysemes. v2 format with a
/// CRC32 integrity footer.
Status SaveWorld(const World& world, const std::string& path);

/// Reads a world written by SaveWorld. Ids are re-assigned densely but the
/// name<->structure mapping round-trips exactly. The default overload loads
/// strictly; pass LoadOptions for lenient mode, and a LoadReport to observe
/// skipped lines and checksum state.
Result<World> LoadWorld(const std::string& path);
Result<World> LoadWorld(const std::string& path, const LoadOptions& options,
                        LoadReport* report = nullptr);

/// Writes a corpus: per sentence the candidate concepts, candidate
/// instances (by name, resolved against `world`), the generator truth, and
/// the surface text when present. v2 format with a CRC32 integrity footer.
Status SaveCorpus(const World& world, const Corpus& corpus, const std::string& path);

/// Reads a corpus written by SaveCorpus, resolving names against `world`.
Result<Corpus> LoadCorpus(const World& world, const std::string& path);
Result<Corpus> LoadCorpus(const World& world, const std::string& path,
                          const LoadOptions& options, LoadReport* report = nullptr);

/// Exports the live pairs of a knowledge base as a taxonomy TSV:
///   concept <tab> instance <tab> support_count <tab> iter1_count
/// Names resolve through `world`; instances unknown to the world (open-class
/// discoveries) are skipped unless `instance_names` is provided.
Status ExportTaxonomyTsv(const KnowledgeBase& kb, const World& world,
                         const std::string& path);

}  // namespace semdrift

#endif  // SEMDRIFT_CORPUS_SERIALIZATION_H_
