#include "net/net_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/line_channel.h"

namespace semdrift {

LineClient::~LineClient() { Close(); }

LineClient::LineClient(LineClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void LineClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Result<LineClient> LineClient::Connect(const std::string& endpoint) {
  ListenAddress addr;
  std::string parse_error;
  if (!ParseListenAddress(endpoint, &addr, &parse_error)) {
    return Status::InvalidArgument(parse_error);
  }
  int fd;
  if (addr.is_unix) {
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    if (addr.path.size() >= sizeof(sun.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " + addr.path);
    }
    std::memcpy(sun.sun_path, addr.path.c_str(), addr.path.size() + 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      return Status::IOError("socket: " + std::string(std::strerror(errno)));
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) < 0) {
      Status st = Status::IOError("connect " + addr.path + ": " +
                                  std::string(std::strerror(errno)));
      ::close(fd);
      return st;
    }
  } else {
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(addr.port);
    const std::string host = addr.host == "localhost" ? "127.0.0.1" : addr.host;
    if (::inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1) {
      return Status::InvalidArgument("cannot parse IPv4 address: " + addr.host);
    }
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      return Status::IOError("socket: " + std::string(std::strerror(errno)));
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) < 0) {
      Status st = Status::IOError("connect " + endpoint + ": " +
                                  std::string(std::strerror(errno)));
      ::close(fd);
      return st;
    }
  }
  LineClient client;
  client.fd_ = fd;
  return client;
}

Status LineClient::SendLine(const std::string& line) {
  return SendRaw(line + "\n");
}

Status LineClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("send: " + std::string(std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status LineClient::ShutdownWrite() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  if (::shutdown(fd_, SHUT_WR) != 0) {
    return Status::IOError("shutdown: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Result<std::string> LineClient::ReadLine() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  for (;;) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::IOError("connection closed by server");
    }
    if (errno == EINTR) continue;
    return Status::IOError("recv: " + std::string(std::strerror(errno)));
  }
}

Result<std::string> LineClient::RoundTrip(const std::string& line) {
  Status sent = SendLine(line);
  if (!sent.ok()) return sent;
  return ReadLine();
}

}  // namespace semdrift
