#include <gtest/gtest.h>

#include <algorithm>

#include "kb/knowledge_base.h"
#include "util/rng.h"

namespace semdrift {
namespace {

ConceptId C(uint32_t v) { return ConceptId(v); }
InstanceId E(uint32_t v) { return InstanceId(v); }
SentenceId S(uint32_t v) { return SentenceId(v); }

TEST(KnowledgeBaseTest, ApplyCreatesPairsWithCounts) {
  KnowledgeBase kb;
  kb.ApplyExtraction(S(0), C(0), {E(1), E(2)}, {}, 1);
  kb.ApplyExtraction(S(1), C(0), {E(1)}, {}, 1);
  EXPECT_EQ(kb.Count(IsAPair{C(0), E(1)}), 2);
  EXPECT_EQ(kb.Count(IsAPair{C(0), E(2)}), 1);
  EXPECT_EQ(kb.Count(IsAPair{C(0), E(3)}), 0);
  EXPECT_EQ(kb.num_live_pairs(), 2u);
  EXPECT_EQ(kb.num_records(), 2u);
}

TEST(KnowledgeBaseTest, Iter1CountTracksFirstIterationOnly) {
  KnowledgeBase kb;
  kb.ApplyExtraction(S(0), C(0), {E(1)}, {}, 1);
  kb.ApplyExtraction(S(1), C(0), {E(1)}, {E(1)}, 2);
  IsAPair pair{C(0), E(1)};
  EXPECT_EQ(kb.Count(pair), 2);
  EXPECT_EQ(kb.Iter1Count(pair), 1);
  EXPECT_EQ(kb.FirstIteration(pair), 1);
}

TEST(KnowledgeBaseTest, FirstIterationOfLatePair) {
  KnowledgeBase kb;
  kb.ApplyExtraction(S(0), C(0), {E(1)}, {}, 1);
  kb.ApplyExtraction(S(1), C(0), {E(2)}, {E(1)}, 3);
  EXPECT_EQ(kb.FirstIteration(IsAPair{C(0), E(2)}), 3);
  EXPECT_EQ(kb.FirstIteration(IsAPair{C(0), E(9)}), -1);
}

TEST(KnowledgeBaseTest, LiveInstancesAndIter1Instances) {
  KnowledgeBase kb;
  kb.ApplyExtraction(S(0), C(0), {E(1), E(2)}, {}, 1);
  kb.ApplyExtraction(S(1), C(0), {E(3)}, {E(1)}, 2);
  auto live = kb.LiveInstancesOf(C(0));
  EXPECT_EQ(live.size(), 3u);
  auto core = kb.Iter1InstancesOf(C(0));
  EXPECT_EQ(core.size(), 2u);
}

TEST(KnowledgeBaseTest, TriggerProvenance) {
  KnowledgeBase kb;
  kb.ApplyExtraction(S(0), C(0), {E(1)}, {}, 1);
  uint32_t triggered =
      kb.ApplyExtraction(S(1), C(0), {E(2), E(3)}, {E(1)}, 2);
  auto records = kb.LiveRecordsTriggeredBy(IsAPair{C(0), E(1)});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], triggered);
  auto sub = kb.SubInstancesOf(IsAPair{C(0), E(1)});
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub[E(2)], 1);
  EXPECT_EQ(sub[E(3)], 1);
}

TEST(KnowledgeBaseTest, SubInstancesExcludeSelf) {
  KnowledgeBase kb;
  kb.ApplyExtraction(S(0), C(0), {E(1)}, {}, 1);
  kb.ApplyExtraction(S(1), C(0), {E(1), E(2)}, {E(1)}, 2);
  auto sub = kb.SubInstancesOf(IsAPair{C(0), E(1)});
  EXPECT_EQ(sub.count(E(1)), 0u);
  EXPECT_EQ(sub.count(E(2)), 1u);
}

TEST(KnowledgeBaseTest, RollbackDecrementsAndRemoves) {
  KnowledgeBase kb;
  uint32_t r0 = kb.ApplyExtraction(S(0), C(0), {E(1), E(2)}, {}, 1);
  kb.ApplyExtraction(S(1), C(0), {E(1)}, {}, 1);
  int rolled = kb.RollbackRecord(r0, CascadePolicy::kAllTriggersDead);
  EXPECT_EQ(rolled, 1);
  EXPECT_EQ(kb.Count(IsAPair{C(0), E(1)}), 1);   // Still supported by r1.
  EXPECT_EQ(kb.Count(IsAPair{C(0), E(2)}), 0);   // Dead.
  EXPECT_EQ(kb.num_live_pairs(), 1u);
  EXPECT_TRUE(kb.record(r0).rolled_back);
}

TEST(KnowledgeBaseTest, RollbackIsIdempotent) {
  KnowledgeBase kb;
  uint32_t r0 = kb.ApplyExtraction(S(0), C(0), {E(1)}, {}, 1);
  EXPECT_EQ(kb.RollbackRecord(r0, CascadePolicy::kAllTriggersDead), 1);
  EXPECT_EQ(kb.RollbackRecord(r0, CascadePolicy::kAllTriggersDead), 0);
  EXPECT_EQ(kb.Count(IsAPair{C(0), E(1)}), 0);
}

TEST(KnowledgeBaseTest, CascadeAllTriggersDead) {
  KnowledgeBase kb;
  // e1 supports a chain: e1 triggers (e2), e2 triggers (e3).
  uint32_t root = kb.ApplyExtraction(S(0), C(0), {E(1)}, {}, 1);
  kb.ApplyExtraction(S(1), C(0), {E(2)}, {E(1)}, 2);
  kb.ApplyExtraction(S(2), C(0), {E(3)}, {E(2)}, 3);
  int rolled = kb.RollbackRecord(root, CascadePolicy::kAllTriggersDead);
  // Root + both dependents must fall: their sole triggers died.
  EXPECT_EQ(rolled, 3);
  EXPECT_EQ(kb.num_live_pairs(), 0u);
}

TEST(KnowledgeBaseTest, CascadeStopsWhenAnotherTriggerAlive) {
  KnowledgeBase kb;
  kb.ApplyExtraction(S(0), C(0), {E(1)}, {}, 1);
  uint32_t other = kb.ApplyExtraction(S(1), C(0), {E(4)}, {}, 1);
  (void)other;
  // Dependent triggered by BOTH e1 and e4.
  kb.ApplyExtraction(S(2), C(0), {E(2)}, {E(1), E(4)}, 2);
  int rolled = kb.RemovePair(IsAPair{C(0), E(1)}, CascadePolicy::kAllTriggersDead);
  EXPECT_EQ(rolled, 1);  // Only the producer of e1; dependent survives via e4.
  EXPECT_EQ(kb.Count(IsAPair{C(0), E(2)}), 1);
}

TEST(KnowledgeBaseTest, CascadeAnyTriggerDeadIsAggressive) {
  KnowledgeBase kb;
  kb.ApplyExtraction(S(0), C(0), {E(1)}, {}, 1);
  kb.ApplyExtraction(S(1), C(0), {E(4)}, {}, 1);
  kb.ApplyExtraction(S(2), C(0), {E(2)}, {E(1), E(4)}, 2);
  int rolled = kb.RemovePair(IsAPair{C(0), E(1)}, CascadePolicy::kAnyTriggerDead);
  EXPECT_EQ(rolled, 2);  // Producer + dependent, though e4 is still alive.
  EXPECT_EQ(kb.Count(IsAPair{C(0), E(2)}), 0);
}

TEST(KnowledgeBaseTest, RemovePairRollsAllProducers) {
  KnowledgeBase kb;
  kb.ApplyExtraction(S(0), C(0), {E(1), E(2)}, {}, 1);
  kb.ApplyExtraction(S(1), C(0), {E(1), E(3)}, {}, 1);
  int rolled = kb.RemovePair(IsAPair{C(0), E(1)}, CascadePolicy::kAllTriggersDead);
  EXPECT_EQ(rolled, 2);
  EXPECT_EQ(kb.Count(IsAPair{C(0), E(1)}), 0);
  // Collateral: e2 and e3 lose their only producers too.
  EXPECT_EQ(kb.Count(IsAPair{C(0), E(2)}), 0);
  EXPECT_EQ(kb.Count(IsAPair{C(0), E(3)}), 0);
}

TEST(KnowledgeBaseTest, RollbackTriggeredByLeavesPairItself) {
  KnowledgeBase kb;
  kb.ApplyExtraction(S(0), C(0), {E(1)}, {}, 1);
  kb.ApplyExtraction(S(1), C(0), {E(2)}, {E(1)}, 2);
  int rolled = kb.RollbackTriggeredBy(IsAPair{C(0), E(1)},
                                      CascadePolicy::kAllTriggersDead);
  EXPECT_EQ(rolled, 1);
  EXPECT_EQ(kb.Count(IsAPair{C(0), E(1)}), 1);  // DP pair itself untouched.
  EXPECT_EQ(kb.Count(IsAPair{C(0), E(2)}), 0);
}

TEST(KnowledgeBaseTest, ConceptsAreIsolated) {
  KnowledgeBase kb;
  kb.ApplyExtraction(S(0), C(0), {E(1)}, {}, 1);
  kb.ApplyExtraction(S(1), C(5), {E(1)}, {}, 1);
  EXPECT_EQ(kb.Count(IsAPair{C(0), E(1)}), 1);
  EXPECT_EQ(kb.Count(IsAPair{C(5), E(1)}), 1);
  kb.RemovePair(IsAPair{C(0), E(1)}, CascadePolicy::kAllTriggersDead);
  EXPECT_EQ(kb.Count(IsAPair{C(5), E(1)}), 1);
}

TEST(KnowledgeBaseTest, ForEachLiveRecordSkipsRolledBack) {
  KnowledgeBase kb;
  uint32_t r0 = kb.ApplyExtraction(S(0), C(0), {E(1)}, {}, 1);
  kb.ApplyExtraction(S(1), C(0), {E(2)}, {}, 1);
  kb.RollbackRecord(r0, CascadePolicy::kAllTriggersDead);
  int live = 0;
  kb.ForEachLiveRecordOfConcept(C(0), [&](const ExtractionRecord&) { ++live; });
  EXPECT_EQ(live, 1);
}

TEST(KnowledgeBaseTest, UnknownConceptQueriesAreEmpty) {
  KnowledgeBase kb;
  EXPECT_TRUE(kb.InstancesEverOf(C(42)).empty());
  EXPECT_TRUE(kb.RecordsOfConcept(C(42)).empty());
  EXPECT_TRUE(kb.LiveRecordsTriggeredBy(IsAPair{C(42), E(0)}).empty());
}

/// Property: after any random sequence of rollbacks, pair counts equal the
/// number of live producing records, and live_pairs matches the count of
/// positive pairs.
class KbRollbackPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KbRollbackPropertyTest, CountsStayConsistent) {
  Rng rng(GetParam());
  KnowledgeBase kb;
  // Build a random KB: 3 concepts, 30 instances, 80 records.
  std::vector<uint32_t> record_ids;
  for (int r = 0; r < 80; ++r) {
    ConceptId c(static_cast<uint32_t>(rng.NextBounded(3)));
    std::vector<InstanceId> instances;
    int len = 1 + static_cast<int>(rng.NextBounded(4));
    for (int i = 0; i < len; ++i) {
      InstanceId e(static_cast<uint32_t>(rng.NextBounded(30)));
      if (std::find(instances.begin(), instances.end(), e) == instances.end()) {
        instances.push_back(e);
      }
    }
    // Triggers must already be live under c.
    std::vector<InstanceId> triggers;
    auto live = kb.LiveInstancesOf(c);
    if (!live.empty() && rng.NextBool(0.6)) {
      triggers.push_back(live[rng.NextBounded(live.size())]);
    }
    int iteration = triggers.empty() ? 1 : 2;
    record_ids.push_back(kb.ApplyExtraction(SentenceId(r), c, instances, triggers,
                                            iteration));
  }
  // Roll back a random third, mixing policies.
  for (uint32_t id : record_ids) {
    if (rng.NextBool(0.33)) {
      kb.RollbackRecord(id, rng.NextBool(0.5) ? CascadePolicy::kAllTriggersDead
                                              : CascadePolicy::kAnyTriggerDead);
    }
  }
  // Invariant check.
  size_t live_pairs = 0;
  for (uint32_t ci = 0; ci < 3; ++ci) {
    ConceptId c(ci);
    for (InstanceId e : kb.InstancesEverOf(c)) {
      const PairStats* stats = kb.Find(IsAPair{c, e});
      ASSERT_NE(stats, nullptr);
      int expected = 0;
      for (uint32_t id : stats->producing_records) {
        if (!kb.record(id).rolled_back) ++expected;
      }
      EXPECT_EQ(stats->count, expected);
      EXPECT_GE(stats->count, 0);
      if (stats->count > 0) ++live_pairs;
    }
  }
  EXPECT_EQ(kb.num_live_pairs(), live_pairs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KbRollbackPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace semdrift
