#!/usr/bin/env bash
# One-command sanitizer gate: the full test suite under ASan+UBSan, then the
# concurrency-sensitive tests under TSan (the two sanitizers are mutually
# exclusive, hence two build trees). Run from the repo root:
#
#   tools/check.sh [jobs]
#
# Build trees live in build-asan/ and build-tsan/ and are reused across runs
# (incremental). Exits non-zero on the first failing configure, build or test.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 2)}"

echo "== ASan+UBSan: configure + build + full ctest =="
cmake -B build-asan -S . -DSEMDRIFT_SANITIZE="address;undefined" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== TSan: concurrency tests =="
TSAN_TARGETS=(thread_pool_test parallel_determinism_test supervisor_test
  serve_batcher_test)
cmake -B build-tsan -S . -DSEMDRIFT_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$JOBS" --target "${TSAN_TARGETS[@]}"
for t in "${TSAN_TARGETS[@]}"; do
  echo "-- TSan: $t"
  "build-tsan/tests/$t"
done

echo "OK: ASan+UBSan suite and TSan concurrency tests all green"
