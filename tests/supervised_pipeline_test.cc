#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "dp/cleaner.h"
#include "eval/experiment.h"
#include "util/supervisor.h"
#include "util/thread_pool.h"

namespace semdrift {
namespace {

/// Byte-level fingerprint of a KB: its full provenance log. Two KBs with
/// equal dumps replay to identical derived state, so this is the
/// bit-identity check the supervision layer promises.
std::string Dump(const KnowledgeBase& kb) {
  std::string out;
  for (const ExtractionRecord& r : kb.records()) {
    out += std::to_string(r.id) + "," + std::to_string(r.sentence.value) + "," +
           std::to_string(r.concept_id.value) + "," + std::to_string(r.iteration) +
           "," + (r.rolled_back ? "1" : "0") + ",[";
    for (InstanceId e : r.instances) out += std::to_string(e.value) + " ";
    out += "],[";
    for (InstanceId e : r.triggers) out += std::to_string(e.value) + " ";
    out += "]\n";
  }
  return out;
}

std::vector<uint32_t> RawIds(const std::vector<ConceptId>& scope) {
  std::vector<uint32_t> out;
  for (ConceptId c : scope) out.push_back(c.value);
  return out;
}

ExperimentConfig SmallConfig() {
  ExperimentConfig config = PaperScaleConfig(0.08);
  return config;
}

CleanerOptions FastCleanerOptions() {
  CleanerOptions options;
  options.max_rounds = 2;
  return options;
}

SupervisorOptions FastSupervisorOptions() {
  SupervisorOptions options;
  options.stage_deadline_ms = 5000;
  options.max_retries = 1;
  options.backoff_base_ms = 0;
  return options;
}

/// Acceptance gate 1: with supervision on and no fault injected, the
/// supervised pipeline is a pure observer — KB and report bit-identical to
/// the unsupervised cleaner, health report empty.
TEST(SupervisedCleanTest, FaultFreeMatchesUnsupervised) {
  auto experiment = Experiment::Build(SmallConfig());
  std::vector<ConceptId> scope = experiment->EvalConcepts();
  CleanerOptions options = FastCleanerOptions();
  DpCleaner cleaner(&experiment->corpus().sentences,
                    experiment->MakeVerifiedSource(),
                    experiment->world().num_concepts(), options);

  KnowledgeBase plain_kb = experiment->Extract();
  CleaningReport plain = cleaner.Clean(&plain_kb, scope);

  KnowledgeBase supervised_kb = experiment->Extract();
  Supervisor supervisor(FastSupervisorOptions());
  SupervisedCleanHooks hooks;
  hooks.supervisor = &supervisor;
  auto supervised = cleaner.CleanSupervised(&supervised_kb, scope, hooks);
  ASSERT_TRUE(supervised.ok()) << supervised.status().ToString();

  EXPECT_EQ(Dump(plain_kb), Dump(supervised_kb));
  EXPECT_EQ(plain.rounds, supervised->rounds);
  EXPECT_EQ(plain.records_rolled_back, supervised->records_rolled_back);
  EXPECT_EQ(plain.live_pairs_after, supervised->live_pairs_after);
  EXPECT_TRUE(supervisor.health()->empty());
}

/// Acceptance gate 2: persistent faults quarantine exactly the planned
/// concepts; the survivors' output is bit-identical to a fault-free run over
/// the reduced scope; and the whole thing is thread-count independent.
TEST(SupervisedCleanTest, PersistentWarmFaultsQuarantineExactlyPlanned) {
  auto experiment = Experiment::Build(SmallConfig());
  std::vector<ConceptId> scope = experiment->EvalConcepts();
  CleanerOptions options = FastCleanerOptions();
  DpCleaner cleaner(&experiment->corpus().sentences,
                    experiment->MakeVerifiedSource(),
                    experiment->world().num_concepts(), options);

  ComputeFaultPlan plan;
  plan.seed = 2014;
  plan.rate = 0.3;
  plan.kinds = {ComputeFaultKind::kThrow};
  plan.stages = {PipelineStage::kScoreWarm};
  std::vector<uint32_t> planned = plan.FaultedAmong(RawIds(scope));
  ASSERT_FALSE(planned.empty());
  ASSERT_LT(planned.size(), scope.size());

  auto run_faulted = [&](int threads) {
    SetGlobalThreadCount(threads);
    KnowledgeBase kb = experiment->Extract();
    Supervisor supervisor(FastSupervisorOptions(), plan);
    SupervisedCleanHooks hooks;
    hooks.supervisor = &supervisor;
    auto report = cleaner.CleanSupervised(&kb, scope, hooks);
    SetGlobalThreadCount(0);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return std::make_pair(Dump(kb), supervisor.health()->ToLines());
  };

  auto [dump1, health1] = run_faulted(1);
  auto [dump4, health4] = run_faulted(4);
  EXPECT_EQ(dump1, dump4);
  EXPECT_EQ(health1, health4);

  // Exactly the planned concepts are quarantined — no survivor was taken
  // down with them, no faulted concept slipped through.
  Supervisor probe(FastSupervisorOptions(), plan);
  {
    KnowledgeBase kb = experiment->Extract();
    SupervisedCleanHooks hooks;
    hooks.supervisor = &probe;
    ASSERT_TRUE(cleaner.CleanSupervised(&kb, scope, hooks).ok());
    EXPECT_EQ(Dump(kb), dump1);
  }
  EXPECT_EQ(probe.health()->Quarantined(), planned);

  // Survivors match a fault-free supervised run over the reduced scope.
  std::vector<ConceptId> reduced;
  for (ConceptId c : scope) {
    if (!probe.health()->IsQuarantined(c.value)) reduced.push_back(c);
  }
  KnowledgeBase reduced_kb = experiment->Extract();
  Supervisor clean_supervisor(FastSupervisorOptions());
  SupervisedCleanHooks hooks;
  hooks.supervisor = &clean_supervisor;
  ASSERT_TRUE(cleaner.CleanSupervised(&reduced_kb, reduced, hooks).ok());
  EXPECT_TRUE(clean_supervisor.health()->empty());
  EXPECT_EQ(Dump(reduced_kb), dump1);
}

/// Transient faults exercise the retry path: the run records kRetried
/// outcomes but the result is bit-identical to fault-free.
TEST(SupervisedCleanTest, TransientFaultsRetryAndMatchFaultFree) {
  auto experiment = Experiment::Build(SmallConfig());
  std::vector<ConceptId> scope = experiment->EvalConcepts();
  CleanerOptions options = FastCleanerOptions();
  DpCleaner cleaner(&experiment->corpus().sentences,
                    experiment->MakeVerifiedSource(),
                    experiment->world().num_concepts(), options);

  KnowledgeBase plain_kb = experiment->Extract();
  cleaner.Clean(&plain_kb, scope);

  ComputeFaultPlan plan;
  plan.seed = 99;
  plan.rate = 0.3;
  plan.kinds = {ComputeFaultKind::kThrow};
  plan.stages = {PipelineStage::kScoreWarm};
  plan.transient_attempts = 1;  // First attempt fails, retry succeeds.
  ASSERT_FALSE(plan.FaultedAmong(RawIds(scope)).empty());

  KnowledgeBase kb = experiment->Extract();
  Supervisor supervisor(FastSupervisorOptions(), plan);
  SupervisedCleanHooks hooks;
  hooks.supervisor = &supervisor;
  auto report = cleaner.CleanSupervised(&kb, scope, hooks);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(Dump(kb), Dump(plain_kb));
  EXPECT_GE(supervisor.health()->CountWithOutcome(ConceptOutcome::kRetried), 1u);
  EXPECT_TRUE(supervisor.health()->Quarantined().empty());
}

/// NaN injected into feature collection: the bad vectors are dropped with
/// provenance, the concept is flagged degraded, and the run completes.
TEST(SupervisedCleanTest, NanAtCollectDropsInstancesAndCompletes) {
  auto experiment = Experiment::Build(SmallConfig());
  std::vector<ConceptId> scope = experiment->EvalConcepts();
  CleanerOptions options = FastCleanerOptions();
  DpCleaner cleaner(&experiment->corpus().sentences,
                    experiment->MakeVerifiedSource(),
                    experiment->world().num_concepts(), options);

  ComputeFaultPlan plan;
  plan.seed = 7;
  plan.rate = 0.5;
  plan.kinds = {ComputeFaultKind::kNanEmit};
  plan.stages = {PipelineStage::kCollectTraining};
  ASSERT_FALSE(plan.FaultedAmong(RawIds(scope)).empty());

  KnowledgeBase kb = experiment->Extract();
  Supervisor supervisor(FastSupervisorOptions(), plan);
  SupervisedCleanHooks hooks;
  hooks.supervisor = &supervisor;
  auto report = cleaner.CleanSupervised(&kb, scope, hooks);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_GE(supervisor.health()->num_drops(), 1u);
  EXPECT_GE(supervisor.health()->CountWithOutcome(ConceptOutcome::kDegraded), 1u);
  EXPECT_TRUE(supervisor.health()->Quarantined().empty());
}

/// A persistently failing detector train falls down the AdHoc ladder instead
/// of killing the run.
TEST(SupervisedCleanTest, DetectorTrainFaultFallsBack) {
  auto experiment = Experiment::Build(SmallConfig());
  std::vector<ConceptId> scope = experiment->EvalConcepts();
  CleanerOptions options = FastCleanerOptions();
  DpCleaner cleaner(&experiment->corpus().sentences,
                    experiment->MakeVerifiedSource(),
                    experiment->world().num_concepts(), options);

  ComputeFaultPlan plan;
  plan.seed = 4;
  plan.rate = 1.0;
  plan.kinds = {ComputeFaultKind::kThrow};
  plan.stages = {PipelineStage::kDetectorTrain};

  KnowledgeBase kb = experiment->Extract();
  SupervisorOptions sup_options = FastSupervisorOptions();
  sup_options.max_retries = 0;
  Supervisor supervisor(sup_options, plan);
  SupervisedCleanHooks hooks;
  hooks.supervisor = &supervisor;
  auto report = cleaner.CleanSupervised(&kb, scope, hooks);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(supervisor.health()->detector_fallback());
  EXPECT_NE(supervisor.health()->detector_detail().find("fell back"),
            std::string::npos);
}

/// With quarantine off, an exhausted stage aborts the run with its error.
TEST(SupervisedCleanTest, QuarantineOffFailsFast) {
  auto experiment = Experiment::Build(SmallConfig());
  std::vector<ConceptId> scope = experiment->EvalConcepts();
  DpCleaner cleaner(&experiment->corpus().sentences,
                    experiment->MakeVerifiedSource(),
                    experiment->world().num_concepts(), FastCleanerOptions());

  ComputeFaultPlan plan;
  plan.seed = 2014;
  plan.rate = 0.3;
  plan.kinds = {ComputeFaultKind::kThrow};
  plan.stages = {PipelineStage::kScoreWarm};
  ASSERT_FALSE(plan.FaultedAmong(RawIds(scope)).empty());

  KnowledgeBase kb = experiment->Extract();
  SupervisorOptions options = FastSupervisorOptions();
  options.quarantine = false;
  Supervisor supervisor(options, plan);
  SupervisedCleanHooks hooks;
  hooks.supervisor = &supervisor;
  auto report = cleaner.CleanSupervised(&kb, scope, hooks);
  EXPECT_FALSE(report.ok());
}

/// Satellite + acceptance gate 3: checkpoint -> quarantine -> crash ->
/// resume produces a byte-identical final KB and health report.
TEST(SupervisedPipelineTest, CheckpointResumeRestoresQuarantineAndMatches) {
  auto experiment = Experiment::Build(SmallConfig());
  std::vector<ConceptId> scope = experiment->EvalConcepts();

  ComputeFaultPlan plan;
  plan.seed = 2014;
  plan.rate = 0.3;
  plan.kinds = {ComputeFaultKind::kThrow};
  plan.stages = {PipelineStage::kScoreWarm};
  ASSERT_FALSE(plan.FaultedAmong(RawIds(scope)).empty());

  SupervisedRunConfig config;
  config.cleaner = FastCleanerOptions();
  config.supervisor = FastSupervisorOptions();
  config.faults = plan;

  // Uninterrupted reference run (its own checkpoint dir).
  std::string dir_a = ::testing::TempDir() + "/supervised_ckpt_a";
  std::filesystem::remove_all(dir_a);
  config.checkpoint.dir = dir_a;
  auto reference = experiment->RunSupervised(scope, config);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_FALSE(reference->health.Quarantined().empty());
  ASSERT_GT(reference->cleaning.rounds, 0);

  // Interrupted run: complete once into dir B, then simulate a crash by
  // deleting the newest snapshot, then resume.
  std::string dir_b = ::testing::TempDir() + "/supervised_ckpt_b";
  std::filesystem::remove_all(dir_b);
  config.checkpoint.dir = dir_b;
  auto first = experiment->RunSupervised(scope, config);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(Dump(first->kb), Dump(reference->kb));

  int newest = -1;
  std::string newest_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir_b)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("checkpoint-", 0) != 0) continue;
    int index = std::atoi(name.substr(11).c_str());
    if (index > newest) {
      newest = index;
      newest_path = entry.path().string();
    }
  }
  ASSERT_GE(newest, 0);
  std::filesystem::remove(newest_path);

  config.checkpoint.resume = true;
  auto resumed = experiment->RunSupervised(scope, config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  EXPECT_EQ(Dump(resumed->kb), Dump(reference->kb));
  EXPECT_EQ(resumed->health.ToLines(), reference->health.ToLines());
  EXPECT_EQ(resumed->health.Quarantined(), reference->health.Quarantined());
  EXPECT_EQ(resumed->stats.size(), reference->stats.size());
}

}  // namespace
}  // namespace semdrift
