#include "eval/experiment.h"

#include <algorithm>

#include "serve/snapshot_delta.h"
#include "util/crc32.h"
#include "util/fault_injection.h"

namespace semdrift {

ExperimentConfig PaperScaleConfig(double scale) {
  ExperimentConfig config;
  // The concept universe stays fixed while the sentence budget scales: what
  // drives drift is the *coverage ratio* (sentences per concept member),
  // which the paper's corpus keeps very thin (326M sentences over 13.5M
  // concepts). Shrinking both together would saturate coverage and suppress
  // drift.
  config.world.num_concepts = 240;
  config.world.named_concepts = PaperEvaluationConcepts();
  config.corpus.num_sentences = std::max(4000, static_cast<int>(120000 * scale));
  config.corpus.render_text = scale <= 0.3;  // Big corpora skip surface text.
  return config;
}

Experiment::Experiment(ExperimentConfig config, World world, Corpus corpus)
    : config_(std::move(config)), world_(std::move(world)), corpus_(std::move(corpus)) {
  truth_ = std::make_unique<GroundTruth>(&world_);
}

std::unique_ptr<Experiment> Experiment::Build(const ExperimentConfig& config) {
  Rng world_rng(config.seed);
  World world = GenerateWorld(config.world, &world_rng);
  Rng corpus_rng(config.seed ^ 0x5bd1e995ULL);
  Corpus corpus = GenerateCorpus(world, config.corpus, &corpus_rng);
  return std::unique_ptr<Experiment>(
      new Experiment(config, std::move(world), std::move(corpus)));
}

Result<std::unique_ptr<Experiment>> Experiment::BuildChecked(
    const ExperimentConfig& config) {
  if (Status s = ValidateWorldSpec(config.world); !s.ok()) return s;
  if (Status s = ValidateCorpusSpec(config.corpus); !s.ok()) return s;
  return Build(config);
}

KnowledgeBase Experiment::Extract(
    std::vector<IterationStats>* stats,
    const std::function<void(const IterationStats&, const KnowledgeBase&)>&
        on_iteration) const {
  KnowledgeBase kb;
  IterativeExtractor extractor(&corpus_.sentences, config_.extractor);
  std::vector<IterationStats> local = extractor.Run(&kb, on_iteration);
  if (stats != nullptr) *stats = std::move(local);
  return kb;
}

Result<KnowledgeBase> Experiment::ExtractWithCheckpoints(
    CheckpointConfig checkpoint, std::vector<IterationStats>* stats,
    const std::function<void(const IterationStats&, const KnowledgeBase&)>&
        on_iteration) const {
  checkpoint.num_concepts = world_.num_concepts();
  checkpoint.num_sentences = corpus_.sentences.size();
  KnowledgeBase kb;
  IterativeExtractor extractor(&corpus_.sentences, config_.extractor);
  auto local = RunWithCheckpoints(&extractor, &kb, checkpoint, on_iteration);
  if (!local.ok()) return local.status();
  if (stats != nullptr) *stats = std::move(*local);
  return kb;
}

Result<SupervisedRunResult> RunSupervisedPipeline(
    IterativeExtractor* extractor, const SentenceStore* sentences,
    VerifiedSource verified, size_t num_concepts, size_t num_sentences,
    const std::vector<ConceptId>& scope, const SupervisedRunConfig& config) {
  SupervisedRunResult result;
  Supervisor supervisor(config.supervisor, config.faults);

  const bool checkpointing = !config.checkpoint.dir.empty();
  CheckpointConfig ckpt = config.checkpoint;
  ckpt.num_concepts = num_concepts;
  ckpt.num_sentences = num_sentences;

  // Resume peek: a kClean-phase snapshot means extraction already finished —
  // restore the KB, the stats and the health report (quarantine state) here
  // and hand the round cursor to the cleaner. kExtract-phase snapshots are
  // left for RunWithCheckpoints, which owns mid-extraction resume.
  int resume_round = 0;
  bool extraction_done = false;
  if (checkpointing && ckpt.resume) {
    auto restored = LoadLatestValidCheckpoint(ckpt.dir, num_concepts, num_sentences);
    if (restored.ok()) {
      if (restored->state.phase == CheckpointPhase::kClean) {
        result.kb = std::move(restored->kb);
        result.stats = std::move(restored->state.stats);
        *supervisor.health() = restored->state.health;
        resume_round = restored->state.clean_round;
        extraction_done = true;
      }
    } else if (restored.status().code() != Status::Code::kNotFound) {
      return restored.status();
    }
  }

  if (!extraction_done) {
    if (checkpointing) {
      auto stats = RunWithCheckpoints(extractor, &result.kb, ckpt);
      if (!stats.ok()) return stats.status();
      result.stats = std::move(*stats);
    } else {
      result.stats = extractor->Run(&result.kb);
    }
  }

  if (config.clean) {
    DpCleaner cleaner(sentences, std::move(verified), num_concepts,
                      config.cleaner);
    SupervisedCleanHooks hooks;
    hooks.supervisor = &supervisor;
    hooks.first_round = resume_round + 1;
    if (checkpointing) {
      int last_iteration =
          result.stats.empty() ? 1 : result.stats.back().iteration;
      hooks.on_round = [&ckpt, &supervisor, &result,
                        last_iteration](int round, const KnowledgeBase& kb) {
        CheckpointState state;
        state.completed_iteration = std::max(1, last_iteration);
        state.stats = result.stats;
        state.records = kb.records();
        state.phase = CheckpointPhase::kClean;
        state.clean_round = round;
        state.health = *supervisor.health();
        Status s = WriteCheckpoint(ckpt.dir, state);
        if (!s.ok()) return s;
        if (ckpt.keep_last > 0) return PruneCheckpoints(ckpt.dir, ckpt.keep_last);
        return Status::OK();
      };
    }
    auto report = cleaner.CleanSupervised(&result.kb, scope, hooks);
    if (!report.ok()) return report.status();
    result.cleaning = std::move(*report);
  }

  result.health = *supervisor.health();
  return result;
}

Status WriteServingSnapshot(const KnowledgeBase& kb, const World& world,
                            size_t num_sentences, const RunHealthReport* health,
                            const std::string& path, const SnapshotOptions& options) {
  Status valid = kb.Validate(world.num_concepts(), num_sentences);
  if (!valid.ok()) return valid;
  return WriteSnapshot(kb, world, health, options, path);
}

Status WriteServingSnapshotDelta(const KnowledgeBase& kb, const World& world,
                                 size_t num_sentences, const RunHealthReport* health,
                                 const std::string& base_path,
                                 uint64_t base_generation, const std::string& path,
                                 const SnapshotOptions& options) {
  Status valid = kb.Validate(world.num_concepts(), num_sentences);
  if (!valid.ok()) return valid;
  // The base is read as raw bytes first: the delta's binding is the CRC32 of
  // the exact image on disk, not of any re-serialization.
  auto base_bytes = ReadFileToString(base_path);
  if (!base_bytes.ok()) return base_bytes.status();
  auto base_reader = SnapshotReader::OpenFromBuffer(*base_bytes, base_path);
  if (!base_reader.ok()) return base_reader.status();
  const SnapshotParts base_parts = PartsFromReader(*base_reader);
  const SnapshotParts next_parts = CompileSnapshotParts(kb, world, health, options);
  auto delta = DiffSnapshotParts(base_parts, next_parts);
  if (!delta.ok()) return delta.status();
  delta->base_generation = base_generation;
  delta->base_crc32 = Crc32Of(*base_bytes);
  delta->generation = base_generation + 1;
  return WriteSnapshotDeltaFile(*delta, path);
}

VerifiedSource Experiment::MakeVerifiedSource() const {
  const World* world = &world_;
  return [world](const IsAPair& pair) {
    return world->IsVerified(pair.concept_id, pair.instance);
  };
}

Result<SupervisedRunResult> Experiment::RunSupervised(
    const std::vector<ConceptId>& scope, const SupervisedRunConfig& config) const {
  IterativeExtractor extractor(&corpus_.sentences, config_.extractor);
  return RunSupervisedPipeline(&extractor, &corpus_.sentences,
                               MakeVerifiedSource(), world_.num_concepts(),
                               corpus_.sentences.size(), scope, config);
}

std::vector<ConceptId> Experiment::EvalConcepts() const {
  std::vector<ConceptId> out;
  int n = std::min<int>(config_.num_eval_concepts,
                        static_cast<int>(world_.num_concepts()));
  for (int i = 0; i < n; ++i) out.push_back(ConceptId(static_cast<uint32_t>(i)));
  return out;
}

std::vector<ConceptId> Experiment::AllConcepts() const {
  std::vector<ConceptId> out;
  for (size_t i = 0; i < world_.num_concepts(); ++i) {
    out.push_back(ConceptId(static_cast<uint32_t>(i)));
  }
  return out;
}

}  // namespace semdrift
