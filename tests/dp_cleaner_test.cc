#include <gtest/gtest.h>

#include <unordered_set>

#include "dp/cleaner.h"
#include "dp/sentence_check.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

namespace semdrift {
namespace {

TEST(SentenceCheckTest, PaperExampleDecision) {
  // The paper's Example 1 situation: sentence "food from animals such as
  // pork, beef and chicken", wrongly extracted under animal via the
  // Intentional DP (chicken isA animal). With pork/beef/chicken solidly
  // established under food and only weakly under animal, Eq. 21 must score
  // food above animal, flagging the extraction for rollback.
  KnowledgeBase kb;
  ConceptId food(0);
  ConceptId animal(1);
  InstanceId pork(0), beef(1), chicken(2), dog(3);
  uint32_t sid = 0;
  // Food core: pork, beef, chicken all frequent.
  for (int i = 0; i < 5; ++i) kb.ApplyExtraction(SentenceId(sid++), food, {pork}, {}, 1);
  for (int i = 0; i < 4; ++i) kb.ApplyExtraction(SentenceId(sid++), food, {beef}, {}, 1);
  for (int i = 0; i < 6; ++i)
    kb.ApplyExtraction(SentenceId(sid++), food, {chicken}, {}, 1);
  // Animal core: chicken and dog; pork/beef only via one drifted record.
  for (int i = 0; i < 6; ++i)
    kb.ApplyExtraction(SentenceId(sid++), animal, {chicken}, {}, 1);
  for (int i = 0; i < 6; ++i) kb.ApplyExtraction(SentenceId(sid++), animal, {dog}, {}, 1);
  kb.ApplyExtraction(SentenceId(sid++), animal, {pork, beef, chicken}, {chicken}, 2);

  ScoreCache scores(&kb, RankModel::kRandomWalk);
  Sentence s;
  s.candidate_concepts = {food, animal};
  s.candidate_instances = {pork, beef, chicken};
  double food_score = SentenceConceptScore(s, food, &scores);
  double animal_score = SentenceConceptScore(s, animal, &scores);
  EXPECT_GT(food_score, animal_score);
  EXPECT_EQ(BestAttachment(s, &scores), food);
  // Eq. 21 scores are sums of per-instance ratios, bounded by |Es|.
  EXPECT_LE(food_score, 3.0 + 1e-9);
  EXPECT_GE(animal_score, 0.0);
  // Ratios per instance sum to 1 across the two candidates (when any
  // candidate scores the instance).
  EXPECT_NEAR(food_score + animal_score, 3.0, 1e-9);
}

TEST(SentenceCheckTest, SingleCandidateGetsEverything) {
  KnowledgeBase kb;
  ConceptId c(0);
  InstanceId e(0);
  kb.ApplyExtraction(SentenceId(0), c, {e}, {}, 1);
  ScoreCache scores(&kb, RankModel::kRandomWalk);
  Sentence s;
  s.candidate_concepts = {c};
  s.candidate_instances = {e};
  EXPECT_NEAR(SentenceConceptScore(s, c, &scores), 1.0, 1e-9);
  EXPECT_EQ(BestAttachment(s, &scores), c);
}

TEST(SentenceCheckTest, UnknownInstancesContributeNothing) {
  KnowledgeBase kb;
  ConceptId c(0);
  kb.ApplyExtraction(SentenceId(0), c, {InstanceId(0)}, {}, 1);
  ScoreCache scores(&kb, RankModel::kRandomWalk);
  Sentence s;
  s.candidate_concepts = {c, ConceptId(1)};
  s.candidate_instances = {InstanceId(7), InstanceId(8)};  // Never extracted.
  EXPECT_EQ(SentenceConceptScore(s, c, &scores), 0.0);
  // All-zero tie resolves to the first (head) candidate.
  EXPECT_EQ(BestAttachment(s, &scores), c);
}

TEST(SmoothedVoteTest, WeakLoneEvidenceGetsWeakVote) {
  KnowledgeBase kb;
  ConceptId a(0), b(1);
  InstanceId strong(0), weak(1), filler(2);
  uint32_t sid = 0;
  for (int i = 0; i < 10; ++i)
    kb.ApplyExtraction(SentenceId(sid++), a, {strong}, {}, 1);
  for (int i = 0; i < 10; ++i)
    kb.ApplyExtraction(SentenceId(sid++), a, {filler}, {}, 1);
  // `weak` known only under b, via a single late record.
  kb.ApplyExtraction(SentenceId(sid++), b, {strong}, {}, 1);
  kb.ApplyExtraction(SentenceId(sid++), b, {filler}, {}, 1);
  kb.ApplyExtraction(SentenceId(sid++), b, {InstanceId(9)}, {}, 1);
  kb.ApplyExtraction(SentenceId(sid++), b, {weak}, {strong}, 2);
  ScoreCache scores(&kb, RankModel::kRandomWalk);
  Sentence s;
  s.candidate_concepts = {a, b};
  s.candidate_instances = {weak};
  // Raw Eq. 21 would give b the full vote (only b knows `weak`); the
  // smoothed vote stays below 1 and reflects the weak evidence.
  SmoothedVote vote = SmoothedAttachmentVote(s, b, &scores, /*alpha=*/0.5);
  EXPECT_LT(vote.average_vote_for_extracted, 0.75);
  EXPECT_GT(vote.average_vote_for_extracted, 0.0);
}

TEST(SmoothedVoteTest, StrongEvidenceGetsStrongVote) {
  KnowledgeBase kb;
  ConceptId a(0), b(1);
  InstanceId popular(0);
  uint32_t sid = 0;
  for (int i = 0; i < 10; ++i)
    kb.ApplyExtraction(SentenceId(sid++), a, {popular}, {}, 1);
  kb.ApplyExtraction(SentenceId(sid++), a, {InstanceId(1)}, {}, 1);
  kb.ApplyExtraction(SentenceId(sid++), b, {InstanceId(2)}, {}, 1);
  ScoreCache scores(&kb, RankModel::kRandomWalk);
  Sentence s;
  s.candidate_concepts = {a, b};
  s.candidate_instances = {popular};
  SmoothedVote vote = SmoothedAttachmentVote(s, a, &scores, 0.5);
  EXPECT_EQ(vote.best, a);
  EXPECT_GT(vote.average_vote_for_extracted, 0.5);
}

/// End-to-end cleaning on a small generated experiment: precision must rise
/// substantially and most correct pairs must survive.
TEST(DpCleanerEndToEndTest, CleaningImprovesPrecision) {
  ExperimentConfig config = PaperScaleConfig(0.08);
  auto experiment = Experiment::Build(config);
  KnowledgeBase kb = experiment->Extract();
  std::vector<ConceptId> scope = experiment->EvalConcepts();
  std::vector<IsAPair> population = LivePairsOf(kb, scope);
  double before = LivePairPrecision(experiment->truth(), kb, scope);

  CleanerOptions options;
  options.max_rounds = 4;
  DpCleaner cleaner(&experiment->corpus().sentences,
                    experiment->MakeVerifiedSource(),
                    experiment->world().num_concepts(), options);
  CleaningReport report = cleaner.Clean(&kb, scope);
  double after = LivePairPrecision(experiment->truth(), kb, scope);

  EXPECT_GT(after, before + 0.05);
  EXPECT_GT(report.records_rolled_back, 0u);
  EXPECT_EQ(report.live_pairs_after, kb.num_live_pairs());

  std::unordered_set<IsAPair, IsAPairHash> removed;
  for (const IsAPair& pair : population) {
    if (!kb.Contains(pair)) removed.insert(pair);
  }
  CleaningMetrics metrics = EvaluateCleaning(experiment->truth(), population, removed);
  EXPECT_GT(metrics.perror, 0.5);
  EXPECT_GT(metrics.rcorr, 0.8);
}

TEST(DpCleanerEndToEndTest, ReportIsConsistent) {
  ExperimentConfig config = PaperScaleConfig(0.08);
  auto experiment = Experiment::Build(config);
  KnowledgeBase kb = experiment->Extract();
  std::vector<ConceptId> scope = experiment->EvalConcepts();
  CleanerOptions options;
  options.max_rounds = 2;
  DpCleaner cleaner(&experiment->corpus().sentences,
                    experiment->MakeVerifiedSource(),
                    experiment->world().num_concepts(), options);
  CleaningReport report = cleaner.Clean(&kb, scope);
  EXPECT_GE(report.live_pairs_before, report.live_pairs_after);
  EXPECT_LE(report.rounds, 2);
  // Flagged DP lists are deduplicated.
  std::unordered_set<IsAPair, IsAPairHash> acc(report.accidental_dps.begin(),
                                               report.accidental_dps.end());
  EXPECT_EQ(acc.size(), report.accidental_dps.size());
  // Sentence-check decisions reference real, ambiguous sentences.
  for (const auto& decision : report.sentence_checks) {
    const ExtractionRecord& record = kb.record(decision.record_id);
    const Sentence& sentence =
        experiment->corpus().sentences.Get(record.sentence);
    EXPECT_GE(sentence.candidate_concepts.size(), 2u);
  }
}

TEST(DpCleanerEndToEndTest, UngatedModeRemovesMore) {
  ExperimentConfig config = PaperScaleConfig(0.08);
  auto experiment = Experiment::Build(config);
  std::vector<ConceptId> scope = experiment->EvalConcepts();

  KnowledgeBase gated_kb = experiment->Extract();
  CleanerOptions gated;
  gated.max_rounds = 2;
  DpCleaner gated_cleaner(&experiment->corpus().sentences,
                          experiment->MakeVerifiedSource(),
                          experiment->world().num_concepts(), gated);
  gated_cleaner.Clean(&gated_kb, scope);

  KnowledgeBase raw_kb = experiment->Extract();
  CleanerOptions raw = gated;
  raw.eq21_gate_accidental = false;
  DpCleaner raw_cleaner(&experiment->corpus().sentences,
                        experiment->MakeVerifiedSource(),
                        experiment->world().num_concepts(), raw);
  raw_cleaner.Clean(&raw_kb, scope);

  EXPECT_LE(raw_kb.num_live_pairs(), gated_kb.num_live_pairs());
}

}  // namespace
}  // namespace semdrift
