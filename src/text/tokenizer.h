#ifndef SEMDRIFT_TEXT_TOKENIZER_H_
#define SEMDRIFT_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace semdrift {

/// A surface token plus whether a list separator (comma) immediately
/// followed it in the original text. The Hearst parser needs separator
/// positions to split instance lists.
struct Token {
  std::string text;
  bool followed_by_comma = false;
};

/// Lower-cases and splits a raw sentence into word tokens, recording comma
/// positions and dropping other punctuation. Deliberately simple: the corpus
/// language is controlled, so no Unicode segmentation is needed.
std::vector<Token> Tokenize(std::string_view text);

/// Joins token texts with single spaces (round-trip helper for tests).
std::string Detokenize(const std::vector<Token>& tokens);

}  // namespace semdrift

#endif  // SEMDRIFT_TEXT_TOKENIZER_H_
