#include <gtest/gtest.h>

#include "scenario/grammar.h"
#include "scenario/scenario.h"

namespace semdrift {
namespace scenario {
namespace {

TEST(ScenarioGrammarTest, SamplingIsDeterministic) {
  for (uint64_t seed : {1ULL, 7ULL, 42ULL, 9999ULL}) {
    Scenario a = SampleScenario(seed);
    Scenario b = SampleScenario(seed);
    EXPECT_EQ(ScenarioToToml(a), ScenarioToToml(b)) << "seed " << seed;
  }
}

TEST(ScenarioGrammarTest, DifferentSeedsDiffer) {
  EXPECT_NE(ScenarioToToml(SampleScenario(1)), ScenarioToToml(SampleScenario(2)));
}

TEST(ScenarioGrammarTest, EveryArchetypeSamplesValid) {
  for (const std::string& archetype : ScenarioArchetypes()) {
    for (uint64_t seed = 1; seed <= 20; ++seed) {
      Scenario s = SampleScenario(seed, archetype);
      EXPECT_EQ(s.archetype, archetype);
      Status st = ValidateScenario(s);
      EXPECT_TRUE(st.ok()) << archetype << " seed " << seed << ": "
                           << st.ToString();
    }
  }
}

TEST(ScenarioGrammarTest, ArchetypeDrawUsesSeparateStream) {
  // The no-archetype overload must produce the same scenario as naming the
  // archetype it drew — the archetype pick must not perturb the dimensions.
  Scenario drawn = SampleScenario(77);
  Scenario named = SampleScenario(77, drawn.archetype);
  EXPECT_EQ(ScenarioToToml(drawn), ScenarioToToml(named));
}

TEST(ScenarioGrammarTest, TomlRoundTripIsByteExact) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Scenario s = SampleScenario(seed);
    // Exercise the envelope section too.
    s.envelope.min_precision_after = 0.123456789012345;
    s.envelope.max_rounds = 5;
    std::string toml = ScenarioToToml(s);
    auto parsed = ScenarioFromToml(toml);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(toml, ScenarioToToml(*parsed)) << "seed " << seed;
  }
}

TEST(ScenarioGrammarTest, NotesWithEscapesRoundTrip) {
  Scenario s = SampleScenario(3);
  s.notes = "line one\nquote \" and backslash \\ end";
  auto parsed = ScenarioFromToml(ScenarioToToml(s));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->notes, s.notes);
}

TEST(ScenarioGrammarTest, UnknownKeyIsHardError) {
  Scenario s = SampleScenario(1);
  std::string toml = ScenarioToToml(s);
  auto bad = ScenarioFromToml(toml + "\n[pipeline]\nmax_roundz = 3\n");
  EXPECT_FALSE(bad.ok());
}

TEST(ScenarioGrammarTest, UnknownSectionIsHardError) {
  auto bad = ScenarioFromToml(ScenarioToToml(SampleScenario(1)) +
                              "\n[extras]\nx = 1\n");
  EXPECT_FALSE(bad.ok());
}

TEST(ScenarioGrammarTest, ValidatorRejectsDegenerateKnobs) {
  Scenario s = SampleScenario(1);
  s.world.num_concepts = 0;
  EXPECT_FALSE(ValidateScenario(s).ok());

  s = SampleScenario(1);
  s.corpus.misparse_rate = 1.5;
  EXPECT_FALSE(ValidateScenario(s).ok());

  s = SampleScenario(1);
  s.name = "has/slash";
  EXPECT_FALSE(ValidateScenario(s).ok());

  s = SampleScenario(1);
  s.pipeline.similar_threshold = 0.1;
  s.pipeline.mutex_threshold = 0.2;
  EXPECT_FALSE(ValidateScenario(s).ok());

  s = SampleScenario(1);
  s.faults.kinds = {"sparkle"};
  EXPECT_FALSE(ValidateScenario(s).ok());
}

TEST(ScenarioGrammarTest, StallRequiresStageDeadline) {
  Scenario s = SampleScenario(1);
  s.faults.rate = 0.1;
  s.faults.kinds = {"stall"};
  s.faults.stage_deadline_ms = 0;
  EXPECT_FALSE(ValidateScenario(s).ok());
  s.faults.stage_deadline_ms = 50;
  EXPECT_TRUE(ValidateScenario(s).ok());
}

TEST(ScenarioGrammarTest, GrammarNeverSamplesStall) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Scenario s = SampleScenario(seed, "fault-overlay");
    for (const std::string& kind : s.faults.kinds) EXPECT_NE(kind, "stall");
  }
}

}  // namespace
}  // namespace scenario
}  // namespace semdrift
