// Quickstart: the full pipeline on a mid-sized synthetic web corpus.
//
//   1. generate a ground-truth world and a Hearst-pattern corpus;
//   2. run the semantic-based iterative extractor (watch precision drift);
//   3. detect Drifting Points and clean the knowledge base (Sec. 3-4);
//   4. compare precision/recall before and after cleaning.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "dp/cleaner.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "util/string_util.h"
#include "util/timer.h"

using namespace semdrift;

int main() {
  Timer timer;

  // 1. World + corpus. PaperScaleConfig(0.25) is a laptop-second-scale slice
  //    of the bench configuration; the 20 named evaluation concepts of the
  //    paper's Table 1 are embedded by name.
  ExperimentConfig config = PaperScaleConfig(0.25);
  auto experiment = Experiment::Build(config);
  std::printf("world: %zu concepts, %zu instances; corpus: %zu sentences\n",
              experiment->world().num_concepts(), experiment->world().num_instances(),
              experiment->corpus().sentences.size());

  // 2. Iterative extraction. Precision over the evaluation concepts decays
  //    as ambiguous sentences get (sometimes wrongly) disambiguated.
  std::vector<ConceptId> scope = experiment->EvalConcepts();
  std::vector<IterationStats> stats;
  KnowledgeBase kb = experiment->Extract(
      &stats, [&](const IterationStats& s, const KnowledgeBase& snapshot) {
        double precision =
            LivePairPrecision(experiment->truth(), snapshot, scope);
        std::printf("  iteration %2d: %7zu extractions, %7zu distinct pairs, "
                    "precision %.3f\n",
                    s.iteration, s.extractions, s.distinct_pairs, precision);
      });

  double before = LivePairPrecision(experiment->truth(), kb, scope);
  std::vector<IsAPair> population = LivePairsOf(kb, scope);

  // 3. DP-based cleaning with the semi-supervised multi-task detector.
  CleanerOptions options;
  DpCleaner cleaner(&experiment->corpus().sentences,
                    experiment->MakeVerifiedSource(),
                    experiment->world().num_concepts(), options);
  CleaningReport report = cleaner.Clean(&kb, scope);
  std::printf("cleaning: %d rounds, %zu intentional DPs, %zu accidental DPs, "
              "%zu records rolled back\n",
              report.rounds, report.intentional_dps.size(),
              report.accidental_dps.size(), report.records_rolled_back);

  // 4. Before/after quality.
  std::unordered_set<IsAPair, IsAPairHash> removed;
  for (const IsAPair& pair : population) {
    if (!kb.Contains(pair)) removed.insert(pair);
  }
  CleaningMetrics metrics =
      EvaluateCleaning(experiment->truth(), population, removed);
  double after = LivePairPrecision(experiment->truth(), kb, scope);
  std::printf("precision before cleaning: %.3f   after: %.3f\n", before, after);
  std::printf("perror=%.3f rerror=%.3f pcorr=%.3f rcorr=%.3f (removed %zu of %zu"
              " pairs)\n",
              metrics.perror, metrics.rerror, metrics.pcorr, metrics.rcorr,
              metrics.removed, population.size());
  std::printf("done in %.1fs\n", timer.ElapsedSeconds());
  return 0;
}
