#ifndef SEMDRIFT_UTIL_CRC32_H_
#define SEMDRIFT_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace semdrift {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant). Used as the
/// integrity checksum in the on-disk file formats: cheap, well-understood,
/// and strong enough to catch torn writes, bit flips and truncation — the
/// failure modes the fault-tolerance layer defends against. Not a
/// cryptographic hash; it detects corruption, not tampering.
class Crc32 {
 public:
  Crc32() = default;

  /// Feeds `data` into the running checksum. Can be called repeatedly to
  /// checksum a stream incrementally.
  void Update(std::string_view data);
  void Update(const void* data, size_t size);

  /// Finalized checksum of everything fed so far. Does not reset state.
  uint32_t value() const { return state_ ^ 0xffffffffu; }

  /// Resets to the empty-input state.
  void Reset() { state_ = 0xffffffffu; }

 private:
  uint32_t state_ = 0xffffffffu;
};

/// One-shot convenience: checksum of a single buffer.
uint32_t Crc32Of(std::string_view data);

}  // namespace semdrift

#endif  // SEMDRIFT_UTIL_CRC32_H_
