#ifndef SEMDRIFT_RANK_CONCEPT_GRAPH_H_
#define SEMDRIFT_RANK_CONCEPT_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kb/knowledge_base.h"
#include "text/ids.h"

namespace semdrift {

/// Per-concept instance graph (Sec. 3.1, feature 3): one node per live
/// instance of the concept, one weighted directed edge from a trigger
/// instance to each sub-instance it licensed (weight = number of live
/// extraction records realizing the edge). Iteration-1 instances are the
/// graph's *roots*, weighted by their iteration-1 support — the restart
/// distribution of the random walk.
///
/// Adjacency is stored in CSR form (one offsets array, flat target/weight
/// arrays): the random walk's inner loop streams contiguous memory instead
/// of chasing a vector-of-vectors, and building it is a sort + merge over a
/// flat edge list rather than a hash-map accumulation. Edges of a node are
/// sorted by target index, as before, so walk results are unchanged.
class ConceptGraph {
 public:
  /// Builds the graph for `c` from the KB's live records.
  static ConceptGraph Build(const KnowledgeBase& kb, ConceptId c);

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edge_targets_.size(); }

  InstanceId node(size_t index) const { return nodes_[index]; }

  /// Node index of an instance; SIZE_MAX when absent.
  size_t IndexOf(InstanceId e) const;

  /// Borrowed view of one node's out-edges in the CSR arrays.
  struct OutEdgeSpan {
    const uint32_t* targets;
    const double* weights;
    size_t count;

    size_t size() const { return count; }
    bool empty() const { return count == 0; }
  };

  /// Weighted out-edges of a node, sorted by target index.
  OutEdgeSpan OutEdges(size_t index) const {
    size_t begin = edge_offsets_[index];
    return OutEdgeSpan{edge_targets_.data() + begin, edge_weights_.data() + begin,
                       edge_offsets_[index + 1] - begin};
  }

  // Raw CSR arrays (size n + 1 / E / E) for walk kernels.
  const std::vector<size_t>& edge_offsets() const { return edge_offsets_; }
  const std::vector<uint32_t>& edge_targets() const { return edge_targets_; }
  const std::vector<double>& edge_weights() const { return edge_weights_; }

  /// Weighted out-degree per node (precomputed edge-weight row sums).
  const std::vector<double>& out_degrees() const { return out_degrees_; }

  /// Restart weights, indexed by node; zero for non-root nodes.
  const std::vector<double>& root_weights() const { return root_weights_; }

  /// Live pair support per node (the Frequency model's raw score).
  const std::vector<double>& node_counts() const { return node_counts_; }

 private:
  std::vector<InstanceId> nodes_;
  std::unordered_map<InstanceId, size_t> index_;
  std::vector<size_t> edge_offsets_;
  std::vector<uint32_t> edge_targets_;
  std::vector<double> edge_weights_;
  std::vector<double> out_degrees_;
  std::vector<double> root_weights_;
  std::vector<double> node_counts_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_RANK_CONCEPT_GRAPH_H_
