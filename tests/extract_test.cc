#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "corpus/renderer.h"
#include "corpus/world.h"
#include "extract/extractor.h"
#include "extract/hearst_parser.h"

namespace semdrift {
namespace {

World BuildParserWorld() {
  World::Builder builder;
  ConceptId animal = builder.AddConcept("animal");
  ConceptId food = builder.AddConcept("food");
  builder.AddConcept("asian country");
  builder.AddConcept("u.s. state");
  InstanceId dog = builder.AddInstance("dog");
  InstanceId cat = builder.AddInstance("cat");
  InstanceId chicken = builder.AddInstance("chicken");
  InstanceId pork = builder.AddInstance("pork");
  InstanceId beef = builder.AddInstance("beef");
  builder.AddInstance("new york");
  builder.AddMembership(animal, dog);
  builder.AddMembership(animal, cat);
  builder.AddMembership(animal, chicken);
  builder.AddMembership(food, pork);
  builder.AddMembership(food, beef);
  builder.AddMembership(food, chicken);
  return builder.Build();
}

class HearstParserTest : public ::testing::Test {
 protected:
  HearstParserTest()
      : world_(BuildParserWorld()),
        parser_(&world_.concept_vocab(), world_.instance_vocab()) {}
  World world_;
  HearstParser parser_;
};

TEST_F(HearstParserTest, ParsesUnambiguousSentence) {
  auto parsed = parser_.Parse("animals such as dog and cat .");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->candidate_concepts.size(), 1u);
  EXPECT_EQ(parsed->candidate_concepts[0], world_.FindConcept("animal"));
  ASSERT_EQ(parsed->candidate_instances.size(), 2u);
  EXPECT_EQ(parsed->candidate_instances[0], world_.FindInstance("dog"));
  EXPECT_EQ(parsed->candidate_instances[1], world_.FindInstance("cat"));
}

TEST_F(HearstParserTest, ParsesThePaperS3Sentence) {
  // "Common food from animals such as pork, beef, and chicken" (Sec. 1).
  auto parsed =
      parser_.Parse("common food from animals such as pork, beef, and chicken .");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->candidate_concepts.size(), 2u);
  EXPECT_EQ(parsed->candidate_concepts[0], world_.FindConcept("food"));
  EXPECT_EQ(parsed->candidate_concepts[1], world_.FindConcept("animal"));
  ASSERT_EQ(parsed->candidate_instances.size(), 3u);
  EXPECT_EQ(parsed->candidate_instances[2], world_.FindInstance("chicken"));
}

TEST_F(HearstParserTest, FillerWordsIgnored) {
  auto parsed = parser_.Parse("many popular animals such as dog .");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->candidate_concepts.size(), 1u);
}

TEST_F(HearstParserTest, MultiWordConceptMatches) {
  auto parsed = parser_.Parse("asian countries such as dog .");  // Vocabulary toy.
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->candidate_concepts[0], world_.FindConcept("asian country"));
}

TEST_F(HearstParserTest, AbbreviatedConceptMatches) {
  auto parsed = parser_.Parse("u.s. states such as dog .");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->candidate_concepts[0], world_.FindConcept("u.s. state"));
}

TEST_F(HearstParserTest, UnknownInstancesAreInterned) {
  size_t before = parser_.instance_lexicon().size();
  auto parsed = parser_.Parse("animals such as axolotl and quokka .");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->candidate_instances.size(), 2u);
  EXPECT_EQ(parser_.instance_lexicon().size(), before + 2);
}

TEST_F(HearstParserTest, MultiWordInstance) {
  auto parsed = parser_.Parse("foods such as new york and pork .");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->candidate_instances.size(), 2u);
  EXPECT_EQ(parsed->candidate_instances[0], world_.FindInstance("new york"));
}

TEST_F(HearstParserTest, RejectsNonHearstText) {
  EXPECT_FALSE(parser_.Parse("the dog chased the cat").has_value());
  EXPECT_FALSE(parser_.Parse("").has_value());
}

TEST_F(HearstParserTest, RejectsWhenNoConceptBeforeAnchor) {
  EXPECT_FALSE(parser_.Parse("wonderful things such as dog .").has_value());
}

TEST_F(HearstParserTest, RejectsEmptyList) {
  EXPECT_FALSE(parser_.Parse("animals such as .").has_value());
}

TEST_F(HearstParserTest, DeduplicatesRepeatedInstances) {
  auto parsed = parser_.Parse("animals such as dog, dog and cat .");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->candidate_instances.size(), 2u);
}

TEST_F(HearstParserTest, OtherThanYieldsBothConcepts) {
  auto parsed = parser_.Parse("animals other than foods such as cat .");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->candidate_concepts.size(), 2u);
  EXPECT_EQ(parsed->candidate_concepts[0], world_.FindConcept("animal"));
  EXPECT_EQ(parsed->candidate_concepts[1], world_.FindConcept("food"));
}

/// Round-trip: parsing a rendered generated corpus recovers the generator's
/// candidate structure (on worlds whose vocabularies the parser holds).
TEST(ParserRoundTripTest, RecoverGeneratedSentences) {
  WorldSpec wspec;
  wspec.num_concepts = 25;
  Rng wrng(3);
  World world = GenerateWorld(wspec, &wrng);
  CorpusSpec cspec;
  cspec.num_sentences = 300;
  cspec.misparse_rate = 0.0;  // Misparses deliberately differ from the text.
  Rng crng(4);
  Corpus corpus = GenerateCorpus(world, cspec, &crng);
  HearstParser parser(&world.concept_vocab(), world.instance_vocab());
  size_t checked = 0;
  for (const auto& sentence : corpus.sentences.sentences()) {
    auto parsed = parser.Parse(sentence.text);
    ASSERT_TRUE(parsed.has_value()) << sentence.text;
    EXPECT_EQ(parsed->candidate_concepts, sentence.candidate_concepts)
        << sentence.text;
    EXPECT_EQ(parsed->candidate_instances, sentence.candidate_instances)
        << sentence.text;
    ++checked;
  }
  EXPECT_GT(checked, 250u);
}

// ---------------------------------------------------------------------------
// IterativeExtractor
// ---------------------------------------------------------------------------

/// A tiny hand-built corpus exercising the S1/S3 drift story.
class ExtractorTest : public ::testing::Test {
 protected:
  ExtractorTest() : world_(BuildParserWorld()) {
    animal_ = world_.FindConcept("animal");
    food_ = world_.FindConcept("food");
    dog_ = world_.FindInstance("dog");
    cat_ = world_.FindInstance("cat");
    chicken_ = world_.FindInstance("chicken");
    pork_ = world_.FindInstance("pork");
    beef_ = world_.FindInstance("beef");
  }

  void AddUnambiguous(ConceptId c, std::vector<InstanceId> list) {
    Sentence s;
    s.candidate_concepts = {c};
    s.candidate_instances = std::move(list);
    store_.Add(std::move(s));
  }

  void AddAmbiguous(ConceptId head, ConceptId adjacent, std::vector<InstanceId> list) {
    Sentence s;
    s.candidate_concepts = {head, adjacent};
    s.candidate_instances = std::move(list);
    store_.Add(std::move(s));
  }

  World world_;
  SentenceStore store_;
  ConceptId animal_, food_;
  InstanceId dog_, cat_, chicken_, pork_, beef_;
};

TEST_F(ExtractorTest, IterationOneTakesOnlyUnambiguous) {
  AddUnambiguous(animal_, {dog_, cat_});
  AddAmbiguous(food_, animal_, {pork_});
  KnowledgeBase kb;
  IterativeExtractor extractor(&store_, ExtractorOptions{});
  EXPECT_EQ(extractor.RunIteration(&kb, 1), 1u);
  EXPECT_TRUE(kb.Contains(IsAPair{animal_, dog_}));
  EXPECT_FALSE(kb.Contains(IsAPair{food_, pork_}));
  EXPECT_FALSE(kb.Contains(IsAPair{animal_, pork_}));
}

TEST_F(ExtractorTest, PaperDriftScenario) {
  // S1: "animals such as dog, cat and chicken" — iteration 1.
  AddUnambiguous(animal_, {dog_, cat_, chicken_});
  // S3: "food from animals such as pork, beef and chicken" — ambiguous;
  // knowing (chicken isA animal) makes the naive extractor attach to
  // animal, producing the drifting errors (pork/beef isA animal).
  AddAmbiguous(food_, animal_, {pork_, beef_, chicken_});
  KnowledgeBase kb;
  IterativeExtractor extractor(&store_, ExtractorOptions{});
  auto stats = extractor.Run(&kb);
  ASSERT_GE(stats.size(), 2u);
  EXPECT_TRUE(kb.Contains(IsAPair{animal_, pork_}));
  EXPECT_TRUE(kb.Contains(IsAPair{animal_, beef_}));
  // Provenance: chicken triggered the drift.
  auto sub = kb.SubInstancesOf(IsAPair{animal_, chicken_});
  EXPECT_EQ(sub.count(pork_), 1u);
  EXPECT_EQ(sub.count(beef_), 1u);
}

TEST_F(ExtractorTest, StrongerEvidenceSideWins) {
  AddUnambiguous(animal_, {chicken_});
  AddUnambiguous(food_, {pork_, beef_});
  // List has two known food items vs one known animal item: attaches food.
  AddAmbiguous(food_, animal_, {pork_, beef_, chicken_});
  KnowledgeBase kb;
  IterativeExtractor extractor(&store_, ExtractorOptions{});
  extractor.Run(&kb);
  EXPECT_TRUE(kb.Contains(IsAPair{food_, chicken_}));
  EXPECT_FALSE(kb.Contains(IsAPair{animal_, pork_}));
}

TEST_F(ExtractorTest, SupportSumOutweighsDistinctCount) {
  // chicken@animal has count 3; pork@food count 1.
  AddUnambiguous(animal_, {chicken_});
  AddUnambiguous(animal_, {chicken_});
  AddUnambiguous(animal_, {chicken_});
  AddUnambiguous(food_, {pork_});
  AddAmbiguous(food_, animal_, {pork_, chicken_});
  KnowledgeBase kb;
  ExtractorOptions options;
  options.evidence = EvidencePolicy::kSupportSum;
  IterativeExtractor extractor(&store_, options);
  extractor.Run(&kb);
  // Support: animal 3 vs food 1 (+1 chicken? chicken unknown under food).
  EXPECT_TRUE(kb.Contains(IsAPair{animal_, pork_}));
}

TEST_F(ExtractorTest, DistinctCountPolicyPrefersMoreInstances) {
  AddUnambiguous(animal_, {chicken_});
  AddUnambiguous(animal_, {chicken_});
  AddUnambiguous(animal_, {chicken_});
  AddUnambiguous(food_, {pork_, beef_});
  AddAmbiguous(food_, animal_, {pork_, beef_, chicken_});
  KnowledgeBase kb;
  ExtractorOptions options;
  options.evidence = EvidencePolicy::kDistinctCount;
  IterativeExtractor extractor(&store_, options);
  extractor.Run(&kb);
  // Distinct: food 2 (pork, beef) vs animal 1 (chicken).
  EXPECT_TRUE(kb.Contains(IsAPair{food_, chicken_}));
  EXPECT_FALSE(kb.Contains(IsAPair{animal_, pork_}));
}

TEST_F(ExtractorTest, AdjacentWinsExactTie) {
  AddUnambiguous(animal_, {chicken_});
  AddUnambiguous(food_, {pork_});
  // One known instance each side with equal counts: adjacency decides.
  AddAmbiguous(food_, animal_, {pork_, chicken_});
  KnowledgeBase kb;
  ExtractorOptions options;
  options.prefer_adjacent_on_tie = true;
  IterativeExtractor extractor(&store_, options);
  extractor.Run(&kb);
  EXPECT_TRUE(kb.Contains(IsAPair{animal_, pork_}));  // Adjacent = animal.
}

TEST_F(ExtractorTest, TieWithoutAdjacencyPreferenceWaits) {
  AddUnambiguous(animal_, {chicken_});
  AddUnambiguous(food_, {pork_});
  AddAmbiguous(food_, animal_, {pork_, chicken_});
  KnowledgeBase kb;
  ExtractorOptions options;
  options.prefer_adjacent_on_tie = false;
  IterativeExtractor extractor(&store_, options);
  extractor.Run(&kb);
  // The tied sentence is never extracted (the tie never breaks).
  EXPECT_FALSE(kb.Contains(IsAPair{animal_, pork_}));
  EXPECT_FALSE(kb.Contains(IsAPair{food_, chicken_}));
}

TEST_F(ExtractorTest, SentencesConsumedOnce) {
  AddUnambiguous(animal_, {dog_});
  KnowledgeBase kb;
  IterativeExtractor extractor(&store_, ExtractorOptions{});
  extractor.Run(&kb);
  EXPECT_EQ(kb.Count(IsAPair{animal_, dog_}), 1);
  EXPECT_TRUE(extractor.Consumed(SentenceId(0)));
}

TEST_F(ExtractorTest, TwoPhaseWithinIteration) {
  // Two ambiguous sentences whose resolution depends on each other's output
  // must NOT see each other's extractions within the same iteration.
  AddUnambiguous(animal_, {chicken_});
  // A: resolvable at iteration 2 via chicken -> adds pork to animal.
  AddAmbiguous(food_, animal_, {pork_, chicken_});
  // B: contains only pork; at iteration 2 start pork is unknown everywhere,
  // so B must wait until iteration 3.
  AddAmbiguous(food_, animal_, {pork_, beef_});
  KnowledgeBase kb;
  IterativeExtractor extractor(&store_, ExtractorOptions{});
  extractor.RunIteration(&kb, 1);
  size_t second = extractor.RunIteration(&kb, 2);
  EXPECT_EQ(second, 1u);  // Only A.
  size_t third = extractor.RunIteration(&kb, 3);
  EXPECT_EQ(third, 1u);  // B follows once pork is known.
  EXPECT_TRUE(kb.Contains(IsAPair{animal_, beef_}));  // Chained drift.
}

TEST_F(ExtractorTest, RunStopsAtFixpoint) {
  AddUnambiguous(animal_, {dog_});
  AddAmbiguous(food_, animal_, {pork_, beef_});  // Never resolvable.
  KnowledgeBase kb;
  ExtractorOptions options;
  options.max_iterations = 50;
  IterativeExtractor extractor(&store_, options);
  auto stats = extractor.Run(&kb);
  EXPECT_LT(stats.size(), 5u);
  EXPECT_EQ(stats.back().extractions, 0u);
}

TEST(ExtractorDeterminismTest, SameCorpusSameResult) {
  WorldSpec wspec;
  wspec.num_concepts = 30;
  Rng wrng(8);
  World world = GenerateWorld(wspec, &wrng);
  CorpusSpec cspec;
  cspec.num_sentences = 2000;
  cspec.render_text = false;
  Rng crng(9);
  Corpus corpus = GenerateCorpus(world, cspec, &crng);
  KnowledgeBase kb1;
  KnowledgeBase kb2;
  IterativeExtractor e1(&corpus.sentences, ExtractorOptions{});
  IterativeExtractor e2(&corpus.sentences, ExtractorOptions{});
  auto s1 = e1.Run(&kb1);
  auto s2 = e2.Run(&kb2);
  ASSERT_EQ(s1.size(), s2.size());
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].extractions, s2[i].extractions);
    EXPECT_EQ(s1[i].distinct_pairs, s2[i].distinct_pairs);
  }
  EXPECT_EQ(kb1.num_live_pairs(), kb2.num_live_pairs());
  EXPECT_EQ(kb1.num_records(), kb2.num_records());
}

}  // namespace
}  // namespace semdrift
