#ifndef SEMDRIFT_MUTEX_MUTEX_INDEX_H_
#define SEMDRIFT_MUTEX_MUTEX_INDEX_H_

#include <unordered_map>
#include <vector>

#include "kb/knowledge_base.h"
#include "text/ids.h"

namespace semdrift {

/// Thresholds for the concept-relatedness bands of Sec. 3.2.1 / Fig. 4.
/// The paper's absolute values (<1e-4 mutually exclusive, >0.1 highly
/// similar over ~90M pairs) are corpus-scale-dependent; these defaults fit
/// the synthetic corpus and both are sweepable (the Fig. 4 bench prints the
/// observed similarity distribution so the bands are visible).
struct MutexParams {
  /// Sim below this: mutually exclusive.
  double mutex_threshold = 0.15;
  /// Sim above this: highly similar ("nations"/"countries"); similarity
  /// closures propagate mutual exclusion (Sec. 3.2.1).
  double similar_threshold = 0.5;
  /// Concepts with fewer live core instances than this are too small for a
  /// reliable similarity estimate and never participate in mutex labeling.
  int min_core_instances = 3;
};

/// Computes Eq. 5 concept-to-concept similarity over *core pairs* (the
/// iteration-1 extractions) and serves the derived relations:
///
///  * Sim(C1, C2)  — cosine between iteration-1 frequency vectors;
///  * IsMutex      — effective similarity (max over highly-similar
///                   closures) below mutex_threshold;
///  * HighlySimilar— similarity above similar_threshold;
///  * F2Count      — |{C' : e in E(C'), C' mutex C}|, the paper's feature
///                   f2 (Eq. 2), counted over *live* instances.
///
/// Construction cost is near-linear in KB size: only concept pairs sharing
/// at least one core instance have nonzero similarity; everything else is
/// mutually exclusive by default. Construction fans its three phases
/// (per-concept core extraction, pairwise dot products, live containment)
/// out over the global thread pool; the built index is bit-identical at any
/// thread count, and all queries on the built index are const and
/// thread-safe.
class MutexIndex {
 public:
  /// Builds from the KB's current live state. The index is a snapshot:
  /// rebuild after rollbacks if fresh values are needed.
  MutexIndex(const KnowledgeBase& kb, size_t num_concepts, MutexParams params = {});

  /// Eq. 5 core-pair cosine similarity; 0 when disjoint.
  double Sim(ConceptId a, ConceptId b) const;

  /// Both concepts usable and effective similarity < mutex_threshold.
  bool IsMutex(ConceptId a, ConceptId b) const;

  bool HighlySimilar(ConceptId a, ConceptId b) const;

  /// Highly-similar partners of `c`.
  const std::vector<ConceptId>& SimilarConcepts(ConceptId c) const;

  /// Feature f2 (Eq. 2): number of concepts mutually exclusive with `c`
  /// that currently hold `e` as a live instance.
  int F2Count(ConceptId c, InstanceId e) const;

  /// Concepts holding `e` live (restricted to usable concepts).
  const std::vector<ConceptId>& ConceptsContaining(InstanceId e) const;

  /// Whether `c` has enough core instances to participate.
  bool Usable(ConceptId c) const;

  /// All nonzero pairwise similarities (for the Fig. 4 distribution).
  std::vector<double> NonZeroSimilarities() const;

  const MutexParams& params() const { return params_; }
  size_t num_concepts() const { return core_norms_.size(); }

 private:
  /// Max similarity over the highly-similar closures of both sides.
  double EffectiveSim(ConceptId a, ConceptId b) const;

  static uint64_t PairKey(ConceptId a, ConceptId b) {
    uint32_t lo = a.value < b.value ? a.value : b.value;
    uint32_t hi = a.value < b.value ? b.value : a.value;
    return (static_cast<uint64_t>(lo) << 32) | hi;
  }

  MutexParams params_;
  std::vector<double> core_norms_;                 // Per concept; 0 = unusable.
  std::unordered_map<uint64_t, double> sims_;      // Nonzero pairs only.
  std::vector<std::vector<ConceptId>> similar_;    // Highly-similar closure.
  std::unordered_map<InstanceId, std::vector<ConceptId>> containing_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_MUTEX_MUTEX_INDEX_H_
