#ifndef SEMDRIFT_SERVE_BATCHER_H_
#define SEMDRIFT_SERVE_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>

#include "serve/query_engine.h"

namespace semdrift {

struct BatcherOptions {
  /// Dispatch as soon as this many requests are queued.
  size_t max_batch = 64;
  /// ... or when the oldest queued request has waited this long.
  int max_wait_ms = 1;
  /// Deadline applied to requests submitted without an explicit one;
  /// <= 0 means no deadline. Covers queue wait plus execution.
  int default_deadline_ms = 1000;
  /// Start with dispatch paused (tests use this to force coalescing
  /// deterministically: queue N requests, then Resume()).
  bool start_paused = false;
};

/// Counters for the dispatch loop (all monotone; read with Snapshot()).
struct BatcherStats {
  uint64_t requests = 0;
  uint64_t batches = 0;
  uint64_t max_batch = 0;
  uint64_t deadline_expired = 0;
};

/// Coalesces submitted query lines into batches and executes each batch on
/// the global thread pool via the ordered ParallelMap, completing every
/// request's future with the engine's response. Because QueryEngine answers
/// are deterministic, batched/concurrent execution is bit-identical to
/// feeding the same lines to the engine serially.
///
/// Deadlines reuse util/cancellation: each request carries an absolute
/// deadline; a request whose deadline passes while queued is answered
/// `ERR deadline exceeded` without executing, and during execution the
/// remaining budget is armed on a CancellationToken installed for the
/// worker (so future long-running query kinds can poll it).
class Batcher {
 public:
  /// `engine` must outlive the batcher.
  explicit Batcher(QueryEngine* engine, BatcherOptions options = {});
  /// Drains the queue (dispatching anything still pending), then stops.
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Enqueues one request line; the future yields the response line.
  std::future<std::string> Submit(std::string line);
  /// Same with an explicit deadline (<= 0: none) overriding the default.
  std::future<std::string> Submit(std::string line, int deadline_ms);

  /// Holds dispatch so queued requests coalesce; Resume() releases them.
  void Pause();
  void Resume();

  BatcherStats Snapshot() const;

 private:
  struct Request {
    std::string line;
    std::promise<std::string> promise;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    /// When Submit() queued the request; feeds the batch.queue_wait_ns
    /// histogram at dispatch time.
    std::chrono::steady_clock::time_point submitted{};
  };

  void DispatchLoop();
  /// Runs one batch on the pool and completes its promises.
  void RunBatch(std::deque<Request>* batch);

  QueryEngine* engine_;
  BatcherOptions options_;

  mutable std::mutex mu_;
  std::condition_variable wake_;
  std::deque<Request> queue_;
  bool paused_ = false;
  bool stopping_ = false;
  BatcherStats stats_;
  std::thread dispatcher_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_SERVE_BATCHER_H_
