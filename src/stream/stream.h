#ifndef SEMDRIFT_STREAM_STREAM_H_
#define SEMDRIFT_STREAM_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/world.h"
#include "dp/cleaner.h"
#include "extract/extractor.h"
#include "kb/knowledge_base.h"
#include "serve/snapshot.h"
#include "text/sentence.h"
#include "util/status.h"

namespace semdrift {

/// Configuration of the streaming (incremental) extraction pipeline.
struct StreamOptions {
  ExtractorOptions extractor;
  CleanerOptions cleaner;
  /// Snapshot compilation knobs for published generations.
  SnapshotOptions snapshot;
  /// Full-rebuild cadence: epoch k (1-based) rebuilds from scratch when
  /// full_rebuild_every > 0 and k % full_rebuild_every == 0. 0 disables the
  /// cadence (only the final epoch rebuilds, per final_full_rebuild).
  int full_rebuild_every = 0;
  /// Force the final epoch to be a full rebuild, which makes the stream's
  /// end state byte-identical to the batch pipeline over the concatenated
  /// corpus (the differential-test contract). Scenario divergence runs turn
  /// this off to measure how far pure incremental processing drifts.
  bool final_full_rebuild = true;
  /// Escalate an incremental epoch to a full rebuild when the dirty set
  /// covers more than this fraction of the world's concepts (the epoch is
  /// effectively global anyway, and a rebuild resets accumulated drift).
  /// 1.0 disables escalation.
  double rebuild_dirty_frac = 1.0;
  /// Restrict cleaning to these concepts (scenario evaluation scope); empty
  /// means every world concept. Extraction is never restricted.
  std::vector<ConceptId> clean_scope;
  /// When non-empty, publish each epoch into this directory for a live
  /// `serve --publish-dir` to swap in: rebuild epochs (and the first epoch)
  /// write a full `snap-<gen>.bin`, incremental epochs write a CRC-bound
  /// `delta-<gen>.bin` against the previous generation.
  std::string publish_dir;
  /// When non-empty, additionally write the full image of every epoch as
  /// `epoch-<k>.bin` (the per-epoch one-shot reference the soak test diffs
  /// client answers against).
  std::string epoch_snapshot_dir;
};

/// What one epoch did.
struct StreamEpochStats {
  int epoch = 0;
  /// This epoch re-ran the whole pipeline over the cumulative corpus.
  bool full_rebuild = false;
  /// An incremental epoch escalated to a rebuild via rebuild_dirty_frac.
  bool escalated = false;
  size_t sentences_ingested = 0;
  size_t corpus_size = 0;
  /// Concepts in the scoped re-detection set (0 on rebuild epochs — the
  /// scope is everything).
  size_t dirty_concepts = 0;
  size_t extractions = 0;
  size_t records_rolled_back = 0;
  size_t live_pairs = 0;
  /// Generation published this epoch (0 when no publish dir is configured).
  uint64_t generation = 0;
  /// The publish was a delta file (false: full image or no publish).
  bool published_delta = false;
};

/// The write side of the hot-swap serving loop: ingests corpus deltas per
/// epoch, continues iterative extraction over the grown corpus, scopes DP
/// re-detection/re-cleaning to the dirty concept set (extract/dirty_set.h),
/// re-applies the mutated KB through the replay/validate path, and publishes
/// each epoch as a snapshot generation for a live SnapshotManager to swap.
///
/// Two tiers of epoch:
///  * Incremental epochs continue extraction on the shared KB (new
///    sentences only — prior decisions stand) and clean only the dirty
///    scope. Cheap and low-staleness, but scoped cleaning can diverge from
///    what a batch run over the same corpus would produce: record ids and
///    iteration numbers differ, and DPs outside the dirty closure go
///    undetected until a rebuild.
///  * Full-rebuild epochs (per full_rebuild_every / rebuild_dirty_frac
///    escalation / final_full_rebuild) re-run extraction and full-scope
///    cleaning from scratch over the cumulative corpus — exactly the batch
///    pipeline — and swap the result in, resetting accumulated drift to
///    zero. With final_full_rebuild the stream's final KB and snapshot are
///    byte-identical to a one-shot batch run over the concatenated corpus.
///
/// Determinism: every stage is a deterministic function of (corpus, options)
/// at any thread count, so published images and deltas are byte-identical
/// across runs and thread counts (the stream_differential_test contract).
class StreamPipeline {
 public:
  /// `world` is borrowed and must outlive the pipeline.
  StreamPipeline(const World* world, StreamOptions options);

  StreamPipeline(const StreamPipeline&) = delete;
  StreamPipeline& operator=(const StreamPipeline&) = delete;

  /// Ingests and processes one epoch. `final_epoch` marks the last epoch of
  /// the stream (it forces a full rebuild when final_full_rebuild is set).
  /// An empty delta is legal (a heartbeat epoch republishes the current
  /// state). Errors (invalid KB state, failed publish) abort the epoch.
  Result<StreamEpochStats> RunEpoch(std::vector<Sentence> delta, bool final_epoch);

  const KnowledgeBase& kb() const { return kb_; }
  const SentenceStore& sentences() const { return sentences_; }
  const World& world() const { return *world_; }
  int epochs_run() const { return epoch_; }
  uint64_t generation() const { return generation_; }
  /// Sentences processed only incrementally since the last full rebuild —
  /// the staleness the next rebuild will retire (also exported as gauge
  /// `stream.staleness.sentences`).
  size_t stale_sentences() const { return stale_sentences_; }

  /// Compiles and frames the current KB as a full serving image (what a
  /// rebuild epoch would publish). Exposed for differential tests.
  Result<std::string> BuildImage() const;

 private:
  /// Continue extraction + scoped clean on the shared KB. Sets stats'
  /// dirty/extraction/rollback fields; flips `escalate` instead of cleaning
  /// when the dirty set crosses rebuild_dirty_frac.
  Status RunIncremental(size_t first_new_sentence, StreamEpochStats* stats,
                        bool* escalate);
  /// Fresh extraction + full-scope clean over the cumulative corpus; swaps
  /// the result in.
  Status RunFullRebuild(StreamEpochStats* stats);
  /// Replay + validate, then publish this epoch's state.
  Status FinishEpoch(bool full_rebuild, StreamEpochStats* stats);

  const World* world_;
  StreamOptions options_;
  SentenceStore sentences_;
  KnowledgeBase kb_;
  IterativeExtractor extractor_;
  DpCleaner cleaner_;
  int epoch_ = 0;
  uint64_t generation_ = 0;
  size_t stale_sentences_ = 0;
  /// Primary arrays and CRC of the last published image (delta base).
  SnapshotParts last_parts_;
  uint32_t last_crc_ = 0;
  bool has_published_ = false;
};

}  // namespace semdrift

#endif  // SEMDRIFT_STREAM_STREAM_H_
