#ifndef SEMDRIFT_ML_RANDOM_FOREST_H_
#define SEMDRIFT_ML_RANDOM_FOREST_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace semdrift {

/// Random-forest options. The paper's Supervised baseline (Table 4) uses a
/// random forest "observed as a good classifier to our task".
struct RandomForestOptions {
  int num_trees = 100;
  int max_depth = 12;
  int min_samples_leaf = 2;
  /// Features examined per split; 0 selects ceil(sqrt(d)).
  int features_per_split = 0;
  /// Draw each bootstrap stratified-equally across classes. Without it a
  /// rare class (the paper's Intentional DPs are ~3% of seeds) is almost
  /// never predicted.
  bool balance_classes = true;
  uint64_t seed = 42;
};

/// A CART-style decision tree (gini impurity, axis-aligned splits) grown on
/// a bootstrap sample with per-split feature subsampling. Used only through
/// RandomForest but exposed for unit tests.
class DecisionTree {
 public:
  /// Fits on rows `indices` of (x, y). `x` is row-major n x d.
  void Fit(const std::vector<std::vector<double>>& x, const std::vector<int>& y,
           const std::vector<size_t>& indices, int num_classes,
           const RandomForestOptions& options, Rng* rng);

  /// Class-count distribution at the leaf reached by `point`.
  const std::vector<int>& Leaf(const std::vector<double>& point) const;

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    int feature = -1;          // -1 for leaves.
    double threshold = 0.0;
    int32_t left = -1;
    int32_t right = -1;
    std::vector<int> counts;   // Populated for leaves.
  };

  int32_t Grow(const std::vector<std::vector<double>>& x, const std::vector<int>& y,
               std::vector<size_t>& indices, size_t begin, size_t end, int depth,
               int num_classes, const RandomForestOptions& options, Rng* rng);

  std::vector<Node> nodes_;
};

/// Bagged ensemble of DecisionTrees with soft (probability-averaged) voting.
class RandomForest {
 public:
  /// Fits the ensemble. `y` holds class labels in [0, num_classes). Trees
  /// are grown in parallel on the global thread pool; each tree uses its own
  /// deterministic RNG stream derived from `options.seed`, so the fitted
  /// forest is bit-identical at any thread count.
  void Fit(const std::vector<std::vector<double>>& x, const std::vector<int>& y,
           int num_classes, const RandomForestOptions& options);

  /// Class-probability estimate for a point.
  std::vector<double> PredictProba(const std::vector<double>& point) const;

  /// Argmax class.
  int Predict(const std::vector<double>& point) const;

  size_t num_trees() const { return trees_.size(); }
  int num_classes() const { return num_classes_; }

 private:
  std::vector<DecisionTree> trees_;
  int num_classes_ = 0;
};

}  // namespace semdrift

#endif  // SEMDRIFT_ML_RANDOM_FOREST_H_
