# Empty compiler generated dependencies file for bench_fig4_concept_sim.
# This may be replaced when dependencies are built.
