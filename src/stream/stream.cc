#include "stream/stream.h"

#include <chrono>
#include <utility>

#include "extract/dirty_set.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/snapshot_delta.h"
#include "util/crc32.h"

namespace semdrift {

namespace {

struct StreamMetrics {
  MetricsRegistry::Counter epochs;
  MetricsRegistry::Counter full_rebuilds;
  MetricsRegistry::Counter ingested;
  MetricsRegistry::Counter extractions;
  MetricsRegistry::Counter rolled_back;
  MetricsRegistry::Counter published_full;
  MetricsRegistry::Counter published_delta;
  MetricsRegistry::Gauge staleness;
  MetricsRegistry::Gauge generation;
  MetricsRegistry::Histogram epoch_ms;
  MetricsRegistry::Histogram publish_ms;
};

StreamMetrics& GetStreamMetrics() {
  static StreamMetrics metrics{
      GlobalMetrics().RegisterCounter("stream.epochs"),
      GlobalMetrics().RegisterCounter("stream.full_rebuilds"),
      GlobalMetrics().RegisterCounter("stream.sentences_ingested"),
      GlobalMetrics().RegisterCounter("stream.extractions"),
      GlobalMetrics().RegisterCounter("stream.records_rolled_back"),
      GlobalMetrics().RegisterCounter("stream.published.full"),
      GlobalMetrics().RegisterCounter("stream.published.delta"),
      GlobalMetrics().RegisterGauge("stream.staleness.sentences"),
      GlobalMetrics().RegisterGauge("stream.generation"),
      GlobalMetrics().RegisterHistogram("stream.epoch_ms", LatencyBucketsMs()),
      GlobalMetrics().RegisterHistogram("stream.publish_ms", LatencyBucketsMs())};
  return metrics;
}

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

VerifiedSource MakeVerified(const World* world) {
  return [world](const IsAPair& pair) {
    return world->IsVerified(pair.concept_id, pair.instance);
  };
}

}  // namespace

StreamPipeline::StreamPipeline(const World* world, StreamOptions options)
    : world_(world),
      options_(std::move(options)),
      extractor_(&sentences_, options_.extractor),
      cleaner_(&sentences_, MakeVerified(world), world->num_concepts(),
               options_.cleaner) {}

Result<StreamEpochStats> StreamPipeline::RunEpoch(std::vector<Sentence> delta,
                                                  bool final_epoch) {
  ++epoch_;
  StreamEpochStats stats;
  stats.epoch = epoch_;
  StreamMetrics& metrics = GetStreamMetrics();
  metrics.epochs.Add();
  auto start = std::chrono::steady_clock::now();
  ScopedSpan span(&GlobalTrace(), "stream.epoch");
  span.AddTag("epoch", static_cast<uint64_t>(epoch_));

  size_t first_new_sentence = sentences_.size();
  {
    ScopedSpan ingest(&GlobalTrace(), "stream.ingest");
    for (Sentence& sentence : delta) sentences_.Add(std::move(sentence));
    extractor_.SyncCorpusGrowth();
  }
  stats.sentences_ingested = sentences_.size() - first_new_sentence;
  stats.corpus_size = sentences_.size();
  metrics.ingested.Add(stats.sentences_ingested);

  bool rebuild = final_epoch && options_.final_full_rebuild;
  if (!rebuild && options_.full_rebuild_every > 0 &&
      epoch_ % options_.full_rebuild_every == 0) {
    rebuild = true;
  }

  if (!rebuild) {
    bool escalate = false;
    Status incremental = RunIncremental(first_new_sentence, &stats, &escalate);
    if (!incremental.ok()) return incremental;
    if (escalate) {
      rebuild = true;
      stats.escalated = true;
    }
  }
  if (rebuild) {
    stats.full_rebuild = true;
    metrics.full_rebuilds.Add();
    Status rebuilt = RunFullRebuild(&stats);
    if (!rebuilt.ok()) return rebuilt;
  }

  Status finished = FinishEpoch(rebuild, &stats);
  if (!finished.ok()) return finished;

  stats.live_pairs = kb_.num_live_pairs();
  metrics.extractions.Add(stats.extractions);
  metrics.rolled_back.Add(stats.records_rolled_back);
  metrics.staleness.Set(static_cast<int64_t>(stale_sentences_));
  metrics.epoch_ms.Observe(ElapsedMs(start));
  span.AddTag("extractions", static_cast<uint64_t>(stats.extractions));
  span.AddTag("dirty", static_cast<uint64_t>(stats.dirty_concepts));
  span.AddTag("rebuild", static_cast<uint64_t>(rebuild ? 1 : 0));
  return stats;
}

Status StreamPipeline::RunIncremental(size_t first_new_sentence,
                                      StreamEpochStats* stats, bool* escalate) {
  (void)first_new_sentence;
  size_t first_record = kb_.num_records();
  {
    ScopedSpan extract(&GlobalTrace(), "stream.extract");
    std::vector<IterationStats> iterations = extractor_.Run(&kb_);
    for (const IterationStats& it : iterations) stats->extractions += it.extractions;
  }

  // Scoped re-detection set: concepts the epoch's records touched, closed
  // over shared live instances (extract/dirty_set.h).
  std::vector<ConceptId> dirty;
  {
    ScopedSpan detect(&GlobalTrace(), "stream.dirty_set");
    dirty = ComputeDirtyConcepts(kb_, first_record, world_->num_concepts());
  }
  stats->dirty_concepts = dirty.size();
  size_t num_concepts = world_->num_concepts();
  if (options_.rebuild_dirty_frac < 1.0 && num_concepts > 0 &&
      static_cast<double>(dirty.size()) >
          options_.rebuild_dirty_frac * static_cast<double>(num_concepts)) {
    // The epoch is effectively global; a rebuild costs about the same and
    // retires accumulated drift too.
    *escalate = true;
    return Status::OK();
  }

  {
    ScopedSpan clean(&GlobalTrace(), "stream.clean");
    CleaningReport report = cleaner_.CleanDirty(&kb_, dirty, options_.clean_scope);
    stats->records_rolled_back = report.records_rolled_back;
  }

  // Trigger edges are intra-concept, so cascades stay inside the cleaned
  // concepts: the dirty scope bounds everything this epoch could have
  // corrupted.
  Status valid = kb_.ValidateConcepts(dirty, sentences_.size());
  if (!valid.ok()) return valid;
  stale_sentences_ += stats->sentences_ingested;
  return Status::OK();
}

Status StreamPipeline::RunFullRebuild(StreamEpochStats* stats) {
  ScopedSpan rebuild(&GlobalTrace(), "stream.rebuild");
  KnowledgeBase fresh;
  IterativeExtractor extractor(&sentences_, options_.extractor);
  stats->extractions = 0;
  std::vector<IterationStats> iterations = extractor.Run(&fresh);
  for (const IterationStats& it : iterations) stats->extractions += it.extractions;

  std::vector<ConceptId> scope = options_.clean_scope;
  if (scope.empty()) {
    scope.reserve(world_->num_concepts());
    for (size_t c = 0; c < world_->num_concepts(); ++c) {
      scope.push_back(ConceptId{static_cast<uint32_t>(c)});
    }
  }
  CleaningReport report = cleaner_.Clean(&fresh, scope);
  stats->records_rolled_back = report.records_rolled_back;

  kb_ = std::move(fresh);
  extractor_ = std::move(extractor);
  stale_sentences_ = 0;
  return Status::OK();
}

Status StreamPipeline::FinishEpoch(bool full_rebuild, StreamEpochStats* stats) {
  // Re-apply the epoch's mutations through the provenance log — the same
  // replay path checkpoint restore uses — so the served state is provably
  // reconstructible from records alone; rebuild epochs add the full
  // invariant check with world/corpus bounds.
  {
    ScopedSpan validate(&GlobalTrace(), "stream.validate");
    Result<KnowledgeBase> replayed = KnowledgeBase::FromRecords(kb_.records());
    if (!replayed.ok()) return replayed.status();
    if (full_rebuild) {
      Status valid = replayed->Validate(world_->num_concepts(), sentences_.size());
      if (!valid.ok()) return valid;
    }
    kb_ = std::move(*replayed);
  }

  if (options_.publish_dir.empty() && options_.epoch_snapshot_dir.empty()) {
    return Status::OK();
  }

  StreamMetrics& metrics = GetStreamMetrics();
  auto start = std::chrono::steady_clock::now();
  ScopedSpan publish(&GlobalTrace(), "stream.publish");
  SnapshotParts parts = CompileSnapshotParts(kb_, *world_, nullptr, options_.snapshot);
  Result<std::string> image = BuildSnapshotImage(parts);
  if (!image.ok()) return image.status();

  if (!options_.epoch_snapshot_dir.empty()) {
    Status wrote = PublishSnapshotImage(
        *image, options_.epoch_snapshot_dir + "/epoch-" + std::to_string(epoch_) + ".bin");
    if (!wrote.ok()) return wrote;
  }

  if (!options_.publish_dir.empty()) {
    uint64_t gen = generation_ + 1;
    bool as_delta = has_published_ && !full_rebuild;
    if (as_delta) {
      Result<SnapshotDelta> delta = DiffSnapshotParts(last_parts_, parts);
      if (!delta.ok()) return delta.status();
      delta->base_generation = generation_;
      delta->base_crc32 = last_crc_;
      delta->generation = gen;
      Status wrote = WriteSnapshotDeltaFile(
          *delta, options_.publish_dir + "/delta-" + std::to_string(gen) + ".bin");
      if (!wrote.ok()) return wrote;
      metrics.published_delta.Add();
      stats->published_delta = true;
    } else {
      Status wrote = PublishSnapshotImage(
          *image, options_.publish_dir + "/snap-" + std::to_string(gen) + ".bin");
      if (!wrote.ok()) return wrote;
      metrics.published_full.Add();
    }
    generation_ = gen;
    stats->generation = gen;
    last_parts_ = std::move(parts);
    last_crc_ = Crc32Of(*image);
    has_published_ = true;
    metrics.generation.Set(static_cast<int64_t>(gen));
  }
  metrics.publish_ms.Observe(ElapsedMs(start));
  return Status::OK();
}

Result<std::string> StreamPipeline::BuildImage() const {
  SnapshotParts parts = CompileSnapshotParts(kb_, *world_, nullptr, options_.snapshot);
  return BuildSnapshotImage(parts);
}

}  // namespace semdrift
