#include "corpus/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "corpus/renderer.h"

namespace semdrift {

namespace {

/// How an instance list is sampled from a concept's members.
enum class ListSampling {
  /// Popularity-weighted (head-heavy) — the unambiguous / core channel.
  kPopularity,
  /// Uniform over the tail (popularity ranks past the head zone) — the
  /// ambiguous channel. Tail items are the ones iteration 1 has not seen,
  /// which is what leaves ambiguous sentences to later iterations and makes
  /// wrong attachments productive.
  kTail,
};

/// Samples `count` distinct members of `c`. `forced` (if valid) is always
/// included. Returns fewer than `count` when the concept is small.
std::vector<InstanceId> SampleList(const World& world, ConceptId c, int count,
                                   ListSampling sampling, InstanceId forced,
                                   Rng* rng) {
  const auto& members = world.Members(c);
  const auto& weights = world.MemberWeights(c);
  std::vector<InstanceId> list;
  std::unordered_set<uint32_t> chosen;
  if (forced.valid()) {
    list.push_back(forced);
    chosen.insert(forced.value);
  }
  size_t tail_start = std::min(members.size() - 1, members.size() / 2);
  int guard = 0;
  while (static_cast<int>(list.size()) < count && guard++ < 50 * count) {
    size_t idx;
    if (sampling == ListSampling::kTail && !rng->NextBool(0.15)) {
      idx = tail_start + rng->NextBounded(members.size() - tail_start);
    } else {
      // Popularity-weighted; tail lists also mix in some popular items (a
      // real list about a topic usually names a famous example too).
      idx = rng->NextDiscrete(weights);
    }
    if (!chosen.insert(members[idx].value).second) continue;
    list.push_back(members[idx]);
  }
  // Put the forced polyseme at a random position so it is not a giveaway.
  if (forced.valid() && list.size() > 1) {
    size_t pos = rng->NextBounded(list.size());
    std::swap(list[0], list[pos]);
  }
  return list;
}

}  // namespace

Status ValidateCorpusSpec(const CorpusSpec& spec) {
  auto probability = [](double v, const char* field) {
    if (!(v >= 0.0 && v <= 1.0)) {  // NaN fails both comparisons.
      return Status::InvalidArgument(std::string("CorpusSpec.") + field +
                                     " must be in [0, 1]");
    }
    return Status::OK();
  };
  if (spec.num_sentences < 0) {
    return Status::InvalidArgument("CorpusSpec.num_sentences must be >= 0");
  }
  if (Status s = probability(spec.frac_ambiguous, "frac_ambiguous"); !s.ok()) return s;
  if (Status s = probability(spec.polyseme_link_prob, "polyseme_link_prob"); !s.ok()) return s;
  if (Status s = probability(spec.misparse_rate, "misparse_rate"); !s.ok()) return s;
  if (Status s = probability(spec.misparse_late_frac, "misparse_late_frac"); !s.ok()) return s;
  if (Status s = probability(spec.wrongfact_rate, "wrongfact_rate"); !s.ok()) return s;
  if (Status s = probability(spec.ambiguous_uniform_prob, "ambiguous_uniform_prob"); !s.ok()) return s;
  if (Status s = probability(spec.other_than_prob, "other_than_prob"); !s.ok()) return s;
  if (spec.min_list < 1) {
    return Status::InvalidArgument("CorpusSpec.min_list must be >= 1");
  }
  if (spec.max_list < spec.min_list) {
    return Status::InvalidArgument("CorpusSpec.max_list must be >= min_list");
  }
  if (!std::isfinite(spec.concept_zipf) || spec.concept_zipf < 0.0) {
    return Status::InvalidArgument(
        "CorpusSpec.concept_zipf must be finite and >= 0");
  }
  return Status::OK();
}

Result<Corpus> GenerateCorpusChecked(const World& world, const CorpusSpec& spec,
                                     Rng* rng) {
  Status valid = ValidateCorpusSpec(spec);
  if (!valid.ok()) return valid;
  return GenerateCorpus(world, spec, rng);
}

Corpus GenerateCorpus(const World& world, const CorpusSpec& spec, Rng* rng) {
  assert(ValidateCorpusSpec(spec).ok());
  Corpus corpus;
  SentenceRenderer renderer(&world);

  // Sentence allocation across concepts: Zipf over concept index, so the
  // named evaluation concepts (index 0..) are the popular, drift-prone ones.
  std::vector<double> concept_weights(world.num_concepts());
  for (size_t ci = 0; ci < concept_weights.size(); ++ci) {
    concept_weights[ci] =
        1.0 / std::pow(static_cast<double>(ci + 1), spec.concept_zipf);
  }

  auto emit = [&](Sentence sentence, SentenceKind kind, ConceptId true_concept,
                  InstanceId polyseme = InstanceId()) {
    corpus.sentences.Add(std::move(sentence));
    corpus.truths.push_back(SentenceTruth{kind, true_concept, polyseme});
  };

  for (int si = 0; si < spec.num_sentences; ++si) {
    ConceptId head(static_cast<uint32_t>(rng->NextDiscrete(concept_weights)));
    if (world.Members(head).size() < 2) continue;
    int list_len = static_cast<int>(rng->NextInt(spec.min_list, spec.max_list));

    double roll = rng->NextDouble();
    if (roll < spec.wrongfact_rate) {
      // Wrong-fact: unambiguous sentence about `head` with one foreign
      // instance smuggled in from a confusable concept.
      const auto& confusables = world.Confusables(head);
      if (confusables.empty()) continue;
      ConceptId donor = confusables[rng->NextBounded(confusables.size())];
      const auto& donor_members = world.Members(donor);
      if (donor_members.empty()) continue;
      InstanceId foreign = donor_members[rng->NextBounded(donor_members.size())];
      if (world.IsTrueMember(head, foreign)) continue;  // Not foreign after all.
      std::vector<InstanceId> list = SampleList(
          world, head, list_len - 1, ListSampling::kPopularity, InstanceId(), rng);
      list.insert(list.begin() + rng->NextBounded(list.size() + 1), foreign);
      Sentence s;
      s.candidate_concepts = {head};
      s.candidate_instances = list;
      if (spec.render_text) s.text = renderer.RenderUnambiguous(head, list, rng);
      emit(std::move(s), SentenceKind::kWrongFact, head);
      continue;
    }
    roll -= spec.wrongfact_rate;

    if (roll < spec.misparse_rate) {
      // Misparse: an "other than" sentence the parser wrongly committed to
      // the excluded concept. All listed instances (true members of `head`)
      // become false pairs under `excluded`, each supported by this one
      // sentence — the paper's "(cat isA dog)" channel.
      const auto& confusables = world.Confusables(head);
      if (confusables.empty()) continue;
      size_t ex_idx = rng->NextBounded(confusables.size());
      ConceptId excluded = confusables[ex_idx];
      std::vector<InstanceId> list = SampleList(
          world, head, std::min(list_len, 2), ListSampling::kTail, InstanceId(), rng);
      Sentence s;
      if (spec.misparse_late_frac > 0.0 && confusables.size() >= 2 &&
          rng->NextBool(spec.misparse_late_frac)) {
        // Late-burst variant: two wrong candidates leave the attachment to
        // later KB-disambiguated iterations, so the false pairs land as a
        // late noise epoch instead of iteration-1 support-1 singletons.
        size_t other_idx = rng->NextBounded(confusables.size() - 1);
        if (other_idx >= ex_idx) ++other_idx;
        s.candidate_concepts = {excluded, confusables[other_idx]};
      } else {
        s.candidate_concepts = {excluded};  // The wrong commitment.
      }
      s.candidate_instances = list;
      if (spec.render_text) s.text = renderer.RenderOtherThan(head, excluded, list, rng);
      emit(std::move(s), SentenceKind::kMisparse, head);
      continue;
    }
    roll -= spec.misparse_rate;

    if (roll < spec.frac_ambiguous) {
      // Ambiguous: head is the true topic; an adjacent concept competes for
      // the "such as" attachment. Polyseme-linked sentences mention a guest
      // polyseme of the head concept ("food ... such as pork, beef and
      // chicken") whose famous home is the adjacent concept ("animal") —
      // the Intentional-DP drift channel.
      ListSampling sampling = rng->NextBool(spec.ambiguous_uniform_prob)
                                  ? ListSampling::kTail
                                  : ListSampling::kPopularity;
      ConceptId adjacent;
      InstanceId forced;
      const auto& guests = world.PolysemesIntoGuest(head);
      if (!guests.empty() && rng->NextBool(spec.polyseme_link_prob)) {
        const auto& link = guests[rng->NextBounded(guests.size())];
        adjacent = link.home;
        forced = link.instance;
      } else {
        const auto& confusables = world.Confusables(head);
        if (confusables.empty()) continue;
        adjacent = confusables[rng->NextBounded(confusables.size())];
      }
      std::vector<InstanceId> list =
          SampleList(world, head, list_len, sampling, forced, rng);
      if (list.size() < 2) continue;
      Sentence s;
      s.candidate_concepts = {head, adjacent};  // Adjacent (last) hugs "such as".
      s.candidate_instances = list;
      if (spec.render_text) {
        s.text = rng->NextBool(spec.other_than_prob)
                     ? renderer.RenderOtherThan(head, adjacent, list, rng)
                     : renderer.RenderAmbiguous(head, adjacent, list, rng);
      }
      emit(std::move(s), SentenceKind::kAmbiguous, head, forced);
      continue;
    }

    // Unambiguous: the iteration-1 core channel.
    std::vector<InstanceId> list = SampleList(world, head, list_len,
                                              ListSampling::kPopularity,
                                              InstanceId(), rng);
    if (list.empty()) continue;
    Sentence s;
    s.candidate_concepts = {head};
    s.candidate_instances = list;
    if (spec.render_text) s.text = renderer.RenderUnambiguous(head, list, rng);
    emit(std::move(s), SentenceKind::kUnambiguous, head);
  }

  return corpus;
}

}  // namespace semdrift
