file(REMOVE_RECURSE
  "CMakeFiles/semdrift_mutex.dir/mutex_index.cc.o"
  "CMakeFiles/semdrift_mutex.dir/mutex_index.cc.o.d"
  "libsemdrift_mutex.a"
  "libsemdrift_mutex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semdrift_mutex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
