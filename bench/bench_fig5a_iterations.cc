// Reproduces Fig. 5(a): number of distinct isA pairs and their precision
// per extraction iteration. Shape to match: pairs grow severalfold after
// iteration 1 while precision collapses from >0.9 toward ~0.5-0.7.

#include <iostream>

#include "bench_common.h"
#include "eval/metrics.h"
#include "util/table_writer.h"

using namespace semdrift;

int main() {
  auto experiment = bench::BuildBenchExperiment();
  std::vector<ConceptId> all = experiment->AllConcepts();
  std::vector<ConceptId> eval = experiment->EvalConcepts();

  SeriesWriter series(
      "Fig. 5(a): the number and precision of isA pairs per iteration");
  series.SetColumns({"iteration", "extractions", "distinct_pairs",
                     "precision_all", "precision_eval_concepts"});
  KnowledgeBase kb = experiment->Extract(
      nullptr, [&](const IterationStats& stats, const KnowledgeBase& snapshot) {
        series.AddPoint({static_cast<double>(stats.iteration),
                         static_cast<double>(stats.extractions),
                         static_cast<double>(stats.distinct_pairs),
                         LivePairPrecision(experiment->truth(), snapshot, all),
                         LivePairPrecision(experiment->truth(), snapshot, eval)});
      });
  series.Print(std::cout, 4);
  (void)series.WriteCsv("bench_fig5a.csv");
  return 0;
}
