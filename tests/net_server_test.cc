#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "net/net_client.h"
#include "net/router.h"
#include "net/server.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "serve/snapshot_manager.h"
#include "testing/random_structures.h"

namespace semdrift {
namespace {

class NetServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    World world = property::RandomWorld(11);
    size_t ns = 0;
    KnowledgeBase kb_a = property::RandomKb(world, 11, &ns);
    KnowledgeBase kb_b = property::RandomKb(world, 1011, &ns);
    auto image_a = BuildSnapshotImage(
        CompileSnapshotParts(kb_a, world, nullptr, SnapshotOptions{}));
    auto image_b = BuildSnapshotImage(
        CompileSnapshotParts(kb_b, world, nullptr, SnapshotOptions{}));
    ASSERT_TRUE(image_a.ok() && image_b.ok());
    image_a_ = new std::string(std::move(*image_a));
    image_b_ = new std::string(std::move(*image_b));
    auto reader = SnapshotReader::OpenFromBuffer(*image_a_, "server-fixture");
    ASSERT_TRUE(reader.ok());
    reader_ = new SnapshotReader(std::move(*reader));
    workload_ = new std::vector<std::string>();
    for (uint32_t c = 0; c < reader_->num_concepts(); ++c) {
      const std::string name(reader_->ConceptName(c));
      workload_->push_back("instances-of\t" + name + "\t4");
      if (reader_->ConceptEnd(c) > reader_->ConceptBegin(c)) {
        const std::string member(
            reader_->InstanceName(reader_->PairInstance(reader_->ConceptBegin(c))));
        workload_->push_back("is-a\t" + member + "\t" + name);
        workload_->push_back("concepts-of\t" + member);
      }
    }
    ASSERT_GT(workload_->size(), 4u);
  }
  static void TearDownTestSuite() {
    delete image_a_;
    delete image_b_;
    delete reader_;
    delete workload_;
  }

  static std::string* image_a_;
  static std::string* image_b_;
  static SnapshotReader* reader_;
  static std::vector<std::string>* workload_;
};

std::string* NetServerTest::image_a_ = nullptr;
std::string* NetServerTest::image_b_ = nullptr;
SnapshotReader* NetServerTest::reader_ = nullptr;
std::vector<std::string>* NetServerTest::workload_ = nullptr;

TEST_F(NetServerTest, RoundTripsAreByteIdenticalToDirectEngine) {
  RouterOptions router_options;
  router_options.num_shards = 2;
  ShardRouter router(reader_, router_options);
  NetServer server(&router);
  ASSERT_TRUE(server.Start().ok());

  auto client = LineClient::Connect(server.endpoint());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  QueryEngine direct(reader_);
  for (const std::string& line : *workload_) {
    auto response = client->RoundTrip(line);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(*response, direct.Answer(line)) << line;
  }
}

TEST_F(NetServerTest, PipelinedResponsesComeBackInRequestOrder) {
  RouterOptions router_options;
  router_options.num_shards = 4;  // Shards complete out of order...
  ShardRouter router(reader_, router_options);
  NetServer server(&router);
  ASSERT_TRUE(server.Start().ok());

  auto client = LineClient::Connect(server.endpoint());
  ASSERT_TRUE(client.ok());
  // ...but the connection's reorder buffer must restore request order.
  for (int round = 0; round < 3; ++round) {
    for (const std::string& line : *workload_) {
      ASSERT_TRUE(client->SendLine(line).ok());
    }
    QueryEngine direct(reader_);
    for (const std::string& line : *workload_) {
      auto response = client->ReadLine();
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      EXPECT_EQ(*response, direct.Answer(line)) << line;
    }
  }
}

TEST_F(NetServerTest, OversizedLineAnsweredInSlotWithoutDesync) {
  RouterOptions router_options;
  ShardRouter router(reader_, router_options);
  NetServerOptions options;
  options.max_line_bytes = 64;
  NetServer server(&router, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = LineClient::Connect(server.endpoint());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendLine("stats").ok());
  ASSERT_TRUE(client->SendLine(std::string(500, 'x')).ok());
  ASSERT_TRUE(client->SendLine("stats").ok());
  auto first = client->ReadLine();
  auto second = client->ReadLine();
  auto third = client->ReadLine();
  ASSERT_TRUE(first.ok() && second.ok() && third.ok());
  EXPECT_EQ(first->rfind("OK\tstats", 0), 0u);
  EXPECT_EQ(*second, "ERR\tline too long (max 64 bytes)");
  EXPECT_EQ(third->rfind("OK\tstats", 0), 0u);
  EXPECT_EQ(server.counters().oversized, 1u);
}

TEST_F(NetServerTest, TrailingUnterminatedLineStillAnswered) {
  RouterOptions router_options;
  ShardRouter router(reader_, router_options);
  NetServer server(&router);
  ASSERT_TRUE(server.Start().ok());
  auto client = LineClient::Connect(server.endpoint());
  ASSERT_TRUE(client.ok());
  // "printf 'metrics\nstats' | nc" style: a complete line, then an
  // unterminated trailing one, then half-close. EOF promotes the residue to
  // a real request.
  ASSERT_TRUE(client->SendRaw("metrics\nstats").ok());
  ASSERT_TRUE(client->ShutdownWrite().ok());
  auto first = client->ReadLine();
  auto second = client->ReadLine();
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->rfind("OK\t{", 0), 0u);
  EXPECT_EQ(second->rfind("OK\tstats", 0), 0u);
  // After both responses the server closes the drained half-closed conn.
  EXPECT_FALSE(client->ReadLine().ok());
}

TEST_F(NetServerTest, AbruptDisconnectMidResponseIsContained) {
  RouterOptions router_options;
  router_options.num_shards = 2;
  ShardRouter router(reader_, router_options);
  NetServer server(&router);
  ASSERT_TRUE(server.Start().ok());

  // Fire-and-quit clients: pipeline requests, slam the connection shut
  // before reading. The server must neither crash nor leak the responses.
  for (int i = 0; i < 16; ++i) {
    auto client = LineClient::Connect(server.endpoint());
    ASSERT_TRUE(client.ok());
    for (const std::string& line : *workload_) {
      if (!client->SendLine(line).ok()) break;
    }
    client->Close();
  }
  // A fresh connection still gets clean service afterwards.
  auto survivor = LineClient::Connect(server.endpoint());
  ASSERT_TRUE(survivor.ok());
  QueryEngine direct(reader_);
  auto response = survivor->RoundTrip((*workload_)[0]);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(*response, direct.Answer((*workload_)[0]));
  // Wait for the loop to observe the disconnects (closed-counter catch-up
  // is asynchronous).
  for (int spin = 0; spin < 200 && server.counters().closed < 16; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server.counters().closed, 16u);
}

TEST_F(NetServerTest, BackpressurePausesReadsWithoutLosingOrder) {
  RouterOptions router_options;
  ShardRouter router(reader_, router_options);
  NetServerOptions options;
  options.max_inflight_per_conn = 4;  // Tiny: force pauses quickly.
  NetServer server(&router, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = LineClient::Connect(server.endpoint());
  ASSERT_TRUE(client.ok());
  const int kRequests = 200;
  std::thread writer([&] {
    for (int i = 0; i < kRequests; ++i) {
      ASSERT_TRUE(
          client->SendLine((*workload_)[i % workload_->size()]).ok());
    }
  });
  QueryEngine direct(reader_);
  for (int i = 0; i < kRequests; ++i) {
    auto response = client->ReadLine();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(*response, direct.Answer((*workload_)[i % workload_->size()]));
  }
  writer.join();
  EXPECT_GT(server.counters().backpressure_pauses, 0u);
}

TEST_F(NetServerTest, ShedsWithOverloadedUnderAdmissionLadder) {
  RouterOptions router_options;
  router_options.num_shards = 1;  // One queue: the park recipe is exact.
  router_options.batch.start_paused = true;
  router_options.batch.deadline_budget_ms = 10;
  router_options.batch.overload_window_ms = 10000;  // Hold the level for the test.
  router_options.batch.default_deadline_ms = 0;
  ShardRouter router(reader_, router_options);
  NetServer server(&router);
  ASSERT_TRUE(server.Start().ok());

  auto client = LineClient::Connect(server.endpoint());
  ASSERT_TRUE(client.ok());
  // Park pipelined requests behind the paused shard dispatcher for well over
  // the budget, then release: their recorded waits push p99 past the
  // full-budget rung, engaging shed level 2.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client->SendLine((*workload_)[i % workload_->size()]).ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  router.ResumeAll();
  for (int i = 0; i < 8; ++i) {
    auto response = client->ReadLine();
    ASSERT_TRUE(response.ok());
    EXPECT_NE(response->rfind("OVERLOADED", 0), 0u);  // Admitted pre-overload.
  }
  // Socket requests run at kNormal: the next one must be refused with the
  // canonical OVERLOADED line (and exit-code-4 contract downstream).
  auto shed = client->RoundTrip((*workload_)[0]);
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(*shed,
            "OVERLOADED\tqueue-wait p99 over deadline budget; request shed");
}

TEST_F(NetServerTest, EightClientSoakSurvivesHotSwapMidLoad) {
  const std::string dir = ::testing::TempDir() + "/net_soak";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  ASSERT_TRUE(PublishSnapshotImage(*image_a_, dir + "/snap-1.bin").ok());

  SnapshotManagerOptions manager_options;
  manager_options.dir = dir;
  manager_options.backoff_base_ms = 0;
  SnapshotManager manager(manager_options);
  ASSERT_TRUE(manager.LoadInitial().ok());

  RouterOptions router_options;
  router_options.num_shards = 4;
  ShardRouter router(&manager, router_options);
  NetServer server(&router);
  ASSERT_TRUE(server.Start().ok());

  // Answers must always match exactly one of the two generations — a torn
  // response (half A, half B) or a dropped/misordered line fails the run.
  auto reader_b = SnapshotReader::OpenFromBuffer(*image_b_, "gen2");
  ASSERT_TRUE(reader_b.ok());
  QueryEngine engine_a(reader_);
  QueryEngine engine_b(&*reader_b);
  std::vector<std::string> answers_a, answers_b;
  for (const std::string& line : *workload_) {
    answers_a.push_back(engine_a.Answer(line));
    answers_b.push_back(engine_b.Answer(line));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> checked{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      auto client = LineClient::Connect(server.endpoint());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      size_t i = static_cast<size_t>(c);
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t idx = i++ % workload_->size();
        auto response = client->RoundTrip((*workload_)[idx]);
        if (!response.ok()) {
          failures.fetch_add(1);
          return;
        }
        if (*response != answers_a[idx] && *response != answers_b[idx]) {
          failures.fetch_add(1);
          return;
        }
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Swap generations under load, repeatedly, in both directions.
  for (int swap = 2; swap <= 5; ++swap) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    const std::string& image = (swap % 2 == 0) ? *image_b_ : *image_a_;
    ASSERT_TRUE(
        PublishSnapshotImage(image, dir + "/snap-" + std::to_string(swap) + ".bin")
            .ok());
    manager.Poll();
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(checked.load(), 100u);
  EXPECT_EQ(router.Snapshot().fanout_mismatch, 0u);
  EXPECT_EQ(manager.generation(), 5u);
}

}  // namespace
}  // namespace semdrift
