#ifndef SEMDRIFT_DP_DETECTOR_H_
#define SEMDRIFT_DP_DETECTOR_H_

#include <memory>
#include <vector>

#include "dp/features.h"
#include "dp/seed_labeling.h"
#include "ml/kpca.h"
#include "ml/manifold.h"
#include "ml/multitask.h"
#include "ml/random_forest.h"
#include "text/ids.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/supervisor.h"

namespace semdrift {

/// A trained DP detector: maps an instance's feature vector (under a given
/// concept) to one of the three categories. Implementations are immutable
/// after training; Classify is const and thread-compatible.
class DpDetector {
 public:
  virtual ~DpDetector() = default;

  /// Classifies the instance whose features under concept `c` are `f`.
  virtual DpClass Classify(ConceptId c, const FeatureVector& f) const = 0;
};

/// Per-concept training material for detector learning: the live instances,
/// their features, and their seed labels (kUnlabeled where RULES 1-3 said
/// nothing — the unlabeled mass the semi-supervised methods exploit).
struct ConceptTrainingData {
  ConceptId concept_id;
  std::vector<InstanceId> instances;
  std::vector<FeatureVector> features;
  std::vector<DpClass> seed_labels;
};

using TrainingData = std::vector<ConceptTrainingData>;

/// Gathers training data for the given concepts from live KB state.
TrainingData CollectTrainingData(const KnowledgeBase& kb, FeatureExtractor* features,
                                 const SeedLabeler& seeds,
                                 const std::vector<ConceptId>& concepts);

/// True when any concept carries at least one seed label.
bool HasLabeled(const TrainingData& data);

/// CollectTrainingData under supervision: each concept's gather runs in a
/// StageGuard (deadline + retries + planned faults); instances whose feature
/// vector contains NaN/Inf are dropped with provenance instead of poisoning
/// the pool; exhausted concepts are quarantined (or, fail-fast, abort with
/// the error). With no faults and no failures the result is bit-identical
/// to CollectTrainingData.
Result<TrainingData> CollectTrainingDataSupervised(
    const KnowledgeBase& kb, FeatureExtractor* features, const SeedLabeler& seeds,
    const std::vector<ConceptId>& concepts, Supervisor* supervisor);

/// The detector family ladder of Table 4.
enum class DetectorKind {
  kAdHoc1 = 0,  // Threshold on f1 (Property 1).
  kAdHoc2,      // Threshold on f2 (Property 2).
  kAdHoc3,      // Threshold on f3 (Property 3).
  kAdHoc4,      // Threshold on f4 (Property 4).
  kSupervised,  // Random forest on the raw features.
  kSemiSupervised,          // KPCA + manifold regularizer (Eq. 15).
  kSemiSupervisedMultiTask, // + l2,1 multi-task term (Eq. 18 / Algorithm 1).
};

/// Knobs shared by the learned detectors.
struct DetectorTrainOptions {
  KpcaOptions kpca;
  ManifoldOptions manifold;
  MultiTaskOptions multitask;
  RandomForestOptions forest;
  /// Unlabeled instances sampled per concept into the KPCA/manifold pool.
  int max_unlabeled_per_concept = 40;
  /// Hard cap on the pooled sample (eigen decomposition is O(n^3)).
  int max_pool_samples = 600;
  uint64_t seed = 7;
};

/// Short stable name, e.g. "ad-hoc-3", "semi-supervised-multitask".
const char* DetectorKindName(DetectorKind kind);

/// Trains a detector of the requested kind from `data`. For the ad-hoc and
/// supervised kinds only the labeled subset is used; the semi-supervised
/// kinds also consume unlabeled rows. Returns nullptr when `data` contains
/// no labeled instance at all.
std::unique_ptr<DpDetector> TrainDetector(DetectorKind kind, const TrainingData& data,
                                          const DetectorTrainOptions& options);

/// What TrainDetectorSupervised produced. `detector` may still be nullptr
/// when there was nothing to train on (no labeled seeds — same contract as
/// TrainDetector) or when even the fallback ladder failed.
struct SupervisedTrainResult {
  std::unique_ptr<DpDetector> detector;
  /// The requested kind failed and an ad-hoc fallback was trained instead.
  bool fell_back = false;
  int retries = 0;
  std::string detail;
};

/// TrainDetector under supervision: the train runs in a StageGuard keyed by
/// ComputeFaultPlan::kGlobalScope (training pools across concepts — it is a
/// global stage). A failed or nullptr-producing train is retried, then
/// degraded down the ad-hoc ladder (kAdHoc3, kAdHoc1) — the simplest
/// detectors with no numeric fitting to fail — and recorded as a detector
/// fallback in the health report. Fail-fast mode (quarantine off) returns
/// the error instead.
Result<SupervisedTrainResult> TrainDetectorSupervised(
    DetectorKind kind, const TrainingData& data, const DetectorTrainOptions& options,
    Supervisor* supervisor);

/// Single-feature threshold detector (the Ad-hoc rows of Table 4): DP when
/// the feature falls on the learned side of the threshold; DP type decided
/// by a secondary threshold on f3 (Accidental DPs score low, Property 3).
class AdHocDetector : public DpDetector {
 public:
  AdHocDetector(int property_index, double threshold, bool dp_below,
                double type_threshold)
      : property_(property_index),
        threshold_(threshold),
        dp_below_(dp_below),
        type_threshold_(type_threshold) {}

  DpClass Classify(ConceptId c, const FeatureVector& f) const override;

  int property_index() const { return property_; }
  double threshold() const { return threshold_; }
  bool dp_below() const { return dp_below_; }

 private:
  int property_;  // 0-based feature index.
  double threshold_;
  bool dp_below_;
  double type_threshold_;
};

/// Random-forest detector over the raw 4-d features, pooled across concepts.
class ForestDetector : public DpDetector {
 public:
  explicit ForestDetector(RandomForest forest) : forest_(std::move(forest)) {}

  DpClass Classify(ConceptId c, const FeatureVector& f) const override;

 private:
  RandomForest forest_;
};

/// KPCA + linear per-concept classifiers (Eq. 15 or Algorithm 1). Concepts
/// without their own classifier (no labeled data) fall back to the mean
/// classifier across tasks — the cross-concept knowledge-sharing the paper
/// motivates for tail concepts.
class LinearKpcaDetector : public DpDetector {
 public:
  LinearKpcaDetector(KernelPca kpca, std::vector<std::pair<uint32_t, Matrix>> w,
                     Matrix fallback);

  DpClass Classify(ConceptId c, const FeatureVector& f) const override;

  /// Number of per-concept classifiers (tasks) trained.
  size_t num_tasks() const { return w_.size(); }

 private:
  KernelPca kpca_;
  std::vector<std::pair<uint32_t, Matrix>> w_;  // Sorted by concept value.
  Matrix fallback_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_DP_DETECTOR_H_
