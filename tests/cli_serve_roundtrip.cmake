# CTest script: run --snapshot-out -> snapshot-verify -> serve -> scripted
# queries -> expected-answers diff. The expected answers come from `semdrift
# query` one-shots over the same snapshot, so the serve path (batcher + line
# protocol on stdin/stdout) must agree byte for byte with direct engine
# answers — including top-k-by-score ordering.
file(MAKE_DIRECTORY ${WORK_DIR})
execute_process(
  COMMAND ${CLI} generate --scale 0.05 --seed 11
          --world ${WORK_DIR}/w.tsv --corpus ${WORK_DIR}/c.tsv
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed (${rc}): ${out} ${err}")
endif()

execute_process(
  COMMAND ${CLI} run --world ${WORK_DIR}/w.tsv --corpus ${WORK_DIR}/c.tsv
          --out ${WORK_DIR}/t.tsv --snapshot-out ${WORK_DIR}/s.bin
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run failed (${rc}): ${out} ${err}")
endif()
# Satellite contract: a successful run names the artifacts it wrote.
if(NOT out MATCHES "taxonomy -> ")
  message(FATAL_ERROR "run output missing taxonomy path: ${out}")
endif()
if(NOT out MATCHES "snapshot -> ")
  message(FATAL_ERROR "run output missing snapshot path: ${out}")
endif()

execute_process(
  COMMAND ${CLI} snapshot-verify ${WORK_DIR}/s.bin
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "snapshot-verify failed on a fresh snapshot (${rc}): ${err}")
endif()

# Damaged files must fail verification with a non-zero exit (deep seeded
# corruption is covered by serve_snapshot_test; this guards the CLI exit
# code contract).
file(WRITE ${WORK_DIR}/not-a-snapshot.bin "this is not a snapshot\n")
execute_process(
  COMMAND ${CLI} snapshot-verify ${WORK_DIR}/not-a-snapshot.bin
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "snapshot-verify accepted garbage")
endif()

# Pull a real live (concept, instance) pair from the exported taxonomy so
# the session exercises OK answers, not just misses.
file(STRINGS ${WORK_DIR}/t.tsv taxonomy_lines LIMIT_COUNT 2)
list(GET taxonomy_lines 1 first_pair)
string(REPLACE "\t" ";" first_pair_fields "${first_pair}")
list(GET first_pair_fields 0 concept_name)
list(GET first_pair_fields 1 instance_name)

set(queries
  "instances-of\t${concept_name}\t5"
  "instances-of\t${concept_name}"
  "concepts-of\t${instance_name}"
  "is-a\t${instance_name}\t${concept_name}"
  "drift-score\t${instance_name}\t${concept_name}"
  "mutex\t${concept_name}\tasian country"
  "drift-score\tno such instance\t${concept_name}"
  "instances-of\tno such concept"
)
set(script "")
set(expected "")
foreach(q IN LISTS queries)
  string(APPEND script "${q}\n")
  string(REPLACE "\t" ";" argv "${q}")
  execute_process(
    COMMAND ${CLI} query --snapshot ${WORK_DIR}/s.bin ${argv}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  # Non-zero exits are expected for the NOT_FOUND probes; the printed answer
  # is still the contract being diffed.
  string(APPEND expected "${out}")
endforeach()
string(APPEND script "stats\nquit\n")
file(WRITE ${WORK_DIR}/queries.txt "${script}")

execute_process(
  COMMAND ${CLI} serve --snapshot ${WORK_DIR}/s.bin
  INPUT_FILE ${WORK_DIR}/queries.txt
  OUTPUT_FILE ${WORK_DIR}/served.txt
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve failed (${rc}): ${err}")
endif()

file(READ ${WORK_DIR}/served.txt served)
# The session ends with the stats response; everything before it must equal
# the one-shot answers byte for byte.
string(FIND "${served}" "OK\tstats" stats_at)
if(stats_at EQUAL -1)
  message(FATAL_ERROR "serve session missing stats response: ${served}")
endif()
string(SUBSTRING "${served}" 0 ${stats_at} served_answers)
if(NOT served_answers STREQUAL expected)
  message(FATAL_ERROR "serve answers differ from one-shot answers.\n"
          "served:\n${served_answers}\nexpected:\n${expected}")
endif()

# The first query must actually have answered with instances.
string(REPLACE "\t" ";" first_fields "${expected}")
list(GET first_fields 0 first_status)
if(NOT first_status STREQUAL "OK")
  message(FATAL_ERROR "instances-of on a live concept did not answer OK: ${expected}")
endif()

# The query one-shot must exit non-zero on a miss (scriptability contract).
execute_process(
  COMMAND ${CLI} query --snapshot ${WORK_DIR}/s.bin instances-of "no such concept"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(rc EQUAL 0)
  message(FATAL_ERROR "query exit code should be non-zero for NOT_FOUND")
endif()
