#ifndef SEMDRIFT_RANK_CONCEPT_GRAPH_H_
#define SEMDRIFT_RANK_CONCEPT_GRAPH_H_

#include <unordered_map>
#include <vector>

#include "kb/knowledge_base.h"
#include "text/ids.h"

namespace semdrift {

/// Per-concept instance graph (Sec. 3.1, feature 3): one node per live
/// instance of the concept, one weighted directed edge from a trigger
/// instance to each sub-instance it licensed (weight = number of live
/// extraction records realizing the edge). Iteration-1 instances are the
/// graph's *roots*, weighted by their iteration-1 support — the restart
/// distribution of the random walk.
class ConceptGraph {
 public:
  /// Builds the graph for `c` from the KB's live records.
  static ConceptGraph Build(const KnowledgeBase& kb, ConceptId c);

  size_t num_nodes() const { return nodes_.size(); }

  InstanceId node(size_t index) const { return nodes_[index]; }

  /// Node index of an instance; SIZE_MAX when absent.
  size_t IndexOf(InstanceId e) const;

  /// Weighted out-edges of a node: (target index, weight).
  const std::vector<std::pair<uint32_t, double>>& OutEdges(size_t index) const {
    return out_edges_[index];
  }

  /// Restart weights, indexed by node; zero for non-root nodes.
  const std::vector<double>& root_weights() const { return root_weights_; }

  /// Live pair support per node (the Frequency model's raw score).
  const std::vector<double>& node_counts() const { return node_counts_; }

 private:
  std::vector<InstanceId> nodes_;
  std::unordered_map<InstanceId, size_t> index_;
  std::vector<std::vector<std::pair<uint32_t, double>>> out_edges_;
  std::vector<double> root_weights_;
  std::vector<double> node_counts_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_RANK_CONCEPT_GRAPH_H_
