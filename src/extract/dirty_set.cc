#include "extract/dirty_set.h"

#include <algorithm>

namespace semdrift {

InstanceConceptCsr BuildInstanceConceptCsr(const KnowledgeBase& kb,
                                           size_t num_concepts) {
  // Pass 1: live degree per instance (and the instance id bound).
  size_t max_instance = 0;
  std::vector<std::pair<uint32_t, uint32_t>> edges;  // (instance, concept)
  for (size_t c = 0; c < num_concepts; ++c) {
    ConceptId cid{static_cast<uint32_t>(c)};
    for (InstanceId e : kb.LiveInstancesOf(cid)) {
      edges.emplace_back(e.value, cid.value);
      if (e.value + 1 > max_instance) max_instance = e.value + 1;
    }
  }

  InstanceConceptCsr csr;
  csr.rows.assign(max_instance + 1, 0);
  for (const auto& [e, c] : edges) ++csr.rows[e + 1];
  for (size_t i = 1; i < csr.rows.size(); ++i) csr.rows[i] += csr.rows[i - 1];

  // Pass 2: fill columns. Sorting by (instance, concept) groups each row
  // contiguously in instance order, so a sequential write lands every edge in
  // its row slice with columns sorted ascending.
  std::sort(edges.begin(), edges.end());
  csr.concepts.resize(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) csr.concepts[i] = edges[i].second;
  return csr;
}

std::vector<ConceptId> ComputeDirtyConcepts(const KnowledgeBase& kb,
                                            size_t first_record,
                                            size_t num_concepts) {
  std::vector<bool> dirty(num_concepts, false);
  const std::vector<ExtractionRecord>& records = kb.records();
  if (first_record >= records.size()) return {};

  InstanceConceptCsr csr = BuildInstanceConceptCsr(kb, num_concepts);
  for (size_t r = first_record; r < records.size(); ++r) {
    const ExtractionRecord& record = records[r];
    if (record.concept_id.value < num_concepts) dirty[record.concept_id.value] = true;
    for (InstanceId e : record.instances) {
      if (e.value >= csr.num_instances()) continue;
      for (uint64_t i = csr.rows[e.value]; i < csr.rows[e.value + 1]; ++i) {
        dirty[csr.concepts[i]] = true;
      }
    }
  }

  std::vector<ConceptId> out;
  for (size_t c = 0; c < num_concepts; ++c) {
    if (dirty[c]) out.push_back(ConceptId{static_cast<uint32_t>(c)});
  }
  return out;
}

}  // namespace semdrift
