#ifndef SEMDRIFT_CORPUS_RENDERER_H_
#define SEMDRIFT_CORPUS_RENDERER_H_

#include <string>
#include <vector>

#include "corpus/world.h"
#include "text/ids.h"
#include "util/rng.h"

namespace semdrift {

/// Renders parsed sentence structures to English-like surface text using
/// Hearst "such as" templates. The renderer is the inverse of the Hearst
/// parser (src/extract/hearst_parser.h): parsing a rendered sentence
/// recovers the candidate concepts and instances.
class SentenceRenderer {
 public:
  explicit SentenceRenderer(const World* world) : world_(world) {}

  /// "{filler} {PL C} such as {list} ." — exactly one candidate concept.
  std::string RenderUnambiguous(ConceptId c, const std::vector<InstanceId>& list,
                                Rng* rng) const;

  /// "{PL head} {prep} {PL adjacent} , such as {list} ." — two candidate
  /// concepts; `adjacent` sits next to "such as" (the default syntactic
  /// attachment), `head` is the true topic of the list.
  std::string RenderAmbiguous(ConceptId head, ConceptId adjacent,
                              const std::vector<InstanceId>& list, Rng* rng) const;

  /// "{PL head} other than {PL excluded} such as {list} ." — the paper's
  /// accidental-DP trap shape (Sec. 2.2).
  std::string RenderOtherThan(ConceptId head, ConceptId excluded,
                              const std::vector<InstanceId>& list, Rng* rng) const;

 private:
  std::string RenderList(const std::vector<InstanceId>& list, Rng* rng) const;

  const World* world_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_CORPUS_RENDERER_H_
