
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extract/extractor.cc" "src/extract/CMakeFiles/semdrift_extract.dir/extractor.cc.o" "gcc" "src/extract/CMakeFiles/semdrift_extract.dir/extractor.cc.o.d"
  "/root/repo/src/extract/hearst_parser.cc" "src/extract/CMakeFiles/semdrift_extract.dir/hearst_parser.cc.o" "gcc" "src/extract/CMakeFiles/semdrift_extract.dir/hearst_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kb/CMakeFiles/semdrift_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/semdrift_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/semdrift_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
