#include "ml/binned_matrix.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/thread_pool.h"

namespace semdrift {

Result<BinnedMatrix> BinnedMatrix::Build(const std::vector<std::vector<double>>& x,
                                         int max_bins) {
  if (max_bins < 2 || max_bins > kMaxBins) {
    return Status::InvalidArgument("binned matrix: max_bins " +
                                   std::to_string(max_bins) +
                                   " outside [2, 256]");
  }
  if (x.empty()) {
    return Status::InvalidArgument("binned matrix: empty training set");
  }
  const size_t n = x.size();
  const size_t d = x[0].size();
  if (d == 0) {
    return Status::InvalidArgument("binned matrix: zero-width feature vectors");
  }
  for (size_t r = 0; r < n; ++r) {
    if (x[r].size() != d) {
      return Status::InvalidArgument(
          "binned matrix: ragged row " + std::to_string(r) + " has " +
          std::to_string(x[r].size()) + " features, expected " +
          std::to_string(d));
    }
    for (size_t f = 0; f < d; ++f) {
      if (!std::isfinite(x[r][f])) {
        return Status::InvalidArgument("binned matrix: non-finite value at row " +
                                       std::to_string(r) + " feature " +
                                       std::to_string(f));
      }
    }
  }

  BinnedMatrix out;
  out.rows_ = n;
  out.bins_.resize(n * d);
  out.cuts_.resize(d);

  // Features are independent and write disjoint slices of bins_/cuts_, so
  // binning fans out over the pool; output is identical at any thread count.
  ParallelFor(d, [&](size_t f) {
    std::vector<double> sorted(n);
    for (size_t r = 0; r < n; ++r) sorted[r] = x[r][f];
    std::sort(sorted.begin(), sorted.end());

    size_t distinct = 1;
    for (size_t i = 1; i < n; ++i) distinct += sorted[i] != sorted[i - 1] ? 1 : 0;

    std::vector<double>& cuts = out.cuts_[f];
    if (distinct <= static_cast<size_t>(max_bins)) {
      // One bin per distinct value: the histogram trainer sees exactly the
      // thresholds the exact trainer would.
      cuts.reserve(distinct - 1);
      for (size_t i = 1; i < n; ++i) {
        if (sorted[i] != sorted[i - 1]) {
          cuts.push_back(0.5 * (sorted[i - 1] + sorted[i]));
        }
      }
    } else {
      // Quantile cut points: boundaries at equally spaced rank positions,
      // deduplicated so cuts stay strictly increasing on skewed data.
      cuts.reserve(max_bins - 1);
      for (int k = 1; k < max_bins; ++k) {
        size_t pos = static_cast<size_t>(k) * n / max_bins;
        if (pos == 0 || sorted[pos - 1] == sorted[pos]) continue;
        double cut = 0.5 * (sorted[pos - 1] + sorted[pos]);
        if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
      }
    }

    // Bin assignment: first cut >= value (so "value <= cut[b]" <=> bin <= b,
    // matching the tree predicate "value <= threshold").
    uint8_t* column = out.bins_.data() + f * n;
    for (size_t r = 0; r < n; ++r) {
      column[r] = static_cast<uint8_t>(
          std::lower_bound(cuts.begin(), cuts.end(), x[r][f]) - cuts.begin());
    }
  });

  out.hist_offsets_.resize(d);
  size_t offset = 0;
  for (size_t f = 0; f < d; ++f) {
    out.hist_offsets_[f] = offset;
    offset += static_cast<size_t>(out.num_bins(f));
  }
  out.total_bins_ = offset;
  return out;
}

}  // namespace semdrift
