#ifndef SEMDRIFT_SERVE_SNAPSHOT_H_
#define SEMDRIFT_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "corpus/world.h"
#include "kb/knowledge_base.h"
#include "mutex/mutex_index.h"
#include "rank/scorers.h"
#include "util/status.h"
#include "util/supervisor.h"

namespace semdrift {

/// Immutable, versioned serving snapshot of a finished run (the read side of
/// the pipeline): a KnowledgeBase compiled into one binary file that a
/// QueryEngine can answer from with zero per-query allocation.
///
/// Layout (version 1; every payload offset is 8-byte aligned and every
/// section carries its own CRC32, with a whole-file CRC32 footer on top):
///
///   header      magic "SDSNAP1\n", version, counts, header CRC
///   section table  (tag, CRC, offset, size) per section + table CRC
///   CNAM/INAM   interned name tables: u32 offsets[n+1] + byte blob
///   FCSR        forward CSR concept->pairs: u64 rows[nc+1] + u32 inst[np],
///               each row sorted by instance id (binary-searchable)
///   RANK        per-concept pair indices re-ordered by (score desc, id asc)
///               — top-k-by-score is a prefix read
///   SCOR        f64 score column (Eq. 3 walk score over the final KB)
///   SUPP        u32 support + u32 iter1 columns
///   ICSR        inverse CSR instance->pairs: u64 rows[ni+1] + u32 concept
///               + u32 forward pair index (score column is shared)
///   CMET        per-concept flags (quarantined, mutex-usable)
///   MUTX        thresholds + sorted (concept,concept) keys with effective
///               similarity — the sparse complement of "is mutex"
///   NSRT        name-sorted id permutations for allocation-free name lookup
///   footer      whole-file CRC32 + end magic
///
/// The CSR flattening mirrors ConceptGraph's packed adjacency (PR 2): row
/// offsets plus contiguous columns, so a concept's instances, scores and
/// supports are one cache-friendly slice.

/// Scoring/mutex configuration compiled into a snapshot. Defaults match the
/// cleaning pipeline (CleanerOptions), so served drift scores are the scores
/// the DP features saw over the final KB.
struct SnapshotOptions {
  RankModel model = RankModel::kRandomWalk;
  WalkParams walk;
  MutexParams mutex;
};

/// The primary arrays a snapshot is assembled from. Everything else in the
/// file (rank order, inverse CSR, name-sort permutations) is derived from
/// these by BuildSnapshotImage, which is what makes delta application
/// well-defined: a delta edits primary arrays, derivation is recomputed, and
/// the materialized image is byte-identical to one written directly from the
/// same arrays.
struct SnapshotParts {
  std::vector<std::string> concept_names;
  std::vector<std::string> instance_names;
  /// Forward CSR: rows[c]..rows[c+1] index the pair columns; each row is
  /// strictly sorted by instance id.
  std::vector<uint64_t> fwd_rows;
  std::vector<uint32_t> fwd_instance;
  std::vector<double> score;
  std::vector<uint32_t> support;
  std::vector<uint32_t> iter1;
  /// Per-concept flags: bit 0 quarantined, bit 1 mutex-usable.
  std::vector<uint8_t> flags;
  double mutex_threshold = 0.0;
  double similar_threshold = 0.0;
  /// Sparse effective-similarity table, keys (lo << 32 | hi) strictly sorted.
  std::vector<uint64_t> mutex_keys;
  std::vector<double> mutex_sims;

  size_t num_concepts() const { return concept_names.size(); }
  size_t num_instances() const { return instance_names.size(); }
  uint64_t num_pairs() const { return fwd_instance.size(); }
};

/// Compiles the live pairs of `kb` (restricted to the world's concept and
/// instance id spaces, like ExportTaxonomyTsv) into primary arrays. Scores
/// are computed here (checked walk across the thread pool); quarantine flags
/// come from `health` when given.
SnapshotParts CompileSnapshotParts(const KnowledgeBase& kb, const World& world,
                                   const RunHealthReport* health,
                                   const SnapshotOptions& options);

/// Assembles the full framed file image (header, section table, payloads,
/// CRC footer) from primary arrays, recomputing every derived section. The
/// image is a deterministic function of the parts alone, so
/// `BuildSnapshotImage(PartsFromReader(r))` reproduces r's file byte for
/// byte. Fails (kInternal) if the parts are structurally unsound — this is
/// the safety gate the delta applier relies on before an image is ever
/// mapped.
Result<std::string> BuildSnapshotImage(const SnapshotParts& parts);

/// Writes an already-built image to `path` via temp-and-rename, so a torn
/// write never leaves a partial file under the final name.
Status PublishSnapshotImage(const std::string& image, const std::string& path);

/// CompileSnapshotParts + BuildSnapshotImage + PublishSnapshotImage.
Status WriteSnapshot(const KnowledgeBase& kb, const World& world,
                     const RunHealthReport* health, const SnapshotOptions& options,
                     const std::string& path);

/// How Open() gets the file's bytes into memory.
enum class SnapshotSource {
  /// Read the whole file into an owned buffer; every section CRC, the
  /// whole-file CRC and the deep structural Validate() run up front.
  kRead,
  /// mmap the file read-only. Framing checks that touch O(1) pages (magic,
  /// header CRC, section table CRC, declared size, end marker) still run at
  /// open; per-section CRCs are deferred to first use (EnsureSections) and
  /// the whole-file CRC and deep Validate() are skipped, so cold start is
  /// O(page faults), not O(bytes). Query results are byte-identical to the
  /// read path. Trust model: the per-section CRCs prove the payload bytes
  /// are exactly what BuildSnapshotImage wrote, and the writer gates deep
  /// structure before any image exists — so deferred mode detects any
  /// storage corruption, while a deliberately crafted evil file needs
  /// eager_verify (snapshot-verify uses it).
  kMmap,
};

struct SnapshotOpenOptions {
  SnapshotSource source = SnapshotSource::kRead;
  /// With kMmap: run every section CRC and the deep Validate() at open
  /// anyway (faulting the whole file in). No effect on kRead, which always
  /// verifies eagerly.
  bool eager_verify = false;
};

/// Bitmask over the ten version-1 sections, for EnsureSections(). Bit i is
/// section i in file order.
enum SnapshotSection : uint32_t {
  kSnapSecConceptNames = 1u << 0,
  kSnapSecInstanceNames = 1u << 1,
  kSnapSecForwardCsr = 1u << 2,
  kSnapSecRank = 1u << 3,
  kSnapSecScores = 1u << 4,
  kSnapSecSupport = 1u << 5,
  kSnapSecInverseCsr = 1u << 6,
  kSnapSecConceptMeta = 1u << 7,
  kSnapSecMutex = 1u << 8,
  kSnapSecNameSort = 1u << 9,
  kSnapSecAll = (1u << 10) - 1,
};

/// A loaded snapshot: one contiguous 8-byte-aligned buffer with typed
/// pointers into it. All accessors are const, thread-safe and allocation-free
/// after Open(). Open() verifies framing (magic, version, section CRCs, file
/// CRC) and then deep structure (Validate()): CSR monotonicity, id bounds,
/// string-table bounds, rank-permutation integrity — a snapshot that opens
/// is safe to serve from without per-query checks. (With SnapshotSource::
/// kMmap the per-section CRCs move to EnsureSections; see SnapshotSource.)
class SnapshotReader {
 public:
  static constexpr uint32_t kNoId = 0xffffffffu;
  static constexpr uint64_t kNoPair = ~0ull;

  static Result<SnapshotReader> Open(const std::string& path);
  static Result<SnapshotReader> Open(const std::string& path,
                                     const SnapshotOpenOptions& options);

  /// Opens from an in-memory image (the hot-swap manager materializes
  /// generations in memory before ever serving them). `label` names the
  /// source in error messages the way a path would.
  static Result<SnapshotReader> OpenFromBuffer(std::string_view content,
                                               const std::string& label);

  ~SnapshotReader();
  SnapshotReader(SnapshotReader&&) noexcept;
  SnapshotReader& operator=(SnapshotReader&&) noexcept;
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  /// True when backed by a live file mapping (kMmap) rather than an owned
  /// buffer.
  bool mmap_backed() const { return mapped_ != nullptr; }

  /// For mmap-backed readers: CRC-verifies every section in `mask` that has
  /// not been verified yet, re-statting the file first so an ftruncate under
  /// the mapping is caught before any payload page is touched (a shrunk
  /// mapping would SIGBUS). Failures are sticky per section — a corrupt
  /// section keeps failing every query that touches it, while queries over
  /// intact sections keep serving (damage confinement). Whole-mapping
  /// failures (stat error, file resized under the map) are globally sticky:
  /// every later call fails. Readers opened through kRead (or
  /// OpenFromBuffer) return OK immediately. Thread-safe; the fast path is
  /// one atomic load.
  Status EnsureSections(uint32_t mask) const;

  /// Sections CRC-verified so far (kSnapSecAll for eagerly-verified readers).
  uint32_t VerifiedSections() const;

  uint32_t num_concepts() const { return num_concepts_; }
  uint32_t num_instances() const { return num_instances_; }
  uint64_t num_pairs() const { return num_pairs_; }
  uint64_t num_mutex_pairs() const { return num_mutex_; }
  uint64_t file_bytes() const { return file_bytes_; }

  // -- Names ----------------------------------------------------------------

  std::string_view ConceptName(uint32_t c) const {
    return Interned(concept_name_offsets_, concept_name_blob_, c);
  }
  std::string_view InstanceName(uint32_t e) const {
    return Interned(instance_name_offsets_, instance_name_blob_, e);
  }

  /// Binary search over the name-sorted permutation; kNoId when absent.
  uint32_t FindConcept(std::string_view name) const;
  uint32_t FindInstance(std::string_view name) const;

  // -- Forward index (concept -> pairs) -------------------------------------

  /// Pair-index range [first, last) of concept `c`. Rows are sorted by
  /// instance id.
  uint64_t ConceptBegin(uint32_t c) const { return fwd_rows_[c]; }
  uint64_t ConceptEnd(uint32_t c) const { return fwd_rows_[c + 1]; }

  uint32_t PairInstance(uint64_t pair) const { return fwd_instance_[pair]; }
  double PairScore(uint64_t pair) const { return score_[pair]; }
  uint32_t PairSupport(uint64_t pair) const { return support_[pair]; }
  uint32_t PairIter1(uint64_t pair) const { return iter1_[pair]; }

  /// Pair indices of concept `c` in (score desc, instance id asc) order;
  /// slice delimiters are ConceptBegin/End.
  const uint32_t* RankOrder() const { return rank_; }

  /// Binary search for (c, e); kNoPair when the pair is not live.
  uint64_t FindPair(uint32_t c, uint32_t e) const;

  // -- Inverse index (instance -> pairs) ------------------------------------

  uint64_t InstanceBegin(uint32_t e) const { return inv_rows_[e]; }
  uint64_t InstanceEnd(uint32_t e) const { return inv_rows_[e + 1]; }
  /// Concept of the i-th inverse entry; rows are sorted by concept id.
  uint32_t InvConcept(uint64_t i) const { return inv_concept_[i]; }
  /// Forward pair index of the i-th inverse entry (shares the score column).
  uint64_t InvPairIndex(uint64_t i) const { return inv_pair_[i]; }

  // -- Concept metadata & mutex ---------------------------------------------

  /// Concept was quarantined by the supervised run that produced this KB.
  bool ConceptQuarantined(uint32_t c) const { return (concept_flags_[c] & 1u) != 0; }
  /// Concept has enough core instances to participate in mutex labeling.
  bool MutexUsable(uint32_t c) const { return (concept_flags_[c] & 2u) != 0; }

  double mutex_threshold() const { return mutex_threshold_; }
  double similar_threshold() const { return similar_threshold_; }

  /// Effective (closure-max) similarity; 0 when the pair shares no core
  /// instances even through highly-similar twins.
  double EffectiveSim(uint32_t a, uint32_t b) const;

  /// MutexIndex::IsMutex over the compiled table: both usable, distinct,
  /// effective similarity below the threshold.
  bool IsMutex(uint32_t a, uint32_t b) const;

  /// Raw mutex table entries (i < num_mutex_pairs()); PartsFromReader and
  /// snapshot-verify walk them in key order.
  uint64_t MutexKeyAt(uint64_t i) const { return mutex_keys_[i]; }
  double MutexSimAt(uint64_t i) const { return mutex_sims_[i]; }

  // -- Integrity -------------------------------------------------------------

  /// Deep structural validation (run by Open; exposed for snapshot-verify):
  /// CSR row monotonicity and bounds, per-row sortedness, rank slices being
  /// true score-ordered permutations, inverse/forward cross-consistency,
  /// string-table monotone offsets, mutex key order, name-sort permutations.
  /// Returns kDataLoss naming the first violated invariant.
  Status Validate() const;

 private:
  struct MappedFile;
  struct DeferredVerify;

  SnapshotReader();

  static std::string_view Interned(const uint32_t* offsets, const char* blob,
                                   uint32_t i) {
    return std::string_view(blob + offsets[i], offsets[i + 1] - offsets[i]);
  }

  /// Points the typed members into data(); fails on framing damage. With
  /// `defer_section_checks` the per-section and whole-file CRCs are recorded
  /// into deferred_ instead of being checked here.
  Status Map(bool defer_section_checks);

  /// Start of the file bytes: the mapping when mmap-backed, else buffer_.
  const char* data() const;

  /// The whole file, 8-byte aligned (kRead / OpenFromBuffer only).
  std::vector<uint64_t> buffer_;
  /// Live mapping + kept fd (kMmap only).
  std::unique_ptr<MappedFile> mapped_;
  /// Per-section deferred-CRC bookkeeping (kMmap only).
  std::unique_ptr<DeferredVerify> deferred_;
  uint64_t file_bytes_ = 0;

  uint32_t num_concepts_ = 0;
  uint32_t num_instances_ = 0;
  uint64_t num_pairs_ = 0;
  uint64_t num_mutex_ = 0;

  const uint32_t* concept_name_offsets_ = nullptr;
  const char* concept_name_blob_ = nullptr;
  uint64_t concept_blob_bytes_ = 0;
  const uint32_t* instance_name_offsets_ = nullptr;
  const char* instance_name_blob_ = nullptr;
  uint64_t instance_blob_bytes_ = 0;

  const uint64_t* fwd_rows_ = nullptr;
  const uint32_t* fwd_instance_ = nullptr;
  const uint32_t* rank_ = nullptr;
  const double* score_ = nullptr;
  const uint32_t* support_ = nullptr;
  const uint32_t* iter1_ = nullptr;

  const uint64_t* inv_rows_ = nullptr;
  const uint32_t* inv_concept_ = nullptr;
  const uint32_t* inv_pair_ = nullptr;

  const uint8_t* concept_flags_ = nullptr;

  double mutex_threshold_ = 0.0;
  double similar_threshold_ = 0.0;
  const uint64_t* mutex_keys_ = nullptr;
  const double* mutex_sims_ = nullptr;

  const uint32_t* concept_by_name_ = nullptr;
  const uint32_t* instance_by_name_ = nullptr;
};

/// Recovers the primary arrays from a validated reader — the base state a
/// SnapshotDelta is applied to.
SnapshotParts PartsFromReader(const SnapshotReader& reader);

}  // namespace semdrift

#endif  // SEMDRIFT_SERVE_SNAPSHOT_H_
