#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

namespace semdrift {

namespace {

constexpr uint64_t kListenKey = 0;
constexpr uint64_t kWakeupKey = 1;

void WakeEventFd(int fd) {
  const uint64_t one = 1;
  ssize_t n;
  do {
    n = ::write(fd, &one, sizeof(one));
  } while (n < 0 && errno == EINTR);
}

}  // namespace

/// One live connection. Owned by the loop thread; never touched elsewhere.
struct NetServer::Conn {
  int fd = -1;
  uint64_t id = 0;
  LineDecoder decoder;
  WriteQueue out;
  /// Sequence number assigned to the next decoded request line.
  uint64_t next_assign = 0;
  /// Sequence number of the next response to write (in-order gate).
  uint64_t next_send = 0;
  /// Completed responses waiting for their turn, keyed by sequence.
  std::map<uint64_t, std::string> reorder;
  /// Requests handed to the router and not yet completed.
  size_t inflight = 0;
  bool read_closed = false;
  /// EPOLLIN dropped for backpressure.
  bool paused = false;
  bool want_write = false;

  explicit Conn(size_t max_line_bytes) : decoder(max_line_bytes) {}
};

/// Bridge from router callbacks (pool threads) to the loop thread. Shared by
/// shared_ptr with every in-flight callback: after the server dies, `open`
/// is false and late completions are dropped without touching freed state.
struct NetServer::CompletionQueue {
  std::mutex mu;
  bool open = true;
  int wake_fd = -1;
  struct Item {
    uint64_t conn_id;
    uint64_t seq;
    std::string response;
  };
  std::vector<Item> items;

  void Post(uint64_t conn_id, uint64_t seq, std::string response) {
    std::lock_guard<std::mutex> lock(mu);
    if (!open) return;
    items.push_back(Item{conn_id, seq, std::move(response)});
    // Written under mu so Stop() can never close the fd between the open
    // check and this write.
    WakeEventFd(wake_fd);
  }
};

NetServer::NetServer(ShardRouter* router, NetServerOptions options)
    : router_(router), options_(std::move(options)) {
  if (options_.max_line_bytes == 0) options_.max_line_bytes = 1;
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  ListenAddress addr;
  std::string parse_error;
  if (!ParseListenAddress(options_.listen, &addr, &parse_error)) {
    return Status::InvalidArgument(parse_error);
  }

  if (addr.is_unix) {
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    if (addr.path.size() >= sizeof(sun.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " + addr.path);
    }
    std::memcpy(sun.sun_path, addr.path.c_str(), addr.path.size() + 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      return Status::IOError("socket: " + std::string(std::strerror(errno)));
    }
    // A previous instance's socket file would make bind fail with
    // EADDRINUSE even though nobody is listening; replace it.
    ::unlink(addr.path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) < 0) {
      Status st = Status::IOError("bind " + addr.path + ": " +
                                  std::string(std::strerror(errno)));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return st;
    }
    unlink_path_ = addr.path;
    endpoint_ = "unix:" + addr.path;
  } else {
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(addr.port);
    std::string host = addr.host == "localhost" ? "127.0.0.1" : addr.host;
    if (::inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1) {
      return Status::InvalidArgument("cannot parse IPv4 address: " + addr.host);
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      return Status::IOError("socket: " + std::string(std::strerror(errno)));
    }
    const int enable = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) < 0) {
      Status st = Status::IOError("bind " + options_.listen + ": " +
                                  std::string(std::strerror(errno)));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return st;
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
    endpoint_ =
        "tcp:" + host + ":" + std::to_string(ntohs(bound.sin_port));
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status st = Status::IOError("listen: " + std::string(std::strerror(errno)));
    Stop();
    return st;
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Status st = Status::IOError("epoll/eventfd: " +
                                std::string(std::strerror(errno)));
    Stop();
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenKey;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeupKey;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  completions_ = std::make_shared<CompletionQueue>();
  completions_->wake_fd = wake_fd_;

  started_ = true;
  stop_.store(false, std::memory_order_relaxed);
  loop_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void NetServer::Stop() {
  if (loop_.joinable()) {
    stop_.store(true, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(completions_->mu);
      WakeEventFd(completions_->wake_fd);
    }
    loop_.join();
  }
  if (completions_ != nullptr) {
    // Seal the queue before closing the eventfd: a late router callback must
    // neither write a closed (possibly reused) fd nor touch freed conns.
    std::lock_guard<std::mutex> lock(completions_->mu);
    completions_->open = false;
    completions_->wake_fd = -1;
  }
  for (auto& [id, conn] : conns_) {
    ::close(conn->fd);
    closed_.fetch_add(1, std::memory_order_relaxed);
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
  started_ = false;
}

NetServerCounters NetServer::counters() const {
  NetServerCounters c;
  c.accepted = accepted_.load(std::memory_order_relaxed);
  c.closed = closed_.load(std::memory_order_relaxed);
  c.lines = lines_.load(std::memory_order_relaxed);
  c.oversized = oversized_.load(std::memory_order_relaxed);
  c.responses = responses_.load(std::memory_order_relaxed);
  c.backpressure_pauses = backpressure_pauses_.load(std::memory_order_relaxed);
  c.dropped_responses = dropped_responses_.load(std::memory_order_relaxed);
  return c;
}

void NetServer::Loop() {
  epoll_event events[64];
  while (!stop_.load(std::memory_order_relaxed)) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (stop_.load(std::memory_order_relaxed)) return;
      const uint64_t key = events[i].data.u64;
      if (key == kListenKey) {
        HandleAccept();
        continue;
      }
      if (key == kWakeupKey) {
        DrainCompletions();
        continue;
      }
      // Connections can close while earlier events in this batch are
      // handled; a stale key simply misses the map.
      auto it = conns_.find(key);
      if (it == conns_.end()) continue;
      Conn* conn = it->second.get();
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        // Abrupt disconnect (possibly mid-response): drop the connection;
        // completions still in flight will be counted as dropped.
        CloseConn(key);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        HandleWritable(conn);
        // HandleWritable may close; re-find before reading.
        it = conns_.find(key);
        if (it == conns_.end()) continue;
        conn = it->second.get();
      }
      if ((events[i].events & EPOLLIN) != 0) HandleReadable(conn);
    }
  }
}

void NetServer::HandleAccept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or a transient accept error; epoll re-arms.
    }
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>(options_.max_line_bytes);
    conn->fd = fd;
    conn->id = id;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(id, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void NetServer::HandleReadable(Conn* conn) {
  const uint64_t id = conn->id;
  char buf[16384];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
      std::string line;
      for (;;) {
        const LineDecoder::Event ev = conn->decoder.Next(&line);
        if (ev == LineDecoder::Event::kNone) break;
        if (ev == LineDecoder::Event::kOversized) {
          oversized_.fetch_add(1, std::memory_order_relaxed);
          SubmitLine(conn, std::string(), /*oversized=*/true);
        } else {
          lines_.fetch_add(1, std::memory_order_relaxed);
          SubmitLine(conn, std::move(line), /*oversized=*/false);
        }
      }
      continue;
    }
    if (n == 0) {
      // Peer half-closed. An unterminated trailing line still counts as a
      // request ("printf 'stats' | nc -q1" style clients).
      std::string residue;
      if (conn->decoder.TakeResidue(&residue)) {
        lines_.fetch_add(1, std::memory_order_relaxed);
        SubmitLine(conn, std::move(residue), /*oversized=*/false);
      }
      conn->read_closed = true;
      if (!PumpResponses(conn)) return;  // May close a fully-drained conn.
      SetEpoll(conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(id);
    return;
  }
  if (!PumpResponses(conn)) return;
  UpdateReadInterest(conn);
}

void NetServer::HandleWritable(Conn* conn) {
  if (!PumpResponses(conn)) return;
  UpdateReadInterest(conn);
}

void NetServer::SubmitLine(Conn* conn, std::string line, bool oversized) {
  const uint64_t seq = conn->next_assign++;
  if (oversized) {
    // Local completion, same sequencing as a real one: the ERR occupies the
    // request's response slot so pipelined clients stay aligned.
    conn->reorder.emplace(
        seq, "ERR\tline too long (max " + std::to_string(options_.max_line_bytes) +
                 " bytes)");
    return;
  }
  conn->inflight++;
  std::shared_ptr<CompletionQueue> queue = completions_;
  const uint64_t conn_id = conn->id;
  router_->Submit(std::move(line), options_.priority,
                  [queue, conn_id, seq](std::string response) {
                    queue->Post(conn_id, seq, std::move(response));
                  });
}

void NetServer::DrainCompletions() {
  uint64_t drain;
  while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
  }
  std::vector<CompletionQueue::Item> items;
  {
    std::lock_guard<std::mutex> lock(completions_->mu);
    items.swap(completions_->items);
  }
  // Group flushing per connection: deliver every completion first, then pump
  // each touched connection once.
  std::vector<uint64_t> touched;
  for (CompletionQueue::Item& item : items) {
    auto it = conns_.find(item.conn_id);
    if (it == conns_.end()) {
      dropped_responses_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Conn* conn = it->second.get();
    conn->reorder.emplace(item.seq, std::move(item.response));
    conn->inflight--;
    touched.push_back(item.conn_id);
  }
  for (uint64_t id : touched) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;  // Closed by an earlier pump.
    Conn* conn = it->second.get();
    if (!PumpResponses(conn)) continue;
    UpdateReadInterest(conn);
  }
}

bool NetServer::PumpResponses(Conn* conn) {
  while (!conn->reorder.empty() &&
         conn->reorder.begin()->first == conn->next_send) {
    std::string response = std::move(conn->reorder.begin()->second);
    conn->reorder.erase(conn->reorder.begin());
    response.push_back('\n');
    conn->out.Push(std::move(response));
    conn->next_send++;
    responses_.fetch_add(1, std::memory_order_relaxed);
  }
  switch (conn->out.Flush(conn->fd)) {
    case WriteQueue::FlushResult::kError:
      CloseConn(conn->id);
      return false;
    case WriteQueue::FlushResult::kBlocked:
      if (!conn->want_write) {
        conn->want_write = true;
        SetEpoll(conn);
      }
      return true;
    case WriteQueue::FlushResult::kDrained:
      if (conn->want_write) {
        conn->want_write = false;
        SetEpoll(conn);
      }
      if (conn->read_closed && conn->inflight == 0 && conn->reorder.empty()) {
        CloseConn(conn->id);
        return false;
      }
      return true;
  }
  return true;
}

void NetServer::UpdateReadInterest(Conn* conn) {
  if (conn->read_closed) return;
  const bool over = conn->inflight >= options_.max_inflight_per_conn ||
                    conn->out.pending_bytes() >= options_.max_write_buffer_bytes;
  if (over && !conn->paused) {
    conn->paused = true;
    backpressure_pauses_.fetch_add(1, std::memory_order_relaxed);
    SetEpoll(conn);
  } else if (conn->paused &&
             conn->inflight <= options_.max_inflight_per_conn / 2 &&
             conn->out.pending_bytes() <= options_.max_write_buffer_bytes / 2) {
    conn->paused = false;
    SetEpoll(conn);
  }
}

void NetServer::SetEpoll(Conn* conn) {
  epoll_event ev{};
  ev.events = 0;
  if (!conn->paused && !conn->read_closed) ev.events |= EPOLLIN;
  if (conn->want_write) ev.events |= EPOLLOUT;
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void NetServer::CloseConn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  conns_.erase(it);
  closed_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace semdrift
