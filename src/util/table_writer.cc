#include "util/table_writer.h"

#include <algorithm>
#include <fstream>

#include "util/string_util.h"

namespace semdrift {

namespace {

/// CSV-escapes a cell (quotes cells containing separators or quotes).
std::string CsvCell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

TableWriter::TableWriter(std::string title) : title_(std::move(title)) {}

void TableWriter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TableWriter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TableWriter::AddRow(const std::string& label, const std::vector<double>& values,
                         int digits) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, digits));
  AddRow(std::move(row));
}

void TableWriter::Print(std::ostream& os) const {
  os << "== " << title_ << " ==\n";
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    os << "\n";
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
  os << "\n";
}

Status TableWriter::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ",";
      out << CsvCell(row[c]);
    }
    out << "\n";
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

SeriesWriter::SeriesWriter(std::string title) : title_(std::move(title)) {}

void SeriesWriter::SetColumns(std::vector<std::string> columns) {
  columns_ = std::move(columns);
}

void SeriesWriter::AddPoint(const std::vector<double>& values) {
  points_.push_back(values);
  points_.back().resize(columns_.size(), 0.0);
}

void SeriesWriter::Print(std::ostream& os, int digits) const {
  TableWriter table(title_);
  table.SetHeader(columns_);
  for (const auto& point : points_) {
    std::vector<std::string> row;
    row.reserve(point.size());
    for (double v : point) row.push_back(FormatDouble(v, digits));
    table.AddRow(std::move(row));
  }
  table.Print(os);
}

Status SeriesWriter::WriteCsv(const std::string& path, int digits) const {
  TableWriter table(title_);
  table.SetHeader(columns_);
  for (const auto& point : points_) {
    std::vector<std::string> row;
    row.reserve(point.size());
    for (double v : point) row.push_back(FormatDouble(v, digits));
    table.AddRow(std::move(row));
  }
  return table.WriteCsv(path);
}

}  // namespace semdrift
