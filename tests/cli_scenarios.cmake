# CTest script: replays the checked-in adversarial scenario corpus and
# checks the hunter's cross-thread-count determinism.
file(MAKE_DIRECTORY ${WORK_DIR})

# Every scenarios/*.toml must load, run, and stay inside its recorded
# envelope. One invocation covers them all so a regression names the
# offending scenario in its output.
file(GLOB scenario_files ${SCENARIO_DIR}/*.toml)
list(LENGTH scenario_files num_scenarios)
if(num_scenarios LESS 8)
  message(FATAL_ERROR "expected >= 8 checked-in scenarios, found ${num_scenarios}")
endif()
list(SORT scenario_files)
execute_process(
  COMMAND ${CLI} scenario-run ${scenario_files}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "scenario replay failed (${rc}):\n${out}\n${err}")
endif()
if(out MATCHES "FAIL")
  message(FATAL_ERROR "scenario replay reported FAIL:\n${out}")
endif()

# Replaying twice must print identical metrics — the corpus is the
# regression baseline, so any nondeterminism here invalidates the gate.
execute_process(
  COMMAND ${CLI} scenario-run ${scenario_files}
  RESULT_VARIABLE rc2 OUTPUT_VARIABLE out2 ERROR_VARIABLE err2)
if(NOT rc2 EQUAL 0 OR NOT out STREQUAL out2)
  message(FATAL_ERROR "scenario replay is not deterministic:\n--- first\n${out}\n--- second\n${out2}")
endif()

# A malformed scenario file is a usage error (exit 2), never a crash.
file(WRITE ${WORK_DIR}/broken.toml "[scenario]\nname = \"broken\"\nbogus_key = 1\n")
execute_process(
  COMMAND ${CLI} scenario-run ${WORK_DIR}/broken.toml
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "broken scenario should exit 2, got ${rc}: ${out} ${err}")
endif()

# scenario-hunt with a fixed seed must mint byte-identical minimized
# scenarios at 1 and 8 threads (the acceptance bar for the shrinker).
execute_process(
  COMMAND ${CLI} scenario-hunt --seed 100 --samples 8 --archetype burst-noise
          --out-dir ${WORK_DIR}/hunt1 --threads 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out1 ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "hunt (1 thread) failed (${rc}): ${out1} ${err}")
endif()
execute_process(
  COMMAND ${CLI} scenario-hunt --seed 100 --samples 8 --archetype burst-noise
          --out-dir ${WORK_DIR}/hunt8 --threads 8
  RESULT_VARIABLE rc OUTPUT_VARIABLE out8 ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "hunt (8 threads) failed (${rc}): ${out8} ${err}")
endif()
# The reports embed their --out-dir paths; normalize before comparing.
string(REPLACE "${WORK_DIR}/hunt1" "OUT" norm1 "${out1}")
string(REPLACE "${WORK_DIR}/hunt8" "OUT" norm8 "${out8}")
if(NOT norm1 STREQUAL norm8)
  message(FATAL_ERROR "hunt reports differ across thread counts:\n--- 1 thread\n${out1}\n--- 8 threads\n${out8}")
endif()
file(GLOB hunt1_files RELATIVE ${WORK_DIR}/hunt1 ${WORK_DIR}/hunt1/*.toml)
file(GLOB hunt8_files RELATIVE ${WORK_DIR}/hunt8 ${WORK_DIR}/hunt8/*.toml)
if(NOT hunt1_files STREQUAL hunt8_files)
  message(FATAL_ERROR "hunt finding sets differ: ${hunt1_files} vs ${hunt8_files}")
endif()
if(hunt1_files STREQUAL "")
  message(FATAL_ERROR "hunt found nothing; the determinism check is vacuous")
endif()
foreach(f ${hunt1_files})
  file(READ ${WORK_DIR}/hunt1/${f} a)
  file(READ ${WORK_DIR}/hunt8/${f} b)
  if(NOT a STREQUAL b)
    message(FATAL_ERROR "minimized scenario ${f} differs across thread counts")
  endif()
endforeach()

# scenario-sample must round-trip: the emitted file re-runs cleanly.
execute_process(
  COMMAND ${CLI} scenario-sample --seed 42 --out ${WORK_DIR}/sampled.toml
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "scenario-sample failed (${rc}): ${out} ${err}")
endif()
execute_process(
  COMMAND ${CLI} scenario-run ${WORK_DIR}/sampled.toml
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sampled scenario failed to run (${rc}): ${out} ${err}")
endif()
