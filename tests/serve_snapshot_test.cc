#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "mutex/mutex_index.h"
#include "rank/scorers.h"
#include "serve/snapshot.h"
#include "util/fault_injection.h"

namespace semdrift {
namespace {

/// Shared, expensive state: one extracted KB and one written snapshot.
class SnapshotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentConfig config = PaperScaleConfig(0.05);
    config.seed = 31;
    experiment_ = Experiment::Build(config).release();
    kb_ = new KnowledgeBase(experiment_->Extract());
    path_ = ::testing::TempDir() + "/serve_snapshot_test.bin";
    Status written =
        WriteSnapshot(*kb_, experiment_->world(), nullptr, SnapshotOptions{}, path_);
    ASSERT_TRUE(written.ok()) << written.ToString();
  }
  static void TearDownTestSuite() {
    delete kb_;
    delete experiment_;
    kb_ = nullptr;
    experiment_ = nullptr;
  }

  /// The writer's view of a concept's live pairs: world-bounded, id-sorted.
  static std::vector<InstanceId> LiveSorted(ConceptId c) {
    std::vector<InstanceId> live = kb_->LiveInstancesOf(c);
    live.erase(std::remove_if(live.begin(), live.end(),
                              [&](InstanceId e) {
                                return e.value >= experiment_->world().num_instances();
                              }),
               live.end());
    std::sort(live.begin(), live.end());
    return live;
  }

  static Experiment* experiment_;
  static KnowledgeBase* kb_;
  static std::string path_;
};

Experiment* SnapshotTest::experiment_ = nullptr;
KnowledgeBase* SnapshotTest::kb_ = nullptr;
std::string SnapshotTest::path_;

TEST_F(SnapshotTest, RoundTripMatchesKnowledgeBase) {
  auto opened = SnapshotReader::Open(path_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const SnapshotReader& snap = *opened;
  const World& world = experiment_->world();

  ASSERT_EQ(snap.num_concepts(), world.num_concepts());
  ASSERT_EQ(snap.num_instances(), world.num_instances());
  EXPECT_GT(snap.num_pairs(), 0u);

  uint64_t total_pairs = 0;
  for (uint32_t ci = 0; ci < snap.num_concepts(); ++ci) {
    ConceptId c(ci);
    EXPECT_EQ(snap.ConceptName(ci), world.ConceptName(c));
    EXPECT_EQ(snap.FindConcept(world.ConceptName(c)), ci);

    // Forward row = the KB's live instances of c, for every pair, with the
    // exact checked walk scores and support counts.
    std::vector<InstanceId> live = LiveSorted(c);
    ASSERT_EQ(snap.ConceptEnd(ci) - snap.ConceptBegin(ci), live.size());
    ConceptScores scores =
        ScoreConceptChecked(*kb_, c, RankModel::kRandomWalk, WalkParams{});
    for (size_t i = 0; i < live.size(); ++i) {
      const uint64_t pair = snap.ConceptBegin(ci) + i;
      ASSERT_EQ(snap.PairInstance(pair), live[i].value);
      auto it = scores.scores.find(live[i]);
      const double expected = it == scores.scores.end() ? 0.0 : it->second;
      EXPECT_EQ(snap.PairScore(pair), expected);
      IsAPair kb_pair{c, live[i]};
      EXPECT_EQ(snap.PairSupport(pair), static_cast<uint32_t>(kb_->Count(kb_pair)));
      EXPECT_EQ(snap.PairIter1(pair),
                static_cast<uint32_t>(kb_->Iter1Count(kb_pair)));
      EXPECT_EQ(snap.FindPair(ci, live[i].value), pair);
    }
    total_pairs += live.size();

    // Rank slice: the same pairs in (score desc, instance asc) order.
    std::vector<uint64_t> expected_order(live.size());
    for (size_t i = 0; i < live.size(); ++i) {
      expected_order[i] = snap.ConceptBegin(ci) + i;
    }
    std::sort(expected_order.begin(), expected_order.end(),
              [&](uint64_t a, uint64_t b) {
                if (snap.PairScore(a) != snap.PairScore(b)) {
                  return snap.PairScore(a) > snap.PairScore(b);
                }
                return snap.PairInstance(a) < snap.PairInstance(b);
              });
    for (size_t i = 0; i < live.size(); ++i) {
      EXPECT_EQ(snap.RankOrder()[snap.ConceptBegin(ci) + i], expected_order[i]);
    }
  }
  EXPECT_EQ(snap.num_pairs(), total_pairs);

  // Inverse rows agree with KB membership for every instance.
  for (uint32_t e = 0; e < snap.num_instances(); ++e) {
    EXPECT_EQ(snap.InstanceName(e), world.InstanceName(InstanceId(e)));
    for (uint64_t i = snap.InstanceBegin(e); i < snap.InstanceEnd(e); ++i) {
      const uint32_t c = snap.InvConcept(i);
      EXPECT_TRUE(kb_->Contains(IsAPair{ConceptId(c), InstanceId(e)}));
      EXPECT_EQ(snap.PairInstance(snap.InvPairIndex(i)), e);
    }
  }

  // Name lookups hit for a sample and miss for a non-name.
  EXPECT_EQ(snap.FindInstance(world.InstanceName(InstanceId(0))), 0u);
  EXPECT_EQ(snap.FindConcept("no such concept exists"), SnapshotReader::kNoId);
  EXPECT_EQ(snap.FindInstance(""), SnapshotReader::kNoId);
}

TEST_F(SnapshotTest, MutexTableMatchesMutexIndex) {
  auto opened = SnapshotReader::Open(path_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const SnapshotReader& snap = *opened;
  MutexIndex index(*kb_, experiment_->world().num_concepts(), MutexParams{});
  for (uint32_t a = 0; a < snap.num_concepts(); ++a) {
    EXPECT_EQ(snap.MutexUsable(a), index.Usable(ConceptId(a)));
    for (uint32_t b = 0; b < snap.num_concepts(); ++b) {
      ASSERT_EQ(snap.IsMutex(a, b), index.IsMutex(ConceptId(a), ConceptId(b)))
          << "concepts " << a << " and " << b;
    }
  }
}

TEST_F(SnapshotTest, QuarantineFlagsComeFromHealthReport) {
  RunHealthReport health;
  health.Record(3, ConceptOutcome::kQuarantined, 2, PipelineStage::kScoreWarm,
                "test");
  health.Record(7, ConceptOutcome::kQuarantined, 1, PipelineStage::kDetectorScore,
                "test");
  health.Record(9, ConceptOutcome::kDegraded, 1, PipelineStage::kScoreWarm, "test");
  std::string path = ::testing::TempDir() + "/serve_snapshot_quarantine.bin";
  Status written =
      WriteSnapshot(*kb_, experiment_->world(), &health, SnapshotOptions{}, path);
  ASSERT_TRUE(written.ok()) << written.ToString();
  auto opened = SnapshotReader::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  for (uint32_t c = 0; c < opened->num_concepts(); ++c) {
    EXPECT_EQ(opened->ConceptQuarantined(c), c == 3 || c == 7) << "concept " << c;
  }
}

TEST_F(SnapshotTest, WriteServingSnapshotValidatesThenWrites) {
  std::string path = ::testing::TempDir() + "/serve_snapshot_via_eval.bin";
  Status written = WriteServingSnapshot(*kb_, experiment_->world(),
                                        experiment_->corpus().sentences.size(),
                                        nullptr, path);
  ASSERT_TRUE(written.ok()) << written.ToString();
  auto opened = SnapshotReader::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->num_concepts(), experiment_->world().num_concepts());
}

TEST_F(SnapshotTest, TruncationIsAlwaysRejected) {
  auto pristine = ReadFileToString(path_);
  ASSERT_TRUE(pristine.ok());
  std::string damaged_path = ::testing::TempDir() + "/serve_snapshot_truncated.bin";
  // Sweep cut points across the whole file, including cuts inside the
  // header, the section table, each section, and the footer.
  for (size_t keep = 0; keep < pristine->size();
       keep += std::max<size_t>(1, pristine->size() / 97)) {
    ASSERT_TRUE(WriteStringToFile(pristine->substr(0, keep), damaged_path).ok());
    auto opened = SnapshotReader::Open(damaged_path);
    ASSERT_FALSE(opened.ok()) << "survived truncation to " << keep << " bytes";
    EXPECT_EQ(opened.status().code(), Status::Code::kDataLoss);
  }
}

TEST_F(SnapshotTest, SeededCorruptionIsAlwaysRejected) {
  auto pristine = ReadFileToString(path_);
  ASSERT_TRUE(pristine.ok());
  std::string damaged_path = ::testing::TempDir() + "/serve_snapshot_corrupt.bin";
  int rejected = 0;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    FaultInjector injector(0x5eed ^ (0x9e3779b97f4a7c15ULL * (seed + 1)));
    FaultKind kind;
    std::string corrupted = injector.CorruptRandom(*pristine, &kind);
    if (corrupted == *pristine) continue;  // Identity corruption: nothing to detect.
    ASSERT_TRUE(WriteStringToFile(corrupted, damaged_path).ok());
    auto opened = SnapshotReader::Open(damaged_path);
    ASSERT_FALSE(opened.ok()) << "survived fault kind " << static_cast<int>(kind)
                              << " at seed " << seed;
    EXPECT_EQ(opened.status().code(), Status::Code::kDataLoss);
    ++rejected;
  }
  EXPECT_GT(rejected, 40);  // The sweep must actually exercise corruption.
}

TEST_F(SnapshotTest, WriterLeavesNoPartialFileBehind) {
  // The temp-and-rename contract: after a successful write, no .snap-tmp
  // carcass remains next to the snapshot.
  EXPECT_FALSE(std::filesystem::exists(path_ + ".snap-tmp"));
}

}  // namespace
}  // namespace semdrift
