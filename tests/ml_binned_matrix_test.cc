#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "ml/binned_matrix.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace semdrift {
namespace {

std::vector<std::vector<double>> Column(std::vector<double> values) {
  std::vector<std::vector<double>> x;
  for (double v : values) x.push_back({v});
  return x;
}

TEST(BinnedMatrixTest, LowCardinalityGetsOneBinPerDistinctValue) {
  auto binned = BinnedMatrix::Build(Column({3.0, 1.0, 2.0, 1.0, 3.0, 2.0}), 256);
  ASSERT_TRUE(binned.ok()) << binned.status().ToString();
  EXPECT_EQ(binned->num_rows(), 6u);
  EXPECT_EQ(binned->num_features(), 1u);
  EXPECT_EQ(binned->num_bins(0), 3);
  // Bins follow value order: 1.0 -> 0, 2.0 -> 1, 3.0 -> 2.
  EXPECT_EQ(binned->Bin(0, 0), 2);
  EXPECT_EQ(binned->Bin(0, 1), 0);
  EXPECT_EQ(binned->Bin(0, 2), 1);
  EXPECT_EQ(binned->Bin(0, 3), 0);
  // Thresholds are the midpoints the exact trainer would consider.
  EXPECT_DOUBLE_EQ(binned->Threshold(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(binned->Threshold(0, 1), 2.5);
}

TEST(BinnedMatrixTest, ThresholdsPartitionExactlyLikeBins) {
  // The split predicate "bin <= b" must coincide with "value <= Threshold(b)"
  // on every training value — that is what lets trees trained on bins
  // predict on raw doubles.
  Rng rng(11);
  std::vector<std::vector<double>> x;
  for (int i = 0; i < 2000; ++i) {
    x.push_back({rng.NextGaussian(), rng.NextDouble(-5.0, 5.0)});
  }
  auto binned = BinnedMatrix::Build(x, 64);
  ASSERT_TRUE(binned.ok());
  for (size_t f = 0; f < binned->num_features(); ++f) {
    for (int b = 0; b + 1 < binned->num_bins(f); ++b) {
      double threshold = binned->Threshold(f, b);
      for (size_t r = 0; r < x.size(); ++r) {
        EXPECT_EQ(binned->Bin(f, r) <= b, x[r][f] <= threshold)
            << "feature " << f << " bin " << b << " row " << r;
      }
    }
  }
}

TEST(BinnedMatrixTest, QuantileCutsRespectMaxBins) {
  Rng rng(7);
  std::vector<std::vector<double>> x;
  for (int i = 0; i < 10000; ++i) x.push_back({rng.NextDouble()});
  for (int max_bins : {2, 16, 64, 256}) {
    auto binned = BinnedMatrix::Build(x, max_bins);
    ASSERT_TRUE(binned.ok());
    EXPECT_LE(binned->num_bins(0), max_bins);
    EXPECT_GE(binned->num_bins(0), max_bins / 2);  // Uniform data fills bins.
  }
}

TEST(BinnedMatrixTest, SkewedDataDeduplicatesCuts) {
  // 99% of the mass on one value: most quantile boundaries collapse and must
  // be deduplicated, not emitted as equal (non-increasing) cuts.
  std::vector<std::vector<double>> x;
  for (int i = 0; i < 5000; ++i) x.push_back({0.0});
  for (int i = 0; i < 50; ++i) x.push_back({static_cast<double>(i + 1)});
  auto binned = BinnedMatrix::Build(x, 256);
  ASSERT_TRUE(binned.ok());
  EXPECT_GE(binned->num_bins(0), 2);
  for (int b = 0; b + 2 < binned->num_bins(0); ++b) {
    EXPECT_LT(binned->Threshold(0, b), binned->Threshold(0, b + 1));
  }
}

TEST(BinnedMatrixTest, ConstantFeatureGetsSingleBin) {
  auto binned = BinnedMatrix::Build(Column({5.0, 5.0, 5.0}), 256);
  ASSERT_TRUE(binned.ok());
  EXPECT_EQ(binned->num_bins(0), 1);
}

TEST(BinnedMatrixTest, RejectsDegenerateInput) {
  EXPECT_FALSE(BinnedMatrix::Build({}, 256).ok());
  EXPECT_FALSE(BinnedMatrix::Build({{}, {}}, 256).ok());       // Zero-width.
  EXPECT_FALSE(BinnedMatrix::Build({{1.0}, {1.0, 2.0}}, 256).ok());  // Ragged.
  EXPECT_FALSE(BinnedMatrix::Build(Column({1.0}), 1).ok());    // max_bins < 2.
  EXPECT_FALSE(BinnedMatrix::Build(Column({1.0}), 257).ok());  // > uint8 range.
  EXPECT_FALSE(
      BinnedMatrix::Build(Column({std::numeric_limits<double>::quiet_NaN()}), 256)
          .ok());
  EXPECT_FALSE(
      BinnedMatrix::Build(Column({std::numeric_limits<double>::infinity()}), 256)
          .ok());
}

TEST(BinnedMatrixTest, BuildIsThreadCountInvariant) {
  Rng rng(3);
  std::vector<std::vector<double>> x;
  for (int i = 0; i < 3000; ++i) {
    x.push_back({rng.NextGaussian(), rng.NextDouble(), rng.NextInt(0, 5) * 1.0});
  }
  SetGlobalThreadCount(1);
  auto serial = BinnedMatrix::Build(x, 128);
  ASSERT_TRUE(serial.ok());
  SetGlobalThreadCount(8);
  auto parallel = BinnedMatrix::Build(x, 128);
  ASSERT_TRUE(parallel.ok());
  SetGlobalThreadCount(0);
  ASSERT_EQ(serial->num_features(), parallel->num_features());
  for (size_t f = 0; f < serial->num_features(); ++f) {
    ASSERT_EQ(serial->num_bins(f), parallel->num_bins(f));
    for (int b = 0; b + 1 < serial->num_bins(f); ++b) {
      EXPECT_EQ(serial->Threshold(f, b), parallel->Threshold(f, b));
    }
    for (size_t r = 0; r < serial->num_rows(); ++r) {
      ASSERT_EQ(serial->Bin(f, r), parallel->Bin(f, r));
    }
  }
}

}  // namespace
}  // namespace semdrift
