#ifndef SEMDRIFT_NET_NET_CLIENT_H_
#define SEMDRIFT_NET_NET_CLIENT_H_

#include <string>

#include "util/status.h"

namespace semdrift {

/// Minimal blocking line-protocol client (CLI one-shots, tests, bench
/// drivers). Accepts the same endpoint grammar as the server:
/// "tcp:host:port", "unix:/path", or bare "host:port". Reads are buffered
/// so pipelined responses split across recv boundaries reassemble.
class LineClient {
 public:
  static Result<LineClient> Connect(const std::string& endpoint);

  LineClient() = default;
  ~LineClient();
  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Writes `line` plus a '\n' terminator (handles partial writes).
  Status SendLine(const std::string& line);

  /// Writes exactly `bytes`, no terminator added (tests exercising partial
  /// frames and unterminated trailing lines).
  Status SendRaw(const std::string& bytes);

  /// Half-closes the write side so the server sees EOF while responses can
  /// still be read.
  Status ShutdownWrite();

  /// Next response line, terminator stripped. kIOError on EOF/reset.
  Result<std::string> ReadLine();

  /// SendLine + ReadLine.
  Result<std::string> RoundTrip(const std::string& line);

  bool connected() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_NET_NET_CLIENT_H_
