#include "kb/knowledge_base.h"

#include <cassert>

namespace semdrift {

namespace {
const std::vector<InstanceId> kEmptyInstances;
const std::vector<uint32_t> kEmptyRecords;
}  // namespace

uint32_t KnowledgeBase::ApplyExtraction(SentenceId sentence, ConceptId c,
                                        const std::vector<InstanceId>& instances,
                                        const std::vector<InstanceId>& triggers,
                                        int iteration) {
  uint32_t record_id = static_cast<uint32_t>(records_.size());
  ExtractionRecord record;
  record.id = record_id;
  record.sentence = sentence;
  record.concept_id = c;
  record.iteration = iteration;
  record.instances = instances;
  record.triggers = triggers;
  records_.push_back(std::move(record));

  if (c.value >= concept_instances_.size()) {
    concept_instances_.resize(c.value + 1);
    concept_records_.resize(c.value + 1);
  }
  concept_records_[c.value].push_back(record_id);

  for (InstanceId e : instances) {
    IsAPair pair{c, e};
    auto [it, inserted] = pairs_.emplace(pair, PairStats{});
    PairStats& stats = it->second;
    if (inserted) concept_instances_[c.value].push_back(e);
    if (stats.count == 0) ++live_pairs_;
    ++stats.count;
    if (iteration == 1) ++stats.iter1_count;
    if (stats.first_iteration < 0) stats.first_iteration = iteration;
    stats.producing_records.push_back(record_id);
  }
  for (InstanceId t : triggers) {
    auto it = pairs_.find(IsAPair{c, t});
    assert(it != pairs_.end() && "trigger must already be a known pair");
    it->second.triggered_records.push_back(record_id);
  }
  return record_id;
}

int KnowledgeBase::Count(const IsAPair& pair) const {
  auto it = pairs_.find(pair);
  return it == pairs_.end() ? 0 : it->second.count;
}

int KnowledgeBase::Iter1Count(const IsAPair& pair) const {
  auto it = pairs_.find(pair);
  return it == pairs_.end() ? 0 : it->second.iter1_count;
}

int KnowledgeBase::FirstIteration(const IsAPair& pair) const {
  auto it = pairs_.find(pair);
  return it == pairs_.end() ? -1 : it->second.first_iteration;
}

const PairStats* KnowledgeBase::Find(const IsAPair& pair) const {
  auto it = pairs_.find(pair);
  return it == pairs_.end() ? nullptr : &it->second;
}

const std::vector<InstanceId>& KnowledgeBase::InstancesEverOf(ConceptId c) const {
  if (c.value >= concept_instances_.size()) return kEmptyInstances;
  return concept_instances_[c.value];
}

std::vector<InstanceId> KnowledgeBase::LiveInstancesOf(ConceptId c) const {
  std::vector<InstanceId> out;
  for (InstanceId e : InstancesEverOf(c)) {
    if (Contains(IsAPair{c, e})) out.push_back(e);
  }
  return out;
}

std::vector<std::pair<InstanceId, int>> KnowledgeBase::Iter1InstancesOf(
    ConceptId c) const {
  std::vector<std::pair<InstanceId, int>> out;
  for (InstanceId e : InstancesEverOf(c)) {
    IsAPair pair{c, e};
    auto it = pairs_.find(pair);
    if (it == pairs_.end()) continue;
    if (it->second.count > 0 && it->second.iter1_count > 0) {
      out.emplace_back(e, it->second.iter1_count);
    }
  }
  return out;
}

const std::vector<uint32_t>& KnowledgeBase::RecordsOfConcept(ConceptId c) const {
  if (c.value >= concept_records_.size()) return kEmptyRecords;
  return concept_records_[c.value];
}

void KnowledgeBase::ForEachLiveRecordOfConcept(
    ConceptId c, const std::function<void(const ExtractionRecord&)>& fn) const {
  for (uint32_t id : RecordsOfConcept(c)) {
    const ExtractionRecord& record = records_[id];
    if (!record.rolled_back) fn(record);
  }
}

std::vector<uint32_t> KnowledgeBase::LiveRecordsTriggeredBy(const IsAPair& pair) const {
  std::vector<uint32_t> out;
  auto it = pairs_.find(pair);
  if (it == pairs_.end()) return out;
  for (uint32_t id : it->second.triggered_records) {
    if (!records_[id].rolled_back) out.push_back(id);
  }
  return out;
}

std::unordered_map<InstanceId, int> KnowledgeBase::SubInstancesOf(
    const IsAPair& pair) const {
  std::unordered_map<InstanceId, int> out;
  for (uint32_t id : LiveRecordsTriggeredBy(pair)) {
    for (InstanceId e : records_[id].instances) {
      if (e == pair.instance) continue;
      ++out[e];
    }
  }
  return out;
}

bool KnowledgeBase::RollbackOne(uint32_t record_id, std::vector<IsAPair>* newly_dead) {
  ExtractionRecord& record = records_[record_id];
  if (record.rolled_back) return false;
  record.rolled_back = true;
  for (InstanceId e : record.instances) {
    IsAPair pair{record.concept_id, e};
    auto it = pairs_.find(pair);
    assert(it != pairs_.end());
    PairStats& stats = it->second;
    assert(stats.count > 0);
    --stats.count;
    if (record.iteration == 1) --stats.iter1_count;
    if (stats.count == 0) {
      --live_pairs_;
      newly_dead->push_back(pair);
    }
  }
  return true;
}

int KnowledgeBase::CascadeDeadPairs(std::vector<IsAPair> dead, CascadePolicy policy) {
  int rolled = 0;
  while (!dead.empty()) {
    IsAPair pair = dead.back();
    dead.pop_back();
    auto it = pairs_.find(pair);
    if (it == pairs_.end()) continue;
    for (uint32_t dependent_id : it->second.triggered_records) {
      ExtractionRecord& dependent = records_[dependent_id];
      if (dependent.rolled_back) continue;
      bool roll = false;
      if (policy == CascadePolicy::kAnyTriggerDead) {
        roll = true;
      } else {
        // kAllTriggersDead: the record falls only when no live trigger
        // could still have licensed it.
        roll = true;
        for (InstanceId t : dependent.triggers) {
          if (Contains(IsAPair{dependent.concept_id, t})) {
            roll = false;
            break;
          }
        }
      }
      if (roll && RollbackOne(dependent_id, &dead)) ++rolled;
    }
  }
  return rolled;
}

int KnowledgeBase::RollbackRecord(uint32_t record_id, CascadePolicy policy) {
  std::vector<IsAPair> dead;
  if (!RollbackOne(record_id, &dead)) return 0;
  return 1 + CascadeDeadPairs(std::move(dead), policy);
}

int KnowledgeBase::RemovePair(const IsAPair& pair, CascadePolicy policy) {
  auto it = pairs_.find(pair);
  if (it == pairs_.end() || it->second.count == 0) return 0;
  int rolled = 0;
  std::vector<IsAPair> dead;
  // Copy: RollbackOne does not mutate producing_records, but be defensive
  // about iterator stability across future changes.
  std::vector<uint32_t> producers = it->second.producing_records;
  for (uint32_t id : producers) {
    if (RollbackOne(id, &dead)) ++rolled;
  }
  return rolled + CascadeDeadPairs(std::move(dead), policy);
}

int KnowledgeBase::RollbackTriggeredBy(const IsAPair& pair, CascadePolicy policy) {
  int rolled = 0;
  std::vector<IsAPair> dead;
  for (uint32_t id : LiveRecordsTriggeredBy(pair)) {
    if (RollbackOne(id, &dead)) ++rolled;
  }
  return rolled + CascadeDeadPairs(std::move(dead), policy);
}

}  // namespace semdrift
