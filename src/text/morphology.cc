#include "text/morphology.h"

#include <array>
#include <cctype>

#include "util/string_util.h"

namespace semdrift {

namespace {

struct Irregular {
  const char* singular;
  const char* plural;
};

// Irregulars that occur in the paper's concepts and the example worlds.
constexpr std::array<Irregular, 10> kIrregulars = {{
    {"child", "children"},
    {"woman", "women"},
    {"man", "men"},
    {"person", "people"},
    {"mouse", "mice"},
    {"goose", "geese"},
    {"foot", "feet"},
    {"tooth", "teeth"},
    {"datum", "data"},
    {"criterion", "criteria"},
}};

bool IsVowel(char c) {
  c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

// Applies `fn` to the final whitespace-separated word of `term`.
template <typename Fn>
std::string MapLastWord(std::string_view term, Fn fn) {
  size_t pos = term.rfind(' ');
  if (pos == std::string_view::npos) return fn(term);
  std::string head(term.substr(0, pos + 1));
  return head + fn(term.substr(pos + 1));
}

std::string PluralizeWord(std::string_view w) {
  for (const auto& irr : kIrregulars) {
    if (w == irr.singular) return irr.plural;
  }
  std::string s(w);
  if (s.empty()) return s;
  size_t n = s.size();
  if (s[n - 1] == 'y' && n >= 2 && !IsVowel(s[n - 2])) {
    s.erase(n - 1);
    return s + "ies";
  }
  if (EndsWith(s, "s") || EndsWith(s, "x") || EndsWith(s, "z") || EndsWith(s, "ch") ||
      EndsWith(s, "sh")) {
    return s + "es";
  }
  return s + "s";
}

std::string SingularizeWord(std::string_view w) {
  for (const auto& irr : kIrregulars) {
    if (w == irr.plural) return irr.singular;
  }
  std::string s(w);
  size_t n = s.size();
  if (n >= 4 && EndsWith(s, "ies")) {
    s.erase(n - 3);
    return s + "y";
  }
  if (n >= 3 && (EndsWith(s, "ses") || EndsWith(s, "xes") || EndsWith(s, "zes") ||
                 EndsWith(s, "ches") || EndsWith(s, "shes"))) {
    s.erase(n - 2);
    return s;
  }
  if (n >= 2 && s[n - 1] == 's' && s[n - 2] != 's') {
    s.erase(n - 1);
    return s;
  }
  return s;
}

}  // namespace

std::string Pluralize(std::string_view singular) {
  return MapLastWord(singular, PluralizeWord);
}

std::string Singularize(std::string_view plural) {
  return MapLastWord(plural, SingularizeWord);
}

}  // namespace semdrift
