file(REMOVE_RECURSE
  "libsemdrift_kb.a"
)
