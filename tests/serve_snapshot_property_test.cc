// Property-based pass over the serving snapshot: for 200 seeded random
// (world, KB, health) triples, WriteServingSnapshot -> SnapshotReader::Open
// must round-trip (deep Validate() passes, counts and quarantine flags
// match the source KB), and re-serializing the same inputs must produce a
// byte-identical file (the format has no hidden nondeterminism — no
// timestamps, no pointer-keyed iteration). Failures print the seed; re-run
// the generator with that seed to replay.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "kb/knowledge_base.h"
#include "testing/random_structures.h"
#include "serve/snapshot.h"
#include "util/fault_injection.h"

namespace semdrift {
namespace {

constexpr int kSeeds = 200;

TEST(ServeSnapshotPropertyTest, RandomKbsRoundTripAndReserializeByteIdentical) {
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    World world = property::RandomWorld(seed);
    size_t num_sentences = 0;
    KnowledgeBase kb = property::RandomKb(world, seed, &num_sentences);
    ASSERT_TRUE(kb.Validate(world.num_concepts(), num_sentences).ok());

    // Every third seed also exercises health flags (quarantine/degraded).
    RunHealthReport health;
    const RunHealthReport* health_ptr = nullptr;
    if (seed % 3 == 0) {
      health = property::RandomHealth(world, seed);
      health_ptr = &health;
    }

    const std::string path = ::testing::TempDir() + "/snapshot_prop.bin";
    Status write =
        WriteServingSnapshot(kb, world, num_sentences, health_ptr, path);
    ASSERT_TRUE(write.ok()) << write.message();

    auto reader = SnapshotReader::Open(path);
    ASSERT_TRUE(reader.ok()) << reader.status().message();
    Status valid = reader->Validate();
    EXPECT_TRUE(valid.ok()) << valid.message();

    // The snapshot's live-pair census must match the KB's.
    ASSERT_EQ(reader->num_concepts(), world.num_concepts());
    uint64_t live_pairs = 0;
    for (uint32_t c = 0; c < world.num_concepts(); ++c) {
      std::vector<InstanceId> live =
          kb.LiveInstancesOf(ConceptId(c));
      ASSERT_EQ(reader->ConceptEnd(c) - reader->ConceptBegin(c), live.size());
      live_pairs += live.size();
      for (InstanceId e : live) {
        EXPECT_NE(reader->FindPair(c, e.value), SnapshotReader::kNoPair);
      }
      if (health_ptr != nullptr) {
        EXPECT_EQ(reader->ConceptQuarantined(c), health.IsQuarantined(c));
      }
    }
    EXPECT_EQ(reader->num_pairs(), live_pairs);

    // Re-serialization is byte-identical.
    const std::string path2 = ::testing::TempDir() + "/snapshot_prop2.bin";
    ASSERT_TRUE(
        WriteServingSnapshot(kb, world, num_sentences, health_ptr, path2).ok());
    auto bytes1 = ReadFileToString(path);
    auto bytes2 = ReadFileToString(path2);
    ASSERT_TRUE(bytes1.ok() && bytes2.ok());
    EXPECT_EQ(*bytes1, *bytes2);
  }
}

// The provenance-log round trip must hold for arbitrary valid KBs, not just
// pipeline-produced ones: records out -> FromRecords -> identical live set.
TEST(ServeSnapshotPropertyTest, RandomKbsSurviveRecordRoundTrip) {
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    World world = property::RandomWorld(seed);
    size_t num_sentences = 0;
    KnowledgeBase kb = property::RandomKb(world, seed, &num_sentences);
    auto rebuilt = KnowledgeBase::FromRecords(kb.records());
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().message();
    ASSERT_TRUE(rebuilt->Validate(world.num_concepts(), num_sentences).ok());
    for (uint32_t c = 0; c < world.num_concepts(); ++c) {
      EXPECT_EQ(rebuilt->LiveInstancesOf(ConceptId(c)),
                kb.LiveInstancesOf(ConceptId(c)));
    }
  }
}

}  // namespace
}  // namespace semdrift
