#ifndef SEMDRIFT_ML_MATRIX_H_
#define SEMDRIFT_ML_MATRIX_H_

#include <cstddef>
#include <vector>

namespace semdrift {

/// Dense row-major matrix of doubles. Sized for this library's needs
/// (kernel matrices up to a few thousand rows, regularized solves in the
/// KPCA feature space): straightforward O(n^3) algorithms, no BLAS.
class Matrix {
 public:
  Matrix() = default;

  /// Zero-initialized rows x cols matrix.
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Raw row pointer (row-major layout).
  double* Row(size_t r) { return data_.data() + r * cols_; }
  const double* Row(size_t r) const { return data_.data() + r * cols_; }

  Matrix Transpose() const;

  /// this * other. Precondition: cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// this + other (elementwise). Preconditions: equal shape.
  Matrix Add(const Matrix& other) const;

  /// this - other (elementwise).
  Matrix Sub(const Matrix& other) const;

  /// In-place this += scale * other.
  void AddInPlace(const Matrix& other, double scale = 1.0);

  /// In-place scalar multiply.
  void Scale(double factor);

  /// Adds `value` to every diagonal element (ridge shift).
  void AddDiagonal(double value);

  /// Trace (sum of diagonal). Precondition: square.
  double Trace() const;

  /// Frobenius norm squared.
  double FrobeniusNormSq() const;

  /// Max |a_ij - b_ij|; utility for tests.
  double MaxAbsDiff(const Matrix& other) const;

  /// True when every entry is finite (no NaN / +-Inf). Fit routines reject
  /// non-finite input up front: one poisoned entry would silently spread
  /// through a whole kernel matrix or forest.
  bool AllFinite() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b for symmetric positive definite A via Cholesky.
/// Returns false when A is not positive definite (no solution written).
bool CholeskySolve(const Matrix& a, const std::vector<double>& b,
                   std::vector<double>* x);

/// Solves A X = B (B has multiple right-hand columns) via Cholesky.
bool CholeskySolveMatrix(const Matrix& a, const Matrix& b, Matrix* x);

/// Solves A x = b for general square A via LU with partial pivoting.
/// Returns false on (numerical) singularity.
bool LuSolve(const Matrix& a, const std::vector<double>& b, std::vector<double>* x);

/// Result of a symmetric eigendecomposition: A = V diag(values) V^T, with
/// eigenvalues ascending and eigenvectors in the *columns* of `vectors`.
struct EigenResult {
  std::vector<double> values;
  Matrix vectors;
};

/// Eigendecomposition of a symmetric matrix via Householder
/// tridiagonalization followed by implicit-shift QL. O(n^3); accurate for
/// the kernel matrices used here. Precondition: `a` square and symmetric.
EigenResult SymmetricEigen(const Matrix& a);

}  // namespace semdrift

#endif  // SEMDRIFT_ML_MATRIX_H_
