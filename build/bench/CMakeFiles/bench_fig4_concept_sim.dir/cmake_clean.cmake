file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_concept_sim.dir/bench_fig4_concept_sim.cc.o"
  "CMakeFiles/bench_fig4_concept_sim.dir/bench_fig4_concept_sim.cc.o.d"
  "bench_fig4_concept_sim"
  "bench_fig4_concept_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_concept_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
