#ifndef SEMDRIFT_SCENARIO_SCENARIO_H_
#define SEMDRIFT_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "corpus/world.h"
#include "util/status.h"

namespace semdrift {
namespace scenario {

/// Pipeline knobs a scenario may override — the thresholds the paper's
/// cleaning guarantees hinge on (Sec. 3.2.1's similarity bands, Fig. 5(b)'s
/// seed-labeling k, Eq. 21's vote floor) plus the iteration/round budgets.
struct ScenarioPipeline {
  int max_iterations = 12;
  int max_rounds = 6;
  double mutex_threshold = 0.15;
  double similar_threshold = 0.5;
  int min_core_instances = 3;
  int frequency_threshold_k = 4;
  bool eq21_gate_accidental = true;
  double eq21_min_average_vote = 0.42;
  /// Run DP cleaning after extraction (off = raw drift measurement).
  bool clean = true;
  /// Save the world and corpus, reload them, and require the reloaded copy
  /// to re-serialize byte-identically before running the pipeline — the
  /// morphology-heavy scenarios use this to stress the loaders.
  bool serialize_roundtrip = false;
};

/// Compute-fault overlay, reusing util/fault_injection's ComputeFaultPlan
/// through the supervisor. Kind/stage names use the fault-injection string
/// forms ("throw"/"stall"/"nan", "score_warm"/"collect_training"/...);
/// empty lists mean the plan's defaults.
struct ScenarioFaults {
  double rate = 0.0;
  uint64_t seed = 0;
  std::vector<std::string> kinds;
  std::vector<std::string> stages;
  int transient_attempts = 0;
  int max_retries = 2;
  bool quarantine = true;
  /// Stage deadline forwarded to the supervisor. Stall faults spin until
  /// this cancels them, so a scenario using "stall" must set it (validated);
  /// <= 0 disables deadlines entirely.
  int stage_deadline_ms = 30000;
};

/// Streaming leg: with epochs > 1 the runner replays the same corpus through
/// the incremental stream pipeline (src/stream) in epoch slices after the
/// batch leg, and measures how far the streamed taxonomy drifts from the
/// batch one over the evaluation scope (Jaccard distance of live pairs).
/// The defaults model the worst case for divergence: pure incremental, no
/// rebuild cadence, no final rebuild. epochs = 1 disables the leg entirely.
struct ScenarioStream {
  int epochs = 1;
  /// Forwarded to StreamOptions: rebuild cadence (0 = never), whether the
  /// last epoch rebuilds (true retires all drift, forcing divergence 0), and
  /// the dirty-fraction escalation threshold.
  int full_rebuild_every = 0;
  bool final_full_rebuild = false;
  double rebuild_dirty_frac = 1.0;
};

/// Recorded behavior bounds a replay gates on. Unset bounds are not
/// checked. Precision bounds apply only when the metric is defined (has a
/// nonzero denominator); an *undefined* metric with a min bound set is
/// itself a violation — a cleaner that empties the KB must not pass a
/// precision floor vacuously.
struct ScenarioEnvelope {
  std::optional<double> min_precision_before;
  std::optional<double> min_precision_after;
  std::optional<double> max_precision_after;
  std::optional<double> min_pcorr;
  std::optional<double> min_rerror;
  std::optional<int64_t> min_live_pairs_after;
  std::optional<int64_t> max_rounds;
  std::optional<int64_t> max_records_rolled_back;
  std::optional<int64_t> max_quarantined;
  /// Ceiling on the incremental-vs-batch live-pair Jaccard distance over the
  /// evaluation scope. Only meaningful for scenarios with stream.epochs > 1;
  /// like the precision floors, a bound set while the metric is undefined
  /// (both KBs empty over the scope) is a violation.
  std::optional<double> max_stream_divergence;
};

/// One named adversarial scenario: a full parameterization of world, corpus,
/// pipeline and fault overlay, plus the behavior envelope its replay gates
/// on. Serialized as scenarios/<name>.toml; the serializer and parser
/// round-trip byte-exactly (shortest-round-trip doubles), which is what lets
/// the shrinker promise bit-identical minimized output.
struct Scenario {
  std::string name;
  /// Grammar archetype this scenario instantiates (see grammar.h), or
  /// "manual" for hand-written ones.
  std::string archetype;
  /// Free-form provenance: what the scenario stresses, how it was found,
  /// the pre-fix metric for hunter discoveries.
  std::string notes;
  /// Master seed (world and corpus derive their streams from it, matching
  /// eval/experiment's derivation).
  uint64_t seed = 2014;
  /// Cleaning/evaluation scope: the first N concepts.
  int num_eval_concepts = 20;
  /// Name the first concepts after the paper's 20 evaluation concepts.
  bool paper_named_concepts = false;
  WorldSpec world;
  CorpusSpec corpus;
  ScenarioPipeline pipeline;
  ScenarioStream stream;
  ScenarioFaults faults;
  ScenarioEnvelope envelope;
};

/// Structural validity: world/corpus specs pass their validators, the name
/// is a safe file stem, thresholds and probabilities are in range, fault
/// kind/stage names parse. Everything the runner assumes.
Status ValidateScenario(const Scenario& s);

/// Serializes to the scenario TOML subset (stable field order, shortest
/// round-trip doubles, only set envelope bounds emitted).
std::string ScenarioToToml(const Scenario& s);

/// Parses what ScenarioToToml emits: [section] headers, `key = value` lines
/// with integer/float/bool/quoted-string/string-array values, full-line `#`
/// comments. Unknown sections or keys are hard errors (a typo'd bound must
/// not silently stop gating). The result is validated.
Result<Scenario> ScenarioFromToml(const std::string& text);

Status SaveScenarioFile(const Scenario& s, const std::string& path);
Result<Scenario> LoadScenarioFile(const std::string& path);

}  // namespace scenario
}  // namespace semdrift

#endif  // SEMDRIFT_SCENARIO_SCENARIO_H_
