# Empty compiler generated dependencies file for ml_manifold_test.
# This may be replaced when dependencies are built.
