file(REMOVE_RECURSE
  "CMakeFiles/semdrift_ml.dir/kernel.cc.o"
  "CMakeFiles/semdrift_ml.dir/kernel.cc.o.d"
  "CMakeFiles/semdrift_ml.dir/knn.cc.o"
  "CMakeFiles/semdrift_ml.dir/knn.cc.o.d"
  "CMakeFiles/semdrift_ml.dir/kpca.cc.o"
  "CMakeFiles/semdrift_ml.dir/kpca.cc.o.d"
  "CMakeFiles/semdrift_ml.dir/manifold.cc.o"
  "CMakeFiles/semdrift_ml.dir/manifold.cc.o.d"
  "CMakeFiles/semdrift_ml.dir/matrix.cc.o"
  "CMakeFiles/semdrift_ml.dir/matrix.cc.o.d"
  "CMakeFiles/semdrift_ml.dir/multitask.cc.o"
  "CMakeFiles/semdrift_ml.dir/multitask.cc.o.d"
  "CMakeFiles/semdrift_ml.dir/random_forest.cc.o"
  "CMakeFiles/semdrift_ml.dir/random_forest.cc.o.d"
  "libsemdrift_ml.a"
  "libsemdrift_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semdrift_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
