# Empty dependencies file for semdrift_baselines.
# This may be replaced when dependencies are built.
