#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "corpus/serialization.h"
#include "corpus/world.h"
#include "eval/experiment.h"
#include "extract/checkpoint.h"
#include "util/fault_injection.h"

namespace semdrift {
namespace {

std::string SampleContent() {
  std::string content = "semdrift-world\tv2\n";
  for (int i = 0; i < 40; ++i) {
    content += "C\tconcept_" + std::to_string(i) + "\n";
  }
  content += "#crc32\tdeadbeef\n";
  return content;
}

TEST(FaultInjectorTest, DeterministicInSeed) {
  std::string content = SampleContent();
  for (FaultKind kind : AllFaultKinds()) {
    FaultInjector a(42);
    FaultInjector b(42);
    EXPECT_EQ(a.Corrupt(content, kind), b.Corrupt(content, kind))
        << FaultKindName(kind);
  }
  FaultInjector a(42);
  FaultInjector b(43);
  FaultKind ka, kb;
  std::string ca = a.CorruptRandom(content, &ka);
  std::string cb = b.CorruptRandom(content, &kb);
  EXPECT_TRUE(ka != kb || ca != cb);
}

TEST(FaultInjectorTest, EveryKindMutates) {
  std::string content = SampleContent();
  for (FaultKind kind : AllFaultKinds()) {
    FaultInjector injector(7);
    EXPECT_NE(injector.Corrupt(content, kind), content) << FaultKindName(kind);
  }
}

TEST(FaultInjectorTest, OriginalIsUntouchedAndEmptyIsSafe) {
  std::string content = SampleContent();
  std::string copy = content;
  FaultInjector injector(9);
  injector.CorruptRandom(content);
  EXPECT_EQ(content, copy);
  for (FaultKind kind : AllFaultKinds()) {
    EXPECT_EQ(injector.Corrupt("", kind), "") << FaultKindName(kind);
  }
}

TEST(FaultInjectorTest, ZeroFillPreservesLengthAndZerosARange) {
  std::string content = SampleContent();
  ASSERT_EQ(content.find('\0'), std::string::npos);
  for (uint64_t seed = 0; seed < 16; ++seed) {
    FaultInjector injector(seed);
    std::string corrupted = injector.Corrupt(content, FaultKind::kZeroFill);
    ASSERT_EQ(corrupted.size(), content.size()) << "seed " << seed;
    EXPECT_NE(corrupted, content) << "seed " << seed;
    // The damage is one contiguous zeroed range; everything else is intact.
    size_t first = corrupted.find('\0');
    ASSERT_NE(first, std::string::npos) << "seed " << seed;
    size_t last = corrupted.find_last_of('\0');
    for (size_t i = first; i <= last; ++i) {
      EXPECT_EQ(corrupted[i], '\0') << "seed " << seed << " index " << i;
    }
    EXPECT_EQ(corrupted.substr(0, first), content.substr(0, first));
    EXPECT_EQ(corrupted.substr(last + 1), content.substr(last + 1));
  }
}

TEST(ReadFileToStringTest, RoundTripsARegularFile) {
  std::string path = ::testing::TempDir() + "/read_roundtrip.bin";
  std::string payload = "line one\nline two";
  payload.push_back('\0');  // Binary-safe: zero bytes must round-trip too.
  payload += "with a zero byte\n";
  payload += SampleContent();
  ASSERT_TRUE(WriteStringToFile(payload, path).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
}

TEST(ReadFileToStringTest, RejectsNonRegularFiles) {
  auto dir = ReadFileToString(::testing::TempDir());
  ASSERT_FALSE(dir.ok());
  EXPECT_EQ(dir.status().code(), Status::Code::kDataLoss);
  EXPECT_NE(dir.status().message().find("not a regular file"), std::string::npos);

  auto missing = ReadFileToString(::testing::TempDir() + "/does_not_exist.bin");
  EXPECT_FALSE(missing.ok());
}

/// The acceptance sweep, in-process: >= 200 seeded corruptions across all
/// three persisted artifacts. Every one must either load (the corruption
/// happened to be survivable), fail with a clean Status, or — in lenient
/// mode — produce a LoadReport accounting for every payload line. Reaching
/// the end of the loop at all proves no loader crashed.
TEST(FaultInjectorTest, FuzzSweepLoadersNeverCrash) {
  ExperimentConfig config = PaperScaleConfig(0.05);
  config.seed = 17;
  config.corpus.render_text = true;
  auto experiment = Experiment::Build(config);
  std::string dir = ::testing::TempDir();
  std::string world_path = dir + "/fuzz_world.tsv";
  std::string corpus_path = dir + "/fuzz_corpus.tsv";
  ASSERT_TRUE(SaveWorld(experiment->world(), world_path).ok());
  ASSERT_TRUE(SaveCorpus(experiment->world(), experiment->corpus(), corpus_path).ok());
  CheckpointConfig checkpoint;
  checkpoint.dir = dir + "/fuzz_ckpt";
  std::vector<IterationStats> stats;
  ASSERT_TRUE(experiment->ExtractWithCheckpoints(checkpoint, &stats).ok());
  ASSERT_FALSE(stats.empty());

  std::vector<std::string> pristine;
  for (const std::string& path :
       {world_path, corpus_path, CheckpointPath(checkpoint.dir, stats.back().iteration)}) {
    auto content = ReadFileToString(path);
    ASSERT_TRUE(content.ok());
    pristine.push_back(std::move(*content));
  }

  const int kRounds = 216;
  std::string fuzz_path = dir + "/fuzzed.bin";
  int rejected = 0, survived = 0;
  for (int i = 0; i < kRounds; ++i) {
    int target = i % 3;
    FaultInjector injector(1000 + i);
    FaultKind kind;
    ASSERT_TRUE(
        WriteStringToFile(injector.CorruptRandom(pristine[target], &kind), fuzz_path)
            .ok());
    SCOPED_TRACE(std::string(FaultKindName(kind)) + " on artifact " +
                 std::to_string(target) + " round " + std::to_string(i));
    if (target == 0) {
      auto strict = LoadWorld(fuzz_path);
      strict.ok() ? ++survived : ++rejected;
      LoadReport report;
      auto lenient = LoadWorld(fuzz_path, {LoadOptions::Mode::kLenient}, &report);
      if (lenient.ok()) {
        EXPECT_EQ(report.lines_seen, report.lines_loaded + report.skipped.size());
      }
    } else if (target == 1) {
      auto strict = LoadCorpus(experiment->world(), fuzz_path);
      strict.ok() ? ++survived : ++rejected;
      LoadReport report;
      auto lenient = LoadCorpus(experiment->world(), fuzz_path,
                                {LoadOptions::Mode::kLenient}, &report);
      if (lenient.ok()) {
        EXPECT_EQ(report.lines_seen, report.lines_loaded + report.skipped.size());
      }
    } else {
      auto loaded = LoadCheckpoint(fuzz_path);
      if (!loaded.ok()) {
        ++rejected;
      } else {
        auto restored = KnowledgeBase::FromRecords(loaded->records);
        Status valid = restored.ok()
                           ? restored->Validate(experiment->world().num_concepts(),
                                                experiment->corpus().sentences.size())
                           : restored.status();
        valid.ok() ? ++survived : ++rejected;
      }
    }
  }
  // Framing makes nearly every corruption detectable; sanity-check that the
  // sweep exercised the rejection paths instead of a no-op injector.
  EXPECT_EQ(rejected + survived, kRounds);
  EXPECT_GT(rejected, kRounds / 2);
}

}  // namespace
}  // namespace semdrift
