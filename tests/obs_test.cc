// Unit tests for the observability layer: histogram bucket-edge (le)
// semantics, counter saturation, ring wraparound (drop-oldest + dropped
// counter), deterministic JSON shape, JSONL / Chrome trace exports, and a
// many-threads concurrent-recording test that the TSan pass in
// tools/check.sh leans on.
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault_injection.h"

namespace semdrift {
namespace {

TEST(MetricsTest, HistogramBucketEdgesUseLeSemantics) {
  MetricsRegistry registry;
  auto h = registry.RegisterHistogram("h", {1.0, 10.0, 100.0});
  h.Observe(0.5);    // <= 1
  h.Observe(1.0);    // == edge -> first bucket (le)
  h.Observe(10.0);   // == edge -> second bucket
  h.Observe(100.0);  // == edge -> third bucket
  h.Observe(100.5);  // above every bound -> +Inf overflow
  HistogramSnapshot snap = registry.HistogramValues("h");
  ASSERT_EQ(snap.upper_bounds, (std::vector<double>{1.0, 10.0, 100.0}));
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 10.0 + 100.0 + 100.5);
}

TEST(MetricsTest, CounterSaturatesInsteadOfWrapping) {
  MetricsRegistry registry;
  auto c = registry.RegisterCounter("c");
  c.Add(UINT64_MAX - 1);
  EXPECT_EQ(c.Value(), UINT64_MAX - 1);
  c.Add(10);  // Would wrap; must stick at the max.
  EXPECT_EQ(c.Value(), UINT64_MAX);
  c.Add(1);
  EXPECT_EQ(c.Value(), UINT64_MAX);
}

TEST(MetricsTest, ReRegistrationSharesTheCell) {
  MetricsRegistry registry;
  auto a = registry.RegisterCounter("shared");
  auto b = registry.RegisterCounter("shared");
  a.Add(2);
  b.Add(3);
  EXPECT_EQ(registry.CounterValue("shared"), 5u);
}

TEST(MetricsTest, ToJsonIsSortedAndCompact) {
  MetricsRegistry registry;
  registry.RegisterCounter("zeta").Add(1);
  registry.RegisterCounter("alpha").Add(2);
  registry.RegisterGauge("g").Set(-7);
  registry.RegisterHistogram("h", {1.0, 2.0}).Observe(1.5);
  std::string json = registry.ToJson();
  // Sorted keys; no whitespace (rides in one line-protocol response field).
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
  EXPECT_NE(json.find("\"g\":-7"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(MetricsTest, ResetZeroesButKeepsHandles) {
  MetricsRegistry registry;
  auto c = registry.RegisterCounter("c");
  auto h = registry.RegisterHistogram("h", {1.0});
  c.Add(5);
  h.Observe(0.5);
  registry.Reset();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(registry.HistogramValues("h").count, 0u);
  c.Add(1);  // Handle still live after Reset.
  EXPECT_EQ(registry.CounterValue("c"), 1u);
}

TEST(TraceTest, RingWraparoundDropsOldestAndCounts) {
  TraceRecorder recorder(/*capacity=*/4);
  recorder.Enable(true);
  for (int i = 0; i < 7; ++i) {
    TraceSpan span;
    span.name = "s" + std::to_string(i);
    recorder.Record(std::move(span));
  }
  EXPECT_EQ(recorder.spans_recorded(), 7u);
  EXPECT_EQ(recorder.spans_dropped(), 3u);
  std::vector<TraceSpan> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first with the three oldest gone; sequence ids are global.
  EXPECT_EQ(spans.front().name, "s3");
  EXPECT_EQ(spans.front().id, 3u);
  EXPECT_EQ(spans.back().name, "s6");
  EXPECT_EQ(spans.back().id, 6u);
}

TEST(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder recorder(8);
  TraceSpan span;
  span.name = "ignored";
  recorder.Record(std::move(span));
  EXPECT_EQ(recorder.spans_recorded(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(TraceTest, ScopedSpanCapturesTagsOutcomeAndEpoch) {
  TraceRecorder recorder(8);
  recorder.Enable(true);
  recorder.SetEpoch(3);
  {
    ScopedSpan span(&recorder, "unit.work", /*concept_id=*/42);
    ASSERT_TRUE(span.active());
    span.AddTag("k", "v");
    span.AddTag("n", uint64_t{7});
    span.SetOutcome("ok");
  }
  recorder.SetEpoch(-1);
  std::vector<TraceSpan> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  const TraceSpan& s = spans[0];
  EXPECT_EQ(s.name, "unit.work");
  EXPECT_EQ(s.concept_id, 42u);
  EXPECT_EQ(s.epoch, 3);
  EXPECT_EQ(s.outcome, "ok");
  ASSERT_EQ(s.tags.size(), 2u);
  EXPECT_EQ(s.tags[0].first, "k");
  EXPECT_EQ(s.tags[0].second, "v");
  EXPECT_EQ(s.tags[1].second, "7");
  // CanonicalLine covers only deterministic fields: no timing, no thread.
  std::string line = s.CanonicalLine();
  EXPECT_NE(line.find("unit.work"), std::string::npos);
  EXPECT_EQ(line.find("wall"), std::string::npos);
  EXPECT_EQ(line.find("dur"), std::string::npos);
}

TEST(TraceTest, ExportsWriteParseableFiles) {
  TraceRecorder recorder(8);
  recorder.Enable(true);
  {
    ScopedSpan span(&recorder, "export.work", 1);
    span.AddTag("quote", "a\"b\\c");  // Exercises JSON escaping.
    span.SetOutcome("ok");
  }
  std::string jsonl_path = ::testing::TempDir() + "/obs_test_trace.jsonl";
  std::string chrome_path = ::testing::TempDir() + "/obs_test_trace.json";
  std::string error;
  ASSERT_TRUE(recorder.WriteJsonl(jsonl_path, &error)) << error;
  ASSERT_TRUE(recorder.WriteChromeTrace(chrome_path, &error)) << error;

  auto jsonl = ReadFileToString(jsonl_path);
  ASSERT_TRUE(jsonl.ok());
  EXPECT_NE(jsonl->find("\"name\":\"export.work\""), std::string::npos);
  EXPECT_NE(jsonl->find("a\\\"b\\\\c"), std::string::npos);

  auto chrome = ReadFileToString(chrome_path);
  ASSERT_TRUE(chrome.ok());
  EXPECT_EQ(chrome->find("{\"traceEvents\":["), 0u);
  EXPECT_NE(chrome->find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ((*chrome)[chrome->size() - 2], '}');  // ...]}\n
}

// Concurrent Record from many threads must be free of data races (TSan runs
// this test via tools/check.sh) and lose nothing when under capacity.
TEST(TraceTest, ConcurrentRecordingIsRaceFreeAndLossless) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  TraceRecorder recorder(kThreads * kPerThread);
  recorder.Enable(true);
  std::atomic<int> barrier{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.fetch_add(1);
      while (barrier.load() < kThreads) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        ScopedSpan span(&recorder, "mt.work", static_cast<uint32_t>(t));
        span.AddTag("i", static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(recorder.spans_recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(recorder.spans_dropped(), 0u);
  std::vector<TraceSpan> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kThreads) * kPerThread);
  // Sequence ids are the retention order: strictly increasing.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].id, spans[i - 1].id + 1);
  }
}

// Counters and histograms under concurrent hammering: totals must be exact
// (every Add lands) — also part of the TSan pass.
TEST(MetricsTest, ConcurrentRecordingIsExact) {
  MetricsRegistry registry;
  auto c = registry.RegisterCounter("mt.c");
  auto h = registry.RegisterHistogram("mt.h", {10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Add();
        h.Observe(static_cast<double>(i % 200));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.HistogramValues("mt.h").count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(TraceTest, ClearDropsSpansAndResetsCounters) {
  TraceRecorder recorder(4);
  recorder.Enable(true);
  for (int i = 0; i < 6; ++i) {
    TraceSpan span;
    span.name = "x";
    recorder.Record(std::move(span));
  }
  recorder.Clear();
  EXPECT_EQ(recorder.spans_recorded(), 0u);
  EXPECT_EQ(recorder.spans_dropped(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_TRUE(recorder.enabled());  // Clear leaves the enabled flag alone.
  TraceSpan span;
  span.name = "after";
  recorder.Record(std::move(span));
  ASSERT_EQ(recorder.Snapshot().size(), 1u);
  EXPECT_EQ(recorder.Snapshot()[0].id, 0u);  // Ids restart after Clear.
}

}  // namespace
}  // namespace semdrift
