#include "baselines/threshold.h"

#include <algorithm>
#include <limits>

namespace semdrift {

double LearnRemovalThreshold(std::vector<std::pair<double, bool>> scored) {
  size_t total_errors = 0;
  for (const auto& [score, is_error] : scored) {
    (void)score;
    total_errors += is_error ? 1 : 0;
  }
  if (total_errors == 0 || scored.empty()) {
    return -std::numeric_limits<double>::infinity();
  }
  std::sort(scored.begin(), scored.end());
  double best_f1 = -1.0;
  double best_threshold = -std::numeric_limits<double>::infinity();
  size_t errors_below = 0;
  for (size_t i = 0; i + 1 < scored.size(); ++i) {
    errors_below += scored[i].second ? 1 : 0;
    if (scored[i].first == scored[i + 1].first) continue;
    double tp = static_cast<double>(errors_below);
    double fp = static_cast<double>(i + 1) - tp;
    double fn = static_cast<double>(total_errors) - tp;
    double f1 = tp > 0 ? 2 * tp / (2 * tp + fp + fn) : 0.0;
    if (f1 > best_f1) {
      best_f1 = f1;
      best_threshold = 0.5 * (scored[i].first + scored[i + 1].first);
    }
  }
  return best_threshold;
}

}  // namespace semdrift
