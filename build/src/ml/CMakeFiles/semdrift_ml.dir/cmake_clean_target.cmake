file(REMOVE_RECURSE
  "libsemdrift_ml.a"
)
