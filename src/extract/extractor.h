#ifndef SEMDRIFT_EXTRACT_EXTRACTOR_H_
#define SEMDRIFT_EXTRACT_EXTRACTOR_H_

#include <functional>
#include <vector>

#include "kb/knowledge_base.h"
#include "text/sentence.h"
#include "util/status.h"

namespace semdrift {

/// How competing candidate concepts are compared when disambiguating an
/// ambiguous sentence.
enum class EvidencePolicy {
  /// Attach to the candidate whose known listed instances carry the larger
  /// summed support count (frequency-weighted, the Probase-style behaviour;
  /// this is what lets one famous polyseme — count(chicken, animal) in the
  /// hundreds — outvote a couple of tail facts and cause drift).
  kSupportSum,
  /// Attach to the candidate with more distinct known listed instances;
  /// support sums only break ties. More conservative; ablation option.
  kDistinctCount,
};

/// Tuning knobs of the semantic-based iterative extractor.
struct ExtractorOptions {
  /// Hard cap on iterations; the run also stops at the fixpoint (an
  /// iteration that extracts nothing). The paper ran ~100 iterations with
  /// 99.999% of pairs arriving within the first 10.
  int max_iterations = 12;
  EvidencePolicy evidence = EvidencePolicy::kSupportSum;
  /// On an evidence tie between candidate concepts, prefer the concept
  /// syntactically adjacent to "such as" (the last candidate); when false,
  /// tied sentences stay un-extracted until the tie breaks.
  bool prefer_adjacent_on_tie = true;
};

/// Per-iteration progress, the raw series behind Fig. 5(a).
struct IterationStats {
  int iteration = 0;
  /// Sentences understood (extraction events applied) this iteration.
  size_t extractions = 0;
  /// Distinct live isA pairs after the iteration.
  size_t distinct_pairs = 0;
};

/// The semantic-based iterative bootstrapping extractor of Sec. 1–2 (the
/// Probase mechanism the paper builds on):
///
///  * Iteration 1 consumes only *unambiguous* sentences (a single candidate
///    concept) — the high-precision core.
///  * Iteration i > 1 re-visits every still-unconsumed ambiguous sentence
///    and attaches "such as" to the candidate concept with the strongest
///    knowledge-base evidence: the number of listed instances already known
///    (live) under that concept; ties break by summed support counts, then
///    by syntactic adjacency. The known instances are recorded as the
///    extraction's *triggers* — the provenance Drifting-Point cleaning
///    later exploits.
///
/// Decisions within an iteration read the knowledge base as of the
/// iteration start (two-phase: decide, then apply), so results are
/// independent of sentence order.
class IterativeExtractor {
 public:
  /// `corpus` is borrowed and must outlive the extractor.
  IterativeExtractor(const SentenceStore* corpus, ExtractorOptions options);

  /// Runs iterations until fixpoint or the cap, populating `kb`.
  /// `on_iteration` (optional) observes the KB after each iteration — used
  /// by the Fig. 5(a) bench to compute per-iteration precision.
  /// `first_iteration` > 1 continues a run restored via ResumeFrom.
  std::vector<IterationStats> Run(
      KnowledgeBase* kb,
      const std::function<void(const IterationStats&, const KnowledgeBase&)>&
          on_iteration = nullptr,
      int first_iteration = 1);

  /// Runs a single iteration (1-based); returns the number of extraction
  /// events applied. Exposed for tests, step-wise demos and the
  /// checkpointing driver.
  size_t RunIteration(KnowledgeBase* kb, int iteration);

  /// Rebuilds the consumed-sentence state from a restored knowledge base
  /// (checkpoint resume): every recorded extraction marks its sentence
  /// consumed, rolled back or not — a rollback never returns a sentence to
  /// the pool. Fails with kDataLoss when a record references a sentence
  /// outside this corpus (the KB belongs to different data).
  Status ResumeFrom(const KnowledgeBase& kb);

  /// Notifies the extractor that the borrowed corpus grew (streaming epoch
  /// ingest): sentences appended since construction (or the last sync) start
  /// unconsumed and become eligible from the next Run(). The consumed state
  /// of existing sentences is untouched, so a grown extractor continues the
  /// prior run instead of restarting it.
  void SyncCorpusGrowth();

  /// True when sentence `id` has been consumed by some iteration.
  bool Consumed(SentenceId id) const { return consumed_[id.value]; }

  const ExtractorOptions& options() const { return options_; }

 private:
  const SentenceStore* corpus_;
  ExtractorOptions options_;
  std::vector<bool> consumed_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_EXTRACT_EXTRACTOR_H_
