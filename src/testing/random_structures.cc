#include "testing/random_structures.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "text/ids.h"

namespace semdrift {
namespace property {

WorldSpec RandomWorldSpec(Rng* rng) {
  WorldSpec spec;
  spec.num_concepts = static_cast<int>(rng->NextInt(3, 12));
  spec.min_instances = static_cast<int>(rng->NextInt(2, 6));
  spec.max_instances = spec.min_instances + static_cast<int>(rng->NextInt(0, 20));
  spec.popularity_zipf = rng->NextDouble(0.5, 2.0);
  spec.polysemy_rate = rng->NextDouble(0.0, 0.5);
  spec.similar_twin_rate = rng->NextDouble(0.0, 0.3);
  spec.twin_overlap = rng->NextDouble(0.3, 0.9);
  spec.min_confusables = 1;
  spec.max_confusables = static_cast<int>(rng->NextInt(1, 4));
  spec.verified_fraction = rng->NextDouble(0.0, 0.6);
  return spec;
}

World RandomWorld(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  WorldSpec spec = RandomWorldSpec(&rng);
  return GenerateWorld(spec, &rng);
}

KnowledgeBase RandomKb(const World& world, uint64_t seed,
                       size_t* num_sentences) {
  Rng rng(seed * 0x2545f4914f6cdd1dULL + 7);
  KnowledgeBase kb;
  uint32_t next_sentence = 0;
  std::vector<uint32_t> record_ids;
  const int events = static_cast<int>(rng.NextInt(5, 80));
  for (int i = 0; i < events; ++i) {
    ConceptId c(static_cast<uint32_t>(rng.NextBounded(world.num_concepts())));
    const std::vector<InstanceId>& members = world.Members(c);
    if (members.empty()) continue;
    // 1-3 distinct member instances of c.
    std::vector<InstanceId> pick = members;
    rng.Shuffle(&pick);
    pick.resize(std::min<size_t>(pick.size(), 1 + rng.NextBounded(3)));
    // Triggers must be live pairs of the same concept at apply time;
    // iteration-1 records are trigger-free seeds.
    std::vector<InstanceId> live = kb.LiveInstancesOf(c);
    std::vector<InstanceId> triggers;
    if (!live.empty() && rng.NextBool(0.6)) {
      rng.Shuffle(&live);
      live.resize(std::min<size_t>(live.size(), 1 + rng.NextBounded(2)));
      triggers = std::move(live);
    }
    const int iteration =
        triggers.empty() ? 1 : static_cast<int>(rng.NextInt(2, 6));
    record_ids.push_back(kb.ApplyExtraction(SentenceId(next_sentence++), c,
                                            pick, triggers, iteration));
  }
  // Random rollbacks, including repeats (idempotent) and cascades.
  const int rollbacks = static_cast<int>(rng.NextBounded(record_ids.size() + 1));
  for (int i = 0; i < rollbacks; ++i) {
    uint32_t id = record_ids[rng.NextBounded(record_ids.size())];
    CascadePolicy policy = rng.NextBool(0.5) ? CascadePolicy::kAllTriggersDead
                                             : CascadePolicy::kAnyTriggerDead;
    kb.RollbackRecord(id, policy);
  }
  if (num_sentences != nullptr) *num_sentences = next_sentence;
  return kb;
}

RunHealthReport RandomHealth(const World& world, uint64_t seed) {
  Rng rng(seed * 0xda942042e4dd58b5ULL + 13);
  RunHealthReport health;
  const PipelineStage stages[] = {
      PipelineStage::kScoreWarm, PipelineStage::kCollectTraining,
      PipelineStage::kDetectorTrain, PipelineStage::kDetectorScore};
  const ConceptOutcome outcomes[] = {
      ConceptOutcome::kOk, ConceptOutcome::kRetried, ConceptOutcome::kDegraded,
      ConceptOutcome::kQuarantined};
  const int entries = static_cast<int>(rng.NextBounded(12));
  for (int i = 0; i < entries; ++i) {
    uint32_t c = static_cast<uint32_t>(rng.NextBounded(world.num_concepts()));
    health.Record(c, outcomes[rng.NextBounded(4)],
                  static_cast<int>(rng.NextBounded(3)),
                  stages[rng.NextBounded(4)], "property fault");
  }
  const int drops = static_cast<int>(rng.NextBounded(4));
  for (int i = 0; i < drops; ++i) {
    DroppedInstance drop;
    drop.concept_id = static_cast<uint32_t>(rng.NextBounded(world.num_concepts()));
    drop.instance = static_cast<uint32_t>(rng.NextBounded(world.num_instances()));
    drop.stage = stages[rng.NextBounded(4)];
    drop.reason = "property drop";
    health.RecordDrop(drop);
  }
  if (rng.NextBool(0.3)) health.RecordDetectorFallback(1, "property fallback");
  return health;
}

}  // namespace property
}  // namespace semdrift
