#include "dp/cleaner.h"

#include <unordered_set>

#include "dp/sentence_check.h"
#include "util/logging.h"

namespace semdrift {

DpCleaner::DpCleaner(const SentenceStore* sentences, VerifiedSource verified,
                     size_t num_concepts, CleanerOptions options)
    : sentences_(sentences),
      verified_(std::move(verified)),
      num_concepts_(num_concepts),
      options_(std::move(options)) {}

CleaningReport DpCleaner::Clean(KnowledgeBase* kb,
                                const std::vector<ConceptId>& scope) const {
  CleaningReport report;
  report.live_pairs_before = kb->num_live_pairs();
  std::unordered_set<IsAPair, IsAPairHash> seen_accidental;
  std::unordered_set<IsAPair, IsAPairHash> seen_intentional;
  std::unique_ptr<DpDetector> detector;

  for (int round = 1; round <= options_.max_rounds; ++round) {
    // Fresh views of the (possibly already partially cleaned) KB.
    MutexIndex mutex(*kb, num_concepts_, options_.mutex);
    ScoreCache scores(kb, options_.score_model);
    // Bulk warm-up: build + walk every in-scope concept graph across the
    // thread pool now, so feature extraction below hits a frozen cache.
    scores.Warm(scope);
    FeatureExtractor features(kb, &mutex, &scores);
    SeedLabeler seeds(kb, &mutex, verified_, options_.seeds);

    if (options_.retrain_each_round || detector == nullptr) {
      TrainingData data = CollectTrainingData(*kb, &features, seeds, scope);
      auto trained = TrainDetector(options_.detector, data, options_.train);
      if (trained != nullptr) {
        detector = std::move(trained);
      } else if (detector == nullptr) {
        SD_LOG(kWarning) << "DP cleaning: no labeled seeds; nothing to do";
        break;
      }
    }

    // Classify every live instance in scope against this round's features.
    struct Detection {
      IsAPair pair;
      DpClass type;
    };
    std::vector<Detection> detections;
    for (ConceptId c : scope) {
      for (InstanceId e : kb->LiveInstancesOf(c)) {
        FeatureVector f = features.Extract(c, e);
        DpClass type = detector->Classify(c, f);
        if (type == DpClass::kAccidentalDP || type == DpClass::kIntentionalDP) {
          detections.push_back(Detection{IsAPair{c, e}, type});
        }
      }
    }

    size_t rolled_this_round = 0;
    // Eq. 21 adjudication of one record; returns rolled-back count.
    auto adjudicate = [&](uint32_t record_id) -> size_t {
      const ExtractionRecord& record = kb->record(record_id);
      if (record.rolled_back) return 0;
      const Sentence& sentence = sentences_->Get(record.sentence);
      if (sentence.candidate_concepts.size() < 2) return 0;
      SmoothedVote vote = SmoothedAttachmentVote(sentence, record.concept_id,
                                                 &scores, options_.eq21_smoothing);
      // Two arbitration views: the raw Eq. 21 argmax (paper-exact; nearly
      // zero false positives) and the smoothed, concept-size-calibrated vote
      // with its weak-evidence floor (Property 4). A disagreement from
      // either rolls the record back.
      ConceptId raw_best = BestAttachment(sentence, &scores);
      SentenceCheckDecision decision;
      decision.record_id = record_id;
      decision.extracted_concept = record.concept_id;
      decision.best_concept = vote.best;
      decision.rolled_back =
          vote.best != record.concept_id || raw_best != record.concept_id ||
          vote.average_vote_for_extracted < options_.eq21_min_average_vote;
      report.sentence_checks.push_back(decision);
      if (!decision.rolled_back) return 0;
      return kb->RollbackRecord(record_id, options_.cascade);
    };

    for (const Detection& detection : detections) {
      if (!kb->Contains(detection.pair)) continue;  // Died in an earlier cascade.
      if (detection.type == DpClass::kAccidentalDP) {
        if (seen_accidental.insert(detection.pair).second) {
          report.accidental_dps.push_back(detection.pair);
        }
        if (options_.eq21_gate_accidental) {
          // Arbitrate every extraction the DP activated...
          for (uint32_t record_id : kb->LiveRecordsTriggeredBy(detection.pair)) {
            rolled_this_round += adjudicate(record_id);
          }
          // ...and every extraction that produced the pair. Ambiguous
          // producers get the Eq. 21 check; an unambiguous producer is
          // rolled back only when it is the pair's sole support (the
          // accidental single-sentence signature, Property 3).
          const PairStats* stats = kb->Find(detection.pair);
          if (stats != nullptr) {
            std::vector<uint32_t> producers = stats->producing_records;
            for (uint32_t record_id : producers) {
              const ExtractionRecord& record = kb->record(record_id);
              if (record.rolled_back) continue;
              const Sentence& sentence = sentences_->Get(record.sentence);
              if (sentence.candidate_concepts.size() >= 2) {
                rolled_this_round += adjudicate(record_id);
              } else if (kb->Count(detection.pair) == 1) {
                rolled_this_round +=
                    kb->RollbackRecord(record_id, options_.cascade);
              }
            }
          }
        } else {
          // The paper's unconditional treatment: drop the DP and everything
          // it activated.
          rolled_this_round +=
              kb->RollbackTriggeredBy(detection.pair, options_.cascade);
          rolled_this_round += kb->RemovePair(detection.pair, options_.cascade);
        }
      } else {
        if (seen_intentional.insert(detection.pair).second) {
          report.intentional_dps.push_back(detection.pair);
        }
        // Eq. 21 adjudication of every live extraction this DP triggered.
        for (uint32_t record_id : kb->LiveRecordsTriggeredBy(detection.pair)) {
          rolled_this_round += adjudicate(record_id);
        }
      }
    }

    report.rounds = round;
    report.records_rolled_back += rolled_this_round;
    if (rolled_this_round == 0) break;
  }

  report.live_pairs_after = kb->num_live_pairs();
  return report;
}

}  // namespace semdrift
