# Empty dependencies file for semdrift_ml.
# This may be replaced when dependencies are built.
