#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

#include "dp/seed_labeling.h"

namespace semdrift {
namespace {

ConceptId C(uint32_t v) { return ConceptId(v); }
InstanceId E(uint32_t v) { return InstanceId(v); }
SentenceId S(uint32_t v) { return SentenceId(v); }

/// Scenario mirroring the paper's running example (Sec. 3.2.3):
///   C0 = animal, C1 = food; mutually exclusive cores.
///   e1  "dog":     verified animal, triggers clean record {e2, e3}.
///   e10 "chicken": verified animal, triggers a drifted record {e8, e9}
///                  whose instances are verified food.
///   e8  "pork":    accidentally extracted once under animal (via the
///                  drifted record); verified food -> RULE 2.
class SeedScenario : public ::testing::Test {
 protected:
  SeedScenario() {
    uint32_t sid = 0;
    // Animal core: dog (e1) x6, cat (e2) x6, chicken (e10) x6 — all above
    // the frequency threshold k=4.
    for (int i = 0; i < 6; ++i) kb_.ApplyExtraction(S(sid++), C(0), {E(1)}, {}, 1);
    for (int i = 0; i < 6; ++i) kb_.ApplyExtraction(S(sid++), C(0), {E(2)}, {}, 1);
    for (int i = 0; i < 6; ++i) kb_.ApplyExtraction(S(sid++), C(0), {E(10)}, {}, 1);
    kb_.ApplyExtraction(S(sid++), C(0), {E(3)}, {}, 1);  // Tail correct.
    // Food core: pork (e8) x6, beef (e9) x6, rice (e11) x6.
    for (int i = 0; i < 6; ++i) kb_.ApplyExtraction(S(sid++), C(1), {E(8)}, {}, 1);
    for (int i = 0; i < 6; ++i) kb_.ApplyExtraction(S(sid++), C(1), {E(9)}, {}, 1);
    for (int i = 0; i < 6; ++i) kb_.ApplyExtraction(S(sid++), C(1), {E(11)}, {}, 1);
    // Clean triggered record under animal: dog -> {cat, e3}.
    kb_.ApplyExtraction(S(sid++), C(0), {E(2), E(3)}, {E(1)}, 2);
    // Drifted record under animal: chicken -> {pork, beef}.
    kb_.ApplyExtraction(S(sid++), C(0), {E(8), E(9), E(10)}, {E(10)}, 2);
    mutex_ = std::make_unique<MutexIndex>(kb_, 2);
    verified_ = [](const IsAPair&) { return false; };  // Frequency evidence only.
    labeler_ = std::make_unique<SeedLabeler>(&kb_, mutex_.get(), verified_);
  }

  KnowledgeBase kb_;
  std::unique_ptr<MutexIndex> mutex_;
  VerifiedSource verified_;
  std::unique_ptr<SeedLabeler> labeler_;
};

TEST_F(SeedScenario, EvidencedCorrectByFrequency) {
  EXPECT_TRUE(labeler_->EvidencedCorrect(IsAPair{C(0), E(1)}));   // 6 > k=4.
  EXPECT_FALSE(labeler_->EvidencedCorrect(IsAPair{C(0), E(3)}));  // Count 2.
  EXPECT_FALSE(labeler_->EvidencedCorrect(IsAPair{C(0), E(8)}));  // Late only.
}

TEST_F(SeedScenario, EvidencedCorrectByVerifiedSource) {
  SeedLabeler with_source(&kb_, mutex_.get(), [](const IsAPair& pair) {
    return pair.concept_id == ConceptId(0) && pair.instance == InstanceId(3);
  });
  EXPECT_TRUE(with_source.EvidencedCorrect(IsAPair{C(0), E(3)}));
}

TEST_F(SeedScenario, EvidencedIncorrectRequiresLateSingleAndMutexHome) {
  // pork under animal: count 1, first iteration 2, verified-correct food
  // home (frequency evidence), food mutex animal.
  EXPECT_TRUE(labeler_->EvidencedIncorrect(IsAPair{C(0), E(8)}));
  // cat under animal: evidenced correct, not incorrect.
  EXPECT_FALSE(labeler_->EvidencedIncorrect(IsAPair{C(0), E(2)}));
  // e3: late-ish count 2 but no mutex home.
  EXPECT_FALSE(labeler_->EvidencedIncorrect(IsAPair{C(0), E(3)}));
}

TEST_F(SeedScenario, Rule2LabelsAccidental) {
  EXPECT_EQ(labeler_->Label(C(0), E(8)), DpClass::kAccidentalDP);
  EXPECT_EQ(labeler_->Label(C(0), E(9)), DpClass::kAccidentalDP);
}

TEST_F(SeedScenario, Rule1LabelsIntentional) {
  // chicken triggered a record with two foreign-evidenced subs (pork, beef)
  // and no home-evidenced sub.
  EXPECT_EQ(labeler_->Label(C(0), E(10)), DpClass::kIntentionalDP);
}

TEST_F(SeedScenario, Rule3LabelsNonDp) {
  // dog's only triggered record contains cat (evidenced correct in animal).
  EXPECT_EQ(labeler_->Label(C(0), E(1)), DpClass::kNonDP);
  // cat has no triggered records at all.
  EXPECT_EQ(labeler_->Label(C(0), E(2)), DpClass::kNonDP);
}

TEST_F(SeedScenario, UnevidencedStaysUnlabeled) {
  EXPECT_EQ(labeler_->Label(C(0), E(3)), DpClass::kUnlabeled);
}

TEST_F(SeedScenario, LabelConceptCoversLiveInstances) {
  auto labels = labeler_->LabelConcept(C(0));
  std::unordered_set<uint32_t> seen;
  for (const auto& [e, label] : labels) {
    (void)label;
    seen.insert(e.value);
  }
  EXPECT_EQ(labels.size(), kb_.LiveInstancesOf(C(0)).size());
  EXPECT_TRUE(seen.count(E(10).value) > 0);
}

TEST_F(SeedScenario, SingleForeignSubIsNotEnoughForRule1) {
  // Build a *correct* guest-topic record: dog triggers {e8} only — one
  // foreign-evidenced sub, which must NOT make dog an Intentional DP (the
  // symmetric polyseme situation).
  kb_.ApplyExtraction(S(500), C(0), {E(8), E(1)}, {E(1)}, 3);
  MutexIndex fresh_mutex(kb_, 2);
  SeedLabeler fresh(&kb_, &fresh_mutex, verified_);
  EXPECT_NE(fresh.Label(C(0), E(1)), DpClass::kIntentionalDP);
}

TEST_F(SeedScenario, ThresholdKControlsEvidence) {
  SeedLabelerConfig config;
  config.frequency_threshold_k = 10;  // Nothing reaches 10.
  SeedLabeler strict(&kb_, mutex_.get(), verified_, config);
  EXPECT_FALSE(strict.EvidencedCorrect(IsAPair{C(0), E(1)}));
  EXPECT_EQ(strict.Label(C(0), E(1)), DpClass::kUnlabeled);
  // Lower k labels more.
  config.frequency_threshold_k = 0;
  SeedLabeler loose(&kb_, mutex_.get(), verified_, config);
  EXPECT_TRUE(loose.EvidencedCorrect(IsAPair{C(0), E(3)}));
}

}  // namespace
}  // namespace semdrift
