#include "corpus/serialization.h"

#include <fstream>
#include <unordered_map>

#include "util/framed_file.h"
#include "util/string_util.h"

namespace semdrift {

namespace {

constexpr char kWorldTag[] = "semdrift-world";
constexpr char kCorpusTag[] = "semdrift-corpus";
constexpr int kFormatVersion = 2;

/// Per-load policy driver shared by the world and corpus loaders: turns a
/// framed file's verdicts plus per-line failures into strict errors or
/// lenient LoadReport entries.
class LineLoader {
 public:
  LineLoader(const std::string& path, const LoadOptions& options, LoadReport* report)
      : path_(path), lenient_(options.mode == LoadOptions::Mode::kLenient),
        report_(report) {}

  /// Framing verdicts first: truncation and checksum damage fail a strict
  /// load before any line is looked at (a half-file must never half-load).
  Status CheckFraming(const FramedFile& file) {
    if (report_ != nullptr) {
      report_->format_version = file.version;
      report_->checksum_present = file.checksum_present;
      report_->checksum_ok = file.checksum_ok;
      report_->truncated = file.truncated;
    }
    if (!lenient_) {
      if (file.truncated) {
        return Status::DataLoss(path_ +
                                ": truncated file (missing checksum footer) at byte offset " +
                                std::to_string(file.bytes_read));
      }
      if (file.checksum_present && !file.checksum_ok) {
        return Status::DataLoss(path_ + ": checksum mismatch (corrupt file) over " +
                                std::to_string(file.bytes_read) +
                                " bytes (byte offset 0)");
      }
    }
    return Status::OK();
  }

  /// Called once per payload line that failed to parse. Returns OK in
  /// lenient mode (line recorded and skipped), the error in strict mode.
  Status LineError(size_t line_number, const std::string& why) {
    if (lenient_) {
      if (report_ != nullptr) report_->skipped.push_back({line_number, why});
      return Status::OK();
    }
    return Status::InvalidArgument(path_ + ":" + std::to_string(line_number) +
                                   ": " + why);
  }

  void CountSeen() {
    if (report_ != nullptr) ++report_->lines_seen;
  }
  void CountLoaded() {
    if (report_ != nullptr) ++report_->lines_loaded;
  }

 private:
  const std::string& path_;
  bool lenient_;
  LoadReport* report_;
};

}  // namespace

Status SaveWorld(const World& world, const std::string& path) {
  FramedWriter out(path, kWorldTag, kFormatVersion);
  for (size_t ci = 0; ci < world.num_concepts(); ++ci) {
    out.WriteLine("C\t" + world.ConceptName(ConceptId(static_cast<uint32_t>(ci))));
  }
  for (size_t ei = 0; ei < world.num_instances(); ++ei) {
    out.WriteLine("I\t" + world.InstanceName(InstanceId(static_cast<uint32_t>(ei))));
  }
  for (size_t ci = 0; ci < world.num_concepts(); ++ci) {
    ConceptId c(static_cast<uint32_t>(ci));
    const auto& members = world.Members(c);
    const auto& weights = world.MemberWeights(c);
    for (size_t i = 0; i < members.size(); ++i) {
      out.WriteLine("M\t" + world.ConceptName(c) + "\t" +
                    world.InstanceName(members[i]) + "\t" +
                    FormatDouble(weights[i], 9) + "\t" +
                    (world.IsVerified(c, members[i]) ? "1" : "0"));
    }
    for (ConceptId other : world.Confusables(c)) {
      out.WriteLine("X\t" + world.ConceptName(c) + "\t" + world.ConceptName(other));
    }
    ConceptId twin = world.SimilarTwin(c);
    if (twin.valid() && twin.value > c.value) {
      out.WriteLine("T\t" + world.ConceptName(c) + "\t" + world.ConceptName(twin));
    }
  }
  for (const auto& polyseme : world.polysemes()) {
    out.WriteLine("P\t" + world.InstanceName(polyseme.instance) + "\t" +
                  world.ConceptName(polyseme.home) + "\t" +
                  world.ConceptName(polyseme.guest));
  }
  return out.Close();
}

Result<World> LoadWorld(const std::string& path) {
  return LoadWorld(path, LoadOptions{}, nullptr);
}

Result<World> LoadWorld(const std::string& path, const LoadOptions& options,
                        LoadReport* report) {
  auto framed = ReadFramedFile(path, kWorldTag, kFormatVersion);
  if (!framed.ok()) return framed.status();
  LineLoader loader(path, options, report);
  Status framing = loader.CheckFraming(*framed);
  if (!framing.ok()) return framing;

  World::Builder builder;
  for (size_t i = 0; i < framed->lines.size(); ++i) {
    const std::string& line = framed->lines[i];
    size_t line_number = framed->line_numbers[i];
    loader.CountSeen();
    std::vector<std::string> fields = Split(line, '\t');
    const std::string& tag = fields[0];
    std::string why;
    if (tag == "C" && fields.size() == 2 && !fields[1].empty()) {
      builder.AddConcept(fields[1]);
    } else if (tag == "I" && fields.size() == 2 && !fields[1].empty()) {
      builder.AddInstance(fields[1]);
    } else if (tag == "M" && fields.size() == 5) {
      double weight = 0.0;
      if (fields[1].empty() || fields[2].empty()) {
        why = "empty name in membership";
      } else if (!ParseDouble(fields[3], &weight) || weight < 0.0) {
        why = "bad membership weight '" + fields[3] + "'";
      } else if (fields[4] != "0" && fields[4] != "1") {
        why = "bad verified flag '" + fields[4] + "'";
      } else {
        ConceptId c = builder.AddConcept(fields[1]);
        InstanceId e = builder.AddInstance(fields[2]);
        builder.AddMembership(c, e, weight);
        if (fields[4] == "1") builder.MarkVerified(c, e);
      }
    } else if (tag == "X" && fields.size() == 3 && !fields[1].empty() &&
               !fields[2].empty()) {
      builder.AddConfusable(builder.AddConcept(fields[1]),
                            builder.AddConcept(fields[2]));
    } else if (tag == "T" && fields.size() == 3 && !fields[1].empty() &&
               !fields[2].empty()) {
      builder.SetSimilarTwins(builder.AddConcept(fields[1]),
                              builder.AddConcept(fields[2]));
    } else if (tag == "P" && fields.size() == 4 && !fields[1].empty() &&
               !fields[2].empty() && !fields[3].empty()) {
      builder.AddPolyseme(builder.AddInstance(fields[1]),
                          builder.AddConcept(fields[2]),
                          builder.AddConcept(fields[3]));
    } else {
      why = "unrecognized record '" + tag + "' with " +
            std::to_string(fields.size()) + " fields";
    }
    if (!why.empty()) {
      Status s = loader.LineError(line_number, why);
      if (!s.ok()) return s;
      continue;
    }
    loader.CountLoaded();
  }
  return builder.Build();
}

Status SaveCorpus(const World& world, const Corpus& corpus, const std::string& path) {
  FramedWriter out(path, kCorpusTag, kFormatVersion);
  for (const Sentence& sentence : corpus.sentences.sentences()) {
    const SentenceTruth& truth = corpus.TruthOf(sentence.id);
    std::string line = "S\t" + std::to_string(static_cast<int>(truth.kind)) + "\t" +
                       world.ConceptName(truth.true_concept) + "\t" +
                       (truth.polyseme.valid() ? world.InstanceName(truth.polyseme)
                                               : "-");
    line += "\t";
    for (size_t i = 0; i < sentence.candidate_concepts.size(); ++i) {
      if (i > 0) line += "|";
      line += world.ConceptName(sentence.candidate_concepts[i]);
    }
    line += "\t";
    for (size_t i = 0; i < sentence.candidate_instances.size(); ++i) {
      if (i > 0) line += "|";
      line += world.InstanceName(sentence.candidate_instances[i]);
    }
    line += "\t" + sentence.text;
    out.WriteLine(line);
  }
  return out.Close();
}

Result<Corpus> LoadCorpus(const World& world, const std::string& path) {
  return LoadCorpus(world, path, LoadOptions{}, nullptr);
}

Result<Corpus> LoadCorpus(const World& world, const std::string& path,
                          const LoadOptions& options, LoadReport* report) {
  auto framed = ReadFramedFile(path, kCorpusTag, kFormatVersion);
  if (!framed.ok()) return framed.status();
  LineLoader loader(path, options, report);
  Status framing = loader.CheckFraming(*framed);
  if (!framing.ok()) return framing;

  Corpus corpus;
  for (size_t i = 0; i < framed->lines.size(); ++i) {
    const std::string& line = framed->lines[i];
    size_t line_number = framed->line_numbers[i];
    loader.CountSeen();
    std::vector<std::string> fields = Split(line, '\t');
    std::string why;
    SentenceTruth truth;
    Sentence sentence;
    if (fields.size() != 7 || fields[0] != "S") {
      why = "malformed record";
    } else {
      int64_t kind = 0;
      if (!ParseIntInRange(fields[1], 0,
                           static_cast<int64_t>(SentenceKind::kWrongFact), &kind)) {
        why = "sentence kind '" + fields[1] + "' out of range";
      } else {
        truth.kind = static_cast<SentenceKind>(kind);
        truth.true_concept = world.FindConcept(fields[2]);
        if (!truth.true_concept.valid()) why = "unknown concept " + fields[2];
      }
      if (why.empty() && fields[3] != "-") {
        truth.polyseme = world.FindInstance(fields[3]);
        if (!truth.polyseme.valid()) why = "unknown instance " + fields[3];
      }
      if (why.empty()) {
        for (const std::string& name : Split(fields[4], '|')) {
          ConceptId c = world.FindConcept(name);
          if (!c.valid()) {
            why = "unknown concept " + name;
            break;
          }
          sentence.candidate_concepts.push_back(c);
        }
      }
      if (why.empty()) {
        for (const std::string& name : Split(fields[5], '|')) {
          InstanceId e = world.FindInstance(name);
          if (!e.valid()) {
            why = "unknown instance " + name;
            break;
          }
          sentence.candidate_instances.push_back(e);
        }
      }
      if (why.empty() &&
          (sentence.candidate_concepts.empty() || sentence.candidate_instances.empty())) {
        why = "sentence without candidates";
      }
    }
    if (!why.empty()) {
      Status s = loader.LineError(line_number, why);
      if (!s.ok()) return s;
      continue;
    }
    sentence.text = fields[6];
    corpus.sentences.Add(std::move(sentence));
    corpus.truths.push_back(truth);
    loader.CountLoaded();
  }
  return corpus;
}

Status ExportTaxonomyTsv(const KnowledgeBase& kb, const World& world,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << "concept\tinstance\tsupport\titer1_support\n";
  for (size_t ci = 0; ci < world.num_concepts(); ++ci) {
    ConceptId c(static_cast<uint32_t>(ci));
    for (InstanceId e : kb.LiveInstancesOf(c)) {
      if (e.value >= world.num_instances()) continue;  // Open-class discovery.
      IsAPair pair{c, e};
      out << world.ConceptName(c) << "\t" << world.InstanceName(e) << "\t"
          << kb.Count(pair) << "\t" << kb.Iter1Count(pair) << "\n";
    }
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace semdrift
