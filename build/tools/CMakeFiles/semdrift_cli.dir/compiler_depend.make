# Empty compiler generated dependencies file for semdrift_cli.
# This may be replaced when dependencies are built.
