#include "serve/batcher.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/cancellation.h"
#include "util/thread_pool.h"

namespace semdrift {

namespace {

struct BatchMetrics {
  MetricsRegistry::Counter requests;
  MetricsRegistry::Counter batches;
  MetricsRegistry::Histogram batch_size;
  MetricsRegistry::Histogram queue_wait_ns;
  MetricsRegistry::Counter shed;
  MetricsRegistry::Counter overload_engaged;
  MetricsRegistry::Gauge overload_level;
};

BatchMetrics& GetBatchMetrics() {
  static BatchMetrics metrics{
      GlobalMetrics().RegisterCounter("batch.requests"),
      GlobalMetrics().RegisterCounter("batch.batches"),
      GlobalMetrics().RegisterHistogram("batch.size", SizeBuckets()),
      GlobalMetrics().RegisterHistogram("batch.queue_wait_ns", LatencyBucketsNs()),
      GlobalMetrics().RegisterCounter("batch.shed"),
      GlobalMetrics().RegisterCounter("batch.overload.engaged"),
      GlobalMetrics().RegisterGauge("batch.overload.level")};
  return metrics;
}

/// The fixed OVERLOADED response line (tests and clients match it verbatim).
constexpr const char* kOverloadedResponse =
    "OVERLOADED\tqueue-wait p99 over deadline budget; request shed";

}  // namespace

Batcher::Batcher(QueryEngine* engine, BatcherOptions options)
    : Batcher(EngineSource([engine] { return EnginePin{engine, nullptr}; }),
              options) {}

Batcher::Batcher(EngineSource source, BatcherOptions options)
    : source_(std::move(source)), options_(options) {
  if (options_.max_batch == 0) options_.max_batch = 1;
  paused_ = options_.start_paused;
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

Batcher::~Batcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    paused_ = false;  // A paused batcher still drains on shutdown.
  }
  wake_.notify_all();
  dispatcher_.join();
}

std::future<std::string> Batcher::Submit(std::string line) {
  return Submit(std::move(line), options_.default_deadline_ms,
                RequestPriority::kNormal);
}

std::future<std::string> Batcher::Submit(std::string line, int deadline_ms) {
  return Submit(std::move(line), deadline_ms, RequestPriority::kNormal);
}

std::future<std::string> Batcher::Submit(std::string line, int deadline_ms,
                                         RequestPriority priority) {
  Request req;
  req.line = std::move(line);
  std::future<std::string> future = req.promise.get_future();
  SubmitRequest(std::move(req), deadline_ms, priority);
  return future;
}

void Batcher::SubmitCallback(std::string line, int deadline_ms,
                             RequestPriority priority,
                             std::function<void(std::string)> done,
                             bool record_stats) {
  Request req;
  req.line = std::move(line);
  req.callback = std::move(done);
  req.record_stats = record_stats;
  SubmitRequest(std::move(req), deadline_ms, priority);
}

void Batcher::Finish(Request* req, std::string response) {
  if (req->callback) {
    req->callback(std::move(response));
  } else {
    req->promise.set_value(std::move(response));
  }
}

void Batcher::SubmitRequest(Request req, int deadline_ms,
                            RequestPriority priority) {
  req.submitted = std::chrono::steady_clock::now();
  GetBatchMetrics().requests.Add();
  if (deadline_ms > 0) {
    req.has_deadline = true;
    req.deadline = req.submitted + std::chrono::milliseconds(deadline_ms);
  }
  bool shed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      Finish(&req, "ERR\tserver shutting down");
      return;
    }
    if (options_.deadline_budget_ms > 0) {
      RefreshOverloadLocked(req.submitted);
      // Level 1 sheds kLow, level 2 sheds kLow and kNormal. kHigh is always
      // admitted — overload must never blind the operator's probes.
      shed = (stats_.overload_level >= 1 && priority == RequestPriority::kLow) ||
             (stats_.overload_level >= 2 && priority != RequestPriority::kHigh);
    }
    if (shed) {
      stats_.shed++;
    } else {
      queue_.push_back(std::move(req));
      stats_.requests++;
    }
  }
  if (shed) {
    GetBatchMetrics().shed.Add();
    Finish(&req, kOverloadedResponse);
    return;
  }
  wake_.notify_all();
}

void Batcher::RefreshOverloadLocked(std::chrono::steady_clock::time_point now) {
  const auto horizon = now - std::chrono::milliseconds(options_.overload_window_ms);
  while (!wait_samples_.empty() && wait_samples_.front().first < horizon) {
    wait_samples_.pop_front();
  }
  while (wait_samples_.size() > options_.overload_window_samples) {
    wait_samples_.pop_front();
  }
  const uint64_t p99 = QueueWaitP99Locked();
  const uint64_t budget_ns =
      static_cast<uint64_t>(options_.deadline_budget_ms) * 1000000ull;
  const uint64_t engage[3] = {0, budget_ns / 2, budget_ns};
  const uint64_t disengage[3] = {0, budget_ns / 4, budget_ns / 2};
  int target = 0;
  if (p99 >= engage[2]) {
    target = 2;
  } else if (p99 >= engage[1]) {
    target = 1;
  }
  int level = stats_.overload_level;
  if (target > level) {
    // Engage immediately: the queue is drowning now.
    level = target;
  } else {
    // Disengage one rung at a time, and only once p99 has fallen well below
    // the rung's engage point — the hysteresis that stops flapping at the
    // boundary.
    while (level > target && p99 < disengage[level]) --level;
  }
  if (level != stats_.overload_level) {
    if (stats_.overload_level == 0 && level > 0) {
      stats_.overload_engaged++;
      GetBatchMetrics().overload_engaged.Add();
    }
    stats_.overload_level = level;
    GetBatchMetrics().overload_level.Set(level);
  }
}

uint64_t Batcher::QueueWaitP99Locked() const {
  if (wait_samples_.empty()) return 0;
  std::vector<uint64_t> waits;
  waits.reserve(wait_samples_.size());
  for (const auto& [at, ns] : wait_samples_) waits.push_back(ns);
  const size_t idx = (waits.size() - 1) * 99 / 100;
  std::nth_element(waits.begin(), waits.begin() + static_cast<ptrdiff_t>(idx),
                   waits.end());
  return waits[idx];
}

void Batcher::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Batcher::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  wake_.notify_all();
}

BatcherStats Batcher::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Batcher::DispatchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    wake_.wait(lock, [this] {
      return stopping_ || (!paused_ && !queue_.empty());
    });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Coalesce: take what is already queued; if the batch is still small,
    // linger up to max_wait_ms for stragglers (but never past a deadline
    // already in the queue — expiring while parked would be self-inflicted).
    if (!stopping_ && queue_.size() < options_.max_batch &&
        options_.max_wait_ms > 0) {
      auto park_until = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.max_wait_ms);
      for (const Request& r : queue_) {
        if (r.has_deadline && r.deadline < park_until) park_until = r.deadline;
      }
      wake_.wait_until(lock, park_until, [this] {
        return stopping_ || queue_.size() >= options_.max_batch;
      });
      if (paused_ && !stopping_) continue;
    }
    std::deque<Request> batch;
    while (!queue_.empty() && batch.size() < options_.max_batch) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    stats_.batches++;
    stats_.max_batch = std::max<uint64_t>(stats_.max_batch, batch.size());
    if (options_.deadline_budget_ms > 0) {
      // Feed the overload window at dispatch time (one clock read per
      // batch): the wait these requests actually endured is what decides
      // whether the next Submit() is admitted.
      const auto now = std::chrono::steady_clock::now();
      for (const Request& r : batch) {
        wait_samples_.emplace_back(
            now, static_cast<uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         now - r.submitted)
                         .count()));
      }
      RefreshOverloadLocked(now);
    }
    lock.unlock();
    RunBatch(&batch);
    lock.lock();
  }
}

void Batcher::RunBatch(std::deque<Request>* batch) {
  const size_t n = batch->size();
  const auto now = std::chrono::steady_clock::now();
  BatchMetrics& metrics = GetBatchMetrics();
  metrics.batches.Add();
  metrics.batch_size.Observe(static_cast<double>(n));
  for (const Request& req : *batch) {
    metrics.queue_wait_ns.Observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - req.submitted)
            .count()));
  }
  // One generation per batch: resolve the pin once so every request in the
  // batch sees the same snapshot, held alive until the promises are set.
  EnginePin pin = source_();
  QueryEngine* engine = pin.engine;
  std::vector<std::string> responses = ParallelMap<std::string>(n, [&](size_t i) {
    Request& req = (*batch)[i];
    if (engine == nullptr) {
      return std::string("ERR\tno snapshot generation available");
    }
    if (req.has_deadline) {
      if (req.deadline <= now) return std::string("ERR\tdeadline exceeded");
      CancellationToken token;
      token.ArmDeadline(std::chrono::duration_cast<std::chrono::milliseconds>(
          req.deadline - now));
      ScopedCancellation scoped(&token);
      return engine->Answer(req.line, req.record_stats);
    }
    return engine->Answer(req.line, req.record_stats);
  });
  // Record expiries before fulfilling any promise: a waiter woken by get()
  // must already see its request counted in Snapshot().
  uint64_t expired = 0;
  for (size_t i = 0; i < n; ++i) {
    if (responses[i] == "ERR\tdeadline exceeded") expired++;
  }
  if (expired > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.deadline_expired += expired;
  }
  for (size_t i = 0; i < n; ++i) {
    Finish(&(*batch)[i], std::move(responses[i]));
  }
}

}  // namespace semdrift
