#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace semdrift {
namespace {

TEST(ThreadPoolTest, ParallelMapIsOrderedAtEveryPoolSize) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    for (size_t n : {size_t{0}, size_t{1}, size_t{100}}) {
      std::vector<int> out = pool.ParallelMap<int>(
          n, [](size_t i) { return static_cast<int>(i * i); });
      ASSERT_EQ(out.size(), n);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], static_cast<int>(i * i)) << "threads=" << threads;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, MoreThreadsThanTasks) {
  ThreadPool pool(8);
  std::vector<int> out =
      pool.ParallelMap<int>(3, [](size_t i) { return static_cast<int>(i) + 10; });
  EXPECT_EQ(out, (std::vector<int>{10, 11, 12}));
}

TEST(ThreadPoolTest, ExceptionFromBodyPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [](size_t i) {
                         if (i == 17) throw std::runtime_error("task 17 failed");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, LowestThrowingIndexWins) {
  // Several tasks throw; the caller must always see the error of the lowest
  // index regardless of scheduling.
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::string seen;
    try {
      pool.ParallelFor(100, [](size_t i) {
        if (i % 7 == 3) {  // 3 is the lowest thrower.
          throw std::runtime_error("boom@" + std::to_string(i));
        }
      });
      FAIL() << "expected throw";
    } catch (const std::runtime_error& e) {
      seen = e.what();
    }
    EXPECT_EQ(seen, "boom@3") << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, AllTasksThrowingStillReportsLowest) {
  ThreadPool pool(4);
  std::string seen;
  try {
    pool.ParallelFor(32, [](size_t i) {
      throw std::runtime_error("all@" + std::to_string(i));
    });
  } catch (const std::runtime_error& e) {
    seen = e.what();
  }
  EXPECT_EQ(seen, "all@0");
}

TEST(ThreadPoolTest, PoolIsReusableAfterAnException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(8, [](size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::vector<int> out =
      pool.ParallelMap<int>(8, [](size_t i) { return static_cast<int>(i); });
  std::vector<int> want(8);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(out, want);
}

TEST(ThreadPoolTest, NestedParallelRegionsRunInline) {
  // A body that itself calls the free ParallelFor must not deadlock; the
  // inner region runs inline on the worker.
  SetGlobalThreadCount(4);
  std::atomic<int> total{0};
  ParallelFor(8, [&](size_t) {
    ParallelFor(8, [&](size_t) { ++total; });
  });
  SetGlobalThreadCount(0);
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, GlobalThreadCountOverride) {
  SetGlobalThreadCount(3);
  EXPECT_EQ(GlobalThreadCount(), 3);
  SetGlobalThreadCount(0);  // Back to automatic resolution.
  EXPECT_GE(GlobalThreadCount(), 1);
  EXPECT_GE(HardwareThreads(), 1);
}

TEST(ThreadPoolTest, TaskSeedStreamsAreDistinctAndStable) {
  // Same (base, index) -> same seed; different index or base -> different.
  EXPECT_EQ(TaskSeed(2014, 5), TaskSeed(2014, 5));
  EXPECT_NE(TaskSeed(2014, 5), TaskSeed(2014, 6));
  EXPECT_NE(TaskSeed(2014, 5), TaskSeed(2015, 5));
  std::vector<uint64_t> seeds;
  for (uint64_t i = 0; i < 100; ++i) seeds.push_back(TaskSeed(42, i));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
}

}  // namespace
}  // namespace semdrift
