#ifndef SEMDRIFT_EXTRACT_DIRTY_SET_H_
#define SEMDRIFT_EXTRACT_DIRTY_SET_H_

#include <cstddef>
#include <vector>

#include "kb/knowledge_base.h"
#include "text/ids.h"

namespace semdrift {

/// Instance → concept incidence over the live pairs of a knowledge base,
/// packed CSR-style (row offsets per instance id, concept columns sorted
/// ascending). This is the adjacency scoped re-detection walks: two concepts
/// are coupled exactly when they share a live instance — they compete for the
/// same Eq. 21 attachment votes and contribute to each other's effective
/// mutex similarity — so evidence arriving under one can flip decisions made
/// under the other.
struct InstanceConceptCsr {
  /// rows[e]..rows[e+1] index `concepts` for instance id e.
  std::vector<uint64_t> rows;
  std::vector<uint32_t> concepts;

  size_t num_instances() const { return rows.empty() ? 0 : rows.size() - 1; }
};

/// Builds the incidence CSR from every live pair of `kb`. `num_concepts`
/// bounds the concept scan; instance rows size to the largest live instance
/// id observed.
InstanceConceptCsr BuildInstanceConceptCsr(const KnowledgeBase& kb,
                                           size_t num_concepts);

/// The dirty concept set of a streaming epoch: given that the records
/// [first_record, kb.num_records()) were appended since the last epoch,
/// returns every concept whose DP evidence may have changed — the concepts
/// extracted into, plus (one CSR hop) every concept sharing a live instance
/// with one of the new records. Sorted ascending, deduplicated. Cleaning
/// scoped to this set sees the same per-concept inputs a full-scope round
/// would, because concepts outside it neither gained records nor share an
/// instance with one that did.
std::vector<ConceptId> ComputeDirtyConcepts(const KnowledgeBase& kb,
                                            size_t first_record,
                                            size_t num_concepts);

}  // namespace semdrift

#endif  // SEMDRIFT_EXTRACT_DIRTY_SET_H_
