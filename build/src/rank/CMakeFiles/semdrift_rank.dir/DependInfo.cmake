
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rank/concept_graph.cc" "src/rank/CMakeFiles/semdrift_rank.dir/concept_graph.cc.o" "gcc" "src/rank/CMakeFiles/semdrift_rank.dir/concept_graph.cc.o.d"
  "/root/repo/src/rank/scorers.cc" "src/rank/CMakeFiles/semdrift_rank.dir/scorers.cc.o" "gcc" "src/rank/CMakeFiles/semdrift_rank.dir/scorers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kb/CMakeFiles/semdrift_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/semdrift_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/semdrift_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
