file(REMOVE_RECURSE
  "libsemdrift_text.a"
)
