#include "corpus/renderer.h"

#include "text/morphology.h"

namespace semdrift {

namespace {
const char* const kFillers[] = {"", "many", "some", "popular", "various", "common"};
const char* const kPreps[] = {"from", "in", "of"};
}  // namespace

std::string SentenceRenderer::RenderList(const std::vector<InstanceId>& list,
                                         Rng* rng) const {
  std::string out;
  bool oxford = rng->NextBool(0.5);
  for (size_t i = 0; i < list.size(); ++i) {
    if (i > 0) {
      if (i + 1 == list.size()) {
        out += oxford && list.size() > 2 ? ", and " : " and ";
      } else {
        out += ", ";
      }
    }
    out += world_->InstanceName(list[i]);
  }
  return out;
}

std::string SentenceRenderer::RenderUnambiguous(ConceptId c,
                                                const std::vector<InstanceId>& list,
                                                Rng* rng) const {
  std::string filler = kFillers[rng->NextBounded(std::size(kFillers))];
  std::string out;
  if (!filler.empty()) {
    out += filler;
    out += ' ';
  }
  out += Pluralize(world_->ConceptName(c));
  out += " such as ";
  out += RenderList(list, rng);
  out += " .";
  return out;
}

std::string SentenceRenderer::RenderAmbiguous(ConceptId head, ConceptId adjacent,
                                              const std::vector<InstanceId>& list,
                                              Rng* rng) const {
  std::string out = Pluralize(world_->ConceptName(head));
  out += ' ';
  out += kPreps[rng->NextBounded(std::size(kPreps))];
  out += ' ';
  out += Pluralize(world_->ConceptName(adjacent));
  if (rng->NextBool(0.4)) out += " ,";
  out += " such as ";
  out += RenderList(list, rng);
  out += " .";
  return out;
}

std::string SentenceRenderer::RenderOtherThan(ConceptId head, ConceptId excluded,
                                              const std::vector<InstanceId>& list,
                                              Rng* rng) const {
  std::string out = Pluralize(world_->ConceptName(head));
  out += " other than ";
  out += Pluralize(world_->ConceptName(excluded));
  out += " such as ";
  out += RenderList(list, rng);
  out += " .";
  return out;
}

}  // namespace semdrift
