#ifndef SEMDRIFT_NET_ROUTER_H_
#define SEMDRIFT_NET_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/hash_ring.h"
#include "serve/batcher.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "serve/snapshot_manager.h"

namespace semdrift {

struct RouterOptions {
  /// Number of shard workers; each owns a consistent-hash slice of the
  /// concept space with its own QueryEngine (private result cache), its own
  /// ServeStats, and its own Batcher running the admission ladder.
  uint32_t num_shards = 1;
  uint32_t vnodes_per_shard = 64;
  /// Per-shard engine configuration. cache_capacity is TOTAL across shards
  /// (divided evenly), so `--cache N` means the same memory at any shard
  /// count. shared_stats/generation are overwritten per shard.
  QueryEngineOptions engine;
  /// Per-shard batcher configuration (deadline budget, coalescing).
  BatcherOptions batch;
};

/// Point-in-time router counters.
struct RouterStats {
  uint64_t requests = 0;          ///< Submit() calls.
  uint64_t direct = 0;            ///< Single-shard dispatches.
  uint64_t fanout = 0;            ///< Scatter-gathered mutex queries.
  uint64_t fanout_mismatch = 0;   ///< Fan-out legs that disagreed (bug tripwire).
  uint64_t local = 0;             ///< Answered inline (stats/metrics).
};

/// Routes line-protocol requests to shard workers by consistent hash of the
/// first argument (the concept/instance name), scatter-gathering where a
/// query names concepts owned by different shards.
///
/// Determinism contract: every shard answers from the same immutable
/// snapshot (or the same hot-swap generation), and QueryEngine responses are
/// deterministic, so routing is a pure performance decision — responses are
/// byte-identical to a single unsharded engine. `mutex a b` exploits this as
/// a self-check: when a and b land on different shards the router runs the
/// query on both (the non-owner leg with record_stats=false so it is counted
/// once) and byte-compares the answers, counting any disagreement in
/// net.router.fanout_mismatch.
///
/// `stats` is answered by the router itself from the merged per-shard
/// ServeStats (MergeTypeStats) — never by one shard's engine, which would
/// report that shard's slice as the whole and double-count the stats request
/// itself. `metrics` is also answered inline: the registry is process-global.
///
/// Ordering: Submit() never blocks and responses complete on pool threads in
/// any order; callers needing per-connection ordering sequence responses
/// themselves (NetServer's reorder buffer).
class ShardRouter {
 public:
  /// Single-snapshot serving; `snapshot` must outlive the router.
  ShardRouter(const SnapshotReader* snapshot, RouterOptions options);
  /// Hot-swap serving: each shard lazily rebuilds its engine when the
  /// manager's generation changes, pinning generations RCU-style so a swap
  /// mid-batch never invalidates an engine. `manager` must outlive the router.
  ShardRouter(SnapshotManager* manager, RouterOptions options);
  /// Drains every shard batcher.
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Routes one request line. `done` is invoked with the response exactly
  /// once, from a pool worker or synchronously (shed/stopping/local answers);
  /// it must not block.
  void Submit(std::string line, RequestPriority priority,
              std::function<void(std::string)> done);

  /// Shard that owns routing key `key` (exposed for tests/bench).
  uint32_t OwnerOf(std::string_view key) const { return ring_.OwnerOf(key); }
  uint32_t num_shards() const { return ring_.num_shards(); }

  /// Generation currently served (0 for single-snapshot mode).
  uint64_t generation() const;

  RouterStats Snapshot() const;

  /// Test hooks: hold/release dispatch on every shard batcher (used to force
  /// queue buildup deterministically for overload tests).
  void PauseAll();
  void ResumeAll();

 private:
  /// A per-generation engine bound to one shard's stats. Held by shared_ptr
  /// so an EnginePin keepalive holds both the generation and the engine.
  struct ShardEngine {
    std::shared_ptr<const ServingGeneration> gen;
    std::unique_ptr<QueryEngine> engine;
  };

  struct Shard {
    ServeStats stats;
    /// Single-snapshot mode: fixed engine. Hot-swap mode: null.
    std::unique_ptr<QueryEngine> fixed_engine;
    /// Hot-swap mode: engine for the currently-cached generation.
    std::mutex mu;
    std::shared_ptr<ShardEngine> current;
    std::unique_ptr<Batcher> batcher;
  };

  ShardRouter(const SnapshotReader* snapshot, SnapshotManager* manager,
              RouterOptions options);

  /// EngineSource body for shard `index` (resolves fixed or per-generation).
  EnginePin ResolveEngine(size_t index);

  /// Answers stats/metrics inline (recording into shard 0's ServeStats so
  /// the counters match a single engine's behaviour).
  std::string AnswerLocal(QueryType type);

  const SnapshotReader* snapshot_ = nullptr;  // single-snapshot mode
  SnapshotManager* manager_ = nullptr;        // hot-swap mode
  RouterOptions options_;
  HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> direct_{0};
  std::atomic<uint64_t> fanout_{0};
  std::atomic<uint64_t> fanout_mismatch_{0};
  std::atomic<uint64_t> local_{0};
};

}  // namespace semdrift

#endif  // SEMDRIFT_NET_ROUTER_H_
