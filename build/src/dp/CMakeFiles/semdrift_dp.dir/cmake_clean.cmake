file(REMOVE_RECURSE
  "CMakeFiles/semdrift_dp.dir/cleaner.cc.o"
  "CMakeFiles/semdrift_dp.dir/cleaner.cc.o.d"
  "CMakeFiles/semdrift_dp.dir/detector.cc.o"
  "CMakeFiles/semdrift_dp.dir/detector.cc.o.d"
  "CMakeFiles/semdrift_dp.dir/features.cc.o"
  "CMakeFiles/semdrift_dp.dir/features.cc.o.d"
  "CMakeFiles/semdrift_dp.dir/seed_labeling.cc.o"
  "CMakeFiles/semdrift_dp.dir/seed_labeling.cc.o.d"
  "CMakeFiles/semdrift_dp.dir/sentence_check.cc.o"
  "CMakeFiles/semdrift_dp.dir/sentence_check.cc.o.d"
  "libsemdrift_dp.a"
  "libsemdrift_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semdrift_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
