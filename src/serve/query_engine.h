#ifndef SEMDRIFT_SERVE_QUERY_ENGINE_H_
#define SEMDRIFT_SERVE_QUERY_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "serve/snapshot.h"

namespace semdrift {

/// The query verbs of the serving line protocol. One request per line:
///
///   instances-of <concept> [k]      top-k live instances by drift score
///   concepts-of <instance>          concepts holding the instance live
///   is-a <instance> <concept>       membership + score/support when live
///   drift-score <instance> <concept>  Eq. 3 walk score (0 when not live)
///   mutex <concept> <concept>       Sec. 3.2.1 mutual exclusion
///   stats                           serving counters (never cached)
///   metrics                         process MetricsRegistry JSON (never cached)
///
/// Fields are TAB-separated when the line contains a tab; otherwise the line
/// is split on whitespace and multi-word names are re-joined by trying every
/// contiguous split that resolves against the snapshot's name tables (so
/// `is-a lion asian country` finds instance "lion" / concept "asian
/// country" without the caller needing tabs).
enum class QueryType : int {
  kInstancesOf = 0,
  kConceptsOf,
  kIsA,
  kDriftScore,
  kMutex,
  kStats,
  kMetrics,
  kNumTypes,
};

/// Wire name of a query type ("instances-of", ...).
std::string_view QueryTypeName(QueryType type);

/// Snapshot sections a query type reads (SnapshotSection bitmask), for
/// SnapshotReader::EnsureSections. Name resolution (NSRT + both name tables)
/// is included for every name-taking verb; stats/metrics touch no section.
uint32_t SectionsForQuery(QueryType type);

/// Point-in-time copy of one query type's serving counters.
struct QueryTypeStats {
  uint64_t count = 0;       ///< Requests answered (including errors).
  uint64_t cache_hits = 0;  ///< Answered from the result cache.
  uint64_t errors = 0;      ///< ERR or NOT_FOUND responses.
  uint64_t total_ns = 0;    ///< Summed wall latency.
  uint64_t max_ns = 0;      ///< Worst single request.

  double HitRate() const {
    return count == 0 ? 0.0 : static_cast<double>(cache_hits) / count;
  }
  double MeanNs() const {
    return count == 0 ? 0.0 : static_cast<double>(total_ns) / count;
  }
};

/// Per-query-type latency and hit-rate counters. Recording is lock-free
/// (relaxed atomics; max via CAS loop); Snapshot() gives a consistent-enough
/// copy for reporting.
class ServeStats {
 public:
  void Record(QueryType type, uint64_t ns, bool cache_hit, bool error);
  QueryTypeStats Snapshot(QueryType type) const;
  void Reset();

 private:
  struct Cell {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> total_ns{0};
    std::atomic<uint64_t> max_ns{0};
  };
  Cell cells_[static_cast<int>(QueryType::kNumTypes)];
};

/// Point-in-time merge across several ServeStats: counts sum, max_ns takes
/// the max. The shard router aggregates its per-shard engines this way;
/// each client request lands in exactly one shard's stats because shadow
/// fan-out legs execute with Answer(line, /*record_stats=*/false).
QueryTypeStats MergeTypeStats(const std::vector<const ServeStats*>& stats,
                              QueryType type);

/// Formats the `stats` response line from merged counters. With a single
/// ServeStats and num_shards == 0 this is byte-identical to
/// QueryEngine::FormatStats; num_shards > 0 appends a trailing
/// "shards=<N>" field.
std::string FormatStatsResponse(const std::vector<const ServeStats*>& stats,
                                uint64_t generation, int num_shards = 0);

struct QueryEngineOptions {
  /// Result-cache shards (power of two; keys hash to a shard so concurrent
  /// queries rarely contend on one mutex).
  size_t cache_shards = 16;
  /// Total cached responses across all shards; 0 disables the cache.
  size_t cache_capacity = 4096;
  /// When set, the engine records into these stats instead of its own.
  /// The hot-swap manager points every generation's engine at one shared
  /// ServeStats, so counters survive swaps while each generation gets a
  /// fresh (invalidated) response cache. Must outlive the engine.
  ServeStats* shared_stats = nullptr;
  /// Snapshot generation this engine serves; reported by the `stats` verb.
  uint64_t generation = 0;
};

/// Answers line-protocol queries over a loaded snapshot. Thread-safe: the
/// snapshot is immutable, the result cache is sharded-locked, and stats are
/// atomic. Answers are deterministic — a cached response is byte-identical
/// to a freshly computed one, so concurrent batched execution matches
/// serial execution bit for bit.
///
/// Response grammar (one line, TAB-separated fields):
///   OK <payload...>          | NOT_FOUND <name> | ERR <message>
/// Scores print with %.17g so round-tripping through text is exact.
class QueryEngine {
 public:
  /// `snapshot` must outlive the engine.
  explicit QueryEngine(const SnapshotReader* snapshot, QueryEngineOptions options = {});

  /// Parses and answers one request line (without trailing newline).
  std::string Answer(std::string_view line);

  /// Same, but with `record_stats == false` neither ServeStats nor the
  /// per-verb registry metrics are touched. The router's shadow fan-out legs
  /// use this so a scatter-gathered request is counted exactly once.
  std::string Answer(std::string_view line, bool record_stats);

  const SnapshotReader& snapshot() const { return *snapshot_; }
  const ServeStats& stats() const { return *stats_ptr_; }
  void ResetStats() { stats_ptr_->Reset(); }

  /// Generation reported by the `stats` verb (0 for single-snapshot serving).
  uint64_t generation() const { return options_.generation; }

  /// Changes the result cache's total capacity in place, evicting LRU
  /// entries that no longer fit. ServeStats are deliberately left untouched:
  /// a cache resize is an operational tuning knob, not a stats epoch.
  /// Capacity 0 disables (and empties) the cache. Thread-safe against
  /// concurrent Answer() calls.
  void ResizeCache(size_t capacity);

  /// Formats the `stats` response from the current counters.
  std::string FormatStats() const;

 private:
  struct Shard {
    std::mutex mu;
    /// MRU-first list of (key, response); the map points into it.
    std::list<std::pair<std::string, std::string>> lru;
    std::unordered_map<std::string_view,
                       std::list<std::pair<std::string, std::string>>::iterator>
        index;
  };

  std::string Execute(QueryType type, const std::vector<std::string_view>& args);
  std::string InstancesOf(const std::vector<std::string_view>& args);
  std::string ConceptsOf(const std::vector<std::string_view>& args);
  std::string IsA(const std::vector<std::string_view>& args);
  std::string DriftScore(const std::vector<std::string_view>& args);
  std::string Mutex(const std::vector<std::string_view>& args);

  /// Resolves a two-name argument list by trying every contiguous split
  /// (see QueryType docs). Returns false when no split resolves; `first_out`
  /// then holds the unresolvable text for the NOT_FOUND response.
  bool SplitTwoNames(const std::vector<std::string_view>& args, bool first_is_instance,
                     bool second_is_instance, uint32_t* first_out,
                     uint32_t* second_out, std::string* miss) const;

  bool CacheGet(const std::string& key, std::string* response);
  void CachePut(const std::string& key, const std::string& response);

  const SnapshotReader* snapshot_;
  QueryEngineOptions options_;
  /// 0 disables the cache; atomic so ResizeCache can retune a live engine.
  std::atomic<size_t> per_shard_capacity_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  ServeStats stats_;
  /// &stats_, or options_.shared_stats when stats outlive this engine.
  ServeStats* stats_ptr_ = &stats_;
};

/// A borrowed engine plus whatever owns it. The Batcher resolves one pin per
/// batch: `keepalive` holds the serving generation alive (RCU-style) while
/// the batch runs, so a concurrent hot swap can retire the old generation
/// without yanking it out from under in-flight queries.
struct EnginePin {
  QueryEngine* engine = nullptr;
  std::shared_ptr<const void> keepalive;
};

/// Resolves the engine to use for the next batch. Must be callable from any
/// thread; returning a null engine makes the batch answer
/// "ERR\tno snapshot generation available".
using EngineSource = std::function<EnginePin()>;

}  // namespace semdrift

#endif  // SEMDRIFT_SERVE_QUERY_ENGINE_H_
