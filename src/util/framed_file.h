#ifndef SEMDRIFT_UTIL_FRAMED_FILE_H_
#define SEMDRIFT_UTIL_FRAMED_FILE_H_

#include <cstddef>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/crc32.h"
#include "util/status.h"

namespace semdrift {

/// Shared framing for the line-oriented on-disk formats (worlds, corpora,
/// checkpoints): a `<tag>\tv<N>` version header, tab-separated payload
/// lines, and a trailing `#crc32\t<hex>` footer checksumming every byte
/// before it. The footer is what turns "the file ends here" into a
/// verifiable claim: a torn write loses the footer (truncation detected), a
/// bit flip breaks the checksum (corruption detected).

/// Streams payload lines to disk while accumulating their checksum, then
/// seals the file with the footer on Close(). Always write through a
/// FramedWriter so no v2 file can exist without its footer.
class FramedWriter {
 public:
  /// Opens `path` for writing and emits the `<tag>\tv<version>` header.
  /// Check status() before use.
  FramedWriter(const std::string& path, std::string_view tag, int version);

  /// Appends one payload line (newline added here). No-op after an error.
  void WriteLine(std::string_view line);

  /// Writes the checksum footer and flushes. Returns the first error seen.
  Status Close();

  /// First error encountered so far (IOError on open/write failure).
  const Status& status() const { return status_; }

 private:
  void Write(std::string_view bytes);

  std::ofstream out_;
  std::string path_;
  Crc32 crc_;
  Status status_;
  bool closed_ = false;
};

/// A framed file read back into memory, with framing verdicts the caller
/// turns into strict/lenient policy.
struct FramedFile {
  /// Version parsed from the header.
  int version = 0;
  /// Payload lines in order, without trailing newlines. Blank lines are
  /// dropped (but still checksummed).
  std::vector<std::string> lines;
  /// 1-based file line number of each payload line (header is line 1).
  std::vector<size_t> line_numbers;
  /// Byte offset of each payload line's first byte, for kDataLoss messages
  /// that pinpoint where in the file the bad bytes live.
  std::vector<size_t> line_offsets;
  /// Total payload bytes consumed (= byte offset where reading stopped).
  size_t bytes_read = 0;
  /// A `#crc32` footer line was present.
  bool checksum_present = false;
  /// Footer present and matching the preceding bytes.
  bool checksum_ok = false;
  /// Version >= min_checksum_version but no footer arrived before EOF —
  /// the signature of a torn write.
  bool truncated = false;
};

/// Reads and frames `path`. Fails with kIOError when the file cannot be
/// read, kInvalidArgument when the header tag is wrong or the version is
/// outside [1, max_version]. Checksum problems do NOT fail the read — they
/// are reported in the returned struct so lenient callers can proceed.
/// Lines after the footer count as corruption (checksum_ok forced false).
Result<FramedFile> ReadFramedFile(const std::string& path, std::string_view tag,
                                  int max_version, int min_checksum_version = 2);

}  // namespace semdrift

#endif  // SEMDRIFT_UTIL_FRAMED_FILE_H_
