# Empty dependencies file for bench_fig3_features.
# This may be replaced when dependencies are built.
