#include "ml/knn.h"

#include <algorithm>

namespace semdrift {

std::vector<std::vector<size_t>> KNearestNeighbors(const Matrix& x, int k) {
  size_t n = x.rows();
  size_t d = x.cols();
  std::vector<std::vector<size_t>> out(n);
  std::vector<std::pair<double, size_t>> distances;
  for (size_t i = 0; i < n; ++i) {
    distances.clear();
    distances.reserve(n - 1);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      double dist_sq = 0.0;
      const double* a = x.Row(i);
      const double* b = x.Row(j);
      for (size_t f = 0; f < d; ++f) {
        double diff = a[f] - b[f];
        dist_sq += diff * diff;
      }
      distances.emplace_back(dist_sq, j);
    }
    size_t want = std::min(static_cast<size_t>(k), distances.size());
    std::partial_sort(distances.begin(), distances.begin() + want, distances.end());
    out[i].reserve(want + 1);
    out[i].push_back(i);  // Self first.
    for (size_t t = 0; t < want; ++t) out[i].push_back(distances[t].second);
  }
  return out;
}

}  // namespace semdrift
