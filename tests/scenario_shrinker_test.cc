#include <gtest/gtest.h>

#include "scenario/grammar.h"
#include "scenario/runner.h"
#include "scenario/shrink.h"
#include "util/thread_pool.h"

namespace semdrift {
namespace scenario {
namespace {

/// A pure predicate over scenario fields (no pipeline run): lets the test
/// prove exact minimality because the satisfying frontier is known.
bool FieldPredicate(const Scenario& s) {
  return s.corpus.misparse_rate >= 0.07 && s.world.num_concepts >= 20;
}

TEST(ScenarioShrinkerTest, MinimizesToTheKnownFrontier) {
  Scenario start = SampleScenario(9, "burst-noise");
  start.world.num_concepts = 48;
  start.corpus.misparse_rate = 0.15;
  ASSERT_TRUE(FieldPredicate(start));

  auto shrunk = ShrinkScenario(start, FieldPredicate);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();
  EXPECT_FALSE(shrunk->reached_eval_cap);

  // misparse_rate ladder is benign 0 step 0.01: smallest value >= 0.07 is
  // exactly 0.07. num_concepts ladder is benign 4 step 4: smallest >= 20 is
  // 20. Everything unconstrained must sit at its benign anchor.
  EXPECT_NEAR(shrunk->scenario.corpus.misparse_rate, 0.07, 1e-12);
  EXPECT_EQ(shrunk->scenario.world.num_concepts, 20);
  EXPECT_DOUBLE_EQ(shrunk->scenario.world.polysemy_rate, 0.0);
  EXPECT_DOUBLE_EQ(shrunk->scenario.corpus.wrongfact_rate, 0.0);
  EXPECT_DOUBLE_EQ(shrunk->scenario.faults.rate, 0.0);
  EXPECT_EQ(shrunk->scenario.pipeline.max_iterations, 1);
  EXPECT_EQ(shrunk->scenario.pipeline.max_rounds, 0);
  // Inert fault overlay cleared entirely.
  EXPECT_TRUE(shrunk->scenario.faults.kinds.empty());
  EXPECT_TRUE(shrunk->scenario.faults.stages.empty());
}

TEST(ScenarioShrinkerTest, ResultIsOneNotchMinimal) {
  Scenario start = SampleScenario(9, "burst-noise");
  start.world.num_concepts = 48;
  start.corpus.misparse_rate = 0.15;
  auto shrunk = ShrinkScenario(start, FieldPredicate);
  ASSERT_TRUE(shrunk.ok());

  // Moving either load-bearing dimension one notch further toward benign
  // must lose the failure — the shrinker's minimality certificate.
  Scenario probe = shrunk->scenario;
  probe.corpus.misparse_rate -= 0.01;
  EXPECT_FALSE(FieldPredicate(probe));
  probe = shrunk->scenario;
  probe.world.num_concepts -= 4;
  EXPECT_FALSE(FieldPredicate(probe));
}

TEST(ScenarioShrinkerTest, RejectsNonFailingInput) {
  Scenario start = SampleScenario(9, "burst-noise");
  start.corpus.misparse_rate = 0.0;
  start.world.num_concepts = 8;
  auto shrunk = ShrinkScenario(start, FieldPredicate);
  EXPECT_FALSE(shrunk.ok());
}

TEST(ScenarioShrinkerTest, EvaluationCapStopsDeterministically) {
  Scenario start = SampleScenario(9, "burst-noise");
  start.world.num_concepts = 48;
  start.corpus.misparse_rate = 0.15;
  ShrinkOptions options;
  options.max_evaluations = 5;
  auto a = ShrinkScenario(start, FieldPredicate, options);
  auto b = ShrinkScenario(start, FieldPredicate, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->reached_eval_cap);
  EXPECT_EQ(ScenarioToToml(a->scenario), ScenarioToToml(b->scenario));
  EXPECT_EQ(a->evaluations, b->evaluations);
}

/// Satellite 4's acceptance bar: shrinking against the *real pipeline*
/// yields byte-identical minimized TOML at 1 and at 8 threads.
TEST(ScenarioShrinkerTest, PipelinePredicateShrinkIsThreadCountInvariant) {
  Scenario start = SampleScenario(5, "burst-noise");
  start.corpus.num_sentences = 400;

  auto predicate = [](const Scenario& candidate) {
    auto run = RunScenario(candidate);
    if (!run.ok()) return false;
    return run->metrics.live_pairs_after >= 20;
  };
  ASSERT_TRUE(predicate(start));

  ShrinkOptions options;
  options.max_evaluations = 120;

  SetGlobalThreadCount(1);
  auto one = ShrinkScenario(start, predicate, options);
  SetGlobalThreadCount(8);
  auto eight = ShrinkScenario(start, predicate, options);
  SetGlobalThreadCount(0);
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  ASSERT_TRUE(eight.ok()) << eight.status().ToString();
  EXPECT_EQ(ScenarioToToml(one->scenario), ScenarioToToml(eight->scenario));
  EXPECT_EQ(one->evaluations, eight->evaluations);
  EXPECT_EQ(one->passes, eight->passes);
}

}  // namespace
}  // namespace scenario
}  // namespace semdrift
