#ifndef SEMDRIFT_BENCH_BENCH_COMMON_H_
#define SEMDRIFT_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <memory>
#include <string>

#include "eval/experiment.h"

namespace semdrift {
namespace bench {

/// Bench scale knob: SEMDRIFT_BENCH_SCALE scales the corpus (1.0 = the
/// default reproduction size, ~120k sentences). The default 0.25 keeps every
/// bench within seconds while preserving all qualitative shapes.
inline double EnvScale() {
  const char* env = std::getenv("SEMDRIFT_BENCH_SCALE");
  if (env == nullptr) return 0.25;
  double value = std::atof(env);
  return value > 0.0 ? value : 0.25;
}

/// Builds the shared paper-reproduction experiment at the bench scale.
inline std::unique_ptr<Experiment> BuildBenchExperiment(bool render_text = false) {
  ExperimentConfig config = PaperScaleConfig(EnvScale());
  config.corpus.render_text = render_text;
  return Experiment::Build(config);
}

/// F1 helper for cleaning metric pairs.
inline double F1(double p, double r) { return p + r > 0 ? 2 * p * r / (p + r) : 0.0; }

}  // namespace bench
}  // namespace semdrift

#endif  // SEMDRIFT_BENCH_BENCH_COMMON_H_
