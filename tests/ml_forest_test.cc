#include <gtest/gtest.h>

#include <limits>

#include "ml/random_forest.h"
#include "util/rng.h"

namespace semdrift {
namespace {

/// Two-feature XOR-ish dataset a single linear cut cannot solve.
void MakeXorData(size_t n, Rng* rng, std::vector<std::vector<double>>* x,
                 std::vector<int>* y) {
  for (size_t i = 0; i < n; ++i) {
    double a = rng->NextDouble() < 0.5 ? 0.0 : 1.0;
    double b = rng->NextDouble() < 0.5 ? 0.0 : 1.0;
    x->push_back({a + 0.05 * rng->NextGaussian(), b + 0.05 * rng->NextGaussian()});
    y->push_back(static_cast<int>(a) ^ static_cast<int>(b));
  }
}

TEST(DecisionTreeTest, FitsPureLeafOnConstantLabels) {
  std::vector<std::vector<double>> x{{0.0}, {1.0}, {2.0}};
  std::vector<int> y{1, 1, 1};
  DecisionTree tree;
  Rng rng(1);
  tree.Fit(x, y, {0, 1, 2}, 2, RandomForestOptions{}, &rng);
  EXPECT_EQ(tree.num_nodes(), 1u);
  const auto& counts = tree.Leaf({0.5});
  EXPECT_EQ(counts[1], 3);
}

TEST(DecisionTreeTest, SplitsSimpleThreshold) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(i < 10 ? 0 : 1);
  }
  std::vector<size_t> all(20);
  for (size_t i = 0; i < 20; ++i) all[i] = i;
  DecisionTree tree;
  Rng rng(2);
  RandomForestOptions options;
  options.features_per_split = 1;
  tree.Fit(x, y, all, 2, options, &rng);
  EXPECT_GT(tree.num_nodes(), 1u);
  EXPECT_GT(tree.Leaf({3.0})[0], 0);
  EXPECT_EQ(tree.Leaf({3.0})[1], 0);
  EXPECT_GT(tree.Leaf({15.0})[1], 0);
}

TEST(DecisionTreeTest, BinnedSplitsSimpleThreshold) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  std::vector<uint32_t> all;
  for (uint32_t i = 0; i < 20; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(i < 10 ? 0 : 1);
    all.push_back(i);
  }
  auto binned = BinnedMatrix::Build(x, 256);
  ASSERT_TRUE(binned.ok());
  DecisionTree tree;
  RandomForestOptions options;
  options.features_per_split = 1;
  tree.FitBinned(*binned, y, all, 2, options, /*node_seed_base=*/17);
  EXPECT_GT(tree.num_nodes(), 1u);
  EXPECT_GT(tree.Leaf({3.0})[0], 0);
  EXPECT_EQ(tree.Leaf({3.0})[1], 0);
  EXPECT_GT(tree.Leaf({15.0})[1], 0);
  EXPECT_GE(tree.stats().histogram_builds, 1u);
}

TEST(DecisionTreeTest, WorklistSurvivesPathologicalChainDepth) {
  // Alternating labels over a single monotone feature make the best gini
  // split peel one sample off an end at every node: the tree degenerates to
  // a chain roughly as deep as the sample count. The recursive trainer put
  // one stack frame (with live std::vector temporaries) per chain link;
  // the explicit worklist must grow this shape comfortably.
  const int n = 2500;
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  std::vector<size_t> all;
  for (int i = 0; i < n; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(i % 2);
    all.push_back(i);
  }
  RandomForestOptions options;
  options.max_depth = std::numeric_limits<int>::max();
  options.min_samples_leaf = 1;
  options.features_per_split = 1;
  DecisionTree tree;
  Rng rng(13);
  tree.Fit(x, y, all, 2, options, &rng);
  // A chain over n samples has ~2n-1 nodes; anything above 2000 proves the
  // pathological depth was actually reached (not truncated by max_depth).
  EXPECT_GT(tree.num_nodes(), 2000u);
  EXPECT_EQ(tree.stats().nodes, tree.num_nodes());
  // The tree still classifies the training points.
  EXPECT_GT(tree.Leaf({0.0})[0], 0);
  EXPECT_GT(tree.Leaf({1.0})[1], 0);

  // The binned trainer grows the same pathology without recursion either;
  // its depth is capped by bin count but the worklist must not blow up.
  std::vector<uint32_t> all32(all.begin(), all.end());
  auto binned = BinnedMatrix::Build(x, 256);
  ASSERT_TRUE(binned.ok());
  DecisionTree binned_tree;
  binned_tree.FitBinned(*binned, y, all32, 2, options, /*node_seed_base=*/13);
  EXPECT_GT(binned_tree.num_nodes(), 100u);
}

TEST(RandomForestTest, LearnsXor) {
  Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeXorData(400, &rng, &x, &y);
  RandomForest forest;
  RandomForestOptions options;
  options.num_trees = 30;
  ASSERT_TRUE(forest.Fit(x, y, 2, options).ok());
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) correct += forest.Predict(x[i]) == y[i];
  EXPECT_GT(correct, static_cast<int>(0.95 * x.size()));
}

TEST(RandomForestTest, ExactTrainerLearnsXor) {
  Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeXorData(400, &rng, &x, &y);
  RandomForest forest;
  RandomForestOptions options;
  options.num_trees = 30;
  options.exact_splits = true;
  ASSERT_TRUE(forest.Fit(x, y, 2, options).ok());
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) correct += forest.Predict(x[i]) == y[i];
  EXPECT_GT(correct, static_cast<int>(0.95 * x.size()));
  EXPECT_EQ(forest.fit_stats().histogram_builds, 0u);
}

TEST(RandomForestTest, CoarseBinsStillLearn) {
  Rng rng(21);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeXorData(400, &rng, &x, &y);
  RandomForest forest;
  RandomForestOptions options;
  options.num_trees = 30;
  options.max_bins = 16;
  ASSERT_TRUE(forest.Fit(x, y, 2, options).ok());
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) correct += forest.Predict(x[i]) == y[i];
  EXPECT_GT(correct, static_cast<int>(0.9 * x.size()));
}

TEST(RandomForestTest, ThreeClasses) {
  Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 300; ++i) {
    int cls = i % 3;
    x.push_back({cls * 2.0 + 0.2 * rng.NextGaussian(),
                 -cls * 1.5 + 0.2 * rng.NextGaussian()});
    y.push_back(cls);
  }
  RandomForest forest;
  RandomForestOptions options;
  options.num_trees = 25;
  ASSERT_TRUE(forest.Fit(x, y, 3, options).ok());
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) correct += forest.Predict(x[i]) == y[i];
  EXPECT_GT(correct, 290);
  auto proba = forest.PredictProba({0.0, 0.0});
  EXPECT_EQ(proba.size(), 3u);
  double total = proba[0] + proba[1] + proba[2];
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(proba[0], proba[2]);
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  Rng rng(7);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeXorData(200, &rng, &x, &y);
  RandomForestOptions options;
  options.num_trees = 10;
  options.seed = 99;
  RandomForest a;
  ASSERT_TRUE(a.Fit(x, y, 2, options).ok());
  RandomForest b;
  ASSERT_TRUE(b.Fit(x, y, 2, options).ok());
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.Predict(x[i]), b.Predict(x[i]));
    EXPECT_EQ(a.PredictProba(x[i]), b.PredictProba(x[i]));
  }
  EXPECT_EQ(a.fit_stats().nodes, b.fit_stats().nodes);
  EXPECT_EQ(a.fit_stats().histogram_builds, b.fit_stats().histogram_builds);
  EXPECT_EQ(a.fit_stats().histogram_subtractions,
            b.fit_stats().histogram_subtractions);
}

TEST(RandomForestTest, SubtractionTrickActuallyFires) {
  Rng rng(15);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeXorData(600, &rng, &x, &y);
  RandomForest forest;
  RandomForestOptions options;
  options.num_trees = 10;
  ASSERT_TRUE(forest.Fit(x, y, 2, options).ok());
  // Internal (histogram-carrying) nodes outnumber scans: every split's
  // larger child derives its histogram from parent - sibling.
  EXPECT_GT(forest.fit_stats().histogram_subtractions, 0u);
  EXPECT_LT(forest.fit_stats().histogram_builds, forest.fit_stats().nodes);
}

TEST(RandomForestTest, MinSamplesLeafLimitsDepth) {
  Rng rng(9);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeXorData(100, &rng, &x, &y);
  RandomForestOptions coarse;
  coarse.num_trees = 1;
  coarse.min_samples_leaf = 50;
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(x, y, 2, coarse).ok());
  // With leaves of >= 50 samples, a 100-sample tree has at most 3 nodes.
  EXPECT_EQ(forest.num_trees(), 1u);
}

TEST(RandomForestTest, MaxDepthZeroGivesStumps) {
  Rng rng(11);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeXorData(60, &rng, &x, &y);
  RandomForestOptions options;
  options.num_trees = 5;
  options.max_depth = 0;
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(x, y, 2, options).ok());
  // Depth-0 trees are single leaves: prediction equals the majority class.
  auto proba = forest.PredictProba({0.0, 0.0});
  EXPECT_NEAR(proba[0] + proba[1], 1.0, 1e-9);
}

TEST(RandomForestTest, RejectsDegenerateInputOnBothTrainers) {
  // These used to be a release-stripped assert (x[0] on an empty x is UB);
  // now every caller gets a Status and an empty, harmless forest.
  for (bool exact : {false, true}) {
    RandomForestOptions options;
    options.exact_splits = exact;
    options.num_trees = 3;
    RandomForest forest;
    // Empty training set.
    EXPECT_FALSE(forest.Fit({}, {}, 2, options).ok()) << "exact=" << exact;
    EXPECT_EQ(forest.num_trees(), 0u);
    // Zero-width feature vectors.
    EXPECT_FALSE(forest.Fit({{}, {}}, {0, 1}, 2, options).ok()) << "exact=" << exact;
    EXPECT_EQ(forest.num_trees(), 0u);
    // Ragged rows.
    EXPECT_FALSE(forest.Fit({{1.0}, {1.0, 2.0}}, {0, 1}, 2, options).ok());
    // Label/row count mismatch.
    EXPECT_FALSE(forest.Fit({{1.0}, {2.0}}, {0}, 2, options).ok());
    // Labels outside [0, num_classes).
    EXPECT_FALSE(forest.Fit({{1.0}, {2.0}}, {0, 2}, 2, options).ok());
    EXPECT_FALSE(forest.Fit({{1.0}, {2.0}}, {0, -1}, 2, options).ok());
    // Degenerate options.
    options.num_trees = 0;
    EXPECT_FALSE(forest.Fit({{1.0}, {2.0}}, {0, 1}, 2, options).ok());
    options.num_trees = 3;
    // A failed fit leaves no stale trees behind from a previous good fit.
    ASSERT_TRUE(forest.Fit({{1.0}, {2.0}}, {0, 1}, 2, options).ok());
    EXPECT_EQ(forest.num_trees(), 3u);
    EXPECT_FALSE(forest.Fit({}, {}, 2, options).ok());
    EXPECT_EQ(forest.num_trees(), 0u);
  }
  // The histogram trainer also rejects what it cannot quantize.
  RandomForestOptions options;
  RandomForest forest;
  EXPECT_FALSE(
      forest.Fit({{std::numeric_limits<double>::quiet_NaN()}, {1.0}}, {0, 1}, 2,
                 options)
          .ok());
  options.max_bins = 1;
  EXPECT_FALSE(forest.Fit({{1.0}, {2.0}}, {0, 1}, 2, options).ok());
  options.max_bins = 300;
  EXPECT_FALSE(forest.Fit({{1.0}, {2.0}}, {0, 1}, 2, options).ok());
}

}  // namespace
}  // namespace semdrift
