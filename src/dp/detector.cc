#include "dp/detector.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace semdrift {

namespace {

/// Worker-side gather instrumentation shared by the plain and supervised
/// collectors (order-free atomics; safe from pool workers).
struct CollectMetrics {
  MetricsRegistry::Counter concepts;
  MetricsRegistry::Counter instances;
  MetricsRegistry::Histogram concept_ns;
};

CollectMetrics& GetCollectMetrics() {
  static CollectMetrics metrics{
      GlobalMetrics().RegisterCounter("collect.concepts"),
      GlobalMetrics().RegisterCounter("collect.instances"),
      GlobalMetrics().RegisterHistogram("collect.concept_ns", LatencyBucketsNs())};
  return metrics;
}

uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - start)
                                   .count());
}

}  // namespace

TrainingData CollectTrainingData(const KnowledgeBase& kb, FeatureExtractor* features,
                                 const SeedLabeler& seeds,
                                 const std::vector<ConceptId>& concepts) {
  // Concepts are independent (feature extraction and seed labeling only read
  // shared state), so they fan out across the pool; the ordered reduction
  // below keeps the result identical to a serial loop at any thread count.
  ScopedSpan span(&GlobalTrace(), "collect.batch");
  span.AddTag("concepts", static_cast<uint64_t>(concepts.size()));
  std::vector<ConceptTrainingData> per_concept =
      ParallelMap<ConceptTrainingData>(concepts.size(), [&](size_t i) {
        auto start = std::chrono::steady_clock::now();
        ConceptId c = concepts[i];
        ConceptTrainingData entry;
        entry.concept_id = c;
        for (InstanceId e : kb.LiveInstancesOf(c)) {
          entry.instances.push_back(e);
          entry.features.push_back(features->Extract(c, e));
          entry.seed_labels.push_back(seeds.Label(c, e));
        }
        CollectMetrics& metrics = GetCollectMetrics();
        metrics.concepts.Add();
        metrics.instances.Add(entry.instances.size());
        metrics.concept_ns.Observe(static_cast<double>(ElapsedNs(start)));
        return entry;
      });
  TrainingData data;
  data.reserve(concepts.size());
  for (ConceptTrainingData& entry : per_concept) {
    if (!entry.instances.empty()) data.push_back(std::move(entry));
  }
  return data;
}

bool HasLabeled(const TrainingData& data) {
  for (const auto& concept_data : data) {
    for (DpClass label : concept_data.seed_labels) {
      if (label != DpClass::kUnlabeled) return true;
    }
  }
  return false;
}

Result<TrainingData> CollectTrainingDataSupervised(
    const KnowledgeBase& kb, FeatureExtractor* features, const SeedLabeler& seeds,
    const std::vector<ConceptId>& concepts, Supervisor* supervisor) {
  struct Payload {
    ConceptTrainingData entry;
    std::vector<DroppedInstance> drops;
  };
  struct Slot {
    Payload payload;
    StageOutcome outcome;
  };
  // Guarded fan-out: each concept's gather runs its own attempt loop on a
  // pool worker. Guards only observe; all health mutation happens in the
  // ordered driver loop below, so the result is thread-count-invariant.
  ScopedSpan span(&GlobalTrace(), "collect.batch");
  span.AddTag("concepts", static_cast<uint64_t>(concepts.size()));
  std::vector<Slot> slots = ParallelMap<Slot>(concepts.size(), [&](size_t i) {
    ConceptId c = concepts[i];
    Slot slot;
    std::function<Payload(int)> body = [&, c](int attempt) {
      auto start = std::chrono::steady_clock::now();
      Payload payload;
      payload.entry.concept_id = c;
      bool poison = supervisor->NanFaultActive(PipelineStage::kCollectTraining,
                                               c.value, attempt);
      for (InstanceId e : kb.LiveInstancesOf(c)) {
        PollCancellation("collect training data");
        FeatureVector f = features->Extract(c, e);
        if (poison) {
          f[0] = std::numeric_limits<double>::quiet_NaN();
          poison = false;  // One poisoned instance is enough.
        }
        int bad = FirstNonFiniteIndex(f);
        if (bad >= 0) {
          payload.drops.push_back(DroppedInstance{
              c.value, e.value, PipelineStage::kCollectTraining,
              "non-finite feature f" + std::to_string(bad + 1)});
          continue;
        }
        payload.entry.instances.push_back(e);
        payload.entry.features.push_back(f);
        payload.entry.seed_labels.push_back(seeds.Label(c, e));
      }
      CollectMetrics& metrics = GetCollectMetrics();
      metrics.concepts.Add();
      metrics.instances.Add(payload.entry.instances.size());
      metrics.concept_ns.Observe(static_cast<double>(ElapsedNs(start)));
      return payload;
    };
    Payload value;
    if (supervisor->RunGuarded<Payload>(PipelineStage::kCollectTraining, c.value,
                                        body, {}, &value, &slot.outcome)) {
      slot.payload = std::move(value);
    }
    return slot;
  });

  TrainingData data;
  data.reserve(concepts.size());
  for (size_t i = 0; i < concepts.size(); ++i) {
    Status merged = supervisor->MergeOutcome(PipelineStage::kCollectTraining,
                                             concepts[i].value, slots[i].outcome);
    if (!merged.ok()) return merged;
    if (!slots[i].outcome.ok) continue;  // Quarantined: excluded from the pool.
    for (const DroppedInstance& drop : slots[i].payload.drops) {
      supervisor->health()->RecordDrop(drop);
    }
    if (!slots[i].payload.entry.instances.empty()) {
      data.push_back(std::move(slots[i].payload.entry));
    }
  }
  return data;
}

DpClass AdHocDetector::Classify(ConceptId /*c*/, const FeatureVector& f) const {
  double value = f[property_];
  bool is_dp = dp_below_ ? value < threshold_ : value > threshold_;
  if (!is_dp) return DpClass::kNonDP;
  return f[2] < type_threshold_ ? DpClass::kAccidentalDP : DpClass::kIntentionalDP;
}

DpClass ForestDetector::Classify(ConceptId /*c*/, const FeatureVector& f) const {
  std::vector<double> point(f.begin(), f.end());
  return static_cast<DpClass>(forest_.Predict(point));
}

LinearKpcaDetector::LinearKpcaDetector(KernelPca kpca,
                                       std::vector<std::pair<uint32_t, Matrix>> w,
                                       Matrix fallback)
    : kpca_(std::move(kpca)), w_(std::move(w)), fallback_(std::move(fallback)) {
  std::sort(w_.begin(), w_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

DpClass LinearKpcaDetector::Classify(ConceptId c, const FeatureVector& f) const {
  std::vector<double> raw(f.begin(), f.end());
  std::vector<double> projected = kpca_.Transform(raw);
  auto it = std::lower_bound(
      w_.begin(), w_.end(), c.value,
      [](const auto& entry, uint32_t value) { return entry.first < value; });
  const Matrix& wc =
      (it != w_.end() && it->first == c.value) ? it->second : fallback_;
  return static_cast<DpClass>(PredictClass(wc, projected));
}

namespace {

struct LabeledSample {
  FeatureVector features;
  DpClass label;
};

std::vector<LabeledSample> PoolLabeled(const TrainingData& data) {
  std::vector<LabeledSample> out;
  for (const auto& concept_data : data) {
    for (size_t i = 0; i < concept_data.instances.size(); ++i) {
      if (concept_data.seed_labels[i] == DpClass::kUnlabeled) continue;
      out.push_back(LabeledSample{concept_data.features[i],
                                  concept_data.seed_labels[i]});
    }
  }
  return out;
}

/// Learns the (threshold, direction) on one feature that maximizes the F1 of
/// binary DP detection over labeled seeds, plus the f3 threshold separating
/// Accidental from Intentional DPs.
std::unique_ptr<DpDetector> TrainAdHoc(int property_index,
                                       const std::vector<LabeledSample>& labeled) {
  std::vector<std::pair<double, bool>> samples;  // (value, is_dp)
  samples.reserve(labeled.size());
  size_t total_dps = 0;
  for (const auto& sample : labeled) {
    bool is_dp = sample.label != DpClass::kNonDP;
    samples.emplace_back(sample.features[property_index], is_dp);
    total_dps += is_dp ? 1 : 0;
  }
  if (samples.empty() || total_dps == 0 || total_dps == samples.size()) {
    return nullptr;
  }
  std::sort(samples.begin(), samples.end());

  // Scan all split points; evaluate both directions.
  double best_f1 = -1.0;
  double best_threshold = 0.0;
  bool best_dp_below = true;
  size_t dps_below = 0;
  for (size_t i = 0; i + 1 < samples.size(); ++i) {
    dps_below += samples[i].second ? 1 : 0;
    if (samples[i].first == samples[i + 1].first) continue;
    double threshold = 0.5 * (samples[i].first + samples[i + 1].first);
    size_t below = i + 1;
    // Direction "DP below threshold".
    {
      double tp = static_cast<double>(dps_below);
      double fp = static_cast<double>(below) - tp;
      double fn = static_cast<double>(total_dps) - tp;
      double f1 = tp > 0 ? 2 * tp / (2 * tp + fp + fn) : 0.0;
      if (f1 > best_f1) {
        best_f1 = f1;
        best_threshold = threshold;
        best_dp_below = true;
      }
    }
    // Direction "DP above threshold".
    {
      double tp = static_cast<double>(total_dps - dps_below);
      double fp = static_cast<double>(samples.size() - below) - tp;
      double fn = static_cast<double>(dps_below);
      double f1 = tp > 0 ? 2 * tp / (2 * tp + fp + fn) : 0.0;
      if (f1 > best_f1) {
        best_f1 = f1;
        best_threshold = threshold;
        best_dp_below = false;
      }
    }
  }

  // Secondary f3 threshold: best accuracy separating Accidental (below)
  // from Intentional (above) among labeled DPs.
  std::vector<std::pair<double, bool>> dp_f3;  // (f3, is_accidental)
  for (const auto& sample : labeled) {
    if (sample.label == DpClass::kIntentionalDP) {
      dp_f3.emplace_back(sample.features[2], false);
    } else if (sample.label == DpClass::kAccidentalDP) {
      dp_f3.emplace_back(sample.features[2], true);
    }
  }
  std::sort(dp_f3.begin(), dp_f3.end());
  double type_threshold = 0.0;
  size_t total_accidental = 0;
  for (const auto& [value, accidental] : dp_f3) {
    (void)value;
    total_accidental += accidental ? 1 : 0;
  }
  size_t best_correct = 0;
  size_t accidental_below = 0;
  for (size_t i = 0; i + 1 < dp_f3.size(); ++i) {
    accidental_below += dp_f3[i].second ? 1 : 0;
    size_t intentional_above =
        (dp_f3.size() - i - 1) - (total_accidental - accidental_below);
    size_t correct = accidental_below + intentional_above;
    if (correct > best_correct) {
      best_correct = correct;
      type_threshold = 0.5 * (dp_f3[i].first + dp_f3[i + 1].first);
    }
  }

  return std::make_unique<AdHocDetector>(property_index, best_threshold,
                                         best_dp_below, type_threshold);
}

/// Forest-fit instrumentation (registered once; recorded per fit). The
/// nodes/histogram counters expose how much work the histogram trainer's
/// subtraction trick saves: subtractions are scans avoided.
struct ForestMetrics {
  MetricsRegistry::Counter fits;
  MetricsRegistry::Counter fit_errors;
  MetricsRegistry::Counter nodes;
  MetricsRegistry::Counter histogram_builds;
  MetricsRegistry::Counter histogram_subtractions;
  MetricsRegistry::Histogram fit_ms;
};

ForestMetrics& GetForestMetrics() {
  static ForestMetrics metrics{
      GlobalMetrics().RegisterCounter("ml.forest.fits"),
      GlobalMetrics().RegisterCounter("ml.forest.fit_errors"),
      GlobalMetrics().RegisterCounter("ml.forest.nodes"),
      GlobalMetrics().RegisterCounter("ml.forest.histogram_builds"),
      GlobalMetrics().RegisterCounter("ml.forest.histogram_subtractions"),
      GlobalMetrics().RegisterHistogram("ml.forest.fit_ms", LatencyBucketsMs())};
  return metrics;
}

std::unique_ptr<DpDetector> TrainForest(const std::vector<LabeledSample>& labeled,
                                        const RandomForestOptions& options) {
  if (labeled.empty()) return nullptr;
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  x.reserve(labeled.size());
  y.reserve(labeled.size());
  for (const auto& sample : labeled) {
    x.emplace_back(sample.features.begin(), sample.features.end());
    y.push_back(static_cast<int>(sample.label));
  }
  RandomForest forest;
  ForestMetrics& metrics = GetForestMetrics();
  Timer timer;
  Status fit = forest.Fit(x, y, /*num_classes=*/3, options);
  if (!fit.ok()) {
    // Degenerate training input (e.g. every labeled row NaN-dropped). Same
    // nullptr contract as "nothing to train on"; the supervised path's
    // fallback ladder takes it from here.
    metrics.fit_errors.Add();
    return nullptr;
  }
  metrics.fits.Add();
  metrics.fit_ms.Observe(timer.ElapsedMillis());
  metrics.nodes.Add(forest.fit_stats().nodes);
  metrics.histogram_builds.Add(forest.fit_stats().histogram_builds);
  metrics.histogram_subtractions.Add(forest.fit_stats().histogram_subtractions);
  return std::make_unique<ForestDetector>(std::move(forest));
}

std::unique_ptr<DpDetector> TrainLinearKpca(const TrainingData& data,
                                            const DetectorTrainOptions& options,
                                            bool multitask) {
  Rng rng(options.seed);

  // 1. Build the pooled sample: every labeled row plus a per-concept sample
  //    of unlabeled rows (the semi-supervised ingredient).
  std::vector<FeatureVector> pool;
  for (const auto& concept_data : data) {
    std::vector<size_t> unlabeled;
    for (size_t i = 0; i < concept_data.instances.size(); ++i) {
      if (concept_data.seed_labels[i] == DpClass::kUnlabeled) {
        unlabeled.push_back(i);
      } else {
        pool.push_back(concept_data.features[i]);
      }
    }
    rng.Shuffle(&unlabeled);
    size_t take = std::min<size_t>(unlabeled.size(),
                                   static_cast<size_t>(options.max_unlabeled_per_concept));
    for (size_t t = 0; t < take; ++t) {
      pool.push_back(concept_data.features[unlabeled[t]]);
    }
  }
  if (pool.size() < 4) return nullptr;
  if (pool.size() > static_cast<size_t>(options.max_pool_samples)) {
    rng.Shuffle(&pool);
    pool.resize(options.max_pool_samples);
  }

  Matrix pool_matrix(pool.size(), 4);
  for (size_t i = 0; i < pool.size(); ++i) {
    for (size_t j = 0; j < 4; ++j) pool_matrix(i, j) = pool[i][j];
  }

  // 2. Kernel PCA representation (Sec. 3.3.1).
  KernelPca kpca;
  if (!kpca.Fit(pool_matrix, options.kpca)) return nullptr;
  size_t r = kpca.num_components();

  // 3. Shared manifold regularizer over the pooled representation (Eq. 17).
  Matrix pool_projected = kpca.TransformMatrix(pool_matrix);
  Matrix a = BuildManifoldRegularizer(pool_projected, options.manifold);

  // 4. One learning task per concept with labeled data.
  std::vector<LearningTask> tasks;
  std::vector<uint32_t> task_concepts;
  for (const auto& concept_data : data) {
    std::vector<size_t> labeled_rows;
    for (size_t i = 0; i < concept_data.instances.size(); ++i) {
      if (concept_data.seed_labels[i] != DpClass::kUnlabeled) labeled_rows.push_back(i);
    }
    if (labeled_rows.empty()) continue;
    LearningTask task;
    task.xl = Matrix(labeled_rows.size(), r);
    task.y = Matrix(labeled_rows.size(), 3);
    for (size_t row = 0; row < labeled_rows.size(); ++row) {
      size_t i = labeled_rows[row];
      std::vector<double> raw(concept_data.features[i].begin(),
                              concept_data.features[i].end());
      std::vector<double> projected = kpca.Transform(raw);
      for (size_t p = 0; p < r; ++p) task.xl(row, p) = projected[p];
      task.y(row, static_cast<size_t>(concept_data.seed_labels[i])) = 1.0;
    }
    tasks.push_back(std::move(task));
    task_concepts.push_back(concept_data.concept_id.value);
  }
  if (tasks.empty()) return nullptr;

  // 5. Train (Eq. 15 independently, or Eq. 18 / Algorithm 1 jointly).
  std::vector<Matrix> w;
  if (multitask) {
    MultiTaskResult result = TrainMultiTask(tasks, a, options.multitask);
    w = std::move(result.w);
  } else {
    w.reserve(tasks.size());
    for (const auto& task : tasks) {
      w.push_back(TrainSemiSupervised(task, a, options.multitask));
    }
  }

  // 6. Mean classifier as the fallback for concepts without labels.
  Matrix fallback(r, 3);
  for (const Matrix& wc : w) fallback.AddInPlace(wc);
  fallback.Scale(1.0 / static_cast<double>(w.size()));

  std::vector<std::pair<uint32_t, Matrix>> by_concept;
  by_concept.reserve(w.size());
  for (size_t t = 0; t < w.size(); ++t) {
    by_concept.emplace_back(task_concepts[t], std::move(w[t]));
  }
  return std::make_unique<LinearKpcaDetector>(std::move(kpca), std::move(by_concept),
                                              std::move(fallback));
}

}  // namespace

const char* DetectorKindName(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::kAdHoc1:
      return "ad-hoc-1";
    case DetectorKind::kAdHoc2:
      return "ad-hoc-2";
    case DetectorKind::kAdHoc3:
      return "ad-hoc-3";
    case DetectorKind::kAdHoc4:
      return "ad-hoc-4";
    case DetectorKind::kSupervised:
      return "supervised";
    case DetectorKind::kSemiSupervised:
      return "semi-supervised";
    case DetectorKind::kSemiSupervisedMultiTask:
      return "semi-supervised-multitask";
  }
  return "unknown";
}

std::unique_ptr<DpDetector> TrainDetector(DetectorKind kind, const TrainingData& data,
                                          const DetectorTrainOptions& options) {
  // Metrics only: TrainDetector runs both from serial drivers and from the
  // guarded attempt thread, so spans (which must record in deterministic
  // order) are emitted by the callers instead.
  static MetricsRegistry::Counter train_calls =
      GlobalMetrics().RegisterCounter("train.calls");
  static MetricsRegistry::Histogram train_ns =
      GlobalMetrics().RegisterHistogram("train.ns", LatencyBucketsNs());
  auto start = std::chrono::steady_clock::now();
  train_calls.Add();
  struct TrainTimer {
    std::chrono::steady_clock::time_point start;
    MetricsRegistry::Histogram* hist;
    ~TrainTimer() { hist->Observe(static_cast<double>(ElapsedNs(start))); }
  } timer{start, &train_ns};
  std::vector<LabeledSample> labeled = PoolLabeled(data);
  switch (kind) {
    case DetectorKind::kAdHoc1:
      return TrainAdHoc(0, labeled);
    case DetectorKind::kAdHoc2:
      return TrainAdHoc(1, labeled);
    case DetectorKind::kAdHoc3:
      return TrainAdHoc(2, labeled);
    case DetectorKind::kAdHoc4:
      return TrainAdHoc(3, labeled);
    case DetectorKind::kSupervised:
      return TrainForest(labeled, options.forest);
    case DetectorKind::kSemiSupervised:
      return TrainLinearKpca(data, options, /*multitask=*/false);
    case DetectorKind::kSemiSupervisedMultiTask:
      return TrainLinearKpca(data, options, /*multitask=*/true);
  }
  return nullptr;
}

Result<SupervisedTrainResult> TrainDetectorSupervised(
    DetectorKind kind, const TrainingData& data, const DetectorTrainOptions& options,
    Supervisor* supervisor) {
  SupervisedTrainResult result;
  // No labeled seeds is not a fault: same nullptr contract as TrainDetector,
  // and the caller decides whether that ends cleaning.
  if (!HasLabeled(data)) return result;

  ScopedSpan span(&GlobalTrace(), "detector.train");
  span.AddTag("kind", DetectorKindName(kind));

  std::function<std::unique_ptr<DpDetector>(int)> body = [&](int attempt) {
    (void)attempt;
    return TrainDetector(kind, data, options);
  };
  std::function<std::string(const std::unique_ptr<DpDetector>&)> validate =
      [](const std::unique_ptr<DpDetector>& detector) {
        return detector != nullptr ? std::string()
                                   : std::string("training produced no detector");
      };
  StageOutcome outcome;
  std::unique_ptr<DpDetector> trained;
  supervisor->RunGuarded<std::unique_ptr<DpDetector>>(
      PipelineStage::kDetectorTrain, ComputeFaultPlan::kGlobalScope, body, validate,
      &trained, &outcome);
  result.retries = outcome.retries;
  if (outcome.ok) {
    span.SetOutcome(outcome.retries > 0 ? "retried" : "ok");
    result.detector = std::move(trained);
    return result;
  }
  span.SetOutcome("fallback");

  // Degrade down the ad-hoc ladder. The fallbacks run unguarded: they are
  // the last resort, have no numeric fitting to fail, and an injected
  // persistent train fault must not take them down with the primary.
  for (DetectorKind fallback : {DetectorKind::kAdHoc3, DetectorKind::kAdHoc1}) {
    if (fallback == kind) continue;
    result.detector = TrainDetector(fallback, data, options);
    if (result.detector != nullptr) {
      result.fell_back = true;
      result.detail = std::string(DetectorKindName(kind)) + " failed (" +
                      outcome.error + "); fell back to " +
                      DetectorKindName(fallback);
      supervisor->health()->RecordDetectorFallback(outcome.retries, result.detail);
      return result;
    }
  }

  // Even the ladder failed. Fail-fast mode surfaces the primary error;
  // quarantine mode records the degradation and returns no detector (the
  // cleaner stops cleaning, which is the maximal graceful degradation).
  span.SetOutcome("failed");
  if (!supervisor->options().quarantine) {
    return Status::Internal("detector training failed after " +
                            std::to_string(outcome.retries) +
                            " retries and no fallback trained: " + outcome.error);
  }
  result.detail = std::string(DetectorKindName(kind)) +
                  " and all fallbacks failed: " + outcome.error;
  supervisor->health()->RecordDetectorFallback(outcome.retries, result.detail);
  return result;
}

}  // namespace semdrift
