#ifndef SEMDRIFT_SCENARIO_RUNNER_H_
#define SEMDRIFT_SCENARIO_RUNNER_H_

#include <string>
#include <vector>

#include "eval/metrics.h"
#include "scenario/scenario.h"

namespace semdrift {
namespace scenario {

/// Everything a scenario run measures. All values are deterministic
/// functions of the scenario (bit-identical at any thread count), so the
/// envelope gate and the hunter's ranking replay exactly.
struct ScenarioMetrics {
  int iterations = 0;
  size_t live_pairs_before = 0;
  size_t live_pairs_after = 0;
  double precision_before = 0.0;
  bool precision_before_defined = false;
  double precision_after = 0.0;
  bool precision_after_defined = false;
  CleaningMetrics cleaning;
  int rounds = 0;
  size_t records_rolled_back = 0;
  size_t quarantined = 0;
  size_t drops = 0;
  size_t num_sentences = 0;
  /// Streaming leg (stream.epochs > 1 only): epochs run, how many were full
  /// rebuilds, and the incremental-vs-batch live-pair Jaccard distance over
  /// the evaluation scope. The distance is undefined when both KBs are empty
  /// over the scope or the leg aborted.
  int stream_epochs = 0;
  int stream_full_rebuilds = 0;
  double stream_divergence = 0.0;
  bool stream_divergence_defined = false;
};

/// The verdict on one run: measured metrics plus every violation found —
/// envelope bounds broken and invariants failed (KnowledgeBase::Validate,
/// serialize round-trip mismatches). An empty violation list is a pass.
struct ScenarioOutcome {
  ScenarioMetrics metrics;
  std::vector<std::string> violations;
  /// True when any violation is an invariant break (not just an envelope
  /// bound) — the hunter treats these as a distinct failure class.
  bool invariant_failure = false;

  bool ok() const { return violations.empty(); }
};

/// Envelope check only (exposed for the hunter and tests): violation
/// strings, empty when within bounds. A min bound on an undefined metric is
/// reported as a violation.
std::vector<std::string> CheckEnvelope(const ScenarioEnvelope& envelope,
                                       const ScenarioMetrics& metrics);

/// Runs the full pipeline for one scenario: generate world and corpus
/// (checked), optional serialize round-trip gate, iterative extraction,
/// KB invariant validation, supervised DP cleaning under the scenario's
/// fault overlay, evaluation via eval/metrics, then the envelope gate.
/// Returns a Status error only when the scenario itself is unusable
/// (invalid spec, unreadable work dir); pipeline misbehavior lands in the
/// outcome's violations. Records scenario.* metrics and a scenario.run
/// trace span per call.
Result<ScenarioOutcome> RunScenario(const Scenario& s);

/// One-line metric summary for CLI/hunt logs.
std::string FormatMetricsLine(const ScenarioMetrics& m);

}  // namespace scenario
}  // namespace semdrift

#endif  // SEMDRIFT_SCENARIO_RUNNER_H_
