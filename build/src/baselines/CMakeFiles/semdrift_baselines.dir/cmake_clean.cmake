file(REMOVE_RECURSE
  "CMakeFiles/semdrift_baselines.dir/cleaners.cc.o"
  "CMakeFiles/semdrift_baselines.dir/cleaners.cc.o.d"
  "CMakeFiles/semdrift_baselines.dir/threshold.cc.o"
  "CMakeFiles/semdrift_baselines.dir/threshold.cc.o.d"
  "libsemdrift_baselines.a"
  "libsemdrift_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semdrift_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
