file(REMOVE_RECURSE
  "libsemdrift_corpus.a"
)
