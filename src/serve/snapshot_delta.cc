#include "serve/snapshot_delta.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <system_error>

#include "util/framed_file.h"
#include "util/string_util.h"

namespace semdrift {

namespace {

constexpr std::string_view kDeltaTag = "sddelta";
constexpr int kDeltaVersion = 2;

/// Bitwise double equality: a diff must notice 0.0 vs -0.0 (numerically
/// equal, byte-different), or the materialized image would not be
/// byte-identical to a direct write of the next generation.
bool BitsEq(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, 8);
  std::memcpy(&bb, &b, 8);
  return ba == bb;
}

bool Finite(double v) { return v == v && v - v == 0.0; }

std::string FormatDouble17(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Status Malformed(const std::string& path, size_t line_number,
                 const std::string& why) {
  return Status::DataLoss("delta " + path + ":" + std::to_string(line_number) +
                          ": " + why);
}

}  // namespace

Result<SnapshotDelta> DiffSnapshotParts(const SnapshotParts& base,
                                        const SnapshotParts& next) {
  if (base.concept_names != next.concept_names ||
      base.instance_names != next.instance_names) {
    return Status::InvalidArgument(
        "snapshot delta: base and next snapshots describe different worlds");
  }
  const size_t nc = base.num_concepts();
  SnapshotDelta delta;
  delta.num_concepts = static_cast<uint32_t>(nc);
  delta.num_instances = static_cast<uint32_t>(base.num_instances());
  delta.mutex_threshold = next.mutex_threshold;
  delta.similar_threshold = next.similar_threshold;

  // Pair edits: merge-walk each concept's sorted rows.
  for (size_t c = 0; c < nc; ++c) {
    uint64_t i = base.fwd_rows[c];
    uint64_t j = next.fwd_rows[c];
    const uint64_t iend = base.fwd_rows[c + 1];
    const uint64_t jend = next.fwd_rows[c + 1];
    while (i < iend || j < jend) {
      const uint32_t be = i < iend ? base.fwd_instance[i] : 0xffffffffu;
      const uint32_t ne = j < jend ? next.fwd_instance[j] : 0xffffffffu;
      if (i < iend && (j >= jend || be < ne)) {
        delta.pair_removes.emplace_back(static_cast<uint32_t>(c), be);
        ++i;
      } else if (j < jend && (i >= iend || ne < be)) {
        delta.pair_upserts.push_back({static_cast<uint32_t>(c), ne, next.score[j],
                                      next.support[j], next.iter1[j]});
        ++j;
      } else {
        if (!BitsEq(base.score[i], next.score[j]) ||
            base.support[i] != next.support[j] || base.iter1[i] != next.iter1[j]) {
          delta.pair_upserts.push_back({static_cast<uint32_t>(c), ne, next.score[j],
                                        next.support[j], next.iter1[j]});
        }
        ++i;
        ++j;
      }
    }
  }

  for (size_t c = 0; c < nc; ++c) {
    if (base.flags[c] != next.flags[c]) {
      delta.flag_sets.push_back({static_cast<uint32_t>(c), next.flags[c]});
    }
  }

  // Mutex edits: merge-walk the sorted key columns.
  {
    size_t i = 0, j = 0;
    while (i < base.mutex_keys.size() || j < next.mutex_keys.size()) {
      const uint64_t bk =
          i < base.mutex_keys.size() ? base.mutex_keys[i] : ~0ull;
      const uint64_t nk =
          j < next.mutex_keys.size() ? next.mutex_keys[j] : ~0ull;
      if (i < base.mutex_keys.size() &&
          (j >= next.mutex_keys.size() || bk < nk)) {
        delta.mutex_removes.push_back(bk);
        ++i;
      } else if (j < next.mutex_keys.size() &&
                 (i >= base.mutex_keys.size() || nk < bk)) {
        delta.mutex_upserts.push_back({nk, next.mutex_sims[j]});
        ++j;
      } else {
        if (!BitsEq(base.mutex_sims[i], next.mutex_sims[j])) {
          delta.mutex_upserts.push_back({nk, next.mutex_sims[j]});
        }
        ++i;
        ++j;
      }
    }
  }
  return delta;
}

Status WriteSnapshotDeltaFile(const SnapshotDelta& delta, const std::string& path) {
  const std::string tmp = path + ".snap-tmp";
  FramedWriter writer(tmp, kDeltaTag, kDeltaVersion);
  writer.WriteLine("base\t" + std::to_string(delta.base_generation) + "\t" +
                   std::to_string(delta.base_crc32));
  writer.WriteLine("gen\t" + std::to_string(delta.generation));
  writer.WriteLine("counts\t" + std::to_string(delta.num_concepts) + "\t" +
                   std::to_string(delta.num_instances));
  writer.WriteLine("thresholds\t" + FormatDouble17(delta.mutex_threshold) + "\t" +
                   FormatDouble17(delta.similar_threshold));
  writer.WriteLine("records\t" + std::to_string(delta.num_records()));
  for (const SnapshotDelta::PairUpsert& u : delta.pair_upserts) {
    writer.WriteLine("P+\t" + std::to_string(u.concept_id) + "\t" +
                     std::to_string(u.instance) + "\t" + FormatDouble17(u.score) +
                     "\t" + std::to_string(u.support) + "\t" +
                     std::to_string(u.iter1));
  }
  for (const auto& r : delta.pair_removes) {
    writer.WriteLine("P-\t" + std::to_string(r.first) + "\t" +
                     std::to_string(r.second));
  }
  for (const SnapshotDelta::FlagSet& f : delta.flag_sets) {
    writer.WriteLine("F\t" + std::to_string(f.concept_id) + "\t" +
                     std::to_string(static_cast<unsigned>(f.flags)));
  }
  for (const SnapshotDelta::MutexUpsert& m : delta.mutex_upserts) {
    writer.WriteLine("M+\t" + std::to_string(m.key) + "\t" +
                     FormatDouble17(m.sim));
  }
  for (uint64_t k : delta.mutex_removes) {
    writer.WriteLine("M-\t" + std::to_string(k));
  }
  Status closed = writer.Close();
  if (!closed.ok()) return closed;
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("cannot rename " + tmp + " to " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

Result<SnapshotDelta> LoadSnapshotDelta(const std::string& path) {
  auto framed = ReadFramedFile(path, kDeltaTag, kDeltaVersion);
  if (!framed.ok()) {
    // Framing rejections (wrong tag, bad version line) are corruption from
    // the publish pipeline's point of view.
    if (framed.status().code() == Status::Code::kInvalidArgument) {
      return Status::DataLoss("delta " + path + ": " + framed.status().message());
    }
    return framed.status();
  }
  if (framed->version != kDeltaVersion) {
    return Status::DataLoss("delta " + path + ": unsupported version " +
                            std::to_string(framed->version));
  }
  if (framed->truncated) {
    return Status::DataLoss("delta " + path +
                            ": missing checksum footer (torn write?)");
  }
  if (!framed->checksum_present || !framed->checksum_ok) {
    return Status::DataLoss("delta " + path + ": checksum mismatch");
  }
  const std::vector<std::string>& lines = framed->lines;
  if (lines.size() < 5) {
    return Status::DataLoss("delta " + path + ": header incomplete");
  }
  auto line_no = [&](size_t i) { return framed->line_numbers[i]; };

  SnapshotDelta delta;
  uint64_t declared_records = 0;
  {
    std::vector<std::string> f = Split(lines[0], '\t');
    uint64_t crc = 0;
    if (f.size() != 3 || f[0] != "base" ||
        !ParseUint64(f[1], &delta.base_generation) || !ParseUint64(f[2], &crc) ||
        crc > 0xffffffffull) {
      return Malformed(path, line_no(0), "bad base line");
    }
    delta.base_crc32 = static_cast<uint32_t>(crc);
  }
  {
    std::vector<std::string> f = Split(lines[1], '\t');
    if (f.size() != 2 || f[0] != "gen" || !ParseUint64(f[1], &delta.generation)) {
      return Malformed(path, line_no(1), "bad gen line");
    }
    if (delta.generation != delta.base_generation + 1) {
      return Malformed(path, line_no(1),
                       "generation " + std::to_string(delta.generation) +
                           " is not base " + std::to_string(delta.base_generation) +
                           " + 1");
    }
  }
  {
    std::vector<std::string> f = Split(lines[2], '\t');
    uint64_t nc = 0, ni = 0;
    if (f.size() != 3 || f[0] != "counts" || !ParseUint64(f[1], &nc) ||
        !ParseUint64(f[2], &ni) || nc > 0xffffffffull || ni > 0xffffffffull) {
      return Malformed(path, line_no(2), "bad counts line");
    }
    delta.num_concepts = static_cast<uint32_t>(nc);
    delta.num_instances = static_cast<uint32_t>(ni);
  }
  {
    std::vector<std::string> f = Split(lines[3], '\t');
    if (f.size() != 3 || f[0] != "thresholds" ||
        !ParseDouble(f[1], &delta.mutex_threshold) ||
        !ParseDouble(f[2], &delta.similar_threshold) ||
        !Finite(delta.mutex_threshold) || !Finite(delta.similar_threshold)) {
      return Malformed(path, line_no(3), "bad thresholds line");
    }
  }
  {
    std::vector<std::string> f = Split(lines[4], '\t');
    if (f.size() != 2 || f[0] != "records" || !ParseUint64(f[1], &declared_records)) {
      return Malformed(path, line_no(4), "bad records line");
    }
  }

  for (size_t i = 5; i < lines.size(); ++i) {
    std::vector<std::string> f = Split(lines[i], '\t');
    if (f.empty()) return Malformed(path, line_no(i), "empty record");
    if (f[0] == "P+") {
      SnapshotDelta::PairUpsert u;
      uint64_t support = 0, iter1 = 0;
      uint64_t c = 0, e = 0;
      if (f.size() != 6 || !ParseUint64(f[1], &c) || !ParseUint64(f[2], &e) ||
          !ParseDouble(f[3], &u.score) || !ParseUint64(f[4], &support) ||
          !ParseUint64(f[5], &iter1) || c >= delta.num_concepts ||
          e >= delta.num_instances || !Finite(u.score) ||
          support > 0xffffffffull || iter1 > 0xffffffffull) {
        return Malformed(path, line_no(i), "bad pair upsert");
      }
      u.concept_id = static_cast<uint32_t>(c);
      u.instance = static_cast<uint32_t>(e);
      u.support = static_cast<uint32_t>(support);
      u.iter1 = static_cast<uint32_t>(iter1);
      delta.pair_upserts.push_back(u);
    } else if (f[0] == "P-") {
      uint64_t c = 0, e = 0;
      if (f.size() != 3 || !ParseUint64(f[1], &c) || !ParseUint64(f[2], &e) ||
          c >= delta.num_concepts || e >= delta.num_instances) {
        return Malformed(path, line_no(i), "bad pair remove");
      }
      delta.pair_removes.emplace_back(static_cast<uint32_t>(c),
                                      static_cast<uint32_t>(e));
    } else if (f[0] == "F") {
      uint64_t c = 0, flags = 0;
      if (f.size() != 3 || !ParseUint64(f[1], &c) || !ParseUint64(f[2], &flags) ||
          c >= delta.num_concepts || flags > 0xff) {
        return Malformed(path, line_no(i), "bad flag record");
      }
      delta.flag_sets.push_back(
          {static_cast<uint32_t>(c), static_cast<uint8_t>(flags)});
    } else if (f[0] == "M+") {
      SnapshotDelta::MutexUpsert m;
      if (f.size() != 3 || !ParseUint64(f[1], &m.key) ||
          !ParseDouble(f[2], &m.sim) || !Finite(m.sim) || m.sim < 0.0) {
        return Malformed(path, line_no(i), "bad mutex upsert");
      }
      const uint32_t lo = static_cast<uint32_t>(m.key >> 32);
      const uint32_t hi = static_cast<uint32_t>(m.key & 0xffffffffu);
      if (lo >= hi || hi >= delta.num_concepts) {
        return Malformed(path, line_no(i), "mutex upsert key out of range");
      }
      delta.mutex_upserts.push_back(m);
    } else if (f[0] == "M-") {
      uint64_t key = 0;
      if (f.size() != 2 || !ParseUint64(f[1], &key)) {
        return Malformed(path, line_no(i), "bad mutex remove");
      }
      const uint32_t lo = static_cast<uint32_t>(key >> 32);
      const uint32_t hi = static_cast<uint32_t>(key & 0xffffffffu);
      if (lo >= hi || hi >= delta.num_concepts) {
        return Malformed(path, line_no(i), "mutex remove key out of range");
      }
      delta.mutex_removes.push_back(key);
    } else {
      return Malformed(path, line_no(i), "unknown record kind '" + f[0] + "'");
    }
  }

  if (delta.num_records() != declared_records) {
    return Status::DataLoss("delta " + path + ": declared " +
                            std::to_string(declared_records) + " records, found " +
                            std::to_string(delta.num_records()));
  }

  // Per-kind strict ordering + cross-kind disjointness: a duplicated or
  // replayed record (kDuplicateLine) and an upsert/remove conflict are both
  // corruption, not policy.
  auto pair_key = [](uint32_t c, uint32_t e) {
    return (static_cast<uint64_t>(c) << 32) | e;
  };
  for (size_t i = 1; i < delta.pair_upserts.size(); ++i) {
    if (pair_key(delta.pair_upserts[i].concept_id, delta.pair_upserts[i].instance) <=
        pair_key(delta.pair_upserts[i - 1].concept_id,
                 delta.pair_upserts[i - 1].instance)) {
      return Status::DataLoss("delta " + path + ": pair upserts not strictly sorted");
    }
  }
  for (size_t i = 1; i < delta.pair_removes.size(); ++i) {
    if (pair_key(delta.pair_removes[i].first, delta.pair_removes[i].second) <=
        pair_key(delta.pair_removes[i - 1].first, delta.pair_removes[i - 1].second)) {
      return Status::DataLoss("delta " + path + ": pair removes not strictly sorted");
    }
  }
  for (size_t i = 1; i < delta.flag_sets.size(); ++i) {
    if (delta.flag_sets[i].concept_id <= delta.flag_sets[i - 1].concept_id) {
      return Status::DataLoss("delta " + path + ": flag records not strictly sorted");
    }
  }
  for (size_t i = 1; i < delta.mutex_upserts.size(); ++i) {
    if (delta.mutex_upserts[i].key <= delta.mutex_upserts[i - 1].key) {
      return Status::DataLoss("delta " + path + ": mutex upserts not strictly sorted");
    }
  }
  for (size_t i = 1; i < delta.mutex_removes.size(); ++i) {
    if (delta.mutex_removes[i] <= delta.mutex_removes[i - 1]) {
      return Status::DataLoss("delta " + path + ": mutex removes not strictly sorted");
    }
  }
  {
    size_t i = 0;
    for (const auto& r : delta.pair_removes) {
      while (i < delta.pair_upserts.size() &&
             pair_key(delta.pair_upserts[i].concept_id,
                      delta.pair_upserts[i].instance) < pair_key(r.first, r.second)) {
        ++i;
      }
      if (i < delta.pair_upserts.size() &&
          delta.pair_upserts[i].concept_id == r.first &&
          delta.pair_upserts[i].instance == r.second) {
        return Status::DataLoss("delta " + path +
                                ": pair both upserted and removed");
      }
    }
    i = 0;
    for (uint64_t k : delta.mutex_removes) {
      while (i < delta.mutex_upserts.size() && delta.mutex_upserts[i].key < k) ++i;
      if (i < delta.mutex_upserts.size() && delta.mutex_upserts[i].key == k) {
        return Status::DataLoss("delta " + path +
                                ": mutex key both upserted and removed");
      }
    }
  }
  return delta;
}

Status ApplySnapshotDelta(const SnapshotDelta& delta, SnapshotParts* parts) {
  const size_t nc = parts->num_concepts();
  const size_t ni = parts->num_instances();
  if (delta.num_concepts != nc || delta.num_instances != ni) {
    return Status::DataLoss(
        "delta counts (" + std::to_string(delta.num_concepts) + " concepts, " +
        std::to_string(delta.num_instances) + " instances) do not match base (" +
        std::to_string(nc) + ", " + std::to_string(ni) + ")");
  }
  parts->mutex_threshold = delta.mutex_threshold;
  parts->similar_threshold = delta.similar_threshold;
  for (const SnapshotDelta::FlagSet& f : delta.flag_sets) {
    parts->flags[f.concept_id] = f.flags;
  }

  // Pair columns: merge each concept's sorted base row with its sorted
  // upserts/removes into fresh columns.
  std::vector<uint64_t> new_rows(nc + 1, 0);
  std::vector<uint32_t> new_instance;
  std::vector<double> new_score;
  std::vector<uint32_t> new_support;
  std::vector<uint32_t> new_iter1;
  new_instance.reserve(parts->fwd_instance.size() + delta.pair_upserts.size());
  size_t ui = 0, ri = 0;
  for (size_t c = 0; c < nc; ++c) {
    uint64_t j = parts->fwd_rows[c];
    const uint64_t jend = parts->fwd_rows[c + 1];
    for (;;) {
      const uint32_t be = j < jend ? parts->fwd_instance[j] : 0xffffffffu;
      const bool has_up = ui < delta.pair_upserts.size() &&
                          delta.pair_upserts[ui].concept_id == c;
      const bool has_rm =
          ri < delta.pair_removes.size() && delta.pair_removes[ri].first == c;
      const uint32_t ue = has_up ? delta.pair_upserts[ui].instance : 0xffffffffu;
      const uint32_t re = has_rm ? delta.pair_removes[ri].second : 0xffffffffu;
      if (j >= jend && !has_up && !has_rm) break;
      if (has_rm && re <= ue && re <= be) {
        if (re != be) {
          return Status::DataLoss("delta removes pair (" + std::to_string(c) + ", " +
                                  std::to_string(re) +
                                  ") absent from the base — wrong base?");
        }
        ++ri;
        ++j;
        continue;
      }
      if (has_up && ue <= be) {
        new_instance.push_back(ue);
        new_score.push_back(delta.pair_upserts[ui].score);
        new_support.push_back(delta.pair_upserts[ui].support);
        new_iter1.push_back(delta.pair_upserts[ui].iter1);
        ++ui;
        if (ue == be) ++j;
        continue;
      }
      if (be == 0xffffffffu) break;
      new_instance.push_back(be);
      new_score.push_back(parts->score[j]);
      new_support.push_back(parts->support[j]);
      new_iter1.push_back(parts->iter1[j]);
      ++j;
    }
    new_rows[c + 1] = new_instance.size();
  }
  if (ui != delta.pair_upserts.size() || ri != delta.pair_removes.size()) {
    return Status::DataLoss("delta pair records left unconsumed");
  }
  parts->fwd_rows = std::move(new_rows);
  parts->fwd_instance = std::move(new_instance);
  parts->score = std::move(new_score);
  parts->support = std::move(new_support);
  parts->iter1 = std::move(new_iter1);

  // Mutex table: the same merge over sorted keys.
  std::vector<uint64_t> new_keys;
  std::vector<double> new_sims;
  new_keys.reserve(parts->mutex_keys.size() + delta.mutex_upserts.size());
  size_t mi = 0, mu = 0, mr = 0;
  for (;;) {
    const uint64_t bk = mi < parts->mutex_keys.size() ? parts->mutex_keys[mi] : ~0ull;
    const uint64_t uk =
        mu < delta.mutex_upserts.size() ? delta.mutex_upserts[mu].key : ~0ull;
    const uint64_t rk =
        mr < delta.mutex_removes.size() ? delta.mutex_removes[mr] : ~0ull;
    if (bk == ~0ull && uk == ~0ull && rk == ~0ull) break;
    if (rk <= uk && rk <= bk) {
      if (rk != bk) {
        return Status::DataLoss("delta removes mutex key absent from the base — "
                                "wrong base?");
      }
      ++mr;
      ++mi;
      continue;
    }
    if (uk <= bk) {
      new_keys.push_back(uk);
      new_sims.push_back(delta.mutex_upserts[mu].sim);
      ++mu;
      if (uk == bk) ++mi;
      continue;
    }
    new_keys.push_back(bk);
    new_sims.push_back(parts->mutex_sims[mi]);
    ++mi;
  }
  parts->mutex_keys = std::move(new_keys);
  parts->mutex_sims = std::move(new_sims);
  return Status::OK();
}

Result<std::string> MaterializeSnapshotDelta(const SnapshotDelta& delta,
                                             const SnapshotParts& base_parts,
                                             uint64_t base_generation,
                                             uint32_t base_crc32) {
  if (delta.base_generation != base_generation || delta.base_crc32 != base_crc32) {
    return Status::DataLoss(
        "delta for generation " + std::to_string(delta.generation) +
        " is bound to base generation " + std::to_string(delta.base_generation) +
        " (crc " + std::to_string(delta.base_crc32) + ") but the current base is "
        "generation " + std::to_string(base_generation) + " (crc " +
        std::to_string(base_crc32) + ") — wrong base");
  }
  SnapshotParts next = base_parts;
  Status applied = ApplySnapshotDelta(delta, &next);
  if (!applied.ok()) return applied;
  return BuildSnapshotImage(next);
}

}  // namespace semdrift
