#ifndef SEMDRIFT_ML_MANIFOLD_H_
#define SEMDRIFT_ML_MANIFOLD_H_

#include "ml/matrix.h"

namespace semdrift {

/// Parameters of the local-learning manifold regularizer (Eq. 9-14).
struct ManifoldOptions {
  /// Neighborhood size k of N_k(x~_i).
  int k = 7;
  /// Ridge term of the local predictors (the lambda inside Eq. 12/14).
  double local_lambda = 1.0;
};

/// Builds the semi-supervised regularizer
///     A = X~ (sum_i S_i L_i S_i^T) X~^T              (Eq. 17)
/// with
///     L_i = H - H X~_i^T (X~_i H X~_i^T + lambda I)^(-1) X~_i H   (Eq. 14)
/// over *all* rows of `x` (labeled and unlabeled — this is where unlabeled
/// data enters the detector). `x` holds samples as rows (n x r); the result
/// is r x r and positive semi-definite (Theorem 1 / Lemma 1).
///
/// Internally L_i is evaluated in its (k+1)-dimensional Woodbury form
///     L_i = lambda (H G_i H + lambda I)^(-1) - (1/(k+1)) 1 1^T,
/// where G_i = X~_i^T X~_i, so cost is O(n (k^3 + k^2 r) + n^2 r) instead of
/// O(n r^3).
Matrix BuildManifoldRegularizer(const Matrix& x, const ManifoldOptions& options);

}  // namespace semdrift

#endif  // SEMDRIFT_ML_MANIFOLD_H_
