# CTest script: run --snapshot-out -> snapshot-verify -> serve -> scripted
# queries -> expected-answers diff. The expected answers come from `semdrift
# query` one-shots over the same snapshot, so the serve path (batcher + line
# protocol on stdin/stdout) must agree byte for byte with direct engine
# answers — including top-k-by-score ordering.
file(MAKE_DIRECTORY ${WORK_DIR})
execute_process(
  COMMAND ${CLI} generate --scale 0.05 --seed 11
          --world ${WORK_DIR}/w.tsv --corpus ${WORK_DIR}/c.tsv
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed (${rc}): ${out} ${err}")
endif()

execute_process(
  COMMAND ${CLI} run --world ${WORK_DIR}/w.tsv --corpus ${WORK_DIR}/c.tsv
          --out ${WORK_DIR}/t.tsv --snapshot-out ${WORK_DIR}/s.bin
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run failed (${rc}): ${out} ${err}")
endif()
# Satellite contract: a successful run names the artifacts it wrote.
if(NOT out MATCHES "taxonomy -> ")
  message(FATAL_ERROR "run output missing taxonomy path: ${out}")
endif()
if(NOT out MATCHES "snapshot -> ")
  message(FATAL_ERROR "run output missing snapshot path: ${out}")
endif()

execute_process(
  COMMAND ${CLI} snapshot-verify ${WORK_DIR}/s.bin
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "snapshot-verify failed on a fresh snapshot (${rc}): ${err}")
endif()

# Damaged files must fail verification with a non-zero exit (deep seeded
# corruption is covered by serve_snapshot_test; this guards the CLI exit
# code contract).
file(WRITE ${WORK_DIR}/not-a-snapshot.bin "this is not a snapshot\n")
execute_process(
  COMMAND ${CLI} snapshot-verify ${WORK_DIR}/not-a-snapshot.bin
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "snapshot-verify accepted garbage")
endif()

# Pull a real live (concept, instance) pair from the exported taxonomy so
# the session exercises OK answers, not just misses.
file(STRINGS ${WORK_DIR}/t.tsv taxonomy_lines LIMIT_COUNT 2)
list(GET taxonomy_lines 1 first_pair)
string(REPLACE "\t" ";" first_pair_fields "${first_pair}")
list(GET first_pair_fields 0 concept_name)
list(GET first_pair_fields 1 instance_name)

set(queries
  "instances-of\t${concept_name}\t5"
  "instances-of\t${concept_name}"
  "concepts-of\t${instance_name}"
  "is-a\t${instance_name}\t${concept_name}"
  "drift-score\t${instance_name}\t${concept_name}"
  "mutex\t${concept_name}\tasian country"
  "drift-score\tno such instance\t${concept_name}"
  "instances-of\tno such concept"
)
set(script "")
set(expected "")
foreach(q IN LISTS queries)
  string(APPEND script "${q}\n")
  string(REPLACE "\t" ";" argv "${q}")
  execute_process(
    COMMAND ${CLI} query --snapshot ${WORK_DIR}/s.bin ${argv}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  # Non-zero exits are expected for the NOT_FOUND probes; the printed answer
  # is still the contract being diffed.
  string(APPEND expected "${out}")
endforeach()
string(APPEND script "stats\nquit\n")
file(WRITE ${WORK_DIR}/queries.txt "${script}")

execute_process(
  COMMAND ${CLI} serve --snapshot ${WORK_DIR}/s.bin
  INPUT_FILE ${WORK_DIR}/queries.txt
  OUTPUT_FILE ${WORK_DIR}/served.txt
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve failed (${rc}): ${err}")
endif()

file(READ ${WORK_DIR}/served.txt served)
# The session ends with the stats response; everything before it must equal
# the one-shot answers byte for byte.
string(FIND "${served}" "OK\tstats" stats_at)
if(stats_at EQUAL -1)
  message(FATAL_ERROR "serve session missing stats response: ${served}")
endif()
string(SUBSTRING "${served}" 0 ${stats_at} served_answers)
if(NOT served_answers STREQUAL expected)
  message(FATAL_ERROR "serve answers differ from one-shot answers.\n"
          "served:\n${served_answers}\nexpected:\n${expected}")
endif()

# The first query must actually have answered with instances.
string(REPLACE "\t" ";" first_fields "${expected}")
list(GET first_fields 0 first_status)
if(NOT first_status STREQUAL "OK")
  message(FATAL_ERROR "instances-of on a live concept did not answer OK: ${expected}")
endif()

# The query one-shot must exit with the documented NOT_FOUND code (3) on a
# miss, distinct from ERR (1) — the scriptability contract.
execute_process(
  COMMAND ${CLI} query --snapshot ${WORK_DIR}/s.bin instances-of "no such concept"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR "query exit code for NOT_FOUND should be 3, got ${rc}")
endif()
execute_process(
  COMMAND ${CLI} query --snapshot ${WORK_DIR}/s.bin no-such-verb x
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "query exit code for ERR should be 1, got ${rc}")
endif()

# Delta publishing: re-running the same pipeline against the existing
# snapshot as base yields an (empty) delta materializing generation 2, and
# snapshot-verify walks the base + delta chain.
execute_process(
  COMMAND ${CLI} run --world ${WORK_DIR}/w.tsv --corpus ${WORK_DIR}/c.tsv
          --out ${WORK_DIR}/t2.tsv
          --snapshot-delta-out ${WORK_DIR}/d.bin
          --snapshot-delta-base ${WORK_DIR}/s.bin
          --snapshot-delta-base-gen 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run --snapshot-delta-out failed (${rc}): ${out} ${err}")
endif()
if(NOT out MATCHES "snapshot delta -> ")
  message(FATAL_ERROR "run output missing delta path: ${out}")
endif()

execute_process(
  COMMAND ${CLI} snapshot-verify ${WORK_DIR}/s.bin ${WORK_DIR}/d.bin
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "snapshot-verify chain failed (${rc}): ${out} ${err}")
endif()
if(NOT out MATCHES "chain verified through generation 2")
  message(FATAL_ERROR "chain verification did not reach generation 2: ${out}")
endif()

# A truncated delta must fail chain verification.
file(READ ${WORK_DIR}/d.bin delta_content)
string(LENGTH "${delta_content}" delta_len)
math(EXPR half_len "${delta_len} / 2")
string(SUBSTRING "${delta_content}" 0 ${half_len} torn_delta)
file(WRITE ${WORK_DIR}/d-torn.bin "${torn_delta}")
execute_process(
  COMMAND ${CLI} snapshot-verify ${WORK_DIR}/s.bin ${WORK_DIR}/d-torn.bin
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "snapshot-verify accepted a torn delta")
endif()

# Hot-swap serving smoke: the same scripted session against a publish
# directory (generation 1 = the snapshot) must answer byte-identically to
# single-snapshot mode before the stats line.
file(MAKE_DIRECTORY ${WORK_DIR}/publish)
file(COPY ${WORK_DIR}/s.bin DESTINATION ${WORK_DIR}/publish)
file(RENAME ${WORK_DIR}/publish/s.bin ${WORK_DIR}/publish/snap-1.bin)
execute_process(
  COMMAND ${CLI} serve --publish-dir ${WORK_DIR}/publish
  INPUT_FILE ${WORK_DIR}/queries.txt
  OUTPUT_FILE ${WORK_DIR}/served_hotswap.txt
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve --publish-dir failed (${rc}): ${err}")
endif()
file(READ ${WORK_DIR}/served_hotswap.txt served_hotswap)
string(FIND "${served_hotswap}" "OK\tstats" hotswap_stats_at)
if(hotswap_stats_at EQUAL -1)
  message(FATAL_ERROR "hot-swap session missing stats response: ${served_hotswap}")
endif()
string(SUBSTRING "${served_hotswap}" 0 ${hotswap_stats_at} hotswap_answers)
if(NOT hotswap_answers STREQUAL expected)
  message(FATAL_ERROR "hot-swap serve answers differ from one-shot answers.\n"
          "served:\n${hotswap_answers}\nexpected:\n${expected}")
endif()
# The hot-swap stats line reports the serving generation.
string(SUBSTRING "${served_hotswap}" ${hotswap_stats_at} -1 hotswap_stats)
if(NOT hotswap_stats MATCHES "generation=1")
  message(FATAL_ERROR "hot-swap stats missing generation: ${hotswap_stats}")
endif()
