#include "dp/sentence_check.h"

namespace semdrift {

double SentenceConceptScore(const Sentence& s, ConceptId c, ScoreCache* scores) {
  double total = 0.0;
  for (InstanceId e : s.candidate_instances) {
    double denominator = 0.0;
    for (ConceptId candidate : s.candidate_concepts) {
      denominator += scores->Get(candidate, e);
    }
    if (denominator <= 0.0) continue;
    total += scores->Get(c, e) / denominator;
  }
  return total;
}

SmoothedVote SmoothedAttachmentVote(const Sentence& s, ConceptId extracted,
                                    ScoreCache* scores, double alpha) {
  SmoothedVote out;
  std::vector<double> totals(s.candidate_concepts.size(), 0.0);
  double extracted_total = 0.0;
  for (InstanceId e : s.candidate_instances) {
    double denominator = alpha;
    std::vector<double> scaled(s.candidate_concepts.size(), 0.0);
    for (size_t ci = 0; ci < s.candidate_concepts.size(); ++ci) {
      ConceptId c = s.candidate_concepts[ci];
      double n = static_cast<double>(scores->Concept(c).size());
      scaled[ci] = scores->Get(c, e) * (n > 0 ? n : 1.0);
      denominator += scaled[ci];
    }
    for (size_t ci = 0; ci < s.candidate_concepts.size(); ++ci) {
      double vote = scaled[ci] / denominator;
      totals[ci] += vote;
      if (s.candidate_concepts[ci] == extracted) extracted_total += vote;
    }
  }
  size_t best_index = 0;
  for (size_t ci = 1; ci < totals.size(); ++ci) {
    if (totals[ci] > totals[best_index]) best_index = ci;
  }
  out.best = s.candidate_concepts[best_index];
  out.average_vote_for_extracted =
      s.candidate_instances.empty()
          ? 0.0
          : extracted_total / static_cast<double>(s.candidate_instances.size());
  return out;
}

ConceptId BestAttachment(const Sentence& s, ScoreCache* scores) {
  ConceptId best = s.candidate_concepts.front();
  double best_score = SentenceConceptScore(s, best, scores);
  for (size_t i = 1; i < s.candidate_concepts.size(); ++i) {
    double score = SentenceConceptScore(s, s.candidate_concepts[i], scores);
    if (score > best_score) {
      best_score = score;
      best = s.candidate_concepts[i];
    }
  }
  return best;
}

}  // namespace semdrift
