// semdrift — command-line driver for the library.
//
//   semdrift generate --scale 0.25 --seed 2014 --world w.tsv --corpus c.tsv
//       Generate a ground-truth world + Hearst corpus and save both.
//   semdrift run --world w.tsv --corpus c.tsv --out taxonomy.tsv [--no-clean]
//       Load world+corpus, run iterative extraction (and DP cleaning unless
//       --no-clean), report quality against ground truth, export the
//       taxonomy.
//   semdrift parse --world w.tsv
//       Read raw sentences from stdin, parse each with the Hearst parser,
//       print the candidate analysis.
//
// Every subcommand is deterministic in --seed.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <unordered_map>

#include "corpus/serialization.h"
#include "dp/cleaner.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "extract/extractor.h"
#include "extract/hearst_parser.h"
#include "util/logging.h"

using namespace semdrift;

namespace {

/// Minimal --flag value parser: flags() holds every "--name value" pair.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) == 0) {
        values_[argv[i] + 2] = argv[i + 1];
      } else {
        std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      }
    }
    // Boolean flags (no value) are handled by Has() on the raw argv.
    for (int i = first; i < argc; ++i) raw_.emplace_back(argv[i]);
  }

  std::string Get(const std::string& name, const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  uint64_t GetUint(const std::string& name, uint64_t fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  bool Has(const std::string& name) const {
    for (const std::string& arg : raw_) {
      if (arg == "--" + name) return true;
    }
    return false;
  }

 private:
  std::unordered_map<std::string, std::string> values_;
  std::vector<std::string> raw_;
};

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  semdrift generate --scale S --seed N --world W --corpus C\n"
               "  semdrift run --world W --corpus C --out T.tsv [--no-clean]\n"
               "  semdrift parse --world W   (sentences on stdin)\n");
  return 2;
}

int Generate(const Flags& flags) {
  ExperimentConfig config = PaperScaleConfig(flags.GetDouble("scale", 0.25));
  config.seed = flags.GetUint("seed", 2014);
  config.corpus.render_text = true;
  auto experiment = Experiment::Build(config);
  std::string world_path = flags.Get("world", "world.tsv");
  std::string corpus_path = flags.Get("corpus", "corpus.tsv");
  Status s = SaveWorld(experiment->world(), world_path);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  s = SaveCorpus(experiment->world(), experiment->corpus(), corpus_path);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("world: %zu concepts, %zu instances -> %s\n",
              experiment->world().num_concepts(), experiment->world().num_instances(),
              world_path.c_str());
  std::printf("corpus: %zu sentences -> %s\n", experiment->corpus().sentences.size(),
              corpus_path.c_str());
  return 0;
}

int Run(const Flags& flags) {
  auto world = LoadWorld(flags.Get("world", "world.tsv"));
  if (!world.ok()) {
    std::fprintf(stderr, "%s\n", world.status().ToString().c_str());
    return 1;
  }
  auto corpus = LoadCorpus(*world, flags.Get("corpus", "corpus.tsv"));
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }

  KnowledgeBase kb;
  IterativeExtractor extractor(&corpus->sentences, ExtractorOptions{});
  auto iterations = extractor.Run(&kb);
  GroundTruth truth(&*world);
  std::vector<ConceptId> scope;
  for (size_t ci = 0; ci < world->num_concepts(); ++ci) {
    scope.push_back(ConceptId(static_cast<uint32_t>(ci)));
  }
  std::printf("extracted %zu pairs in %zu iterations (precision %.3f)\n",
              kb.num_live_pairs(), iterations.size(),
              LivePairPrecision(truth, kb, scope));

  if (!flags.Has("no-clean")) {
    CleanerOptions options;
    const World* world_ptr = &*world;
    DpCleaner cleaner(
        &corpus->sentences,
        [world_ptr](const IsAPair& pair) {
          return world_ptr->IsVerified(pair.concept_id, pair.instance);
        },
        world->num_concepts(), options);
    CleaningReport report = cleaner.Clean(&kb, scope);
    std::printf("cleaned: %d rounds, %zu DPs, %zu -> %zu pairs (precision %.3f)\n",
                report.rounds,
                report.intentional_dps.size() + report.accidental_dps.size(),
                report.live_pairs_before, report.live_pairs_after,
                LivePairPrecision(truth, kb, scope));
  }

  std::string out = flags.Get("out", "taxonomy.tsv");
  Status s = ExportTaxonomyTsv(kb, *world, out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("taxonomy -> %s\n", out.c_str());
  return 0;
}

int Parse(const Flags& flags) {
  auto world = LoadWorld(flags.Get("world", "world.tsv"));
  if (!world.ok()) {
    std::fprintf(stderr, "%s\n", world.status().ToString().c_str());
    return 1;
  }
  HearstParser parser(&world->concept_vocab(), world->instance_vocab());
  std::string line;
  while (std::getline(std::cin, line)) {
    auto parsed = parser.Parse(line);
    if (!parsed.has_value()) {
      std::printf("NO-MATCH\t%s\n", line.c_str());
      continue;
    }
    std::printf("MATCH\tconcepts=[");
    for (size_t i = 0; i < parsed->candidate_concepts.size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  world->ConceptName(parsed->candidate_concepts[i]).c_str());
    }
    std::printf("]\tinstances=[");
    for (size_t i = 0; i < parsed->candidate_instances.size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  parser.instance_lexicon().TermOf(parsed->candidate_instances[i].value)
                      .c_str());
    }
    std::printf("]\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Flags flags(argc, argv, 2);
  std::string command = argv[1];
  if (command == "generate") return Generate(flags);
  if (command == "run") return Run(flags);
  if (command == "parse") return Parse(flags);
  return Usage();
}
