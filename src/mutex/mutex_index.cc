#include "mutex/mutex_index.h"

#include <algorithm>
#include <cmath>

#include "util/thread_pool.h"

namespace semdrift {

namespace {
const std::vector<ConceptId> kNoConcepts;
}  // namespace

MutexIndex::MutexIndex(const KnowledgeBase& kb, size_t num_concepts,
                       MutexParams params)
    : params_(params) {
  core_norms_.assign(num_concepts, 0.0);
  similar_.resize(num_concepts);

  // Phase 1 — per-concept core vectors (iteration-1 frequency), extracted in
  // parallel, then merged into an inverted index over shared core instances
  // in concept order (ordered reduction: the index is identical at any
  // thread count).
  struct ConceptCore {
    double norm_sq = 0.0;
    std::vector<std::pair<InstanceId, double>> postings;  // (instance, weight)
  };
  std::vector<ConceptCore> cores =
      ParallelMap<ConceptCore>(num_concepts, [&](size_t ci) {
        ConceptCore core;
        for (const auto& [e, count] : kb.Iter1InstancesOf(ConceptId(
                 static_cast<uint32_t>(ci)))) {
          double w = static_cast<double>(count);
          core.norm_sq += w * w;
          core.postings.emplace_back(e, w);
        }
        return core;
      });

  struct Posting {
    uint32_t concept_id;
    double weight;
  };
  std::unordered_map<InstanceId, std::vector<Posting>> inverted;
  for (size_t ci = 0; ci < num_concepts; ++ci) {
    if (cores[ci].postings.size() >=
        static_cast<size_t>(params_.min_core_instances)) {
      core_norms_[ci] = std::sqrt(cores[ci].norm_sq);
    }
    for (const auto& [e, w] : cores[ci].postings) {
      inverted[e].push_back(Posting{static_cast<uint32_t>(ci), w});
    }
  }

  // Phase 2 — sparse pairwise dot products over co-occurring core instances.
  // Instances are sharded across the pool; each shard accumulates a local
  // dot map, and shard maps are then summed. All weights are integer counts,
  // so the partial sums are exact and the merged dots are independent of the
  // sharding.
  std::vector<const std::vector<Posting>*> shared_instances;
  for (const auto& [e, postings] : inverted) {
    (void)e;
    if (postings.size() >= 2) shared_instances.push_back(&postings);
  }
  int threads = GlobalThreadCount();
  size_t num_shards =
      std::min(shared_instances.size(), static_cast<size_t>(threads) * 4);
  std::vector<std::unordered_map<uint64_t, double>> shard_dots =
      ParallelMap<std::unordered_map<uint64_t, double>>(num_shards, [&](size_t s) {
        std::unordered_map<uint64_t, double> local;
        for (size_t idx = s; idx < shared_instances.size(); idx += num_shards) {
          const std::vector<Posting>& postings = *shared_instances[idx];
          for (size_t i = 0; i < postings.size(); ++i) {
            for (size_t j = i + 1; j < postings.size(); ++j) {
              uint64_t key = PairKey(ConceptId(postings[i].concept_id),
                                     ConceptId(postings[j].concept_id));
              local[key] += postings[i].weight * postings[j].weight;
            }
          }
        }
        return local;
      });
  std::unordered_map<uint64_t, double> dots;
  for (const auto& shard : shard_dots) {
    for (const auto& [key, dot] : shard) dots[key] += dot;
  }

  // Emit similarities in sorted key order so sims_ contents and the
  // highly-similar closure lists are deterministic regardless of hash-map
  // iteration order.
  std::vector<uint64_t> keys;
  keys.reserve(dots.size());
  for (const auto& [key, dot] : dots) {
    (void)dot;
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  for (uint64_t key : keys) {
    uint32_t a = static_cast<uint32_t>(key >> 32);
    uint32_t b = static_cast<uint32_t>(key & 0xffffffffu);
    if (core_norms_[a] <= 0.0 || core_norms_[b] <= 0.0) continue;
    double sim = dots[key] / (core_norms_[a] * core_norms_[b]);
    sims_.emplace(key, sim);
    if (sim > params_.similar_threshold) {
      similar_[a].push_back(ConceptId(b));
      similar_[b].push_back(ConceptId(a));
    }
  }

  // Phase 3 — live containment index for f2: per-concept live instances in
  // parallel, merged in concept order.
  std::vector<std::vector<InstanceId>> live =
      ParallelMap<std::vector<InstanceId>>(num_concepts, [&](size_t ci) {
        ConceptId c(static_cast<uint32_t>(ci));
        std::vector<InstanceId> out;
        for (InstanceId e : kb.InstancesEverOf(c)) {
          if (kb.Contains(IsAPair{c, e})) out.push_back(e);
        }
        return out;
      });
  for (size_t ci = 0; ci < num_concepts; ++ci) {
    ConceptId c(static_cast<uint32_t>(ci));
    for (InstanceId e : live[ci]) containing_[e].push_back(c);
  }
}

double MutexIndex::Sim(ConceptId a, ConceptId b) const {
  if (a == b) return 1.0;
  auto it = sims_.find(PairKey(a, b));
  return it == sims_.end() ? 0.0 : it->second;
}

bool MutexIndex::Usable(ConceptId c) const {
  return c.value < core_norms_.size() && core_norms_[c.value] > 0.0;
}

double MutexIndex::EffectiveSim(ConceptId a, ConceptId b) const {
  double best = Sim(a, b);
  for (ConceptId a2 : similar_[a.value]) best = std::max(best, Sim(a2, b));
  for (ConceptId b2 : similar_[b.value]) best = std::max(best, Sim(a, b2));
  return best;
}

bool MutexIndex::IsMutex(ConceptId a, ConceptId b) const {
  if (a == b) return false;
  if (!Usable(a) || !Usable(b)) return false;
  return EffectiveSim(a, b) < params_.mutex_threshold;
}

bool MutexIndex::HighlySimilar(ConceptId a, ConceptId b) const {
  if (a == b) return true;
  return Sim(a, b) > params_.similar_threshold;
}

const std::vector<ConceptId>& MutexIndex::SimilarConcepts(ConceptId c) const {
  if (c.value >= similar_.size()) return kNoConcepts;
  return similar_[c.value];
}

const std::vector<ConceptId>& MutexIndex::ConceptsContaining(InstanceId e) const {
  auto it = containing_.find(e);
  return it == containing_.end() ? kNoConcepts : it->second;
}

int MutexIndex::F2Count(ConceptId c, InstanceId e) const {
  int count = 0;
  for (ConceptId other : ConceptsContaining(e)) {
    if (other == c) continue;
    if (IsMutex(c, other)) ++count;
  }
  return count;
}

std::vector<double> MutexIndex::NonZeroSimilarities() const {
  std::vector<double> out;
  out.reserve(sims_.size());
  for (const auto& [key, sim] : sims_) {
    (void)key;
    out.push_back(sim);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace semdrift
