// Reproduces Fig. 3: the distributions of feature values f1-f4 for
// Intentional DPs, Accidental DPs and non-DPs (summarized as quartiles per
// class; the paper plots the raw point clouds). Shapes to match: non-DPs
// high on f1; Intentional DPs high on f2; Accidental DPs lowest on f3/f4.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "dp/detector.h"
#include "util/string_util.h"
#include "util/table_writer.h"

using namespace semdrift;

namespace {

struct Quartiles {
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double mean = 0.0;
};

Quartiles Summarize(std::vector<double> values) {
  Quartiles out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  auto at = [&](double fraction) {
    size_t index = static_cast<size_t>(fraction * (values.size() - 1));
    return values[index];
  };
  out.q25 = at(0.25);
  out.median = at(0.5);
  out.q75 = at(0.75);
  double total = 0.0;
  for (double v : values) total += v;
  out.mean = total / values.size();
  return out;
}

}  // namespace

int main() {
  auto experiment = bench::BuildBenchExperiment();
  KnowledgeBase kb = experiment->Extract();
  std::vector<ConceptId> scope = experiment->EvalConcepts();
  MutexIndex mutex(kb, experiment->world().num_concepts());
  ScoreCache scores(&kb, RankModel::kRandomWalk);
  FeatureExtractor features(&kb, &mutex, &scores);

  // Per ground-truth class, collect feature values.
  std::vector<double> values[3][4];  // [class][feature]
  for (ConceptId c : scope) {
    for (InstanceId e : kb.LiveInstancesOf(c)) {
      DpClass label = experiment->truth().DpLabelOf(kb, IsAPair{c, e});
      if (label == DpClass::kUnlabeled) continue;
      FeatureVector f = features.Extract(c, e);
      for (int k = 0; k < 4; ++k) {
        values[static_cast<int>(label)][k].push_back(f[k]);
      }
    }
  }

  const char* class_names[3] = {"Intentional DPs", "Accidental DPs", "non-DPs"};
  for (int feature = 0; feature < 4; ++feature) {
    TableWriter table("Fig. 3(" + std::string(1, static_cast<char>('a' + feature)) +
                      "): distribution of f" + std::to_string(feature + 1));
    table.SetHeader({"class", "n", "q25", "median", "q75", "mean"});
    for (int cls = 0; cls < 3; ++cls) {
      Quartiles q = Summarize(values[cls][feature]);
      table.AddRow({class_names[cls], std::to_string(values[cls][feature].size()),
                    FormatDouble(q.q25, 4), FormatDouble(q.median, 4),
                    FormatDouble(q.q75, 4), FormatDouble(q.mean, 4)});
    }
    table.Print(std::cout);
    (void)table.WriteCsv("bench_fig3_f" + std::to_string(feature + 1) + ".csv");
  }
  return 0;
}
