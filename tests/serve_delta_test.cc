#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/snapshot.h"
#include "serve/snapshot_delta.h"
#include "testing/random_structures.h"
#include "util/crc32.h"
#include "util/fault_injection.h"

namespace semdrift {
namespace {

/// Two snapshot-parts states over the same world: the base compiled from one
/// random KB, the next from an independent KB (different seed stream), so
/// the diff exercises inserts, removes, column changes and flag changes at
/// once.
struct PartsPair {
  SnapshotParts base;
  SnapshotParts next;
};

PartsPair MakePartsPair(uint64_t seed) {
  World world = property::RandomWorld(seed);
  size_t ns_a = 0, ns_b = 0;
  KnowledgeBase kb_a = property::RandomKb(world, seed, &ns_a);
  KnowledgeBase kb_b = property::RandomKb(world, seed + 1000, &ns_b);
  RunHealthReport health_a = property::RandomHealth(world, seed);
  RunHealthReport health_b = property::RandomHealth(world, seed + 1000);
  PartsPair pair;
  pair.base = CompileSnapshotParts(kb_a, world, &health_a, SnapshotOptions{});
  pair.next = CompileSnapshotParts(kb_b, world, &health_b, SnapshotOptions{});
  return pair;
}

/// Round-trips a delta through its file format and returns the loaded copy.
Result<SnapshotDelta> WriteAndLoad(const SnapshotDelta& delta,
                                   const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  Status written = WriteSnapshotDeltaFile(delta, path);
  if (!written.ok()) return written;
  return LoadSnapshotDelta(path);
}

/// The core property: base + (file round-tripped) delta materializes the
/// byte-exact image a direct build of the next parts produces. Byte
/// identity is what lets the chain keep strong CRC base bindings.
TEST(SnapshotDeltaTest, DiffApplyRoundTripIsByteIdenticalToDirectImage) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    PartsPair parts = MakePartsPair(seed);
    auto base_image = BuildSnapshotImage(parts.base);
    auto next_image = BuildSnapshotImage(parts.next);
    ASSERT_TRUE(base_image.ok()) << base_image.status().ToString();
    ASSERT_TRUE(next_image.ok()) << next_image.status().ToString();

    auto delta = DiffSnapshotParts(parts.base, parts.next);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    delta->base_generation = 7;
    delta->base_crc32 = Crc32Of(*base_image);
    delta->generation = 8;
    auto loaded =
        WriteAndLoad(*delta, "delta_prop_" + std::to_string(seed) + ".bin");
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->num_records(), delta->num_records());

    auto materialized =
        MaterializeSnapshotDelta(*loaded, parts.base, 7, Crc32Of(*base_image));
    ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
    EXPECT_EQ(*materialized, *next_image);

    // What the applier produced must also pass the deep validator.
    auto reopened = SnapshotReader::OpenFromBuffer(*materialized, "materialized");
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  }
}

TEST(SnapshotDeltaTest, SelfDiffIsEmptyAndMaterializesTheBase) {
  PartsPair parts = MakePartsPair(3);
  auto base_image = BuildSnapshotImage(parts.base);
  ASSERT_TRUE(base_image.ok());
  auto delta = DiffSnapshotParts(parts.base, parts.base);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->num_records(), 0u);
  delta->base_generation = 1;
  delta->base_crc32 = Crc32Of(*base_image);
  delta->generation = 2;
  auto loaded = WriteAndLoad(*delta, "delta_empty.bin");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto materialized =
      MaterializeSnapshotDelta(*loaded, parts.base, 1, Crc32Of(*base_image));
  ASSERT_TRUE(materialized.ok());
  EXPECT_EQ(*materialized, *base_image);
}

TEST(SnapshotDeltaTest, WrongBaseBindingIsRefused) {
  PartsPair parts = MakePartsPair(4);
  auto base_image = BuildSnapshotImage(parts.base);
  ASSERT_TRUE(base_image.ok());
  auto delta = DiffSnapshotParts(parts.base, parts.next);
  ASSERT_TRUE(delta.ok());
  delta->base_generation = 1;
  delta->base_crc32 = Crc32Of(*base_image);
  delta->generation = 2;

  // Wrong image CRC: same generation number, different bytes.
  auto wrong_crc = MaterializeSnapshotDelta(*delta, parts.base, 1,
                                            Crc32Of(*base_image) ^ 1u);
  ASSERT_FALSE(wrong_crc.ok());
  EXPECT_EQ(wrong_crc.status().code(), Status::Code::kDataLoss);

  // Wrong generation number: right bytes, wrong position in the chain.
  auto wrong_gen =
      MaterializeSnapshotDelta(*delta, parts.base, 2, Crc32Of(*base_image));
  ASSERT_FALSE(wrong_gen.ok());
  EXPECT_EQ(wrong_gen.status().code(), Status::Code::kDataLoss);
}

/// A two-delta chain applied stepwise equals the direct build of the final
/// state — the property the SnapshotManager's contiguous-chain walk rests on.
TEST(SnapshotDeltaTest, DeltaChainMatchesDirectBuild) {
  World world = property::RandomWorld(9);
  size_t ns = 0;
  KnowledgeBase kb_a = property::RandomKb(world, 9, &ns);
  KnowledgeBase kb_b = property::RandomKb(world, 1009, &ns);
  KnowledgeBase kb_c = property::RandomKb(world, 2009, &ns);
  SnapshotParts a = CompileSnapshotParts(kb_a, world, nullptr, SnapshotOptions{});
  SnapshotParts b = CompileSnapshotParts(kb_b, world, nullptr, SnapshotOptions{});
  SnapshotParts c = CompileSnapshotParts(kb_c, world, nullptr, SnapshotOptions{});
  auto image_a = BuildSnapshotImage(a);
  auto image_b = BuildSnapshotImage(b);
  auto image_c = BuildSnapshotImage(c);
  ASSERT_TRUE(image_a.ok() && image_b.ok() && image_c.ok());

  auto d_ab = DiffSnapshotParts(a, b);
  auto d_bc = DiffSnapshotParts(b, c);
  ASSERT_TRUE(d_ab.ok() && d_bc.ok());
  d_ab->base_generation = 1;
  d_ab->base_crc32 = Crc32Of(*image_a);
  d_ab->generation = 2;
  d_bc->base_generation = 2;
  d_bc->base_crc32 = Crc32Of(*image_b);
  d_bc->generation = 3;

  auto step1 = MaterializeSnapshotDelta(*d_ab, a, 1, Crc32Of(*image_a));
  ASSERT_TRUE(step1.ok()) << step1.status().ToString();
  EXPECT_EQ(*step1, *image_b);
  auto mid = SnapshotReader::OpenFromBuffer(*step1, "gen-2");
  ASSERT_TRUE(mid.ok());
  auto step2 =
      MaterializeSnapshotDelta(*d_bc, PartsFromReader(*mid), 2, Crc32Of(*step1));
  ASSERT_TRUE(step2.ok()) << step2.status().ToString();
  EXPECT_EQ(*step2, *image_c);
}

/// 60-seed corruption sweep over the delta file itself: every corrupted
/// publish must either be rejected cleanly at load/materialize time, or — in
/// the rare case the damage is survivable — still materialize an image that
/// passes the deep validator. Nothing in between.
TEST(SnapshotDeltaTest, CorruptionSweepNeverMaterializesAnInvalidImage) {
  PartsPair parts = MakePartsPair(12);
  auto base_image = BuildSnapshotImage(parts.base);
  ASSERT_TRUE(base_image.ok());
  const uint32_t base_crc = Crc32Of(*base_image);
  auto delta = DiffSnapshotParts(parts.base, parts.next);
  ASSERT_TRUE(delta.ok());
  ASSERT_GT(delta->num_records(), 0u);
  delta->base_generation = 1;
  delta->base_crc32 = base_crc;
  delta->generation = 2;
  const std::string pristine_path = ::testing::TempDir() + "/delta_sweep.bin";
  ASSERT_TRUE(WriteSnapshotDeltaFile(*delta, pristine_path).ok());
  auto pristine = ReadFileToString(pristine_path);
  ASSERT_TRUE(pristine.ok());

  int rejected = 0;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FaultInjector injector(0x5eed ^ (0x9e3779b97f4a7c15ULL * (seed + 1)));
    FaultKind kind;
    std::string corrupted = injector.CorruptRandom(*pristine, &kind);
    if (corrupted == *pristine) continue;  // Identity corruption, nothing to test.
    const std::string path =
        ::testing::TempDir() + "/delta_sweep_" + std::to_string(seed) + ".bin";
    ASSERT_TRUE(WriteStringToFile(corrupted, path).ok());
    auto loaded = LoadSnapshotDelta(path);
    if (!loaded.ok()) {
      EXPECT_EQ(loaded.status().code(), Status::Code::kDataLoss)
          << loaded.status().ToString();
      rejected++;
      continue;
    }
    auto materialized = MaterializeSnapshotDelta(*loaded, parts.base, 1, base_crc);
    if (!materialized.ok()) {
      rejected++;
      continue;
    }
    auto reopened = SnapshotReader::OpenFromBuffer(*materialized, path);
    EXPECT_TRUE(reopened.ok())
        << "corrupted delta materialized an invalid image: "
        << reopened.status().ToString();
  }
  // The framed checksum catches essentially everything; a low rejection
  // count would mean the sweep stopped exercising the strict loader.
  EXPECT_GT(rejected, 40);
}

}  // namespace
}  // namespace semdrift
