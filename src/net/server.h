#ifndef SEMDRIFT_NET_SERVER_H_
#define SEMDRIFT_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "net/line_channel.h"
#include "net/router.h"
#include "util/status.h"

namespace semdrift {

struct NetServerOptions {
  /// "tcp:host:port" (port 0 picks a free port), "unix:/path", or bare
  /// "host:port".
  std::string listen = "tcp:127.0.0.1:0";
  /// Request lines longer than this are discarded and answered with an ERR
  /// in their response slot (the connection stays framed).
  size_t max_line_bytes = 64 * 1024;
  /// Per-connection backpressure: stop reading when the unsent response
  /// bytes exceed this; resume below half.
  size_t max_write_buffer_bytes = 4 * 1024 * 1024;
  /// ... or when this many requests are in flight for one connection.
  size_t max_inflight_per_conn = 1024;
  /// Priority socket requests are submitted with (the admission ladder sheds
  /// from the bottom).
  RequestPriority priority = RequestPriority::kNormal;
};

/// Monotone counters for the event loop (torn reads fine; diagnostics only).
struct NetServerCounters {
  uint64_t accepted = 0;
  uint64_t closed = 0;
  uint64_t lines = 0;      ///< Complete request lines decoded.
  uint64_t oversized = 0;  ///< Lines over max_line_bytes (answered with ERR).
  uint64_t responses = 0;  ///< Response lines queued for write.
  uint64_t backpressure_pauses = 0;
  uint64_t dropped_responses = 0;  ///< Completions for already-closed conns.
};

/// Non-blocking TCP/unix-socket front-end speaking the line protocol: one
/// request line in, one response line out, pipelining allowed. A single
/// epoll thread owns every connection; request execution happens on the
/// router's shard batchers (pool threads), and completions come back through
/// an eventfd-signalled queue.
///
/// Ordering guarantee: responses are written in request order per
/// connection. Shards complete out of order, so each connection assigns a
/// sequence number per request and holds completed responses in a reorder
/// buffer until their turn. Oversized lines consume a sequence slot (their
/// ERR is a local completion), which keeps the stream aligned for pipelined
/// clients.
///
/// Partial-I/O safety: reads feed an incremental LineDecoder (verbs split
/// across reads reassemble); writes go through a WriteQueue surviving
/// partial writes/EAGAIN with MSG_NOSIGNAL. Abrupt disconnects mid-response
/// close the connection; late completions are dropped and counted.
class NetServer {
 public:
  /// `router` must outlive the server.
  NetServer(ShardRouter* router, NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and starts the event-loop thread.
  Status Start();

  /// Stops the loop, closes every connection and the listener (unlinking a
  /// unix socket path). Idempotent.
  void Stop();

  /// Resolved address after Start() — "tcp:127.0.0.1:<port>" with the real
  /// port when 0 was requested, or "unix:<path>".
  const std::string& endpoint() const { return endpoint_; }

  NetServerCounters counters() const;

 private:
  struct Conn;
  struct CompletionQueue;

  void Loop();
  void HandleAccept();
  void HandleReadable(Conn* conn);
  void HandleWritable(Conn* conn);
  void DrainCompletions();
  /// Submits one decoded line (or an oversized-line error) for `conn`.
  void SubmitLine(Conn* conn, std::string line, bool oversized);
  /// Moves any in-order responses from the reorder buffer to the write
  /// queue, flushes, and closes a drained half-closed connection. Returns
  /// false when the connection was closed (the pointer is then dead).
  bool PumpResponses(Conn* conn);
  void UpdateReadInterest(Conn* conn);
  /// Re-arms the connection's epoll interest from its paused/read_closed/
  /// want_write flags.
  void SetEpoll(Conn* conn);
  void CloseConn(uint64_t id);

  ShardRouter* router_;
  NetServerOptions options_;
  std::string endpoint_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  /// Path to unlink on Stop() (unix listeners only).
  std::string unlink_path_;

  std::shared_ptr<CompletionQueue> completions_;
  std::map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = wakeup eventfd.

  std::thread loop_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> lines_{0};
  std::atomic<uint64_t> oversized_{0};
  std::atomic<uint64_t> responses_{0};
  std::atomic<uint64_t> backpressure_pauses_{0};
  std::atomic<uint64_t> dropped_responses_{0};
};

}  // namespace semdrift

#endif  // SEMDRIFT_NET_SERVER_H_
