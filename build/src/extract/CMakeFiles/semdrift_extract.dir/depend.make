# Empty dependencies file for semdrift_extract.
# This may be replaced when dependencies are built.
