#include <gtest/gtest.h>

#include <cmath>

#include "ml/manifold.h"
#include "ml/multitask.h"
#include "util/rng.h"

namespace semdrift {
namespace {

/// A linearly separable 2-class task in r dimensions: class = sign of the
/// first coordinate.
LearningTask MakeSeparableTask(size_t m, size_t r, Rng* rng) {
  LearningTask task;
  task.xl = Matrix(m, r);
  task.y = Matrix(m, 2);
  for (size_t i = 0; i < m; ++i) {
    double sign = i % 2 == 0 ? 1.0 : -1.0;
    task.xl(i, 0) = sign * (1.0 + 0.1 * rng->NextDouble());
    for (size_t j = 1; j < r; ++j) task.xl(i, j) = 0.05 * rng->NextGaussian();
    task.y(i, sign > 0 ? 0 : 1) = 1.0;
  }
  return task;
}

TEST(RidgeTest, FitsSeparableTask) {
  Rng rng(3);
  LearningTask task = MakeSeparableTask(40, 3, &rng);
  MultiTaskOptions options;
  Matrix w = TrainRidge(task, options);
  ASSERT_EQ(w.rows(), 3u);
  ASSERT_EQ(w.cols(), 2u);
  int correct = 0;
  for (size_t i = 0; i < task.xl.rows(); ++i) {
    std::vector<double> x(3);
    for (size_t j = 0; j < 3; ++j) x[j] = task.xl(i, j);
    int predicted = PredictClass(w, x);
    int actual = task.y(i, 0) > 0.5 ? 0 : 1;
    correct += predicted == actual;
  }
  EXPECT_EQ(correct, 40);
}

TEST(RidgeTest, MatchesManualNormalEquations) {
  // Tiny task solved by hand: one feature, two samples.
  LearningTask task;
  task.xl = Matrix(2, 1);
  task.xl(0, 0) = 1.0;
  task.xl(1, 0) = 2.0;
  task.y = Matrix(2, 1);
  task.y(0, 0) = 1.0;
  task.y(1, 0) = 2.0;
  MultiTaskOptions options;
  options.lambda = 1.0;
  options.beta = 1.0;
  Matrix w = TrainRidge(task, options);
  // w = (X^T X + 1)^{-1} X^T y = (5 + 1)^{-1} * 5 = 5/6.
  EXPECT_NEAR(w(0, 0), 5.0 / 6.0, 1e-12);
}

TEST(SemiSupervisedTest, ReducesToRidgeWithZeroRegularizer) {
  Rng rng(5);
  LearningTask task = MakeSeparableTask(30, 4, &rng);
  Matrix zero(4, 4);
  MultiTaskOptions options;
  Matrix w_semi = TrainSemiSupervised(task, zero, options);
  Matrix w_ridge = TrainRidge(task, options);
  EXPECT_LT(w_semi.MaxAbsDiff(w_ridge), 1e-10);
}

TEST(SemiSupervisedTest, ManifoldShrinksAlongPenalizedDirection) {
  Rng rng(7);
  LearningTask task = MakeSeparableTask(30, 2, &rng);
  // Penalize the informative dimension 0 heavily.
  Matrix a(2, 2);
  a(0, 0) = 100.0;
  MultiTaskOptions options;
  options.lambda = 1.0;
  Matrix w_plain = TrainSemiSupervised(task, Matrix(2, 2), options);
  Matrix w_penalized = TrainSemiSupervised(task, a, options);
  EXPECT_LT(std::abs(w_penalized(0, 0)), std::abs(w_plain(0, 0)));
}

TEST(MultiTaskTest, ObjectiveMonotoneNonIncreasing) {
  // Theorem 1: the Eq. 18 objective decreases monotonically.
  Rng rng(11);
  std::vector<LearningTask> tasks;
  for (int t = 0; t < 4; ++t) tasks.push_back(MakeSeparableTask(24, 5, &rng));
  Matrix x_pool(40, 5);
  for (size_t i = 0; i < 40; ++i)
    for (size_t j = 0; j < 5; ++j) x_pool(i, j) = rng.NextGaussian();
  ManifoldOptions manifold_options;
  manifold_options.k = 4;
  Matrix a = BuildManifoldRegularizer(x_pool, manifold_options);
  MultiTaskOptions options;
  options.max_iterations = 25;
  MultiTaskResult result = TrainMultiTask(tasks, a, options);
  ASSERT_GE(result.objective_trace.size(), 2u);
  for (size_t i = 1; i < result.objective_trace.size(); ++i) {
    EXPECT_LE(result.objective_trace[i], result.objective_trace[i - 1] + 1e-9)
        << "iteration " << i;
  }
}

TEST(MultiTaskTest, ConvergesAndClassifies) {
  Rng rng(13);
  std::vector<LearningTask> tasks;
  for (int t = 0; t < 3; ++t) tasks.push_back(MakeSeparableTask(30, 4, &rng));
  Matrix a(4, 4);  // No manifold: isolate the l2,1 structure.
  MultiTaskOptions options;
  MultiTaskResult result = TrainMultiTask(tasks, a, options);
  ASSERT_EQ(result.w.size(), 3u);
  for (size_t t = 0; t < tasks.size(); ++t) {
    int correct = 0;
    for (size_t i = 0; i < tasks[t].xl.rows(); ++i) {
      std::vector<double> x(4);
      for (size_t j = 0; j < 4; ++j) x[j] = tasks[t].xl(i, j);
      int predicted = PredictClass(result.w[t], x);
      int actual = tasks[t].y(i, 0) > 0.5 ? 0 : 1;
      correct += predicted == actual;
    }
    EXPECT_GT(correct, 27) << "task " << t;
  }
}

TEST(MultiTaskTest, StrongerL21ShrinksSharedColumnNorms) {
  // Increasing the l2,1 weight must shrink the joint column-norm total
  // (the shared-structure sparsity the paper's Eq. 18 encodes).
  Rng rng(17);
  std::vector<LearningTask> tasks;
  for (int t = 0; t < 5; ++t) tasks.push_back(MakeSeparableTask(20, 3, &rng));
  Matrix a(3, 3);
  auto l21_total = [](const std::vector<Matrix>& w) {
    double total = 0.0;
    size_t r = w[0].rows();
    for (size_t i = 0; i < r; ++i) {
      double norm_sq = 0.0;
      for (const Matrix& wc : w) {
        for (size_t o = 0; o < wc.cols(); ++o) norm_sq += wc(i, o) * wc(i, o);
      }
      total += std::sqrt(norm_sq);
    }
    return total;
  };
  MultiTaskOptions weak;
  weak.beta = 0.01;
  MultiTaskOptions strong;
  strong.beta = 10.0;
  double weak_norm = l21_total(TrainMultiTask(tasks, a, weak).w);
  double strong_norm = l21_total(TrainMultiTask(tasks, a, strong).w);
  EXPECT_LT(strong_norm, weak_norm);
}

TEST(MultiTaskTest, ObjectiveValueMatchesHelper) {
  Rng rng(19);
  std::vector<LearningTask> tasks{MakeSeparableTask(10, 2, &rng)};
  Matrix a(2, 2);
  MultiTaskOptions options;
  options.max_iterations = 5;
  MultiTaskResult result = TrainMultiTask(tasks, a, options);
  double recomputed = MultiTaskObjective(tasks, a, result.w, options);
  EXPECT_NEAR(recomputed, result.objective_trace.back(), 1e-9);
}

TEST(PredictClassTest, PicksArgmaxColumn) {
  Matrix w(2, 3);
  w(0, 0) = 1.0;   // Class 0 score = x0.
  w(1, 1) = 1.0;   // Class 1 score = x1.
  w(0, 2) = -1.0;  // Class 2 score = -x0.
  EXPECT_EQ(PredictClass(w, {2.0, 1.0}), 0);
  EXPECT_EQ(PredictClass(w, {0.5, 3.0}), 1);
  EXPECT_EQ(PredictClass(w, {-5.0, -4.0}), 2);
}

}  // namespace
}  // namespace semdrift
