file(REMOVE_RECURSE
  "CMakeFiles/semdrift_extract.dir/extractor.cc.o"
  "CMakeFiles/semdrift_extract.dir/extractor.cc.o.d"
  "CMakeFiles/semdrift_extract.dir/hearst_parser.cc.o"
  "CMakeFiles/semdrift_extract.dir/hearst_parser.cc.o.d"
  "libsemdrift_extract.a"
  "libsemdrift_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semdrift_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
