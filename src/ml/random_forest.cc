#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "util/thread_pool.h"
#include "util/timer.h"

namespace semdrift {

namespace {

double GiniFromCounts(const std::vector<int>& counts, int total) {
  if (total == 0) return 0.0;
  double impurity = 1.0;
  for (int c : counts) {
    double p = static_cast<double>(c) / total;
    impurity -= p * p;
  }
  return impurity;
}

double GiniU32(const uint32_t* counts, int num_classes, uint32_t total) {
  if (total == 0) return 0.0;
  double impurity = 1.0;
  for (int c = 0; c < num_classes; ++c) {
    double p = static_cast<double>(counts[c]) / total;
    impurity -= p * p;
  }
  return impurity;
}

int ResolveFeaturesPerSplit(const RandomForestOptions& options, size_t d) {
  return options.features_per_split > 0
             ? options.features_per_split
             : static_cast<int>(std::ceil(std::sqrt(static_cast<double>(d))));
}

}  // namespace

void DecisionTree::Fit(const std::vector<std::vector<double>>& x,
                       const std::vector<int>& y, const std::vector<size_t>& indices,
                       int num_classes, const RandomForestOptions& options, Rng* rng) {
  nodes_.clear();
  stats_ = GrowthStats{};
  std::vector<size_t> working = indices;
  const size_t d = x.empty() ? 0 : x[0].size();
  const int features_per_split = ResolveFeaturesPerSplit(options, d);

  // Explicit preorder worklist (right child pushed first so the left pops
  // first): node ids and the per-node RNG draws land in exactly the order
  // the old recursive Grow produced, without an unbounded call stack on
  // pathological max_depth / adversarial data.
  struct Frame {
    size_t begin, end;
    int depth;
    int32_t parent;  // -1 for the root.
    bool is_left;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{0, working.size(), 0, -1, false});
  std::vector<std::pair<double, int>> column;  // (value, label) scratch.

  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    int32_t node_id = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back();
    if (frame.parent >= 0) {
      (frame.is_left ? nodes_[frame.parent].left : nodes_[frame.parent].right) =
          node_id;
    }

    std::vector<int> counts(num_classes, 0);
    for (size_t i = frame.begin; i < frame.end; ++i) ++counts[y[working[i]]];
    int total = static_cast<int>(frame.end - frame.begin);
    bool pure = std::count(counts.begin(), counts.end(), 0) >=
                static_cast<long>(counts.size()) - 1;

    if (pure || frame.depth >= options.max_depth ||
        total < 2 * options.min_samples_leaf) {
      nodes_[node_id].counts = std::move(counts);
      continue;
    }

    // Pick the best (feature, threshold) among a random feature subset.
    int best_feature = -1;
    double best_threshold = 0.0;
    double best_score = GiniFromCounts(counts, total) - 1e-12;
    std::vector<size_t> features(d);
    for (size_t f = 0; f < d; ++f) features[f] = f;
    rng->Shuffle(&features);
    features.resize(std::min<size_t>(features_per_split, d));

    for (size_t f : features) {
      column.clear();
      column.reserve(total);
      for (size_t i = frame.begin; i < frame.end; ++i) {
        column.emplace_back(x[working[i]][f], y[working[i]]);
      }
      std::sort(column.begin(), column.end());
      std::vector<int> left_counts(num_classes, 0);
      std::vector<int> right_counts = counts;
      for (int i = 0; i + 1 < total; ++i) {
        int label = column[i].second;
        ++left_counts[label];
        --right_counts[label];
        if (column[i].first == column[i + 1].first) continue;
        int left_total = i + 1;
        int right_total = total - left_total;
        if (left_total < options.min_samples_leaf ||
            right_total < options.min_samples_leaf) {
          continue;
        }
        double score =
            (left_total * GiniFromCounts(left_counts, left_total) +
             right_total * GiniFromCounts(right_counts, right_total)) /
            total;
        if (score < best_score) {
          best_score = score;
          best_feature = static_cast<int>(f);
          best_threshold = 0.5 * (column[i].first + column[i + 1].first);
        }
      }
    }

    if (best_feature < 0) {
      nodes_[node_id].counts = std::move(counts);
      continue;
    }

    // Partition [begin, end) in place.
    size_t mid = frame.begin;
    for (size_t i = frame.begin; i < frame.end; ++i) {
      if (x[working[i]][best_feature] <= best_threshold) {
        std::swap(working[i], working[mid]);
        ++mid;
      }
    }
    if (mid == frame.begin || mid == frame.end) {  // Numerical edge: no real split.
      nodes_[node_id].counts = std::move(counts);
      continue;
    }

    nodes_[node_id].feature = best_feature;
    nodes_[node_id].threshold = best_threshold;
    stack.push_back(Frame{mid, frame.end, frame.depth + 1, node_id, false});
    stack.push_back(Frame{frame.begin, mid, frame.depth + 1, node_id, true});
  }
  stats_.nodes = nodes_.size();
}

void DecisionTree::FitBinned(const BinnedMatrix& binned, const std::vector<int>& y,
                             std::vector<uint32_t> rows, int num_classes,
                             const RandomForestOptions& options,
                             uint64_t node_seed_base) {
  nodes_.clear();
  stats_ = GrowthStats{};
  const int C = num_classes;
  const size_t d = binned.num_features();
  const size_t hist_size = binned.total_bins() * static_cast<size_t>(C);
  const uint32_t min_leaf =
      static_cast<uint32_t>(std::max(1, options.min_samples_leaf));
  const int features_per_split = ResolveFeaturesPerSplit(options, d);

  nodes_.emplace_back();
  if (rows.empty()) {
    nodes_[0].counts.assign(C, 0);
    stats_.nodes = 1;
    return;
  }

  auto count_classes = [&](size_t begin, size_t end) {
    std::vector<uint32_t> counts(C, 0);
    for (size_t i = begin; i < end; ++i) ++counts[y[rows[i]]];
    return counts;
  };

  auto is_leaf_pre = [&](const std::vector<uint32_t>& counts, size_t total,
                         int depth) {
    int nonzero = 0;
    for (uint32_t c : counts) nonzero += c > 0 ? 1 : 0;
    return nonzero <= 1 || depth >= options.max_depth ||
           total < 2 * static_cast<size_t>(min_leaf);
  };

  // One linear pass over the node's rows per feature, accumulating per-bin
  // class counts into the [feature][bin][class] layout. Feature slices are
  // disjoint, so the root scan (which covers every bootstrap row) fans the
  // features out over the pool.
  auto scan_hist = [&](size_t begin, size_t end, uint32_t* hist,
                       bool parallel_features) {
    auto body = [&](size_t f) {
      const uint8_t* column = binned.Column(f);
      uint32_t* h = hist + binned.hist_offset(f) * C;
      for (size_t i = begin; i < end; ++i) {
        uint32_t r = rows[i];
        ++h[static_cast<size_t>(column[r]) * C + y[r]];
      }
    };
    if (parallel_features) {
      ParallelFor(d, body);
    } else {
      for (size_t f = 0; f < d; ++f) body(f);
    }
  };

  // What one node's split search produced. `hist` rides along on a split so
  // the children can derive one side by subtraction.
  struct Outcome {
    bool split = false;
    int feature = -1;
    int bin = -1;
    double threshold = 0.0;
    size_t mid = 0;
    std::vector<uint32_t> hist;
    std::vector<uint32_t> left_counts, right_counts;
  };

  // Histogram split search + in-place partition of the node's row range.
  // The feature subset comes from an RNG stream keyed by the node id, which
  // is assigned deterministically (breadth-first, left before right) — so
  // concurrent frontier processing cannot perturb the grown tree.
  auto process_node = [&](int32_t node_id, size_t begin, size_t end,
                          const std::vector<uint32_t>& counts, int depth,
                          std::vector<uint32_t> hist, Outcome* out) {
    const size_t total = end - begin;
    if (hist.empty() || is_leaf_pre(counts, total, depth)) return;  // Leaf.

    Rng rng(TaskSeed(node_seed_base, static_cast<uint64_t>(node_id)));
    std::vector<size_t> features(d);
    for (size_t f = 0; f < d; ++f) features[f] = f;
    rng.Shuffle(&features);
    features.resize(std::min<size_t>(features_per_split, d));

    const double parent_impurity =
        GiniU32(counts.data(), C, static_cast<uint32_t>(total));
    double best_score = parent_impurity - 1e-12;
    int best_feature = -1;
    int best_bin = -1;
    std::vector<uint32_t> left(C);
    std::vector<uint32_t> right(C);
    for (size_t f : features) {
      const int nb = binned.num_bins(f);
      if (nb < 2) continue;  // Constant feature: nothing to split.
      const uint32_t* h = hist.data() + binned.hist_offset(f) * C;
      std::fill(left.begin(), left.end(), 0u);
      uint32_t left_total = 0;
      for (int b = 0; b + 1 < nb; ++b) {
        for (int c = 0; c < C; ++c) {
          left[c] += h[static_cast<size_t>(b) * C + c];
          left_total += h[static_cast<size_t>(b) * C + c];
        }
        const uint32_t right_total = static_cast<uint32_t>(total) - left_total;
        if (left_total < min_leaf || right_total < min_leaf) continue;
        for (int c = 0; c < C; ++c) right[c] = counts[c] - left[c];
        double score = (left_total * GiniU32(left.data(), C, left_total) +
                        right_total * GiniU32(right.data(), C, right_total)) /
                       total;
        if (score < best_score) {
          best_score = score;
          best_feature = static_cast<int>(f);
          best_bin = b;
        }
      }
    }
    if (best_feature < 0) return;  // Leaf.

    out->left_counts.assign(C, 0);
    const uint32_t* h = hist.data() + binned.hist_offset(best_feature) * C;
    for (int b = 0; b <= best_bin; ++b) {
      for (int c = 0; c < C; ++c) {
        out->left_counts[c] += h[static_cast<size_t>(b) * C + c];
      }
    }
    out->right_counts.resize(C);
    for (int c = 0; c < C; ++c) out->right_counts[c] = counts[c] - out->left_counts[c];

    const uint8_t* column = binned.Column(best_feature);
    size_t mid = begin;
    for (size_t i = begin; i < end; ++i) {
      if (column[rows[i]] <= best_bin) {
        std::swap(rows[i], rows[mid]);
        ++mid;
      }
    }
    if (mid == begin || mid == end) return;  // Leaf (unreachable: min_leaf >= 1).

    out->split = true;
    out->feature = best_feature;
    out->bin = best_bin;
    out->threshold = binned.Threshold(best_feature, best_bin);
    out->mid = mid;
    out->hist = std::move(hist);
  };

  struct ChildRef {
    int32_t node = -1;
    size_t begin = 0, end = 0;
    std::vector<uint32_t> counts;
    int depth = 0;
  };
  struct PairTask {
    std::vector<uint32_t> parent_hist;
    ChildRef child[2];
  };
  struct PairResult {
    Outcome out[2];
    uint64_t scans = 0, subtractions = 0;
  };

  // Writes the node decided by `out` and, on a split, allocates the two
  // child ids (left before right — the deterministic numbering the per-node
  // RNG streams key off) and enqueues their shared pair task.
  auto apply_outcome = [&](int32_t node_id, size_t begin, size_t end,
                           const std::vector<uint32_t>& counts, int depth,
                           Outcome& out, std::vector<PairTask>* next) {
    if (!out.split) {
      nodes_[node_id].counts.assign(counts.begin(), counts.end());
      return;
    }
    int32_t left_id = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back();
    int32_t right_id = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_[node_id].feature = out.feature;
    nodes_[node_id].threshold = out.threshold;
    nodes_[node_id].left = left_id;
    nodes_[node_id].right = right_id;
    PairTask task;
    task.parent_hist = std::move(out.hist);
    task.child[0] =
        ChildRef{left_id, begin, out.mid, std::move(out.left_counts), depth + 1};
    task.child[1] =
        ChildRef{right_id, out.mid, end, std::move(out.right_counts), depth + 1};
    next->push_back(std::move(task));
  };

  // Root: one full scan (feature-parallel), then the frontier loop.
  std::vector<PairTask> frontier;
  {
    std::vector<uint32_t> root_counts = count_classes(0, rows.size());
    std::vector<uint32_t> hist;
    if (!is_leaf_pre(root_counts, rows.size(), 0)) {
      hist.assign(hist_size, 0);
      scan_hist(0, rows.size(), hist.data(), /*parallel_features=*/true);
      ++stats_.histogram_builds;
    }
    Outcome root_out;
    process_node(0, 0, rows.size(), root_counts, 0, std::move(hist), &root_out);
    apply_outcome(0, 0, rows.size(), root_counts, 0, root_out, &frontier);
  }

  while (!frontier.empty()) {
    std::vector<PairResult> results(frontier.size());
    const bool lone_pair = frontier.size() == 1;
    // Each pair owns a disjoint slice of `rows` and writes only its own
    // result slot — an ordered reduction, so frontier-level parallelism
    // cannot change the tree.
    auto process_pair = [&](size_t i) {
      PairTask& task = frontier[i];
      PairResult& res = results[i];
      bool need[2];
      for (int s = 0; s < 2; ++s) {
        const ChildRef& ch = task.child[s];
        need[s] = !is_leaf_pre(ch.counts, ch.end - ch.begin, ch.depth);
      }
      std::vector<uint32_t> hist[2];
      if (need[0] || need[1]) {
        const int small = task.child[0].end - task.child[0].begin <=
                                  task.child[1].end - task.child[1].begin
                              ? 0
                              : 1;
        const int large = 1 - small;
        const size_t small_rows = task.child[small].end - task.child[small].begin;
        const size_t large_rows = task.child[large].end - task.child[large].begin;
        // The subtraction trick: scan only the smaller child and derive the
        // larger as parent - sibling. When just the larger child needs a
        // histogram, fall back to a direct scan if that is cheaper than a
        // small-scan + full-histogram subtraction.
        if (need[small] || small_rows * d + hist_size < large_rows * d) {
          hist[small].assign(hist_size, 0);
          scan_hist(task.child[small].begin, task.child[small].end,
                    hist[small].data(), lone_pair);
          ++res.scans;
          if (need[large]) {
            hist[large] = std::move(task.parent_hist);
            const uint32_t* sub = hist[small].data();
            uint32_t* h = hist[large].data();
            for (size_t k = 0; k < hist_size; ++k) h[k] -= sub[k];
            ++res.subtractions;
          }
          if (!need[small]) hist[small].clear();
        } else {
          hist[large].assign(hist_size, 0);
          scan_hist(task.child[large].begin, task.child[large].end,
                    hist[large].data(), lone_pair);
          ++res.scans;
        }
      }
      for (int s = 0; s < 2; ++s) {
        const ChildRef& ch = task.child[s];
        process_node(ch.node, ch.begin, ch.end, ch.counts, ch.depth,
                     std::move(hist[s]), &res.out[s]);
      }
    };
    if (lone_pair) {
      process_pair(0);
    } else {
      ParallelFor(frontier.size(), process_pair);
    }

    std::vector<PairTask> next;
    for (size_t i = 0; i < frontier.size(); ++i) {
      stats_.histogram_builds += results[i].scans;
      stats_.histogram_subtractions += results[i].subtractions;
      for (int s = 0; s < 2; ++s) {
        ChildRef& ch = frontier[i].child[s];
        apply_outcome(ch.node, ch.begin, ch.end, ch.counts, ch.depth,
                      results[i].out[s], &next);
      }
    }
    frontier = std::move(next);
  }
  stats_.nodes = nodes_.size();
}

const std::vector<int>& DecisionTree::Leaf(const std::vector<double>& point) const {
  int32_t node = 0;
  for (;;) {
    const Node& n = nodes_[node];
    if (n.feature < 0) return n.counts;
    node = point[n.feature] <= n.threshold ? n.left : n.right;
  }
}

Status RandomForest::Fit(const std::vector<std::vector<double>>& x,
                         const std::vector<int>& y, int num_classes,
                         const RandomForestOptions& options) {
  trees_.clear();
  num_classes_ = 0;
  fit_stats_ = FitStats{};
  if (x.empty()) {
    return Status::InvalidArgument("random forest: empty training set");
  }
  if (y.size() != x.size()) {
    return Status::InvalidArgument(
        "random forest: " + std::to_string(x.size()) + " rows but " +
        std::to_string(y.size()) + " labels");
  }
  const size_t d = x[0].size();
  if (d == 0) {
    return Status::InvalidArgument("random forest: zero-width feature vectors");
  }
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i].size() != d) {
      return Status::InvalidArgument(
          "random forest: ragged row " + std::to_string(i) + " has " +
          std::to_string(x[i].size()) + " features, expected " +
          std::to_string(d));
    }
  }
  if (num_classes < 1) {
    return Status::InvalidArgument("random forest: num_classes " +
                                   std::to_string(num_classes) + " < 1");
  }
  for (size_t i = 0; i < y.size(); ++i) {
    if (y[i] < 0 || y[i] >= num_classes) {
      return Status::InvalidArgument(
          "random forest: label " + std::to_string(y[i]) + " at row " +
          std::to_string(i) + " outside [0, " + std::to_string(num_classes) + ")");
    }
  }
  if (options.num_trees < 1) {
    return Status::InvalidArgument("random forest: num_trees " +
                                   std::to_string(options.num_trees) + " < 1");
  }

  num_classes_ = num_classes;
  std::vector<std::vector<size_t>> by_class(num_classes);
  std::vector<int> present;
  if (options.balance_classes) {
    for (size_t i = 0; i < y.size(); ++i) by_class[y[i]].push_back(i);
    for (int k = 0; k < num_classes; ++k) {
      if (!by_class[k].empty()) present.push_back(k);
    }
  }
  // Each tree draws its bootstrap and grows from its own seeded RNG stream
  // (TaskSeed(seed, t)), so trees are independent and the trained forest is
  // bit-identical whether trees are grown serially or across the pool.
  auto draw_row = [&](Rng* rng) -> size_t {
    if (options.balance_classes) {
      // Equal-probability class draw, then a uniform member of that class.
      const auto& rows = by_class[present[rng->NextBounded(present.size())]];
      return rows[rng->NextBounded(rows.size())];
    }
    return static_cast<size_t>(rng->NextBounded(x.size()));
  };

  if (options.exact_splits) {
    trees_.assign(options.num_trees, DecisionTree());
    ParallelFor(trees_.size(), [&](size_t t) {
      Rng rng(TaskSeed(options.seed, t));
      std::vector<size_t> bootstrap(x.size());
      for (size_t i = 0; i < x.size(); ++i) bootstrap[i] = draw_row(&rng);
      trees_[t].Fit(x, y, bootstrap, num_classes, options, &rng);
    });
  } else {
    Timer binning;
    Result<BinnedMatrix> binned = BinnedMatrix::Build(x, options.max_bins);
    if (!binned.ok()) return binned.status();
    fit_stats_.binning_ms = binning.ElapsedMillis();
    const BinnedMatrix& bm = *binned;
    trees_.assign(options.num_trees, DecisionTree());
    ParallelFor(trees_.size(), [&](size_t t) {
      Rng rng(TaskSeed(options.seed, t));
      std::vector<uint32_t> bootstrap(x.size());
      for (size_t i = 0; i < x.size(); ++i) {
        bootstrap[i] = static_cast<uint32_t>(draw_row(&rng));
      }
      // A fresh stream for the per-node feature subsets, decoupled from the
      // bootstrap draws above.
      uint64_t node_seed_base = rng.Next();
      trees_[t].FitBinned(bm, y, std::move(bootstrap), num_classes, options,
                          node_seed_base);
    });
  }

  // Deterministic reduction: per-tree counters summed in tree order.
  for (const DecisionTree& tree : trees_) {
    fit_stats_.nodes += tree.stats().nodes;
    fit_stats_.histogram_builds += tree.stats().histogram_builds;
    fit_stats_.histogram_subtractions += tree.stats().histogram_subtractions;
  }
  return Status::OK();
}

std::vector<double> RandomForest::PredictProba(const std::vector<double>& point) const {
  std::vector<double> proba(num_classes_, 0.0);
  for (const auto& tree : trees_) {
    const std::vector<int>& counts = tree.Leaf(point);
    int total = 0;
    for (int c : counts) total += c;
    if (total == 0) continue;
    for (int k = 0; k < num_classes_; ++k) {
      proba[k] += static_cast<double>(counts[k]) / total;
    }
  }
  double norm = 0.0;
  for (double p : proba) norm += p;
  if (norm > 0.0) {
    for (double& p : proba) p /= norm;
  }
  return proba;
}

int RandomForest::Predict(const std::vector<double>& point) const {
  std::vector<double> proba = PredictProba(point);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) -
                          proba.begin());
}

}  // namespace semdrift
