#include "baselines/cleaners.h"

#include <algorithm>
#include <unordered_set>

namespace semdrift {

std::vector<IsAPair> MutualExclusionClean(const KnowledgeBase& kb,
                                          const MutexIndex& mutex,
                                          const std::vector<ConceptId>& scope) {
  std::unordered_set<uint32_t> in_scope;
  for (ConceptId c : scope) in_scope.insert(c.value);

  std::unordered_set<IsAPair, IsAPairHash> removed;
  std::unordered_set<InstanceId> visited;
  for (ConceptId c : scope) {
    for (InstanceId e : kb.LiveInstancesOf(c)) {
      if (!visited.insert(e).second) continue;
      const auto& holders = mutex.ConceptsContaining(e);
      if (holders.size() < 2) continue;
      for (size_t i = 0; i < holders.size(); ++i) {
        for (size_t j = i + 1; j < holders.size(); ++j) {
          if (!mutex.IsMutex(holders[i], holders[j])) continue;
          // Report the weaker side of the conflict as the error — but only
          // when the asymmetry is clear-cut; a near-tie is the ambiguity
          // the heuristic explicitly tolerates ("unless the instances are
          // ambiguous", [5]), and removing either side is a coin flip.
          IsAPair a{holders[i], e};
          IsAPair b{holders[j], e};
          int count_a = kb.Count(a);
          int count_b = kb.Count(b);
          IsAPair weaker = count_a <= count_b ? a : b;
          int weak_count = std::min(count_a, count_b);
          int strong_count = std::max(count_a, count_b);
          if (weak_count * 3 > strong_count) continue;  // Ambiguous conflict.
          if (in_scope.count(weaker.concept_id.value) > 0) removed.insert(weaker);
        }
      }
    }
  }
  return std::vector<IsAPair>(removed.begin(), removed.end());
}

TypeOracle::TypeOracle(const World* world, Options options)
    : world_(world), options_(options) {
  Rng rng(options_.seed);
  // Concepts map to groups uniformly at random (a coarse ontology of
  // person/place/organization/... types).
  concept_group_.resize(world_->num_concepts());
  for (size_t ci = 0; ci < concept_group_.size(); ++ci) {
    concept_group_[ci] = static_cast<int>(rng.NextBounded(options_.num_groups));
  }
  // Twins share a group (they genuinely are the same kind of thing).
  for (size_t ci = 0; ci < concept_group_.size(); ++ci) {
    ConceptId twin = world_->SimilarTwin(ConceptId(static_cast<uint32_t>(ci)));
    if (twin.valid() && twin.value < ci) concept_group_[ci] = concept_group_[twin.value];
  }
  for (size_t ei = 0; ei < world_->num_instances(); ++ei) {
    InstanceId e(static_cast<uint32_t>(ei));
    if (!rng.NextBool(options_.coverage)) continue;
    const auto& concepts = world_->ConceptsOf(e);
    if (concepts.empty()) continue;
    int truth = concept_group_[concepts.front().value];
    int reported = rng.NextBool(options_.accuracy)
                       ? truth
                       : static_cast<int>(rng.NextBounded(options_.num_groups));
    instance_type_.emplace(e, reported);
  }
}

int TypeOracle::GroupOf(ConceptId c) const { return concept_group_[c.value]; }

int TypeOracle::TypeOf(InstanceId e) const {
  auto it = instance_type_.find(e);
  return it == instance_type_.end() ? -1 : it->second;
}

std::vector<IsAPair> TypeCheckClean(const KnowledgeBase& kb, const TypeOracle& oracle,
                                    const std::vector<ConceptId>& scope) {
  std::vector<IsAPair> removed;
  for (ConceptId c : scope) {
    int expected = oracle.GroupOf(c);
    for (InstanceId e : kb.LiveInstancesOf(c)) {
      int type = oracle.TypeOf(e);
      if (type >= 0 && type != expected) removed.push_back(IsAPair{c, e});
    }
  }
  return removed;
}

std::unordered_map<IsAPair, double, IsAPairHash> PrDualRankScores(
    const KnowledgeBase& kb, const std::vector<ConceptId>& scope,
    const PrDualRankOptions& options) {
  // Collect live pairs and live records in scope; build the bipartite
  // adjacency (record -> produced pairs).
  std::unordered_map<IsAPair, double, IsAPairHash> pair_score;
  std::vector<const ExtractionRecord*> records;
  for (ConceptId c : scope) {
    for (InstanceId e : kb.LiveInstancesOf(c)) {
      IsAPair pair{c, e};
      pair_score[pair] =
          kb.Iter1Count(pair) >= options.seed_support ? 1.0 : 0.0;
    }
    kb.ForEachLiveRecordOfConcept(
        c, [&](const ExtractionRecord& record) { records.push_back(&record); });
  }

  std::vector<double> record_score(records.size(), 0.0);
  for (int iter = 0; iter < options.iterations; ++iter) {
    // Record ("pattern") precision = mean precision of its tuples.
    for (size_t ri = 0; ri < records.size(); ++ri) {
      const ExtractionRecord& record = *records[ri];
      double total = 0.0;
      int n = 0;
      for (InstanceId e : record.instances) {
        auto it = pair_score.find(IsAPair{record.concept_id, e});
        if (it == pair_score.end()) continue;
        total += it->second;
        ++n;
      }
      record_score[ri] = n > 0 ? total / n : 0.0;
    }
    // Tuple precision = mean precision of the records producing it — except
    // seeds, which stay pinned at 1 (they are known-correct anchors).
    std::unordered_map<IsAPair, std::pair<double, int>, IsAPairHash> accumulator;
    for (size_t ri = 0; ri < records.size(); ++ri) {
      const ExtractionRecord& record = *records[ri];
      for (InstanceId e : record.instances) {
        IsAPair pair{record.concept_id, e};
        if (pair_score.find(pair) == pair_score.end()) continue;
        auto& acc = accumulator[pair];
        acc.first += record_score[ri];
        acc.second += 1;
      }
    }
    for (auto& [pair, score] : pair_score) {
      if (kb.Iter1Count(pair) >= options.seed_support) continue;  // Pinned seed.
      auto it = accumulator.find(pair);
      score = it != accumulator.end() && it->second.second > 0
                  ? it->second.first / it->second.second
                  : 0.0;
    }
  }
  return pair_score;
}

std::unordered_map<IsAPair, double, IsAPairHash> RwRankScores(
    const KnowledgeBase& kb, const std::vector<ConceptId>& scope, RankModel model) {
  std::unordered_map<IsAPair, double, IsAPairHash> out;
  for (ConceptId c : scope) {
    auto scores = ScoreConcept(kb, c, model);
    double n = static_cast<double>(scores.size());
    for (const auto& [e, score] : scores) {
      // Rescale so 1.0 is the uniform level within the concept.
      out[IsAPair{c, e}] = score * n;
    }
  }
  return out;
}

std::vector<IsAPair> ThresholdClean(
    const std::unordered_map<IsAPair, double, IsAPairHash>& scores,
    double threshold) {
  std::vector<IsAPair> removed;
  for (const auto& [pair, score] : scores) {
    if (score < threshold) removed.push_back(pair);
  }
  return removed;
}

}  // namespace semdrift
