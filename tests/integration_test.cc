#include <gtest/gtest.h>

#include <unordered_set>

#include "baselines/cleaners.h"
#include "baselines/threshold.h"
#include "dp/cleaner.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "extract/hearst_parser.h"

namespace semdrift {
namespace {

/// Full-pipeline invariants on one small shared experiment.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentConfig config = PaperScaleConfig(0.08);
    config.corpus.render_text = true;
    experiment_ = Experiment::Build(config).release();
  }
  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
  }

  static Experiment* experiment_;
};

Experiment* PipelineTest::experiment_ = nullptr;

TEST_F(PipelineTest, DriftLowersPrecisionAcrossIterations) {
  std::vector<double> precision_by_iteration;
  std::vector<ConceptId> scope = experiment_->EvalConcepts();
  KnowledgeBase kb = experiment_->Extract(
      nullptr, [&](const IterationStats&, const KnowledgeBase& snapshot) {
        precision_by_iteration.push_back(
            LivePairPrecision(experiment_->truth(), snapshot, scope));
      });
  ASSERT_GE(precision_by_iteration.size(), 2u);
  EXPECT_GT(precision_by_iteration.front(), 0.85);  // Clean core.
  EXPECT_LT(precision_by_iteration.back(),
            precision_by_iteration.front() - 0.1);  // Visible drift.
}

TEST_F(PipelineTest, PairCountGrowsAcrossIterations) {
  std::vector<IterationStats> stats;
  KnowledgeBase kb = experiment_->Extract(&stats);
  ASSERT_GE(stats.size(), 2u);
  EXPECT_GT(stats[1].distinct_pairs, stats[0].distinct_pairs);
}

TEST_F(PipelineTest, ExtractionConsumesMostSentences) {
  KnowledgeBase kb = experiment_->Extract();
  // Records (one per consumed sentence) cover most of the corpus.
  EXPECT_GT(kb.num_records(), experiment_->corpus().sentences.size() * 7 / 10);
}

TEST_F(PipelineTest, RenderedCorpusRoundTripsThroughParser) {
  const World& world = experiment_->world();
  HearstParser parser(&world.concept_vocab(), world.instance_vocab());
  size_t mismatches = 0;
  size_t checked = 0;
  for (const auto& sentence : experiment_->corpus().sentences.sentences()) {
    if (sentence.text.empty()) continue;
    const auto& truth = experiment_->corpus().TruthOf(sentence.id);
    if (truth.kind == SentenceKind::kMisparse) continue;  // Text differs by design.
    auto parsed = parser.Parse(sentence.text);
    if (!parsed.has_value() ||
        parsed->candidate_concepts != sentence.candidate_concepts ||
        parsed->candidate_instances != sentence.candidate_instances) {
      ++mismatches;
    }
    if (++checked >= 2000) break;
  }
  EXPECT_EQ(mismatches, 0u);
}

TEST_F(PipelineTest, DpCleaningBeatsThresholdBaselinesOnF1) {
  std::vector<ConceptId> scope = experiment_->EvalConcepts();

  // DP cleaning.
  KnowledgeBase kb = experiment_->Extract();
  std::vector<IsAPair> population = LivePairsOf(kb, scope);
  CleanerOptions options;
  options.max_rounds = 3;
  DpCleaner cleaner(&experiment_->corpus().sentences,
                    experiment_->MakeVerifiedSource(),
                    experiment_->world().num_concepts(), options);
  cleaner.Clean(&kb, scope);
  std::unordered_set<IsAPair, IsAPairHash> dp_removed;
  for (const IsAPair& pair : population) {
    if (!kb.Contains(pair)) dp_removed.insert(pair);
  }
  CleaningMetrics dp =
      EvaluateCleaning(experiment_->truth(), population, dp_removed);
  double dp_f1 = dp.perror + dp.rerror > 0
                     ? 2 * dp.perror * dp.rerror / (dp.perror + dp.rerror)
                     : 0;

  // RW-Rank with its best (ground-truth-learned) threshold.
  KnowledgeBase kb2 = experiment_->Extract();
  auto scores = RwRankScores(kb2, scope);
  std::vector<std::pair<double, bool>> scored;
  for (const auto& [pair, score] : scores) {
    scored.emplace_back(score, !experiment_->truth().PairCorrect(pair));
  }
  double threshold = LearnRemovalThreshold(scored);
  auto rw_removed_list = ThresholdClean(scores, threshold);
  std::unordered_set<IsAPair, IsAPairHash> rw_removed(rw_removed_list.begin(),
                                                      rw_removed_list.end());
  CleaningMetrics rw = EvaluateCleaning(experiment_->truth(),
                                        LivePairsOf(kb2, scope), rw_removed);
  double rw_f1 = rw.perror + rw.rerror > 0
                     ? 2 * rw.perror * rw.rerror / (rw.perror + rw.rerror)
                     : 0;

  EXPECT_GT(dp_f1, rw_f1);
}

TEST_F(PipelineTest, MutualExclusionBaselineIsPreciseButLowRecall) {
  KnowledgeBase kb = experiment_->Extract();
  std::vector<ConceptId> scope = experiment_->EvalConcepts();
  std::vector<IsAPair> population = LivePairsOf(kb, scope);
  MutexIndex mutex(kb, experiment_->world().num_concepts());
  auto removed_list = MutualExclusionClean(kb, mutex, scope);
  std::unordered_set<IsAPair, IsAPairHash> removed(removed_list.begin(),
                                                   removed_list.end());
  CleaningMetrics m = EvaluateCleaning(experiment_->truth(), population, removed);
  EXPECT_GT(m.perror, 0.35);  // More precise than chance...
  EXPECT_LT(m.rerror, 0.6);   // ...but limited recall (the paper's story).
}

TEST_F(PipelineTest, GroundTruthDpCountsAreProportionedLikeThePaper) {
  KnowledgeBase kb = experiment_->Extract();
  size_t intentional = 0;
  size_t accidental = 0;
  size_t non_dp = 0;
  size_t errors = 0;
  for (ConceptId c : experiment_->EvalConcepts()) {
    auto stats = experiment_->truth().StatsOf(kb, c);
    intentional += stats.intentional_dps;
    accidental += stats.accidental_dps;
    non_dp += stats.non_dps;
    errors += stats.errors;
  }
  // The paper's Table 1: DPs are a small minority of instances, errors are
  // plentiful, and non-DPs dominate.
  EXPECT_GT(intentional, 0u);
  EXPECT_GT(accidental, 0u);
  EXPECT_GT(errors, intentional + accidental);
  EXPECT_GT(non_dp, intentional + accidental);
}

TEST_F(PipelineTest, SeedLabelsAreHighPrecisionAgainstGroundTruth) {
  KnowledgeBase kb = experiment_->Extract();
  MutexIndex mutex(kb, experiment_->world().num_concepts());
  SeedLabeler seeds(&kb, &mutex, experiment_->MakeVerifiedSource());
  size_t non_dp_seeds = 0;
  size_t non_dp_correct = 0;
  for (ConceptId c : experiment_->EvalConcepts()) {
    for (auto [e, label] : seeds.LabelConcept(c)) {
      if (label != DpClass::kNonDP) continue;
      ++non_dp_seeds;
      // A non-DP seed must at least be a correct pair.
      non_dp_correct += experiment_->truth().PairCorrect(IsAPair{c, e});
    }
  }
  ASSERT_GT(non_dp_seeds, 20u);
  EXPECT_GT(static_cast<double>(non_dp_correct) / non_dp_seeds, 0.9);
}

}  // namespace
}  // namespace semdrift
