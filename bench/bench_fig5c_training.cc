// Reproduces Fig. 5(c): detector quality across the iterations of
// Algorithm 1 (the alternating multi-task optimization). The paper plots
// accuracy stabilizing after ~20 iterations; we report both the Eq. 18
// objective (Theorem 1: monotonically non-increasing) and the 3-class
// accuracy of the intermediate detectors against ground truth.

#include <iostream>

#include "bench_common.h"
#include "dp/detector.h"
#include "eval/metrics.h"
#include "ml/manifold.h"
#include "util/table_writer.h"

using namespace semdrift;

int main() {
  auto experiment = bench::BuildBenchExperiment();
  KnowledgeBase kb = experiment->Extract();
  std::vector<ConceptId> scope = experiment->EvalConcepts();
  MutexIndex mutex(kb, experiment->world().num_concepts());
  ScoreCache scores(&kb, RankModel::kRandomWalk);
  FeatureExtractor features(&kb, &mutex, &scores);
  SeedLabeler seeds(&kb, &mutex, experiment->MakeVerifiedSource());
  TrainingData data = CollectTrainingData(kb, &features, seeds, scope);

  SeriesWriter series("Fig. 5(c): detector accuracy over training iterations");
  series.SetColumns({"training_iteration", "accuracy"});
  DetectorTrainOptions options;
  options.max_pool_samples = 300;  // Keep the 20 retrains quick.
  for (int iterations = 1; iterations <= 20; ++iterations) {
    DetectorTrainOptions step = options;
    step.multitask.max_iterations = iterations;
    step.multitask.tolerance = 0.0;  // Run exactly `iterations` updates.
    auto detector =
        TrainDetector(DetectorKind::kSemiSupervisedMultiTask, data, step);
    if (detector == nullptr) break;
    std::vector<DpClass> predicted;
    std::vector<DpClass> actual;
    for (const auto& concept_data : data) {
      for (size_t i = 0; i < concept_data.instances.size(); ++i) {
        DpClass truth = experiment->truth().DpLabelOf(
            kb, IsAPair{concept_data.concept_id, concept_data.instances[i]});
        if (truth == DpClass::kUnlabeled) continue;
        predicted.push_back(
            detector->Classify(concept_data.concept_id, concept_data.features[i]));
        actual.push_back(truth);
      }
    }
    series.AddPoint({static_cast<double>(iterations),
                     DetectionAccuracy(predicted, actual)});
  }
  series.Print(std::cout, 4);
  (void)series.WriteCsv("bench_fig5c.csv");
  return 0;
}
