// A raw-text information-extraction pipeline: render a synthetic web corpus
// to English-like surface sentences, re-parse every sentence with the
// Hearst-pattern parser (as a real IE system would), run iterative
// extraction on the parsed result, clean with Drifting-Point detection, and
// export the final taxonomy.
//
// This is the "adopt the library on your own text" path: replace
// RenderCorpus() with your own sentence stream and supply a concept lexicon.
//
// Run: ./build/examples/text_pipeline [output.tsv]

#include <cstdio>
#include <fstream>
#include <vector>

#include "corpus/generator.h"
#include "corpus/world.h"
#include "dp/cleaner.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "extract/extractor.h"
#include "extract/hearst_parser.h"
#include "util/timer.h"

using namespace semdrift;

int main(int argc, char** argv) {
  const char* output_path = argc > 1 ? argv[1] : "taxonomy.tsv";
  Timer timer;

  // 1. A corpus of raw text. (Stand-in for your crawl: we render the
  //    synthetic world to surface sentences and then *forget* the parse.)
  ExperimentConfig config = PaperScaleConfig(0.15);
  config.corpus.render_text = true;
  auto experiment = Experiment::Build(config);
  std::vector<std::string> raw_text;
  raw_text.reserve(experiment->corpus().sentences.size());
  for (const auto& sentence : experiment->corpus().sentences.sentences()) {
    raw_text.push_back(sentence.text);
  }
  std::printf("corpus: %zu raw sentences\n", raw_text.size());

  // 2. Parse with the Hearst-pattern parser. The concept lexicon is closed
  //    (the concepts you care about); instances are discovered openly.
  const World& world = experiment->world();
  HearstParser parser(&world.concept_vocab(), world.instance_vocab());
  SentenceStore parsed_corpus;
  size_t rejected = 0;
  for (const std::string& text : raw_text) {
    auto parsed = parser.Parse(text);
    if (parsed.has_value()) {
      parsed_corpus.Add(std::move(*parsed));
    } else {
      ++rejected;
    }
  }
  std::printf("parsed: %zu Hearst sentences (%zu rejected)\n",
              parsed_corpus.size(), rejected);

  // 3. Iterative semantic extraction.
  KnowledgeBase kb;
  IterativeExtractor extractor(&parsed_corpus, ExtractorOptions{});
  auto iterations = extractor.Run(&kb);
  std::printf("extraction: %zu iterations, %zu distinct pairs\n",
              iterations.size(), kb.num_live_pairs());

  // 4. DP-based cleaning over every concept. Verified knowledge comes from
  //    whatever trusted source you have; here, the world's verified subset.
  CleanerOptions options;
  DpCleaner cleaner(&parsed_corpus, experiment->MakeVerifiedSource(),
                    world.num_concepts(), options);
  CleaningReport report = cleaner.Clean(&kb, experiment->AllConcepts());
  std::printf("cleaning: %d rounds, %zu DPs flagged, %zu -> %zu pairs\n",
              report.rounds,
              report.intentional_dps.size() + report.accidental_dps.size(),
              report.live_pairs_before, report.live_pairs_after);
  std::printf("precision (vs ground truth): %.3f\n",
              LivePairPrecision(experiment->truth(), kb, experiment->AllConcepts()));

  // 5. Export the cleaned taxonomy as TSV: concept, instance, support.
  std::ofstream out(output_path);
  size_t exported = 0;
  for (ConceptId c : experiment->AllConcepts()) {
    for (InstanceId e : kb.LiveInstancesOf(c)) {
      out << world.ConceptName(c) << '\t' << world.InstanceName(e) << '\t'
          << kb.Count(IsAPair{c, e}) << '\n';
      ++exported;
    }
  }
  std::printf("exported %zu isA pairs to %s in %.1fs total\n", exported,
              output_path, timer.ElapsedSeconds());
  return 0;
}
