
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5b_threshold_k.cc" "bench/CMakeFiles/bench_fig5b_threshold_k.dir/bench_fig5b_threshold_k.cc.o" "gcc" "bench/CMakeFiles/bench_fig5b_threshold_k.dir/bench_fig5b_threshold_k.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/semdrift_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/semdrift_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/semdrift_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/semdrift_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/semdrift_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/rank/CMakeFiles/semdrift_rank.dir/DependInfo.cmake"
  "/root/repo/build/src/mutex/CMakeFiles/semdrift_mutex.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/semdrift_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/semdrift_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/semdrift_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/semdrift_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
