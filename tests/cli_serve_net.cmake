# CTest script: network serving end-to-end. Starts `serve --listen` on a
# unix socket with 4 shards and mmap snapshot loading, then fires 8
# concurrent `query --connect` clients whose answers must be byte-identical
# to one-shot `query --snapshot` answers over the same file. Also checks
# that the merged stats view reports the shard count and that the server
# shuts down cleanly on SIGTERM (unlinking its socket).
file(MAKE_DIRECTORY ${WORK_DIR})
find_program(SH sh REQUIRED)

execute_process(
  COMMAND ${CLI} generate --scale 0.05 --seed 23
          --world ${WORK_DIR}/w.tsv --corpus ${WORK_DIR}/c.tsv
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed (${rc}): ${out} ${err}")
endif()

execute_process(
  COMMAND ${CLI} run --world ${WORK_DIR}/w.tsv --corpus ${WORK_DIR}/c.tsv
          --out ${WORK_DIR}/t.tsv --snapshot-out ${WORK_DIR}/s.bin
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run failed (${rc}): ${out} ${err}")
endif()

# A live (concept, instance) pair so clients exercise OK answers.
file(STRINGS ${WORK_DIR}/t.tsv taxonomy_lines LIMIT_COUNT 2)
list(GET taxonomy_lines 1 first_pair)
string(REPLACE "\t" ";" first_pair_fields "${first_pair}")
list(GET first_pair_fields 0 concept_name)
list(GET first_pair_fields 1 instance_name)

set(queries
  "instances-of\t${concept_name}\t5"
  "concepts-of\t${instance_name}"
  "is-a\t${instance_name}\t${concept_name}"
  "drift-score\t${instance_name}\t${concept_name}"
  "mutex\t${concept_name}\tasian country"
  "instances-of\tno such concept"
)

# One-shot expected answers (the NOT_FOUND probe exits non-zero; the
# printed answer is still the contract).
set(expected "")
foreach(q IN LISTS queries)
  string(REPLACE "\t" ";" argv "${q}")
  execute_process(
    COMMAND ${CLI} query --snapshot ${WORK_DIR}/s.bin ${argv}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  string(APPEND expected "${out}")
endforeach()

# Start the server in the background on a unix socket.
set(SOCK ${WORK_DIR}/serve.sock)
file(REMOVE ${SOCK})
execute_process(
  COMMAND ${SH} -c "'${CLI}' serve --snapshot '${WORK_DIR}/s.bin' --mmap --listen 'unix:${SOCK}' --shards 4 > '${WORK_DIR}/server.log' 2>&1 & echo $!"
  RESULT_VARIABLE rc OUTPUT_VARIABLE server_pid)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "failed to launch server (${rc})")
endif()
string(STRIP "${server_pid}" server_pid)

# Wait for the listening socket to appear.
set(ready FALSE)
foreach(attempt RANGE 100)
  if(EXISTS ${SOCK})
    set(ready TRUE)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT ready)
  file(READ ${WORK_DIR}/server.log server_log)
  message(FATAL_ERROR "server never created ${SOCK}: ${server_log}")
endif()

# 8 concurrent clients, each running the full query list against the
# socket; every client's transcript must match the one-shot answers.
set(spawn "")
foreach(client RANGE 1 8)
  set(script "rm -f '${WORK_DIR}/client${client}.txt'\n")
  foreach(q IN LISTS queries)
    string(REPLACE "\t" "' '" shell_args "${q}")
    string(APPEND script
      "'${CLI}' query --connect 'unix:${SOCK}' '${shell_args}' >> '${WORK_DIR}/client${client}.txt'\n")
  endforeach()
  file(WRITE ${WORK_DIR}/client${client}.sh "${script}")
  string(APPEND spawn "${SH} '${WORK_DIR}/client${client}.sh' & ")
endforeach()
string(APPEND spawn "wait")
execute_process(
  COMMAND ${SH} -c "${spawn}"
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "concurrent clients failed (${rc}): ${err}")
endif()
foreach(client RANGE 1 8)
  file(READ ${WORK_DIR}/client${client}.txt got)
  if(NOT got STREQUAL expected)
    message(FATAL_ERROR "client ${client} answers differ from one-shot answers.\n"
            "got:\n${got}\nexpected:\n${expected}")
  endif()
endforeach()

# Merged stats across shards: every request counted once, shard count shown.
execute_process(
  COMMAND ${CLI} query --connect unix:${SOCK} stats
  RESULT_VARIABLE rc OUTPUT_VARIABLE stats_out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "stats over the socket failed (${rc}): ${stats_out}")
endif()
if(NOT stats_out MATCHES "shards=4")
  message(FATAL_ERROR "merged stats missing shard count: ${stats_out}")
endif()
# 8 clients x 1 bounded instances-of each = at least 8 recorded calls.
if(NOT stats_out MATCHES "is-a=count:8")
  message(FATAL_ERROR "merged stats lost or double-counted is-a calls: ${stats_out}")
endif()

# Exit-code contract holds over the wire too.
execute_process(
  COMMAND ${CLI} query --connect unix:${SOCK} instances-of "no such concept"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR "query --connect exit code for NOT_FOUND should be 3, got ${rc}")
endif()

# Graceful shutdown: SIGTERM stops the server and unlinks the socket.
execute_process(COMMAND ${SH} -c "kill -TERM ${server_pid}")
set(stopped FALSE)
foreach(attempt RANGE 100)
  execute_process(COMMAND ${SH} -c "kill -0 ${server_pid} 2>/dev/null"
                  RESULT_VARIABLE alive)
  if(NOT alive EQUAL 0)
    set(stopped TRUE)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT stopped)
  execute_process(COMMAND ${SH} -c "kill -KILL ${server_pid}")
  message(FATAL_ERROR "server did not exit on SIGTERM")
endif()
if(EXISTS ${SOCK})
  message(FATAL_ERROR "server left its unix socket behind after SIGTERM")
endif()
