#ifndef SEMDRIFT_CORPUS_WORLD_H_
#define SEMDRIFT_CORPUS_WORLD_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "text/ids.h"
#include "text/vocab.h"
#include "util/rng.h"
#include "util/status.h"

namespace semdrift {

/// Ground-truth ontology behind the synthetic web corpus. It plays the role
/// of "reality" that the paper's 1.6-billion-page crawl reflects: concepts
/// with Zipf-popular member instances, *polysemous* instances that belong to
/// two topically-related but mutually exclusive concepts (the raw material of
/// Intentional DPs), *highly-similar twin* concepts that legitimately share
/// most members ("nation"/"country"), and per-concept *confusable* concept
/// sets modelling topical co-occurrence (the concepts a sentence about C is
/// likely to also mention — the raw material of ambiguous attachments).
///
/// The world also designates a subset of true memberships as *verified*
/// (standing in for Wikipedia-style evidence in Sec. 3.2.2).
class World {
 public:
  /// Incremental constructor; used directly by the hand-crafted example
  /// worlds and by GenerateWorld() for synthetic ones.
  class Builder;

  World(const World&) = delete;
  World& operator=(const World&) = delete;
  World(World&&) = default;
  World& operator=(World&&) = default;

  // -- Size & naming --------------------------------------------------------

  size_t num_concepts() const { return concepts_.size(); }
  size_t num_instances() const { return instance_concepts_.size(); }

  const std::string& ConceptName(ConceptId c) const {
    return concept_vocab_.TermOf(c.value);
  }
  const std::string& InstanceName(InstanceId e) const {
    return instance_vocab_.TermOf(e.value);
  }

  /// Id lookup by name; invalid id when absent.
  ConceptId FindConcept(std::string_view name) const;
  InstanceId FindInstance(std::string_view name) const;

  /// Read access to the underlying vocabularies (the Hearst parser seeds its
  /// open-class instance lexicon from a copy of the instance vocabulary so
  /// its ids align with world ids).
  const Vocab& concept_vocab() const { return concept_vocab_; }
  const Vocab& instance_vocab() const { return instance_vocab_; }

  // -- Ground truth ---------------------------------------------------------

  /// True iff "e isA c" holds in reality.
  bool IsTrueMember(ConceptId c, InstanceId e) const {
    return membership_.count(IsAPair{c, e}) > 0;
  }

  /// True members of `c`, most popular first.
  const std::vector<InstanceId>& Members(ConceptId c) const {
    return concepts_[c.value].members;
  }

  /// Unnormalized popularity weight of the i-th member (parallel to
  /// Members(); Zipf-decreasing for generated worlds).
  const std::vector<double>& MemberWeights(ConceptId c) const {
    return concepts_[c.value].member_weights;
  }

  /// All concepts `e` truly belongs to. Size >= 2 means `e` is polysemous.
  const std::vector<ConceptId>& ConceptsOf(InstanceId e) const {
    return instance_concepts_[e.value];
  }

  /// Topically confusable concepts of `c` (candidates for ambiguous
  /// co-mention and for accidental wrong facts).
  const std::vector<ConceptId>& Confusables(ConceptId c) const {
    return concepts_[c.value].confusables;
  }

  /// The highly-similar twin of `c` (invalid id when none).
  ConceptId SimilarTwin(ConceptId c) const { return concepts_[c.value].twin; }

  /// Whether the pair is in the simulated verified source (Sec. 3.2.2).
  bool IsVerified(ConceptId c, InstanceId e) const {
    return verified_.count(IsAPair{c, e}) > 0;
  }

  /// A polysemous instance: a popular member of `home` that also (more
  /// obscurely) belongs to `guest` — chicken with home "animal" and guest
  /// "food" would be the paper's running example. These are the raw
  /// material of Intentional DPs: a sentence about `guest` mentioning the
  /// polyseme drifts its list into `home`.
  struct Polyseme {
    InstanceId instance;
    ConceptId home;
    ConceptId guest;
  };

  const std::vector<Polyseme>& polysemes() const { return polysemes_; }

  /// Polysemes whose guest concept is `c` (sentences about `c` can mention
  /// them and drift toward their home concept).
  const std::vector<Polyseme>& PolysemesIntoGuest(ConceptId c) const;

  /// Ground-truth mutual exclusion: two concepts are truly mutually
  /// exclusive when they are distinct, not twins, and share no true member.
  bool TrulyMutex(ConceptId a, ConceptId b) const;

 private:
  friend class Builder;
  World() = default;

  struct ConceptInfo {
    std::vector<InstanceId> members;
    std::vector<double> member_weights;
    std::vector<ConceptId> confusables;
    ConceptId twin;
  };

  Vocab concept_vocab_;
  Vocab instance_vocab_;
  std::vector<ConceptInfo> concepts_;
  std::vector<std::vector<ConceptId>> instance_concepts_;
  std::unordered_set<IsAPair, IsAPairHash> membership_;
  std::unordered_set<IsAPair, IsAPairHash> verified_;
  std::vector<Polyseme> polysemes_;
  std::vector<std::vector<Polyseme>> polysemes_by_guest_;
};

class World::Builder {
 public:
  Builder() : world_(new World()) {}

  /// Adds (or finds) a concept by name.
  ConceptId AddConcept(std::string_view name);

  /// Adds (or finds) an instance by name. Instances are global: the same
  /// instance id may be a member of several concepts (polysemy).
  InstanceId AddInstance(std::string_view name);

  /// Declares "e isA c" with a popularity weight (relative frequency of the
  /// pair being mentioned in text). Duplicate declarations are ignored.
  void AddMembership(ConceptId c, InstanceId e, double weight = 1.0);

  /// Marks an existing membership as present in the verified source.
  void MarkVerified(ConceptId c, InstanceId e);

  /// Declares `other` as topically confusable with `c` (one direction).
  void AddConfusable(ConceptId c, ConceptId other);

  /// Declares `a` and `b` as highly-similar twins (both directions).
  void SetSimilarTwins(ConceptId a, ConceptId b);

  /// Records a polyseme (the membership of `instance` in both concepts must
  /// already exist or be added separately).
  void AddPolyseme(InstanceId instance, ConceptId home, ConceptId guest);

  /// Finalizes the world. The builder is left empty.
  World Build();

 private:
  std::unique_ptr<World> world_;
};

/// Parameters of a generated world. Defaults give a mid-sized universe that
/// drifts visibly within ten extraction iterations.
struct WorldSpec {
  /// Total number of concepts, including the named evaluation concepts.
  int num_concepts = 200;
  /// Per-concept member count is log-uniform in [min, max].
  int min_instances = 30;
  int max_instances = 400;
  /// Zipf exponent of member popularity within a concept.
  double popularity_zipf = 1.3;
  /// Fraction of instances that additionally join one confusable concept
  /// (polysemes; the Intentional-DP raw material).
  double polysemy_rate = 0.3;
  /// Fraction of concepts that get a highly-similar twin sharing most
  /// members ("nations"/"countries").
  double similar_twin_rate = 0.05;
  /// Fraction of memberships shared by a twin pair.
  double twin_overlap = 0.8;
  /// Confusable-set size range per concept.
  int min_confusables = 2;
  int max_confusables = 5;
  /// Fraction of true memberships present in the verified source.
  double verified_fraction = 0.25;
  /// Fraction of generated instance names that are morphological variants
  /// (pluralized forms) of an earlier instance's name instead of fresh
  /// pseudo-words. "bakon" and "bakons" become *distinct* instances whose
  /// surface forms differ only in number — hostile to vocabulary lookup,
  /// similarity scoring and serialization round-trips.
  double morph_variant_rate = 0.0;
  /// Concept names to assign to the first concepts (e.g. the paper's 20
  /// evaluation concepts); the remainder get generated pseudo-word names.
  std::vector<std::string> named_concepts;
};

/// The paper's 20 manually-evaluated concepts (Table 1), usable as
/// WorldSpec::named_concepts.
std::vector<std::string> PaperEvaluationConcepts();

/// Rejects degenerate specs (zero concepts, inverted instance ranges,
/// out-of-range probabilities, duplicate named concepts) with a
/// kInvalidArgument naming the offending field. The scenario grammar hits
/// these corners constantly; GenerateWorld on an invalid spec is UB.
Status ValidateWorldSpec(const WorldSpec& spec);

/// Builds a random world from the spec. Deterministic in (*rng) state.
/// Precondition: ValidateWorldSpec(spec).ok().
World GenerateWorld(const WorldSpec& spec, Rng* rng);

/// Validating wrapper: ValidateWorldSpec then GenerateWorld.
Result<World> GenerateWorldChecked(const WorldSpec& spec, Rng* rng);

}  // namespace semdrift

#endif  // SEMDRIFT_CORPUS_WORLD_H_
