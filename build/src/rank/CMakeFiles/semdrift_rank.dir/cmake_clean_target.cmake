file(REMOVE_RECURSE
  "libsemdrift_rank.a"
)
