file(REMOVE_RECURSE
  "libsemdrift_dp.a"
)
