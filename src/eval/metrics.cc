#include "eval/metrics.h"

#include <algorithm>

namespace semdrift {

Prf Prf::FromCounts(size_t true_positives, size_t predicted_positives,
                    size_t actual_positives) {
  Prf out;
  out.precision_defined = predicted_positives > 0;
  out.precision = out.precision_defined
                      ? static_cast<double>(true_positives) / predicted_positives
                      : 0.0;
  out.recall_defined = actual_positives > 0;
  out.recall = out.recall_defined
                   ? static_cast<double>(true_positives) / actual_positives
                   : 0.0;
  out.f1 = (out.precision + out.recall) > 0.0
               ? 2.0 * out.precision * out.recall / (out.precision + out.recall)
               : 0.0;
  return out;
}

CleaningMetrics EvaluateCleaning(
    const GroundTruth& truth, const std::vector<IsAPair>& population,
    const std::unordered_set<IsAPair, IsAPairHash>& removed) {
  CleaningMetrics m;
  size_t removed_errors = 0;
  size_t remaining_correct = 0;
  for (const IsAPair& pair : population) {
    bool correct = truth.PairCorrect(pair);
    bool was_removed = removed.count(pair) > 0;
    if (correct) {
      ++m.total_correct;
    } else {
      ++m.total_errors;
    }
    if (was_removed) {
      ++m.removed;
      if (!correct) ++removed_errors;
    } else {
      ++m.remaining;
      if (correct) ++remaining_correct;
    }
  }
  m.perror_defined = m.removed > 0;
  m.perror = m.perror_defined ? static_cast<double>(removed_errors) / m.removed : 0.0;
  m.rerror_defined = m.total_errors > 0;
  m.rerror =
      m.rerror_defined ? static_cast<double>(removed_errors) / m.total_errors : 0.0;
  m.pcorr_defined = m.remaining > 0;
  m.pcorr =
      m.pcorr_defined ? static_cast<double>(remaining_correct) / m.remaining : 0.0;
  m.rcorr_defined = m.total_correct > 0;
  m.rcorr = m.rcorr_defined
                ? static_cast<double>(remaining_correct) / m.total_correct
                : 0.0;
  return m;
}

std::vector<IsAPair> LivePairsOf(const KnowledgeBase& kb,
                                 const std::vector<ConceptId>& scope) {
  std::vector<IsAPair> out;
  for (ConceptId c : scope) {
    for (InstanceId e : kb.LiveInstancesOf(c)) out.push_back(IsAPair{c, e});
  }
  return out;
}

double LivePairPrecision(const GroundTruth& truth, const KnowledgeBase& kb,
                         const std::vector<ConceptId>& scope) {
  return LivePairPrecisionSample(truth, kb, scope).value;
}

PrecisionSample LivePairPrecisionSample(const GroundTruth& truth,
                                        const KnowledgeBase& kb,
                                        const std::vector<ConceptId>& scope) {
  size_t total = 0;
  size_t correct = 0;
  for (ConceptId c : scope) {
    for (InstanceId e : kb.LiveInstancesOf(c)) {
      ++total;
      if (truth.PairCorrect(IsAPair{c, e})) ++correct;
    }
  }
  PrecisionSample out;
  out.pairs = total;
  out.defined = total > 0;
  out.value = out.defined ? static_cast<double>(correct) / total : 0.0;
  return out;
}

Prf DetectionPrf(const std::vector<DpClass>& predicted,
                 const std::vector<DpClass>& actual) {
  size_t tp = 0;
  size_t predicted_positive = 0;
  size_t actual_positive = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    bool pred_dp = predicted[i] == DpClass::kIntentionalDP ||
                   predicted[i] == DpClass::kAccidentalDP;
    bool true_dp =
        actual[i] == DpClass::kIntentionalDP || actual[i] == DpClass::kAccidentalDP;
    predicted_positive += pred_dp ? 1 : 0;
    actual_positive += true_dp ? 1 : 0;
    tp += (pred_dp && true_dp) ? 1 : 0;
  }
  return Prf::FromCounts(tp, predicted_positive, actual_positive);
}

double DetectionAccuracy(const std::vector<DpClass>& predicted,
                         const std::vector<DpClass>& actual) {
  if (predicted.empty()) return 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == actual[i]) ++hits;
  }
  return static_cast<double>(hits) / predicted.size();
}

double PrecisionAtK(const GroundTruth& truth, ConceptId c,
                    const std::vector<InstanceId>& ranked, size_t k) {
  size_t limit = std::min(k, ranked.size());
  if (limit == 0) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < limit; ++i) {
    if (truth.PairCorrect(IsAPair{c, ranked[i]})) ++correct;
  }
  return static_cast<double>(correct) / limit;
}

}  // namespace semdrift
