#include "ml/kernel.h"

#include <cmath>

namespace semdrift {

double KernelValue(KernelType type, double gamma, const double* x, const double* y,
                   size_t d) {
  switch (type) {
    case KernelType::kLinear: {
      double dot = 0.0;
      for (size_t i = 0; i < d; ++i) dot += x[i] * y[i];
      return dot;
    }
    case KernelType::kRbf: {
      double dist_sq = 0.0;
      for (size_t i = 0; i < d; ++i) {
        double diff = x[i] - y[i];
        dist_sq += diff * diff;
      }
      return std::exp(-gamma * dist_sq);
    }
  }
  return 0.0;
}

Matrix KernelMatrix(KernelType type, double gamma, const Matrix& x) {
  size_t n = x.rows();
  Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double v = KernelValue(type, gamma, x.Row(i), x.Row(j), x.cols());
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

void KernelVector(KernelType type, double gamma, const Matrix& x, const double* q,
                  std::vector<double>* out) {
  out->resize(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    (*out)[i] = KernelValue(type, gamma, x.Row(i), q, x.cols());
  }
}

}  // namespace semdrift
