#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "corpus/generator.h"
#include "corpus/world.h"
#include "dp/cleaner.h"
#include "extract/extractor.h"
#include "kb/knowledge_base.h"
#include "serve/snapshot.h"
#include "stream/stream.h"
#include "text/sentence.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace semdrift {
namespace {

/// The streaming contract under test: a StreamPipeline fed the corpus in
/// epoch slices must end byte-identical to one batch run over the whole
/// corpus — same extraction records, same snapshot image — regardless of how
/// the slices are cut and how many worker threads execute the rounds.
/// Incremental epochs are allowed to drift in between (bounded, scoped
/// re-detection); the final rebuild epoch retires all of it.

struct Schedule {
  const char* name;
  /// Cumulative corpus fractions per epoch boundary; last entry must be 1.0.
  std::vector<double> cuts;
};

std::vector<Schedule> Schedules() {
  return {
      {"even-4", {0.25, 0.5, 0.75, 1.0}},
      {"skewed-6", {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}},
      {"many-10", {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}},
  };
}

/// Small worlds keep the cross product (seeds × schedules × thread counts)
/// inside a test budget while still exercising polysemy, twins and
/// multi-round cleaning.
World MakeWorld(uint64_t seed) {
  WorldSpec spec;
  spec.num_concepts = 10 + static_cast<int>(seed % 6);
  spec.min_instances = 6;
  spec.max_instances = 18;
  Rng rng(0xd1f ^ (seed * 0x9e3779b97f4a7c15ULL));
  return GenerateWorld(spec, &rng);
}

std::vector<Sentence> MakeSentences(const World& world, uint64_t seed) {
  CorpusSpec spec;
  spec.num_sentences = 220 + static_cast<int>(seed % 5) * 40;
  spec.render_text = false;
  Rng rng(0xc0 ^ (seed * 0x2545f4914f6cdd1dULL));
  Corpus corpus = GenerateCorpus(world, spec, &rng);
  std::vector<Sentence> out;
  out.reserve(corpus.sentences.size());
  for (const Sentence& s : corpus.sentences.sentences()) out.push_back(s);
  return out;
}

ExtractorOptions TestExtractorOptions() {
  ExtractorOptions options;
  options.max_iterations = 5;
  return options;
}

CleanerOptions TestCleanerOptions() {
  CleanerOptions options;
  options.max_rounds = 2;
  return options;
}

std::vector<ConceptId> AllConcepts(const World& world) {
  std::vector<ConceptId> scope;
  scope.reserve(world.num_concepts());
  for (size_t c = 0; c < world.num_concepts(); ++c) {
    scope.push_back(ConceptId{static_cast<uint32_t>(c)});
  }
  return scope;
}

struct BatchResult {
  KnowledgeBase kb;
  std::string image;
};

/// One-shot reference: extract over the full corpus, clean every concept,
/// compile the snapshot — exactly what `semdrift run` does.
BatchResult RunBatch(const World& world, const std::vector<Sentence>& all) {
  SentenceStore store;
  for (const Sentence& s : all) store.Add(s);
  BatchResult result;
  IterativeExtractor extractor(&store, TestExtractorOptions());
  extractor.Run(&result.kb);
  DpCleaner cleaner(
      &store,
      [&world](const IsAPair& pair) {
        return world.IsVerified(pair.concept_id, pair.instance);
      },
      world.num_concepts(), TestCleanerOptions());
  cleaner.Clean(&result.kb, AllConcepts(world));
  auto image = BuildSnapshotImage(
      CompileSnapshotParts(result.kb, world, nullptr, SnapshotOptions{}));
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  if (image.ok()) result.image = std::move(*image);
  return result;
}

/// Splits `all` into epoch deltas at the schedule's cumulative cuts.
std::vector<std::vector<Sentence>> SplitEpochs(const std::vector<Sentence>& all,
                                               const std::vector<double>& cuts) {
  std::vector<std::vector<Sentence>> epochs;
  size_t begin = 0;
  for (double cut : cuts) {
    size_t end = cut >= 1.0 ? all.size()
                            : static_cast<size_t>(cut * static_cast<double>(
                                                            all.size()));
    epochs.emplace_back(all.begin() + static_cast<long>(begin),
                        all.begin() + static_cast<long>(end));
    begin = end;
  }
  return epochs;
}

void ExpectSameRecords(const KnowledgeBase& got, const KnowledgeBase& want) {
  ASSERT_EQ(got.num_records(), want.num_records());
  for (size_t i = 0; i < want.records().size(); ++i) {
    const ExtractionRecord& g = got.records()[i];
    const ExtractionRecord& w = want.records()[i];
    ASSERT_EQ(g.id, w.id) << "record " << i;
    ASSERT_EQ(g.sentence.value, w.sentence.value) << "record " << i;
    ASSERT_EQ(g.concept_id.value, w.concept_id.value) << "record " << i;
    ASSERT_EQ(g.iteration, w.iteration) << "record " << i;
    ASSERT_EQ(g.instances, w.instances) << "record " << i;
    ASSERT_EQ(g.triggers, w.triggers) << "record " << i;
    ASSERT_EQ(g.rolled_back, w.rolled_back) << "record " << i;
  }
}

/// Runs the stream over the schedule and checks its final state against the
/// batch reference.
void CheckStreamMatchesBatch(const World& world,
                             const std::vector<Sentence>& all,
                             const Schedule& schedule,
                             const BatchResult& batch) {
  StreamOptions options;
  options.extractor = TestExtractorOptions();
  options.cleaner = TestCleanerOptions();
  StreamPipeline stream(&world, options);
  std::vector<std::vector<Sentence>> epochs = SplitEpochs(all, schedule.cuts);
  for (size_t k = 0; k < epochs.size(); ++k) {
    Result<StreamEpochStats> stats =
        stream.RunEpoch(std::move(epochs[k]), k + 1 == epochs.size());
    ASSERT_TRUE(stats.ok()) << schedule.name << " epoch " << (k + 1) << ": "
                            << stats.status().ToString();
  }
  ExpectSameRecords(stream.kb(), batch.kb);
  auto image = stream.BuildImage();
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(*image, batch.image) << schedule.name << ": snapshot image bytes";
}

TEST(StreamDifferentialTest, FinalStateMatchesBatchAcrossSeedsAndSchedules) {
  SetGlobalThreadCount(1);
  for (uint64_t seed = 0; seed < 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    World world = MakeWorld(seed);
    std::vector<Sentence> all = MakeSentences(world, seed);
    BatchResult batch = RunBatch(world, all);
    EXPECT_GT(batch.kb.num_live_pairs(), 0u);
    for (const Schedule& schedule : Schedules()) {
      SCOPED_TRACE(schedule.name);
      CheckStreamMatchesBatch(world, all, schedule, batch);
    }
  }
}

/// The pipeline's determinism contract is per thread-count-independent
/// stage ordering: the same worlds and schedules must land on the same
/// bytes with 8 workers as with 1.
TEST(StreamDifferentialTest, FinalStateMatchesBatchAtEightThreads) {
  SetGlobalThreadCount(8);
  for (uint64_t seed = 0; seed < 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    World world = MakeWorld(seed);
    std::vector<Sentence> all = MakeSentences(world, seed);
    BatchResult batch = RunBatch(world, all);
    for (const Schedule& schedule : Schedules()) {
      SCOPED_TRACE(schedule.name);
      CheckStreamMatchesBatch(world, all, schedule, batch);
    }
  }
  SetGlobalThreadCount(1);
}

/// With full_rebuild_every=1 every epoch is a rebuild, so the stream must
/// track the batch pipeline at *every* prefix of the corpus, not just the
/// final epoch.
TEST(StreamDifferentialTest, EveryEpochMatchesBatchPrefixUnderFullRebuilds) {
  SetGlobalThreadCount(1);
  for (uint64_t seed = 0; seed < 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    World world = MakeWorld(seed);
    std::vector<Sentence> all = MakeSentences(world, seed);
    const Schedule schedule = Schedules()[0];  // even-4
    StreamOptions options;
    options.extractor = TestExtractorOptions();
    options.cleaner = TestCleanerOptions();
    options.full_rebuild_every = 1;
    StreamPipeline stream(&world, options);
    std::vector<std::vector<Sentence>> epochs = SplitEpochs(all, schedule.cuts);
    size_t prefix = 0;
    for (size_t k = 0; k < epochs.size(); ++k) {
      prefix += epochs[k].size();
      Result<StreamEpochStats> stats =
          stream.RunEpoch(std::move(epochs[k]), k + 1 == epochs.size());
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_TRUE(stats->full_rebuild);
      std::vector<Sentence> head(all.begin(),
                                 all.begin() + static_cast<long>(prefix));
      BatchResult batch = RunBatch(world, head);
      ExpectSameRecords(stream.kb(), batch.kb);
      auto image = stream.BuildImage();
      ASSERT_TRUE(image.ok());
      EXPECT_EQ(*image, batch.image) << "prefix " << prefix;
    }
  }
}

/// Incremental epochs must publish a monotonically growing generation and
/// keep the epoch-boundary invariants (scoped validate + replay) green even
/// when no epoch is a rebuild — the pure-incremental path the scenario
/// harness exercises for divergence measurement.
TEST(StreamDifferentialTest, PureIncrementalRunStaysValid) {
  SetGlobalThreadCount(1);
  World world = MakeWorld(3);
  std::vector<Sentence> all = MakeSentences(world, 3);
  StreamOptions options;
  options.extractor = TestExtractorOptions();
  options.cleaner = TestCleanerOptions();
  options.final_full_rebuild = false;
  StreamPipeline stream(&world, options);
  std::vector<std::vector<Sentence>> epochs =
      SplitEpochs(all, Schedules()[2].cuts);
  size_t ingested = 0;
  for (size_t k = 0; k < epochs.size(); ++k) {
    size_t count = epochs[k].size();
    Result<StreamEpochStats> stats =
        stream.RunEpoch(std::move(epochs[k]), k + 1 == epochs.size());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_FALSE(stats->full_rebuild);
    ingested += count;
    EXPECT_EQ(stream.stale_sentences(), ingested);
  }
  // Replay of the full provenance log plus the global invariant check still
  // hold on the (possibly batch-divergent) incremental state.
  Result<KnowledgeBase> replayed = KnowledgeBase::FromRecords(stream.kb().records());
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  Status valid = replayed->Validate(world.num_concepts(), all.size());
  EXPECT_TRUE(valid.ok()) << valid.ToString();
}

}  // namespace
}  // namespace semdrift
