#ifndef SEMDRIFT_SERVE_SNAPSHOT_MANAGER_H_
#define SEMDRIFT_SERVE_SNAPSHOT_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace semdrift {

/// One loaded, validated snapshot generation and the engine serving it.
/// Immutable after construction; lifetime is managed RCU-style through
/// shared_ptr — the manager flips its current pointer and in-flight batches
/// keep the old generation alive through their EnginePin until they finish.
struct ServingGeneration {
  uint64_t generation = 0;
  /// CRC32 of the full image bytes; the base binding the next delta must
  /// match.
  uint32_t image_crc32 = 0;
  /// The publish file this generation came from (diagnostics).
  std::string source;
  SnapshotReader reader;
  /// Engine over `reader`, created fresh per generation: a new generation
  /// gets an empty response cache (per-generation invalidation) while
  /// recording into the manager's shared ServeStats.
  std::unique_ptr<QueryEngine> engine;

  ServingGeneration(uint64_t gen, uint32_t crc, std::string src,
                    SnapshotReader&& r)
      : generation(gen), image_crc32(crc), source(std::move(src)),
        reader(std::move(r)) {}
};

struct SnapshotManagerOptions {
  /// The publish directory to watch. Producers publish either
  /// `snap-<gen>.bin` (full image, temp-and-rename) or `delta-<gen>.bin`
  /// (SnapshotDelta against generation gen-1). Corrupt publishes are renamed
  /// `<name>.quarantined` in place.
  std::string dir;
  /// Per-generation engine configuration. `shared_stats` and `generation`
  /// are overwritten by the manager.
  QueryEngineOptions engine;
  /// Serving counters shared across generations (survive swaps). When null
  /// the manager owns one internally.
  ServeStats* shared_stats = nullptr;
  /// Bounded retry-with-backoff for transient load failures (a publisher
  /// racing our read): attempts = 1 + load_retries.
  int load_retries = 2;
  /// Per-attempt deadline for one generation load.
  int load_deadline_ms = 30000;
  int backoff_base_ms = 1;
  int backoff_cap_ms = 50;
};

/// What one Poll() observed.
struct SnapshotPollResult {
  /// Generation serving after the poll (0 when none loaded yet).
  uint64_t generation = 0;
  /// Successful generation installs during this poll.
  int swaps = 0;
  /// Publishes that failed to load/validate (now quarantined on disk).
  int failed = 0;
  /// Failed publishes observed while a good generation was already serving —
  /// i.e. rollbacks to the last good generation.
  int rolled_back = 0;
  /// Chain deltas quarantined without a load attempt because the delta they
  /// build on was quarantined in the same poll: their base image can never
  /// exist, so leaving them on disk would wedge every later poll until a
  /// full image arrives.
  int orphaned = 0;
};

/// Watches a publish directory and hot-swaps snapshot generations under live
/// traffic.
///
/// Loading is entirely off the serve path: Poll() reads and materializes a
/// candidate generation, runs the deep structural Validate() (via
/// SnapshotReader::OpenFromBuffer), and only then flips the current
/// shared_ptr. Queries pin a generation per batch (Pin()), so a swap never
/// invalidates an engine mid-batch; the old generation is destroyed when the
/// last pin drops.
///
/// Failure containment: a truncated, bit-flipped or wrong-base publish is
/// detected before install (framing CRCs, delta checksum + base binding,
/// Validate()), the file is renamed `<name>.quarantined`, and serving
/// continues on the last good generation — the rollback is "do nothing",
/// which is the only rollback that cannot itself fail. Transient read races
/// (publisher mid-write) are retried with bounded seeded backoff through the
/// util/supervisor StageGuard machinery (stage "load"); a delta whose base
/// binding disagrees with the serving generation (its base was rolled back
/// or replaced) is permanent and fails fast without retries, and contiguous
/// successor deltas — now orphaned, since their base image can never exist —
/// are quarantined in the same poll so the watcher never stalls on a dead
/// chain.
///
/// Metrics: gauge `serve.generation`, counters `serve.swap.count`,
/// `serve.publish.failed`, `serve.publish.rolled_back`,
/// `serve.publish.orphaned`, histogram `serve.swap.ns` (per-swap
/// load-to-install latency).
class SnapshotManager {
 public:
  explicit SnapshotManager(SnapshotManagerOptions options);
  ~SnapshotManager();

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// First poll; fails (kNotFound) when no loadable generation exists yet.
  Status LoadInitial();

  /// Scans the publish directory once: installs the newest loadable full
  /// image if it is newer than the current generation, then applies the
  /// contiguous delta chain on top. Serialized (concurrent polls queue);
  /// loading happens outside the swap lock.
  SnapshotPollResult Poll();

  /// The serving generation (null before the first successful load).
  std::shared_ptr<const ServingGeneration> Current() const;

  /// Engine + keepalive for one batch; engine is null before the first load.
  EnginePin Pin() const;

  /// Currently served generation id (0 when none).
  uint64_t generation() const;

  /// Background watcher calling Poll() every `poll_interval_ms`.
  void StartWatching(int poll_interval_ms);
  void StopWatching();

  /// The stats every generation's engine records into.
  ServeStats* stats() { return stats_; }

 private:
  std::shared_ptr<ServingGeneration> LoadFull(const std::string& path,
                                              uint64_t gen, std::string* error);
  std::shared_ptr<ServingGeneration> LoadDelta(
      const std::string& path, const ServingGeneration& base, std::string* error);
  void Install(std::shared_ptr<ServingGeneration> next);
  void Quarantine(const std::string& path);

  SnapshotManagerOptions options_;
  ServeStats owned_stats_;
  ServeStats* stats_ = nullptr;

  /// Serializes Poll() bodies (directory scan + load, potentially slow).
  std::mutex poll_mu_;
  /// Guards current_ only (swap flip; Current() is a cheap locked copy).
  mutable std::mutex mu_;
  std::shared_ptr<ServingGeneration> current_;

  std::thread watcher_;
  std::mutex watch_mu_;
  std::condition_variable watch_cv_;
  bool stop_watching_ = false;
};

}  // namespace semdrift

#endif  // SEMDRIFT_SERVE_SNAPSHOT_MANAGER_H_
