#ifndef SEMDRIFT_ML_RANDOM_FOREST_H_
#define SEMDRIFT_ML_RANDOM_FOREST_H_

#include <cstdint>
#include <vector>

#include "ml/binned_matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace semdrift {

/// Random-forest options. The paper's Supervised baseline (Table 4) uses a
/// random forest "observed as a good classifier to our task".
struct RandomForestOptions {
  int num_trees = 100;
  int max_depth = 12;
  int min_samples_leaf = 2;
  /// Features examined per split; 0 selects ceil(sqrt(d)).
  int features_per_split = 0;
  /// Draw each bootstrap stratified-equally across classes. Without it a
  /// rare class (the paper's Intentional DPs are ~3% of seeds) is almost
  /// never predicted.
  bool balance_classes = true;
  /// Use the legacy exact-split trainer (per-node gather + sort + scan of
  /// raw doubles) instead of the histogram trainer. Orders of magnitude
  /// slower on large inputs; kept as the oracle for differential tests.
  bool exact_splits = false;
  /// Bins per feature for the histogram trainer, in [2, 256]. Smaller is
  /// faster but quantizes candidate thresholds more coarsely.
  int max_bins = 256;
  uint64_t seed = 42;
};

/// A CART-style decision tree (gini impurity, axis-aligned splits) grown on
/// a bootstrap sample with per-split feature subsampling. Two trainers grow
/// the same node representation:
///
///   Fit       — the exact trainer: per node, gather + sort each candidate
///               feature column and scan every distinct-value boundary.
///   FitBinned — the histogram trainer: per node, accumulate per-bin class
///               counts over a pre-binned feature-major matrix in one linear
///               pass and scan bin boundaries, deriving one child's
///               histogram from parent - sibling (the subtraction trick).
///
/// Both grow via an explicit frontier worklist — no recursion — so
/// pathological max_depth / adversarial data cannot overflow the stack.
/// Used through RandomForest but exposed for unit tests.
class DecisionTree {
 public:
  /// Per-tree growth counters, accumulated deterministically.
  struct GrowthStats {
    uint64_t nodes = 0;
    uint64_t histogram_builds = 0;        // Histograms filled by row scan.
    uint64_t histogram_subtractions = 0;  // Derived as parent - sibling.
  };

  /// Exact trainer: fits on rows `indices` of (x, y). `x` is row-major
  /// n x d. Draws from `rng` once per node in deterministic preorder.
  void Fit(const std::vector<std::vector<double>>& x, const std::vector<int>& y,
           const std::vector<size_t>& indices, int num_classes,
           const RandomForestOptions& options, Rng* rng);

  /// Histogram trainer: fits on rows `indices` (bootstrap row ids into
  /// `binned`/`y`, duplicates allowed, consumed as the in-place partition
  /// scratch). Nodes draw feature subsets from per-node RNG streams seeded
  /// by TaskSeed(node_seed_base, node_id), and frontier nodes at each depth
  /// fan out over the thread pool, so the grown tree is bit-identical at
  /// any thread count.
  void FitBinned(const BinnedMatrix& binned, const std::vector<int>& y,
                 std::vector<uint32_t> indices, int num_classes,
                 const RandomForestOptions& options, uint64_t node_seed_base);

  /// Class-count distribution at the leaf reached by `point`.
  const std::vector<int>& Leaf(const std::vector<double>& point) const;

  size_t num_nodes() const { return nodes_.size(); }
  const GrowthStats& stats() const { return stats_; }

 private:
  struct Node {
    int feature = -1;          // -1 for leaves.
    double threshold = 0.0;
    int32_t left = -1;
    int32_t right = -1;
    std::vector<int> counts;   // Populated for leaves.
  };

  std::vector<Node> nodes_;
  GrowthStats stats_;
};

/// Bagged ensemble of DecisionTrees with soft (probability-averaged) voting.
class RandomForest {
 public:
  /// Forest-level fit counters: per-tree GrowthStats summed in tree order.
  struct FitStats {
    uint64_t nodes = 0;
    uint64_t histogram_builds = 0;
    uint64_t histogram_subtractions = 0;
    double binning_ms = 0.0;  // Histogram trainer: one-time quantization.
  };

  /// Fits the ensemble. `y` holds class labels in [0, num_classes). Trees
  /// are grown in parallel on the global thread pool; each tree uses its own
  /// deterministic RNG stream derived from `options.seed`, so the fitted
  /// forest is bit-identical at any thread count. Fails with
  /// InvalidArgument (leaving the forest empty) on an empty training set,
  /// zero-width or ragged feature rows, labels outside [0, num_classes), or
  /// out-of-range options — the histogram trainer additionally rejects
  /// non-finite feature values.
  Status Fit(const std::vector<std::vector<double>>& x, const std::vector<int>& y,
             int num_classes, const RandomForestOptions& options);

  /// Class-probability estimate for a point.
  std::vector<double> PredictProba(const std::vector<double>& point) const;

  /// Argmax class.
  int Predict(const std::vector<double>& point) const;

  size_t num_trees() const { return trees_.size(); }
  int num_classes() const { return num_classes_; }
  const FitStats& fit_stats() const { return fit_stats_; }

 private:
  std::vector<DecisionTree> trees_;
  int num_classes_ = 0;
  FitStats fit_stats_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_ML_RANDOM_FOREST_H_
