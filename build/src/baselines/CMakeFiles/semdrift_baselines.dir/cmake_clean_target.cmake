file(REMOVE_RECURSE
  "libsemdrift_baselines.a"
)
