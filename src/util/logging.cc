#include "util/logging.h"

#include <cstdio>

namespace semdrift {

namespace {
LogLevel g_log_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < g_log_level) return;
  std::string msg = stream_.str();
  std::fprintf(stderr, "%s\n", msg.c_str());
}

}  // namespace internal
}  // namespace semdrift
