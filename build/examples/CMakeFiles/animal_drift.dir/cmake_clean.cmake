file(REMOVE_RECURSE
  "CMakeFiles/animal_drift.dir/animal_drift.cpp.o"
  "CMakeFiles/animal_drift.dir/animal_drift.cpp.o.d"
  "animal_drift"
  "animal_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animal_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
