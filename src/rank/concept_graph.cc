#include "rank/concept_graph.h"

#include <algorithm>

namespace semdrift {

ConceptGraph ConceptGraph::Build(const KnowledgeBase& kb, ConceptId c) {
  ConceptGraph graph;
  // Nodes: live instances.
  for (InstanceId e : kb.InstancesEverOf(c)) {
    IsAPair pair{c, e};
    int count = kb.Count(pair);
    if (count <= 0) continue;
    graph.index_.emplace(e, graph.nodes_.size());
    graph.nodes_.push_back(e);
    graph.node_counts_.push_back(static_cast<double>(count));
    graph.root_weights_.push_back(static_cast<double>(kb.Iter1Count(pair)));
  }
  size_t n = graph.nodes_.size();

  // Edges: trigger -> produced instance per live record. Collected as packed
  // (from, to) keys, then sort + run-length merge — the duplicate count *is*
  // the edge weight (each live record contributes 1.0), and the sorted order
  // yields CSR rows sorted by target directly.
  std::vector<uint64_t> raw_edges;
  kb.ForEachLiveRecordOfConcept(c, [&](const ExtractionRecord& record) {
    for (InstanceId t : record.triggers) {
      auto ti = graph.index_.find(t);
      if (ti == graph.index_.end()) continue;
      for (InstanceId e : record.instances) {
        if (e == t) continue;
        auto ei = graph.index_.find(e);
        if (ei == graph.index_.end()) continue;
        raw_edges.push_back((static_cast<uint64_t>(ti->second) << 32) |
                            static_cast<uint64_t>(ei->second));
      }
    }
  });
  std::sort(raw_edges.begin(), raw_edges.end());

  graph.edge_offsets_.assign(n + 1, 0);
  graph.edge_targets_.reserve(raw_edges.size());
  graph.edge_weights_.reserve(raw_edges.size());
  graph.out_degrees_.assign(n, 0.0);
  for (size_t i = 0; i < raw_edges.size();) {
    uint64_t key = raw_edges[i];
    size_t run = i;
    while (run < raw_edges.size() && raw_edges[run] == key) ++run;
    uint32_t from = static_cast<uint32_t>(key >> 32);
    double weight = static_cast<double>(run - i);
    graph.edge_targets_.push_back(static_cast<uint32_t>(key & 0xffffffffu));
    graph.edge_weights_.push_back(weight);
    ++graph.edge_offsets_[from + 1];
    graph.out_degrees_[from] += weight;
    i = run;
  }
  for (size_t i = 0; i < n; ++i) {
    graph.edge_offsets_[i + 1] += graph.edge_offsets_[i];
  }
  return graph;
}

size_t ConceptGraph::IndexOf(InstanceId e) const {
  auto it = index_.find(e);
  return it == index_.end() ? static_cast<size_t>(-1) : it->second;
}

}  // namespace semdrift
