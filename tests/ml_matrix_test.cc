#include <gtest/gtest.h>

#include <cmath>

#include "ml/matrix.h"
#include "util/rng.h"

namespace semdrift {
namespace {

Matrix RandomSymmetric(size_t n, Rng* rng) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double v = rng->NextGaussian();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

Matrix RandomSpd(size_t n, Rng* rng) {
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = rng->NextGaussian();
  }
  Matrix spd = a.Transpose().Multiply(a);
  spd.AddDiagonal(0.5);
  return spd;
}

TEST(MatrixTest, IdentityAndAccess) {
  Matrix id = Matrix::Identity(3);
  EXPECT_EQ(id(0, 0), 1.0);
  EXPECT_EQ(id(0, 1), 0.0);
  EXPECT_EQ(id.Trace(), 3.0);
}

TEST(MatrixTest, TransposeInvolution) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 2) = 5;
  m(1, 1) = -2;
  Matrix tt = m.Transpose().Transpose();
  EXPECT_EQ(tt.MaxAbsDiff(m), 0.0);
  EXPECT_EQ(m.Transpose()(2, 0), 5.0);
}

TEST(MatrixTest, MultiplyKnownValues) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  Matrix c = a.Multiply(b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyByIdentity) {
  Rng rng(3);
  Matrix m(4, 4);
  for (size_t i = 0; i < 4; ++i)
    for (size_t j = 0; j < 4; ++j) m(i, j) = rng.NextGaussian();
  EXPECT_LT(m.Multiply(Matrix::Identity(4)).MaxAbsDiff(m), 1e-14);
  EXPECT_LT(Matrix::Identity(4).Multiply(m).MaxAbsDiff(m), 1e-14);
}

TEST(MatrixTest, AddSubScale) {
  Matrix a(1, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  Matrix b(1, 2);
  b(0, 0) = 10;
  b(0, 1) = 20;
  Matrix sum = a.Add(b);
  EXPECT_EQ(sum(0, 1), 22.0);
  Matrix diff = sum.Sub(b);
  EXPECT_LT(diff.MaxAbsDiff(a), 1e-14);
  diff.Scale(3.0);
  EXPECT_EQ(diff(0, 0), 3.0);
  diff.AddInPlace(a, -3.0);
  EXPECT_LT(diff.FrobeniusNormSq(), 1e-24);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m(2, 2);
  m(0, 0) = 3;
  m(1, 1) = 4;
  EXPECT_EQ(m.FrobeniusNormSq(), 25.0);
}

TEST(CholeskyTest, SolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  std::vector<double> b{8, 7};
  std::vector<double> x;
  ASSERT_TRUE(CholeskySolve(a, b, &x));
  // 4x + 2y = 8, 2x + 3y = 7 -> x = 1.25, y = 1.5.
  EXPECT_NEAR(x[0], 1.25, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 1;  // Eigenvalues 3 and -1.
  std::vector<double> x;
  EXPECT_FALSE(CholeskySolve(a, {1, 1}, &x));
}

class CholeskyPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CholeskyPropertyTest, ResidualSmallOnRandomSpd) {
  Rng rng(GetParam() * 7919);
  size_t n = GetParam();
  Matrix a = RandomSpd(n, &rng);
  std::vector<double> b(n);
  for (double& v : b) v = rng.NextGaussian();
  std::vector<double> x;
  ASSERT_TRUE(CholeskySolve(a, b, &x));
  for (size_t i = 0; i < n; ++i) {
    double r = -b[i];
    for (size_t j = 0; j < n; ++j) r += a(i, j) * x[j];
    EXPECT_NEAR(r, 0.0, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 60));

TEST(CholeskyTest, MatrixRhs) {
  Rng rng(17);
  Matrix a = RandomSpd(6, &rng);
  Matrix b(6, 3);
  for (size_t i = 0; i < 6; ++i)
    for (size_t j = 0; j < 3; ++j) b(i, j) = rng.NextGaussian();
  Matrix x;
  ASSERT_TRUE(CholeskySolveMatrix(a, b, &x));
  EXPECT_LT(a.Multiply(x).MaxAbsDiff(b), 1e-8);
}

TEST(LuTest, SolvesNonSymmetric) {
  Matrix a(3, 3);
  double values[3][3] = {{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}};
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 3; ++j) a(i, j) = values[i][j];
  std::vector<double> b{-8, 0, 3};
  std::vector<double> x;
  ASSERT_TRUE(LuSolve(a, b, &x));
  for (size_t i = 0; i < 3; ++i) {
    double r = -b[i];
    for (size_t j = 0; j < 3; ++j) r += a(i, j) * x[j];
    EXPECT_NEAR(r, 0.0, 1e-10);
  }
}

TEST(LuTest, DetectsSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  std::vector<double> x;
  EXPECT_FALSE(LuSolve(a, {1, 1}, &x));
}

TEST(EigenTest, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 3;
  a(1, 1) = 1;
  a(2, 2) = 2;
  EigenResult eigen = SymmetricEigen(a);
  ASSERT_EQ(eigen.values.size(), 3u);
  EXPECT_NEAR(eigen.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eigen.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eigen.values[2], 3.0, 1e-12);
}

TEST(EigenTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  EigenResult eigen = SymmetricEigen(a);
  EXPECT_NEAR(eigen.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eigen.values[1], 3.0, 1e-12);
  // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(eigen.vectors(0, 1)), 1.0 / std::sqrt(2.0), 1e-10);
}

TEST(EigenTest, ZeroDiagonalOffDiagonal) {
  // [[0,1],[1,0]] has eigenvalues -1 and 1.
  Matrix a(2, 2);
  a(0, 1) = 1;
  a(1, 0) = 1;
  EigenResult eigen = SymmetricEigen(a);
  EXPECT_NEAR(eigen.values[0], -1.0, 1e-12);
  EXPECT_NEAR(eigen.values[1], 1.0, 1e-12);
}

TEST(EigenTest, SingleElement) {
  Matrix a(1, 1);
  a(0, 0) = 5.0;
  EigenResult eigen = SymmetricEigen(a);
  ASSERT_EQ(eigen.values.size(), 1u);
  EXPECT_NEAR(eigen.values[0], 5.0, 1e-12);
  EXPECT_NEAR(std::abs(eigen.vectors(0, 0)), 1.0, 1e-12);
}

class EigenPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EigenPropertyTest, ReconstructsMatrix) {
  Rng rng(GetParam() * 104729);
  size_t n = GetParam();
  Matrix a = RandomSymmetric(n, &rng);
  EigenResult eigen = SymmetricEigen(a);
  // Rebuild A = V diag(values) V^T.
  Matrix scaled = eigen.vectors;  // Column p scaled by lambda_p.
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < n; ++i) scaled(i, j) *= eigen.values[j];
  }
  Matrix rebuilt = scaled.Multiply(eigen.vectors.Transpose());
  EXPECT_LT(rebuilt.MaxAbsDiff(a), 1e-8);
}

TEST_P(EigenPropertyTest, VectorsAreOrthonormal) {
  Rng rng(GetParam() * 7 + 1);
  size_t n = GetParam();
  Matrix a = RandomSymmetric(n, &rng);
  EigenResult eigen = SymmetricEigen(a);
  Matrix gram = eigen.vectors.Transpose().Multiply(eigen.vectors);
  EXPECT_LT(gram.MaxAbsDiff(Matrix::Identity(n)), 1e-9);
}

TEST_P(EigenPropertyTest, ValuesAscending) {
  Rng rng(GetParam() * 31 + 5);
  size_t n = GetParam();
  EigenResult eigen = SymmetricEigen(RandomSymmetric(n, &rng));
  for (size_t i = 1; i < n; ++i) EXPECT_LE(eigen.values[i - 1], eigen.values[i]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenPropertyTest,
                         ::testing::Values(2, 3, 4, 8, 16, 33, 64));

TEST(EigenTest, TraceEqualsEigenSum) {
  Rng rng(99);
  Matrix a = RandomSymmetric(12, &rng);
  EigenResult eigen = SymmetricEigen(a);
  double sum = 0.0;
  for (double v : eigen.values) sum += v;
  EXPECT_NEAR(sum, a.Trace(), 1e-9);
}

}  // namespace
}  // namespace semdrift
