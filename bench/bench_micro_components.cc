// Google-benchmark micro benchmarks for the library's hot components:
// extraction throughput, ranking-model cost, mutex-index construction,
// feature extraction, rollback cascades, kernel PCA and the manifold
// regularizer.

#include <benchmark/benchmark.h>

#include "corpus/generator.h"
#include "corpus/world.h"
#include "dp/detector.h"
#include "dp/features.h"
#include "dp/seed_labeling.h"
#include "extract/extractor.h"
#include "extract/hearst_parser.h"
#include "kb/knowledge_base.h"
#include "ml/kpca.h"
#include "ml/manifold.h"
#include "ml/random_forest.h"
#include "mutex/mutex_index.h"
#include "rank/scorers.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace semdrift {
namespace {

/// Shared fixture state, built once (static locals are fine in a bench
/// binary's single-threaded setup).
struct MicroWorld {
  World world;
  Corpus corpus;

  static const MicroWorld& Get() {
    static MicroWorld* instance = [] {
      auto* m = new MicroWorld();
      WorldSpec wspec;
      wspec.num_concepts = 120;
      Rng wrng(99);
      m->world = GenerateWorld(wspec, &wrng);
      CorpusSpec cspec;
      cspec.num_sentences = 20000;
      cspec.render_text = true;
      Rng crng(100);
      m->corpus = GenerateCorpus(m->world, cspec, &crng);
      return m;
    }();
    return *instance;
  }

 private:
  MicroWorld() : world(World::Builder().Build()) {}
};

KnowledgeBase ExtractMicro() {
  const MicroWorld& m = MicroWorld::Get();
  KnowledgeBase kb;
  IterativeExtractor extractor(&m.corpus.sentences, ExtractorOptions{});
  extractor.Run(&kb);
  return kb;
}

void BM_CorpusGeneration(benchmark::State& state) {
  const MicroWorld& m = MicroWorld::Get();
  CorpusSpec spec;
  spec.num_sentences = static_cast<int>(state.range(0));
  spec.render_text = false;
  for (auto _ : state) {
    Rng rng(7);
    Corpus corpus = GenerateCorpus(m.world, spec, &rng);
    benchmark::DoNotOptimize(corpus.sentences.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CorpusGeneration)->Arg(2000)->Arg(10000);

void BM_IterativeExtraction(benchmark::State& state) {
  const MicroWorld& m = MicroWorld::Get();
  for (auto _ : state) {
    KnowledgeBase kb;
    IterativeExtractor extractor(&m.corpus.sentences, ExtractorOptions{});
    extractor.Run(&kb);
    benchmark::DoNotOptimize(kb.num_live_pairs());
  }
  state.SetItemsProcessed(state.iterations() * m.corpus.sentences.size());
}
BENCHMARK(BM_IterativeExtraction);

void BM_HearstParse(benchmark::State& state) {
  const MicroWorld& m = MicroWorld::Get();
  HearstParser parser(&m.world.concept_vocab(), m.world.instance_vocab());
  size_t index = 0;
  const auto& sentences = m.corpus.sentences.sentences();
  for (auto _ : state) {
    const auto& sentence = sentences[index++ % sentences.size()];
    benchmark::DoNotOptimize(parser.Parse(sentence.text));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HearstParse);

void BM_RankModel(benchmark::State& state) {
  static KnowledgeBase* kb = new KnowledgeBase(ExtractMicro());
  RankModel model = static_cast<RankModel>(state.range(0));
  for (auto _ : state) {
    auto scores = ScoreConcept(*kb, ConceptId(0), model);
    benchmark::DoNotOptimize(scores.size());
  }
}
BENCHMARK(BM_RankModel)
    ->Arg(static_cast<int>(RankModel::kFrequency))
    ->Arg(static_cast<int>(RankModel::kPageRank))
    ->Arg(static_cast<int>(RankModel::kRandomWalk));

void BM_MutexIndexBuild(benchmark::State& state) {
  static KnowledgeBase* kb = new KnowledgeBase(ExtractMicro());
  const MicroWorld& m = MicroWorld::Get();
  for (auto _ : state) {
    MutexIndex index(*kb, m.world.num_concepts());
    benchmark::DoNotOptimize(index.num_concepts());
  }
}
BENCHMARK(BM_MutexIndexBuild);

void BM_FeatureExtraction(benchmark::State& state) {
  static KnowledgeBase* kb = new KnowledgeBase(ExtractMicro());
  const MicroWorld& m = MicroWorld::Get();
  static MutexIndex* mutex = new MutexIndex(*kb, m.world.num_concepts());
  static ScoreCache* scores = new ScoreCache(kb, RankModel::kRandomWalk);
  static FeatureExtractor* features = new FeatureExtractor(kb, mutex, scores);
  auto instances = kb->LiveInstancesOf(ConceptId(0));
  size_t index = 0;
  for (auto _ : state) {
    InstanceId e = instances[index++ % instances.size()];
    benchmark::DoNotOptimize(features->Extract(ConceptId(0), e));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FeatureExtraction);

void BM_RollbackCascade(benchmark::State& state) {
  const MicroWorld& m = MicroWorld::Get();
  CascadePolicy policy = static_cast<CascadePolicy>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    KnowledgeBase kb = ExtractMicro();
    // Pick popular iteration-1 pairs of concept 0 to remove.
    auto core = kb.Iter1InstancesOf(ConceptId(0));
    state.ResumeTiming();
    int rolled = 0;
    for (size_t i = 0; i < core.size() && i < 10; ++i) {
      rolled += kb.RemovePair(IsAPair{ConceptId(0), core[i].first}, policy);
    }
    benchmark::DoNotOptimize(rolled);
  }
  (void)m;
}
BENCHMARK(BM_RollbackCascade)
    ->Arg(static_cast<int>(CascadePolicy::kAllTriggersDead))
    ->Arg(static_cast<int>(CascadePolicy::kAnyTriggerDead))
    ->Unit(benchmark::kMillisecond);

// --- Parallel-stage benchmarks: each runs at 1 and 4 worker threads so the
// thread-count scaling of the per-concept pipeline is visible in one run.
// Output is bit-identical across thread counts; only the time changes.

std::vector<ConceptId> MicroScope() {
  std::vector<ConceptId> scope;
  for (size_t ci = 0; ci < MicroWorld::Get().world.num_concepts(); ++ci) {
    scope.push_back(ConceptId(static_cast<uint32_t>(ci)));
  }
  return scope;
}

void BM_ScoreCacheWarm(benchmark::State& state) {
  static KnowledgeBase* kb = new KnowledgeBase(ExtractMicro());
  std::vector<ConceptId> scope = MicroScope();
  SetGlobalThreadCount(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ScoreCache scores(kb, RankModel::kRandomWalk);
    scores.Warm(scope);
    benchmark::DoNotOptimize(scores.Concept(ConceptId(0)).size());
  }
  SetGlobalThreadCount(0);
  state.SetItemsProcessed(state.iterations() * scope.size());
}
BENCHMARK(BM_ScoreCacheWarm)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_CollectTrainingData(benchmark::State& state) {
  static KnowledgeBase* kb = new KnowledgeBase(ExtractMicro());
  const MicroWorld& m = MicroWorld::Get();
  static MutexIndex* mutex = new MutexIndex(*kb, m.world.num_concepts());
  std::vector<ConceptId> scope = MicroScope();
  SetGlobalThreadCount(static_cast<int>(state.range(0)));
  ScoreCache scores(kb, RankModel::kRandomWalk);
  scores.Warm(scope);
  FeatureExtractor features(kb, mutex, &scores);
  SeedLabeler seeds(kb, mutex, [](const IsAPair&) { return false; });
  for (auto _ : state) {
    TrainingData data = CollectTrainingData(*kb, &features, seeds, scope);
    benchmark::DoNotOptimize(data.size());
  }
  SetGlobalThreadCount(0);
  state.SetItemsProcessed(state.iterations() * scope.size());
}
BENCHMARK(BM_CollectTrainingData)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ForestFit(benchmark::State& state) {
  // Planted 3-class features, same shape as the DP detector's input.
  Rng rng(11);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 600; ++i) {
    int label = i % 3;
    x.push_back({rng.NextDouble() + label, rng.NextDouble(),
                 rng.NextDouble() * (label + 1), rng.NextDouble()});
    y.push_back(label);
  }
  RandomForestOptions options;
  options.num_trees = 50;
  SetGlobalThreadCount(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    RandomForest forest;
    forest.Fit(x, y, 3, options);
    benchmark::DoNotOptimize(forest.num_trees());
  }
  SetGlobalThreadCount(0);
}
BENCHMARK(BM_ForestFit)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_KernelPcaFit(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  Matrix x(n, 4);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < 4; ++j) x(i, j) = rng.NextGaussian();
  for (auto _ : state) {
    KernelPca kpca;
    KpcaOptions options;
    benchmark::DoNotOptimize(kpca.Fit(x, options));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_KernelPcaFit)->Arg(100)->Arg(300)->Arg(600)->Unit(benchmark::kMillisecond);

void BM_ManifoldRegularizer(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(6);
  Matrix x(n, 20);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < 20; ++j) x(i, j) = rng.NextGaussian();
  ManifoldOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildManifoldRegularizer(x, options).Trace());
  }
}
BENCHMARK(BM_ManifoldRegularizer)->Arg(100)->Arg(300)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semdrift

BENCHMARK_MAIN();
