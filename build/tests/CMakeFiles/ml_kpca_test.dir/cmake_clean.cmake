file(REMOVE_RECURSE
  "CMakeFiles/ml_kpca_test.dir/ml_kpca_test.cc.o"
  "CMakeFiles/ml_kpca_test.dir/ml_kpca_test.cc.o.d"
  "ml_kpca_test"
  "ml_kpca_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_kpca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
