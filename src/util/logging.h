#ifndef SEMDRIFT_UTIL_LOGGING_H_
#define SEMDRIFT_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace semdrift {

/// Log severity, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum severity; messages below it are dropped. Defaults to
/// kInfo. Cheap to query, safe to set once at startup (not synchronized).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink that emits on destruction. Use via the SD_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace semdrift

/// Usage: SD_LOG(kInfo) << "extracted " << n << " pairs";
#define SD_LOG(severity)                                                      \
  ::semdrift::internal::LogMessage(::semdrift::LogLevel::severity, __FILE__, \
                                   __LINE__)                                  \
      .stream()

#endif  // SEMDRIFT_UTIL_LOGGING_H_
