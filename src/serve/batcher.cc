#include "serve/batcher.h"

#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/cancellation.h"
#include "util/thread_pool.h"

namespace semdrift {

namespace {

struct BatchMetrics {
  MetricsRegistry::Counter requests;
  MetricsRegistry::Counter batches;
  MetricsRegistry::Histogram batch_size;
  MetricsRegistry::Histogram queue_wait_ns;
};

BatchMetrics& GetBatchMetrics() {
  static BatchMetrics metrics{
      GlobalMetrics().RegisterCounter("batch.requests"),
      GlobalMetrics().RegisterCounter("batch.batches"),
      GlobalMetrics().RegisterHistogram("batch.size", SizeBuckets()),
      GlobalMetrics().RegisterHistogram("batch.queue_wait_ns", LatencyBucketsNs())};
  return metrics;
}

}  // namespace

Batcher::Batcher(QueryEngine* engine, BatcherOptions options)
    : engine_(engine), options_(options) {
  if (options_.max_batch == 0) options_.max_batch = 1;
  paused_ = options_.start_paused;
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

Batcher::~Batcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    paused_ = false;  // A paused batcher still drains on shutdown.
  }
  wake_.notify_all();
  dispatcher_.join();
}

std::future<std::string> Batcher::Submit(std::string line) {
  return Submit(std::move(line), options_.default_deadline_ms);
}

std::future<std::string> Batcher::Submit(std::string line, int deadline_ms) {
  Request req;
  req.line = std::move(line);
  req.submitted = std::chrono::steady_clock::now();
  GetBatchMetrics().requests.Add();
  if (deadline_ms > 0) {
    req.has_deadline = true;
    req.deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
  }
  std::future<std::string> future = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      req.promise.set_value("ERR\tserver shutting down");
      return future;
    }
    queue_.push_back(std::move(req));
    stats_.requests++;
  }
  wake_.notify_all();
  return future;
}

void Batcher::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Batcher::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  wake_.notify_all();
}

BatcherStats Batcher::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Batcher::DispatchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    wake_.wait(lock, [this] {
      return stopping_ || (!paused_ && !queue_.empty());
    });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Coalesce: take what is already queued; if the batch is still small,
    // linger up to max_wait_ms for stragglers (but never past a deadline
    // already in the queue — expiring while parked would be self-inflicted).
    if (!stopping_ && queue_.size() < options_.max_batch &&
        options_.max_wait_ms > 0) {
      auto park_until = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.max_wait_ms);
      for (const Request& r : queue_) {
        if (r.has_deadline && r.deadline < park_until) park_until = r.deadline;
      }
      wake_.wait_until(lock, park_until, [this] {
        return stopping_ || queue_.size() >= options_.max_batch;
      });
      if (paused_ && !stopping_) continue;
    }
    std::deque<Request> batch;
    while (!queue_.empty() && batch.size() < options_.max_batch) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    stats_.batches++;
    stats_.max_batch = std::max<uint64_t>(stats_.max_batch, batch.size());
    lock.unlock();
    RunBatch(&batch);
    lock.lock();
  }
}

void Batcher::RunBatch(std::deque<Request>* batch) {
  const size_t n = batch->size();
  const auto now = std::chrono::steady_clock::now();
  BatchMetrics& metrics = GetBatchMetrics();
  metrics.batches.Add();
  metrics.batch_size.Observe(static_cast<double>(n));
  for (const Request& req : *batch) {
    metrics.queue_wait_ns.Observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - req.submitted)
            .count()));
  }
  std::vector<std::string> responses = ParallelMap<std::string>(n, [&](size_t i) {
    Request& req = (*batch)[i];
    if (req.has_deadline) {
      if (req.deadline <= now) return std::string("ERR\tdeadline exceeded");
      CancellationToken token;
      token.ArmDeadline(std::chrono::duration_cast<std::chrono::milliseconds>(
          req.deadline - now));
      ScopedCancellation scoped(&token);
      return engine_->Answer(req.line);
    }
    return engine_->Answer(req.line);
  });
  // Record expiries before fulfilling any promise: a waiter woken by get()
  // must already see its request counted in Snapshot().
  uint64_t expired = 0;
  for (size_t i = 0; i < n; ++i) {
    if (responses[i] == "ERR\tdeadline exceeded") expired++;
  }
  if (expired > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.deadline_expired += expired;
  }
  for (size_t i = 0; i < n; ++i) {
    (*batch)[i].promise.set_value(std::move(responses[i]));
  }
}

}  // namespace semdrift
