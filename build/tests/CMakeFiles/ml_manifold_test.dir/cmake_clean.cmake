file(REMOVE_RECURSE
  "CMakeFiles/ml_manifold_test.dir/ml_manifold_test.cc.o"
  "CMakeFiles/ml_manifold_test.dir/ml_manifold_test.cc.o.d"
  "ml_manifold_test"
  "ml_manifold_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_manifold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
