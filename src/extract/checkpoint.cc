#include "extract/checkpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/framed_file.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace semdrift {

namespace {

constexpr char kCheckpointTag[] = "semdrift-checkpoint";
// v1: extraction-only snapshots (4-field M line). v2 adds phase, cleaning
// round and health-report lines; v1 files still load (phase = extract).
constexpr int kCheckpointVersion = 2;
constexpr char kFilePrefix[] = "checkpoint-";
constexpr char kFileSuffix[] = ".ckpt";

const char* CheckpointPhaseName(CheckpointPhase phase) {
  return phase == CheckpointPhase::kClean ? "clean" : "extract";
}

bool ParseCheckpointPhase(std::string_view name, CheckpointPhase* out) {
  if (name == "extract") {
    *out = CheckpointPhase::kExtract;
    return true;
  }
  if (name == "clean") {
    *out = CheckpointPhase::kClean;
    return true;
  }
  return false;
}

std::string JoinIds(const std::vector<InstanceId>& ids) {
  if (ids.empty()) return "-";
  std::string out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(ids[i].value);
  }
  return out;
}

bool ParseIds(std::string_view field, std::vector<InstanceId>* out) {
  out->clear();
  if (field == "-") return true;
  for (const std::string& part : Split(field, ',')) {
    uint64_t value = 0;
    if (!ParseUint64(part, &value) || value >= InstanceId::kInvalidValue) {
      return false;
    }
    out->push_back(InstanceId(static_cast<uint32_t>(value)));
  }
  return !out->empty();
}

/// Iteration number encoded in a checkpoint file name, or -1.
int IterationOfFileName(const std::string& name) {
  if (!StartsWith(name, kFilePrefix) || !EndsWith(name, kFileSuffix)) return -1;
  std::string_view middle(name);
  middle.remove_prefix(sizeof(kFilePrefix) - 1);
  middle.remove_suffix(sizeof(kFileSuffix) - 1);
  int64_t iteration = 0;
  if (!ParseIntInRange(middle, 1, 1000000, &iteration)) return -1;
  return static_cast<int>(iteration);
}

}  // namespace

std::string CheckpointPath(const std::string& dir, int iteration) {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%06d%s", kFilePrefix, iteration, kFileSuffix);
  return dir + "/" + name;
}

int CheckpointFileIndex(const CheckpointState& state) {
  return state.completed_iteration +
         (state.phase == CheckpointPhase::kClean ? state.clean_round : 0);
}

Status SaveCheckpoint(const CheckpointState& state, const std::string& path) {
  std::vector<std::string> health_lines = state.health.ToLines();
  FramedWriter out(path, kCheckpointTag, kCheckpointVersion);
  out.WriteLine("M\t" + std::to_string(state.completed_iteration) + "\t" +
                std::to_string(state.records.size()) + "\t" +
                std::to_string(state.stats.size()) + "\t" +
                CheckpointPhaseName(state.phase) + "\t" +
                std::to_string(state.clean_round) + "\t" +
                std::to_string(health_lines.size()));
  for (const IterationStats& s : state.stats) {
    out.WriteLine("T\t" + std::to_string(s.iteration) + "\t" +
                  std::to_string(s.extractions) + "\t" +
                  std::to_string(s.distinct_pairs));
  }
  // Record ids are implicit in line order; the M-line count pins the total
  // so dropped/duplicated record lines break the load even if the checksum
  // were somehow satisfied.
  for (const ExtractionRecord& r : state.records) {
    out.WriteLine("R\t" + std::to_string(r.sentence.value) + "\t" +
                  std::to_string(r.concept_id.value) + "\t" +
                  std::to_string(r.iteration) + "\t" +
                  (r.rolled_back ? "1" : "0") + "\t" + JoinIds(r.instances) +
                  "\t" + JoinIds(r.triggers));
  }
  for (const std::string& line : health_lines) out.WriteLine(line);
  return out.Close();
}

Result<CheckpointState> LoadCheckpoint(const std::string& path) {
  // min_checksum_version = 1: a checkpoint has carried its footer from the
  // first format version, so a missing footer is always a torn write.
  auto framed = ReadFramedFile(path, kCheckpointTag, kCheckpointVersion,
                               /*min_checksum_version=*/1);
  if (!framed.ok()) return framed.status();
  if (framed->truncated) {
    return Status::DataLoss(path + ": truncated checkpoint (missing footer) at byte offset " +
                            std::to_string(framed->bytes_read));
  }
  if (!framed->checksum_ok) {
    return Status::DataLoss(path + ": checksum mismatch over " +
                            std::to_string(framed->bytes_read) + " bytes (byte offset 0)");
  }

  auto fail = [&](size_t index, const std::string& why) {
    return Status::DataLoss(path + ":" +
                            std::to_string(framed->line_numbers[index]) +
                            " (byte offset " +
                            std::to_string(framed->line_offsets[index]) + "): " + why);
  };

  if (framed->lines.empty()) return Status::DataLoss(path + ": missing meta line");
  CheckpointState state;
  uint64_t num_records = 0;
  uint64_t num_stats = 0;
  uint64_t num_health = 0;
  {
    std::vector<std::string> fields = Split(framed->lines[0], '\t');
    int64_t completed = 0;
    // v1 meta line: M <iter> <records> <stats>. v2 appends <phase>
    // <clean_round> <health-line count>.
    size_t expected_fields = framed->version >= 2 ? 7 : 4;
    int64_t clean_round = 0;
    if (fields.size() != expected_fields || fields[0] != "M" ||
        !ParseIntInRange(fields[1], 1, 1000000, &completed) ||
        !ParseUint64(fields[2], &num_records) ||
        !ParseUint64(fields[3], &num_stats) ||
        (framed->version >= 2 &&
         (!ParseCheckpointPhase(fields[4], &state.phase) ||
          !ParseIntInRange(fields[5], 0, 1000000, &clean_round) ||
          !ParseUint64(fields[6], &num_health)))) {
      return fail(0, "malformed meta line");
    }
    state.completed_iteration = static_cast<int>(completed);
    state.clean_round = static_cast<int>(clean_round);
    if (state.phase == CheckpointPhase::kExtract && state.clean_round != 0) {
      return fail(0, "extract-phase checkpoint claims a cleaning round");
    }
  }
  // Compare without arithmetic on the untrusted counts (overflow-safe):
  // lines.size() >= 1 here, so the subtractions below cannot underflow.
  if (num_stats > framed->lines.size() - 1 ||
      num_records > framed->lines.size() - 1 - num_stats ||
      framed->lines.size() - 1 - num_stats - num_records != num_health) {
    return Status::DataLoss(path + ": line count disagrees with meta line");
  }

  for (size_t i = 0; i < num_stats; ++i) {
    size_t index = 1 + i;
    std::vector<std::string> fields = Split(framed->lines[index], '\t');
    int64_t iteration = 0;
    uint64_t extractions = 0;
    uint64_t pairs = 0;
    if (fields.size() != 4 || fields[0] != "T" ||
        !ParseIntInRange(fields[1], 1, 1000000, &iteration) ||
        !ParseUint64(fields[2], &extractions) || !ParseUint64(fields[3], &pairs)) {
      return fail(index, "malformed iteration-stats line");
    }
    IterationStats s;
    s.iteration = static_cast<int>(iteration);
    s.extractions = extractions;
    s.distinct_pairs = pairs;
    state.stats.push_back(s);
  }

  state.records.reserve(num_records);
  for (size_t i = 0; i < num_records; ++i) {
    size_t index = 1 + num_stats + i;
    std::vector<std::string> fields = Split(framed->lines[index], '\t');
    uint64_t sentence = 0;
    uint64_t concept_raw = 0;
    int64_t iteration = 0;
    ExtractionRecord r;
    if (fields.size() != 7 || fields[0] != "R" ||
        !ParseUint64(fields[1], &sentence) || sentence >= SentenceId::kInvalidValue ||
        !ParseUint64(fields[2], &concept_raw) || concept_raw >= ConceptId::kInvalidValue ||
        !ParseIntInRange(fields[3], 1, 1000000, &iteration) ||
        (fields[4] != "0" && fields[4] != "1") ||
        !ParseIds(fields[5], &r.instances)) {
      return fail(index, "malformed record line");
    }
    // Triggers may be empty ("-"); instances may not.
    r.triggers.clear();
    if (fields[6] != "-") {
      if (!ParseIds(fields[6], &r.triggers)) return fail(index, "malformed trigger list");
    }
    r.id = static_cast<uint32_t>(i);
    r.sentence = SentenceId(static_cast<uint32_t>(sentence));
    r.concept_id = ConceptId(static_cast<uint32_t>(concept_raw));
    r.iteration = static_cast<int>(iteration);
    r.rolled_back = fields[4] == "1";
    state.records.push_back(std::move(r));
  }

  for (size_t i = 0; i < num_health; ++i) {
    size_t index = 1 + num_stats + num_records + i;
    Status merged = state.health.MergeLine(
        framed->lines[index],
        path + ":" + std::to_string(framed->line_numbers[index]) +
            " (byte offset " + std::to_string(framed->line_offsets[index]) + ")");
    if (!merged.ok()) return merged;
  }
  return state;
}

Status WriteCheckpoint(const std::string& dir, const CheckpointState& state) {
  static MetricsRegistry::Counter writes =
      GlobalMetrics().RegisterCounter("checkpoint.writes");
  static MetricsRegistry::Histogram write_ns =
      GlobalMetrics().RegisterHistogram("checkpoint.write_ns", LatencyBucketsNs());
  writes.Add();
  ScopedSpan span(&GlobalTrace(), "checkpoint.write");
  span.AddTag("records", static_cast<uint64_t>(state.records.size()));
  struct WriteTimer {
    std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
    MetricsRegistry::Histogram* hist;
    ~WriteTimer() {
      hist->Observe(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
    }
  } timer{.hist = &write_ns};
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create " + dir + ": " + ec.message());
  std::string final_path = CheckpointPath(dir, CheckpointFileIndex(state));
  std::string tmp_path = final_path + ".tmp";
  Status s = SaveCheckpoint(state, tmp_path);
  if (!s.ok()) return s;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::IOError("cannot rename " + tmp_path + ": " + ec.message());
  }
  return Status::OK();
}

namespace {

/// Checkpoint iterations present in `dir`, ascending.
Result<std::vector<int>> ListCheckpointIterations(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return Status::IOError("cannot list " + dir + ": " + ec.message());
  std::vector<int> iterations;
  for (const auto& entry : it) {
    int iteration = IterationOfFileName(entry.path().filename().string());
    if (iteration > 0) iterations.push_back(iteration);
  }
  std::sort(iterations.begin(), iterations.end());
  return iterations;
}

}  // namespace

Status PruneCheckpoints(const std::string& dir, int keep) {
  if (keep <= 0) return Status::OK();
  auto iterations = ListCheckpointIterations(dir);
  if (!iterations.ok()) return iterations.status();
  if (iterations->size() <= static_cast<size_t>(keep)) return Status::OK();
  for (size_t i = 0; i + static_cast<size_t>(keep) < iterations->size(); ++i) {
    std::error_code ec;
    std::filesystem::remove(CheckpointPath(dir, (*iterations)[i]), ec);
    // Best effort: a stale checkpoint left behind is harmless.
  }
  return Status::OK();
}

Result<RestoredCheckpoint> LoadLatestValidCheckpoint(const std::string& dir,
                                                     size_t num_concepts,
                                                     size_t num_sentences) {
  if (!std::filesystem::is_directory(dir)) {
    return Status::NotFound("no checkpoint directory " + dir);
  }
  auto iterations = ListCheckpointIterations(dir);
  if (!iterations.ok()) return iterations.status();
  for (auto it = iterations->rbegin(); it != iterations->rend(); ++it) {
    std::string path = CheckpointPath(dir, *it);
    auto loaded = LoadCheckpoint(path);
    if (!loaded.ok()) {
      SD_LOG(kInfo) << "checkpoint: skipping " << path << ": "
                    << loaded.status().ToString();
      continue;
    }
    auto kb = KnowledgeBase::FromRecords(loaded->records);
    if (!kb.ok()) {
      SD_LOG(kInfo) << "checkpoint: skipping " << path << ": "
                    << kb.status().ToString();
      continue;
    }
    Status valid = kb->Validate(num_concepts, num_sentences);
    if (!valid.ok()) {
      SD_LOG(kInfo) << "checkpoint: skipping " << path << ": " << valid.ToString();
      continue;
    }
    RestoredCheckpoint restored;
    restored.state = std::move(*loaded);
    restored.kb = std::move(*kb);
    return restored;
  }
  return Status::NotFound("no valid checkpoint in " + dir);
}

Result<std::vector<IterationStats>> RunWithCheckpoints(
    IterativeExtractor* extractor, KnowledgeBase* kb,
    const CheckpointConfig& config,
    const std::function<void(const IterationStats&, const KnowledgeBase&)>&
        on_iteration) {
  std::vector<IterationStats> stats;
  int first_iteration = 1;
  if (config.resume) {
    auto restored = LoadLatestValidCheckpoint(config.dir, config.num_concepts,
                                              config.num_sentences);
    if (restored.ok()) {
      Status s = extractor->ResumeFrom(restored->kb);
      if (!s.ok()) return s;
      *kb = std::move(restored->kb);
      stats = std::move(restored->state.stats);
      first_iteration = restored->state.completed_iteration + 1;
      SD_LOG(kInfo) << "checkpoint: resuming after iteration "
                    << restored->state.completed_iteration;
      // A cleaning-phase snapshot means extraction already finished; the
      // caller resumes cleaning from state.clean_round instead.
      if (restored->state.phase == CheckpointPhase::kClean) return stats;
      // The interrupted run may already have reached its fixpoint or cap.
      if (!stats.empty() && stats.back().extractions == 0 &&
          stats.back().iteration > 1) {
        return stats;
      }
    } else if (restored.status().code() != Status::Code::kNotFound) {
      return restored.status();
    } else {
      SD_LOG(kInfo) << "checkpoint: " << restored.status().message()
                    << ", starting fresh";
    }
  }

  for (int iteration = first_iteration;
       iteration <= extractor->options().max_iterations; ++iteration) {
    size_t extracted = extractor->RunIteration(kb, iteration);
    IterationStats s;
    s.iteration = iteration;
    s.extractions = extracted;
    s.distinct_pairs = kb->num_live_pairs();
    stats.push_back(s);
    if (config.validate_each_iteration) {
      Status valid = kb->Validate(config.num_concepts);
      if (!valid.ok()) return valid;
    }
    if (on_iteration) on_iteration(s, *kb);
    CheckpointState state;
    state.completed_iteration = iteration;
    state.stats = stats;
    state.records = kb->records();
    Status written = WriteCheckpoint(config.dir, state);
    if (!written.ok()) return written;
    if (config.keep_last > 0) {
      Status pruned = PruneCheckpoints(config.dir, config.keep_last);
      if (!pruned.ok()) return pruned;
    }
    if (extracted == 0 && iteration > 1) break;
  }
  return stats;
}

}  // namespace semdrift
