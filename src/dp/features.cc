#include "dp/features.h"

#include <cmath>

namespace semdrift {

double SparseCosine(const std::unordered_map<InstanceId, int>& a,
                    const std::unordered_map<InstanceId, int>& b) {
  if (a.empty() || b.empty()) return 0.0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  double dot = 0.0;
  for (const auto& [key, value] : small) {
    auto it = large.find(key);
    if (it != large.end()) dot += static_cast<double>(value) * it->second;
  }
  if (dot == 0.0) return 0.0;
  double norm_a = 0.0;
  for (const auto& [key, value] : a) {
    (void)key;
    norm_a += static_cast<double>(value) * value;
  }
  double norm_b = 0.0;
  for (const auto& [key, value] : b) {
    (void)key;
    norm_b += static_cast<double>(value) * value;
  }
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

double FeatureExtractor::F1(ConceptId c, InstanceId e) const {
  std::unordered_map<InstanceId, int> sub = kb_->SubInstancesOf(IsAPair{c, e});
  if (sub.empty()) return 0.0;
  std::unordered_map<InstanceId, int> core;
  for (const auto& [instance, count] : kb_->Iter1InstancesOf(c)) {
    core.emplace(instance, count);
  }
  return SparseCosine(sub, core);
}

FeatureVector FeatureExtractor::Extract(ConceptId c, InstanceId e) {
  FeatureVector features{};
  features[0] = F1(c, e);
  features[1] = static_cast<double>(mutex_->F2Count(c, e));
  // Walk scores sum to 1 within a concept, so their magnitude depends on
  // concept size. The paper trains one detector per concept where that is
  // harmless; our pooled KPCA representation and multi-task training share
  // one space across concepts, so f3/f4 are rescaled to the within-concept
  // uniform level (1.0 = the score a uniform visit distribution would give).
  double scale = static_cast<double>(scores_->Concept(c).size());
  if (scale <= 0.0) scale = 1.0;
  features[2] = scores_->Get(c, e) * scale;
  // f4: unweighted average random-walk score over distinct sub-instances.
  std::unordered_map<InstanceId, int> sub = kb_->SubInstancesOf(IsAPair{c, e});
  if (!sub.empty()) {
    double total = 0.0;
    for (const auto& [instance, count] : sub) {
      (void)count;
      total += scores_->Get(c, instance) * scale;
    }
    features[3] = total / static_cast<double>(sub.size());
  }
  return features;
}

}  // namespace semdrift
