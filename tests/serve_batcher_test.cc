#include <gtest/gtest.h>

#include <future>
#include <string>
#include <thread>
#include <vector>

#include "eval/experiment.h"
#include "serve/batcher.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"

namespace semdrift {
namespace {

/// Concurrency-focused suite (runs under TSan via tools/check.sh): N client
/// threads hammering one QueryEngine through the Batcher must produce
/// byte-identical responses to a serial pass over the same lines.
class BatcherTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentConfig config = PaperScaleConfig(0.05);
    config.seed = 31;
    std::unique_ptr<Experiment> experiment = Experiment::Build(config);
    KnowledgeBase kb = experiment->Extract();
    path_ = ::testing::TempDir() + "/serve_batcher_test.bin";
    Status written =
        WriteSnapshot(kb, experiment->world(), nullptr, SnapshotOptions{}, path_);
    ASSERT_TRUE(written.ok()) << written.ToString();
    auto opened = SnapshotReader::Open(path_);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    snapshot_ = new SnapshotReader(std::move(*opened));

    // A deterministic mixed workload touching every verb, including misses.
    for (uint32_t c = 0; c < snapshot_->num_concepts(); c += 3) {
      const std::string concept_name(snapshot_->ConceptName(c));
      workload_.push_back("instances-of\t" + concept_name + "\t4");
      if (snapshot_->ConceptEnd(c) > snapshot_->ConceptBegin(c)) {
        const std::string member(snapshot_->InstanceName(
            snapshot_->PairInstance(snapshot_->ConceptBegin(c))));
        workload_.push_back("concepts-of\t" + member);
        workload_.push_back("is-a\t" + member + "\t" + concept_name);
        workload_.push_back("drift-score\t" + member + "\t" + concept_name);
      }
      workload_.push_back("mutex\t" + concept_name + "\t" +
                          std::string(snapshot_->ConceptName(0)));
      workload_.push_back("is-a\tno such instance\t" + concept_name);
    }
  }
  static void TearDownTestSuite() {
    delete snapshot_;
    snapshot_ = nullptr;
    workload_.clear();
  }

  static SnapshotReader* snapshot_;
  static std::string path_;
  static std::vector<std::string> workload_;
};

SnapshotReader* BatcherTest::snapshot_ = nullptr;
std::string BatcherTest::path_;
std::vector<std::string> BatcherTest::workload_;

TEST_F(BatcherTest, ConcurrentBatchedAnswersAreBitIdenticalToSerial) {
  // Serial reference on a private engine.
  std::vector<std::string> expected;
  {
    QueryEngine serial(snapshot_);
    for (const std::string& line : workload_) expected.push_back(serial.Answer(line));
  }

  QueryEngine engine(snapshot_);
  Batcher batcher(&engine);
  constexpr int kThreads = 8;
  std::vector<std::vector<std::string>> got(kThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      // Each client walks the whole workload at its own stride so threads
      // collide on the same queries (cache hits) and on different ones.
      std::vector<std::future<std::string>> futures;
      for (size_t i = t % 3; i < workload_.size(); ++i) {
        futures.push_back(batcher.Submit(workload_[i]));
      }
      for (auto& f : futures) got[t].push_back(f.get());
    });
  }
  for (std::thread& c : clients) c.join();
  for (int t = 0; t < kThreads; ++t) {
    size_t j = 0;
    for (size_t i = t % 3; i < workload_.size(); ++i, ++j) {
      ASSERT_EQ(got[t][j], expected[i])
          << "thread " << t << " query " << workload_[i];
    }
  }
  BatcherStats stats = batcher.Snapshot();
  EXPECT_GT(stats.requests, 0u);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GE(stats.requests, stats.batches);
}

TEST_F(BatcherTest, PausedSubmissionsCoalesceIntoOneBatch) {
  QueryEngine engine(snapshot_);
  BatcherOptions options;
  options.start_paused = true;
  options.max_batch = 64;
  Batcher batcher(&engine, options);
  std::vector<std::future<std::string>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(batcher.Submit(workload_[i % workload_.size()]));
  }
  EXPECT_EQ(batcher.Snapshot().batches, 0u);
  batcher.Resume();
  for (auto& f : futures) EXPECT_FALSE(f.get().empty());
  BatcherStats stats = batcher.Snapshot();
  EXPECT_EQ(stats.requests, 10u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.max_batch, 10u);
}

TEST_F(BatcherTest, DeadlineExpiredWhileQueuedIsAnErrorNotAnAnswer) {
  QueryEngine engine(snapshot_);
  BatcherOptions options;
  options.start_paused = true;
  Batcher batcher(&engine, options);
  std::future<std::string> doomed = batcher.Submit(workload_[0], /*deadline_ms=*/1);
  std::future<std::string> fine = batcher.Submit(workload_[0], /*deadline_ms=*/0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  batcher.Resume();
  EXPECT_EQ(doomed.get(), "ERR\tdeadline exceeded");
  EXPECT_TRUE(fine.get().rfind("OK", 0) == 0);
  EXPECT_EQ(batcher.Snapshot().deadline_expired, 1u);
}

TEST_F(BatcherTest, OverloadShedsByPriorityAndRecoversWithHysteresis) {
  QueryEngine engine(snapshot_);
  BatcherOptions options;
  options.start_paused = true;
  options.deadline_budget_ms = 10;
  options.overload_window_ms = 150;
  options.max_batch = 64;
  Batcher batcher(&engine, options);

  // Build up real queue wait: park requests behind the paused dispatcher for
  // well over the 10 ms budget, then let the batch through. The dispatch
  // records their waits, pushing p99 past the full-budget engage rung.
  std::vector<std::future<std::string>> parked;
  for (int i = 0; i < 8; ++i) {
    parked.push_back(batcher.Submit(workload_[i % workload_.size()]));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  batcher.Resume();
  for (auto& f : parked) {
    EXPECT_NE(f.get().rfind("OVERLOADED", 0), 0u);  // Admitted before overload.
  }
  BatcherStats stats = batcher.Snapshot();
  EXPECT_EQ(stats.overload_level, 2);
  EXPECT_EQ(stats.overload_engaged, 1u);

  // At level 2 only kHigh is admitted; shed responses carry the distinct
  // OVERLOADED line so clients can tell back-pressure from failure.
  auto low = batcher.Submit(workload_[0], 0, RequestPriority::kLow);
  auto normal = batcher.Submit(workload_[0], 0, RequestPriority::kNormal);
  auto high = batcher.Submit(workload_[0], 0, RequestPriority::kHigh);
  const std::string kShed =
      "OVERLOADED\tqueue-wait p99 over deadline budget; request shed";
  EXPECT_EQ(low.get(), kShed);
  EXPECT_EQ(normal.get(), kShed);
  EXPECT_EQ(high.get().rfind("OK", 0), 0u);
  EXPECT_EQ(batcher.Snapshot().shed, 2u);

  // Recovery: once the overload window ages out the p99 decays, and a
  // normal-priority probe is admitted again. Still the same single engage
  // episode — hysteresis, not flapping.
  std::this_thread::sleep_for(std::chrono::milliseconds(160));
  auto probe = batcher.Submit(workload_[0], 0, RequestPriority::kNormal);
  EXPECT_EQ(probe.get().rfind("OK", 0), 0u);
  stats = batcher.Snapshot();
  EXPECT_EQ(stats.overload_level, 0);
  EXPECT_EQ(stats.overload_engaged, 1u);
  EXPECT_EQ(stats.shed, 2u);
}

TEST_F(BatcherTest, EngineSourceNullPinYieldsErrorNotCrash) {
  Batcher batcher(EngineSource([] { return EnginePin{}; }));
  const std::string response = batcher.Submit(workload_[0]).get();
  EXPECT_EQ(response, "ERR\tno snapshot generation available");
}

TEST_F(BatcherTest, DestructionDrainsPendingRequests) {
  QueryEngine engine(snapshot_);
  std::vector<std::future<std::string>> futures;
  {
    BatcherOptions options;
    options.start_paused = true;  // Guarantee requests are still queued.
    Batcher batcher(&engine, options);
    for (int i = 0; i < 5; ++i) {
      futures.push_back(batcher.Submit(workload_[i % workload_.size()]));
    }
  }
  for (auto& f : futures) {
    const std::string response = f.get();
    EXPECT_TRUE(response.rfind("OK", 0) == 0 || response.rfind("NOT_FOUND", 0) == 0)
        << response;
  }
}

}  // namespace
}  // namespace semdrift
