#include "rank/concept_graph.h"

#include <algorithm>

namespace semdrift {

ConceptGraph ConceptGraph::Build(const KnowledgeBase& kb, ConceptId c) {
  ConceptGraph graph;
  // Nodes: live instances.
  for (InstanceId e : kb.InstancesEverOf(c)) {
    IsAPair pair{c, e};
    int count = kb.Count(pair);
    if (count <= 0) continue;
    graph.index_.emplace(e, graph.nodes_.size());
    graph.nodes_.push_back(e);
    graph.node_counts_.push_back(static_cast<double>(count));
    graph.root_weights_.push_back(static_cast<double>(kb.Iter1Count(pair)));
  }
  graph.out_edges_.resize(graph.nodes_.size());

  // Edges: trigger -> produced instance per live record, accumulated.
  std::unordered_map<uint64_t, double> edge_weights;
  kb.ForEachLiveRecordOfConcept(c, [&](const ExtractionRecord& record) {
    for (InstanceId t : record.triggers) {
      auto ti = graph.index_.find(t);
      if (ti == graph.index_.end()) continue;
      for (InstanceId e : record.instances) {
        if (e == t) continue;
        auto ei = graph.index_.find(e);
        if (ei == graph.index_.end()) continue;
        uint64_t key = (static_cast<uint64_t>(ti->second) << 32) |
                       static_cast<uint64_t>(ei->second);
        edge_weights[key] += 1.0;
      }
    }
  });
  for (const auto& [key, weight] : edge_weights) {
    uint32_t from = static_cast<uint32_t>(key >> 32);
    uint32_t to = static_cast<uint32_t>(key & 0xffffffffu);
    graph.out_edges_[from].emplace_back(to, weight);
  }
  // Deterministic order for reproducible walks.
  for (auto& edges : graph.out_edges_) {
    std::sort(edges.begin(), edges.end());
  }
  return graph;
}

size_t ConceptGraph::IndexOf(InstanceId e) const {
  auto it = index_.find(e);
  return it == index_.end() ? static_cast<size_t>(-1) : it->second;
}

}  // namespace semdrift
