#ifndef SEMDRIFT_DP_FEATURES_H_
#define SEMDRIFT_DP_FEATURES_H_

#include <array>
#include <vector>

#include "kb/knowledge_base.h"
#include "mutex/mutex_index.h"
#include "rank/scorers.h"
#include "text/ids.h"

namespace semdrift {

/// The four DP-detection features of Sec. 3.1, one value per property:
///   f1 — Cosine(F(sub(e)), F(E(C,1)))                  (Eq. 1)
///   f2 — |{C' : e in E(C'), C' mutex C}|               (Eq. 2)
///   f3 — score(e), the random-walk score               (Eq. 3)
///   f4 — AVG(score(sub(e)))                            (Eq. 4)
using FeatureVector = std::array<double, 4>;

/// Computes feature vectors for instances of a concept. Holds borrowed
/// views of the KB, the mutex index and a score cache; all must outlive the
/// extractor and reflect the same KB state.
class FeatureExtractor {
 public:
  FeatureExtractor(const KnowledgeBase* kb, const MutexIndex* mutex,
                   ScoreCache* scores)
      : kb_(kb), mutex_(mutex), scores_(scores) {}

  FeatureExtractor(const FeatureExtractor&) = delete;
  FeatureExtractor& operator=(const FeatureExtractor&) = delete;

  /// Features of instance `e` under concept `c`.
  FeatureVector Extract(ConceptId c, InstanceId e);

  /// Feature f1 alone (exposed for Fig. 3(a) and tests).
  double F1(ConceptId c, InstanceId e) const;

 private:
  const KnowledgeBase* kb_;
  const MutexIndex* mutex_;
  ScoreCache* scores_;
};

/// Cosine similarity between two sparse frequency distributions (instance ->
/// count). Zero when either is empty.
double SparseCosine(const std::unordered_map<InstanceId, int>& a,
                    const std::unordered_map<InstanceId, int>& b);

}  // namespace semdrift

#endif  // SEMDRIFT_DP_FEATURES_H_
