#include "net/router.h"

#include <chrono>
#include <mutex>
#include <utility>

#include "obs/metrics.h"

namespace semdrift {

namespace {

struct NetRouterMetrics {
  MetricsRegistry::Counter fanout;
  MetricsRegistry::Counter fanout_mismatch;
};

NetRouterMetrics& GetNetRouterMetrics() {
  static NetRouterMetrics metrics{
      GlobalMetrics().RegisterCounter("net.router.fanout"),
      GlobalMetrics().RegisterCounter("net.router.fanout_mismatch")};
  return metrics;
}

/// Splits a request line the same way QueryEngine tokenizes it: on tabs when
/// the line contains one, else on runs of whitespace. The router only needs
/// the verb and the first argument token — the routing key.
void SplitForRouting(std::string_view line, std::vector<std::string_view>* out) {
  out->clear();
  const bool tabs = line.find('\t') != std::string_view::npos;
  size_t i = 0;
  while (i < line.size()) {
    if (tabs) {
      size_t end = line.find('\t', i);
      if (end == std::string_view::npos) end = line.size();
      out->push_back(line.substr(i, end - i));
      i = end + 1;
    } else {
      while (i < line.size() && (line[i] == ' ' || line[i] == '\r')) ++i;
      if (i >= line.size()) break;
      size_t end = i;
      while (end < line.size() && line[end] != ' ' && line[end] != '\r') ++end;
      out->push_back(line.substr(i, end - i));
      i = end;
    }
  }
}

/// Gathers the two legs of a scattered mutex query; answers with the
/// primary (stats-recording) leg once both have completed.
struct FanoutState {
  std::mutex mu;
  std::string primary;
  std::string shadow;
  int remaining = 2;
  std::function<void(std::string)> done;
};

bool ComparableResponse(const std::string& r) {
  // Shed/shutdown/deadline responses reflect per-shard load, not snapshot
  // content; only content answers participate in the mismatch tripwire.
  return r.compare(0, 2, "OK") == 0 || r.compare(0, 9, "NOT_FOUND") == 0;
}

}  // namespace

ShardRouter::ShardRouter(const SnapshotReader* snapshot, RouterOptions options)
    : ShardRouter(snapshot, nullptr, std::move(options)) {}

ShardRouter::ShardRouter(SnapshotManager* manager, RouterOptions options)
    : ShardRouter(nullptr, manager, std::move(options)) {}

ShardRouter::ShardRouter(const SnapshotReader* snapshot, SnapshotManager* manager,
                         RouterOptions options)
    : snapshot_(snapshot),
      manager_(manager),
      options_(std::move(options)),
      ring_(options_.num_shards, options_.vnodes_per_shard) {
  // `--cache N` is a total budget: split it across shards so shard count
  // changes throughput, not memory.
  if (options_.engine.cache_capacity > 0) {
    options_.engine.cache_capacity =
        std::max<size_t>(1, options_.engine.cache_capacity / ring_.num_shards());
  }
  shards_.reserve(ring_.num_shards());
  for (uint32_t i = 0; i < ring_.num_shards(); ++i) {
    auto shard = std::make_unique<Shard>();
    if (snapshot_ != nullptr) {
      QueryEngineOptions opts = options_.engine;
      opts.shared_stats = &shard->stats;
      shard->fixed_engine = std::make_unique<QueryEngine>(snapshot_, opts);
    }
    shards_.push_back(std::move(shard));
  }
  // Batchers start after every shard exists: an EngineSource resolved by an
  // early batcher must never see a half-built shard table.
  for (uint32_t i = 0; i < ring_.num_shards(); ++i) {
    const size_t index = i;
    shards_[i]->batcher = std::make_unique<Batcher>(
        EngineSource([this, index] { return ResolveEngine(index); }),
        options_.batch);
  }
}

ShardRouter::~ShardRouter() {
  // Destroy batchers first: their drain may still resolve engines through
  // ResolveEngine, which walks shards_.
  for (auto& shard : shards_) shard->batcher.reset();
}

EnginePin ShardRouter::ResolveEngine(size_t index) {
  Shard& shard = *shards_[index];
  if (manager_ == nullptr) {
    return EnginePin{shard.fixed_engine.get(), nullptr};
  }
  std::shared_ptr<const ServingGeneration> cur = manager_->Current();
  if (cur == nullptr) return EnginePin{};
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.current == nullptr || shard.current->gen != cur) {
    // New generation: build this shard's engine over it (fresh response
    // cache — per-generation invalidation — recording into the shard's
    // swap-surviving stats). The old ShardEngine stays alive through any
    // in-flight batch's keepalive and dies with the last pin.
    auto next = std::make_shared<ShardEngine>();
    next->gen = cur;
    QueryEngineOptions opts = options_.engine;
    opts.shared_stats = &shard.stats;
    opts.generation = cur->generation;
    next->engine = std::make_unique<QueryEngine>(&cur->reader, opts);
    shard.current = std::move(next);
  }
  return EnginePin{shard.current->engine.get(), shard.current};
}

uint64_t ShardRouter::generation() const {
  return manager_ != nullptr ? manager_->generation()
                             : options_.engine.generation;
}

std::string ShardRouter::AnswerLocal(QueryType type) {
  const auto started = std::chrono::steady_clock::now();
  std::string response;
  if (type == QueryType::kStats) {
    std::vector<const ServeStats*> all;
    all.reserve(shards_.size());
    for (const auto& shard : shards_) all.push_back(&shard->stats);
    response = FormatStatsResponse(all, generation(),
                                   static_cast<int>(ring_.num_shards()));
  } else {
    response = "OK\t" + GlobalMetrics().ToJson();
  }
  const auto ended = std::chrono::steady_clock::now();
  // Mirror QueryEngine's accounting so `stats` output and counters look the
  // same whether a deployment shards or not. Recorded against shard 0; the
  // merged view sums anyway.
  shards_[0]->stats.Record(
      type,
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                ended - started)
                                .count()),
      /*cache_hit=*/false, /*error=*/false);
  return response;
}

void ShardRouter::Submit(std::string line, RequestPriority priority,
                         std::function<void(std::string)> done) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::string_view> tokens;
  SplitForRouting(line, &tokens);

  QueryType type = QueryType::kNumTypes;
  if (!tokens.empty()) {
    for (int i = 0; i < static_cast<int>(QueryType::kNumTypes); ++i) {
      if (tokens[0] == QueryTypeName(static_cast<QueryType>(i))) {
        type = static_cast<QueryType>(i);
        break;
      }
    }
  }

  // stats/metrics aggregate across shards — answered here, never by one
  // shard's engine (which would report its slice as the whole).
  if (type == QueryType::kStats || type == QueryType::kMetrics) {
    local_.fetch_add(1, std::memory_order_relaxed);
    done(AnswerLocal(type));
    return;
  }

  const std::string_view key = tokens.size() > 1 ? tokens[1] : std::string_view();
  const uint32_t owner = ring_.OwnerOf(key);
  const int deadline_ms = options_.batch.default_deadline_ms;

  // mutex <a> <b> with tab-separated args whose names hash to different
  // shards: scatter to both owners and byte-compare. Only the tab form names
  // the two concepts unambiguously (whitespace form needs snapshot-side
  // split resolution), so only it fans out.
  if (type == QueryType::kMutex && tokens.size() == 3 &&
      line.find('\t') != std::string_view::npos) {
    const uint32_t shadow_owner = ring_.OwnerOf(tokens[2]);
    if (shadow_owner != owner) {
      fanout_.fetch_add(1, std::memory_order_relaxed);
      GetNetRouterMetrics().fanout.Add();
      auto state = std::make_shared<FanoutState>();
      state->done = std::move(done);
      auto leg = [this, state](bool is_primary) {
        return [this, state, is_primary](std::string response) {
          std::function<void(std::string)> finish;
          std::string answer;
          {
            std::lock_guard<std::mutex> lock(state->mu);
            (is_primary ? state->primary : state->shadow) = std::move(response);
            if (--state->remaining > 0) return;
            if (ComparableResponse(state->primary) &&
                ComparableResponse(state->shadow) &&
                state->primary != state->shadow) {
              fanout_mismatch_.fetch_add(1, std::memory_order_relaxed);
              GetNetRouterMetrics().fanout_mismatch.Add();
            }
            finish = std::move(state->done);
            answer = state->primary;
          }
          finish(std::move(answer));
        };
      };
      // Shadow first so the primary (whose completion may answer the client)
      // can never observe remaining > 1 after both callbacks ran.
      shards_[shadow_owner]->batcher->SubmitCallback(
          line, deadline_ms, RequestPriority::kLow, leg(false),
          /*record_stats=*/false);
      shards_[owner]->batcher->SubmitCallback(std::move(line), deadline_ms,
                                              priority, leg(true));
      return;
    }
  }

  direct_.fetch_add(1, std::memory_order_relaxed);
  shards_[owner]->batcher->SubmitCallback(std::move(line), deadline_ms, priority,
                                          std::move(done));
}

RouterStats ShardRouter::Snapshot() const {
  RouterStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.direct = direct_.load(std::memory_order_relaxed);
  stats.fanout = fanout_.load(std::memory_order_relaxed);
  stats.fanout_mismatch = fanout_mismatch_.load(std::memory_order_relaxed);
  stats.local = local_.load(std::memory_order_relaxed);
  return stats;
}

void ShardRouter::PauseAll() {
  for (auto& shard : shards_) shard->batcher->Pause();
}

void ShardRouter::ResumeAll() {
  for (auto& shard : shards_) shard->batcher->Resume();
}

}  // namespace semdrift
