# Empty compiler generated dependencies file for semdrift_dp.
# This may be replaced when dependencies are built.
