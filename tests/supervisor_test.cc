#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "util/cancellation.h"
#include "util/fault_injection.h"
#include "util/supervisor.h"
#include "util/thread_pool.h"

namespace semdrift {
namespace {

// ---------------------------------------------------------------------------
// Cancellation primitives.

TEST(CancellationTest, NoTokenMeansPollIsANoOp) {
  EXPECT_EQ(CancellationToken::Current(), nullptr);
  EXPECT_NO_THROW(PollCancellation("nowhere"));
}

TEST(CancellationTest, ExplicitCancelTripsThePoll) {
  CancellationToken token;
  ScopedCancellation scoped(&token);
  EXPECT_EQ(CancellationToken::Current(), &token);
  EXPECT_NO_THROW(PollCancellation("before cancel"));
  token.Cancel();
  EXPECT_THROW(PollCancellation("after cancel"), StageCancelledError);
}

TEST(CancellationTest, DeadlineTripsThePoll) {
  CancellationToken token;
  token.ArmDeadline(std::chrono::milliseconds(1));
  ScopedCancellation scoped(&token);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_THROW(PollCancellation("past deadline"), StageCancelledError);
}

TEST(CancellationTest, NonPositiveDeadlineDisarms) {
  CancellationToken token;
  token.ArmDeadline(std::chrono::milliseconds(1));
  token.ArmDeadline(std::chrono::milliseconds(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  EXPECT_FALSE(token.ShouldStop());
}

TEST(CancellationTest, ScopesNestAndRestore) {
  CancellationToken outer;
  CancellationToken inner;
  {
    ScopedCancellation a(&outer);
    {
      ScopedCancellation b(&inner);
      EXPECT_EQ(CancellationToken::Current(), &inner);
    }
    EXPECT_EQ(CancellationToken::Current(), &outer);
  }
  EXPECT_EQ(CancellationToken::Current(), nullptr);
}

TEST(CancellationTest, ThreadPoolForwardsTheSubmittersToken) {
  CancellationToken token;
  ScopedCancellation scoped(&token);
  ThreadPool pool(4);
  std::atomic<int> saw_token{0};
  pool.ParallelFor(16, [&](size_t) {
    if (CancellationToken::Current() == &token) saw_token.fetch_add(1);
  });
  EXPECT_EQ(saw_token.load(), 16);
}

TEST(CancellationTest, CancelledTokenStopsPoolWorkViaPoll) {
  CancellationToken token;
  token.Cancel();
  ScopedCancellation scoped(&token);
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(8, [&](size_t) { PollCancellation("pool body"); }),
      StageCancelledError);
}

// ---------------------------------------------------------------------------
// Fault plans.

TEST(ComputeFaultPlanTest, DisabledPlanFaultsNothing) {
  ComputeFaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  for (uint32_t c = 0; c < 64; ++c) {
    EXPECT_FALSE(plan.ConceptFaulted(c));
    EXPECT_FALSE(plan.FaultFor(PipelineStage::kScoreWarm, c, 0).has_value());
  }
}

TEST(ComputeFaultPlanTest, RateOneFaultsEverything) {
  ComputeFaultPlan plan;
  plan.seed = 7;
  plan.rate = 1.0;
  for (uint32_t c = 0; c < 64; ++c) EXPECT_TRUE(plan.ConceptFaulted(c));
}

TEST(ComputeFaultPlanTest, DeterministicInSeedAndIndependentOfOrder) {
  ComputeFaultPlan a;
  a.seed = 2014;
  a.rate = 0.1;
  ComputeFaultPlan b = a;
  std::vector<uint32_t> universe;
  for (uint32_t c = 0; c < 200; ++c) universe.push_back(c);
  std::vector<uint32_t> faulted = a.FaultedAmong(universe);
  EXPECT_EQ(faulted, b.FaultedAmong(universe));
  EXPECT_FALSE(faulted.empty());
  EXPECT_LT(faulted.size(), universe.size() / 2);
  // Membership is per-concept, not positional: reversing the universe
  // selects the same concepts.
  std::vector<uint32_t> reversed(universe.rbegin(), universe.rend());
  std::vector<uint32_t> faulted_rev = b.FaultedAmong(reversed);
  std::vector<uint32_t> faulted_rev_sorted(faulted_rev.rbegin(), faulted_rev.rend());
  EXPECT_EQ(faulted, faulted_rev_sorted);
}

TEST(ComputeFaultPlanTest, StageTargetingAndTransientCutoff) {
  ComputeFaultPlan plan;
  plan.seed = 5;
  plan.rate = 1.0;
  plan.stages = {PipelineStage::kCollectTraining};
  plan.transient_attempts = 2;
  EXPECT_FALSE(plan.FaultFor(PipelineStage::kScoreWarm, 3, 0).has_value());
  EXPECT_TRUE(plan.FaultFor(PipelineStage::kCollectTraining, 3, 0).has_value());
  EXPECT_TRUE(plan.FaultFor(PipelineStage::kCollectTraining, 3, 1).has_value());
  // Attempt `transient_attempts` succeeds: the fault has cleared.
  EXPECT_FALSE(plan.FaultFor(PipelineStage::kCollectTraining, 3, 2).has_value());
}

TEST(ComputeFaultPlanTest, StageAndKindNamesRoundTrip) {
  for (PipelineStage stage :
       {PipelineStage::kScoreWarm, PipelineStage::kCollectTraining,
        PipelineStage::kDetectorTrain, PipelineStage::kDetectorScore}) {
    PipelineStage parsed;
    ASSERT_TRUE(ParsePipelineStage(PipelineStageName(stage), &parsed));
    EXPECT_EQ(parsed, stage);
  }
  for (ComputeFaultKind kind : AllComputeFaultKinds()) {
    ComputeFaultKind parsed;
    ASSERT_TRUE(ParseComputeFaultKind(ComputeFaultKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  PipelineStage stage;
  EXPECT_FALSE(ParsePipelineStage("bogus", &stage));
  ComputeFaultKind kind;
  EXPECT_FALSE(ParseComputeFaultKind("bogus", &kind));
}

// ---------------------------------------------------------------------------
// The guarded attempt loop.

TEST(SupervisorTest, HappyPathRunsTheBodyOnce) {
  Supervisor supervisor(SupervisorOptions{});
  int calls = 0;
  int value = 0;
  StageOutcome outcome;
  bool ok = supervisor.RunGuarded<int>(
      PipelineStage::kScoreWarm, 1,
      [&](int attempt) {
        ++calls;
        EXPECT_EQ(attempt, 0);
        return 42;
      },
      nullptr, &value, &outcome);
  EXPECT_TRUE(ok);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(value, 42);
  EXPECT_EQ(outcome.retries, 0);
  EXPECT_TRUE(supervisor.MergeOutcome(PipelineStage::kScoreWarm, 1, outcome).ok());
  EXPECT_TRUE(supervisor.health()->empty());
}

TEST(SupervisorTest, TransientThrowRetriesThenSucceeds) {
  SupervisorOptions options;
  options.max_retries = 2;
  options.backoff_base_ms = 0;
  Supervisor supervisor(options);
  int value = 0;
  StageOutcome outcome;
  bool ok = supervisor.RunGuarded<int>(
      PipelineStage::kScoreWarm, 9,
      [&](int attempt) {
        if (attempt == 0) throw std::runtime_error("transient glitch");
        return 7;
      },
      nullptr, &value, &outcome);
  EXPECT_TRUE(ok);
  EXPECT_EQ(value, 7);
  EXPECT_EQ(outcome.retries, 1);
  EXPECT_EQ(outcome.error, "transient glitch");
  ASSERT_TRUE(supervisor.MergeOutcome(PipelineStage::kScoreWarm, 9, outcome).ok());
  EXPECT_EQ(supervisor.health()->CountWithOutcome(ConceptOutcome::kRetried), 1u);
  EXPECT_FALSE(supervisor.IsQuarantined(9));
}

TEST(SupervisorTest, ValidationFailureCountsAsAFailedAttempt) {
  SupervisorOptions options;
  options.max_retries = 1;
  options.backoff_base_ms = 0;
  Supervisor supervisor(options);
  int value = -1;
  StageOutcome outcome;
  bool ok = supervisor.RunGuarded<int>(
      PipelineStage::kDetectorScore, 4, [](int) { return 13; },
      [](const int& v) { return v == 13 ? "unlucky output" : ""; }, &value,
      &outcome);
  EXPECT_FALSE(ok);
  EXPECT_EQ(value, -1);  // Output untouched on exhaustion.
  EXPECT_EQ(outcome.error, "unlucky output");
  ASSERT_TRUE(
      supervisor.MergeOutcome(PipelineStage::kDetectorScore, 4, outcome).ok());
  EXPECT_TRUE(supervisor.IsQuarantined(4));
  EXPECT_EQ(supervisor.health()->Quarantined(), std::vector<uint32_t>{4});
}

TEST(SupervisorTest, QuarantineOffTurnsExhaustionIntoAnError) {
  SupervisorOptions options;
  options.max_retries = 0;
  options.quarantine = false;
  Supervisor supervisor(options);
  int value = 0;
  StageOutcome outcome;
  bool ok = supervisor.RunGuarded<int>(
      PipelineStage::kScoreWarm, 2,
      [](int) -> int { throw std::runtime_error("persistent"); }, nullptr,
      &value, &outcome);
  EXPECT_FALSE(ok);
  Status merged = supervisor.MergeOutcome(PipelineStage::kScoreWarm, 2, outcome);
  EXPECT_FALSE(merged.ok());
  EXPECT_NE(merged.message().find("persistent"), std::string::npos);
}

TEST(SupervisorTest, StallFaultIsCancelledAtTheDeadline) {
  SupervisorOptions options;
  options.stage_deadline_ms = 20;
  options.max_retries = 1;
  options.backoff_base_ms = 0;
  ComputeFaultPlan plan;
  plan.seed = 11;
  plan.rate = 1.0;
  plan.kinds = {ComputeFaultKind::kStall};
  plan.stages = {PipelineStage::kScoreWarm};
  Supervisor supervisor(options, plan);
  int calls = 0;
  int value = 0;
  StageOutcome outcome;
  bool ok = supervisor.RunGuarded<int>(
      PipelineStage::kScoreWarm, 6,
      [&](int) {
        ++calls;
        return 1;
      },
      nullptr, &value, &outcome);
  EXPECT_FALSE(ok);
  EXPECT_EQ(calls, 0);  // The stall fires before the body.
  EXPECT_TRUE(outcome.cancelled);
  ASSERT_TRUE(supervisor.MergeOutcome(PipelineStage::kScoreWarm, 6, outcome).ok());
  EXPECT_TRUE(supervisor.IsQuarantined(6));
}

TEST(SupervisorTest, ThrowFaultClearsAfterTransientAttempts) {
  SupervisorOptions options;
  options.max_retries = 2;
  options.backoff_base_ms = 0;
  ComputeFaultPlan plan;
  plan.seed = 3;
  plan.rate = 1.0;
  plan.kinds = {ComputeFaultKind::kThrow};
  plan.stages = {PipelineStage::kCollectTraining};
  plan.transient_attempts = 1;
  Supervisor supervisor(options, plan);
  int value = 0;
  StageOutcome outcome;
  bool ok = supervisor.RunGuarded<int>(
      PipelineStage::kCollectTraining, 8, [](int) { return 5; }, nullptr,
      &value, &outcome);
  EXPECT_TRUE(ok);
  EXPECT_EQ(value, 5);
  EXPECT_EQ(outcome.retries, 1);
}

TEST(SupervisorTest, SurvivingFiltersQuarantinedIds) {
  struct FakeId {
    uint32_t value;
  };
  Supervisor supervisor(SupervisorOptions{});
  supervisor.health()->Record(2, ConceptOutcome::kQuarantined, 3,
                              PipelineStage::kScoreWarm, "dead");
  std::vector<FakeId> scope = {{1}, {2}, {3}};
  std::vector<FakeId> live = supervisor.Surviving(scope);
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0].value, 1u);
  EXPECT_EQ(live[1].value, 3u);
}

TEST(SupervisorTest, FirstNonFiniteIndexFindsNanAndInf) {
  std::vector<double> clean = {0.0, 1.5, -3.0};
  EXPECT_EQ(FirstNonFiniteIndex(clean), -1);
  std::vector<double> with_nan = {0.0, std::nan(""), 1.0};
  EXPECT_EQ(FirstNonFiniteIndex(with_nan), 1);
  std::vector<double> with_inf = {std::numeric_limits<double>::infinity()};
  EXPECT_EQ(FirstNonFiniteIndex(with_inf), 0);
}

// ---------------------------------------------------------------------------
// Health report bookkeeping and serialization.

TEST(RunHealthReportTest, OutcomesEscalateAndNeverDowngrade) {
  RunHealthReport report;
  report.Record(5, ConceptOutcome::kRetried, 1, PipelineStage::kScoreWarm, "r");
  report.Record(5, ConceptOutcome::kDegraded, 0, PipelineStage::kCollectTraining,
                "d");
  EXPECT_EQ(report.concepts().at(5).outcome, ConceptOutcome::kDegraded);
  // A later, milder observation does not downgrade.
  report.Record(5, ConceptOutcome::kRetried, 2, PipelineStage::kDetectorScore, "r2");
  EXPECT_EQ(report.concepts().at(5).outcome, ConceptOutcome::kDegraded);
  report.Record(5, ConceptOutcome::kQuarantined, 3, PipelineStage::kDetectorScore,
                "q");
  EXPECT_TRUE(report.IsQuarantined(5));
}

TEST(RunHealthReportTest, DropsDeduplicateAndDegradeTheConcept) {
  RunHealthReport report;
  DroppedInstance drop;
  drop.concept_id = 7;
  drop.instance = 100;
  drop.stage = PipelineStage::kCollectTraining;
  drop.reason = "non-finite feature f0";
  report.RecordDrop(drop);
  report.RecordDrop(drop);
  EXPECT_EQ(report.num_drops(), 1u);
  EXPECT_EQ(report.concepts().at(7).outcome, ConceptOutcome::kDegraded);
}

TEST(RunHealthReportTest, LinesRoundTrip) {
  RunHealthReport report;
  report.Record(3, ConceptOutcome::kQuarantined, 2, PipelineStage::kScoreWarm,
                "walk exploded\twith a tab");
  report.Record(9, ConceptOutcome::kRetried, 1, PipelineStage::kDetectorScore,
                "flaky");
  DroppedInstance drop;
  drop.concept_id = 3;
  drop.instance = 44;
  drop.reason = "nan";
  report.RecordDrop(drop);
  report.RecordDetectorFallback(1, "fell back to ad-hoc-3");

  RunHealthReport merged;
  for (const std::string& line : report.ToLines()) {
    ASSERT_TRUE(merged.MergeLine(line, "test").ok()) << line;
  }
  EXPECT_EQ(report, merged);
  EXPECT_TRUE(merged.IsQuarantined(3));
  EXPECT_TRUE(merged.detector_fallback());
}

TEST(RunHealthReportTest, MalformedLinesAreDataLoss) {
  RunHealthReport report;
  for (const std::string& bad :
       {std::string("H\tnot-a-number\tok\t0\twarm\tx"),
        std::string("H\t1\tbogus-outcome\t0\twarm\tx"),
        std::string("H\t1\tok\t0\tbogus-stage\tx"), std::string("Z\t1"),
        std::string("H\t1")}) {
    Status s = report.MergeLine(bad, "ctx");
    EXPECT_FALSE(s.ok()) << bad;
    EXPECT_EQ(s.code(), Status::Code::kDataLoss) << bad;
    EXPECT_NE(s.message().find("ctx"), std::string::npos) << bad;
  }
}

TEST(RunHealthReportTest, EmptyReportHasNoLines) {
  RunHealthReport report;
  EXPECT_TRUE(report.empty());
  EXPECT_TRUE(report.ToLines().empty());
}

}  // namespace
}  // namespace semdrift
