#include "scenario/scenario.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/fault_injection.h"
#include "util/string_util.h"

namespace semdrift {
namespace scenario {

namespace {

/// Shortest decimal that round-trips the exact double — "0.29" stays
/// "0.29", never "0.28999999999999998". Byte-exact write->parse->write is
/// what the shrinker's bit-identical-output promise rests on.
std::string FmtDouble(double v) {
  char buf[64];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;  // 64 bytes always suffice for a double.
  return std::string(buf, end);
}

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

Status Unquote(const std::string& raw, std::string* out) {
  if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"') {
    return Status::InvalidArgument("expected a quoted string, got: " + raw);
  }
  out->clear();
  for (size_t i = 1; i + 1 < raw.size(); ++i) {
    char c = raw[i];
    if (c == '\\') {
      if (i + 1 >= raw.size() - 1) {  // Escaped char would be the closing quote.
        return Status::InvalidArgument("dangling escape in: " + raw);
      }
      ++i;
      switch (raw[i]) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case 'n': out->push_back('\n'); break;
        default:
          return Status::InvalidArgument("unknown escape in: " + raw);
      }
    } else if (c == '"') {
      return Status::InvalidArgument("unescaped quote inside: " + raw);
    } else {
      out->push_back(c);
    }
  }
  return Status::OK();
}

std::string QuoteList(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += Quote(items[i]);
  }
  out += "]";
  return out;
}

Status UnquoteList(const std::string& raw, std::vector<std::string>* out) {
  std::string t = Trim(raw);
  if (t.size() < 2 || t.front() != '[' || t.back() != ']') {
    return Status::InvalidArgument("expected a [\"...\"] array, got: " + raw);
  }
  out->clear();
  std::string inner = Trim(t.substr(1, t.size() - 2));
  if (inner.empty()) return Status::OK();
  // Items are quoted strings without embedded commas (fault kind/stage
  // names), so a comma split suffices.
  for (const std::string& part : Split(inner, ',')) {
    std::string item;
    if (Status s = Unquote(Trim(part), &item); !s.ok()) return s;
    out->push_back(std::move(item));
  }
  return Status::OK();
}

Status SetDouble(const std::string& v, double* out) {
  if (!ParseDouble(v, out)) {
    return Status::InvalidArgument("bad float: " + v);
  }
  return Status::OK();
}

Status SetInt(const std::string& v, int* out) {
  int64_t wide = 0;
  if (!ParseIntInRange(v, INT32_MIN, INT32_MAX, &wide)) {
    return Status::InvalidArgument("bad integer: " + v);
  }
  *out = static_cast<int>(wide);
  return Status::OK();
}

Status SetUint64(const std::string& v, uint64_t* out) {
  if (!ParseUint64(v, out)) {
    return Status::InvalidArgument("bad unsigned integer: " + v);
  }
  return Status::OK();
}

Status SetBool(const std::string& v, bool* out) {
  if (v == "true") { *out = true; return Status::OK(); }
  if (v == "false") { *out = false; return Status::OK(); }
  return Status::InvalidArgument("bad bool (want true/false): " + v);
}

Status SetOptDouble(const std::string& v, std::optional<double>* out) {
  double parsed = 0.0;
  if (Status s = SetDouble(v, &parsed); !s.ok()) return s;
  *out = parsed;
  return Status::OK();
}

Status SetOptInt64(const std::string& v, std::optional<int64_t>* out) {
  int64_t parsed = 0;
  if (!ParseInt64(v, &parsed)) {
    return Status::InvalidArgument("bad integer: " + v);
  }
  *out = parsed;
  return Status::OK();
}

Status InRange01(double v, const char* field) {
  if (!(v >= 0.0 && v <= 1.0)) {
    return Status::InvalidArgument(std::string(field) + " must be in [0, 1]");
  }
  return Status::OK();
}

}  // namespace

Status ValidateScenario(const Scenario& s) {
  if (s.name.empty()) {
    return Status::InvalidArgument("scenario name must be non-empty");
  }
  for (char c : s.name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) {
      return Status::InvalidArgument(
          "scenario name must be a safe file stem ([A-Za-z0-9._-]): " + s.name);
    }
  }
  if (s.num_eval_concepts < 1) {
    return Status::InvalidArgument("num_eval_concepts must be >= 1");
  }
  if (Status st = ValidateWorldSpec(s.world); !st.ok()) return st;
  if (Status st = ValidateCorpusSpec(s.corpus); !st.ok()) return st;

  const ScenarioPipeline& p = s.pipeline;
  if (p.max_iterations < 1) {
    return Status::InvalidArgument("pipeline.max_iterations must be >= 1");
  }
  if (p.max_rounds < 0) {
    return Status::InvalidArgument("pipeline.max_rounds must be >= 0");
  }
  if (Status st = InRange01(p.mutex_threshold, "pipeline.mutex_threshold"); !st.ok()) return st;
  if (Status st = InRange01(p.similar_threshold, "pipeline.similar_threshold"); !st.ok()) return st;
  if (p.mutex_threshold > p.similar_threshold) {
    return Status::InvalidArgument(
        "pipeline.mutex_threshold must be <= similar_threshold");
  }
  if (p.min_core_instances < 1) {
    return Status::InvalidArgument("pipeline.min_core_instances must be >= 1");
  }
  if (p.frequency_threshold_k < 0) {
    return Status::InvalidArgument("pipeline.frequency_threshold_k must be >= 0");
  }
  if (Status st = InRange01(p.eq21_min_average_vote, "pipeline.eq21_min_average_vote");
      !st.ok()) {
    return st;
  }

  const ScenarioStream& stream = s.stream;
  if (stream.epochs < 1) {
    return Status::InvalidArgument("stream.epochs must be >= 1");
  }
  if (stream.full_rebuild_every < 0) {
    return Status::InvalidArgument("stream.full_rebuild_every must be >= 0");
  }
  if (Status st = InRange01(stream.rebuild_dirty_frac, "stream.rebuild_dirty_frac");
      !st.ok()) {
    return st;
  }

  const ScenarioFaults& f = s.faults;
  if (Status st = InRange01(f.rate, "faults.rate"); !st.ok()) return st;
  if (f.transient_attempts < 0) {
    return Status::InvalidArgument("faults.transient_attempts must be >= 0");
  }
  if (f.max_retries < 0) {
    return Status::InvalidArgument("faults.max_retries must be >= 0");
  }
  for (const std::string& kind : f.kinds) {
    ComputeFaultKind parsed;
    if (!ParseComputeFaultKind(kind, &parsed)) {
      return Status::InvalidArgument("unknown fault kind: " + kind);
    }
    if (parsed == ComputeFaultKind::kStall && f.stage_deadline_ms <= 0) {
      return Status::InvalidArgument(
          "faults.kinds includes \"stall\" but no stage_deadline_ms to cancel it");
    }
  }
  for (const std::string& stage : f.stages) {
    PipelineStage parsed;
    if (!ParsePipelineStage(stage, &parsed)) {
      return Status::InvalidArgument("unknown pipeline stage: " + stage);
    }
  }

  const ScenarioEnvelope& e = s.envelope;
  auto check_opt01 = [](const std::optional<double>& v, const char* field) {
    return v.has_value() ? InRange01(*v, field) : Status::OK();
  };
  if (Status st = check_opt01(e.min_precision_before, "envelope.min_precision_before");
      !st.ok()) {
    return st;
  }
  if (Status st = check_opt01(e.min_precision_after, "envelope.min_precision_after");
      !st.ok()) {
    return st;
  }
  if (Status st = check_opt01(e.max_precision_after, "envelope.max_precision_after");
      !st.ok()) {
    return st;
  }
  if (Status st = check_opt01(e.min_pcorr, "envelope.min_pcorr"); !st.ok()) return st;
  if (Status st = check_opt01(e.min_rerror, "envelope.min_rerror"); !st.ok()) return st;
  if (Status st = check_opt01(e.max_stream_divergence, "envelope.max_stream_divergence");
      !st.ok()) {
    return st;
  }
  if (e.max_stream_divergence.has_value() && s.stream.epochs < 2) {
    return Status::InvalidArgument(
        "envelope.max_stream_divergence requires stream.epochs >= 2");
  }
  if (e.min_precision_after.has_value() && e.max_precision_after.has_value() &&
      *e.min_precision_after > *e.max_precision_after) {
    return Status::InvalidArgument(
        "envelope.min_precision_after must be <= max_precision_after");
  }
  auto check_nonneg = [](const std::optional<int64_t>& v, const char* field) {
    if (v.has_value() && *v < 0) {
      return Status::InvalidArgument(std::string(field) + " must be >= 0");
    }
    return Status::OK();
  };
  if (Status st = check_nonneg(e.min_live_pairs_after, "envelope.min_live_pairs_after");
      !st.ok()) {
    return st;
  }
  if (Status st = check_nonneg(e.max_rounds, "envelope.max_rounds"); !st.ok()) return st;
  if (Status st = check_nonneg(e.max_records_rolled_back,
                               "envelope.max_records_rolled_back");
      !st.ok()) {
    return st;
  }
  if (Status st = check_nonneg(e.max_quarantined, "envelope.max_quarantined"); !st.ok()) {
    return st;
  }
  return Status::OK();
}

std::string ScenarioToToml(const Scenario& s) {
  std::string out;
  auto line = [&out](const std::string& text) { out += text; out += '\n'; };
  line("# semdrift adversarial scenario (see DESIGN.md §13)");
  line("[scenario]");
  line("name = " + Quote(s.name));
  line("archetype = " + Quote(s.archetype));
  line("notes = " + Quote(s.notes));
  line("seed = " + std::to_string(s.seed));
  line("num_eval_concepts = " + std::to_string(s.num_eval_concepts));
  line("paper_named_concepts = " + std::string(s.paper_named_concepts ? "true" : "false"));
  line("");
  line("[world]");
  line("num_concepts = " + std::to_string(s.world.num_concepts));
  line("min_instances = " + std::to_string(s.world.min_instances));
  line("max_instances = " + std::to_string(s.world.max_instances));
  line("popularity_zipf = " + FmtDouble(s.world.popularity_zipf));
  line("polysemy_rate = " + FmtDouble(s.world.polysemy_rate));
  line("similar_twin_rate = " + FmtDouble(s.world.similar_twin_rate));
  line("twin_overlap = " + FmtDouble(s.world.twin_overlap));
  line("min_confusables = " + std::to_string(s.world.min_confusables));
  line("max_confusables = " + std::to_string(s.world.max_confusables));
  line("verified_fraction = " + FmtDouble(s.world.verified_fraction));
  line("morph_variant_rate = " + FmtDouble(s.world.morph_variant_rate));
  line("");
  line("[corpus]");
  line("num_sentences = " + std::to_string(s.corpus.num_sentences));
  line("frac_ambiguous = " + FmtDouble(s.corpus.frac_ambiguous));
  line("polyseme_link_prob = " + FmtDouble(s.corpus.polyseme_link_prob));
  line("misparse_rate = " + FmtDouble(s.corpus.misparse_rate));
  line("misparse_late_frac = " + FmtDouble(s.corpus.misparse_late_frac));
  line("wrongfact_rate = " + FmtDouble(s.corpus.wrongfact_rate));
  line("min_list = " + std::to_string(s.corpus.min_list));
  line("max_list = " + std::to_string(s.corpus.max_list));
  line("concept_zipf = " + FmtDouble(s.corpus.concept_zipf));
  line("ambiguous_uniform_prob = " + FmtDouble(s.corpus.ambiguous_uniform_prob));
  line("other_than_prob = " + FmtDouble(s.corpus.other_than_prob));
  line("render_text = " + std::string(s.corpus.render_text ? "true" : "false"));
  line("");
  line("[pipeline]");
  line("max_iterations = " + std::to_string(s.pipeline.max_iterations));
  line("max_rounds = " + std::to_string(s.pipeline.max_rounds));
  line("mutex_threshold = " + FmtDouble(s.pipeline.mutex_threshold));
  line("similar_threshold = " + FmtDouble(s.pipeline.similar_threshold));
  line("min_core_instances = " + std::to_string(s.pipeline.min_core_instances));
  line("frequency_threshold_k = " + std::to_string(s.pipeline.frequency_threshold_k));
  line("eq21_gate_accidental = " +
       std::string(s.pipeline.eq21_gate_accidental ? "true" : "false"));
  line("eq21_min_average_vote = " + FmtDouble(s.pipeline.eq21_min_average_vote));
  line("clean = " + std::string(s.pipeline.clean ? "true" : "false"));
  line("serialize_roundtrip = " +
       std::string(s.pipeline.serialize_roundtrip ? "true" : "false"));
  line("");
  // [stream] is optional: omitted entirely for pure-batch scenarios so every
  // pre-streaming scenario file keeps re-serializing byte-identically.
  const ScenarioStream kDefaultStream;
  if (s.stream.epochs != kDefaultStream.epochs ||
      s.stream.full_rebuild_every != kDefaultStream.full_rebuild_every ||
      s.stream.final_full_rebuild != kDefaultStream.final_full_rebuild ||
      s.stream.rebuild_dirty_frac != kDefaultStream.rebuild_dirty_frac) {
    line("[stream]");
    line("epochs = " + std::to_string(s.stream.epochs));
    line("full_rebuild_every = " + std::to_string(s.stream.full_rebuild_every));
    line("final_full_rebuild = " +
         std::string(s.stream.final_full_rebuild ? "true" : "false"));
    line("rebuild_dirty_frac = " + FmtDouble(s.stream.rebuild_dirty_frac));
    line("");
  }
  line("[faults]");
  line("rate = " + FmtDouble(s.faults.rate));
  line("seed = " + std::to_string(s.faults.seed));
  line("kinds = " + QuoteList(s.faults.kinds));
  line("stages = " + QuoteList(s.faults.stages));
  line("transient_attempts = " + std::to_string(s.faults.transient_attempts));
  line("max_retries = " + std::to_string(s.faults.max_retries));
  line("quarantine = " + std::string(s.faults.quarantine ? "true" : "false"));
  line("stage_deadline_ms = " + std::to_string(s.faults.stage_deadline_ms));
  line("");
  line("[envelope]");
  auto opt_double = [&](const char* key, const std::optional<double>& v) {
    if (v.has_value()) line(std::string(key) + " = " + FmtDouble(*v));
  };
  auto opt_int = [&](const char* key, const std::optional<int64_t>& v) {
    if (v.has_value()) line(std::string(key) + " = " + std::to_string(*v));
  };
  opt_double("min_precision_before", s.envelope.min_precision_before);
  opt_double("min_precision_after", s.envelope.min_precision_after);
  opt_double("max_precision_after", s.envelope.max_precision_after);
  opt_double("min_pcorr", s.envelope.min_pcorr);
  opt_double("min_rerror", s.envelope.min_rerror);
  opt_double("max_stream_divergence", s.envelope.max_stream_divergence);
  opt_int("min_live_pairs_after", s.envelope.min_live_pairs_after);
  opt_int("max_rounds", s.envelope.max_rounds);
  opt_int("max_records_rolled_back", s.envelope.max_records_rolled_back);
  opt_int("max_quarantined", s.envelope.max_quarantined);
  return out;
}

Result<Scenario> ScenarioFromToml(const std::string& text) {
  Scenario s;
  std::string section;
  int line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string t = Trim(raw);
    if (t.empty() || t[0] == '#') continue;
    auto fail = [&](const std::string& why) {
      return Status::InvalidArgument("scenario toml line " +
                                     std::to_string(line_no) + ": " + why);
    };
    if (t.front() == '[') {
      if (t.back() != ']') return fail("malformed section header: " + t);
      section = t.substr(1, t.size() - 2);
      if (section != "scenario" && section != "world" && section != "corpus" &&
          section != "pipeline" && section != "stream" && section != "faults" &&
          section != "envelope") {
        return fail("unknown section [" + section + "]");
      }
      continue;
    }
    size_t eq = t.find('=');
    if (eq == std::string::npos) return fail("expected key = value, got: " + t);
    std::string key = Trim(t.substr(0, eq));
    std::string value = Trim(t.substr(eq + 1));
    if (section.empty()) return fail("key before any [section]: " + key);

    Status st = Status::OK();
    bool known = true;
    if (section == "scenario") {
      if (key == "name") st = Unquote(value, &s.name);
      else if (key == "archetype") st = Unquote(value, &s.archetype);
      else if (key == "notes") st = Unquote(value, &s.notes);
      else if (key == "seed") st = SetUint64(value, &s.seed);
      else if (key == "num_eval_concepts") st = SetInt(value, &s.num_eval_concepts);
      else if (key == "paper_named_concepts") st = SetBool(value, &s.paper_named_concepts);
      else known = false;
    } else if (section == "world") {
      WorldSpec& w = s.world;
      if (key == "num_concepts") st = SetInt(value, &w.num_concepts);
      else if (key == "min_instances") st = SetInt(value, &w.min_instances);
      else if (key == "max_instances") st = SetInt(value, &w.max_instances);
      else if (key == "popularity_zipf") st = SetDouble(value, &w.popularity_zipf);
      else if (key == "polysemy_rate") st = SetDouble(value, &w.polysemy_rate);
      else if (key == "similar_twin_rate") st = SetDouble(value, &w.similar_twin_rate);
      else if (key == "twin_overlap") st = SetDouble(value, &w.twin_overlap);
      else if (key == "min_confusables") st = SetInt(value, &w.min_confusables);
      else if (key == "max_confusables") st = SetInt(value, &w.max_confusables);
      else if (key == "verified_fraction") st = SetDouble(value, &w.verified_fraction);
      else if (key == "morph_variant_rate") st = SetDouble(value, &w.morph_variant_rate);
      else known = false;
    } else if (section == "corpus") {
      CorpusSpec& c = s.corpus;
      if (key == "num_sentences") st = SetInt(value, &c.num_sentences);
      else if (key == "frac_ambiguous") st = SetDouble(value, &c.frac_ambiguous);
      else if (key == "polyseme_link_prob") st = SetDouble(value, &c.polyseme_link_prob);
      else if (key == "misparse_rate") st = SetDouble(value, &c.misparse_rate);
      else if (key == "misparse_late_frac") st = SetDouble(value, &c.misparse_late_frac);
      else if (key == "wrongfact_rate") st = SetDouble(value, &c.wrongfact_rate);
      else if (key == "min_list") st = SetInt(value, &c.min_list);
      else if (key == "max_list") st = SetInt(value, &c.max_list);
      else if (key == "concept_zipf") st = SetDouble(value, &c.concept_zipf);
      else if (key == "ambiguous_uniform_prob") st = SetDouble(value, &c.ambiguous_uniform_prob);
      else if (key == "other_than_prob") st = SetDouble(value, &c.other_than_prob);
      else if (key == "render_text") st = SetBool(value, &c.render_text);
      else known = false;
    } else if (section == "pipeline") {
      ScenarioPipeline& p = s.pipeline;
      if (key == "max_iterations") st = SetInt(value, &p.max_iterations);
      else if (key == "max_rounds") st = SetInt(value, &p.max_rounds);
      else if (key == "mutex_threshold") st = SetDouble(value, &p.mutex_threshold);
      else if (key == "similar_threshold") st = SetDouble(value, &p.similar_threshold);
      else if (key == "min_core_instances") st = SetInt(value, &p.min_core_instances);
      else if (key == "frequency_threshold_k") st = SetInt(value, &p.frequency_threshold_k);
      else if (key == "eq21_gate_accidental") st = SetBool(value, &p.eq21_gate_accidental);
      else if (key == "eq21_min_average_vote") st = SetDouble(value, &p.eq21_min_average_vote);
      else if (key == "clean") st = SetBool(value, &p.clean);
      else if (key == "serialize_roundtrip") st = SetBool(value, &p.serialize_roundtrip);
      else known = false;
    } else if (section == "stream") {
      ScenarioStream& sp = s.stream;
      if (key == "epochs") st = SetInt(value, &sp.epochs);
      else if (key == "full_rebuild_every") st = SetInt(value, &sp.full_rebuild_every);
      else if (key == "final_full_rebuild") st = SetBool(value, &sp.final_full_rebuild);
      else if (key == "rebuild_dirty_frac") st = SetDouble(value, &sp.rebuild_dirty_frac);
      else known = false;
    } else if (section == "faults") {
      ScenarioFaults& f = s.faults;
      if (key == "rate") st = SetDouble(value, &f.rate);
      else if (key == "seed") st = SetUint64(value, &f.seed);
      else if (key == "kinds") st = UnquoteList(value, &f.kinds);
      else if (key == "stages") st = UnquoteList(value, &f.stages);
      else if (key == "transient_attempts") st = SetInt(value, &f.transient_attempts);
      else if (key == "max_retries") st = SetInt(value, &f.max_retries);
      else if (key == "quarantine") st = SetBool(value, &f.quarantine);
      else if (key == "stage_deadline_ms") st = SetInt(value, &f.stage_deadline_ms);
      else known = false;
    } else if (section == "envelope") {
      ScenarioEnvelope& e = s.envelope;
      if (key == "min_precision_before") st = SetOptDouble(value, &e.min_precision_before);
      else if (key == "min_precision_after") st = SetOptDouble(value, &e.min_precision_after);
      else if (key == "max_precision_after") st = SetOptDouble(value, &e.max_precision_after);
      else if (key == "min_pcorr") st = SetOptDouble(value, &e.min_pcorr);
      else if (key == "min_rerror") st = SetOptDouble(value, &e.min_rerror);
      else if (key == "max_stream_divergence") st = SetOptDouble(value, &e.max_stream_divergence);
      else if (key == "min_live_pairs_after") st = SetOptInt64(value, &e.min_live_pairs_after);
      else if (key == "max_rounds") st = SetOptInt64(value, &e.max_rounds);
      else if (key == "max_records_rolled_back") st = SetOptInt64(value, &e.max_records_rolled_back);
      else if (key == "max_quarantined") st = SetOptInt64(value, &e.max_quarantined);
      else known = false;
    }
    if (!known) return fail("unknown key \"" + key + "\" in [" + section + "]");
    if (!st.ok()) return fail(key + ": " + std::string(st.message()));
  }
  if (Status st = ValidateScenario(s); !st.ok()) return st;
  return s;
}

Status SaveScenarioFile(const Scenario& s, const std::string& path) {
  if (Status st = ValidateScenario(s); !st.ok()) return st;
  return WriteStringToFile(ScenarioToToml(s), path);
}

Result<Scenario> LoadScenarioFile(const std::string& path) {
  auto text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  auto parsed = ScenarioFromToml(*text);
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   std::string(parsed.status().message()));
  }
  return parsed;
}

}  // namespace scenario
}  // namespace semdrift
