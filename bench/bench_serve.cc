// Closed-loop load generator for the serving stack (BENCH_serve.json).
//
// Builds the bench-scale experiment, writes a snapshot, then drives a
// Batcher-fronted QueryEngine with C closed-loop clients (each client
// submits one request and waits for the answer before sending the next,
// so concurrency == clients). The workload is a deterministic mix over
// every populated concept: instances-of (top-k), concepts-of, is-a,
// drift-score and mutex.
//
// Three measurements land in the JSON report:
//
//   cold — first pass over the workload, empty result cache;
//   hot  — second pass over the identical workload, cache fully warm;
//   cached_point — a single hot point query (is-a) answered directly by
//          QueryEngine::Answer in a tight loop, i.e. the floor latency a
//          cached lookup pays without batching overhead.
//
// Per query type: request count, p50/p99 latency (µs) cold and hot, and
// the cache hit rate of the hot pass. The bench batcher runs with
// max_wait_ms 0: closed-loop clients refill the queue themselves, so a
// coalescing linger would only add idle time to every sample.
//
// A fourth measurement exercises hot swapping: clients run the workload
// closed-loop against a SnapshotManager-fronted batcher while the main
// thread publishes ≥ --swaps generations (alternating full images and
// deltas) into a watch directory, polling after each publish. The gate is
// zero failed (non-OK, non-shed) responses across every swap; with
// --publish-faults every fifth publish is corrupted first and must be
// quarantined and rolled back without the serving generation regressing.
// --max-p99-ms (when > 0) additionally bounds the p99 request latency of
// the swap phase.
//
// A fifth measurement drives the network tier end to end and multi-process:
// for each shard count in {1, 2, 4} an in-process NetServer listens on a
// unix socket while --clients copies of this binary (re-spawned in a hidden
// --client mode) run the workload closed-loop over real sockets for
// --net-seconds. Children report raw latency samples, so the merged
// p50/p99 are exact. A cold-start probe times SnapshotReader::Open in read
// mode (eager whole-file CRC) against mmap mode (map + header parse, CRC
// deferred) and mmap-to-first-answer; the gate is mmap open < read open.
//
//   bench_serve [--scale 0.25] [--threads 4] [--clients 8] [--swaps 120]
//               [--publish-faults] [--max-p99-ms 0] [--net-seconds 2]
//               [--out BENCH_serve.json]

#include <spawn.h>
#include <sys/wait.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "eval/experiment.h"
#include "net/net_client.h"
#include "net/router.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "serve/batcher.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "serve/snapshot_delta.h"
#include "serve/snapshot_manager.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

extern char** environ;

using namespace semdrift;

namespace {

constexpr int kNumTypes = 5;
constexpr const char* kTypeNames[kNumTypes] = {"instances-of", "concepts-of",
                                               "is-a", "drift-score", "mutex"};

struct WorkItem {
  int type;  // Index into kTypeNames.
  std::string line;
};

/// One latency sample: request type + wall nanoseconds from Submit to get().
struct Sample {
  int type;
  uint64_t ns;
};

struct PassResult {
  double wall_ms = 0.0;
  double qps = 0.0;
  uint64_t failures = 0;  // Responses that were not OK.
  std::vector<uint64_t> latencies_ns[kNumTypes];
};

/// p-th percentile of `ns` in microseconds (ns is sorted in place).
double PercentileUs(std::vector<uint64_t>* ns, double p) {
  if (ns->empty()) return 0.0;
  std::sort(ns->begin(), ns->end());
  const size_t idx = static_cast<size_t>(p / 100.0 * (ns->size() - 1) + 0.5);
  return static_cast<double>((*ns)[idx]) / 1e3;
}

/// Deterministic query mix: every populated concept contributes one query
/// of each type, with arguments read off the snapshot itself.
std::vector<WorkItem> BuildWorkload(const SnapshotReader& snap) {
  std::vector<WorkItem> workload;
  const std::string anchor(snap.ConceptName(0));
  for (uint32_t c = 0; c < snap.num_concepts(); ++c) {
    if (snap.ConceptEnd(c) == snap.ConceptBegin(c)) continue;
    const std::string concept_name(snap.ConceptName(c));
    const std::string member(
        snap.InstanceName(snap.PairInstance(snap.ConceptBegin(c))));
    workload.push_back({0, "instances-of\t" + concept_name + "\t8"});
    workload.push_back({1, "concepts-of\t" + member});
    workload.push_back({2, "is-a\t" + member + "\t" + concept_name});
    workload.push_back({3, "drift-score\t" + member + "\t" + concept_name});
    workload.push_back({4, "mutex\t" + concept_name + "\t" + anchor});
  }
  return workload;
}

/// One closed-loop pass: `clients` threads stride through the workload,
/// each waiting for its answer before submitting the next request.
PassResult RunPass(Batcher* batcher, const std::vector<WorkItem>& workload,
                   size_t clients) {
  std::vector<std::vector<Sample>> samples(clients);
  std::vector<uint64_t> failures(clients, 0);
  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      samples[c].reserve(workload.size() / clients + 1);
      for (size_t i = c; i < workload.size(); i += clients) {
        const auto start = std::chrono::steady_clock::now();
        const std::string response = batcher->Submit(workload[i].line).get();
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
        samples[c].push_back({workload[i].type, static_cast<uint64_t>(ns)});
        if (response.rfind("OK", 0) != 0) failures[c]++;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  PassResult result;
  result.wall_ms = wall.ElapsedMillis();
  result.qps = result.wall_ms > 0.0
                   ? static_cast<double>(workload.size()) / (result.wall_ms / 1e3)
                   : 0.0;
  for (size_t c = 0; c < clients; ++c) {
    result.failures += failures[c];
    for (const Sample& s : samples[c]) result.latencies_ns[s.type].push_back(s.ns);
  }
  return result;
}

/// Result of the swap-under-load phase.
struct SwapResult {
  int swaps_done = 0;
  int failed_publishes = 0;
  int rolled_back = 0;
  uint64_t requests = 0;
  uint64_t failures = 0;  // Non-OK responses (shed is disabled here).
  uint64_t shed = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::string error;  // Non-empty: the phase itself broke.
};

/// Publishes `swaps` generations under closed-loop query load. Odd
/// generations republish image A as a full snapshot; even generations
/// publish the A→B delta (so both publish paths and the base binding are
/// exercised on every other swap). With `publish_faults`, every fifth
/// publish first lands as a corrupted full image that must be quarantined
/// without the serving generation moving.
SwapResult RunSwapPhase(const SnapshotReader& snap,
                        const std::vector<WorkItem>& workload, size_t clients,
                        int swaps, bool publish_faults,
                        const QueryEngineOptions& engine_options) {
  SwapResult result;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "bench_serve_publish").string();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    result.error = "cannot create " + dir + ": " + ec.message();
    return result;
  }

  const SnapshotParts parts_a = PartsFromReader(snap);
  SnapshotParts parts_b = parts_a;
  if (!parts_b.score.empty()) parts_b.score[0] += 1.0;
  auto image_a = BuildSnapshotImage(parts_a);
  auto image_b = BuildSnapshotImage(parts_b);
  if (!image_a.ok() || !image_b.ok()) {
    result.error = "image build failed";
    return result;
  }
  const uint32_t crc_a = Crc32Of(*image_a);
  auto delta = DiffSnapshotParts(parts_a, parts_b);
  if (!delta.ok()) {
    result.error = "diff failed: " + delta.status().ToString();
    return result;
  }

  Status published = PublishSnapshotImage(*image_a, dir + "/snap-1.bin");
  if (!published.ok()) {
    result.error = published.ToString();
    return result;
  }
  SnapshotManagerOptions manager_options;
  manager_options.dir = dir;
  manager_options.engine = engine_options;
  SnapshotManager manager(manager_options);
  Status initial = manager.LoadInitial();
  if (!initial.ok()) {
    result.error = initial.ToString();
    return result;
  }

  BatcherOptions batcher_options;
  batcher_options.max_wait_ms = 0;
  Batcher batcher(EngineSource([&manager] { return manager.Pin(); }),
                  batcher_options);

  std::atomic<bool> stop{false};
  std::vector<std::vector<uint64_t>> latencies(clients);
  std::vector<uint64_t> failures(clients, 0);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  Timer wall;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      size_t i = c;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto start = std::chrono::steady_clock::now();
        const std::string response =
            batcher.Submit(workload[i % workload.size()].line).get();
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
        latencies[c].push_back(static_cast<uint64_t>(ns));
        if (response.rfind("OK", 0) != 0) failures[c]++;
        i += clients;
      }
    });
  }

  for (uint64_t gen = 2; gen <= static_cast<uint64_t>(swaps) + 1; ++gen) {
    const bool even = gen % 2 == 0;
    const std::string full_path = dir + "/snap-" + std::to_string(gen) + ".bin";
    const std::string delta_path = dir + "/delta-" + std::to_string(gen) + ".bin";
    if (publish_faults && gen % 5 == 0) {
      // A torn full-image publish: half the bytes under the real name. The
      // manager must quarantine it and keep serving gen-1.
      const uint64_t before = manager.generation();
      std::string torn = image_a->substr(0, image_a->size() / 2);
      Status wrote = WriteStringToFile(torn, full_path);
      if (!wrote.ok()) {
        result.error = wrote.ToString();
        break;
      }
      SnapshotPollResult poll = manager.Poll();
      result.failed_publishes += poll.failed;
      result.rolled_back += poll.rolled_back;
      if (poll.failed == 0 || manager.generation() != before) {
        result.error = "corrupt publish at generation " + std::to_string(gen) +
                       " was not contained";
        break;
      }
    }
    Status wrote;
    if (even) {
      SnapshotDelta d = *delta;
      d.base_generation = gen - 1;
      d.base_crc32 = crc_a;  // Odd generations always serve image A.
      d.generation = gen;
      wrote = WriteSnapshotDeltaFile(d, delta_path);
    } else {
      wrote = PublishSnapshotImage(*image_a, full_path);
    }
    if (!wrote.ok()) {
      result.error = wrote.ToString();
      break;
    }
    SnapshotPollResult poll = manager.Poll();
    result.failed_publishes += poll.failed;
    result.rolled_back += poll.rolled_back;
    if (poll.generation != gen) {
      result.error = "generation " + std::to_string(gen) + " did not install";
      break;
    }
    result.swaps_done += poll.swaps;
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  result.wall_ms = wall.ElapsedMillis();

  std::vector<uint64_t> all;
  for (size_t c = 0; c < clients; ++c) {
    result.failures += failures[c];
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
  }
  result.requests = all.size();
  result.qps = result.wall_ms > 0.0
                   ? static_cast<double>(all.size()) / (result.wall_ms / 1e3)
                   : 0.0;
  result.p50_us = PercentileUs(&all, 50.0);
  result.p99_us = PercentileUs(&all, 99.0);
  BatcherStats stats = batcher.Snapshot();
  result.shed = stats.shed;
  std::filesystem::remove_all(dir, ec);
  return result;
}

/// Hidden child mode (`bench_serve --client ...`): a closed-loop socket
/// client for the net phase. Reads the workload file, round-trips lines
/// against --connect for --seconds, then writes "failures N" followed by
/// one latency sample (ns) per line so the parent can merge exact
/// percentiles.
int RunClientMode(int argc, char** argv) {
  std::string endpoint, workload_path, out_path;
  double seconds = 2.0;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "client: missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--connect") {
      endpoint = value();
    } else if (arg == "--workload") {
      workload_path = value();
    } else if (arg == "--seconds") {
      if (!ParseDouble(value(), &seconds)) return 2;
    } else if (arg == "--out") {
      out_path = value();
    } else {
      std::fprintf(stderr, "client: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  std::vector<std::string> lines;
  {
    std::ifstream in(workload_path);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) lines.push_back(line);
    }
  }
  if (lines.empty()) {
    std::fprintf(stderr, "client: empty workload %s\n", workload_path.c_str());
    return 1;
  }
  auto client = LineClient::Connect(endpoint);
  if (!client.ok()) {
    std::fprintf(stderr, "client: %s\n", client.status().ToString().c_str());
    return 1;
  }
  std::vector<uint64_t> samples;
  uint64_t failures = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(seconds));
  size_t i = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto start = std::chrono::steady_clock::now();
    auto response = client->RoundTrip(lines[i % lines.size()]);
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    if (!response.ok()) {
      std::fprintf(stderr, "client: %s\n", response.status().ToString().c_str());
      failures++;
      break;
    }
    samples.push_back(static_cast<uint64_t>(ns));
    if (response->rfind("OK", 0) != 0) failures++;
    ++i;
  }
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "client: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "failures %llu\n", static_cast<unsigned long long>(failures));
  for (uint64_t ns : samples) {
    std::fprintf(f, "%llu\n", static_cast<unsigned long long>(ns));
  }
  std::fclose(f);
  return 0;
}

/// Result of one net-phase run (one shard count).
struct NetResult {
  int shards = 0;
  uint64_t requests = 0;
  uint64_t failures = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::string error;  // Non-empty: the phase itself broke.
};

/// Spawns `clients` copies of this binary in --client mode against an
/// in-process NetServer on a unix socket and merges their raw samples.
NetResult RunNetPhase(const char* self, const SnapshotReader& snap,
                      const std::string& workload_path, size_t clients,
                      int shards, double seconds,
                      const QueryEngineOptions& engine_options) {
  NetResult result;
  result.shards = shards;

  RouterOptions router_options;
  router_options.num_shards = static_cast<uint32_t>(shards);
  router_options.engine = engine_options;
  router_options.batch.max_wait_ms = 0;
  ShardRouter router(&snap, router_options);

  const std::string sock =
      (std::filesystem::temp_directory_path() / "bench_serve_net.sock").string();
  NetServerOptions server_options;
  server_options.listen = "unix:" + sock;
  NetServer server(&router, server_options);
  Status started = server.Start();
  if (!started.ok()) {
    result.error = started.ToString();
    return result;
  }

  char seconds_arg[32];
  std::snprintf(seconds_arg, sizeof(seconds_arg), "%g", seconds);
  std::vector<pid_t> pids;
  std::vector<std::string> out_paths;
  for (size_t c = 0; c < clients; ++c) {
    out_paths.push_back(
        (std::filesystem::temp_directory_path() /
         ("bench_serve_client_" + std::to_string(c) + ".txt"))
            .string());
    std::vector<std::string> args = {
        self,         "--client", "--connect", server.endpoint(),
        "--workload", workload_path, "--seconds", seconds_arg,
        "--out",      out_paths.back()};
    std::vector<char*> argv_c;
    argv_c.reserve(args.size() + 1);
    for (std::string& a : args) argv_c.push_back(a.data());
    argv_c.push_back(nullptr);
    pid_t pid = 0;
    const int rc =
        ::posix_spawnp(&pid, self, nullptr, nullptr, argv_c.data(), environ);
    if (rc != 0) {
      result.error = "posix_spawn: " + std::string(std::strerror(rc));
      break;
    }
    pids.push_back(pid);
  }
  for (pid_t pid : pids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      result.error = "a net client exited abnormally";
    }
  }
  server.Stop();
  if (!result.error.empty()) return result;

  std::vector<uint64_t> all;
  for (const std::string& path : out_paths) {
    std::ifstream in(path);
    std::string word;
    uint64_t client_failures = 0;
    if (!(in >> word >> client_failures) || word != "failures") {
      result.error = "malformed client report " + path;
      return result;
    }
    result.failures += client_failures;
    uint64_t ns = 0;
    while (in >> ns) all.push_back(ns);
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  result.requests = all.size();
  result.qps =
      seconds > 0.0 ? static_cast<double>(all.size()) / seconds : 0.0;
  result.p50_us = PercentileUs(&all, 50.0);
  result.p99_us = PercentileUs(&all, 99.0);
  return result;
}

/// Cold-start probe: best-of-5 open latency for the eager read path
/// (whole-file CRC before serving) vs mmap (map + header/section-table
/// parse, CRC deferred), plus mmap open through the first answered query.
struct ColdStartResult {
  double read_open_ms = 0.0;
  double mmap_open_ms = 0.0;
  double mmap_first_query_ms = 0.0;
  std::string error;
};

ColdStartResult MeasureColdStart(const std::string& path,
                                 const std::string& point_query) {
  ColdStartResult result;
  result.read_open_ms = result.mmap_open_ms = result.mmap_first_query_ms = 1e18;
  constexpr int kIters = 5;
  for (int i = 0; i < kIters; ++i) {
    {
      Timer t;
      auto reader = SnapshotReader::Open(path);
      const double ms = t.ElapsedMillis();
      if (!reader.ok()) {
        result.error = reader.status().ToString();
        return result;
      }
      result.read_open_ms = std::min(result.read_open_ms, ms);
    }
    {
      SnapshotOpenOptions options;
      options.source = SnapshotSource::kMmap;
      Timer t;
      auto reader = SnapshotReader::Open(path, options);
      const double open_ms = t.ElapsedMillis();
      if (!reader.ok()) {
        result.error = reader.status().ToString();
        return result;
      }
      QueryEngine engine(&*reader);
      const std::string response = engine.Answer(point_query);
      const double first_ms = t.ElapsedMillis();
      if (response.rfind("OK", 0) != 0) {
        result.error = "cold mmap query failed: " + response;
        return result;
      }
      result.mmap_open_ms = std::min(result.mmap_open_ms, open_ms);
      result.mmap_first_query_ms = std::min(result.mmap_first_query_ms, first_ms);
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--client") {
    return RunClientMode(argc, argv);
  }
  double scale = bench::EnvScale();
  int threads = 4;
  size_t clients = 8;
  int swaps = 120;
  bool publish_faults = false;
  double max_p99_ms = 0.0;
  double net_seconds = 2.0;
  std::string out = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scale") {
      if (!ParseDouble(value(), &scale)) std::exit(2);
    } else if (arg == "--threads") {
      threads = std::atoi(value().c_str());
    } else if (arg == "--clients") {
      clients = static_cast<size_t>(std::atoi(value().c_str()));
    } else if (arg == "--swaps") {
      swaps = std::atoi(value().c_str());
    } else if (arg == "--publish-faults") {
      publish_faults = true;
    } else if (arg == "--max-p99-ms") {
      if (!ParseDouble(value(), &max_p99_ms)) std::exit(2);
    } else if (arg == "--net-seconds") {
      if (!ParseDouble(value(), &net_seconds)) std::exit(2);
    } else if (arg == "--out") {
      out = value();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (clients == 0) clients = 1;
  SetGlobalThreadCount(threads);

  std::printf("bench_serve: scale %g, threads %d, clients %zu\n", scale, threads,
              clients);
  ExperimentConfig config = PaperScaleConfig(scale);
  auto experiment = Experiment::Build(config);
  KnowledgeBase kb = experiment->Extract();

  const std::string snapshot_path =
      (std::filesystem::temp_directory_path() / "bench_serve_snapshot.bin").string();
  Status written = WriteServingSnapshot(kb, experiment->world(),
                                        experiment->corpus().sentences.size(),
                                        nullptr, snapshot_path);
  if (!written.ok()) {
    std::fprintf(stderr, "snapshot write failed: %s\n", written.ToString().c_str());
    return 1;
  }
  auto opened = SnapshotReader::Open(snapshot_path);
  if (!opened.ok()) {
    std::fprintf(stderr, "snapshot open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  const SnapshotReader& snap = *opened;

  std::vector<WorkItem> workload = BuildWorkload(snap);
  std::printf("snapshot: %u concepts, %llu pairs, %llu bytes; workload %zu requests\n",
              snap.num_concepts(),
              static_cast<unsigned long long>(snap.num_pairs()),
              static_cast<unsigned long long>(snap.file_bytes()), workload.size());
  if (workload.empty()) {
    std::fprintf(stderr, "empty workload: no populated concepts\n");
    return 1;
  }

  // Cache must hold the whole workload so the hot pass is all hits.
  QueryEngineOptions engine_options;
  engine_options.cache_capacity = std::max<size_t>(4096, 2 * workload.size());
  QueryEngine engine(&snap, engine_options);
  BatcherOptions batcher_options;
  batcher_options.max_wait_ms = 0;  // Closed-loop clients refill the queue.
  Batcher batcher(&engine, batcher_options);

  PassResult cold = RunPass(&batcher, workload, clients);
  QueryTypeStats after_cold[kNumTypes];
  for (int t = 0; t < kNumTypes; ++t) {
    after_cold[t] = engine.stats().Snapshot(static_cast<QueryType>(t));
  }
  PassResult hot = RunPass(&batcher, workload, clients);
  uint64_t hot_hits = 0, hot_count = 0;
  QueryTypeStats hot_stats[kNumTypes];
  for (int t = 0; t < kNumTypes; ++t) {
    QueryTypeStats total = engine.stats().Snapshot(static_cast<QueryType>(t));
    hot_stats[t].count = total.count - after_cold[t].count;
    hot_stats[t].cache_hits = total.cache_hits - after_cold[t].cache_hits;
    hot_hits += hot_stats[t].cache_hits;
    hot_count += hot_stats[t].count;
  }
  const double hot_hit_rate =
      hot_count == 0 ? 0.0 : static_cast<double>(hot_hits) / hot_count;

  // Floor latency of a cached point query, without batching in the path.
  const std::string point_query = workload[2].line;  // First is-a.
  (void)engine.Answer(point_query);  // Ensure it is cached.
  constexpr int kPointIters = 2000;
  std::vector<uint64_t> point_ns;
  point_ns.reserve(kPointIters);
  for (int i = 0; i < kPointIters; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const std::string response = engine.Answer(point_query);
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    point_ns.push_back(static_cast<uint64_t>(ns));
    if (response.rfind("OK", 0) != 0) {
      std::fprintf(stderr, "cached point query failed: %s\n", response.c_str());
      return 1;
    }
  }
  const double point_p50_us = PercentileUs(&point_ns, 50.0);
  const double point_p99_us = PercentileUs(&point_ns, 99.0);

  SwapResult swap = RunSwapPhase(snap, workload, clients, swaps, publish_faults,
                                 engine_options);

  // Net phase: real sockets, child processes, per shard count.
  const std::string workload_path =
      (std::filesystem::temp_directory_path() / "bench_serve_workload.txt").string();
  {
    std::string joined;
    for (const WorkItem& item : workload) joined += item.line + "\n";
    Status wrote = WriteStringToFile(joined, workload_path);
    if (!wrote.ok()) {
      std::fprintf(stderr, "workload write failed: %s\n", wrote.ToString().c_str());
      return 1;
    }
  }
  const int kShardCounts[] = {1, 2, 4};
  std::vector<NetResult> net_results;
  for (int shards : kShardCounts) {
    net_results.push_back(RunNetPhase(argv[0], snap, workload_path, clients,
                                      shards, net_seconds, engine_options));
    const NetResult& n = net_results.back();
    if (!n.error.empty()) {
      std::fprintf(stderr, "net phase (%d shards) failed: %s\n", shards,
                   n.error.c_str());
      return 1;
    }
    std::printf("net %d shard(s): %llu requests, %9.0f qps, p50 %.1f us, "
                "p99 %.1f us, %llu failures\n",
                n.shards, static_cast<unsigned long long>(n.requests), n.qps,
                n.p50_us, n.p99_us, static_cast<unsigned long long>(n.failures));
  }
  ColdStartResult cold_start = MeasureColdStart(snapshot_path, point_query);
  if (!cold_start.error.empty()) {
    std::fprintf(stderr, "cold-start probe failed: %s\n", cold_start.error.c_str());
    return 1;
  }
  std::printf("cold start: read open %.3f ms, mmap open %.3f ms, "
              "mmap first query %.3f ms\n",
              cold_start.read_open_ms, cold_start.mmap_open_ms,
              cold_start.mmap_first_query_ms);

  BatcherStats batch_stats = batcher.Snapshot();
  std::printf("cold: %7.1f ms  %9.0f qps\n", cold.wall_ms, cold.qps);
  std::printf("hot:  %7.1f ms  %9.0f qps  hit rate %.3f\n", hot.wall_ms, hot.qps,
              hot_hit_rate);
  std::printf("cached point (%s): p50 %.1f us  p99 %.1f us\n", point_query.c_str(),
              point_p50_us, point_p99_us);
  std::printf("batches: %llu over %llu requests (max batch %llu)\n",
              static_cast<unsigned long long>(batch_stats.batches),
              static_cast<unsigned long long>(batch_stats.requests),
              static_cast<unsigned long long>(batch_stats.max_batch));
  std::printf("swap: %d swaps, %llu requests, %9.0f qps, p50 %.1f us, "
              "p99 %.1f us, %llu failures, %d failed publishes (%d rolled back)\n",
              swap.swaps_done, static_cast<unsigned long long>(swap.requests),
              swap.qps, swap.p50_us, swap.p99_us,
              static_cast<unsigned long long>(swap.failures),
              swap.failed_publishes, swap.rolled_back);

  FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"scale\": %g,\n  \"threads\": %d,\n  \"clients\": %zu,\n"
               "  \"requests_per_pass\": %zu,\n  \"snapshot_bytes\": %llu,\n",
               scale, threads, clients, workload.size(),
               static_cast<unsigned long long>(snap.file_bytes()));
  std::fprintf(f, "  \"cold\": {\"wall_ms\": %.3f, \"qps\": %.1f},\n", cold.wall_ms,
               cold.qps);
  std::fprintf(f,
               "  \"hot\": {\"wall_ms\": %.3f, \"qps\": %.1f, "
               "\"cache_hit_rate\": %.4f},\n",
               hot.wall_ms, hot.qps, hot_hit_rate);
  std::fprintf(f, "  \"query_types\": [\n");
  for (int t = 0; t < kNumTypes; ++t) {
    const double hit_rate =
        hot_stats[t].count == 0
            ? 0.0
            : static_cast<double>(hot_stats[t].cache_hits) / hot_stats[t].count;
    std::fprintf(f,
                 "    {\"type\": \"%s\", \"count\": %zu, "
                 "\"cold_p50_us\": %.1f, \"cold_p99_us\": %.1f, "
                 "\"hot_p50_us\": %.1f, \"hot_p99_us\": %.1f, "
                 "\"hot_hit_rate\": %.4f}%s\n",
                 kTypeNames[t], cold.latencies_ns[t].size(),
                 PercentileUs(&cold.latencies_ns[t], 50.0),
                 PercentileUs(&cold.latencies_ns[t], 99.0),
                 PercentileUs(&hot.latencies_ns[t], 50.0),
                 PercentileUs(&hot.latencies_ns[t], 99.0), hit_rate,
                 t + 1 == kNumTypes ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"cached_point\": {\"query\": \"%s\", \"iters\": %d, "
               "\"p50_us\": %.2f, \"p99_us\": %.2f},\n",
               "is-a (hot cache, direct engine)", kPointIters, point_p50_us,
               point_p99_us);
  std::fprintf(f,
               "  \"batches\": {\"requests\": %llu, \"batches\": %llu, "
               "\"max_batch\": %llu},\n",
               static_cast<unsigned long long>(batch_stats.requests),
               static_cast<unsigned long long>(batch_stats.batches),
               static_cast<unsigned long long>(batch_stats.max_batch));
  std::fprintf(f,
               "  \"swap\": {\"swaps\": %d, \"requests\": %llu, "
               "\"qps\": %.1f, \"p50_us\": %.2f, \"p99_us\": %.2f, "
               "\"failed_responses\": %llu, \"shed\": %llu, "
               "\"failed_publishes\": %d, \"rolled_back\": %d, "
               "\"wall_ms\": %.3f},\n",
               swap.swaps_done, static_cast<unsigned long long>(swap.requests),
               swap.qps, swap.p50_us, swap.p99_us,
               static_cast<unsigned long long>(swap.failures),
               static_cast<unsigned long long>(swap.shed),
               swap.failed_publishes, swap.rolled_back, swap.wall_ms);
  std::fprintf(f, "  \"net\": [\n");
  for (size_t i = 0; i < net_results.size(); ++i) {
    const NetResult& n = net_results[i];
    std::fprintf(f,
                 "    {\"shards\": %d, \"clients\": %zu, \"seconds\": %g, "
                 "\"requests\": %llu, \"qps\": %.1f, \"p50_us\": %.2f, "
                 "\"p99_us\": %.2f, \"failures\": %llu}%s\n",
                 n.shards, clients, net_seconds,
                 static_cast<unsigned long long>(n.requests), n.qps, n.p50_us,
                 n.p99_us, static_cast<unsigned long long>(n.failures),
                 i + 1 == net_results.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"cold_start\": {\"read_open_ms\": %.4f, "
               "\"mmap_open_ms\": %.4f, \"mmap_first_query_ms\": %.4f},\n",
               cold_start.read_open_ms, cold_start.mmap_open_ms,
               cold_start.mmap_first_query_ms);
  std::fprintf(f, "  \"metrics\": %s\n", GlobalMetrics().ToJson().c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("-> %s\n", out.c_str());

  std::error_code ec;
  std::filesystem::remove(snapshot_path, ec);
  std::filesystem::remove(workload_path, ec);

  if (cold.failures + hot.failures > 0) {
    std::fprintf(stderr, "FAIL: %llu non-OK responses\n",
                 static_cast<unsigned long long>(cold.failures + hot.failures));
    return 1;
  }
  if (cold.qps <= 0.0 || hot.qps <= 0.0) {
    std::fprintf(stderr, "FAIL: zero QPS\n");
    return 1;
  }
  if (point_p50_us >= 1000.0) {
    std::fprintf(stderr, "FAIL: cached point p50 %.1f us is not sub-millisecond\n",
                 point_p50_us);
    return 1;
  }
  if (!swap.error.empty()) {
    std::fprintf(stderr, "FAIL: swap phase: %s\n", swap.error.c_str());
    return 1;
  }
  if (swap.swaps_done < swaps) {
    std::fprintf(stderr, "FAIL: only %d of %d swaps installed\n", swap.swaps_done,
                 swaps);
    return 1;
  }
  if (swap.failures > 0) {
    std::fprintf(stderr, "FAIL: %llu non-OK responses during hot swaps\n",
                 static_cast<unsigned long long>(swap.failures));
    return 1;
  }
  if (publish_faults && swap.failed_publishes == 0) {
    std::fprintf(stderr, "FAIL: publish faults were injected but none recorded\n");
    return 1;
  }
  if (max_p99_ms > 0.0 && swap.p99_us > max_p99_ms * 1000.0) {
    std::fprintf(stderr, "FAIL: swap-phase p99 %.1f us exceeds bound %.1f ms\n",
                 swap.p99_us, max_p99_ms);
    return 1;
  }
  for (const NetResult& n : net_results) {
    if (n.failures > 0) {
      std::fprintf(stderr, "FAIL: %llu non-OK responses over the socket (%d shards)\n",
                   static_cast<unsigned long long>(n.failures), n.shards);
      return 1;
    }
    if (n.qps <= 0.0) {
      std::fprintf(stderr, "FAIL: zero socket QPS (%d shards)\n", n.shards);
      return 1;
    }
  }
  if (cold_start.mmap_open_ms >= cold_start.read_open_ms) {
    std::fprintf(stderr,
                 "FAIL: mmap cold open %.3f ms is not faster than read open %.3f ms\n",
                 cold_start.mmap_open_ms, cold_start.read_open_ms);
    return 1;
  }
  return 0;
}
