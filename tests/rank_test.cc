#include <gtest/gtest.h>

#include <numeric>

#include "kb/knowledge_base.h"
#include "rank/concept_graph.h"
#include "rank/scorers.h"

namespace semdrift {
namespace {

ConceptId C(uint32_t v) { return ConceptId(v); }
InstanceId E(uint32_t v) { return InstanceId(v); }
SentenceId S(uint32_t v) { return SentenceId(v); }

/// KB with a small trigger structure under concept 0:
///   roots (iteration 1): e1 (count 2), e2 (count 1)
///   e1 triggers {e3, e4}; e3 triggers {e5}.
KnowledgeBase BuildChainKb() {
  KnowledgeBase kb;
  kb.ApplyExtraction(S(0), C(0), {E(1), E(2)}, {}, 1);
  kb.ApplyExtraction(S(1), C(0), {E(1)}, {}, 1);
  kb.ApplyExtraction(S(2), C(0), {E(3), E(4)}, {E(1)}, 2);
  kb.ApplyExtraction(S(3), C(0), {E(5)}, {E(3)}, 3);
  return kb;
}

TEST(ConceptGraphTest, NodesAreLiveInstances) {
  KnowledgeBase kb = BuildChainKb();
  ConceptGraph graph = ConceptGraph::Build(kb, C(0));
  EXPECT_EQ(graph.num_nodes(), 5u);
  EXPECT_NE(graph.IndexOf(E(1)), static_cast<size_t>(-1));
  EXPECT_EQ(graph.IndexOf(E(99)), static_cast<size_t>(-1));
}

TEST(ConceptGraphTest, EdgesFollowTriggers) {
  KnowledgeBase kb = BuildChainKb();
  ConceptGraph graph = ConceptGraph::Build(kb, C(0));
  size_t e1 = graph.IndexOf(E(1));
  const auto& edges = graph.OutEdges(e1);
  EXPECT_EQ(edges.size(), 2u);  // e3 and e4.
  size_t e2 = graph.IndexOf(E(2));
  EXPECT_TRUE(graph.OutEdges(e2).empty());
}

TEST(ConceptGraphTest, RootWeightsAreIter1Counts) {
  KnowledgeBase kb = BuildChainKb();
  ConceptGraph graph = ConceptGraph::Build(kb, C(0));
  EXPECT_EQ(graph.root_weights()[graph.IndexOf(E(1))], 2.0);
  EXPECT_EQ(graph.root_weights()[graph.IndexOf(E(2))], 1.0);
  EXPECT_EQ(graph.root_weights()[graph.IndexOf(E(4))], 0.0);
}

TEST(ConceptGraphTest, RolledBackRecordsExcluded) {
  KnowledgeBase kb = BuildChainKb();
  kb.RollbackRecord(3, CascadePolicy::kAllTriggersDead);  // Kills e5.
  ConceptGraph graph = ConceptGraph::Build(kb, C(0));
  EXPECT_EQ(graph.num_nodes(), 4u);
  EXPECT_EQ(graph.IndexOf(E(5)), static_cast<size_t>(-1));
}

TEST(ScorersTest, FrequencyProportionalToCounts) {
  KnowledgeBase kb = BuildChainKb();
  auto scores = ScoreConcept(kb, C(0), RankModel::kFrequency);
  // e1 has count 2, everything else count 1: total weight 6.
  EXPECT_NEAR(scores[E(1)], 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(scores[E(2)], 1.0 / 6.0, 1e-12);
}

TEST(ScorersTest, ScoresSumToOne) {
  KnowledgeBase kb = BuildChainKb();
  for (RankModel model : {RankModel::kFrequency, RankModel::kPageRank,
                          RankModel::kRandomWalk}) {
    auto scores = ScoreConcept(kb, C(0), model);
    double total = 0.0;
    for (const auto& [e, s] : scores) {
      (void)e;
      EXPECT_GE(s, 0.0);
      total += s;
    }
    EXPECT_NEAR(total, 1.0, 1e-6) << static_cast<int>(model);
  }
}

TEST(ScorersTest, RandomWalkMassDecaysAlongChain) {
  KnowledgeBase kb = BuildChainKb();
  auto scores = ScoreConcept(kb, C(0), RankModel::kRandomWalk);
  // Roots hold more mass than first-hop children, which hold more than
  // second-hop ones.
  EXPECT_GT(scores[E(1)], scores[E(3)]);
  EXPECT_GT(scores[E(3)], scores[E(5)]);
}

TEST(ScorersTest, RandomWalkUnreachableGetsZero) {
  KnowledgeBase kb;
  kb.ApplyExtraction(S(0), C(0), {E(1)}, {}, 1);
  // e2 arrives late with a trigger from e1; e9's subtree is disconnected
  // from the roots: insert it via a late record with trigger e2.
  kb.ApplyExtraction(S(1), C(0), {E(2)}, {E(1)}, 2);
  auto scores = ScoreConcept(kb, C(0), RankModel::kRandomWalk);
  EXPECT_GT(scores[E(1)], 0.0);
  EXPECT_GT(scores[E(2)], 0.0);
}

TEST(ScorersTest, PageRankIsUndirected) {
  // In the directed trigger graph e1 -> e3; PageRank treats it undirected,
  // so e3 passes mass back to e1 and both exceed the isolated node e2.
  KnowledgeBase kb;
  kb.ApplyExtraction(S(0), C(0), {E(1)}, {}, 1);
  kb.ApplyExtraction(S(1), C(0), {E(2)}, {}, 1);
  kb.ApplyExtraction(S(2), C(0), {E(3)}, {E(1)}, 2);
  auto scores = ScoreConcept(kb, C(0), RankModel::kPageRank);
  EXPECT_GT(scores[E(1)], scores[E(2)]);
  EXPECT_GT(scores[E(3)], scores[E(2)]);
}

TEST(ScorersTest, EmptyConcept) {
  KnowledgeBase kb;
  auto scores = ScoreConcept(kb, C(7), RankModel::kRandomWalk);
  EXPECT_TRUE(scores.empty());
}

TEST(ScorersTest, NoRootsFallsBackToUniformRestart) {
  KnowledgeBase kb;
  // All records in iteration 2 (triggers faked through an iteration-1 pair
  // under a different concept is impossible; use a concept whose iter-1
  // record was rolled back instead).
  uint32_t root = kb.ApplyExtraction(S(0), C(0), {E(1)}, {}, 1);
  kb.ApplyExtraction(S(1), C(0), {E(1), E(2)}, {E(1)}, 2);
  kb.RollbackRecord(root, CascadePolicy::kAllTriggersDead);
  // e1 survives via the iteration-2 record but has no iter-1 count now.
  ASSERT_TRUE(kb.Contains(IsAPair{C(0), E(1)}));
  auto scores = ScoreConcept(kb, C(0), RankModel::kRandomWalk);
  double total = 0.0;
  for (const auto& [e, s] : scores) {
    (void)e;
    total += s;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(ScoreCacheTest, CachesAndServesScores) {
  KnowledgeBase kb = BuildChainKb();
  ScoreCache cache(&kb, RankModel::kRandomWalk);
  double first = cache.Get(C(0), E(1));
  EXPECT_GT(first, 0.0);
  EXPECT_EQ(cache.Get(C(0), E(1)), first);  // Stable on repeat.
  EXPECT_EQ(cache.Get(C(0), E(77)), 0.0);   // Unknown instance.
  EXPECT_EQ(cache.Get(C(9), E(1)), 0.0);    // Unknown concept.
}

TEST(ScorersTest, WalkParamsTeleportAffectsConcentration) {
  KnowledgeBase kb = BuildChainKb();
  WalkParams strong;
  strong.teleport = 0.9;
  WalkParams weak;
  weak.teleport = 0.05;
  auto concentrated = ScoreConcept(kb, C(0), RankModel::kRandomWalk, strong);
  auto diffuse = ScoreConcept(kb, C(0), RankModel::kRandomWalk, weak);
  // Strong teleport keeps mass at the roots.
  EXPECT_GT(concentrated[E(1)], diffuse[E(1)]);
  EXPECT_LT(concentrated[E(5)], diffuse[E(5)]);
}

}  // namespace
}  // namespace semdrift
