file(REMOVE_RECURSE
  "libsemdrift_util.a"
)
