#ifndef SEMDRIFT_SCENARIO_SHRINK_H_
#define SEMDRIFT_SCENARIO_SHRINK_H_

#include <cstddef>
#include <functional>

#include "scenario/scenario.h"
#include "util/status.h"

namespace semdrift {
namespace scenario {

/// True when the failure under investigation still reproduces on `s`.
/// The shrinker only commits moves the predicate accepts, so the predicate
/// defines what is being minimized (an invariant break, a precision
/// collapse, a cleaning regression — see hunt.h's failure classes).
using ScenarioPredicate = std::function<bool(const Scenario&)>;

struct ShrinkOptions {
  /// Hard cap on predicate evaluations (cache misses). The shrink sequence
  /// is deterministic, so a capped shrink is still reproducible — just not
  /// guaranteed one-notch minimal.
  size_t max_evaluations = 400;
};

struct ShrinkResult {
  Scenario scenario;
  /// Predicate evaluations actually run (cache misses).
  size_t evaluations = 0;
  /// Full dimension sweeps until fixpoint.
  size_t passes = 0;
  /// True when max_evaluations stopped the shrink before fixpoint.
  bool reached_eval_cap = false;
};

/// Deterministically minimizes a failing scenario: every numeric dimension
/// is walked toward its benign anchor on a fixed quantized ladder
/// (bisection jumps for speed, then a one-notch confirm), in a fixed
/// dimension order, over repeated passes until no dimension moves. The
/// shrinker draws no randomness and evaluates candidates strictly
/// sequentially, so the same failing scenario and predicate minimize to the
/// same scenario — byte-for-byte after ScenarioToToml — at any thread
/// count. At fixpoint (cap not hit), moving any single dimension one notch
/// further toward benign either breaks validity or loses the failure.
///
/// Returns kInvalidArgument when the predicate rejects the input itself
/// (there is no failure to minimize).
Result<ShrinkResult> ShrinkScenario(const Scenario& failing,
                                    const ScenarioPredicate& predicate,
                                    const ShrinkOptions& options = {});

}  // namespace scenario
}  // namespace semdrift

#endif  // SEMDRIFT_SCENARIO_SHRINK_H_
