file(REMOVE_RECURSE
  "CMakeFiles/semdrift_kb.dir/knowledge_base.cc.o"
  "CMakeFiles/semdrift_kb.dir/knowledge_base.cc.o.d"
  "libsemdrift_kb.a"
  "libsemdrift_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semdrift_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
