file(REMOVE_RECURSE
  "CMakeFiles/semdrift_eval.dir/experiment.cc.o"
  "CMakeFiles/semdrift_eval.dir/experiment.cc.o.d"
  "CMakeFiles/semdrift_eval.dir/ground_truth.cc.o"
  "CMakeFiles/semdrift_eval.dir/ground_truth.cc.o.d"
  "CMakeFiles/semdrift_eval.dir/metrics.cc.o"
  "CMakeFiles/semdrift_eval.dir/metrics.cc.o.d"
  "libsemdrift_eval.a"
  "libsemdrift_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semdrift_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
