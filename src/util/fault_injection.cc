#include "util/fault_injection.h"

#include <fstream>
#include <sstream>

namespace semdrift {

namespace {

/// Splits into lines *including* their trailing newline bytes, so that
/// reassembly after drop/duplicate is byte-exact for untouched lines.
std::vector<std::string> SplitKeepingNewlines(const std::string& content) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < content.size()) {
    size_t nl = content.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(content.substr(start));
      break;
    }
    lines.push_back(content.substr(start, nl - start + 1));
    start = nl + 1;
  }
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) out += line;
  return out;
}

/// Bytes that are invalid in any UTF-8 sequence position (lone continuation
/// bytes and overlong-encoding leads), guaranteed to poison text fields.
std::string GarbageBytes(Rng* rng, size_t n) {
  static const unsigned char kPool[] = {0xff, 0xfe, 0xc0, 0xc1, 0x80,
                                        0x9f, 0xf5, 0x00, 0x0b, 0x1b};
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>(kPool[rng->NextBounded(sizeof(kPool))]));
  }
  return out;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kFlipBytes:
      return "flip-bytes";
    case FaultKind::kDropLine:
      return "drop-line";
    case FaultKind::kDuplicateLine:
      return "duplicate-line";
    case FaultKind::kGarbageLine:
      return "garbage-line";
    case FaultKind::kSpliceGarbage:
      return "splice-garbage";
  }
  return "unknown";
}

std::vector<FaultKind> AllFaultKinds() {
  return {FaultKind::kTruncate,       FaultKind::kFlipBytes,
          FaultKind::kDropLine,       FaultKind::kDuplicateLine,
          FaultKind::kGarbageLine,    FaultKind::kSpliceGarbage};
}

std::string FaultInjector::Corrupt(const std::string& content, FaultKind kind) {
  if (content.empty()) return content;
  switch (kind) {
    case FaultKind::kTruncate: {
      // Cut anywhere, including byte 0 (empty file) — a torn write can leave
      // any prefix behind.
      size_t cut = static_cast<size_t>(rng_.NextBounded(content.size()));
      return content.substr(0, cut);
    }
    case FaultKind::kFlipBytes: {
      std::string out = content;
      size_t flips = 1 + static_cast<size_t>(rng_.NextBounded(8));
      for (size_t i = 0; i < flips; ++i) {
        size_t pos = static_cast<size_t>(rng_.NextBounded(out.size()));
        unsigned mask = 1u << rng_.NextBounded(8);
        out[pos] = static_cast<char>(static_cast<unsigned char>(out[pos]) ^ mask);
      }
      return out;
    }
    case FaultKind::kDropLine: {
      std::vector<std::string> lines = SplitKeepingNewlines(content);
      if (lines.size() <= 1) return std::string();
      size_t victim = static_cast<size_t>(rng_.NextBounded(lines.size()));
      lines.erase(lines.begin() + static_cast<ptrdiff_t>(victim));
      return JoinLines(lines);
    }
    case FaultKind::kDuplicateLine: {
      std::vector<std::string> lines = SplitKeepingNewlines(content);
      size_t victim = static_cast<size_t>(rng_.NextBounded(lines.size()));
      lines.insert(lines.begin() + static_cast<ptrdiff_t>(victim), lines[victim]);
      return JoinLines(lines);
    }
    case FaultKind::kGarbageLine: {
      std::vector<std::string> lines = SplitKeepingNewlines(content);
      size_t victim = static_cast<size_t>(rng_.NextBounded(lines.size()));
      bool had_newline = !lines[victim].empty() && lines[victim].back() == '\n';
      size_t len = 1 + static_cast<size_t>(rng_.NextBounded(40));
      lines[victim] = GarbageBytes(&rng_, len);
      // Keep the line structure: garbage replaces the payload, not the
      // record separator (a missing separator is kTruncate's job).
      if (had_newline) lines[victim] += '\n';
      // Strip embedded newlines so exactly one line is poisoned.
      for (size_t i = 0; i + 1 < lines[victim].size(); ++i) {
        if (lines[victim][i] == '\n') lines[victim][i] = static_cast<char>(0xff);
      }
      return JoinLines(lines);
    }
    case FaultKind::kSpliceGarbage: {
      std::string out = content;
      size_t pos = static_cast<size_t>(rng_.NextBounded(out.size()));
      size_t len = 1 + static_cast<size_t>(rng_.NextBounded(16));
      std::string garbage = GarbageBytes(&rng_, len);
      for (char& c : garbage) {
        if (c == '\n') c = static_cast<char>(0xfe);
      }
      out.insert(pos, garbage);
      return out;
    }
  }
  return content;
}

std::string FaultInjector::CorruptRandom(const std::string& content,
                                         FaultKind* kind_out) {
  std::vector<FaultKind> kinds = AllFaultKinds();
  FaultKind kind = kinds[rng_.NextBounded(kinds.size())];
  if (kind_out != nullptr) *kind_out = kind;
  return Corrupt(content, kind);
}

Status FaultInjector::CorruptFile(const std::string& in_path,
                                  const std::string& out_path, FaultKind kind) {
  auto content = ReadFileToString(in_path);
  if (!content.ok()) return content.status();
  return WriteStringToFile(Corrupt(*content, kind), out_path);
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed for " + path);
  return buffer.str();
}

Status WriteStringToFile(const std::string& content, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace semdrift
