
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/kernel.cc" "src/ml/CMakeFiles/semdrift_ml.dir/kernel.cc.o" "gcc" "src/ml/CMakeFiles/semdrift_ml.dir/kernel.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/semdrift_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/semdrift_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/kpca.cc" "src/ml/CMakeFiles/semdrift_ml.dir/kpca.cc.o" "gcc" "src/ml/CMakeFiles/semdrift_ml.dir/kpca.cc.o.d"
  "/root/repo/src/ml/manifold.cc" "src/ml/CMakeFiles/semdrift_ml.dir/manifold.cc.o" "gcc" "src/ml/CMakeFiles/semdrift_ml.dir/manifold.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/ml/CMakeFiles/semdrift_ml.dir/matrix.cc.o" "gcc" "src/ml/CMakeFiles/semdrift_ml.dir/matrix.cc.o.d"
  "/root/repo/src/ml/multitask.cc" "src/ml/CMakeFiles/semdrift_ml.dir/multitask.cc.o" "gcc" "src/ml/CMakeFiles/semdrift_ml.dir/multitask.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/ml/CMakeFiles/semdrift_ml.dir/random_forest.cc.o" "gcc" "src/ml/CMakeFiles/semdrift_ml.dir/random_forest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/semdrift_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
