file(REMOVE_RECURSE
  "CMakeFiles/dp_seeds_test.dir/dp_seeds_test.cc.o"
  "CMakeFiles/dp_seeds_test.dir/dp_seeds_test.cc.o.d"
  "dp_seeds_test"
  "dp_seeds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_seeds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
