#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_writer.h"
#include "util/timer.h"

namespace semdrift {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing pair");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kNotFound);
  EXPECT_EQ(s.message(), "missing pair");
  EXPECT_EQ(s.ToString(), "NotFound: missing pair");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::IOError("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

TEST(ResultTest, OkStatusWithoutValueBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "hello");
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.Next() == b.Next();
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(7);
  std::unordered_set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, NextBoolFrequency) {
  Rng rng(19);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.3);
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(RngTest, ShuffleEmptyAndSingle) {
  Rng rng(29);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(31);
  std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.NextDiscrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 10000.0, 0.25, 0.02);
  EXPECT_NEAR(counts[2] / 10000.0, 0.75, 0.02);
}

TEST(RngTest, DiscreteAllZeroWeightsReturnsLast) {
  Rng rng(37);
  std::vector<double> weights{0.0, 0.0, 0.0};
  EXPECT_EQ(rng.NextDiscrete(weights), 2u);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(50, 1.1);
  double total = 0.0;
  for (size_t r = 0; r < zipf.size(); ++r) total += zipf.Pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, PmfDecreasing) {
  ZipfSampler zipf(20, 0.9);
  for (size_t r = 1; r < zipf.size(); ++r) {
    EXPECT_LT(zipf.Pmf(r), zipf.Pmf(r - 1));
  }
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (size_t r = 0; r < zipf.size(); ++r) EXPECT_NEAR(zipf.Pmf(r), 0.1, 1e-12);
}

TEST(ZipfTest, SampleMatchesPmf) {
  ZipfSampler zipf(5, 1.0);
  Rng rng(41);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(counts[r] / static_cast<double>(n), zipf.Pmf(r), 0.01);
  }
}

class ZipfSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ZipfSizeTest, SamplesAlwaysInRange) {
  ZipfSampler zipf(GetParam(), 1.2);
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) EXPECT_LT(zipf.Sample(&rng), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, ZipfSizeTest, ::testing::Values(1, 2, 3, 10, 100, 1000));

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, CaseAndTrim) {
  EXPECT_EQ(ToLower("HeLLo"), "hello");
  EXPECT_EQ(Trim("  padded \t"), "padded");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, PrefixSuffix) {
  EXPECT_TRUE(StartsWith("semantic drift", "sem"));
  EXPECT_FALSE(StartsWith("a", "ab"));
  EXPECT_TRUE(EndsWith("drifting", "ing"));
  EXPECT_FALSE(EndsWith("x", "yx2"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.9696, 3), "0.970");
  EXPECT_EQ(FormatDouble(1.0, 1), "1.0");
}

TEST(StringUtilTest, FormatCount) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(90521133), "90,521,133");
  EXPECT_EQ(FormatCount(-1234567), "-1,234,567");
}

TEST(TableWriterTest, AlignsAndCounts) {
  TableWriter table("demo");
  table.SetHeader({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow("beta", {0.5}, 2);
  EXPECT_EQ(table.row_count(), 2u);
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("0.50"), std::string::npos);
}

TEST(TableWriterTest, CsvWritesAndEscapes) {
  TableWriter table("csv");
  table.SetHeader({"a", "b"});
  table.AddRow({"x,y", "plain"});
  std::string path = ::testing::TempDir() + "/semdrift_table.csv";
  ASSERT_TRUE(table.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",plain");
}

TEST(SeriesWriterTest, StoresPoints) {
  SeriesWriter series("fig");
  series.SetColumns({"x", "y"});
  series.AddPoint({1.0, 2.0});
  series.AddPoint({2.0});  // Padded to column count.
  ASSERT_EQ(series.points().size(), 2u);
  EXPECT_EQ(series.points()[1].size(), 2u);
  EXPECT_EQ(series.points()[1][1], 0.0);
}

TEST(TimerTest, MeasuresForwardTime) {
  Timer timer;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  timer.Reset();
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
}

}  // namespace
}  // namespace semdrift
