#ifndef SEMDRIFT_UTIL_CANCELLATION_H_
#define SEMDRIFT_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

namespace semdrift {

/// Thrown by PollCancellation() when the current token's deadline passed or
/// it was cancelled explicitly. StageGuard (util/supervisor.h) catches it at
/// the stage boundary and turns it into a retry/quarantine decision; it never
/// crosses a library API boundary.
class StageCancelledError : public std::runtime_error {
 public:
  explicit StageCancelledError(const std::string& why) : std::runtime_error(why) {}
};

/// Cooperative cancellation: a flag plus an optional wall-clock deadline that
/// long-running kernels poll. Cancellation is *cooperative by design* — a
/// token never preempts anything, so on the happy path (deadline not hit,
/// never cancelled) polling has zero effect on results: bit-identical output
/// with or without a token installed.
///
/// Thread-safe: Cancel/Cancelled/ExpiredNow may race freely.
class CancellationToken {
 public:
  CancellationToken() = default;

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Arms a deadline `timeout` from now. <= 0 disarms.
  void ArmDeadline(std::chrono::milliseconds timeout) {
    if (timeout.count() <= 0) {
      has_deadline_ = false;
      return;
    }
    deadline_ = std::chrono::steady_clock::now() + timeout;
    has_deadline_ = true;
  }

  /// Requests cancellation (sticky).
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True when cancelled explicitly or the armed deadline has passed.
  bool ShouldStop() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  /// The token installed on the calling thread (nullptr outside any
  /// supervised stage). The thread pool propagates the submitting thread's
  /// token to its workers for the duration of each job, so parallel
  /// sub-work inside a guarded stage polls the stage's own token.
  static const CancellationToken* Current();

 private:
  std::atomic<bool> cancelled_{false};
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
};

/// Installs `token` as the calling thread's current token for this scope
/// (saving and restoring the previous one, so guards nest).
class ScopedCancellation {
 public:
  explicit ScopedCancellation(const CancellationToken* token);
  ~ScopedCancellation();

  ScopedCancellation(const ScopedCancellation&) = delete;
  ScopedCancellation& operator=(const ScopedCancellation&) = delete;

 private:
  const CancellationToken* previous_;
};

/// Poll point for long loops (the RWR power iteration, injected stalls):
/// throws StageCancelledError when the current token says stop, does nothing
/// when no token is installed. Cheap — one thread-local read on the
/// unsupervised path.
void PollCancellation(const char* where);

}  // namespace semdrift

#endif  // SEMDRIFT_UTIL_CANCELLATION_H_
