#ifndef SEMDRIFT_RANK_SCORERS_H_
#define SEMDRIFT_RANK_SCORERS_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "kb/knowledge_base.h"
#include "rank/concept_graph.h"
#include "text/ids.h"

namespace semdrift {

/// The three instance-scoring models compared in Table 2. The paper's
/// score(.) (Eq. 3) is kRandomWalk; the others are baselines.
enum class RankModel {
  /// Score proportional to live pair support.
  kFrequency,
  /// PageRank on the undirected version of the trigger graph, teleport 0.15.
  kPageRank,
  /// Random walk with restart from the iteration-1 instances (restart
  /// probability 0.15), on the directed trigger graph — Eq. 3 / [23].
  kRandomWalk,
};

/// Numerical parameters shared by the walk-based models.
struct WalkParams {
  /// Teleporting probability (the paper uses 0.15).
  double teleport = 0.15;
  /// Convergence threshold on the L1 change of the score vector.
  double tolerance = 1e-10;
  int max_iterations = 200;
};

/// Convergence telemetry from a power-iteration walk. The frequency model
/// trivially "converges" (no iteration happens).
struct WalkOutcome {
  bool converged = true;
  int iterations = 0;
};

/// Scores every live instance of a concept under one model. Scores are
/// normalized to sum to 1 over the concept (they are visit probabilities
/// for the walk models; frequency is normalized for comparability).
std::unordered_map<InstanceId, double> ScoreConcept(const KnowledgeBase& kb,
                                                    ConceptId c, RankModel model,
                                                    const WalkParams& params = {});

/// Same, but over an already-built graph (used by benches that reuse one
/// graph across models). `outcome`, when given, reports convergence.
std::vector<double> ScoreGraph(const ConceptGraph& graph, RankModel model,
                               const WalkParams& params = {},
                               WalkOutcome* outcome = nullptr);

/// ScoreConcept plus convergence telemetry and graceful degradation for the
/// supervised pipeline.
struct ConceptScores {
  std::unordered_map<InstanceId, double> scores;
  bool converged = true;
  int iterations = 0;
};

/// Like ScoreConcept, but reports convergence and sanitizes a *non-converged*
/// result: non-finite entries are zeroed and the rest clamped into [0, 1], so
/// a degraded concept still yields usable (capped) scores instead of
/// poisoning downstream features. A converged result is passed through
/// untouched — on the happy path this is bit-identical to ScoreConcept.
ConceptScores ScoreConceptChecked(const KnowledgeBase& kb, ConceptId c,
                                  RankModel model, const WalkParams& params = {});

/// Lazy per-concept score cache. The DP features (f3, f4) and the
/// Intentional-DP sentence check (Eq. 21) query scores for many (concept,
/// instance) pairs; each concept's walk runs once on first touch. The cache
/// reads the KB at query time — invalidate (create a fresh cache) after any
/// rollback.
///
/// Thread-safe: Get/Concept may be called concurrently (the per-concept
/// score maps are immutable once inserted, and Concept returns a reference
/// that stays valid for the cache's lifetime). Warm() bulk-builds many
/// concepts across the global thread pool; warming the working set up front
/// turns all later queries into lock-then-lookup hits, which is how the
/// cleaning pipeline uses it before fanning feature extraction out.
class ScoreCache {
 public:
  ScoreCache(const KnowledgeBase* kb, RankModel model, WalkParams params = {})
      : kb_(kb), model_(model), params_(params) {}

  ScoreCache(const ScoreCache&) = delete;
  ScoreCache& operator=(const ScoreCache&) = delete;

  /// Score of (c, e); 0 when the pair is unknown or dead.
  double Get(ConceptId c, InstanceId e) const;

  /// Whole-concept view (computing it on first use). The returned reference
  /// is stable until the cache is destroyed.
  const std::unordered_map<InstanceId, double>& Concept(ConceptId c) const;

  /// Pre-computes every listed concept, fanning graph builds + walks out
  /// over the global thread pool. Already-cached concepts are skipped. The
  /// resulting cache state is bit-identical for every thread count.
  void Warm(const std::vector<ConceptId>& concepts);

  /// Inserts a precomputed score map; first insert wins (a concept already
  /// cached is left untouched). Lets the supervised pipeline warm the cache
  /// one guarded concept at a time with checked (possibly degraded) results.
  void Insert(ConceptId c, std::unordered_map<InstanceId, double> scores);

 private:
  const KnowledgeBase* kb_;
  RankModel model_;
  WalkParams params_;
  mutable std::mutex mu_;
  /// unique_ptr indirection keeps concept maps address-stable across
  /// rehashes, so references handed out by Concept() never dangle.
  mutable std::unordered_map<uint32_t,
                             std::unique_ptr<std::unordered_map<InstanceId, double>>>
      cache_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_RANK_SCORERS_H_
