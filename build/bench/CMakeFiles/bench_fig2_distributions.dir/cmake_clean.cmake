file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_distributions.dir/bench_fig2_distributions.cc.o"
  "CMakeFiles/bench_fig2_distributions.dir/bench_fig2_distributions.cc.o.d"
  "bench_fig2_distributions"
  "bench_fig2_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
